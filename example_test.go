package rfdet_test

import (
	"fmt"

	"rfdet"
)

// Example shows the basic deterministic execution loop: a racy program
// whose output is nevertheless identical on every run.
func Example() {
	rt := rfdet.NewCI()
	prog := func(t rfdet.Thread) {
		x := t.Malloc(8)
		a := t.Spawn(func(t rfdet.Thread) { t.Store64(x, t.Load64(x)+1) })
		b := t.Spawn(func(t rfdet.Thread) { t.Store64(x, t.Load64(x)+10) })
		t.Join(a)
		t.Join(b)
		t.Observe(t.Load64(x)) // a data race — resolved deterministically
	}
	first, _ := rt.Run(prog)
	second, _ := rt.Run(prog)
	fmt.Println(first.Observations[0][0] == second.Observations[0][0])
	// Output: true
}

// ExampleThread_Lock demonstrates pthreads-style mutexes: any address backs
// a mutex, and critical sections carry their memory updates to the next
// acquirer (deterministic lazy release consistency).
func ExampleThread_Lock() {
	rep, _ := rfdet.NewCI().Run(func(t rfdet.Thread) {
		counter := t.Malloc(8)
		mu := rfdet.Addr(64)
		var ids []rfdet.ThreadID
		for i := 0; i < 3; i++ {
			ids = append(ids, t.Spawn(func(t rfdet.Thread) {
				t.Lock(mu)
				t.Store64(counter, t.Load64(counter)+1)
				t.Unlock(mu)
			}))
		}
		for _, id := range ids {
			t.Join(id)
		}
		t.Observe(t.Load64(counter))
	})
	fmt.Println(rep.Observations[0][0])
	// Output: 3
}

// ExampleThread_AtomicCAS64 demonstrates the low-level atomics extension
// (paper §4.6): lock-free algorithms run deterministically.
func ExampleThread_AtomicCAS64() {
	rep, _ := rfdet.NewCI().Run(func(t rfdet.Thread) {
		word := t.Malloc(8)
		var ids []rfdet.ThreadID
		for i := 0; i < 4; i++ {
			me := uint64(i + 1)
			ids = append(ids, t.Spawn(func(t rfdet.Thread) {
				t.AtomicCAS64(word, 0, me) // exactly one thread wins, always the same one
			}))
		}
		for _, id := range ids {
			t.Join(id)
		}
		t.Observe(t.Load64(word))
	})
	fmt.Println(rep.Observations[0][0] != 0)
	// Output: true
}

// ExampleNewDThreads contrasts the global-fence baseline: same program,
// same deterministic guarantee, very different cost model.
func ExampleNewDThreads() {
	prog := func(t rfdet.Thread) {
		x := t.Malloc(8)
		id := t.Spawn(func(t rfdet.Thread) { t.Store64(x, 9) })
		t.Join(id)
		t.Observe(t.Load64(x))
	}
	a, _ := rfdet.NewDThreads().Run(prog)
	b, _ := rfdet.NewCI().Run(prog)
	fmt.Println(a.Observations[0][0], b.Observations[0][0])
	// Output: 9 9
}
