package slicestore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rfdet/internal/mem"
	"rfdet/internal/vclock"
)

func mkSlice(tid int32, time vclock.VC, nbytes int) *Slice {
	return &Slice{
		Tid:   tid,
		Time:  time,
		Mods:  []mem.Run{{Addr: 0, Data: make([]byte, nbytes)}},
		Bytes: uint64(nbytes),
	}
}

func TestCommitAccountsUsage(t *testing.T) {
	st := NewStore(1<<20, 90)
	s := mkSlice(0, vclock.VC{1}, 100)
	if st.Commit(s) {
		t.Fatal("tiny commit should not trigger GC")
	}
	if st.Used() != s.Cost() {
		t.Fatalf("Used = %d, want %d", st.Used(), s.Cost())
	}
	if st.Live() != 1 || st.TotalCreated() != 1 {
		t.Fatal("bookkeeping wrong")
	}
	if s.ID == 0 {
		t.Fatal("commit must assign an ID")
	}
}

func TestSnapshotAccounting(t *testing.T) {
	st := NewStore(0, 0)
	st.AllocSnapshot(0)
	st.AllocSnapshot(0)
	if st.Used() != 2*mem.PageSize {
		t.Fatalf("Used = %d", st.Used())
	}
	st.FreeSnapshot(0)
	if st.Used() != mem.PageSize {
		t.Fatalf("Used = %d", st.Used())
	}
	if st.HighWater() != 2*mem.PageSize {
		t.Fatalf("HighWater = %d", st.HighWater())
	}
}

func TestGCThreshold(t *testing.T) {
	// Capacity 100 KiB, threshold 90%: commits must report needGC once
	// usage crosses 90 KiB.
	st := NewStore(100*1024, 90)
	triggered := false
	for i := 0; i < 100; i++ {
		if st.Commit(mkSlice(0, vclock.VC{uint64(i)}, 1024)) {
			triggered = true
			break
		}
	}
	if !triggered {
		t.Fatal("GC threshold never triggered")
	}
}

func TestCollectReclaimsOnlyDominated(t *testing.T) {
	st := NewStore(0, 0)
	old := mkSlice(0, vclock.VC{1, 0}, 10)
	mid := mkSlice(1, vclock.VC{0, 2}, 10)
	young := mkSlice(0, vclock.VC{3, 3}, 10)
	st.Commit(old)
	st.Commit(mid)
	st.Commit(young)
	// Frontier [2,2]: old (≤) is garbage, mid (0,2 ≤ 2,2) is garbage,
	// young is not.
	n := st.Collect(vclock.VC{2, 2})
	if n != 2 {
		t.Fatalf("collected %d, want 2", n)
	}
	if st.Live() != 1 {
		t.Fatalf("live = %d, want 1", st.Live())
	}
	if st.GCCount() != 1 {
		t.Fatalf("GCCount = %d", st.GCCount())
	}
	if st.Used() != young.Cost() {
		t.Fatalf("Used = %d, want %d", st.Used(), young.Cost())
	}
}

// TestCollectNeverReclaimsNeeded is the GC safety property: a slice
// concurrent with (or newer than) the frontier survives.
func TestCollectNeverReclaimsNeeded(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		st := NewStore(0, 0)
		mk := func() vclock.VC {
			v := make(vclock.VC, 3)
			for i := range v {
				v[i] = uint64(r.Intn(5))
			}
			return v
		}
		var slices []*Slice
		for i := 0; i < 30; i++ {
			s := mkSlice(int32(i%3), mk(), 8)
			slices = append(slices, s)
			st.Commit(s)
		}
		frontier := mk()
		st.Collect(frontier)
		// Every survivor must not be ≤ frontier; every collected slice must
		// be ≤ frontier.
		for _, s := range slices {
			want := !s.Time.Leq(frontier)
			got := false
			for id := range st.slices {
				if st.slices[id] == s {
					got = true
				}
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTrimList(t *testing.T) {
	a := mkSlice(0, vclock.VC{1}, 1)
	b := mkSlice(0, vclock.VC{5}, 1)
	c := mkSlice(1, vclock.VC{0, 4}, 1)
	list := []*Slice{a, b, c}
	out := TrimList(list, vclock.VC{2, 2})
	if len(out) != 2 || out[0] != b || out[1] != c {
		t.Fatalf("TrimList kept %v", out)
	}
	// The freed tail must be zeroed so the GC can reclaim.
	if list[2] != nil {
		t.Fatal("trimmed tail not zeroed")
	}
}

func TestCostIncludesOverheads(t *testing.T) {
	s := mkSlice(0, vclock.VC{1}, 100)
	if s.Cost() <= 100 {
		t.Fatalf("Cost = %d should include per-slice and per-run overhead", s.Cost())
	}
}

func TestDefaults(t *testing.T) {
	st := NewStore(0, 0)
	if st.Capacity() != DefaultCapacity {
		t.Fatalf("default capacity = %d", st.Capacity())
	}
	st2 := NewStore(1000, 300) // out-of-range threshold falls back to 90
	if st2.GCThreshold() != 900 {
		t.Fatalf("threshold = %d", st2.GCThreshold())
	}
}

// TestGCThresholdRounding is the regression test for the capacity/100*pct
// truncation bug: dividing before multiplying floored the quotient first, so
// a 150-byte store at 90% got threshold 1*90 = 90 instead of 135, and any
// capacity under 100 got threshold 0 — every commit triggered a GC pass.
func TestGCThresholdRounding(t *testing.T) {
	cases := []struct {
		capacity uint64
		pct      int
		want     uint64
	}{
		{150, 90, 135},  // old code: 150/100*90 = 90
		{50, 90, 45},    // old code: 50/100*90 = 0 → GC on every commit
		{199, 50, 99},   // old code: 199/100*50 = 50
		{1000, 90, 900}, // multiple of 100: unchanged
		{DefaultCapacity, DefaultGCThresholdPct, DefaultCapacity * 90 / 100},
	}
	for _, c := range cases {
		st := NewStore(c.capacity, c.pct)
		if got := st.GCThreshold(); got != c.want {
			t.Errorf("NewStore(%d, %d): threshold = %d, want %d", c.capacity, c.pct, got, c.want)
		}
	}
	// Behavioral consequence: a 108-cost commit into a 150-byte store sits
	// between the old (90) and fixed (135) thresholds, so it must NOT
	// demand a GC pass anymore.
	st := NewStore(150, 90)
	s := mkSlice(0, vclock.VC{1}, 20)
	if c := s.Cost(); c <= 90 || c >= 135 {
		t.Fatalf("test slice cost %d out of discriminating range (90, 135)", c)
	}
	if st.Commit(s) {
		t.Fatal("commit below the fixed threshold must not trigger GC")
	}
}

// TestCollectOrderFree backs Collect's //detvet:orderfree annotation: the
// victim-selection loop ranges over the live-slice map, so its iteration
// order is randomized — but the reclaimed count, the surviving set and the
// usage accounting must come out identical every time.
func TestCollectOrderFree(t *testing.T) {
	frontier := vclock.VC{5, 5, 5}
	var wantCount, wantLive int
	var wantUsed uint64
	for rep := 0; rep < 40; rep++ {
		st := NewStore(0, 0)
		var expectSurvive uint64
		for i := 0; i < 24; i++ {
			s := &Slice{
				Tid:   int32(i % 3),
				Mods:  []mem.Run{{Addr: uint64(i) * 64, Data: make([]byte, i+1)}},
				Bytes: uint64(i + 1),
			}
			if i%2 == 0 {
				s.Time = vclock.VC{uint64(i % 6), 1, 2} // ≤ frontier: collectable
			} else {
				s.Time = vclock.VC{9, uint64(i), 0} // above frontier: survives
				expectSurvive += s.Cost()
			}
			st.Commit(s)
		}
		n := st.Collect(frontier)
		if rep == 0 {
			wantCount, wantLive, wantUsed = n, st.Live(), st.Used()
			if wantCount != 12 || wantLive != 12 {
				t.Fatalf("expected 12 collected + 12 live, got %d + %d", wantCount, wantLive)
			}
			if wantUsed != expectSurvive {
				t.Fatalf("used %d != surviving cost %d", wantUsed, expectSurvive)
			}
			continue
		}
		if n != wantCount || st.Live() != wantLive || st.Used() != wantUsed {
			t.Fatalf("rep %d: collect diverged: n=%d live=%d used=%d, want %d/%d/%d",
				rep, n, st.Live(), st.Used(), wantCount, wantLive, wantUsed)
		}
	}
}

// TestCommitGCDecisionIgnoresConcurrentFrees pins the satellite fix for the
// GC-trigger race: Commit must decide needGC from the post-add value its own
// charge observed, not from a second load of the usage atomic. A concurrent
// FreeSnapshot between the charge and a re-load could dip usage back under
// the threshold and swallow the trigger; with the charge-returned value the
// crossing commit always reports it.
func TestCommitGCDecisionIgnoresConcurrentFrees(t *testing.T) {
	const iters = 200
	for i := 0; i < iters; i++ {
		// Capacity 100 KiB, threshold 90 KiB. Pre-fill with snapshots so the
		// next commit's charge is exactly what crosses the threshold.
		st := NewStriped(100*1024, 90, 2)
		for st.Used()+mem.PageSize <= st.GCThreshold() {
			st.AllocSnapshot(0)
		}
		s := mkSlice(1, vclock.VC{0, uint64(i + 1)}, 8*1024)

		free := make(chan struct{})
		done := make(chan bool)
		go func() {
			<-free
			st.FreeSnapshot(0) // the off-monitor diff path releasing a page
			done <- true
		}()
		close(free)
		need := st.Commit(s)
		<-done

		// Whatever the interleaving, the decision must be consistent with
		// the exact usage at the commit's own linearization point: the
		// pre-fill guarantees the commit crossed the threshold, so needGC
		// must be true even when the free landed first in wall-clock terms.
		if !need {
			t.Fatalf("iter %d: commit crossed the GC threshold but needGC = false (usage now %d, threshold %d)",
				i, st.Used(), st.GCThreshold())
		}
	}
}

func TestStripesSumToBudget(t *testing.T) {
	st := NewStriped(1<<20, 90, 4)
	if st.Stripes() != 4 {
		t.Fatalf("Stripes = %d, want 4", st.Stripes())
	}
	st.AllocSnapshot(2)
	st.Commit(mkSlice(0, vclock.VC{1}, 100))
	st.Commit(mkSlice(1, vclock.VC{0, 1}, 200))
	st.Commit(mkSlice(5, vclock.VC{0, 0, 0, 0, 0, 1}, 300)) // tid wraps to stripe 1
	var sum int64
	for i := 0; i < st.Stripes(); i++ {
		sum += st.StripeUsed(i)
	}
	if uint64(sum) != st.Used() {
		t.Fatalf("stripe sum %d != budget %d", sum, st.Used())
	}
	// Collection credits each victim back to the stripe its commit charged.
	st.Collect(vclock.VC{9, 9, 9, 9, 9, 9})
	st.FreeSnapshot(2)
	sum = 0
	for i := 0; i < st.Stripes(); i++ {
		if u := st.StripeUsed(i); u != 0 {
			t.Errorf("stripe %d retains %d bytes after full collection", i, u)
		}
		sum += st.StripeUsed(i)
	}
	if st.Used() != 0 || sum != 0 {
		t.Fatalf("budget %d / stripe sum %d after full collection, want 0/0", st.Used(), sum)
	}
}

// TestTrimListReleasesLargeBackingArrays pins the retention bugfix: a trim
// that keeps a small fraction of a huge list must not return a view of the
// original backing array (the waitq retention class from the sharded
// monitor work).
func TestTrimListReleasesLargeBackingArrays(t *testing.T) {
	list := make([]*Slice, 1024)
	for i := range list {
		list[i] = mkSlice(0, vclock.VC{uint64(i + 1)}, 1)
	}
	// Frontier covers all but the last 8: 99%+ trimmed.
	out := TrimList(list, vclock.VC{uint64(len(list) - 8)})
	if len(out) != 8 {
		t.Fatalf("TrimList kept %d, want 8", len(out))
	}
	if cap(out) >= len(list)/4 {
		t.Fatalf("TrimList kept a cap-%d view of the cap-%d input; backing array retained", cap(out), len(list))
	}
	// Small lists and modest trims stay in place: no copy churn on the
	// common path.
	small := []*Slice{mkSlice(0, vclock.VC{1}, 1), mkSlice(0, vclock.VC{9}, 1)}
	kept := TrimList(small, vclock.VC{1})
	if cap(kept) != cap(small) {
		t.Fatal("small-list trim should reslice in place")
	}
}
