// Package slicestore implements slices and the shared metadata space that
// holds them (paper §4.2, §4.5).
//
// A slice is the paper's triple <tid, modifications, timestamp>: the
// byte-granularity memory updates of one synchronization-free stretch of one
// thread's execution, stamped with a vector clock. Slices are immutable once
// committed; threads exchange them by pointer during memory modification
// propagation (§4.3), so the store also plays the role of the paper's
// metadata space: it accounts for the memory slices and page snapshots
// consume and triggers garbage collection when usage crosses a threshold.
//
// Two implementations of the Store interface exist: MapStore, the seed's
// mutex-guarded map with a frontier sweep, and EpochStore (epoch.go), a
// log-structured store that appends commits into per-stripe arena-backed
// segments and reclaims whole segments against the vclock frontier. They are
// interchangeable behind core's Options.EpochStore; every deterministic
// observable is identical across the two.
package slicestore

import (
	"sync"
	"sync/atomic"

	"rfdet/internal/mem"
	"rfdet/internal/stats"
	"rfdet/internal/vclock"
)

// Slice is one synchronization-free execution slice's modifications.
type Slice struct {
	// ID is a store-unique identifier (diagnostics only; determinism never
	// depends on it).
	ID uint64
	// Tid is the thread that executed the slice.
	Tid int32
	// Time is the slice's vector-clock timestamp: the owning thread's clock
	// when the slice ended. Slice A happens-before slice B iff
	// A.Time < B.Time (§4.2).
	Time vclock.VC
	// Mods is the ordered modification list, as byte runs. Under the
	// EpochStore the run payloads point into segment arena memory; the Run
	// headers and the Slice itself stay ordinary Go objects, so holding a
	// *Slice (propagation lists, pre-merge dedup) is always safe — only
	// reading payload bytes requires the slice to be uncollected or the
	// reader to hold an epoch pin.
	Mods []mem.Run
	// Bytes caches mem.RunBytes(Mods).
	Bytes uint64
}

// Cost returns the metadata-space bytes charged for the slice: the run
// payloads plus a fixed per-run and per-slice overhead approximating the
// paper's modification-list representation.
func (s *Slice) Cost() uint64 {
	return 64 + uint64(len(s.Mods))*24 + s.Bytes
}

const (
	// DefaultCapacity is the paper's metadata-space size (256 MB, §5.4).
	DefaultCapacity = 256 << 20
	// DefaultGCThresholdPct triggers GC at 90% usage (§5.4).
	DefaultGCThresholdPct = 90
)

// Metrics reports implementation-specific store internals for observability
// (Table 1 companions). The MapStore returns zeros.
type Metrics struct {
	// SegmentsLive is the current number of epoch segments holding slices.
	SegmentsLive uint64
	// SegmentsDropped counts segments reclaimed whole by Collect.
	SegmentsDropped uint64
	// ArenaChunksAllocated counts arena chunks ever created.
	ArenaChunksAllocated uint64
	// ArenaChunksReused counts arena chunk gets served by recycling.
	ArenaChunksReused uint64
	// ArenaBytesInterned is the total payload bytes copied into arenas.
	ArenaBytesInterned uint64
}

// Store is the metadata space seen by the runtime: slice registration with a
// GC-trigger verdict, snapshot accounting, frontier-driven collection, and
// the pin protocol that keeps reclaimed payload memory alive while a reader
// still holds collected slices.
type Store interface {
	// AllocSnapshot charges one page snapshot to the metadata space (taken
	// on the first write to a page within a slice, Figure 4). The stripe
	// hint attributes the charge to the calling thread's accounting cell.
	AllocSnapshot(stripe int)
	// FreeSnapshot releases one page snapshot's accounting: the paper frees
	// snapshot memory immediately after the byte-granularity modification
	// list is built by page diffing (§5.4).
	FreeSnapshot(stripe int)
	// Commit registers a finished slice and reports whether usage crossed
	// the GC threshold, in which case the caller should garbage-collect.
	Commit(s *Slice) (needGC bool)
	// Collect reclaims slices whose timestamps are ≤ frontier (§4.5) and
	// returns the number reclaimed.
	Collect(frontier vclock.VC) int
	// Pin marks the current reclamation epoch as in use. Until the returned
	// pin is released, payload memory of slices collected after the pin was
	// taken is quarantined rather than recycled, so the pinning reader can
	// keep dereferencing the slices it already holds. The zero Pin is a
	// released no-op; the MapStore (where reclaimed payloads are simply
	// garbage-collected by Go) returns it directly.
	Pin() Pin

	Capacity() uint64
	GCThreshold() uint64
	Used() uint64
	HighWater() uint64
	GCCount() uint64
	// EmptyGCCount counts Collect passes that reclaimed nothing. They are
	// reported separately from GCCount so snapshot-churn threshold
	// crossings do not inflate the Table 1 "GC" column.
	EmptyGCCount() uint64
	Live() int
	TotalCreated() uint64
	Stripes() int
	StripeUsed(stripe int) int64
	// Metrics returns implementation-specific counters (zeros for MapStore).
	Metrics() Metrics
}

// Pin is a handle on a reclamation epoch; see Store.Pin. The zero value is
// released and Release on it is a no-op, so pins can be passed by value
// through wake events unconditionally.
type Pin struct {
	es *EpochStore
	id uint64
}

// Release ends the pin. Idempotence is not required of callers; the runtime
// releases each pin exactly once, after the deferred slice application it
// protects.
func (p Pin) Release() {
	if p.es != nil {
		p.es.unpin(p.id)
	}
}

// MapStore is the seed metadata space: a single mutex-guarded map of live
// slices with a full-sweep Collect.
//
// All usage accounting (used, highWater) and the scalar counters are plain
// atomics, so snapshot bookkeeping — AllocSnapshot on the store path of a
// running slice, FreeSnapshot on the off-monitor diff path — never contends
// with commits or collections. The mutex guards only the live-slice map.
//
// Usage is kept twice: one exact atomic (used) that is the capacity budget,
// and a striped per-domain attribution (perStripe) whose cells sum to used.
// The budget deliberately stays a single atomic: GC-trigger decisions must
// see the exact linearized usage at each charge, and a stripe-summed
// approximation would reintroduce the missed/double-trigger races that
// Commit's charge-returned value exists to rule out.
type MapStore struct {
	//detvet:lockorder 30
	mu sync.Mutex //detvet:nativesync guards only the live-slice map; charging is lock-free and commits/collections from different monitor domains must not serialize on usage accounting
	//detvet:guardedby mu
	slices map[uint64]*Slice
	//detvet:notguarded fixed at construction, immutable thereafter
	capacity    uint64
	gcThreshold uint64 //detvet:notguarded fixed at construction, immutable thereafter

	nextID       atomic.Uint64
	used         atomic.Int64 // slices + snapshots, bytes (the exact budget)
	perStripe    *stats.Striped
	highWater    atomic.Int64
	gcCount      atomic.Uint64
	emptyGC      atomic.Uint64
	totalCreated atomic.Uint64
}

// NewStore returns a map-backed metadata space with the given capacity (0
// means DefaultCapacity) and GC threshold percentage (0 means 90), with a
// single accounting stripe.
func NewStore(capacity uint64, thresholdPct int) *MapStore {
	return NewStriped(capacity, thresholdPct, 1)
}

// NewStriped is NewStore with per-domain usage attribution: charges carry a
// stripe hint (a thread or shard id) and accumulate into one of stripes
// cache-padded cells, so concurrent accounting from different commit-monitor
// domains does not bounce a shared cache line for the observability half of
// the bookkeeping. The stripes always sum to the single exact budget.
func NewStriped(capacity uint64, thresholdPct, stripes int) *MapStore {
	capacity, threshold := capacityAndThreshold(capacity, thresholdPct)
	return &MapStore{
		slices:      make(map[uint64]*Slice),
		capacity:    capacity,
		gcThreshold: threshold,
		perStripe:   stats.NewStriped(stripes),
	}
}

// capacityAndThreshold applies the shared capacity/threshold defaulting.
func capacityAndThreshold(capacity uint64, thresholdPct int) (uint64, uint64) {
	if capacity == 0 {
		capacity = DefaultCapacity
	}
	if thresholdPct <= 0 || thresholdPct > 100 {
		thresholdPct = DefaultGCThresholdPct
	}
	// Multiply before dividing: capacity/100*pct truncates the quotient
	// first, which for capacities that are not multiples of 100 rounds
	// the threshold down by up to 99*pct bytes — and to zero for
	// capacities under 100, making every commit trigger a GC pass.
	return capacity, capacity * uint64(thresholdPct) / 100
}

// Capacity returns the configured metadata-space size.
func (st *MapStore) Capacity() uint64 { return st.capacity }

// GCThreshold returns the usage level (bytes) at which Commit requests a
// garbage-collection pass.
func (st *MapStore) GCThreshold() uint64 { return st.gcThreshold }

// AllocSnapshot implements Store.
func (st *MapStore) AllocSnapshot(stripe int) { st.charge(stripe, mem.PageSize) }

// FreeSnapshot implements Store.
func (st *MapStore) FreeSnapshot(stripe int) { st.charge(stripe, -mem.PageSize) }

// charge adjusts usage by delta, attributes it to the given stripe, and
// returns the post-add budget value — the exact usage at the instant this
// charge linearized on the used atomic. Callers deciding anything from the
// charge (Commit's GC trigger) must use the returned value, never a
// re-load: between Add and a later Load, a FreeSnapshot on the off-monitor
// diff path can dip usage back under a threshold the Add crossed.
func (st *MapStore) charge(stripe int, delta int64) int64 {
	st.perStripe.Add(stripe, delta)
	used := st.used.Add(delta)
	for {
		hw := st.highWater.Load()
		if used <= hw || st.highWater.CompareAndSwap(hw, used) {
			return used
		}
	}
}

// Commit registers a finished slice and reports whether usage has crossed
// the GC threshold, in which case the caller should garbage-collect. The
// decision is made from the commit's own post-charge usage, so a threshold
// crossing is reported by exactly the charge that crossed it regardless of
// how concurrent snapshot frees interleave.
//
// The charge lands before the slice is published to the map: a Collect
// racing this commit (turn-elided commits run off-turn) either misses the
// slice entirely or sees it with its cost already in the budget, so the
// collection's credit always cancels a charge that happened. Publishing
// first would let a racing Collect delete-and-credit the slice before its
// own charge landed, permanently inflating the budget by one slice cost.
func (st *MapStore) Commit(s *Slice) (needGC bool) {
	s.ID = st.nextID.Add(1)
	st.totalCreated.Add(1)
	needGC = uint64(st.charge(int(s.Tid), int64(s.Cost()))) >= st.gcThreshold
	st.mu.Lock()
	st.slices[s.ID] = s
	st.mu.Unlock()
	return needGC
}

// Collect removes every slice whose timestamp is ≤ frontier: such slices
// have been merged into the local memory of every thread (§4.5, "Garbage
// Collection") and can never again pass a propagation filter. It returns the
// number of slices reclaimed.
//
// Victims are credited back to the budget before the mutex is released —
// atomically with publishing the collection. Crediting after the unlock
// opens a window in which the map no longer holds the victims but the
// budget still charges for them, so a concurrent Commit or Used reading
// observes inflated usage and can spuriously report needGC.
func (st *MapStore) Collect(frontier vclock.VC) int {
	st.mu.Lock()
	var victims []*Slice
	//detvet:orderfree victims is only summed over (Cost) and counted; membership, not order, matters. See TestCollectOrderFree.
	for id, s := range st.slices {
		if s.Time.Leq(frontier) {
			victims = append(victims, s)
			delete(st.slices, id)
		}
	}
	// Credit each victim back to the stripe its commit charged, so the
	// stripes keep summing to the budget.
	for _, s := range victims {
		st.charge(int(s.Tid), -int64(s.Cost()))
	}
	st.mu.Unlock()
	if len(victims) > 0 {
		st.gcCount.Add(1)
	} else {
		st.emptyGC.Add(1)
	}
	return len(victims)
}

// Pin implements Store. Reclaimed map-store slices are ordinary Go garbage,
// so readers never need protection; the returned pin is the released zero
// value.
func (st *MapStore) Pin() Pin { return Pin{} }

// Stripes returns the number of usage-attribution stripes.
func (st *MapStore) Stripes() int { return st.perStripe.Len() }

// StripeUsed returns the usage attributed to one stripe. Stripes are
// attribution for observability, not budgets; only their sum (== Used when
// quiescent) is the capacity budget.
func (st *MapStore) StripeUsed(stripe int) int64 { return st.perStripe.Load(stripe) }

// Used returns the current metadata-space usage in bytes.
func (st *MapStore) Used() uint64 { return uint64(st.used.Load()) }

// HighWater returns the metadata-space usage high-water mark (the
// MetadataSpaceMemory term in §5.4's footprint equation).
func (st *MapStore) HighWater() uint64 { return uint64(st.highWater.Load()) }

// GCCount returns the number of Collect passes that reclaimed at least one
// slice (Table 1, "GC"). Passes that found nothing below the frontier are
// counted by EmptyGCCount instead.
func (st *MapStore) GCCount() uint64 { return st.gcCount.Load() }

// EmptyGCCount returns the number of Collect passes that reclaimed nothing.
func (st *MapStore) EmptyGCCount() uint64 { return st.emptyGC.Load() }

// Live returns the number of live slices.
func (st *MapStore) Live() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.slices)
}

// TotalCreated returns the number of slices ever committed.
func (st *MapStore) TotalCreated() uint64 { return st.totalCreated.Load() }

// Metrics implements Store; the map store has no segments or arenas.
func (st *MapStore) Metrics() Metrics { return Metrics{} }

// trimShrinkFloor is the retained-length cap below which TrimList reallocates
// instead of reslicing, when the backing array is at least 4x larger.
const trimShrinkFloor = 64

// TrimList filters a slice-pointer list in place, dropping slices with
// timestamps ≤ frontier, and returns the retained list. Threads call this
// during GC so their slice-pointer lists (§4.3) do not retain collected
// slices.
//
// When a trim retains only a small fraction of a large backing array, the
// survivors are copied into a right-sized allocation and the old array is
// released — the same retention class as a waitq kept at its high-water
// capacity forever: a thread that once accumulated a huge pointer list
// between GC passes would otherwise pin that array for the rest of the run.
func TrimList(list []*Slice, frontier vclock.VC) []*Slice {
	out := list[:0]
	for _, s := range list {
		if !s.Time.Leq(frontier) {
			out = append(out, s)
		}
	}
	// Zero the tail so collected slices become unreachable.
	for i := len(out); i < len(list); i++ {
		list[i] = nil
	}
	if cap(out) > trimShrinkFloor && len(out) < cap(out)/4 {
		shrunk := make([]*Slice, len(out))
		copy(shrunk, out)
		return shrunk
	}
	return out
}
