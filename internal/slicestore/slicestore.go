// Package slicestore implements slices and the shared metadata space that
// holds them (paper §4.2, §4.5).
//
// A slice is the paper's triple <tid, modifications, timestamp>: the
// byte-granularity memory updates of one synchronization-free stretch of one
// thread's execution, stamped with a vector clock. Slices are immutable once
// committed; threads exchange them by pointer during memory modification
// propagation (§4.3), so the store also plays the role of the paper's
// metadata space: it accounts for the memory slices and page snapshots
// consume and triggers garbage collection when usage crosses a threshold.
package slicestore

import (
	"sync"
	"sync/atomic"

	"rfdet/internal/mem"
	"rfdet/internal/stats"
	"rfdet/internal/vclock"
)

// Slice is one synchronization-free execution slice's modifications.
type Slice struct {
	// ID is a store-unique identifier (diagnostics only; determinism never
	// depends on it).
	ID uint64
	// Tid is the thread that executed the slice.
	Tid int32
	// Time is the slice's vector-clock timestamp: the owning thread's clock
	// when the slice ended. Slice A happens-before slice B iff
	// A.Time < B.Time (§4.2).
	Time vclock.VC
	// Mods is the ordered modification list, as byte runs.
	Mods []mem.Run
	// Bytes caches mem.RunBytes(Mods).
	Bytes uint64
}

// Cost returns the metadata-space bytes charged for the slice: the run
// payloads plus a fixed per-run and per-slice overhead approximating the
// paper's modification-list representation.
func (s *Slice) Cost() uint64 {
	return 64 + uint64(len(s.Mods))*24 + s.Bytes
}

const (
	// DefaultCapacity is the paper's metadata-space size (256 MB, §5.4).
	DefaultCapacity = 256 << 20
	// DefaultGCThresholdPct triggers GC at 90% usage (§5.4).
	DefaultGCThresholdPct = 90
)

// Store is the metadata space: the registry of live slices plus usage
// accounting for slices and transient page snapshots.
//
// All usage accounting (used, highWater) and the scalar counters are plain
// atomics, so snapshot bookkeeping — AllocSnapshot on the store path of a
// running slice, FreeSnapshot on the off-monitor diff path — never contends
// with commits or collections. The mutex guards only the live-slice map.
//
// Usage is kept twice: one exact atomic (used) that is the capacity budget,
// and a striped per-domain attribution (perStripe) whose cells sum to used.
// The budget deliberately stays a single atomic: GC-trigger decisions must
// see the exact linearized usage at each charge, and a stripe-summed
// approximation would reintroduce the missed/double-trigger races that
// Commit's charge-returned value exists to rule out.
type Store struct {
	mu          sync.Mutex //detvet:nativesync guards only the live-slice map; charging is lock-free and commits/collections from different monitor domains must not serialize on usage accounting
	slices      map[uint64]*Slice
	capacity    uint64
	gcThreshold uint64

	nextID       atomic.Uint64
	used         atomic.Int64 // slices + snapshots, bytes (the exact budget)
	perStripe    *stats.Striped
	highWater    atomic.Int64
	gcCount      atomic.Uint64
	totalCreated atomic.Uint64
}

// NewStore returns a metadata space with the given capacity (0 means
// DefaultCapacity) and GC threshold percentage (0 means 90), with a single
// accounting stripe.
func NewStore(capacity uint64, thresholdPct int) *Store {
	return NewStriped(capacity, thresholdPct, 1)
}

// NewStriped is NewStore with per-domain usage attribution: charges carry a
// stripe hint (a thread or shard id) and accumulate into one of stripes
// cache-padded cells, so concurrent accounting from different commit-monitor
// domains does not bounce a shared cache line for the observability half of
// the bookkeeping. The stripes always sum to the single exact budget.
func NewStriped(capacity uint64, thresholdPct, stripes int) *Store {
	if capacity == 0 {
		capacity = DefaultCapacity
	}
	if thresholdPct <= 0 || thresholdPct > 100 {
		thresholdPct = DefaultGCThresholdPct
	}
	return &Store{
		slices:   make(map[uint64]*Slice),
		capacity: capacity,
		// Multiply before dividing: capacity/100*pct truncates the quotient
		// first, which for capacities that are not multiples of 100 rounds
		// the threshold down by up to 99*pct bytes — and to zero for
		// capacities under 100, making every commit trigger a GC pass.
		gcThreshold: capacity * uint64(thresholdPct) / 100,
		perStripe:   stats.NewStriped(stripes),
	}
}

// Capacity returns the configured metadata-space size.
func (st *Store) Capacity() uint64 { return st.capacity }

// GCThreshold returns the usage level (bytes) at which Commit requests a
// garbage-collection pass.
func (st *Store) GCThreshold() uint64 { return st.gcThreshold }

// AllocSnapshot charges one page snapshot to the metadata space (taken on
// the first write to a page within a slice, Figure 4). The stripe hint
// attributes the charge to the calling thread's accounting cell.
func (st *Store) AllocSnapshot(stripe int) { st.charge(stripe, mem.PageSize) }

// FreeSnapshot releases one page snapshot's accounting: the paper frees
// snapshot memory immediately after the byte-granularity modification list
// is built by page diffing (§5.4).
func (st *Store) FreeSnapshot(stripe int) { st.charge(stripe, -mem.PageSize) }

// charge adjusts usage by delta, attributes it to the given stripe, and
// returns the post-add budget value — the exact usage at the instant this
// charge linearized on the used atomic. Callers deciding anything from the
// charge (Commit's GC trigger) must use the returned value, never a
// re-load: between Add and a later Load, a FreeSnapshot on the off-monitor
// diff path can dip usage back under a threshold the Add crossed.
func (st *Store) charge(stripe int, delta int64) int64 {
	st.perStripe.Add(stripe, delta)
	used := st.used.Add(delta)
	for {
		hw := st.highWater.Load()
		if used <= hw || st.highWater.CompareAndSwap(hw, used) {
			return used
		}
	}
}

// Commit registers a finished slice and reports whether usage has crossed
// the GC threshold, in which case the caller should garbage-collect. The
// decision is made from the commit's own post-charge usage, so a threshold
// crossing is reported by exactly the charge that crossed it regardless of
// how concurrent snapshot frees interleave.
func (st *Store) Commit(s *Slice) (needGC bool) {
	s.ID = st.nextID.Add(1)
	st.totalCreated.Add(1)
	st.mu.Lock()
	st.slices[s.ID] = s
	st.mu.Unlock()
	return uint64(st.charge(int(s.Tid), int64(s.Cost()))) >= st.gcThreshold
}

// Collect removes every slice whose timestamp is ≤ frontier: such slices
// have been merged into the local memory of every thread (§4.5, "Garbage
// Collection") and can never again pass a propagation filter. It returns the
// number of slices reclaimed.
func (st *Store) Collect(frontier vclock.VC) int {
	st.mu.Lock()
	var victims []*Slice
	//detvet:orderfree victims is only summed over (Cost) and counted; membership, not order, matters. See TestCollectOrderFree.
	for id, s := range st.slices {
		if s.Time.Leq(frontier) {
			victims = append(victims, s)
			delete(st.slices, id)
		}
	}
	st.mu.Unlock()
	st.gcCount.Add(1)
	// Credit each victim back to the stripe its commit charged, so the
	// stripes keep summing to the budget.
	for _, s := range victims {
		st.charge(int(s.Tid), -int64(s.Cost()))
	}
	return len(victims)
}

// Stripes returns the number of usage-attribution stripes.
func (st *Store) Stripes() int { return st.perStripe.Len() }

// StripeUsed returns the usage attributed to one stripe. Stripes are
// attribution for observability, not budgets; only their sum (== Used when
// quiescent) is the capacity budget.
func (st *Store) StripeUsed(stripe int) int64 { return st.perStripe.Load(stripe) }

// Used returns the current metadata-space usage in bytes.
func (st *Store) Used() uint64 { return uint64(st.used.Load()) }

// HighWater returns the metadata-space usage high-water mark (the
// MetadataSpaceMemory term in §5.4's footprint equation).
func (st *Store) HighWater() uint64 { return uint64(st.highWater.Load()) }

// GCCount returns the number of Collect passes (Table 1, "GC").
func (st *Store) GCCount() uint64 { return st.gcCount.Load() }

// Live returns the number of live slices.
func (st *Store) Live() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.slices)
}

// TotalCreated returns the number of slices ever committed.
func (st *Store) TotalCreated() uint64 { return st.totalCreated.Load() }

// TrimList filters a slice-pointer list in place, dropping slices with
// timestamps ≤ frontier, and returns the retained list. Threads call this
// during GC so their slice-pointer lists (§4.3) do not retain collected
// slices.
func TrimList(list []*Slice, frontier vclock.VC) []*Slice {
	out := list[:0]
	for _, s := range list {
		if !s.Time.Leq(frontier) {
			out = append(out, s)
		}
	}
	// Zero the tail so collected slices become unreachable.
	for i := len(out); i < len(list); i++ {
		list[i] = nil
	}
	return out
}
