// EpochStore: the log-structured, epoch-based implementation of the metadata
// space (ROADMAP item 2; the snapshot-pinned MVCC + arena idiom).
//
// Commits append immutable slices into per-stripe segments; each segment
// owns an arena (internal/alloc) into which the slices' run payloads are
// interned, so steady-state propagation recycles a fixed set of arena chunks
// instead of allocating fresh payload buffers for every slice. Collect's
// fast path drops whole segments whose max timestamp is ≤ the vclock
// frontier, crediting their slices back to the budget atomically with
// unpublishing them; segments straddling the frontier have their covered
// members trimmed out so budget reclamation tracks the map store's sweep
// exactly even when the frontier lags one young slice.
//
// Reclaiming payload memory introduces the one hazard the map store never
// had: a reader that collected slice pointers under its turn and applies
// them after releasing the monitor could dereference payload bytes whose
// segment was dropped in between (the acquirer's clock has already joined
// the slices' times, so the GC frontier can cover them while the apply is
// still in flight). The pin protocol closes this: Pin, taken while the
// reader still holds the turn, records the current reclamation epoch;
// arenas of segments dropped at a later epoch are quarantined in a limbo
// list and only recycled once every pin predating the drop has been
// released.
package slicestore

import (
	"sync"
	"sync/atomic"

	"rfdet/internal/alloc"
	"rfdet/internal/mem"
	"rfdet/internal/stats"
	"rfdet/internal/vclock"
)

const (
	// segMaxSlices seals a segment after this many slices, bounding how
	// much retention a single young slice can cause (a segment is reclaimed
	// only whole, so its oldest members wait for its youngest).
	segMaxSlices = 128
	// segMaxCost seals a segment when its charged bytes reach this bound.
	segMaxCost = 256 << 10
)

// segment is one append-only run of committed slices sharing an arena.
// Commit appends to the stripe's open segment; Collect may trim covered
// members out of any segment. Both happen under the stripe mutex, and the
// member list is replaced (not mutated in place) on trim, so a snapshot of
// the list taken under the mutex may be iterated without locks.
type segment struct {
	slices  []*Slice
	maxTime vclock.VC // join of member timestamps
	cost    uint64    // sum of member Cost()s
	arena   *alloc.Arena
}

// epochStripe is one commit lane: threads map to stripes by id, so commits
// from different monitor domains append under different mutexes.
type epochStripe struct {
	//detvet:lockorder 30
	mu sync.Mutex //detvet:nativesync commit lane for host-side segment appends; turn order already serializes conflicting commits, the mutex only protects the lane against off-turn elided commits and Collect
	//detvet:guardedby mu
	open *segment
	//detvet:guardedby mu
	sealed []*segment
	_      [32]byte // keep neighboring stripes' mutexes off one cache line
}

// EpochStore implements Store as a log of arena-backed epoch segments.
//
// The budget discipline is identical to MapStore's and for the same reason:
// usage is one exact atomic (used) adjusted by charge, with GC-trigger
// decisions made from the charge's own post-add value, plus a striped
// attribution that sums to it. Segments change only *what* is reclaimed
// (whole segments instead of single slices), never how usage is counted.
type EpochStore struct {
	capacity    uint64
	gcThreshold uint64
	stripes     []epochStripe
	pool        *alloc.ChunkPool

	nextID       atomic.Uint64
	used         atomic.Int64 // slices + snapshots, bytes (the exact budget)
	perStripe    *stats.Striped
	highWater    atomic.Int64
	gcCount      atomic.Uint64
	emptyGC      atomic.Uint64
	totalCreated atomic.Uint64
	live         atomic.Int64

	segsLive    atomic.Int64
	segsDropped atomic.Uint64
	interned    atomic.Uint64

	// Reclamation epoch state. epoch advances on every Collect pass; pins
	// hold the epoch current at Pin time; limbo quarantines dropped arenas
	// until no pin predates their drop epoch. All three share pinMu.
	//detvet:lockorder 40
	pinMu sync.Mutex //detvet:nativesync guards the reclamation-epoch registry (pins + limbo); pure host-side memory recycling, invisible to deterministic state
	//detvet:guardedby pinMu
	epoch uint64
	//detvet:guardedby pinMu
	pinSeq uint64
	//detvet:guardedby pinMu
	pins  []pinRec
	limbo []limboSeg //detvet:guardedby pinMu
}

// pinRec is one live pin. A slice, not a map: releases are by linear scan
// (there are at most a handful of live pins) and iteration order never
// matters — only the minimum epoch is read.
type pinRec struct{ id, epoch uint64 }

// limboSeg is a dropped segment's arena awaiting pin quiescence.
type limboSeg struct {
	epoch uint64 // the Collect pass that dropped it
	arena *alloc.Arena
}

// NewEpochStore returns an epoch-based metadata space with the given
// capacity (0 means DefaultCapacity), GC threshold percentage (0 means 90)
// and commit-stripe count (also the usage-attribution stripe count).
func NewEpochStore(capacity uint64, thresholdPct, stripes int) *EpochStore {
	if stripes < 1 {
		stripes = 1
	}
	capacity, threshold := capacityAndThreshold(capacity, thresholdPct)
	return &EpochStore{
		capacity:    capacity,
		gcThreshold: threshold,
		stripes:     make([]epochStripe, stripes),
		pool:        alloc.NewChunkPool(),
		perStripe:   stats.NewStriped(stripes),
	}
}

// Capacity returns the configured metadata-space size.
func (es *EpochStore) Capacity() uint64 { return es.capacity }

// GCThreshold returns the usage level (bytes) at which Commit requests a
// garbage-collection pass.
func (es *EpochStore) GCThreshold() uint64 { return es.gcThreshold }

// AllocSnapshot implements Store.
func (es *EpochStore) AllocSnapshot(stripe int) { es.charge(stripe, mem.PageSize) }

// FreeSnapshot implements Store.
func (es *EpochStore) FreeSnapshot(stripe int) { es.charge(stripe, -mem.PageSize) }

// charge mirrors MapStore.charge: exact budget atomic, striped attribution,
// post-add value returned for trigger decisions.
func (es *EpochStore) charge(stripe int, delta int64) int64 {
	es.perStripe.Add(stripe%len(es.stripes), delta)
	used := es.used.Add(delta)
	for {
		hw := es.highWater.Load()
		if used <= hw || es.highWater.CompareAndSwap(hw, used) {
			return used
		}
	}
}

// stripeOf maps a thread id to its commit lane.
func (es *EpochStore) stripeOf(tid int32) *epochStripe {
	return &es.stripes[int(uint32(tid))%len(es.stripes)]
}

// Commit appends the slice to its stripe's open segment, interning the run
// payloads into the segment arena — s.Mods is repointed in place, so after
// Commit the caller's payload buffers are no longer referenced by the store
// and may be reused. As in MapStore, the charge lands before the slice is
// published, so a racing Collect can never credit a cost that was not yet
// charged.
func (es *EpochStore) Commit(s *Slice) (needGC bool) {
	s.ID = es.nextID.Add(1)
	es.totalCreated.Add(1)
	needGC = uint64(es.charge(int(s.Tid), int64(s.Cost()))) >= es.gcThreshold
	sp := es.stripeOf(s.Tid)
	sp.mu.Lock()
	seg := sp.open
	if seg == nil || len(seg.slices) >= segMaxSlices || seg.cost >= segMaxCost {
		if seg != nil {
			sp.sealed = append(sp.sealed, seg)
		}
		seg = &segment{arena: alloc.NewArena(es.pool)}
		sp.open = seg
		es.segsLive.Add(1)
	}
	for i := range s.Mods {
		d := seg.arena.Alloc(len(s.Mods[i].Data))
		copy(d, s.Mods[i].Data)
		s.Mods[i].Data = d
	}
	es.interned.Add(s.Bytes)
	seg.slices = append(seg.slices, s)
	seg.maxTime = seg.maxTime.Join(s.Time)
	seg.cost += s.Cost()
	sp.mu.Unlock()
	es.live.Add(1)
	return needGC
}

// Collect advances the reclamation frontier. The fast path is the whole-
// segment drop: a sealed segment whose max timestamp is ≤ frontier is
// unpublished in one step, its slices credited back to the budget under the
// stripe mutex, its arena sent to limbo for recycling once no pin predates
// this pass. An open segment that is already fully covered is sealed first
// so it drops in the same pass.
//
// Segments that straddle the frontier — some members covered, the join not —
// are trimmed instead: covered slices are credited and removed exactly as
// the map store's sweep would, so the budget reclaims byte-for-byte what
// MapStore reclaims under the same frontier, and a lagging frontier can
// never strand an arbitrarily large covered prefix behind one young slice.
// Only the trimmed slices' arena bytes stay resident, bounded per stripe by
// the segment seal limits, until the whole segment's join is covered.
func (es *EpochStore) Collect(frontier vclock.VC) int {
	n := 0
	var dropped []*segment
	for i := range es.stripes {
		sp := &es.stripes[i]
		sp.mu.Lock()
		if sp.open != nil && sp.open.maxTime.Leq(frontier) &&
			(len(sp.open.slices) > 0 || sp.open.arena.Bytes() > 0) {
			sp.sealed = append(sp.sealed, sp.open)
			sp.open = nil
		}
		keep := sp.sealed[:0]
		for _, seg := range sp.sealed {
			if seg.maxTime.Leq(frontier) {
				for _, s := range seg.slices {
					es.charge(int(s.Tid), -int64(s.Cost()))
				}
				n += len(seg.slices)
				dropped = append(dropped, seg)
			} else {
				n += es.trimSegmentLocked(seg, frontier)
				keep = append(keep, seg)
			}
		}
		for j := len(keep); j < len(sp.sealed); j++ {
			sp.sealed[j] = nil
		}
		sp.sealed = keep
		if sp.open != nil {
			n += es.trimSegmentLocked(sp.open, frontier)
		}
		sp.mu.Unlock()
	}
	if n > 0 {
		es.gcCount.Add(1)
		es.live.Add(-int64(n))
	} else {
		es.emptyGC.Add(1)
	}
	es.retire(dropped)
	return n
}

// trimSegmentLocked reclaims the covered slices of a straddling segment:
// each is credited back to the budget and removed from the member list, and
// maxTime is recomputed from the survivors so the segment drops as early as
// possible. The member list is replaced, never mutated in place — a
// ForEachSealed iterator that snapshotted the old list keeps a consistent
// view, and the trimmed slices' payload bytes stay valid because the
// segment's arena is untouched until the segment itself drops. Returns the
// number of slices reclaimed. Caller holds the stripe mutex.
func (es *EpochStore) trimSegmentLocked(seg *segment, frontier vclock.VC) int {
	trimmed := 0
	for _, s := range seg.slices {
		if s.Time.Leq(frontier) {
			trimmed++
		}
	}
	if trimmed == 0 {
		return 0
	}
	survivors := make([]*Slice, 0, len(seg.slices)-trimmed)
	var maxTime vclock.VC
	for _, s := range seg.slices {
		if s.Time.Leq(frontier) {
			es.charge(int(s.Tid), -int64(s.Cost()))
			seg.cost -= s.Cost()
		} else {
			survivors = append(survivors, s)
			maxTime = maxTime.Join(s.Time)
		}
	}
	seg.slices = survivors
	seg.maxTime = maxTime
	return trimmed
}

// retire advances the epoch, quarantines the dropped segments' arenas, and
// recycles whatever limbo the live pins no longer protect.
func (es *EpochStore) retire(dropped []*segment) {
	es.pinMu.Lock()
	es.epoch++
	for _, seg := range dropped {
		es.segsLive.Add(-1)
		es.segsDropped.Add(1)
		es.limbo = append(es.limbo, limboSeg{epoch: es.epoch, arena: seg.arena})
	}
	es.drainLimboLocked()
	es.pinMu.Unlock()
}

// drainLimboLocked releases every quarantined arena that no live pin can
// still read: an arena dropped at epoch D is protected only by pins taken
// at an epoch < D.
//
//detvet:holds pinMu
func (es *EpochStore) drainLimboLocked() {
	minPin := ^uint64(0)
	for _, p := range es.pins {
		if p.epoch < minPin {
			minPin = p.epoch
		}
	}
	keep := es.limbo[:0]
	for _, l := range es.limbo {
		if l.epoch > minPin {
			keep = append(keep, l)
		} else {
			l.arena.Release()
		}
	}
	for i := len(keep); i < len(es.limbo); i++ {
		es.limbo[i] = limboSeg{}
	}
	es.limbo = keep
}

// Pin implements Store: it records the current reclamation epoch as in use.
// The runtime takes pins while still holding the turn in which it collected
// slice pointers — no Collect can run during a held turn, so the pin is
// ordered before any pass that could drop those slices' segments.
func (es *EpochStore) Pin() Pin {
	es.pinMu.Lock()
	es.pinSeq++
	id := es.pinSeq
	es.pins = append(es.pins, pinRec{id: id, epoch: es.epoch})
	es.pinMu.Unlock()
	return Pin{es: es, id: id}
}

// unpin removes the pin and recycles any limbo it alone was protecting.
func (es *EpochStore) unpin(id uint64) {
	es.pinMu.Lock()
	for i, p := range es.pins {
		if p.id == id {
			last := len(es.pins) - 1
			es.pins[i] = es.pins[last]
			es.pins = es.pins[:last]
			break
		}
	}
	es.drainLimboLocked()
	es.pinMu.Unlock()
}

// ForEachSealed calls fn for every slice in every sealed segment, stripe by
// stripe. Each stripe's segment list and each segment's member list are
// snapshotted under the stripe mutex (trimming replaces the member list, so
// the field itself must be read under the lock); the snapshotted lists are
// never mutated afterwards, so iteration runs without locks. Callers that
// dereference payload bytes must hold a Pin taken before the segments of
// interest could have been dropped; the slices form a consistent snapshot
// of each stripe's sealed log at the moment it was visited.
func (es *EpochStore) ForEachSealed(fn func(*Slice)) {
	for i := range es.stripes {
		sp := &es.stripes[i]
		sp.mu.Lock()
		var snap [][]*Slice
		for _, seg := range sp.sealed {
			snap = append(snap, seg.slices)
		}
		sp.mu.Unlock()
		for _, slices := range snap {
			for _, s := range slices {
				fn(s)
			}
		}
	}
}

// SetPoison enables poison-on-free on the chunk pool (test hook): recycled
// arena chunks are overwritten so a stale alias reads garbage loudly.
func (es *EpochStore) SetPoison(on bool) { es.pool.SetPoison(on) }

// Stripes returns the number of usage-attribution stripes.
func (es *EpochStore) Stripes() int { return es.perStripe.Len() }

// StripeUsed returns the usage attributed to one stripe.
func (es *EpochStore) StripeUsed(stripe int) int64 { return es.perStripe.Load(stripe) }

// Used returns the current metadata-space usage in bytes.
func (es *EpochStore) Used() uint64 { return uint64(es.used.Load()) }

// HighWater returns the metadata-space usage high-water mark.
func (es *EpochStore) HighWater() uint64 { return uint64(es.highWater.Load()) }

// GCCount returns the number of Collect passes that reclaimed slices.
func (es *EpochStore) GCCount() uint64 { return es.gcCount.Load() }

// EmptyGCCount returns the number of Collect passes that reclaimed nothing.
func (es *EpochStore) EmptyGCCount() uint64 { return es.emptyGC.Load() }

// Live returns the number of live (uncollected) slices.
func (es *EpochStore) Live() int { return int(es.live.Load()) }

// TotalCreated returns the number of slices ever committed.
func (es *EpochStore) TotalCreated() uint64 { return es.totalCreated.Load() }

// Metrics implements Store.
func (es *EpochStore) Metrics() Metrics {
	return Metrics{
		SegmentsLive:         uint64(es.segsLive.Load()),
		SegmentsDropped:      es.segsDropped.Load(),
		ArenaChunksAllocated: es.pool.Allocated(),
		ArenaChunksReused:    es.pool.Reused(),
		ArenaBytesInterned:   es.interned.Load(),
	}
}
