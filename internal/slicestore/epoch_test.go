package slicestore

import (
	"fmt"
	"sync"
	"testing"

	"rfdet/internal/alloc"
	"rfdet/internal/vclock"
)

// bothStores runs a subtest against each Store implementation, so the
// accounting contract is pinned store-independently.
func bothStores(t *testing.T, capacity uint64, thresholdPct, stripes int, fn func(t *testing.T, st Store)) {
	t.Run("map", func(t *testing.T) { fn(t, NewStriped(capacity, thresholdPct, stripes)) })
	t.Run("epoch", func(t *testing.T) { fn(t, NewEpochStore(capacity, thresholdPct, stripes)) })
}

func TestEpochCommitAccountsUsage(t *testing.T) {
	st := NewEpochStore(1<<20, 90, 2)
	s := mkSlice(0, vclock.VC{1}, 100)
	if st.Commit(s) {
		t.Fatal("tiny commit should not trigger GC")
	}
	if st.Used() != s.Cost() {
		t.Fatalf("Used = %d, want %d", st.Used(), s.Cost())
	}
	if st.Live() != 1 || st.TotalCreated() != 1 {
		t.Fatal("bookkeeping wrong")
	}
	if s.ID == 0 {
		t.Fatal("commit must assign an ID")
	}
}

func TestEpochCommitInternsPayloads(t *testing.T) {
	st := NewEpochStore(1<<20, 90, 1)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	s := mkSlice(0, vclock.VC{1}, 8)
	copy(s.Mods[0].Data, payload)
	orig := &s.Mods[0].Data[0]
	st.Commit(s)
	if &s.Mods[0].Data[0] == orig {
		t.Fatal("Commit did not repoint the payload into the arena")
	}
	for i, b := range s.Mods[0].Data {
		if b != payload[i] {
			t.Fatalf("interned byte %d = %d, want %d", i, b, payload[i])
		}
	}
	if got := st.Metrics().ArenaBytesInterned; got != 8 {
		t.Fatalf("ArenaBytesInterned = %d, want 8", got)
	}
}

// TestEpochCollectDropsCoveredSegments pins the segment fast path: a fully
// covered segment is dropped whole, an uncovered one is retained whole.
func TestEpochCollectDropsCoveredSegments(t *testing.T) {
	st := NewEpochStore(1<<20, 90, 1)
	for i := 0; i < 10; i++ {
		st.Commit(mkSlice(0, vclock.VC{uint64(i + 1)}, 64))
	}
	// Nothing covered: pure retention, no reclaim.
	if n := st.Collect(vclock.VC{0}); n != 0 {
		t.Fatalf("uncovered Collect reclaimed %d", n)
	}
	if st.Live() != 10 {
		t.Fatalf("Live = %d after empty pass", st.Live())
	}
	// Frontier covers everything: the whole log goes at once.
	if n := st.Collect(vclock.VC{100}); n != 10 {
		t.Fatalf("covering Collect reclaimed %d, want 10", n)
	}
	if st.Used() != 0 || st.Live() != 0 {
		t.Fatalf("Used = %d, Live = %d after covering Collect", st.Used(), st.Live())
	}
	if d := st.Metrics().SegmentsDropped; d == 0 {
		t.Fatal("covering Collect dropped no segments")
	}
}

// TestEpochCollectTrimsStraddlingSegments pins budget parity with the map
// store when a segment straddles the frontier: the covered members are
// reclaimed per-slice even though the segment (and its arena) is retained.
func TestEpochCollectTrimsStraddlingSegments(t *testing.T) {
	bothStores(t, 1<<20, 90, 1, func(t *testing.T, st Store) {
		for i := 0; i < 10; i++ {
			st.Commit(mkSlice(0, vclock.VC{uint64(i + 1)}, 64))
		}
		perSlice := mkSlice(0, vclock.VC{1}, 64).Cost()
		// Frontier covers the first 4 commits only; all 10 share one segment
		// in the epoch store, so this is the straddling case.
		if n := st.Collect(vclock.VC{4}); n != 4 {
			t.Fatalf("Collect = %d, want 4", n)
		}
		if st.Live() != 6 {
			t.Fatalf("Live = %d, want 6", st.Live())
		}
		if want := 6 * perSlice; st.Used() != want {
			t.Fatalf("Used = %d, want %d", st.Used(), want)
		}
		// The rest goes once covered.
		if n := st.Collect(vclock.VC{10}); n != 6 {
			t.Fatalf("second Collect = %d, want 6", n)
		}
		if st.Used() != 0 || st.Live() != 0 {
			t.Fatalf("Used = %d, Live = %d at end", st.Used(), st.Live())
		}
	})
}

// TestCollectPassAccounting locks in the empty-pass bugfix for both stores:
// passes that reclaim nothing count as GCEmptyPasses, never as GCCount.
func TestCollectPassAccounting(t *testing.T) {
	bothStores(t, 1<<20, 90, 1, func(t *testing.T, st Store) {
		st.Commit(mkSlice(0, vclock.VC{5}, 64))
		for i := 0; i < 3; i++ {
			if n := st.Collect(vclock.VC{1}); n != 0 {
				t.Fatalf("uncovered Collect reclaimed %d", n)
			}
		}
		if got := st.GCCount(); got != 0 {
			t.Fatalf("GCCount = %d after only empty passes, want 0", got)
		}
		if got := st.EmptyGCCount(); got != 3 {
			t.Fatalf("EmptyGCCount = %d, want 3", got)
		}
		if n := st.Collect(vclock.VC{5}); n != 1 {
			t.Fatalf("covering Collect = %d, want 1", n)
		}
		if st.GCCount() != 1 || st.EmptyGCCount() != 3 {
			t.Fatalf("GCCount = %d, EmptyGCCount = %d after reclaiming pass",
				st.GCCount(), st.EmptyGCCount())
		}
	})
}

// TestCommitDuringCollectAccounting is the regression storm for the
// credit-after-unlock and insert-before-charge bugs: committers race a
// collector whose frontier always covers every committed slice. Any window
// in which a slice is published-but-uncharged (or credited-but-published)
// shows up as a nonzero final balance.
func TestCommitDuringCollectAccounting(t *testing.T) {
	bothStores(t, 1<<30, 90, 4, func(t *testing.T, st Store) {
		const committers = 4
		const perCommitter = 300
		var collectorWG, committerWG sync.WaitGroup
		stop := make(chan struct{})
		collectorWG.Add(1)
		go func() {
			defer collectorWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					st.Collect(vclock.VC{^uint64(0)})
				}
			}
		}()
		for c := 0; c < committers; c++ {
			committerWG.Add(1)
			go func(tid int32) {
				defer committerWG.Done()
				for i := 0; i < perCommitter; i++ {
					st.Commit(mkSlice(tid, vclock.VC{uint64(i + 1)}, 128))
				}
			}(int32(c))
		}
		committerWG.Wait()
		close(stop)
		collectorWG.Wait()
		// One final covering pass reclaims whatever the racing collector
		// missed; the balance must land on exactly zero.
		st.Collect(vclock.VC{^uint64(0)})
		if st.Used() != 0 {
			t.Fatalf("Used = %d after final covering Collect, want 0", st.Used())
		}
		if st.Live() != 0 {
			t.Fatalf("Live = %d, want 0", st.Live())
		}
		if got := st.TotalCreated(); got != committers*perCommitter {
			t.Fatalf("TotalCreated = %d, want %d", got, committers*perCommitter)
		}
		sum := int64(0)
		for i := 0; i < st.Stripes(); i++ {
			sum += st.StripeUsed(i)
		}
		if sum != 0 {
			t.Fatalf("stripe attribution sums to %d, want 0", sum)
		}
	})
}

// TestEpochStripesSumToBudget mirrors the map store's invariant: per-stripe
// attribution always sums to the exact budget atomic.
func TestEpochStripesSumToBudget(t *testing.T) {
	st := NewEpochStore(1<<30, 90, 4)
	for i := 0; i < 100; i++ {
		st.Commit(mkSlice(int32(i%7), vclock.VC{uint64(i + 1)}, 64+i))
		if i%3 == 0 {
			st.AllocSnapshot(i % 4)
		}
		if i%10 == 9 {
			st.Collect(vclock.VC{uint64(i - 5)})
		}
	}
	sum := int64(0)
	for i := 0; i < st.Stripes(); i++ {
		sum += st.StripeUsed(i)
	}
	if uint64(sum) != st.Used() {
		t.Fatalf("stripes sum to %d, Used = %d", sum, st.Used())
	}
}

// TestEpochPinProtectsPayloads exercises the pin protocol end to end: a pin
// taken before a covering Collect keeps dropped segments' payload bytes
// valid; releasing the pin recycles them (observable via poison-on-free).
func TestEpochPinProtectsPayloads(t *testing.T) {
	st := NewEpochStore(1<<20, 90, 1)
	st.SetPoison(true)
	var held [][]byte
	for i := 0; i < 20; i++ {
		s := mkSlice(0, vclock.VC{uint64(i + 1)}, 32)
		for j := range s.Mods[0].Data {
			s.Mods[0].Data[j] = byte(i)
		}
		st.Commit(s)
		held = append(held, s.Mods[0].Data) // arena-backed after Commit
	}
	pin := st.Pin()
	if n := st.Collect(vclock.VC{100}); n != 20 {
		t.Fatalf("Collect = %d, want 20", n)
	}
	// The segments are dropped but the pin predates the pass: every payload
	// must still read back intact.
	for i, d := range held {
		for j, b := range d {
			if b != byte(i) {
				t.Fatalf("pinned payload %d byte %d = %#x, want %#x", i, j, b, i)
			}
		}
	}
	pin.Release()
	// With the pin gone the arenas recycle and poison-on-free lands.
	poisoned := false
	for _, d := range held {
		if d[0] == alloc.PoisonByte {
			poisoned = true
		}
	}
	if !poisoned {
		t.Fatal("no payload was poisoned after pin release; arenas not recycled")
	}
	// Released pins are idempotent, and the zero Pin is a no-op.
	pin.Release()
	(Pin{}).Release()
}

// TestEpochPinDoesNotBlockLaterDrops checks pin granularity: a pin only
// quarantines segments dropped after it was taken, and a later pin does not
// resurrect protection for earlier drops.
func TestEpochPinDoesNotBlockLaterDrops(t *testing.T) {
	st := NewEpochStore(1<<20, 90, 1)
	st.SetPoison(true)
	s := mkSlice(0, vclock.VC{1}, 32)
	st.Commit(s)
	first := s.Mods[0].Data
	st.Collect(vclock.VC{10}) // drop with no pin live: recycles immediately
	if first[0] != alloc.PoisonByte {
		t.Fatal("unpinned drop did not recycle the arena")
	}
	pin := st.Pin()
	s2 := mkSlice(0, vclock.VC{11}, 32)
	st.Commit(s2)
	second := s2.Mods[0].Data
	st.Collect(vclock.VC{20})
	if second[0] == alloc.PoisonByte {
		t.Fatal("pinned drop recycled the arena early")
	}
	pin.Release()
	if second[0] != alloc.PoisonByte {
		t.Fatal("arena not recycled after the protecting pin released")
	}
}

// TestEpochArenaReuseNeverAliasesLiveRuns is the stress wall: committers,
// a collector and pinned readers race under -race, and every payload a
// reader dereferences under its pin must checksum to its committed value —
// recycled chunks may never alias live or pinned runs.
func TestEpochArenaReuseNeverAliasesLiveRuns(t *testing.T) {
	st := NewEpochStore(1<<30, 90, 4)
	st.SetPoison(true)
	const committers = 3
	const rounds = 200
	var loopWG, committerWG sync.WaitGroup
	stop := make(chan struct{})
	// Collector: covers everything older than it has seen, constantly.
	loopWG.Add(1)
	go func() {
		defer loopWG.Done()
		tick := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
				tick += 3
				st.Collect(vclock.VC{tick, tick, tick})
			}
		}
	}()
	// Pinned readers: pin, iterate sealed slices, verify the fill pattern.
	// Each slice's payload is filled with its own-component timestamp, so a
	// recycled chunk aliasing a live run reads as the wrong byte.
	for r := 0; r < 2; r++ {
		loopWG.Add(1)
		go func() {
			defer loopWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					pin := st.Pin()
					st.ForEachSealed(func(s *Slice) {
						want := byte(s.Time[int(s.Tid)])
						for _, b := range s.Mods[0].Data {
							if b != want {
								panic(fmt.Sprintf("tid %d time %v: payload byte %#x, want %#x (arena aliasing)",
									s.Tid, s.Time, b, want))
							}
						}
					})
					pin.Release()
				}
			}
		}()
	}
	for c := 0; c < committers; c++ {
		committerWG.Add(1)
		go func(tid int32) {
			defer committerWG.Done()
			for i := 0; i < rounds; i++ {
				time := make(vclock.VC, committers)
				time[tid] = uint64(i + 1)
				s := mkSlice(tid, time, 64)
				for j := range s.Mods[0].Data {
					s.Mods[0].Data[j] = byte(i + 1)
				}
				st.Commit(s)
			}
		}(int32(c))
	}
	committerWG.Wait()
	close(stop)
	loopWG.Wait()
	st.Collect(vclock.VC{^uint64(0), ^uint64(0), ^uint64(0)})
	if st.Used() != 0 || st.Live() != 0 {
		t.Fatalf("Used = %d, Live = %d after final Collect", st.Used(), st.Live())
	}
}

// TestEpochSegmentSealBounds checks that long single-thread logs roll over
// into multiple segments instead of growing one unboundedly.
func TestEpochSegmentSealBounds(t *testing.T) {
	st := NewEpochStore(1<<30, 90, 1)
	for i := 0; i < 2*segMaxSlices; i++ {
		st.Commit(mkSlice(0, vclock.VC{uint64(i + 1)}, 16))
	}
	if got := st.Metrics().SegmentsLive; got < 2 {
		t.Fatalf("SegmentsLive = %d after %d commits, want >= 2", got, 2*segMaxSlices)
	}
}
