package slicestore

import (
	"testing"

	"rfdet/internal/mem"
	"rfdet/internal/vclock"
)

// BenchmarkSliceStoreChurn measures steady-state commit/collect churn — the
// metadata-space hot loop of a propagation-heavy run. Each op commits one
// slice of 16 runs; a covering Collect every 64 ops keeps the store at a
// bounded live set, exactly like a workload whose frontier keeps pace.
//
// The allocation contract differs by store, and that difference is the
// point of the epoch store: MapStore retains the caller's payload buffers,
// so the committer must allocate fresh ones every slice; EpochStore interns
// payloads into segment arenas at Commit, so the committer reuses one
// scratch buffer set forever and steady-state arena chunks recycle through
// the pool. Compare allocs/op across the two sub-benchmarks.
func BenchmarkSliceStoreChurn(b *testing.B) {
	const runsPerSlice = 16
	const runBytes = 256
	const collectEvery = 64

	b.Run("map", func(b *testing.B) {
		st := NewStriped(1<<30, 90, 4)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			mods := make([]mem.Run, runsPerSlice)
			for r := range mods {
				data := make([]byte, runBytes)
				mods[r] = mem.Run{Addr: uint64(r * runBytes), Data: data}
			}
			s := &Slice{
				Tid:   int32(i % 4),
				Time:  vclock.VC{uint64(i + 1)},
				Mods:  mods,
				Bytes: runsPerSlice * runBytes,
			}
			st.Commit(s)
			if i%collectEvery == collectEvery-1 {
				st.Collect(vclock.VC{uint64(i + 1)})
			}
		}
	})

	b.Run("epoch", func(b *testing.B) {
		st := NewEpochStore(1<<30, 90, 4)
		scratch := make([][]byte, runsPerSlice)
		for r := range scratch {
			scratch[r] = make([]byte, runBytes)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mods := make([]mem.Run, runsPerSlice)
			for r := range mods {
				mods[r] = mem.Run{Addr: uint64(r * runBytes), Data: scratch[r]}
			}
			s := &Slice{
				Tid:   int32(i % 4),
				Time:  vclock.VC{uint64(i + 1)},
				Mods:  mods,
				Bytes: runsPerSlice * runBytes,
			}
			st.Commit(s)
			if i%collectEvery == collectEvery-1 {
				st.Collect(vclock.VC{uint64(i + 1)})
			}
		}
	})
}
