package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// referenceCompare derives the ordering from the two Leq probes — the
// specification Compare's single-pass implementation must match.
func referenceCompare(v, w VC) Order {
	le, ge := v.Leq(w), w.Leq(v)
	switch {
	case le && ge:
		return Same
	case le:
		return Before
	case ge:
		return After
	default:
		return Unordered
	}
}

// TestCompareMatchesReference property-checks Compare against the
// two-probe reference over random clock pairs, including mixed lengths.
func TestCompareMatchesReference(t *testing.T) {
	f := func(a, b []uint16) bool {
		mk := func(xs []uint16) VC {
			v := make(VC, len(xs))
			for i, x := range xs {
				v[i] = uint64(x % 4) // small components force collisions
			}
			return v
		}
		v, w := mk(a), mk(b)
		return v.Compare(w) == referenceCompare(v, w)
	}
	cfg := &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCompareAntisymmetric: swapping the operands flips Before/After and
// preserves Same/Unordered.
func TestCompareAntisymmetric(t *testing.T) {
	flip := map[Order]Order{Same: Same, Before: After, After: Before, Unordered: Unordered}
	f := func(a, b []uint16) bool {
		mk := func(xs []uint16) VC {
			v := make(VC, len(xs))
			for i, x := range xs {
				v[i] = uint64(x % 3)
			}
			return v
		}
		v, w := mk(a), mk(b)
		return w.Compare(v) == flip[v.Compare(w)]
	}
	cfg := &quick.Config{MaxCount: 5000, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCompareEdges pins down the concurrency edge cases the race detector
// leans on.
func TestCompareEdges(t *testing.T) {
	cases := []struct {
		name string
		v, w VC
		want Order
	}{
		{"nil vs nil", nil, nil, Same},
		{"nil vs zero", nil, VC{0, 0}, Same},
		{"trailing zeros", VC{1, 2, 0, 0}, VC{1, 2}, Same},
		{"nil before any", nil, VC{0, 1}, Before},
		{"single component up", VC{1}, VC{2}, Before},
		{"single component down", VC{3}, VC{2}, After},
		{"classic concurrent", VC{1, 0}, VC{0, 1}, Unordered},
		{"equal prefix divergent suffix", VC{5, 5, 1, 0}, VC{5, 5, 0, 1}, Unordered},
		{"longer but dominated", VC{1, 1}, VC{2, 2, 2}, Before},
		{"longer and dominating", VC{2, 2, 2}, VC{1, 1}, After},
		{"length-based concurrency", VC{1}, VC{0, 7}, Unordered},
		{"one common one disjoint", VC{3, 0, 4}, VC{3, 9, 0}, Unordered},
	}
	for _, c := range cases {
		if got := c.v.Compare(c.w); got != c.want {
			t.Errorf("%s: %v.Compare(%v)=%v, want %v", c.name, c.v, c.w, got, c.want)
		}
		// Cross-check the predicate quartet against the same expectation.
		if conc := c.v.Concurrent(c.w); conc != (c.want == Unordered) {
			t.Errorf("%s: Concurrent=%v disagrees with Compare=%v", c.name, conc, c.want)
		}
		if eq := c.v.Equal(c.w); eq != (c.want == Same) {
			t.Errorf("%s: Equal=%v disagrees with Compare=%v", c.name, eq, c.want)
		}
		if lt := c.v.Less(c.w); lt != (c.want == Before) {
			t.Errorf("%s: Less=%v disagrees with Compare=%v", c.name, lt, c.want)
		}
	}
}

// TestConcurrentAfterJoinOrdered: joining either side of a concurrent pair
// with the other orders them — the acquire-side update that makes previously
// racy accesses ordered.
func TestConcurrentAfterJoinOrdered(t *testing.T) {
	v, w := VC{3, 0, 1}, VC{0, 2, 5}
	if v.Compare(w) != Unordered {
		t.Fatal("fixture not concurrent")
	}
	j := v.Clone().Join(w)
	if got := w.Compare(j); got != Before && got != Same {
		t.Fatalf("w vs join: %v", got)
	}
	if got := j.Compare(v); got != After {
		t.Fatalf("join vs v: %v", got)
	}
}
