// Package vclock implements the vector clocks (Fidge/Mattern partial-order
// timestamps) that RFDet uses to describe the happens-before relation between
// slices (paper §4.2). Component i of a clock counts slice endings performed
// by thread i, so given two slices A and B, A happens-before B if and only if
// Time(A) ≤ Time(B) and Time(A) ≠ Time(B).
package vclock

import (
	"fmt"
	"strings"
)

// VC is a vector clock. Index i is thread i's component; missing trailing
// components are implicitly zero, so clocks of different lengths are
// comparable. The zero value (nil) is the clock at the beginning of time.
type VC []uint64

// New returns a zero clock sized for n threads.
func New(n int) VC { return make(VC, n) }

// Clone returns an independent copy of v.
func (v VC) Clone() VC {
	if len(v) == 0 {
		return nil
	}
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Get returns component i, treating out-of-range components as zero.
func (v VC) Get(i int) uint64 {
	if i < 0 || i >= len(v) {
		return 0
	}
	return v[i]
}

// Set assigns component i, growing the clock if needed, and returns the
// (possibly reallocated) clock.
func (v VC) Set(i int, val uint64) VC {
	v = v.grow(i + 1)
	v[i] = val
	return v
}

// Bump increments component i by one, growing the clock if needed, and
// returns the (possibly reallocated) clock.
func (v VC) Bump(i int) VC {
	v = v.grow(i + 1)
	v[i]++
	return v
}

func (v VC) grow(n int) VC {
	if len(v) >= n {
		return v
	}
	g := make(VC, n)
	copy(g, v)
	return g
}

// Leq reports whether v ≤ w componentwise. Leq is the happens-before-or-equal
// test: a slice with time v is visible at an event with time w iff v ≤ w.
func (v VC) Leq(w VC) bool {
	for i, x := range v {
		if x > w.Get(i) {
			return false
		}
	}
	return true
}

// Less reports whether v < w, i.e. v ≤ w and v ≠ w. This is the strict
// happens-before test of §4.2.
func (v VC) Less(w VC) bool {
	return v.Leq(w) && !w.Leq(v)
}

// Equal reports whether v and w denote the same instant (ignoring implicit
// trailing zeros).
func (v VC) Equal(w VC) bool {
	return v.Leq(w) && w.Leq(v)
}

// Concurrent reports whether v and w are incomparable (neither happens-before
// the other).
func (v VC) Concurrent(w VC) bool {
	return !v.Leq(w) && !w.Leq(v)
}

// Order is the outcome of comparing two clocks under the happens-before
// partial order.
type Order int8

const (
	// Same: the clocks denote the same instant.
	Same Order = iota
	// Before: the receiver happens-before the argument.
	Before
	// After: the argument happens-before the receiver.
	After
	// Unordered: the clocks are concurrent (incomparable).
	Unordered
)

func (o Order) String() string {
	switch o {
	case Same:
		return "same"
	case Before:
		return "before"
	case After:
		return "after"
	default:
		return "unordered"
	}
}

// Compare classifies v against w in a single componentwise pass, equivalent
// to (but cheaper than) probing Leq in both directions. Missing trailing
// components compare as zero, so clocks of different lengths are comparable.
func (v VC) Compare(w VC) Order {
	n := len(v)
	if len(w) > n {
		n = len(w)
	}
	var less, greater bool
	for i := 0; i < n; i++ {
		x, y := v.Get(i), w.Get(i)
		switch {
		case x < y:
			less = true
		case x > y:
			greater = true
		}
		if less && greater {
			return Unordered
		}
	}
	switch {
	case less:
		return Before
	case greater:
		return After
	default:
		return Same
	}
}

// Join sets v to the least upper bound v ⊔ w and returns the (possibly
// reallocated) clock. Join is the acquire-side clock update of §4.2:
// timestamp ⊔ Time(R).
func (v VC) Join(w VC) VC {
	v = v.grow(len(w))
	for i, x := range w {
		if x > v[i] {
			v[i] = x
		}
	}
	return v
}

// JoinInto is like Join but guarantees the receiver's backing array is reused
// when it is already large enough, for hot propagation paths.
func JoinInto(dst, w VC) VC { return dst.Join(w) }

// Meet returns the greatest lower bound of v and w as a fresh clock. The meet
// over all threads' clocks is the garbage-collection frontier (§4.5): slices
// at or below it have been seen by every thread.
func Meet(v, w VC) VC {
	n := len(v)
	if len(w) < n {
		n = len(w)
	}
	m := make(VC, n)
	for i := 0; i < n; i++ {
		x, y := v[i], w[i]
		if y < x {
			x = y
		}
		m[i] = x
	}
	return m
}

// MeetAll returns the componentwise minimum of all clocks. With no clocks it
// returns nil (the bottom clock).
func MeetAll(clocks []VC) VC {
	if len(clocks) == 0 {
		return nil
	}
	m := clocks[0].Clone()
	for _, c := range clocks[1:] {
		// Meet truncates to the shorter length; components beyond the
		// shorter clock are implicitly zero and thus minimal.
		m = Meet(m, c)
	}
	return m
}

// Frontier is a Louvre-style versioned join accumulator: a monotone vector
// clock fused with a monotone release-version counter (PAPERS.md: *Louvre:
// Lightweight Ordering Using Versioning for Release Consistency*). Each
// commit-monitor domain owns one; every release performed in the domain
// advances it — joining the release timestamp into the frontier clock and
// stamping the release with the next version. A cross-domain acquire that
// joins a release timestamp stamped at version v is therefore guaranteed to
// observe a clock covered by the domain frontier at any version ≥ v, which
// is the invariant that lets per-domain counters order cross-domain
// releases without a global serialization point.
//
// The zero Frontier is ready to use: the bottom clock at version 0.
type Frontier struct {
	v   VC
	ver uint64
}

// Advance folds the release timestamp ts into the frontier and returns the
// release's stamped version (1-based, strictly increasing per frontier).
func (f *Frontier) Advance(ts VC) uint64 {
	f.v = f.v.Join(ts)
	f.ver++
	return f.ver
}

// Version returns the number of releases folded into the frontier — the
// current value of the domain's version counter.
func (f *Frontier) Version() uint64 { return f.ver }

// Clock returns the frontier clock: the join of every release timestamp
// advanced so far. Callers must not mutate the returned clock.
func (f *Frontier) Clock() VC { return f.v }

// Covers reports whether ts ≤ the frontier clock: every release stamped by
// Advance is covered by the frontier at all later versions.
func (f *Frontier) Covers(ts VC) bool { return ts.Leq(f.v) }

// String renders the clock as "[a b c]" with trailing zeros trimmed.
func (v VC) String() string {
	n := len(v)
	for n > 0 && v[n-1] == 0 {
		n--
	}
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", v[i])
	}
	b.WriteByte(']')
	return b.String()
}
