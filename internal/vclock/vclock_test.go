package vclock

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genVC builds a bounded random clock from quick-generated values.
func genVC(r *rand.Rand) VC {
	n := r.Intn(6)
	v := make(VC, n)
	for i := range v {
		v[i] = uint64(r.Intn(5))
	}
	return v
}

func qcfg() *quick.Config {
	return &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(genVC(r))
			}
		},
	}
}

// three adapts a 3-clock property to quick's reflect API.
type three func(a, b, c VC) bool

func checkThree(t *testing.T, name string, f three) {
	t.Helper()
	wrapped := func(a, b, c VC) bool { return f(a, b, c) }
	if err := quick.Check(wrapped, qcfg()); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

func TestLeqReflexive(t *testing.T) {
	f := func(a VC) bool { return a.Leq(a) }
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestLeqAntisymmetric(t *testing.T) {
	f := func(a, b VC) bool {
		if a.Leq(b) && b.Leq(a) {
			return a.Equal(b)
		}
		return true
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestLeqTransitive(t *testing.T) {
	checkThree(t, "transitivity", func(a, b, c VC) bool {
		if a.Leq(b) && b.Leq(c) {
			return a.Leq(c)
		}
		return true
	})
}

func TestJoinIsLUB(t *testing.T) {
	checkThree(t, "join-lub", func(a, b, c VC) bool {
		j := a.Clone().Join(b)
		// Upper bound:
		if !a.Leq(j) || !b.Leq(j) {
			return false
		}
		// Least: any other upper bound dominates the join.
		if a.Leq(c) && b.Leq(c) && !j.Leq(c) {
			return false
		}
		return true
	})
}

func TestMeetIsGLB(t *testing.T) {
	checkThree(t, "meet-glb", func(a, b, c VC) bool {
		m := Meet(a, b)
		if !m.Leq(a) || !m.Leq(b) {
			return false
		}
		if c.Leq(a) && c.Leq(b) && !c.Leq(m) {
			return false
		}
		return true
	})
}

func TestLessIsStrict(t *testing.T) {
	f := func(a, b VC) bool {
		if a.Less(b) {
			return a.Leq(b) && !a.Equal(b) && !b.Less(a)
		}
		return true
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestConcurrentSymmetric(t *testing.T) {
	f := func(a, b VC) bool {
		return a.Concurrent(b) == b.Concurrent(a)
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestTrichotomyish(t *testing.T) {
	// Exactly one of: a<b, b<a, a==b, a||b.
	f := func(a, b VC) bool {
		cnt := 0
		if a.Less(b) {
			cnt++
		}
		if b.Less(a) {
			cnt++
		}
		if a.Equal(b) {
			cnt++
		}
		if a.Concurrent(b) {
			cnt++
		}
		return cnt == 1
	}
	if err := quick.Check(f, qcfg()); err != nil {
		t.Error(err)
	}
}

func TestBumpMakesStrictlyLater(t *testing.T) {
	v := New(3).Set(0, 1).Set(1, 2)
	w := v.Clone().Bump(1)
	if !v.Less(w) {
		t.Fatalf("%v should be < %v", v, w)
	}
	if w.Get(1) != 3 {
		t.Fatalf("component 1 = %d, want 3", w.Get(1))
	}
}

func TestGrowthAndMixedLengths(t *testing.T) {
	short := VC{1, 2}
	long := VC{1, 2, 0, 0}
	if !short.Equal(long) {
		t.Fatal("trailing zeros must not matter")
	}
	if short.Less(long) || long.Less(short) {
		t.Fatal("equal clocks are not strictly ordered")
	}
	grown := short.Set(5, 7)
	if grown.Get(5) != 7 || grown.Get(4) != 0 {
		t.Fatalf("Set/grow wrong: %v", grown)
	}
	if grown.Get(99) != 0 {
		t.Fatal("out-of-range Get must be 0")
	}
}

func TestMeetAll(t *testing.T) {
	if MeetAll(nil) != nil {
		t.Fatal("MeetAll(nil) should be nil")
	}
	m := MeetAll([]VC{{3, 5, 2}, {4, 1}, {3, 2, 9}})
	// Componentwise minimum, with missing components treated as zero.
	want := VC{3, 1}
	if !m.Equal(want) {
		t.Fatalf("MeetAll = %v, want %v", m, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := VC{1, 2, 3}
	b := a.Clone()
	b[0] = 99
	if a[0] != 1 {
		t.Fatal("Clone must not share backing storage")
	}
	if nilClone := (VC)(nil).Clone(); nilClone != nil {
		t.Fatal("nil clone should be nil")
	}
}

func TestString(t *testing.T) {
	if s := (VC{1, 0, 2, 0, 0}).String(); s != "[1 0 2]" {
		t.Fatalf("String = %q", s)
	}
	if s := (VC(nil)).String(); s != "[]" {
		t.Fatalf("String = %q", s)
	}
}
