package vclock

import "testing"

func TestFrontierAdvanceMonotone(t *testing.T) {
	var f Frontier
	if f.Version() != 0 {
		t.Fatalf("fresh frontier version = %d, want 0", f.Version())
	}
	if !f.Covers(nil) {
		t.Fatal("fresh frontier must cover the zero clock")
	}
	clocks := []VC{
		{1, 0, 0},
		{0, 3, 0},
		{2, 1, 0},
		{0, 0, 5},
	}
	var prev uint64
	for i, ts := range clocks {
		ver := f.Advance(ts)
		if ver != prev+1 {
			t.Fatalf("Advance #%d returned version %d, want %d", i, ver, prev+1)
		}
		if ver != f.Version() {
			t.Fatalf("Advance returned %d but Version() = %d", ver, f.Version())
		}
		prev = ver
		// Every clock advanced so far stays covered: the frontier is a
		// monotone join accumulator.
		for j := 0; j <= i; j++ {
			if !f.Covers(clocks[j]) {
				t.Fatalf("after advance #%d, clock #%d %s not covered by frontier %s",
					i, j, clocks[j], f.Clock())
			}
		}
	}
	want := VC{2, 3, 5}
	if !f.Clock().Equal(want) {
		t.Fatalf("frontier clock = %s, want %s", f.Clock(), want)
	}
	if f.Covers(VC{3, 0, 0}) {
		t.Fatal("frontier claims to cover a clock ahead of every advanced timestamp")
	}
}

func TestFrontierCoversIsJoinLeq(t *testing.T) {
	// Covers(ts) must agree with ts.Leq(join of advanced clocks) for random
	// clock sequences.
	f := func(a, b, c VC) bool {
		var fr Frontier
		fr.Advance(a)
		fr.Advance(b)
		joined := a.Join(b)
		return fr.Covers(c) == c.Leq(joined)
	}
	checkThree(t, "covers-is-join-leq", f)
}
