package dthreads

import (
	"testing"

	"rfdet/internal/api"
)

func run(t *testing.T, rt *Runtime, fn api.ThreadFunc) *api.Report {
	t.Helper()
	rep, err := rt.Run(fn)
	if err != nil {
		t.Fatalf("Run failed: %v", err)
	}
	return rep
}

func TestSingleThread(t *testing.T) {
	rep := run(t, New(), func(th api.Thread) {
		a := th.Malloc(16)
		th.Store64(a, 5)
		th.Store32(a+8, 6)
		th.Observe(th.Load64(a), uint64(th.Load32(a+8)))
	})
	obs := rep.Observations[0]
	if obs[0] != 5 || obs[1] != 6 {
		t.Fatalf("observations %v", obs)
	}
}

func TestCommitAtSyncPoints(t *testing.T) {
	// A child's write becomes visible to the parent only after both sides
	// synchronize (the child's commit and the parent's refresh).
	rep := run(t, New(), func(th api.Thread) {
		a := th.Malloc(8)
		id := th.Spawn(func(c api.Thread) {
			c.Store64(a, 77)
		})
		th.Join(id)
		th.Observe(th.Load64(a))
	})
	if rep.Observations[0][0] != 77 {
		t.Fatalf("parent read %d, want 77", rep.Observations[0][0])
	}
}

func TestLockMutualExclusionAndDeterminism(t *testing.T) {
	prog := func(th api.Thread) {
		ctr := th.Malloc(8)
		mu := api.Addr(64)
		var ids []api.ThreadID
		for i := 0; i < 4; i++ {
			ids = append(ids, th.Spawn(func(c api.Thread) {
				for k := 0; k < 20; k++ {
					c.Lock(mu)
					c.Store64(ctr, c.Load64(ctr)+1)
					c.Unlock(mu)
				}
			}))
		}
		for _, id := range ids {
			th.Join(id)
		}
		th.Observe(th.Load64(ctr))
	}
	var first uint64
	for i := 0; i < 3; i++ {
		rep := run(t, New(), prog)
		if got := rep.Observations[0][0]; got != 80 {
			t.Fatalf("counter = %d, want 80", got)
		}
		if i == 0 {
			first = rep.OutputHash
		} else if rep.OutputHash != first {
			t.Fatalf("nondeterministic hash: %#x vs %#x", rep.OutputHash, first)
		}
	}
}

func TestRacyWritesResolvedByTokenOrder(t *testing.T) {
	// Two threads racing on the same word commit in thread-ID order: the
	// higher ID wins deterministically.
	prog := func(th api.Thread) {
		x := th.Malloc(8)
		bar := api.Addr(64)
		t1 := th.Spawn(func(c api.Thread) {
			c.Store64(x, 111)
			c.Barrier(bar, 2)
		})
		t2 := th.Spawn(func(c api.Thread) {
			c.Store64(x, 222)
			c.Barrier(bar, 2)
		})
		th.Join(t1)
		th.Join(t2)
		th.Observe(th.Load64(x))
	}
	var first uint64
	for i := 0; i < 3; i++ {
		rep := run(t, New(), prog)
		got := rep.Observations[0][0]
		if got != 222 {
			t.Fatalf("token-order conflict resolution gave %d, want 222 (higher tid commits later)", got)
		}
		if i == 0 {
			first = rep.OutputHash
		} else if rep.OutputHash != first {
			t.Fatal("racy program nondeterministic under dthreads")
		}
	}
}

func TestCondVars(t *testing.T) {
	rep := run(t, New(), func(th api.Thread) {
		mu, cond := api.Addr(64), api.Addr(128)
		flag := th.Malloc(8)
		id := th.Spawn(func(c api.Thread) {
			c.Lock(mu)
			for c.Load64(flag) == 0 {
				c.Wait(cond, mu)
			}
			c.Observe(c.Load64(flag))
			c.Unlock(mu)
		})
		th.Lock(mu)
		th.Store64(flag, 9)
		th.Signal(cond)
		th.Unlock(mu)
		th.Join(id)
	})
	if rep.Observations[1][0] != 9 {
		t.Fatalf("waiter observed %v", rep.Observations[1])
	}
}

func TestIsolationBetweenFences(t *testing.T) {
	// A write is invisible to a thread that has not crossed a fence after
	// the writer's commit... but any sync op refreshes. Here the reader
	// performs no sync at all between the write and its read, so it must
	// see the pre-fork value.
	rep := run(t, New(), func(th api.Thread) {
		x := th.Malloc(8)
		writer := th.Spawn(func(c api.Thread) {
			c.Store64(x, 1)
			c.Lock(api.Addr(64)) // commit point
			c.Unlock(api.Addr(64))
		})
		reader := th.Spawn(func(c api.Thread) {
			for i := 0; i < 1000; i++ {
				c.Tick(10)
			}
			c.Observe(c.Load64(x)) // no sync since birth: must read 0
		})
		th.Join(writer)
		th.Join(reader)
	})
	if got := rep.Observations[2][0]; got != 0 {
		t.Fatalf("reader saw %d without synchronizing", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	_, err := New().Run(func(th api.Thread) {
		mu1, mu2 := api.Addr(64), api.Addr(128)
		id := th.Spawn(func(c api.Thread) {
			c.Lock(mu2)
			c.Lock(mu1)
			c.Unlock(mu1)
			c.Unlock(mu2)
		})
		th.Lock(mu1)
		th.Lock(mu2)
		th.Unlock(mu2)
		th.Unlock(mu1)
		th.Join(id)
	})
	if err == nil {
		t.Fatal("expected deadlock error")
	}
}

func TestQuantumFencing(t *testing.T) {
	// CoreDet mode: a compute-only thread still reaches fences, so a
	// sync-ing thread is not stalled forever — and the quantum arrivals are
	// deterministic.
	rt := NewQuantum(1000)
	prog := func(th api.Thread) {
		x := th.Malloc(8)
		mu := api.Addr(64)
		compute := th.Spawn(func(c api.Thread) {
			for i := 0; i < 100; i++ {
				c.Tick(100)
			}
		})
		locker := th.Spawn(func(c api.Thread) {
			for i := 0; i < 10; i++ {
				c.Lock(mu)
				c.Store64(x, c.Load64(x)+1)
				c.Unlock(mu)
			}
		})
		th.Join(compute)
		th.Join(locker)
		th.Observe(th.Load64(x))
	}
	var first uint64
	for i := 0; i < 2; i++ {
		rep := run(t, rt, prog)
		if rep.Observations[0][0] != 10 {
			t.Fatalf("count %d", rep.Observations[0][0])
		}
		if i == 0 {
			first = rep.OutputHash
		} else if rep.OutputHash != first {
			t.Fatal("coredet nondeterministic")
		}
	}
	if rt.Name() != "coredet" {
		t.Fatalf("Name = %s", rt.Name())
	}
}

func TestMisuseErrors(t *testing.T) {
	if _, err := New().Run(func(th api.Thread) { th.Unlock(api.Addr(64)) }); err == nil {
		t.Fatal("unlock of unheld mutex must fail")
	}
	if _, err := New().Run(func(th api.Thread) { th.Join(99) }); err == nil {
		t.Fatal("join of unknown thread must fail")
	}
}

func TestAtomics(t *testing.T) {
	rep := run(t, New(), func(th api.Thread) {
		ctr := th.Malloc(8)
		var ids []api.ThreadID
		for i := 0; i < 3; i++ {
			ids = append(ids, th.Spawn(func(c api.Thread) {
				for k := 0; k < 10; k++ {
					c.AtomicAdd64(ctr, 2)
				}
			}))
		}
		for _, id := range ids {
			th.Join(id)
		}
		th.Observe(th.Load64(ctr))
	})
	if rep.Observations[0][0] != 60 {
		t.Fatalf("atomic counter = %d", rep.Observations[0][0])
	}
}
