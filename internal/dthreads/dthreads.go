// Package dthreads implements the global-barrier strong-DMT baselines the
// paper compares against (§2, Figure 1; §5.2).
//
// With Quantum == 0 the runtime behaves like DThreads (Liu et al., SOSP'11):
// threads run isolated between synchronization operations; a parallel phase
// ends when *every* active thread has reached its next synchronization
// operation (or exit); a serial phase then lets each arrival, in
// deterministic token (thread-ID) order, commit its page diffs into a global
// store and execute its synchronization operation; finally every thread
// refreshes its view from the global store and the next parallel phase
// begins. The global fence is exactly the overhead RFDet eliminates: a
// compute-heavy thread delays every other thread's synchronization (the
// imbalance that makes lu-non ~10x slower under DThreads in Figure 7), and a
// thread with no need to communicate still stops at every fence.
//
// With Quantum > 0 the runtime behaves like the CoreDet/DMP family: a
// thread must additionally stop at the fence after every Quantum logical
// instructions even if it never synchronizes — the classic bulk-synchronous
// quantum scheme of Figure 1, used here for the global-barrier ablation.
//
// Like DThreads, this runtime is strongly deterministic: fences, token order
// and lock grants are all pure functions of program input.
package dthreads

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"rfdet/internal/alloc"
	"rfdet/internal/api"
	"rfdet/internal/mem"
	"rfdet/internal/stats"
	"rfdet/internal/vtime"
)

// Runtime is a DThreads-style (Quantum == 0), CoreDet-style (Quantum > 0)
// or RCDC-style (RCDC set) deterministic runtime. It satisfies api.Runtime.
type Runtime struct {
	// Quantum is the parallel-phase length in logical instructions; 0 means
	// phases end only at synchronization operations (DThreads).
	Quantum uint64
	// RCDC enables the relaxed-consistency fast path the paper attributes
	// to RCDC's DMP-HB mode (§2, §3.1): a thread may re-acquire a lock it
	// itself last released without stopping at the global barrier — its
	// own critical-section writes are already in its view, so no
	// communication is needed. Two *different* threads still cannot hand a
	// lock over without a barrier, which is precisely the limitation §3.1
	// contrasts DLRC against.
	RCDC bool
}

// New returns a DThreads-style runtime.
func New() *Runtime { return &Runtime{} }

// NewQuantum returns a CoreDet-style runtime with the given quantum.
func NewQuantum(q uint64) *Runtime { return &Runtime{Quantum: q} }

// NewRCDC returns an RCDC-style runtime: quantum barriers plus the
// same-thread lock fast path.
func NewRCDC(q uint64) *Runtime { return &Runtime{Quantum: q, RCDC: true} }

// Name returns "dthreads", "coredet" or "rcdc".
func (r *Runtime) Name() string {
	if r.RCDC {
		return "rcdc"
	}
	if r.Quantum > 0 {
		return "coredet"
	}
	return "dthreads"
}

type wakeEvent struct {
	abort bool
}

// thread is one isolated logical thread.
type thread struct {
	exec *exec
	id   api.ThreadID
	fn   api.ThreadFunc

	space     *mem.Space
	snapshots map[mem.PageID][]byte
	snapOrder []mem.PageID

	vt     vtime.Time
	qused  uint64 // instructions since last fence (CoreDet quantum)
	st     api.Stats
	obs    []uint64
	wake   chan wakeEvent
	exited bool
	exitVT vtime.Time
	// attached is true while the thread writes the global store directly:
	// the main thread runs unisolated until its first pthread_create, as no
	// other memory view exists to diverge from (the same argument RFDet
	// makes in §4.1 for skipping pre-fork monitoring).
	attached bool

	joiners []*thread
}

// syncVar backs one application synchronization address.
type syncVar struct {
	held  bool
	owner api.ThreadID
	// lastOwner is the thread that last released the mutex (-1 if never
	// held), the eligibility test for RCDC's same-thread fast path.
	lastOwner api.ThreadID
	lockQ     []api.ThreadID
	condQ     []condEntry
	barQ      []api.ThreadID
}

type condEntry struct {
	tid   api.ThreadID
	mutex api.Addr
}

// arrival is one thread stopped at the current fence.
type arrival struct {
	t          *thread
	runs       []mem.Run
	dirtyBytes uint64
	vt         vtime.Time
	// action executes the thread's synchronization operation in the serial
	// phase and reports whether the thread resumes into the next parallel
	// phase.
	action func() (resume bool)
}

// exec is one program execution.
type exec struct {
	quantum uint64
	rcdc    bool
	alloc   *alloc.Allocator
	global  *mem.Space

	mu       sync.Mutex
	threads  []*thread
	syncvars map[api.Addr]*syncVar
	// active counts threads expected at the current fence.
	active   int
	live     int
	arrivals []*arrival
	// resumed collects threads to refresh and wake at the end of the
	// current serial phase.
	resumed []*thread
	// phaseVT is the virtual time at which the last serial phase completed.
	phaseVT vtime.Time
	phases  uint64
	footHW  uint64
	err     error
	aborted bool
	wg      sync.WaitGroup
}

func (e *exec) syncvar(a api.Addr) *syncVar {
	sv, ok := e.syncvars[a]
	if !ok {
		sv = &syncVar{owner: -1, lastOwner: -1}
		e.syncvars[a] = sv
	}
	return sv
}

// Run executes main as thread 0.
func (r *Runtime) Run(main api.ThreadFunc) (*api.Report, error) {
	e := &exec{
		quantum:  r.Quantum,
		rcdc:     r.RCDC,
		alloc:    alloc.New(),
		global:   mem.NewSpace(),
		syncvars: make(map[api.Addr]*syncVar),
	}
	e.alloc.Register(0)
	t0 := &thread{
		exec:      e,
		id:        0,
		fn:        main,
		space:     e.global, // attached until the first spawn
		snapshots: make(map[mem.PageID][]byte),
		wake:      make(chan wakeEvent, 1),
		attached:  true,
	}
	e.threads = append(e.threads, t0)
	e.active, e.live = 1, 1

	start := stats.Now()
	e.wg.Add(1)
	go e.runThread(t0)
	e.wg.Wait()
	elapsed := stats.Since(start)

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return nil, e.err
	}
	rep := &api.Report{
		Observations: make(map[api.ThreadID][]uint64, len(e.threads)),
		Elapsed:      elapsed,
		Threads:      len(e.threads),
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, t := range e.threads {
		rep.Stats.Add(&t.st)
		rep.Observations[t.id] = t.obs
		put(uint64(t.id))
		put(uint64(len(t.obs)))
		for _, v := range t.obs {
			put(v)
		}
		if uint64(t.exitVT) > rep.VirtualTime {
			rep.VirtualTime = uint64(t.exitVT)
		}
	}
	put(e.global.Hash())
	rep.OutputHash = h.Sum64()
	rep.Stats.SharedMemBytes = e.alloc.HighWater()
	rep.Stats.RuntimeMemBytes = e.footHW
	return rep, nil
}

func (e *exec) runThread(t *thread) {
	defer e.wg.Done()
	defer func() {
		r := recover()
		if r != nil && r != errAborted { //nolint:errorlint // sentinel identity
			e.fail(fmt.Errorf("dthreads: thread %d panicked: %v", t.id, r))
		}
		t.exit(r != nil)
	}()
	t.fn(t)
}

var errAborted = fmt.Errorf("dthreads: execution aborted")

func (e *exec) fail(err error) {
	e.mu.Lock()
	e.failLocked(err)
	e.mu.Unlock()
}

func (e *exec) failLocked(err error) {
	if e.aborted {
		return
	}
	e.aborted = true
	e.err = err
	for _, t := range e.threads {
		if !t.exited {
			select {
			case t.wake <- wakeEvent{abort: true}:
			default:
			}
		}
	}
}

// onFault is the twin-page creation handler: DThreads write-protects the
// whole view at each phase start; the first write to a page snapshots it.
func (t *thread) onFault(pid mem.PageID, write bool) {
	if !write {
		return
	}
	if _, ok := t.snapshots[pid]; !ok {
		t.st.PageFaults++
		t.vt += vtime.Fault + vtime.SnapshotPage
		t.snapshots[pid] = t.space.Snapshot(pid)
		t.snapOrder = append(t.snapOrder, pid)
		t.st.StoresWithCopy++
	}
	t.space.Protect(pid, mem.ProtRW)
}

// computeDiff diffs the phase's dirty pages against their twins. The twin
// buffers go back to the page-buffer pool once the diff has consumed them.
func (t *thread) computeDiff() []mem.Run {
	var runs []mem.Run
	for _, pid := range t.snapOrder {
		snap := t.snapshots[pid]
		runs = append(runs, mem.DiffPage(pid, snap, t.space.PageData(pid))...)
		t.vt += vtime.DiffPage
		mem.PutPageBuf(snap)
		delete(t.snapshots, pid)
	}
	t.snapOrder = t.snapOrder[:0]
	return runs
}

// fence stops the thread at the global barrier with the given serial-phase
// action (§2: the parallel phase ends only when every active thread has
// arrived — the overhead RFDet eliminates). It returns after the serial
// phase, once the thread has been resumed (immediately, or later for
// threads whose action blocked them).
func (t *thread) fence(action func() bool) {
	e := t.exec
	e.mu.Lock()
	if e.aborted {
		e.mu.Unlock()
		panic(errAborted)
	}
	dirty := uint64(len(t.snapOrder)) * mem.PageSize
	ar := &arrival{t: t, runs: t.computeDiff(), dirtyBytes: dirty, vt: t.vt, action: action}
	e.arrivals = append(e.arrivals, ar)
	t.qused = 0
	if len(e.arrivals) == e.active {
		leaderResumed := e.serialPhaseLocked(t)
		e.mu.Unlock()
		if !leaderResumed {
			t.sleep()
		}
		return
	}
	e.mu.Unlock()
	t.sleep()
}

func (t *thread) sleep() {
	ev := <-t.wake
	if ev.abort {
		panic(errAborted)
	}
}

// serialPhaseLocked runs the serial phase: in ascending thread-ID order each
// arrival commits its diffs to the global store (token order resolves racy
// writes deterministically, higher IDs winning) and executes its
// synchronization action; then every resumed thread gets a fresh
// copy-on-write view of the global store. Returns whether the leader (the
// last arriver) resumed.
func (e *exec) serialPhaseLocked(leader *thread) bool {
	arrivals := e.arrivals
	e.arrivals = nil
	e.phases++
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].t.id < arrivals[j].t.id })

	// The fence: everyone waits for the slowest arrival.
	phaseEnd := e.phaseVT
	var dirtyBytes uint64
	for _, a := range arrivals {
		phaseEnd = vtime.Max(phaseEnd, a.vt)
		dirtyBytes += a.dirtyBytes
	}
	phaseEnd += vtime.FencePhase

	// Serialized commits + synchronization actions, token order.
	var serialCost vtime.Time
	for _, a := range arrivals {
		e.global.ApplyRuns(a.runs)
		serialCost += vtime.ApplyCost(uint64(len(a.runs)), mem.RunBytes(a.runs))
		if a.action != nil {
			if a.action() {
				e.resumed = append(e.resumed, a.t)
			}
		}
		serialCost += vtime.SyncBase
	}
	resumeVT := phaseEnd + serialCost
	e.phaseVT = resumeVT

	// Footprint high-water: the global store plus the arrivals' private
	// dirty copies and twins (Table 1, "DThreads (MB)").
	foot := e.global.ResidentBytes() + 2*dirtyBytes
	if foot > e.footHW {
		e.footHW = foot
	}

	// Refresh and wake every resumed thread.
	resumed := e.resumed
	e.resumed = nil
	leaderResumed := false
	for _, w := range resumed {
		w.refreshLocked(resumeVT)
		if w == leader {
			leaderResumed = true
			continue
		}
		w.wake <- wakeEvent{}
	}
	if e.live > 0 && e.active == 0 && !e.aborted {
		e.failLocked(fmt.Errorf("dthreads: deterministic deadlock: all %d live threads blocked", e.live))
	}
	return leaderResumed
}

// refreshLocked replaces the thread's view with a fresh copy-on-write clone
// of the global store and re-protects it (the per-phase mprotect sweep that
// DThreads pays at every fence).
func (t *thread) refreshLocked(at vtime.Time) {
	if t.attached {
		t.vt = at
		return
	}
	t.space.Release()
	t.space = t.exec.global.Clone()
	t.space.SetFaultHandler(t.onFault)
	n := t.space.ProtectAll(mem.ProtRead)
	t.st.PageProtects += uint64(n)
	t.vt = at + vtime.Time(n)*vtime.ProtectPage + vtime.LockHandoff
}

// exit is the thread's final synchronization operation.
func (t *thread) exit(abnormal bool) {
	e := t.exec
	if e.aborted || abnormal {
		e.mu.Lock()
		if !t.exited {
			t.exited = true
			t.exitVT = t.vt
			e.live--
			e.active--
		}
		e.mu.Unlock()
		return
	}
	t.fenceNoResume(func() bool {
		t.exited = true
		t.exitVT = t.vt
		e.live--
		e.active--
		for _, j := range t.joiners {
			e.active++
			e.resumed = append(e.resumed, j)
		}
		t.joiners = nil
		return false
	})
}

// fenceNoResume arrives at the fence with an action that never resumes the
// calling thread (exit).
func (t *thread) fenceNoResume(action func() bool) {
	e := t.exec
	e.mu.Lock()
	if e.aborted {
		e.mu.Unlock()
		return
	}
	ar := &arrival{t: t, runs: t.computeDiff(), vt: t.vt, action: action}
	e.arrivals = append(e.arrivals, ar)
	if len(e.arrivals) == e.active {
		e.serialPhaseLocked(t)
	}
	e.mu.Unlock()
}

//
// api.Thread implementation.
//

func (t *thread) ID() api.ThreadID { return t.id }

// tick advances the logical clock and, in CoreDet mode, ends the quantum.
func (t *thread) tick(n uint64) {
	t.vt += vtime.Time(n) * vtime.MemOp
	if t.exec.quantum == 0 {
		return
	}
	t.qused += n
	if t.qused >= t.exec.quantum {
		// Quantum expired: stop at the global barrier even though no
		// synchronization is needed (Figure 1).
		t.fence(func() bool { return true })
	}
}

func (t *thread) Tick(n uint64) { t.tick(n) }

func (t *thread) Observe(vals ...uint64) { t.obs = append(t.obs, vals...) }

func (t *thread) Load8(a api.Addr) uint8 {
	t.st.Loads++
	t.tick(1)
	return t.space.Load8(uint64(a))
}

func (t *thread) Store8(a api.Addr, v uint8) {
	t.st.Stores++
	t.tick(1)
	t.space.Store8(uint64(a), v)
}

func (t *thread) Load32(a api.Addr) uint32 {
	t.st.Loads++
	t.tick(1)
	return t.space.Load32(uint64(a))
}

func (t *thread) Store32(a api.Addr, v uint32) {
	t.st.Stores++
	t.tick(1)
	t.space.Store32(uint64(a), v)
}

func (t *thread) Load64(a api.Addr) uint64 {
	t.st.Loads++
	t.tick(1)
	return t.space.Load64(uint64(a))
}

func (t *thread) Store64(a api.Addr, v uint64) {
	t.st.Stores++
	t.tick(1)
	t.space.Store64(uint64(a), v)
}

func (t *thread) LoadF64(a api.Addr) float64 { return math.Float64frombits(t.Load64(a)) }

func (t *thread) StoreF64(a api.Addr, v float64) { t.Store64(a, math.Float64bits(v)) }

func (t *thread) ReadBytes(a api.Addr, buf []byte) {
	if len(buf) == 0 {
		return
	}
	t.st.Loads++
	t.tick(uint64(len(buf)))
	t.space.ReadBytes(uint64(a), buf)
}

func (t *thread) WriteBytes(a api.Addr, data []byte) {
	if len(data) == 0 {
		return
	}
	t.st.Stores++
	t.tick(uint64(len(data)))
	t.space.WriteBytes(uint64(a), data)
}

func (t *thread) Malloc(size uint64) api.Addr {
	t.tick(8)
	return api.Addr(t.exec.alloc.Malloc(int(t.id), size))
}

func (t *thread) Free(a api.Addr) {
	t.tick(8)
	if err := t.exec.alloc.Free(uint64(a)); err != nil {
		t.exec.fail(fmt.Errorf("dthreads: thread %d: %v", t.id, err))
		panic(errAborted)
	}
}

func (t *thread) Lock(m api.Addr) {
	t.st.Locks++
	t.vt += vtime.SyncBase
	e := t.exec
	if e.rcdc {
		// RCDC fast path (§3.1): re-acquiring a lock this thread itself
		// last released needs no communication, hence no barrier. The
		// eligibility test reads only fence-committed state (lastOwner
		// changes in serial phases or under this thread's own ownership),
		// so the decision is deterministic.
		e.mu.Lock()
		sv := e.syncvar(m)
		if !sv.held && sv.lastOwner == t.id {
			sv.held = true
			sv.owner = t.id
			e.mu.Unlock()
			return
		}
		e.mu.Unlock()
	}
	t.fence(func() bool {
		sv := e.syncvar(m)
		if sv.held {
			sv.lockQ = append(sv.lockQ, t.id)
			e.active--
			return false
		}
		sv.held = true
		sv.owner = t.id
		return true
	})
}

func (t *thread) Unlock(m api.Addr) {
	t.st.Unlocks++
	t.vt += vtime.SyncBase
	e := t.exec
	if e.rcdc {
		// RCDC fast path: releasing with no queued waiter defers the
		// publication of the critical section's writes to the next quantum
		// barrier (store-buffer semantics); a later same-thread re-acquire
		// needs none of that, and a cross-thread acquire fences anyway.
		e.mu.Lock()
		sv := e.syncvar(m)
		if sv.held && sv.owner == t.id && len(sv.lockQ) == 0 {
			sv.held = false
			sv.owner = -1
			sv.lastOwner = t.id
			e.mu.Unlock()
			return
		}
		e.mu.Unlock()
	}
	t.fence(func() bool {
		sv := e.syncvar(m)
		if !sv.held || sv.owner != t.id {
			e.failLocked(fmt.Errorf("dthreads: thread %d: unlock of mutex %#x not held by it", t.id, uint64(m)))
			return true
		}
		sv.lastOwner = t.id
		e.grantLocked(sv)
		return true
	})
}

// grantLocked releases the mutex, handing it to the lowest-queued waiter.
func (e *exec) grantLocked(sv *syncVar) {
	if len(sv.lockQ) > 0 {
		next := sv.lockQ[0]
		sv.lockQ = sv.lockQ[1:]
		sv.owner = next
		e.active++
		e.resumed = append(e.resumed, e.threads[next])
		return
	}
	sv.held = false
	sv.owner = -1
}

func (t *thread) Wait(c, m api.Addr) {
	t.st.Waits++
	t.vt += vtime.SyncBase
	e := t.exec
	t.fence(func() bool {
		svm := e.syncvar(m)
		if !svm.held || svm.owner != t.id {
			e.failLocked(fmt.Errorf("dthreads: thread %d: cond wait with mutex %#x not held", t.id, uint64(m)))
			return true
		}
		svm.lastOwner = t.id
		e.grantLocked(svm)
		svc := e.syncvar(c)
		svc.condQ = append(svc.condQ, condEntry{tid: t.id, mutex: m})
		e.active--
		return false
	})
}

func (t *thread) Signal(c api.Addr) { t.signal(c, false) }

func (t *thread) Broadcast(c api.Addr) { t.signal(c, true) }

func (t *thread) signal(c api.Addr, all bool) {
	t.st.Signals++
	t.vt += vtime.SyncBase
	e := t.exec
	t.fence(func() bool {
		svc := e.syncvar(c)
		n := 1
		if all {
			n = len(svc.condQ)
		}
		for i := 0; i < n && len(svc.condQ) > 0; i++ {
			entry := svc.condQ[0]
			svc.condQ = svc.condQ[1:]
			svm := e.syncvar(entry.mutex)
			if svm.held {
				svm.lockQ = append(svm.lockQ, entry.tid)
			} else {
				svm.held = true
				svm.owner = entry.tid
				e.active++
				e.resumed = append(e.resumed, e.threads[entry.tid])
			}
		}
		return true
	})
}

func (t *thread) Barrier(b api.Addr, n int) {
	t.st.Barriers++
	t.vt += vtime.SyncBase
	e := t.exec
	t.fence(func() bool {
		sv := e.syncvar(b)
		sv.barQ = append(sv.barQ, t.id)
		if len(sv.barQ) < n {
			e.active--
			return false
		}
		for _, tid := range sv.barQ {
			if tid == t.id {
				continue
			}
			e.active++
			e.resumed = append(e.resumed, e.threads[tid])
		}
		sv.barQ = nil
		return true
	})
}

// Spawn creates a child thread without a global fence: as with clone() in
// the real system, the child inherits the parent's memory view directly
// (including the parent's not-yet-committed writes, which reach the global
// store at the parent's next fence — and every fence is total, so no thread
// refreshes before that commit). Fencing at pthread_create would serialize
// fork/join map phases behind each spawn, which contradicts DThreads'
// measured near-pthreads performance on the Phoenix benchmarks.
func (t *thread) Spawn(fn api.ThreadFunc) api.ThreadID {
	t.st.Forks++
	t.vt += vtime.SyncBase
	e := t.exec
	e.mu.Lock()
	if e.aborted {
		e.mu.Unlock()
		panic(errAborted)
	}
	if t.attached {
		// First fork: detach from the global store into a private view.
		t.attached = false
		t.space = e.global.Clone()
		t.space.SetFaultHandler(t.onFault)
		t.space.ProtectAll(mem.ProtRead)
	}
	id := api.ThreadID(len(e.threads))
	child := &thread{
		exec:      e,
		id:        id,
		fn:        fn,
		space:     t.space.Clone(),
		snapshots: make(map[mem.PageID][]byte),
		wake:      make(chan wakeEvent, 1),
		vt:        t.vt + vtime.ThreadSpawn,
	}
	child.space.SetFaultHandler(child.onFault)
	child.space.ProtectAll(mem.ProtRead)
	e.alloc.Register(int(id))
	e.threads = append(e.threads, child)
	e.live++
	e.active++
	e.wg.Add(1)
	go e.runThread(child)
	e.mu.Unlock()
	return id
}

func (t *thread) Join(id api.ThreadID) {
	t.st.Joins++
	t.vt += vtime.SyncBase
	e := t.exec
	t.fence(func() bool {
		if id < 0 || int(id) >= len(e.threads) || id == t.id {
			e.failLocked(fmt.Errorf("dthreads: thread %d: invalid join of thread %d", t.id, id))
			return true
		}
		target := e.threads[id]
		if target.exited {
			t.vt = vtime.Max(t.vt, target.exitVT)
			return true
		}
		target.joiners = append(target.joiners, t)
		e.active--
		return false
	})
}

func (t *thread) AtomicAdd64(a api.Addr, delta uint64) uint64 {
	t.st.AtomicsOps++
	t.vt += vtime.SyncBase
	e := t.exec
	var out uint64
	t.fence(func() bool {
		out = e.global.Load64(uint64(a)) + delta
		e.global.Store64(uint64(a), out)
		return true
	})
	return out
}

func (t *thread) AtomicCAS64(a api.Addr, old, new uint64) bool {
	t.st.AtomicsOps++
	t.vt += vtime.SyncBase
	e := t.exec
	var ok bool
	t.fence(func() bool {
		if e.global.Load64(uint64(a)) == old {
			e.global.Store64(uint64(a), new)
			ok = true
		}
		return true
	})
	return ok
}
