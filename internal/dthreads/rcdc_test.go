package dthreads

import (
	"testing"

	"rfdet/internal/api"
)

// TestRCDCSameThreadFastPath verifies that re-acquiring a self-released
// lock avoids the fence under RCDC: a thread hammering its own lock while
// a slow compute thread runs finishes with a far smaller virtual time than
// under DThreads, where every lock operation waits for the compute thread.
func TestRCDCSameThreadFastPath(t *testing.T) {
	prog := func(th api.Thread) {
		x := th.Malloc(8)
		mu := api.Addr(64)
		slow := th.Spawn(func(c api.Thread) {
			c.Tick(500000)
		})
		locker := th.Spawn(func(c api.Thread) {
			for i := 0; i < 100; i++ {
				c.Lock(mu)
				c.Store64(x, c.Load64(x)+1)
				c.Unlock(mu)
			}
		})
		th.Join(slow)
		th.Join(locker)
		th.Observe(th.Load64(x))
	}
	rcdcRep, err := NewRCDC(100000).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	dtRep, err := New().Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rcdcRep.Observations[0][0] != 100 || dtRep.Observations[0][0] != 100 {
		t.Fatalf("counters: rcdc %v, dthreads %v", rcdcRep.Observations[0], dtRep.Observations[0])
	}
	// Both makespans are floored by the slow thread's 1.5M-vt compute.
	// Under RCDC the locker's 200 lock operations ride the fast path, so
	// the makespan stays near that floor; under DThreads each operation is
	// a fence that serializes against the compute thread's remaining work.
	const slowFloor = 500000 * 3 // ticks × MemOp
	if rcdcRep.VirtualTime > slowFloor+slowFloor/5 {
		t.Fatalf("RCDC fast path ineffective: vt=%d, want ≈%d", rcdcRep.VirtualTime, slowFloor)
	}
	if dtRep.VirtualTime < rcdcRep.VirtualTime+slowFloor/5 {
		t.Fatalf("DThreads should pay for its fences: dthreads vt=%d vs rcdc vt=%d",
			dtRep.VirtualTime, rcdcRep.VirtualTime)
	}
}

// TestRCDCCrossThreadHandoffStillFences reproduces §3.1's limitation: two
// threads alternating on one lock cannot avoid the barrier under RCDC, so
// the oblivious compute thread still delays them.
func TestRCDCCrossThreadHandoffStillFences(t *testing.T) {
	prog := func(th api.Thread) {
		x := th.Malloc(8)
		mu := api.Addr(64)
		slow := th.Spawn(func(c api.Thread) { c.Tick(300000) })
		var lockers []api.ThreadID
		for i := 0; i < 2; i++ {
			lockers = append(lockers, th.Spawn(func(c api.Thread) {
				for k := 0; k < 20; k++ {
					c.Lock(mu)
					c.Store64(x, c.Load64(x)+1)
					c.Unlock(mu)
					c.Tick(50)
				}
			}))
		}
		th.Join(slow)
		for _, id := range lockers {
			th.Join(id)
		}
		th.Observe(th.Load64(x))
	}
	rep, err := NewRCDC(50000).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Observations[0][0] != 40 {
		t.Fatalf("counter = %d, want 40", rep.Observations[0][0])
	}
	// The handoffs fence, so the makespan is bounded below by the slow
	// thread plus fence traffic — well above the lockers' own work.
	if rep.VirtualTime < 300000 {
		t.Fatalf("cross-thread handoffs skipped the barrier: vt=%d", rep.VirtualTime)
	}
}

// TestRCDCDeterministic: the fast path must not break determinism, and the
// final state must match DThreads' for race-free programs (commutative
// updates, so schedules cannot matter).
func TestRCDCDeterministic(t *testing.T) {
	prog := func(th api.Thread) {
		x := th.Malloc(8)
		mu := api.Addr(64)
		var ids []api.ThreadID
		for i := 0; i < 3; i++ {
			me := uint64(i + 1)
			ids = append(ids, th.Spawn(func(c api.Thread) {
				for k := 0; k < 15; k++ {
					c.Lock(mu)
					c.Store64(x, c.Load64(x)+me)
					c.Unlock(mu)
					c.Tick(100)
				}
			}))
		}
		for _, id := range ids {
			th.Join(id)
		}
		th.Observe(th.Load64(x))
	}
	rt := NewRCDC(10000)
	if rt.Name() != "rcdc" {
		t.Fatalf("Name = %s", rt.Name())
	}
	var first uint64
	for i := 0; i < 3; i++ {
		rep, err := rt.Run(prog)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Observations[0][0] != 15*(1+2+3) {
			t.Fatalf("counter = %d", rep.Observations[0][0])
		}
		if i == 0 {
			first = rep.OutputHash
		} else if rep.OutputHash != first {
			t.Fatal("rcdc nondeterministic")
		}
	}
}

// TestRCDCMutualExclusion: the fast path must never let two threads hold
// the same lock. A shared "inside" flag catches violations.
func TestRCDCMutualExclusion(t *testing.T) {
	rep, err := NewRCDC(5000).Run(func(th api.Thread) {
		mu := api.Addr(64)
		inside := th.Malloc(8)
		bad := th.Malloc(8)
		var ids []api.ThreadID
		for i := 0; i < 4; i++ {
			ids = append(ids, th.Spawn(func(c api.Thread) {
				for k := 0; k < 10; k++ {
					c.Lock(mu)
					if c.Load64(inside) != 0 {
						c.Store64(bad, 1)
					}
					c.Store64(inside, 1)
					c.Tick(20)
					c.Store64(inside, 0)
					c.Unlock(mu)
				}
			}))
		}
		for _, id := range ids {
			th.Join(id)
		}
		th.Observe(th.Load64(bad))
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Observations[0][0] != 0 {
		t.Fatal("two threads were inside the critical section")
	}
}
