// Package stats provides the small numeric helpers used when aggregating
// benchmark results (means, geometric means, normalization), plus the
// wall-clock plumbing deterministic packages use to accumulate observability
// nanos (Stats.DiffNanos and friends).
package stats

import (
	"math"
	"time"
)

// Now returns the current wall-clock time. Deterministic packages
// (internal/core, internal/mem, internal/slicestore) must take wall-clock
// readings through Now/Since rather than calling time.Now directly: the
// detvet wallclock analyzer flags direct calls, and funneling them here makes
// every observability-only reading auditable in one place. Wall-clock values
// obtained this way must never feed outputs, virtual times, or traces.
func Now() time.Time { return time.Now() }

// Since returns the wall-clock duration elapsed since t. See Now.
func Since(t time.Time) time.Duration { return time.Since(t) }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty input). Non-positive
// values are skipped, as they would be measurement errors for time ratios.
func GeoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Ratio returns num/den, or 0 when den is 0. Used for speedup and
// normalization figures where a missing baseline should read as "no data"
// rather than Inf/NaN.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
