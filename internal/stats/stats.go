// Package stats provides the small numeric helpers used when aggregating
// benchmark results (means, geometric means, normalization).
package stats

import "math"

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty input). Non-positive
// values are skipped, as they would be measurement errors for time ratios.
func GeoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Ratio returns num/den, or 0 when den is 0. Used for speedup and
// normalization figures where a missing baseline should read as "no data"
// rather than Inf/NaN.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
