// Package stats provides the small numeric helpers used when aggregating
// benchmark results (means, geometric means, normalization), plus the
// wall-clock plumbing deterministic packages use to accumulate observability
// nanos (Stats.DiffNanos and friends).
package stats

import (
	"math"
	"sync/atomic"
	"time"
)

// Now returns the current wall-clock time. Deterministic packages
// (internal/core, internal/mem, internal/slicestore) must take wall-clock
// readings through Now/Since rather than calling time.Now directly: the
// detvet wallclock analyzer flags direct calls, and funneling them here makes
// every observability-only reading auditable in one place. Wall-clock values
// obtained this way must never feed outputs, virtual times, or traces.
func Now() time.Time { return time.Now() }

// Since returns the wall-clock duration elapsed since t. See Now.
func Since(t time.Time) time.Duration { return time.Since(t) }

// Striped is a set of independently updated int64 cells, one per stripe,
// each padded out to its own cache line. Sharded subsystems (the commit
// monitor domains, the metadata space's per-domain usage attribution) use it
// so that concurrent bookkeeping from different domains never bounces a
// shared cache line. Stripe indices are taken modulo the stripe count, so
// any non-negative hint (a thread id, a shard id) is a valid stripe.
type Striped struct {
	cells []stripedCell
}

// stripedCell pads each counter to 64 bytes so adjacent stripes do not
// false-share a cache line.
type stripedCell struct {
	n atomic.Int64
	_ [56]byte
}

// NewStriped returns a striped counter with n stripes (minimum 1).
func NewStriped(n int) *Striped {
	if n < 1 {
		n = 1
	}
	return &Striped{cells: make([]stripedCell, n)}
}

// Len returns the stripe count.
func (s *Striped) Len() int { return len(s.cells) }

func (s *Striped) stripe(i int) *stripedCell {
	i %= len(s.cells)
	if i < 0 {
		i += len(s.cells)
	}
	return &s.cells[i]
}

// Add adds delta to the given stripe and returns that stripe's post-add
// value.
func (s *Striped) Add(stripe int, delta int64) int64 {
	return s.stripe(stripe).n.Add(delta)
}

// Load returns the given stripe's current value.
func (s *Striped) Load(stripe int) int64 { return s.stripe(stripe).n.Load() }

// Sum returns the sum over all stripes. It is not a linearizable snapshot
// under concurrent Adds; callers needing an exact budget keep a separate
// single atomic (see slicestore.MapStore and slicestore.EpochStore).
func (s *Striped) Sum() int64 {
	var t int64
	for i := range s.cells {
		t += s.cells[i].n.Load()
	}
	return t
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty input). Non-positive
// values are skipped, as they would be measurement errors for time ratios.
func GeoMean(xs []float64) float64 {
	var s float64
	n := 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Ratio returns num/den, or 0 when den is 0. Used for speedup and
// normalization figures where a missing baseline should read as "no data"
// rather than Inf/NaN.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
