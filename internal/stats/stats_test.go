package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	if !approx(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean wrong")
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
	if !approx(GeoMean([]float64{2, 8}), 4) {
		t.Fatalf("geomean = %v", GeoMean([]float64{2, 8}))
	}
	// Non-positive values are skipped, not fatal.
	if !approx(GeoMean([]float64{0, -1, 4}), 4) {
		t.Fatal("geomean should skip non-positive values")
	}
	if GeoMean([]float64{0}) != 0 {
		t.Fatal("all-non-positive geomean should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("min/max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max should be 0")
	}
}

func TestRatio(t *testing.T) {
	if !approx(Ratio(6, 2), 3) {
		t.Fatalf("Ratio(6,2) = %v", Ratio(6, 2))
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("zero denominator should yield 0, not Inf")
	}
	if Ratio(0, 5) != 0 {
		t.Fatal("zero numerator should yield 0")
	}
}

func TestStddev(t *testing.T) {
	if Stddev([]float64{5}) != 0 {
		t.Fatal("single-element stddev should be 0")
	}
	if !approx(Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}), 2) {
		t.Fatalf("stddev = %v", Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

// Properties: the geometric mean of positive values lies between min and
// max, and is bounded above by the arithmetic mean (AM–GM).
func TestGeoMeanProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v%1000) + 1 // positive
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9 && g <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStripedBasics(t *testing.T) {
	s := NewStriped(4)
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if got := s.Add(1, 10); got != 10 {
		t.Fatalf("Add(1,10) = %d, want 10", got)
	}
	if got := s.Add(1, 5); got != 15 {
		t.Fatalf("Add(1,5) = %d, want 15 (post-add value)", got)
	}
	s.Add(3, 7)
	if s.Load(1) != 15 || s.Load(3) != 7 || s.Load(0) != 0 {
		t.Fatalf("loads = %d,%d,%d", s.Load(0), s.Load(1), s.Load(3))
	}
	if s.Sum() != 22 {
		t.Fatalf("Sum = %d, want 22", s.Sum())
	}
}

func TestStripedIndexWrap(t *testing.T) {
	s := NewStriped(3)
	s.Add(5, 1)  // wraps to stripe 2
	s.Add(-1, 1) // negative hints wrap too, rather than panicking
	if s.Load(2) != 2 {
		t.Fatalf("stripe 2 = %d, want 2 (5 mod 3 and -1 mod 3)", s.Load(2))
	}
	if s.Sum() != 2 {
		t.Fatalf("Sum = %d, want 2", s.Sum())
	}
}

func TestStripedMinimumOneStripe(t *testing.T) {
	s := NewStriped(0)
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want clamped minimum 1", s.Len())
	}
	s.Add(9, 4)
	if s.Load(0) != 4 {
		t.Fatalf("single stripe = %d, want 4", s.Load(0))
	}
}
