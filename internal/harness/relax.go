package harness

// Race-aware ordering relaxation artifacts (DESIGN.md §15). A race-detecting
// run doubles as a profiler: every sync var it observes as thread-local is a
// turn-wait the relaxed replay may elide without changing any deterministic
// observable. This file packages the record → stability-merge → replay loop
// the way a deployment would run it, and renders the turn-wait-reduction
// table EXPERIMENTS.md cites.

import (
	"fmt"
	"io"

	"rfdet/internal/api"
	"rfdet/internal/core"
	"rfdet/internal/racecheck"
	"rfdet/internal/trace"
	"rfdet/internal/workloads"
)

// RecordRelaxProfile executes the program twice under the happens-before race
// detector (on top of the given option stack) and stability-merges the two
// recorded relaxation profiles: the result keeps only sync vars thread-local
// in both runs and errors if the runs' race reports disagree — a workload too
// unstable to profile is refused, never relaxed.
func RecordRelaxProfile(opts core.Options, prog api.ThreadFunc) (*racecheck.Profile, error) {
	rec := opts
	rec.RaceDetect = true
	rec.RaceRelaxed = false
	rec.RelaxProfile = nil
	a, err := core.New(rec).Run(prog)
	if err != nil {
		return nil, fmt.Errorf("harness: relax-profile run 1: %w", err)
	}
	b, err := core.New(rec).Run(prog)
	if err != nil {
		return nil, fmt.Errorf("harness: relax-profile run 2: %w", err)
	}
	return racecheck.MergeStable(a.RelaxProfile, b.RelaxProfile)
}

// RelaxedServerVariant records a relaxation profile for the seeded KV-server
// request log and returns a replica variant that replays it with
// Options.RaceRelaxed. Appended to DefaultVariants, the divergence check then
// enforces the relaxation soundness contract end to end: the relaxed replica
// must stay byte-identical to every strict one.
func RelaxedServerVariant(cfg workloads.Config, seed uint64) (ReplicaVariant, error) {
	p, err := RecordRelaxProfile(core.DefaultOptions(), workloads.ServerSeeded(cfg, seed))
	if err != nil {
		return ReplicaVariant{}, err
	}
	o := core.DefaultOptions()
	o.RaceRelaxed = true
	o.RelaxProfile = p
	o.PhaseTrace = true
	return ReplicaVariant{Name: "relaxed", Opts: o}, nil
}

// RelaxationTable renders the turn-wait-reduction artifact: for every
// benchmark it records a relaxation profile (two race-detecting runs,
// stability-merged), replays strict and relaxed, and reports how many
// turn-waits the profile removed — with the deterministic observables
// cross-checked between the two runs on every row. Wall-clock turn-wait
// totals are host-dependent observability; the elision counts and the
// equal-output verdict are not.
func RelaxationTable(out io.Writer, size workloads.Size, threads int) error {
	cfg := workloads.Config{Threads: threads, Size: size}
	fmt.Fprintf(out, "Race-aware ordering relaxation: turn-wait elision per benchmark (%d threads, size %s)\n\n",
		threads, size)
	fmt.Fprintf(out, "%-18s %6s | %9s %9s %8s %7s | %9s %9s | %6s %8s\n",
		"benchmark", "locals",
		"tw-strict", "tw-relax", "elided", "elide%",
		"turn-us-s", "turn-us-r",
		"fallbk", "verdict")
	for _, w := range workloads.All() {
		profile, err := RecordRelaxProfile(core.DefaultOptions(), w.Prog(cfg))
		if err != nil {
			return fmt.Errorf("%s: %w", w.Name, err)
		}

		strictOpts := core.DefaultOptions()
		strictOpts.PhaseTrace = true
		strict, err := Run(core.New(strictOpts), w, cfg, 1)
		if err != nil {
			return err
		}
		relOpts := strictOpts
		relOpts.RaceRelaxed = true
		relOpts.RelaxProfile = profile
		relaxed, err := Run(core.New(relOpts), w, cfg, 1)
		if err != nil {
			return err
		}

		sr, ss := relaxed.Report.Stats, strict.Report.Stats
		verdict := "EQUAL"
		if relaxed.Report.OutputHash != strict.Report.OutputHash ||
			relaxed.Report.VirtualTime != strict.Report.VirtualTime {
			verdict = "DIVERGED"
		}
		elidePct := 0.0
		if attempted := sr.TurnWaits + sr.ElidedTurnWaits; attempted > 0 {
			elidePct = 100 * float64(sr.ElidedTurnWaits) / float64(attempted)
		}
		fmt.Fprintf(out, "%-18s %6d | %9d %9d %8d %6.1f%% | %9d %9d | %6d %8s\n",
			w.Name, len(profile.Local),
			ss.TurnWaits, sr.TurnWaits, sr.ElidedTurnWaits, elidePct,
			strict.Report.Phases.PhaseTotals()[trace.PhaseTurnWait].Microseconds(),
			relaxed.Report.Phases.PhaseTotals()[trace.PhaseTurnWait].Microseconds(),
			sr.RelaxUnsafeFallbacks, verdict)
		if verdict != "EQUAL" {
			return fmt.Errorf("harness: %s relaxed run diverged from strict (fallbacks %d)",
				w.Name, sr.RelaxUnsafeFallbacks)
		}
		if sr.RelaxUnsafeFallbacks != 0 {
			return fmt.Errorf("harness: %s: correct profile produced %d fallbacks",
				w.Name, sr.RelaxUnsafeFallbacks)
		}
	}
	fmt.Fprintln(out, "\nlocals is the profiled thread-local sync-var count; elided turn-waits skip the")
	fmt.Fprintln(out, "Kendo spin entirely (prong 2). Every relaxed run is byte-compared against its")
	fmt.Fprintln(out, "strict twin — EQUAL means identical output hash and virtual time, and a correct")
	fmt.Fprintln(out, "profile must finish with zero unsafe fallbacks (the certification contract).")
	return nil
}
