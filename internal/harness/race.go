package harness

import (
	"fmt"
	"io"

	"rfdet/internal/api"
	"rfdet/internal/core"
	"rfdet/internal/litmus"
	"rfdet/internal/workloads"
)

// NewRFDetCIRace returns RFDet-ci with the happens-before race detector
// enabled. Detection is strictly observational: outputs, virtual times and
// traces are identical to NewRFDetCI's; Report.Races carries the
// deterministic race report.
func NewRFDetCIRace() api.Runtime {
	opts := core.DefaultOptions()
	opts.RaceDetect = true
	return core.New(opts)
}

// RaceTable renders the happens-before race-detection artifact: the litmus
// suite and the racey stress classified by the detector. Each kernel's race
// count is checked against its static classification (litmus.Test.Racy /
// RaceInvisible), and every kernel is run twice with the report byte-compared
// — the detector's output must be a pure function of the program.
func RaceTable(out io.Writer, size workloads.Size, threads int) error {
	fmt.Fprintf(out, "Happens-before race detection (RFDet-ci + RaceDetect, deterministic report)\n\n")
	fmt.Fprintf(out, "%-12s %8s %10s %-12s %s\n", "kernel", "races", "accesses", "verdict", "notes")

	runTwice := func(name string, run func() (*api.Report, error)) (*api.Report, error) {
		rep1, err := run()
		if err != nil {
			return nil, err
		}
		rep2, err := run()
		if err != nil {
			return nil, err
		}
		if rep1.Races == nil || rep2.Races == nil {
			return nil, fmt.Errorf("harness: %s ran without a race report", name)
		}
		if rep1.Races.String() != rep2.Races.String() {
			return nil, fmt.Errorf("harness: %s race report not deterministic:\n%s\nvs\n%s",
				name, rep1.Races, rep2.Races)
		}
		return rep1, nil
	}

	for _, tst := range litmus.Tests() {
		tst := tst
		rep, err := runTwice(tst.Name, func() (*api.Report, error) {
			return litmus.RunReport(NewRFDetCIRace(), tst)
		})
		if err != nil {
			return err
		}
		races := len(rep.Races.Races)
		var verdict, note string
		switch {
		case tst.Racy && tst.RaceInvisible:
			note = "racy, but changed bytes never overlap (§4.6 exclusion)"
			verdict = "blind spot"
			if races != 0 {
				return fmt.Errorf("harness: litmus %s: %d races reported for a byte-invisible race", tst.Name, races)
			}
		case tst.Racy:
			note = "data race by construction"
			verdict = "RACY"
			if races == 0 {
				return fmt.Errorf("harness: litmus %s: racy kernel reported no races", tst.Name)
			}
		default:
			note = "fully synchronized"
			verdict = "race-free"
			if races != 0 {
				return fmt.Errorf("harness: litmus %s: %d false races on a race-free kernel:\n%s",
					tst.Name, races, rep.Races)
			}
		}
		fmt.Fprintf(out, "%-12s %8d %10d %-12s %s\n",
			tst.Name, races, rep.Races.AccessesRecorded, verdict, note)
	}

	racey, err := workloads.ByName("racey")
	if err != nil {
		return err
	}
	cfg := workloads.Config{Threads: threads, Size: size}
	rep, err := runTwice("racey", func() (*api.Report, error) {
		return NewRFDetCIRace().Run(racey.Prog(cfg))
	})
	if err != nil {
		return err
	}
	if len(rep.Races.Races) == 0 {
		return fmt.Errorf("harness: racey reported no races")
	}
	fmt.Fprintf(out, "%-12s %8d %10d %-12s %s\n", "racey", len(rep.Races.Races),
		rep.Races.AccessesRecorded, "RACY", fmt.Sprintf("§5.1 stress, %d threads; report hash %#016x", threads, rep.Races.Hash()))

	// The KV server: a full server-shaped execution — queue, shard locks,
	// barrier, atomics — that the detector must certify race-free. Every
	// response slot is written by exactly one worker and read only after the
	// joins, so any reported race is a detector false positive or a real
	// synchronization bug in the workload.
	server, err := workloads.ByName("server")
	if err != nil {
		return err
	}
	rep, err = runTwice("server", func() (*api.Report, error) {
		return NewRFDetCIRace().Run(server.Prog(cfg))
	})
	if err != nil {
		return err
	}
	if n := len(rep.Races.Races); n != 0 {
		return fmt.Errorf("harness: server: %d races on the data-race-free KV server:\n%s", n, rep.Races)
	}
	fmt.Fprintf(out, "%-12s %8d %10d %-12s %s\n", "server", 0,
		rep.Races.AccessesRecorded, "race-free",
		fmt.Sprintf("KV server, %d workers: fully synchronized, order-dependent", threads))

	fmt.Fprintln(out, "\nEvery kernel was run twice and its race report byte-compared: the report is")
	fmt.Fprintln(out, "a deterministic artifact, like the output hash. \"blind spot\" rows are racy")
	fmt.Fprintln(out, "programs whose racing stores change disjoint or identical bytes — invisible")
	fmt.Fprintln(out, "to byte-granularity happens-before detection by design (DESIGN.md §12).")
	return nil
}
