// Package harness runs (workload × runtime × thread-count) matrices and
// renders the paper's evaluation artifacts: Figure 7 (normalized execution
// time), Table 1 (profiling data), Figure 8 (scalability), Figure 9
// (optimization study) and the §5.1 racey determinism check.
//
// All performance comparisons use the deterministic virtual-time makespan
// (internal/vtime) rather than host wall-clock time, so the regenerated
// figures are host-independent; wall-clock durations are reported alongside
// for reference.
package harness

import (
	"fmt"
	"io"
	"strings"

	"rfdet/internal/api"
	"rfdet/internal/core"
	"rfdet/internal/dthreads"
	"rfdet/internal/pthreads"
	"rfdet/internal/stats"
	"rfdet/internal/trace"
	"rfdet/internal/workloads"
)

// Result is one workload execution on one runtime.
type Result struct {
	Workload string
	Runtime  string
	Threads  int
	Report   *api.Report
}

// Run executes the workload on the runtime, repeating and keeping the run
// with the median virtual time (repeats ≤ 1 runs once).
func Run(rt api.Runtime, w workloads.Workload, cfg workloads.Config, repeats int) (*Result, error) {
	if repeats < 1 {
		repeats = 1
	}
	var reports []*api.Report
	for i := 0; i < repeats; i++ {
		rep, err := rt.Run(w.Prog(cfg))
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", w.Name, rt.Name(), err)
		}
		reports = append(reports, rep)
	}
	// Median by virtual time.
	best := reports[0]
	if len(reports) > 1 {
		for i := 1; i < len(reports); i++ {
			for j := i; j > 0 && reports[j].VirtualTime < reports[j-1].VirtualTime; j-- {
				reports[j], reports[j-1] = reports[j-1], reports[j]
			}
		}
		best = reports[len(reports)/2]
	}
	return &Result{Workload: w.Name, Runtime: rt.Name(), Threads: cfg.Threads, Report: best}, nil
}

// NewRFDetCI returns the paper's best configuration (RFDet-ci, all
// optimizations).
func NewRFDetCI() api.Runtime { return core.New(core.DefaultOptions()) }

// NewRFDetPF returns RFDet-pf with all optimizations.
func NewRFDetPF() api.Runtime {
	opts := core.DefaultOptions()
	opts.Monitor = core.MonitorPF
	return core.New(opts)
}

// Figure7 regenerates Figure 7: execution time of DThreads, RFDet-pf and
// RFDet-ci normalized to pthreads for every benchmark at the given thread
// count. The paper reports (4 threads, AMD testbed): RFDet-ci ~1.35x,
// RFDet-pf ~1.73x, DThreads ~2.5x on average, with DThreads' worst case
// ~10x (lu-non) and RFDet's worst case ~2.6x (ocean).
func Figure7(out io.Writer, size workloads.Size, threads, repeats int) error {
	cfg := workloads.Config{Threads: threads, Size: size}
	rts := []api.Runtime{pthreads.New(), dthreads.New(), NewRFDetPF(), NewRFDetCI()}

	fmt.Fprintf(out, "Figure 7: execution time normalized to pthreads (%d threads, size %s, virtual-time makespan)\n\n",
		threads, size)
	fmt.Fprintf(out, "%-18s %9s %11s %11s %11s\n", "benchmark", "pthreads", "dthreads", "rfdet-pf", "rfdet-ci")

	norms := map[string][]float64{}
	for _, w := range workloads.All() {
		base := 0.0
		row := fmt.Sprintf("%-18s", w.Name)
		for _, rt := range rts {
			res, err := Run(rt, w, cfg, repeats)
			if err != nil {
				return err
			}
			vt := float64(res.Report.VirtualTime)
			if rt.Name() == "pthreads" {
				base = vt
				row += fmt.Sprintf(" %8.2fx", 1.0)
				continue
			}
			n := vt / base
			norms[rt.Name()] = append(norms[rt.Name()], n)
			row += fmt.Sprintf(" %10.2fx", n)
		}
		fmt.Fprintln(out, row)
	}
	fmt.Fprintf(out, "%-18s %9s %10.2fx %10.2fx %10.2fx\n", "geomean", "1.00x",
		stats.GeoMean(norms["dthreads"]), stats.GeoMean(norms["rfdet-pf"]), stats.GeoMean(norms["rfdet-ci"]))
	fmt.Fprintf(out, "%-18s %9s %10.2fx %10.2fx %10.2fx\n", "worst case", "",
		stats.Max(norms["dthreads"]), stats.Max(norms["rfdet-pf"]), stats.Max(norms["rfdet-ci"]))
	ciOver := (stats.GeoMean(norms["rfdet-ci"]) - 1) * 100
	pfOver := (stats.GeoMean(norms["rfdet-pf"]) - 1) * 100
	fmt.Fprintf(out, "\nRFDet-ci overhead %.1f%%, RFDet-pf overhead %.1f%% vs pthreads;\n", ciOver, pfOver)
	fmt.Fprintf(out, "RFDet-ci speedup over DThreads: %.2fx (paper: ~1.8x)\n",
		stats.GeoMean(norms["dthreads"])/stats.GeoMean(norms["rfdet-ci"]))
	return nil
}

// Table1 regenerates Table 1: profiling data of benchmark executions —
// synchronization-operation counts, memory-operation counts, stores that
// copied a page, memory footprints under pthreads/RFDet/DThreads, and the
// slice garbage-collection count.
func Table1(out io.Writer, size workloads.Size, threads int) error {
	cfg := workloads.Config{Threads: threads, Size: size}
	fmt.Fprintf(out, "Table 1: profiling data (%d threads, size %s)\n\n", threads, size)
	fmt.Fprintf(out, "%-18s %8s %11s %6s | %10s %10s %10s %8s | %9s %9s %9s %4s\n",
		"benchmark", "lock/unl", "wait/signal", "fork",
		"mem", "load", "store", "st w/cp",
		"pthr(KB)", "rfdet(KB)", "dthr(KB)", "GC")
	for _, w := range workloads.All() {
		ci, err := Run(NewRFDetCI(), w, cfg, 1)
		if err != nil {
			return err
		}
		pt, err := Run(pthreads.New(), w, cfg, 1)
		if err != nil {
			return err
		}
		dt, err := Run(dthreads.New(), w, cfg, 1)
		if err != nil {
			return err
		}
		s := ci.Report.Stats
		fmt.Fprintf(out, "%-18s %8d %5d/%-5d %6d | %10d %10d %10d %8d | %9d %9d %9d %4d\n",
			w.Name,
			s.Locks, s.Waits, s.Signals, s.Forks,
			s.MemOps(), s.Loads, s.Stores, s.StoresWithCopy,
			pt.Report.Stats.RuntimeMemBytes/1024,
			s.RuntimeMemBytes/1024,
			dt.Report.Stats.RuntimeMemBytes/1024,
			s.GCCount)
	}
	fmt.Fprintln(out, "\nColumns mirror the paper's Table 1; footprints follow the §5.4 equations")
	fmt.Fprintln(out, "(pthreads = shared; RFDet = N*shared + metadata; DThreads = global + dirty copies).")
	return nil
}

// PropagationTable renders the coalesced write-plan propagation profile of
// every workload under RFDet-ci (all optimizations): slice pointers scanned
// by acquire-side collections, the high-water collected-list length, the
// propagated and coalesced-away byte volumes, plan reuses by blocked
// waiters, and the wall time spent in slice application. This is the
// observability companion to BenchmarkBarrierPropagation /
// BenchmarkLockChainPropagation (EXPERIMENTS.md).
func PropagationTable(out io.Writer, size workloads.Size, threads int) error {
	cfg := workloads.Config{Threads: threads, Size: size}
	fmt.Fprintf(out, "Write-plan propagation profile (%d threads, size %s, RFDet-ci)\n\n", threads, size)
	fmt.Fprintf(out, "%-18s %10s %8s | %12s %12s %7s | %9s %9s\n",
		"benchmark", "scanned", "maxlist",
		"prop(B)", "away(B)", "away%",
		"planreuse", "apply-us")
	for _, w := range workloads.All() {
		r, err := Run(NewRFDetCI(), w, cfg, 1)
		if err != nil {
			return err
		}
		s := r.Report.Stats
		awayPct := 0.0
		if s.BytesPropagated > 0 {
			awayPct = 100 * float64(s.BytesCoalescedAway) / float64(s.BytesPropagated)
		}
		fmt.Fprintf(out, "%-18s %10d %8d | %12d %12d %6.1f%% | %9d %9d\n",
			w.Name,
			s.CollectScanned, s.SliceListLen,
			s.BytesPropagated, s.BytesCoalescedAway, awayPct,
			s.PlanReuse, s.ApplyNanos/1000)
	}
	fmt.Fprintln(out, "\n\"away\" bytes were written by some propagated slice but overwritten inside the")
	fmt.Fprintln(out, "same collected list: the last-writer-wins plan never writes them at all.")
	return nil
}

// SliceStoreTable profiles the metadata space under both store
// implementations: every workload runs once with the seed map store and once
// with the epoch store (all other options identical), asserting bit-identical
// output and virtual time — the store is pure bookkeeping — and reporting
// the high-water metadata footprint, the GC pass split (reclaiming vs
// empty), and the epoch store's segment and arena-recycling counters.
func SliceStoreTable(out io.Writer, size workloads.Size, threads int) error {
	cfg := workloads.Config{Threads: threads, Size: size}
	fmt.Fprintf(out, "Metadata-store profile (%d threads, size %s, RFDet-ci)\n\n", threads, size)
	fmt.Fprintf(out, "%-18s | %9s %5s %6s | %9s %5s %6s %6s %8s %7s %10s\n",
		"benchmark",
		"map(KB)", "gc", "empty",
		"epoch(KB)", "gc", "empty", "segs", "drop", "reuse%", "intern(KB)")
	for _, w := range workloads.All() {
		mapOpts := core.DefaultOptions()
		mapOpts.EpochStore = false
		mr, err := Run(core.New(mapOpts), w, cfg, 1)
		if err != nil {
			return err
		}
		er, err := Run(core.New(core.DefaultOptions()), w, cfg, 1)
		if err != nil {
			return err
		}
		if mr.Report.OutputHash != er.Report.OutputHash || mr.Report.VirtualTime != er.Report.VirtualTime {
			return fmt.Errorf("%s: stores disagree (map output=%#x vtime=%d, epoch output=%#x vtime=%d)",
				w.Name, mr.Report.OutputHash, mr.Report.VirtualTime, er.Report.OutputHash, er.Report.VirtualTime)
		}
		ms, es := mr.Report.Stats, er.Report.Stats
		reusePct := 0.0
		if gets := es.ArenaChunksAllocated + es.ArenaChunksReused; gets > 0 {
			reusePct = 100 * float64(es.ArenaChunksReused) / float64(gets)
		}
		fmt.Fprintf(out, "%-18s | %9d %5d %6d | %9d %5d %6d %6d %8d %6.1f%% %10d\n",
			w.Name,
			ms.MetadataBytes/1024, ms.GCCount, ms.GCEmptyPasses,
			es.MetadataBytes/1024, es.GCCount, es.GCEmptyPasses,
			es.StoreSegments, es.StoreSegmentsDropped, reusePct,
			es.ArenaBytesInterned/1024)
	}
	fmt.Fprintln(out, "\nBoth columns ran the same programs to the same outputs and virtual times;")
	fmt.Fprintln(out, "the store only changes how collected slices' bytes are reclaimed (§4.5).")
	return nil
}

// NewRFDetCITraced returns RFDet-ci with phase-level wall-clock tracing
// enabled. Tracing is observational: the deterministic output is identical to
// NewRFDetCI's.
func NewRFDetCITraced() api.Runtime {
	opts := core.DefaultOptions()
	opts.PhaseTrace = true
	return core.New(opts)
}

// PhaseTable renders the phase-level wall-clock breakdown of every workload
// under RFDet-ci: where each execution actually spends its host time — turn
// waits, monitor waits, slice diffing, plan building, slice application,
// prelock pre-merges, lazy flushes, blocked time, and the remainder (user
// compute). Durations are wall-clock and host-dependent; the table is
// observability only and is not part of the deterministic artifact set.
func PhaseTable(out io.Writer, size workloads.Size, threads int) error {
	cfg := workloads.Config{Threads: threads, Size: size}
	fmt.Fprintf(out, "Phase-level wall-clock breakdown (%d threads, size %s, RFDet-ci, host-dependent)\n\n", threads, size)
	fmt.Fprintf(out, "%-18s %8s %8s %8s %8s %8s %8s %8s %9s %8s %8s | %8s %8s %8s\n",
		"benchmark", "turn-us", "mon-us", "diff-us", "plan-us", "apply-us",
		"premrg-us", "lazy-us", "block-us", "user-us", "wall-us",
		"tw-p50", "tw-p95", "tw-p99")
	for _, w := range workloads.All() {
		r, err := Run(NewRFDetCITraced(), w, cfg, 1)
		if err != nil {
			return err
		}
		ph := r.Report.Phases
		if ph == nil {
			return fmt.Errorf("harness: %s ran without a phase report", w.Name)
		}
		tot := ph.PhaseTotals()
		us := func(p trace.Phase) int64 { return tot[p].Microseconds() }
		pct := ph.PhasePercentiles()[trace.PhaseTurnWait]
		fmt.Fprintf(out, "%-18s %8d %8d %8d %8d %8d %8d %8d %9d %8d %8d | %7dns %7dns %7dns\n",
			w.Name,
			us(trace.PhaseTurnWait), us(trace.PhaseMonitorWait),
			us(trace.PhaseDiff), us(trace.PhasePlanBuild),
			us(trace.PhaseApply), us(trace.PhasePremerge),
			us(trace.PhaseLazyFlush), us(trace.PhaseBlock),
			ph.UserTime().Microseconds(),
			r.Report.Elapsed.Microseconds(),
			pct.P50.Nanoseconds(), pct.P95.Nanoseconds(), pct.P99.Nanoseconds())
	}
	fmt.Fprintln(out, "\nuser-us is per-thread lifetime minus the union of recorded phase spans,")
	fmt.Fprintln(out, "summed over threads; block-us overlaps the merge work done on a blocked")
	fmt.Fprintln(out, "thread's behalf (premerge and barrier-merge spans nest inside block spans).")
	fmt.Fprintln(out, "tw-p50/p95/p99 are nearest-rank percentiles over individual turn-wait spans.")
	return nil
}

// Figure8 regenerates Figure 8: scalability of RFDet-ci vs pthreads — the
// speedup of 4- and 8-thread executions relative to 2 threads, by virtual
// time. As in the paper, dedup and ferret are omitted and lu-con represents
// lu-non.
func Figure8(out io.Writer, size workloads.Size, repeats int) error {
	fmt.Fprintf(out, "Figure 8: scalability (speedup vs 2 threads, size %s, virtual-time makespan)\n\n", size)
	fmt.Fprintf(out, "%-18s | %7s %7s | %7s %7s\n", "", "pthread", "pthread", "rfdet", "rfdet")
	fmt.Fprintf(out, "%-18s | %7s %7s | %7s %7s\n", "benchmark", "4thr", "8thr", "4thr", "8thr")
	skip := map[string]bool{"dedup": true, "ferret": true, "lu-non": true}
	var p4, p8, r4, r8 []float64
	for _, w := range workloads.All() {
		if skip[w.Name] {
			continue
		}
		row := fmt.Sprintf("%-18s |", w.Name)
		for i, rt := range []api.Runtime{pthreads.New(), NewRFDetCI()} {
			var base float64
			for _, n := range []int{2, 4, 8} {
				res, err := Run(rt, w, workloads.Config{Threads: n, Size: size}, repeats)
				if err != nil {
					return err
				}
				vt := float64(res.Report.VirtualTime)
				if n == 2 {
					base = vt
					continue
				}
				sp := base / vt
				row += fmt.Sprintf(" %6.2fx", sp)
				switch {
				case i == 0 && n == 4:
					p4 = append(p4, sp)
				case i == 0 && n == 8:
					p8 = append(p8, sp)
				case i == 1 && n == 4:
					r4 = append(r4, sp)
				default:
					r8 = append(r8, sp)
				}
			}
			if i == 0 {
				row += " |"
			}
		}
		fmt.Fprintln(out, row)
	}
	fmt.Fprintf(out, "%-18s | %6.2fx %6.2fx | %6.2fx %6.2fx\n", "geomean",
		stats.GeoMean(p4), stats.GeoMean(p8), stats.GeoMean(r4), stats.GeoMean(r8))
	fmt.Fprintln(out, "\nRFDet's scalability should track pthreads' (paper: \"comparable\").")
	return nil
}

// Figure9 regenerates Figure 9: the speedup each of the prelock and
// lazy-writes optimizations provides over a baseline with both disabled, on
// the synchronization-heavy SPLASH-2 subset.
func Figure9(out io.Writer, size workloads.Size, threads, repeats int) error {
	cfg := workloads.Config{Threads: threads, Size: size}
	fmt.Fprintf(out, "Figure 9: prelock and lazy-writes optimization speedups (%d threads, size %s)\n\n", threads, size)
	fmt.Fprintf(out, "%-18s %9s %10s %11s %13s\n", "benchmark", "prelock", "lazywrite", "both", "prelock-par%")

	baselineOpts := core.Options{Monitor: core.MonitorCI, SliceMerging: true}
	prelockOpts := baselineOpts
	prelockOpts.Prelock = true
	lazyOpts := baselineOpts
	lazyOpts.LazyWrites = true
	bothOpts := prelockOpts
	bothOpts.LazyWrites = true

	splash := map[string]bool{
		"ocean": true, "water-ns": true, "water-sp": true, "fft": true,
		"radix": true, "lu-con": true, "lu-non": true,
	}
	for _, w := range workloads.All() {
		if !splash[w.Name] {
			continue
		}
		base, err := Run(core.New(baselineOpts), w, cfg, repeats)
		if err != nil {
			return err
		}
		pre, err := Run(core.New(prelockOpts), w, cfg, repeats)
		if err != nil {
			return err
		}
		lazy, err := Run(core.New(lazyOpts), w, cfg, repeats)
		if err != nil {
			return err
		}
		both, err := Run(core.New(bothOpts), w, cfg, repeats)
		if err != nil {
			return err
		}
		bvt := float64(base.Report.VirtualTime)
		parallelPct := 0.0
		if bp := pre.Report.Stats.BytesPropagated; bp > 0 {
			parallelPct = 100 * float64(pre.Report.Stats.PrelockBytes) / float64(bp)
		}
		fmt.Fprintf(out, "%-18s %8.2fx %9.2fx %10.2fx %12.1f%%\n",
			w.Name,
			bvt/float64(pre.Report.VirtualTime),
			bvt/float64(lazy.Report.VirtualTime),
			bvt/float64(both.Report.VirtualTime),
			parallelPct)
	}
	fmt.Fprintln(out, "\nprelock-par% is the share of propagated bytes pre-merged while blocked")
	fmt.Fprintln(out, "(the paper reports ~80% of propagation moved off the critical path).")
	return nil
}

// RaceyCheck performs the §5.1 determinism stress: racey is executed `runs`
// times with 2, 4 and 8 threads on both RFDet monitors; every configuration
// must yield a single distinct output. The pthreads baseline is run too, to
// show what nondeterminism looks like (its distinct-output count may exceed
// one).
func RaceyCheck(out io.Writer, size workloads.Size, runs int) error {
	racey, err := workloads.ByName("racey")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "racey determinism stress (%d runs per configuration, size %s)\n\n", runs, size)
	fmt.Fprintf(out, "%-10s %8s %16s %10s\n", "runtime", "threads", "distinct outputs", "verdict")
	ok := true
	for _, rt := range []api.Runtime{NewRFDetCI(), NewRFDetPF(), dthreads.New(), pthreads.New()} {
		for _, n := range []int{2, 4, 8} {
			seen := map[uint64]bool{}
			for i := 0; i < runs; i++ {
				rep, err := rt.Run(racey.Prog(workloads.Config{Threads: n, Size: size}))
				if err != nil {
					return err
				}
				seen[rep.OutputHash] = true
			}
			verdict := "DETERMINISTIC"
			if len(seen) > 1 {
				verdict = "nondeterministic"
				if rt.Name() != "pthreads" {
					ok = false
					verdict = "FAILED"
				}
			}
			fmt.Fprintf(out, "%-10s %8d %16d %10s\n", rt.Name(), n, len(seen), verdict)
		}
	}
	if !ok {
		return fmt.Errorf("harness: a deterministic runtime produced nondeterministic racey output")
	}
	fmt.Fprintln(out, "\nEvery DMT configuration produced exactly one output across all runs (§5.1).")
	return nil
}

// AllExperiments renders every artifact in sequence.
func AllExperiments(out io.Writer, size workloads.Size, threads, repeats, raceyRuns int) error {
	sep := strings.Repeat("=", 100)
	steps := []func() error{
		func() error { return RaceyCheck(out, size, raceyRuns) },
		func() error { return LitmusTable(out, raceyRuns) },
		func() error { return RaceTable(out, size, threads) },
		func() error { return ReplicaTable(out, size, threads, 3) },
		func() error { return Figure7(out, size, threads, repeats) },
		func() error { return Table1(out, size, threads) },
		func() error { return PropagationTable(out, size, threads) },
		func() error { return SliceStoreTable(out, size, threads) },
		func() error { return PhaseTable(out, size, threads) },
		func() error { return RelaxationTable(out, size, threads) },
		func() error { return Figure8(out, size, repeats) },
		func() error { return Figure9(out, size, threads, repeats) },
	}
	for i, step := range steps {
		if i > 0 {
			fmt.Fprintf(out, "\n%s\n\n", sep)
		}
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}
