package harness

import (
	"strings"
	"testing"

	"rfdet/internal/api"
	"rfdet/internal/pthreads"
	"rfdet/internal/workloads"
)

// aliases keeping the broken-workload literal readable.
type (
	apiThread     = api.Thread
	apiThreadFunc = api.ThreadFunc
)

func TestRunMedianOfRepeats(t *testing.T) {
	w, err := workloads.ByName("matrix_multiply")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(NewRFDetCI(), w, workloads.Config{Threads: 2, Size: workloads.SizeTest}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "matrix_multiply" || res.Runtime != "rfdet-ci" || res.Threads != 2 {
		t.Fatalf("result metadata wrong: %+v", res)
	}
	if res.Report.VirtualTime == 0 {
		t.Fatal("no virtual time measured")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	// A failing program must surface the runtime's error through Run.
	broken := workloads.Workload{
		Name: "broken",
		Prog: func(cfg workloads.Config) apiThreadFunc {
			return func(t apiThread) { t.Unlock(64) } // misuse: unheld mutex
		},
	}
	if _, err := Run(NewRFDetCI(), broken, workloads.Config{Threads: 1, Size: workloads.SizeTest}, 1); err == nil {
		t.Fatal("expected the misuse error to propagate")
	}
	// And a healthy run on the pthreads baseline works.
	res, err := Run(pthreads.New(), mustByName(t, "ocean"), workloads.Config{Threads: 1, Size: workloads.SizeTest}, 1)
	if err != nil || res == nil {
		t.Fatalf("single-thread ocean should run: %v", err)
	}
}

func mustByName(t *testing.T, name string) workloads.Workload {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFigure7RendersAllRows(t *testing.T) {
	var sb strings.Builder
	if err := Figure7(&sb, workloads.SizeTest, 2, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range workloads.Names() {
		if !strings.Contains(out, name) {
			t.Fatalf("Figure 7 output missing %s:\n%s", name, out)
		}
	}
	for _, col := range []string{"pthreads", "dthreads", "rfdet-pf", "rfdet-ci", "geomean", "worst case"} {
		if !strings.Contains(out, col) {
			t.Fatalf("Figure 7 output missing %q", col)
		}
	}
}

func TestTable1RendersAllRows(t *testing.T) {
	var sb strings.Builder
	if err := Table1(&sb, workloads.SizeTest, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range workloads.Names() {
		if !strings.Contains(out, name) {
			t.Fatalf("Table 1 output missing %s", name)
		}
	}
}

func TestFigure8SkipsPipelineApps(t *testing.T) {
	var sb strings.Builder
	if err := Figure8(&sb, workloads.SizeTest, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, skipped := range []string{"dedup", "ferret", "lu-non"} {
		if strings.Contains(out, skipped) {
			t.Fatalf("Figure 8 should omit %s (as the paper does)", skipped)
		}
	}
	if !strings.Contains(out, "geomean") {
		t.Fatal("Figure 8 missing geomean row")
	}
}

func TestFigure9CoversSplash(t *testing.T) {
	var sb strings.Builder
	if err := Figure9(&sb, workloads.SizeTest, 2, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{"ocean", "water-ns", "water-sp", "fft", "radix", "lu-con", "lu-non"} {
		if !strings.Contains(out, name) {
			t.Fatalf("Figure 9 missing %s", name)
		}
	}
	if strings.Contains(out, "dedup") {
		t.Fatal("Figure 9 should cover the SPLASH-2 subset only")
	}
}

func TestRaceyCheckPasses(t *testing.T) {
	var sb strings.Builder
	if err := RaceyCheck(&sb, workloads.SizeTest, 5); err != nil {
		t.Fatalf("racey check failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "DETERMINISTIC") {
		t.Fatal("racey output missing verdicts")
	}
}
