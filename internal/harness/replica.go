package harness

// Replicated divergence checking — determinism used for what production
// wants it for. A deterministic runtime turns active replication into a
// trivial protocol: run k replicas of the same request log and the replicas
// *must* be byte-identical, whatever host parallelism or internal
// optimization stack each one runs with (Aviram & Ford, "Efficient
// System-Enforced Deterministic Parallelism"). This file runs k replicas of
// the KV server workload across differing GOMAXPROCS, commit-monitor shard
// counts and optimization stacks, byte-compares their state hashes, response
// hashes, full observation logs and virtual times, and reports requests/sec
// in virtual and host time plus per-request phase breakdowns from the phase
// trace. A replica whose run aborts is reported as divergent-by-abort, never
// hung.

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"rfdet/internal/api"
	"rfdet/internal/core"
	"rfdet/internal/trace"
	"rfdet/internal/workloads"
)

// ReplicaVariant describes one replica's execution environment. Everything
// here is host-side strategy: none of it may change a deterministic
// observable, which is exactly what the divergence check enforces.
type ReplicaVariant struct {
	// Name labels the variant in reports ("default", "fullpagediff", ...).
	Name string
	// Procs pins GOMAXPROCS for the replica's run (0 keeps the ambient
	// value, so external matrix sweeps stay in control).
	Procs int
	// Opts is the RFDet configuration the replica runs with.
	Opts core.Options
	// InjectAbort poisons the replica's request log with one failing
	// request (a zero-count barrier mid-log): the run must abort
	// recoverably and be reported as divergent-by-abort.
	InjectAbort bool
}

// ReplicaRun is one replica's outcome.
type ReplicaRun struct {
	Variant string
	Procs   int // GOMAXPROCS the replica ran at
	// Err is non-nil when the replica aborted; the remaining fields are
	// then zero and the replica is reported as divergent-by-abort.
	Err error

	Summary   workloads.ServerSummary
	ObsDigest uint64 // full observation log, api.Report.ObservationsDigest

	VirtualTime uint64
	Elapsed     time.Duration
	Stats       api.Stats
	Phases      *trace.Report // nil unless the variant enabled PhaseTrace
}

// ReqPerSecVirtual is the replica's deterministic throughput: requests per
// second of modeled virtual time. Identical across agreeing replicas.
func (r *ReplicaRun) ReqPerSecVirtual(requests int) float64 {
	if r.VirtualTime == 0 {
		return 0
	}
	return float64(requests) * 1e9 / float64(r.VirtualTime)
}

// ReqPerSecHost is the replica's host throughput: requests per second of
// wall-clock time. Host-dependent, observability only.
func (r *ReplicaRun) ReqPerSecHost(requests int) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(requests) / r.Elapsed.Seconds()
}

// ReplicaReport is the outcome of one k-replica execution of a request log.
type ReplicaReport struct {
	Threads  int
	Size     workloads.Size
	Seed     uint64
	Requests int
	Runs     []ReplicaRun
	// Divergences lists every disagreement found, one human-readable line
	// each; empty means all replicas were byte-identical.
	Divergences []string
}

// Divergent reports whether any replica disagreed (or aborted).
func (r *ReplicaReport) Divergent() bool { return len(r.Divergences) > 0 }

// RunServerReplicas runs one replica of the seeded KV server workload per
// variant and cross-checks every deterministic fingerprint: state hash,
// response hash, full observation digest and virtual time. Replica errors are
// captured per-run (divergent-by-abort), not returned: the caller always gets
// the full report.
func RunServerReplicas(cfg workloads.Config, seed uint64, variants []ReplicaVariant) *ReplicaReport {
	rep := &ReplicaReport{
		Threads:  cfg.Threads,
		Size:     cfg.Size,
		Seed:     seed,
		Requests: workloads.ServerRequests(cfg.Size),
	}
	for _, v := range variants {
		rep.Runs = append(rep.Runs, runOneReplica(cfg, seed, rep.Requests, v))
	}

	// Divergence check against the first clean replica.
	ref := -1
	for i := range rep.Runs {
		run := &rep.Runs[i]
		if run.Err != nil {
			rep.Divergences = append(rep.Divergences,
				fmt.Sprintf("replica %d (%s): divergent-by-abort: %v", i, run.Variant, run.Err))
			continue
		}
		if ref < 0 {
			ref = i
			continue
		}
		r0 := &rep.Runs[ref]
		diverge := func(what string, got, want uint64) {
			rep.Divergences = append(rep.Divergences,
				fmt.Sprintf("replica %d (%s): %s %#x != replica %d (%s) %#x",
					i, run.Variant, what, got, ref, r0.Variant, want))
		}
		if run.Summary.StateHash != r0.Summary.StateHash {
			diverge("state hash", run.Summary.StateHash, r0.Summary.StateHash)
		}
		if run.Summary.ResponseHash != r0.Summary.ResponseHash {
			diverge("response hash", run.Summary.ResponseHash, r0.Summary.ResponseHash)
		}
		if run.ObsDigest != r0.ObsDigest {
			diverge("observation digest", run.ObsDigest, r0.ObsDigest)
		}
		if run.VirtualTime != r0.VirtualTime {
			diverge("virtual time", run.VirtualTime, r0.VirtualTime)
		}
	}
	return rep
}

func runOneReplica(cfg workloads.Config, seed uint64, requests int, v ReplicaVariant) ReplicaRun {
	run := ReplicaRun{Variant: v.Name, Procs: v.Procs}
	if v.Procs > 0 {
		old := runtime.GOMAXPROCS(v.Procs)
		defer runtime.GOMAXPROCS(old)
	} else {
		run.Procs = runtime.GOMAXPROCS(0)
	}
	prog := workloads.ServerSeeded(cfg, seed)
	if v.InjectAbort {
		prog = workloads.ServerPoisoned(cfg, seed, requests/2)
	}
	r, err := core.New(v.Opts).Run(prog)
	if err != nil {
		run.Err = err
		return run
	}
	sum, err := workloads.SummarizeServer(r)
	if err != nil {
		run.Err = err
		return run
	}
	run.Summary = sum
	run.ObsDigest = r.ObservationsDigest()
	run.VirtualTime = r.VirtualTime
	run.Elapsed = r.Elapsed
	run.Stats = r.Stats
	run.Phases = r.Phases
	return run
}

// DefaultVariants returns k replica variants cycling through the
// optimization stacks the equivalence walls pin — the full default stack,
// the seed's full-page diffing, run-by-run (uncoalesced) propagation, and
// the single-domain commit monitor — all with phase tracing on so the
// replica table can report per-request phase costs. Procs stays 0: ambient
// GOMAXPROCS, so CI matrix sweeps control host parallelism externally.
func DefaultVariants(k int) []ReplicaVariant {
	base := []ReplicaVariant{
		{Name: "default", Opts: core.DefaultOptions()},
		{Name: "fullpagediff", Opts: func() core.Options {
			o := core.DefaultOptions()
			o.FullPageDiff = true
			return o
		}()},
		{Name: "nocoalesce", Opts: func() core.Options {
			o := core.DefaultOptions()
			o.NoCoalesce = true
			return o
		}()},
		{Name: "shards1", Opts: func() core.Options {
			o := core.DefaultOptions()
			o.ShardCount = 1
			return o
		}()},
	}
	variants := make([]ReplicaVariant, 0, k)
	for i := 0; i < k; i++ {
		v := base[i%len(base)]
		v.Name = fmt.Sprintf("%s/r%d", v.Name, i)
		v.Opts.PhaseTrace = true
		variants = append(variants, v)
	}
	return variants
}

// MatrixVariants returns the full acceptance matrix: GOMAXPROCS {1,4,8} ×
// commit-monitor shards {1,4} × {default, FullPageDiff, NoCoalesce} — 18
// replicas of the same request log, every one of which must be
// byte-identical to the rest.
func MatrixVariants() []ReplicaVariant {
	stacks := []struct {
		name  string
		tweak func(*core.Options)
	}{
		{"default", func(*core.Options) {}},
		{"fullpagediff", func(o *core.Options) { o.FullPageDiff = true }},
		{"nocoalesce", func(o *core.Options) { o.NoCoalesce = true }},
	}
	var variants []ReplicaVariant
	for _, procs := range []int{1, 4, 8} {
		for _, shards := range []int{1, 4} {
			for _, s := range stacks {
				o := core.DefaultOptions()
				o.ShardCount = shards
				s.tweak(&o)
				variants = append(variants, ReplicaVariant{
					Name:  fmt.Sprintf("%s/p%d/s%d", s.name, procs, shards),
					Procs: procs,
					Opts:  o,
				})
			}
		}
	}
	return variants
}

// ReplicaTable renders the replica-divergence artifact: k replicas of the
// same KV-server request log across differing optimization stacks — plus one
// race-relaxed replica replaying a freshly recorded relaxation profile —
// their deterministic fingerprints, requests/sec in virtual and host time,
// and the per-request phase breakdown from the phase trace. It errors if any
// replica diverges — this table doubles as the end-to-end wall rfdet-bench
// runs, and the relaxed replica's row enforces the §15 soundness contract
// against every strict stack at once.
func ReplicaTable(out io.Writer, size workloads.Size, threads, k int) error {
	cfg := workloads.Config{Threads: threads, Size: size}
	variants := DefaultVariants(k)
	relaxed, err := RelaxedServerVariant(cfg, workloads.DefaultServerSeed)
	if err != nil {
		return err
	}
	variants = append(variants, relaxed)
	rep := RunServerReplicas(cfg, workloads.DefaultServerSeed, variants)
	fmt.Fprintf(out, "KV-server replica divergence check (%d replicas incl. race-relaxed, %d worker threads, size %s, %d requests)\n\n",
		len(rep.Runs), threads, size, rep.Requests)
	fmt.Fprintf(out, "%-16s %5s %18s %18s %12s %10s %10s | %8s %8s %8s | %8s %8s %8s\n",
		"replica", "procs", "state", "responses", "vtime", "req/s(v)", "req/s(w)",
		"turn", "diff", "apply",
		"tw-p50", "tw-p95", "tw-p99")
	for _, run := range rep.Runs {
		if run.Err != nil {
			fmt.Fprintf(out, "%-16s %5d divergent-by-abort: %v\n", run.Variant, run.Procs, run.Err)
			continue
		}
		per := run.Phases.PerOp(uint64(rep.Requests))
		pct := run.Phases.PhasePercentiles()[trace.PhaseTurnWait]
		fmt.Fprintf(out, "%-16s %5d %#018x %#018x %12d %10.0f %10.0f | %7dns %7dns %7dns | %7dns %7dns %7dns\n",
			run.Variant, run.Procs,
			run.Summary.StateHash, run.Summary.ResponseHash,
			run.VirtualTime,
			run.ReqPerSecVirtual(rep.Requests), run.ReqPerSecHost(rep.Requests),
			per[trace.PhaseTurnWait].Nanoseconds(),
			per[trace.PhaseDiff].Nanoseconds(),
			per[trace.PhaseApply].Nanoseconds(),
			pct.P50.Nanoseconds(), pct.P95.Nanoseconds(), pct.P99.Nanoseconds())
	}
	if rep.Divergent() {
		for _, d := range rep.Divergences {
			fmt.Fprintf(out, "DIVERGED: %s\n", d)
		}
		return fmt.Errorf("harness: %d replica divergences", len(rep.Divergences))
	}
	fmt.Fprintln(out, "\nEvery replica produced byte-identical state/response hashes, observation logs")
	fmt.Fprintln(out, "and virtual times: the active-replication property, checked end to end. req/s(v)")
	fmt.Fprintln(out, "is deterministic virtual-time throughput; req/s(w), the per-request phase costs")
	fmt.Fprintln(out, "(turn-wait, diff, apply) and the turn-wait span percentiles (tw-p50/p95/p99,")
	fmt.Fprintln(out, "nearest-rank over individual spans) are host-dependent observability.")
	return nil
}
