package harness

import (
	"bytes"
	"strings"
	"testing"

	"rfdet/internal/core"
	"rfdet/internal/workloads"
)

// TestReplicasAgreeAcrossStacks is the harness-level acceptance check: k=3
// replicas of the same request log across the default, full-page-diff and
// uncoalesced stacks must be byte-identical in every fingerprint.
func TestReplicasAgreeAcrossStacks(t *testing.T) {
	cfg := workloads.Config{Threads: 4, Size: workloads.SizeTest}
	rep := RunServerReplicas(cfg, workloads.DefaultServerSeed, DefaultVariants(3))
	if rep.Divergent() {
		t.Fatalf("replicas diverged:\n%s", strings.Join(rep.Divergences, "\n"))
	}
	if len(rep.Runs) != 3 {
		t.Fatalf("%d runs, want 3", len(rep.Runs))
	}
	for i, run := range rep.Runs {
		if run.Err != nil {
			t.Fatalf("replica %d: %v", i, run.Err)
		}
		if run.Summary.Served != uint64(rep.Requests) {
			t.Fatalf("replica %d served %d of %d", i, run.Summary.Served, rep.Requests)
		}
		if run.Phases == nil {
			t.Fatalf("replica %d: DefaultVariants promises phase traces", i)
		}
		if run.ReqPerSecVirtual(rep.Requests) <= 0 {
			t.Fatalf("replica %d: no virtual throughput", i)
		}
	}
}

// TestReplicaMatrixVariantsShape pins the acceptance matrix: GOMAXPROCS
// {1,4,8} × shards {1,4} × three stacks = 18 distinct variants.
func TestReplicaMatrixVariantsShape(t *testing.T) {
	vs := MatrixVariants()
	if len(vs) != 18 {
		t.Fatalf("%d matrix variants, want 18", len(vs))
	}
	seen := map[string]bool{}
	for _, v := range vs {
		if seen[v.Name] {
			t.Fatalf("duplicate variant %q", v.Name)
		}
		seen[v.Name] = true
		if v.Procs != 1 && v.Procs != 4 && v.Procs != 8 {
			t.Fatalf("variant %q procs %d", v.Name, v.Procs)
		}
		if v.Opts.ShardCount != 1 && v.Opts.ShardCount != 4 {
			t.Fatalf("variant %q shards %d", v.Name, v.Opts.ShardCount)
		}
	}
}

// TestReplicaDivergentByAbort: a replica whose log injects a failing request
// must unwind cleanly and be reported as divergent-by-abort — while the
// clean replicas still agree with each other.
func TestReplicaDivergentByAbort(t *testing.T) {
	cfg := workloads.Config{Threads: 4, Size: workloads.SizeTest}
	variants := []ReplicaVariant{
		{Name: "clean-a", Opts: core.DefaultOptions()},
		{Name: "poisoned", Opts: core.DefaultOptions(), InjectAbort: true},
		{Name: "clean-b", Opts: core.DefaultOptions()},
	}
	rep := RunServerReplicas(cfg, workloads.DefaultServerSeed, variants)
	if !rep.Divergent() {
		t.Fatal("poisoned replica must mark the report divergent")
	}
	if len(rep.Divergences) != 1 {
		t.Fatalf("divergences %v: the two clean replicas must still agree", rep.Divergences)
	}
	if !strings.Contains(rep.Divergences[0], "divergent-by-abort") {
		t.Fatalf("divergence %q not classified as abort", rep.Divergences[0])
	}
	if rep.Runs[1].Err == nil || !strings.Contains(rep.Runs[1].Err.Error(), "barrier with count") {
		t.Fatalf("poisoned replica error = %v", rep.Runs[1].Err)
	}
	if rep.Runs[0].Err != nil || rep.Runs[2].Err != nil {
		t.Fatalf("clean replicas errored: %v / %v", rep.Runs[0].Err, rep.Runs[2].Err)
	}
}

// TestReplicaTableRendersAndPasses runs the rfdet-bench artifact end to end.
func TestReplicaTableRendersAndPasses(t *testing.T) {
	var buf bytes.Buffer
	if err := ReplicaTable(&buf, workloads.SizeTest, 4, 3); err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"replica divergence check", "req/s(v)", "byte-identical"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "DIVERGED") {
		t.Fatalf("table reported divergence:\n%s", out)
	}
}

// TestReplicasDetectRealDivergence closes the oracle loop: feed the checker
// two replicas of *different* request logs and it must flag them — the
// divergence machinery is live, not vacuously green.
func TestReplicasDetectRealDivergence(t *testing.T) {
	cfg := workloads.Config{Threads: 2, Size: workloads.SizeTest}
	a := RunServerReplicas(cfg, 1, DefaultVariants(1))
	b := RunServerReplicas(cfg, 2, DefaultVariants(1))
	if a.Divergent() || b.Divergent() {
		t.Fatal("single replicas cannot diverge")
	}
	if a.Runs[0].Summary.ResponseHash == b.Runs[0].Summary.ResponseHash &&
		a.Runs[0].Summary.StateHash == b.Runs[0].Summary.StateHash {
		t.Fatal("different seeds produced identical fingerprints — the oracle is blind")
	}
}
