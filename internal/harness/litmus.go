package harness

import (
	"fmt"
	"io"

	"rfdet/internal/litmus"
	"rfdet/internal/pthreads"
)

// LitmusTable renders the DLRC memory-model litmus results (§3): for each
// classic litmus shape, the single deterministic RFDet outcome next to the
// outcomes the nondeterministic pthreads baseline produced, marking where
// DLRC is more relaxed than sequential consistency.
func LitmusTable(out io.Writer, runs int) error {
	fmt.Fprintf(out, "DLRC memory-model litmus results (§3; pthreads sampled %d times)\n\n", runs)
	fmt.Fprintf(out, "%-12s %-26s %-34s %s\n", "litmus", "DLRC (every run)", "pthreads (distinct outcomes)", "notes")
	for _, tst := range litmus.Tests() {
		rfdetOutcomes, err := litmus.Observe(NewRFDetCI(), tst, 3)
		if err != nil {
			return err
		}
		if len(rfdetOutcomes) != 1 {
			return fmt.Errorf("harness: litmus %s nondeterministic under RFDet: %v", tst.Name, rfdetOutcomes)
		}
		if rfdetOutcomes[0] != tst.DLRC {
			return fmt.Errorf("harness: litmus %s observed %q, model predicts %q", tst.Name, rfdetOutcomes[0], tst.DLRC)
		}
		scOutcomes, err := litmus.Observe(pthreads.New(), tst, runs)
		if err != nil {
			return err
		}
		note := "SC-allowed outcome"
		if tst.DLRCRelaxed {
			note = "relaxed beyond SC (isolation/byte merge)"
		}
		fmt.Fprintf(out, "%-12s %-26s %-34s %s\n",
			tst.Name, string(rfdetOutcomes[0]), renderOutcomes(scOutcomes), note)
	}
	fmt.Fprintln(out, "\nEvery DLRC outcome is fixed across runs and configurations; pthreads varies")
	fmt.Fprintln(out, "within sequential consistency. Relaxed rows show §3's point: DLRC may be")
	fmt.Fprintln(out, "weaker than SC for racy code, while staying deterministic and C++-valid.")
	return nil
}

func renderOutcomes(outs []litmus.Outcome) string {
	if len(outs) == 1 {
		return string(outs[0])
	}
	s := ""
	for i, o := range outs {
		if i > 0 {
			s += " | "
		}
		s += string(o)
	}
	return s
}
