// Package kendo implements the deterministic logical-clock arbitration of
// Olszewski et al.'s Kendo algorithm, which RFDet uses to impose a
// deterministic total order on synchronization operations (paper §4.1).
//
// Each thread carries a logical clock that counts its instrumented memory
// operations (the paper's compile-time instrTick instrumentation). A thread
// may perform a synchronization operation only when its (clock, tid) pair is
// minimal among all runnable threads; because a waiter's clock is frozen
// while every other runnable thread's clock only grows, at most one thread
// holds the turn at a time, and the resulting order of synchronization
// operations is a pure function of the program's deterministic clock values.
//
// Threads blocked on a held lock, in a condition wait, at a barrier or in a
// join are ineligible for the minimum; they re-enter deterministically
// because entering and leaving a wait queue happen only while holding the
// turn. Unlike the quantum schemes of DMP/CoreDet/Calvin, no thread ever
// waits unless it is itself attempting synchronization — this is the paper's
// "no global barriers" property.
package kendo

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Status is a thread's scheduling state as seen by the turn arbiter.
type Status int32

const (
	// Running threads compete for the deterministic turn.
	Running Status = iota
	// Blocked threads (held lock, cond wait, barrier, join) are ineligible.
	Blocked
	// Exited threads no longer participate.
	Exited
)

// Proc is one thread's view of the arbiter.
type Proc struct {
	id     int32
	clock  atomic.Uint64
	status atomic.Int32
}

// ID returns the deterministic thread ID.
func (p *Proc) ID() int32 { return p.id }

// Tick advances the logical clock by n instrumented instructions.
func (p *Proc) Tick(n uint64) { p.clock.Add(n) }

// Clock returns the current logical clock.
func (p *Proc) Clock() uint64 { return p.clock.Load() }

// SetClock overwrites the logical clock (used for deterministic catch-up at
// lock handoff).
func (p *Proc) SetClock(v uint64) { p.clock.Store(v) }

// Status returns the current scheduling state.
func (p *Proc) Status() Status { return Status(p.status.Load()) }

// SetStatus transitions the scheduling state. Transitions other than
// Running→Running must happen while the caller holds the runtime monitor so
// that queue membership and eligibility change together.
func (p *Proc) SetStatus(s Status) { p.status.Store(int32(s)) }

// before reports whether p precedes q in the deterministic (clock, tid)
// order.
func (p *Proc) before(q *Proc) bool {
	pc, qc := p.clock.Load(), q.clock.Load()
	if pc != qc {
		return pc < qc
	}
	return p.id < q.id
}

// Sched arbitrates the deterministic turn among all threads of one program
// execution.
type Sched struct {
	procs   atomic.Pointer[[]*Proc]
	aborted atomic.Bool
	// gen is a seqlock over scheduling transitions (status changes, thread
	// registration). WaitForTurn's eligibility scan reads several atomic
	// words (every proc's clock and status); without the seqlock a scan can
	// straddle a wake transition — observing the waker's clock tick but not
	// the woken thread's Blocked→Running flip — and falsely conclude it holds
	// the turn while the woken thread does too. Writers make gen odd for the
	// duration of the transition; readers retry any scan during which gen was
	// odd or changed.
	gen atomic.Uint64
}

// NewSched returns an empty arbiter.
func NewSched() *Sched {
	s := &Sched{}
	empty := make([]*Proc, 0)
	s.procs.Store(&empty)
	return s
}

// Register adds a thread with the given ID and starting clock and returns
// its Proc. Registration must be externally serialized (thread creation is a
// synchronization operation, so it happens under the turn).
func (s *Sched) Register(id int32, clock uint64) *Proc {
	p := &Proc{id: id}
	p.clock.Store(clock)
	p.status.Store(int32(Running))
	old := *s.procs.Load()
	next := make([]*Proc, len(old)+1)
	copy(next, old)
	next[len(old)] = p
	s.Transition(func() { s.procs.Store(&next) })
	return p
}

// Transition brackets a scheduling-state mutation — a status change or a
// thread registration — so that no WaitForTurn scan can observe it half
// applied. The caller must already hold the deterministic turn (or the
// runtime monitor during teardown); Transition only publishes the mutation
// atomically with respect to concurrent eligibility scans.
func (s *Sched) Transition(fn func()) {
	s.gen.Add(1)
	fn()
	s.gen.Add(1)
}

// Procs returns the current thread snapshot.
func (s *Sched) Procs() []*Proc { return *s.procs.Load() }

// Abort makes every WaitForTurn return false, unwinding a failed execution.
func (s *Sched) Abort() { s.aborted.Store(true) }

// Aborted reports whether the execution was aborted.
func (s *Sched) Aborted() bool { return s.aborted.Load() }

// WaitForTurn blocks until p holds the deterministic turn: no other Running
// thread has a smaller (clock, tid). It returns false if the execution was
// aborted, and reports in waited whether any spinning was necessary (the
// TurnWaits statistic). The caller's clock must not advance while waiting.
func (s *Sched) WaitForTurn(p *Proc) (ok, waited bool) {
	spins := 0
	for {
		if s.aborted.Load() {
			return false, waited
		}
		// Seqlock read: the scan is valid only if no scheduling transition
		// was in flight (gen odd) or completed (gen changed) while it ran.
		g := s.gen.Load()
		if g&1 == 0 && s.isMin(p) && s.gen.Load() == g {
			return true, waited
		}
		waited = true
		spins++
		switch {
		case spins < 64:
			// Busy retry: another thread is about to tick past us.
		case spins < 512:
			runtime.Gosched()
		default:
			// Long waits (the other thread is deep in a compute slice):
			// sleep briefly so we do not burn the core it needs.
			time.Sleep(2 * time.Microsecond)
		}
	}
}

// TryTurn is a single, non-spinning eligibility probe: it reports whether
// the execution is still alive (ok) and whether p holds the deterministic
// turn right now (mine), using the same seqlock-validated scan as
// WaitForTurn but never retrying. Race-aware relaxation uses it to decide
// whether skipping the spin on a profiled sync pair is a real elision
// (mine=false: the thread proceeds without the turn) or a free pass
// (mine=true: the thread held the turn anyway). A scan invalidated by an
// in-flight scheduling transition conservatively reports mine=false; the
// caller treats that exactly like not holding the turn, so the probe never
// needs to loop.
func (s *Sched) TryTurn(p *Proc) (ok, mine bool) {
	if s.aborted.Load() {
		return false, false
	}
	g := s.gen.Load()
	if g&1 == 0 && s.isMin(p) && s.gen.Load() == g {
		return true, true
	}
	return true, false
}

// isMin reports whether p is the minimal Running thread.
func (s *Sched) isMin(p *Proc) bool {
	for _, q := range *s.procs.Load() {
		if q == p || Status(q.status.Load()) != Running {
			continue
		}
		if q.before(p) {
			return false
		}
	}
	return true
}

// HoldsTurn reports whether p currently holds the turn (diagnostics/tests).
func (s *Sched) HoldsTurn(p *Proc) bool { return s.isMin(p) }
