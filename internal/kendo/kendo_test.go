package kendo

import (
	"sync"
	"testing"
)

func TestSingleThreadAlwaysHasTurn(t *testing.T) {
	s := NewSched()
	p := s.Register(0, 0)
	ok, waited := s.WaitForTurn(p)
	if !ok || waited {
		t.Fatalf("lone thread: ok=%v waited=%v", ok, waited)
	}
}

func TestTurnOrderByClockThenID(t *testing.T) {
	s := NewSched()
	a := s.Register(0, 10)
	b := s.Register(1, 5)
	c := s.Register(2, 5)
	if s.HoldsTurn(a) {
		t.Fatal("a (clock 10) must not hold the turn over b/c (clock 5)")
	}
	if !s.HoldsTurn(b) {
		t.Fatal("b (clock 5, id 1) must hold the turn")
	}
	if s.HoldsTurn(c) {
		t.Fatal("c (clock 5, id 2) loses the tid tie-break to b")
	}
	b.Tick(1)
	if !s.HoldsTurn(c) {
		t.Fatal("after b ticks to 6, c must hold the turn")
	}
}

func TestBlockedThreadsIneligible(t *testing.T) {
	s := NewSched()
	a := s.Register(0, 10)
	b := s.Register(1, 1)
	if s.HoldsTurn(a) {
		t.Fatal("a should wait for b")
	}
	b.SetStatus(Blocked)
	if !s.HoldsTurn(a) {
		t.Fatal("blocked b must not block a")
	}
	b.SetStatus(Exited)
	if !s.HoldsTurn(a) {
		t.Fatal("exited b must not block a")
	}
}

func TestAbortUnblocksWaiters(t *testing.T) {
	s := NewSched()
	a := s.Register(0, 100)
	s.Register(1, 1) // never ticks: a would wait forever
	done := make(chan bool)
	go func() {
		ok, _ := s.WaitForTurn(a)
		done <- ok
	}()
	s.Abort()
	if ok := <-done; ok {
		t.Fatal("WaitForTurn must return false after Abort")
	}
	if !s.Aborted() {
		t.Fatal("Aborted() should be true")
	}
}

// TestSerializedTurns verifies mutual exclusion of the deterministic turn:
// concurrent threads performing turn-gated critical sections never overlap
// and always produce the same admission order.
func TestSerializedTurns(t *testing.T) {
	const nthreads = 4
	const opsEach = 50
	runOnce := func() []int32 {
		s := NewSched()
		procs := make([]*Proc, nthreads)
		for i := range procs {
			procs[i] = s.Register(int32(i), uint64(i))
		}
		var mu sync.Mutex
		var order []int32
		inside := false
		var wg sync.WaitGroup
		for i := range procs {
			wg.Add(1)
			go func(p *Proc) {
				defer wg.Done()
				for op := 0; op < opsEach; op++ {
					if ok, _ := s.WaitForTurn(p); !ok {
						return
					}
					mu.Lock()
					if inside {
						t.Error("two threads inside the turn at once")
					}
					inside = true
					order = append(order, p.ID())
					inside = false
					// Advance past the op, deterministically.
					p.Tick(uint64(3 + p.ID()))
					mu.Unlock()
				}
				p.SetStatus(Exited)
			}(procs[i])
		}
		wg.Wait()
		return order
	}
	first := runOnce()
	if len(first) != nthreads*opsEach {
		t.Fatalf("admissions = %d, want %d", len(first), nthreads*opsEach)
	}
	for trial := 0; trial < 3; trial++ {
		again := runOnce()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("admission order diverged at %d: %d vs %d", i, first[i], again[i])
			}
		}
	}
}

// TestTurnRespectsClockMonotonicity: a thread that performed less logical
// work is always admitted before one that performed more.
func TestTurnRespectsClockMonotonicity(t *testing.T) {
	s := NewSched()
	fast := s.Register(0, 0)
	slow := s.Register(1, 0)
	fast.Tick(100)
	// slow (clock 0) must be admitted; fast must not.
	if s.HoldsTurn(fast) {
		t.Fatal("fast thread admitted before slow")
	}
	if !s.HoldsTurn(slow) {
		t.Fatal("slow thread not admitted")
	}
	if fast.Clock() != 100 || slow.Clock() != 0 {
		t.Fatal("clock bookkeeping wrong")
	}
	slow.SetClock(200)
	if !s.HoldsTurn(fast) {
		t.Fatal("after SetClock, fast should be admitted")
	}
}
