package replay

import (
	"strings"
	"sync"
	"testing"
	"time"

	"rfdet/internal/api"
)

// lockStepProgram is race-free but schedule-dependent: the value of x
// depends on the order in which threads win the lock, so faithful replay
// must reproduce the recorded order exactly.
func lockStepProgram(t api.Thread) {
	x := t.Malloc(8)
	order := t.Malloc(8 * 64)
	idx := t.Malloc(8)
	mu := api.Addr(64)
	var ids []api.ThreadID
	for w := 0; w < 4; w++ {
		me := uint64(w + 1)
		ids = append(ids, t.Spawn(func(c api.Thread) {
			for k := 0; k < 10; k++ {
				c.Lock(mu)
				v := c.Load64(x)
				c.Store64(x, v*7+me) // non-commutative: order-sensitive
				i := c.Load64(idx)
				if i < 64 {
					c.Store64(order+api.Addr(8*i), me)
					c.Store64(idx, i+1)
				}
				c.Unlock(mu)
			}
		}))
	}
	for _, id := range ids {
		t.Join(id)
	}
	t.Observe(t.Load64(x))
	for i := 0; i < 40; i++ {
		t.Observe(t.Load64(order + api.Addr(8*i)))
	}
}

func TestRecordThenReplayReproduces(t *testing.T) {
	rec := NewRecorder()
	recRep, log, err := rec.Record(lockStepProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Events) == 0 {
		t.Fatal("empty log")
	}
	// Locks: 40 lock + 40 unlock + 4 spawn + 4 join = 88 events.
	if len(log.Events) != 88 {
		t.Fatalf("log has %d events, want 88", len(log.Events))
	}
	if log.Bytes() != 88*EncodedSize {
		t.Fatalf("Bytes() = %d", log.Bytes())
	}
	for i := 0; i < 3; i++ {
		repRep, err := NewReplayer(log).Run(lockStepProgram)
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if len(repRep.Observations[0]) != len(recRep.Observations[0]) {
			t.Fatal("observation length mismatch")
		}
		for j, v := range recRep.Observations[0] {
			if repRep.Observations[0][j] != v {
				t.Fatalf("replay %d diverged at observation %d: %d != %d",
					i, j, repRep.Observations[0][j], v)
			}
		}
	}
}

func TestReplayCondVars(t *testing.T) {
	prog := func(t api.Thread) {
		mu, cond := api.Addr(64), api.Addr(128)
		flag := t.Malloc(8)
		got := t.Malloc(8)
		id := t.Spawn(func(c api.Thread) {
			c.Lock(mu)
			for c.Load64(flag) == 0 {
				c.Wait(cond, mu)
			}
			c.Store64(got, c.Load64(flag)*2)
			c.Unlock(mu)
		})
		t.Lock(mu)
		t.Store64(flag, 21)
		t.Signal(cond)
		t.Unlock(mu)
		t.Join(id)
		t.Observe(t.Load64(got))
	}
	recRep, log, err := NewRecorder().Record(prog)
	if err != nil {
		t.Fatal(err)
	}
	repRep, err := NewReplayer(log).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if recRep.Observations[0][0] != 42 || repRep.Observations[0][0] != 42 {
		t.Fatalf("results: record %v, replay %v", recRep.Observations[0], repRep.Observations[0])
	}
}

func TestReplayAtomics(t *testing.T) {
	prog := func(t api.Thread) {
		ctr := t.Malloc(8)
		var ids []api.ThreadID
		for i := 0; i < 3; i++ {
			ids = append(ids, t.Spawn(func(c api.Thread) {
				for k := 0; k < 5; k++ {
					c.AtomicAdd64(ctr, 1)
				}
			}))
		}
		for _, id := range ids {
			t.Join(id)
		}
		t.Observe(t.Load64(ctr))
	}
	_, log, err := NewRecorder().Record(prog)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplayer(log).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Observations[0][0] != 15 {
		t.Fatalf("counter = %d", rep.Observations[0][0])
	}
}

func TestReplayDetectsDivergence(t *testing.T) {
	// Replaying a different program against the log must fail, not hang or
	// silently succeed.
	progA := func(t api.Thread) {
		mu := api.Addr(64)
		t.Lock(mu)
		t.Unlock(mu)
	}
	progB := func(t api.Thread) {
		mu := api.Addr(64)
		t.Lock(mu)
		t.Unlock(mu)
		t.Lock(mu) // extra op not in the log
		t.Unlock(mu)
	}
	_, log, err := NewRecorder().Record(progA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplayer(log).Run(progB); err == nil {
		t.Fatal("expected divergence error")
	}
	// Too few operations is also divergence.
	_, logB, err := NewRecorder().Record(progB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewReplayer(logB).Run(progA); err == nil {
		t.Fatal("expected under-consumption error")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvLock, EvUnlock, EvWait, EvSignal, EvBroadcast, EvBarrier, EvSpawn, EvJoin, EvAtomic}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("bad or duplicate kind string %q", s)
		}
		seen[s] = true
	}
}

func TestReplayDetectsWrongAddress(t *testing.T) {
	// A diverged replay that performs the same kind of operation on a
	// *different* variable must be rejected: matching (tid, kind) alone would
	// silently admit it and keep the log "consistent".
	prog := func(t api.Thread) {
		muA, muB := api.Addr(64), api.Addr(128)
		t.Lock(muA)
		t.Unlock(muA)
		t.Lock(muB)
		t.Unlock(muB)
	}
	_, log, err := NewRecorder().Record(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Hand-edit the second lock to a mutex address the program never uses.
	edited := 0
	for i, ev := range log.Events {
		if ev.Kind == EvLock && ev.Addr == api.Addr(128) {
			log.Events[i].Addr = api.Addr(4096)
			edited++
		}
	}
	if edited != 1 {
		t.Fatalf("edited %d events, want 1", edited)
	}
	_, err = NewReplayer(log).Run(prog)
	if err == nil {
		t.Fatal("expected divergence error for wrong mutex address")
	}
	if !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("error %q does not identify the divergence", err)
	}
	if !strings.Contains(err.Error(), "0x80") || !strings.Contains(err.Error(), "0x1000") {
		t.Fatalf("error %q does not name both addresses", err)
	}
}

func TestReplayTruncatedLogFailsPromptly(t *testing.T) {
	// A truncated log must produce a prompt log-exhausted error: before the
	// divergence abort, threads past the detection point ran *unsequenced*,
	// and a multi-thread program could deadlock inside the underlying runtime
	// instead of returning.
	_, log, err := NewRecorder().Record(lockStepProgram)
	if err != nil {
		t.Fatal(err)
	}
	log.Events = log.Events[:len(log.Events)/2]
	done := make(chan error, 1)
	go func() {
		_, err := NewReplayer(log).Run(lockStepProgram)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected log-exhausted error")
		}
		if !strings.Contains(err.Error(), "exhausted") {
			t.Fatalf("error %q does not report log exhaustion", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("truncated-log replay hung instead of erroring")
	}
}

func TestRecorderLogOrdering(t *testing.T) {
	// The record points are release-before / acquire-after: Unlock logs
	// before the mutex is released, Lock logs after it is acquired. For a
	// single contended mutex this makes the recorded lock/unlock events
	// strictly alternate — the property replay admission relies on. Were
	// Unlock logged after the release (or Lock before the acquire), the next
	// winner's lock record could overtake it.
	prog := func(t api.Thread) {
		mu := api.Addr(64)
		x := t.Malloc(8)
		var ids []api.ThreadID
		for w := 0; w < 4; w++ {
			ids = append(ids, t.Spawn(func(c api.Thread) {
				for k := 0; k < 8; k++ {
					c.Lock(mu)
					c.Store64(x, c.Load64(x)+1)
					c.Unlock(mu)
				}
			}))
		}
		for _, id := range ids {
			t.Join(id)
		}
	}
	_, log, err := NewRecorder().Record(prog)
	if err != nil {
		t.Fatal(err)
	}
	wantLock := true
	var holder api.ThreadID = -1
	n := 0
	for _, ev := range log.Events {
		if ev.Addr != api.Addr(64) || (ev.Kind != EvLock && ev.Kind != EvUnlock) {
			continue
		}
		n++
		if wantLock {
			if ev.Kind != EvLock {
				t.Fatalf("event %d: got %s, want alternating lock/unlock", ev.Seq, ev.Kind)
			}
			holder = ev.Tid
		} else {
			if ev.Kind != EvUnlock {
				t.Fatalf("event %d: got %s, want alternating lock/unlock", ev.Seq, ev.Kind)
			}
			if ev.Tid != holder {
				t.Fatalf("event %d: unlock by thread %d, lock was by %d", ev.Seq, ev.Tid, holder)
			}
		}
		wantLock = !wantLock
	}
	if n != 64 {
		t.Fatalf("saw %d lock/unlock events on the mutex, want 64", n)
	}
	if !wantLock {
		t.Fatal("log ends with an unmatched lock")
	}
}

func TestSequencerExhaustedLog(t *testing.T) {
	seq := &sequencer{log: &Log{}}
	seq.cond = sync.NewCond(&seq.mu)
	if err := seq.await(0, EvLock, 64); err == nil {
		t.Fatal("await on an empty log must fail")
	} else if !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("error %q does not report exhaustion", err)
	}
	// The failure is sticky: later awaits fail immediately, with the
	// original error.
	if err := seq.await(1, EvUnlock, 128); err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("sticky failure not reported: %v", err)
	}
	if err := seq.err(); err == nil || !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("err() = %v, want the exhaustion failure", err)
	}
}

func TestSequencerLeftoverEvents(t *testing.T) {
	seq := &sequencer{log: &Log{Events: []Event{
		{Seq: 0, Tid: 0, Kind: EvLock, Addr: 64},
		{Seq: 1, Tid: 0, Kind: EvUnlock, Addr: 64},
	}}}
	seq.cond = sync.NewCond(&seq.mu)
	if err := seq.await(0, EvLock, 64); err != nil {
		t.Fatal(err)
	}
	err := seq.err()
	if err == nil {
		t.Fatal("unconsumed log entries must be an error")
	}
	if !strings.Contains(err.Error(), "1 of 2") {
		t.Fatalf("error %q does not report consumption counts", err)
	}
}
