// Package replay implements a record-and-replay (R+R) system for the
// pthreads baseline, the alternative technology the paper contrasts DMT
// against in §2 ("Record and Replay").
//
// The recorder wraps the nondeterministic pthreads runtime and logs the
// total order of synchronization operations (which thread performed which
// operation, in global sequence). The replayer re-executes the program,
// forcing each synchronization operation to wait for its recorded global
// sequence number — reproducing the recorded interleaving.
//
// The comparison the paper draws (§2) is quantified here and exercised in
// the benchmarks:
//
//   - An R+R system must persist one log entry per synchronization
//     operation (Report.Stats exposes the count; BenchmarkRecordingOverhead
//     reports bytes/run), while a DMT system records *only the input*.
//   - R+R replays one recorded execution; DMT makes every execution — the
//     first one included — identical.
//
// Limitation (inherent to sync-order R+R, noted in §2's citations): an
// execution of a program with data races is reproduced faithfully only up
// to scheduling at synchronization granularity; racy accesses between sync
// points that the host scheduler interleaved differently are not captured.
// Full-fidelity R+R for racy programs needs memory-access logging, which is
// exactly why the paper argues DMT's "record inputs only" is cheaper.
package replay

import (
	"errors"
	"fmt"
	"sync"

	"rfdet/internal/api"
	"rfdet/internal/pthreads"
)

// EventKind identifies a recorded synchronization operation.
type EventKind uint8

// Recorded operation kinds.
const (
	EvLock EventKind = iota
	EvUnlock
	EvWait
	EvSignal
	EvBroadcast
	EvBarrier
	EvSpawn
	EvJoin
	EvAtomic
)

func (k EventKind) String() string {
	switch k {
	case EvLock:
		return "lock"
	case EvUnlock:
		return "unlock"
	case EvWait:
		return "wait"
	case EvSignal:
		return "signal"
	case EvBroadcast:
		return "broadcast"
	case EvBarrier:
		return "barrier"
	case EvSpawn:
		return "spawn"
	case EvJoin:
		return "join"
	default:
		return "atomic"
	}
}

// Event is one log entry: thread tid performed a kind-operation on addr as
// the seq-th synchronization operation of the execution.
type Event struct {
	Seq  uint64
	Tid  api.ThreadID
	Kind EventKind
	Addr api.Addr
}

// EncodedSize is the on-disk footprint of one event (seq may be implicit;
// tid, kind, addr are not): the per-operation recording cost a DMT system
// avoids (§2).
const EncodedSize = 4 + 1 + 8

// Log is a recorded synchronization order.
type Log struct {
	Events []Event
}

// Bytes returns the log's encoded size — the recording overhead an R+R
// system pays beyond recording inputs.
func (l *Log) Bytes() uint64 { return uint64(len(l.Events)) * EncodedSize }

// Recorder executes programs on the pthreads baseline while logging the
// global synchronization order.
type Recorder struct{}

// NewRecorder returns an R+R recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Name implements api.Runtime.
func (r *Recorder) Name() string { return "pthreads-record" }

// Record runs the program and returns both the report and the recorded log.
func (r *Recorder) Record(main api.ThreadFunc) (*api.Report, *Log, error) {
	log := &Log{}
	var mu sync.Mutex
	rec := func(tid api.ThreadID, kind EventKind, addr api.Addr) {
		mu.Lock()
		log.Events = append(log.Events, Event{
			Seq:  uint64(len(log.Events)),
			Tid:  tid,
			Kind: kind,
			Addr: addr,
		})
		mu.Unlock()
	}
	rep, err := pthreads.New().Run(func(t api.Thread) {
		main(&recordingThread{Thread: t, rec: rec})
	})
	return rep, log, err
}

// Run implements api.Runtime (discarding the log).
func (r *Recorder) Run(main api.ThreadFunc) (*api.Report, error) {
	rep, _, err := r.Record(main)
	return rep, err
}

// recordingThread decorates a pthreads thread, logging each sync op after
// it completes (completion order is the order that matters for replay).
type recordingThread struct {
	api.Thread
	rec func(api.ThreadID, EventKind, api.Addr)
}

func (t *recordingThread) Lock(m api.Addr) {
	t.Thread.Lock(m)
	t.rec(t.ID(), EvLock, m)
}

func (t *recordingThread) Unlock(m api.Addr) {
	t.rec(t.ID(), EvUnlock, m)
	t.Thread.Unlock(m)
}

func (t *recordingThread) Wait(c, m api.Addr) {
	t.Thread.Wait(c, m)
	t.rec(t.ID(), EvWait, c)
}

func (t *recordingThread) Signal(c api.Addr) {
	t.Thread.Signal(c)
	t.rec(t.ID(), EvSignal, c)
}

func (t *recordingThread) Broadcast(c api.Addr) {
	t.Thread.Broadcast(c)
	t.rec(t.ID(), EvBroadcast, c)
}

func (t *recordingThread) Barrier(b api.Addr, n int) {
	t.Thread.Barrier(b, n)
	t.rec(t.ID(), EvBarrier, b)
}

func (t *recordingThread) Spawn(fn api.ThreadFunc) api.ThreadID {
	id := t.Thread.Spawn(func(c api.Thread) {
		fn(&recordingThread{Thread: c, rec: t.rec})
	})
	t.rec(t.ID(), EvSpawn, api.Addr(id))
	return id
}

func (t *recordingThread) Join(id api.ThreadID) {
	t.Thread.Join(id)
	t.rec(t.ID(), EvJoin, api.Addr(id))
}

func (t *recordingThread) AtomicAdd64(a api.Addr, delta uint64) uint64 {
	v := t.Thread.AtomicAdd64(a, delta)
	t.rec(t.ID(), EvAtomic, a)
	return v
}

func (t *recordingThread) AtomicCAS64(a api.Addr, old, new uint64) bool {
	ok := t.Thread.AtomicCAS64(a, old, new)
	t.rec(t.ID(), EvAtomic, a)
	return ok
}

// Replayer re-executes a program under the recorded synchronization order.
type Replayer struct {
	log *Log
}

// NewReplayer returns a replayer for the given log.
func NewReplayer(log *Log) *Replayer { return &Replayer{log: log} }

// Name implements api.Runtime.
func (r *Replayer) Name() string { return "pthreads-replay" }

// errReplayAbort is the panic sentinel that unwinds a replayed thread after
// the sequencer has detected divergence. The wrappers restore any application
// mutex they hold before panicking, the panic aborts the underlying pthreads
// execution (which unwinds the remaining threads), and Run reports the
// sequencer's divergence error — a prompt, descriptive failure instead of a
// nondeterministic continuation or a deadlock.
var errReplayAbort = errors.New("replay: aborted after divergence")

// Run re-executes the program, admitting synchronization operations in the
// recorded global order.
func (r *Replayer) Run(main api.ThreadFunc) (*api.Report, error) {
	seq := &sequencer{log: r.log}
	seq.cond = sync.NewCond(&seq.mu)
	rep, err := pthreads.New().Run(func(t api.Thread) {
		main(&replayThread{Thread: t, seq: seq})
	})
	// A detected divergence is the root cause of whatever the underlying
	// runtime reported (the wrappers abort it on purpose); report it first.
	if serr := seq.failure(); serr != nil {
		return nil, serr
	}
	if err != nil {
		return nil, err
	}
	if serr := seq.err(); serr != nil {
		return nil, serr
	}
	return rep, nil
}

// sequencer admits one synchronization operation at a time, in log order.
type sequencer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	log    *Log
	next   int
	failed error
}

// await blocks tid until the next log entry names it, then consumes the
// entry. It returns a non-nil error when the replay has diverged from the
// log: the thread performed an operation the log does not record next for it
// — wrong kind or wrong address (for Spawn/Join the address is the thread-ID
// payload) — or the log ran out. Threads are sequential, so once the head
// entry names tid, only a matching operation by tid can ever consume it;
// any mismatch is a divergence that would otherwise deadlock the sequencer.
// The caller must unwind the program on error (see replayThread).
func (s *sequencer) await(tid api.ThreadID, kind EventKind, addr api.Addr) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.failed != nil {
			return s.failed
		}
		if s.next >= len(s.log.Events) {
			s.failed = fmt.Errorf("replay: log exhausted at thread %d %s %#x", tid, kind, uint64(addr))
			s.cond.Broadcast()
			return s.failed
		}
		ev := s.log.Events[s.next]
		if ev.Tid == tid {
			if ev.Kind != kind || ev.Addr != addr {
				s.failed = fmt.Errorf("replay: diverged at event %d: thread %d performed %s %#x, log records %s %#x",
					ev.Seq, tid, kind, uint64(addr), ev.Kind, uint64(ev.Addr))
				s.cond.Broadcast()
				return s.failed
			}
			s.next++
			s.cond.Broadcast()
			return nil
		}
		s.cond.Wait()
	}
}

// failure returns the divergence error, if one was detected.
func (s *sequencer) failure() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

func (s *sequencer) err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	if s.next != len(s.log.Events) {
		return fmt.Errorf("replay: execution diverged: %d of %d events consumed", s.next, len(s.log.Events))
	}
	return nil
}

// replayThread gates each synchronization operation on the sequencer. When
// await reports divergence the wrapper unwinds the thread with errReplayAbort
// — after releasing any application mutex it holds, so peers blocked on that
// mutex at the pthreads level are not left deadlocked behind a dead thread.
type replayThread struct {
	api.Thread
	seq *sequencer
}

func (t *replayThread) Lock(m api.Addr) {
	if err := t.seq.await(t.ID(), EvLock, m); err != nil {
		panic(errReplayAbort)
	}
	t.Thread.Lock(m)
}

func (t *replayThread) Unlock(m api.Addr) {
	if err := t.seq.await(t.ID(), EvUnlock, m); err != nil {
		// The application mutex is still held; release it before unwinding.
		t.Thread.Unlock(m)
		panic(errReplayAbort)
	}
	t.Thread.Unlock(m)
}

func (t *replayThread) Wait(c, m api.Addr) {
	// The wait's position in the log is its wakeup; the underlying wait
	// must proceed so the recorded signaler can run.
	t.Thread.Wait(c, m)
	if err := t.seq.await(t.ID(), EvWait, c); err != nil {
		// The underlying wait reacquired the mutex; release it before
		// unwinding.
		t.Thread.Unlock(m)
		panic(errReplayAbort)
	}
}

func (t *replayThread) Signal(c api.Addr) {
	if err := t.seq.await(t.ID(), EvSignal, c); err != nil {
		panic(errReplayAbort)
	}
	t.Thread.Signal(c)
}

func (t *replayThread) Broadcast(c api.Addr) {
	if err := t.seq.await(t.ID(), EvBroadcast, c); err != nil {
		panic(errReplayAbort)
	}
	t.Thread.Broadcast(c)
}

func (t *replayThread) Barrier(b api.Addr, n int) {
	t.Thread.Barrier(b, n)
	if err := t.seq.await(t.ID(), EvBarrier, b); err != nil {
		panic(errReplayAbort)
	}
}

func (t *replayThread) Spawn(fn api.ThreadFunc) api.ThreadID {
	id := t.Thread.Spawn(func(c api.Thread) {
		fn(&replayThread{Thread: c, seq: t.seq})
	})
	if err := t.seq.await(t.ID(), EvSpawn, api.Addr(id)); err != nil {
		panic(errReplayAbort)
	}
	return id
}

func (t *replayThread) Join(id api.ThreadID) {
	t.Thread.Join(id)
	if err := t.seq.await(t.ID(), EvJoin, api.Addr(id)); err != nil {
		panic(errReplayAbort)
	}
}

func (t *replayThread) AtomicAdd64(a api.Addr, delta uint64) uint64 {
	if err := t.seq.await(t.ID(), EvAtomic, a); err != nil {
		panic(errReplayAbort)
	}
	return t.Thread.AtomicAdd64(a, delta)
}

func (t *replayThread) AtomicCAS64(a api.Addr, old, new uint64) bool {
	if err := t.seq.await(t.ID(), EvAtomic, a); err != nil {
		panic(errReplayAbort)
	}
	return t.Thread.AtomicCAS64(a, old, new)
}
