package pthreads

import (
	"testing"

	"rfdet/internal/api"
)

func run(t *testing.T, fn api.ThreadFunc) *api.Report {
	t.Helper()
	rep, err := New().Run(fn)
	if err != nil {
		t.Fatalf("Run failed: %v", err)
	}
	return rep
}

func TestMemoryOps(t *testing.T) {
	rep := run(t, func(th api.Thread) {
		a := th.Malloc(64)
		th.Store8(a, 1)
		th.Store32(a+4, 2)
		th.Store64(a+8, 3)
		th.StoreF64(a+16, 2.5)
		buf := []byte{9, 8, 7}
		th.WriteBytes(a+32, buf)
		got := make([]byte, 3)
		th.ReadBytes(a+32, got)
		th.Observe(uint64(th.Load8(a)), uint64(th.Load32(a+4)), th.Load64(a+8))
		if th.LoadF64(a+16) != 2.5 {
			t.Error("LoadF64 mismatch")
		}
		if got[0] != 9 || got[2] != 7 {
			t.Error("ReadBytes mismatch")
		}
	})
	obs := rep.Observations[0]
	if obs[0] != 1 || obs[1] != 2 || obs[2] != 3 {
		t.Fatalf("observations %v", obs)
	}
}

func TestSharedMemoryVisibility(t *testing.T) {
	// Unlike the DMT runtimes, pthreads threads share memory directly:
	// a child's committed write is visible after join via real shared pages.
	rep := run(t, func(th api.Thread) {
		a := th.Malloc(8)
		id := th.Spawn(func(c api.Thread) { c.Store64(a, 31) })
		th.Join(id)
		th.Observe(th.Load64(a))
	})
	if rep.Observations[0][0] != 31 {
		t.Fatal("join visibility broken")
	}
}

func TestLockCounterRaceFree(t *testing.T) {
	rep := run(t, func(th api.Thread) {
		ctr := th.Malloc(8)
		mu := api.Addr(64)
		var ids []api.ThreadID
		for i := 0; i < 4; i++ {
			ids = append(ids, th.Spawn(func(c api.Thread) {
				for k := 0; k < 25; k++ {
					c.Lock(mu)
					c.Store64(ctr, c.Load64(ctr)+1)
					c.Unlock(mu)
				}
			}))
		}
		for _, id := range ids {
			th.Join(id)
		}
		th.Observe(th.Load64(ctr))
	})
	if rep.Observations[0][0] != 100 {
		t.Fatalf("counter = %d, want 100", rep.Observations[0][0])
	}
}

func TestCondVarPingPong(t *testing.T) {
	rep := run(t, func(th api.Thread) {
		state := th.Malloc(8)
		count := th.Malloc(8)
		mu, cond := api.Addr(64), api.Addr(128)
		const rounds = 5
		id := th.Spawn(func(c api.Thread) {
			for i := 0; i < rounds; i++ {
				c.Lock(mu)
				for c.Load64(state) != 1 {
					c.Wait(cond, mu)
				}
				c.Store64(count, c.Load64(count)+1)
				c.Store64(state, 0)
				c.Signal(cond)
				c.Unlock(mu)
			}
		})
		for i := 0; i < rounds; i++ {
			th.Lock(mu)
			for th.Load64(state) != 0 {
				th.Wait(cond, mu)
			}
			th.Store64(count, th.Load64(count)+1)
			th.Store64(state, 1)
			th.Signal(cond)
			th.Unlock(mu)
		}
		th.Join(id)
		th.Observe(th.Load64(count))
	})
	if rep.Observations[0][0] != 10 {
		t.Fatalf("count = %d", rep.Observations[0][0])
	}
}

func TestBarrier(t *testing.T) {
	rep := run(t, func(th api.Thread) {
		arr := th.Malloc(8 * 3)
		bar := api.Addr(64)
		var ids []api.ThreadID
		for i := 1; i < 3; i++ {
			slot := api.Addr(8 * i)
			ids = append(ids, th.Spawn(func(c api.Thread) {
				c.Store64(arr+slot, uint64(c.ID())*10)
				c.Barrier(bar, 3)
				var sum uint64
				for k := 0; k < 3; k++ {
					sum += c.Load64(arr + api.Addr(8*k))
				}
				c.Observe(sum)
			}))
		}
		th.Store64(arr, 1)
		th.Barrier(bar, 3)
		for _, id := range ids {
			th.Join(id)
		}
	})
	for tid := api.ThreadID(1); tid <= 2; tid++ {
		if rep.Observations[tid][0] != 31 {
			t.Fatalf("thread %d saw %d, want 31", tid, rep.Observations[tid][0])
		}
	}
}

func TestAtomics(t *testing.T) {
	rep := run(t, func(th api.Thread) {
		ctr := th.Malloc(8)
		var ids []api.ThreadID
		for i := 0; i < 4; i++ {
			ids = append(ids, th.Spawn(func(c api.Thread) {
				for k := 0; k < 25; k++ {
					c.AtomicAdd64(ctr, 1)
				}
			}))
		}
		for _, id := range ids {
			th.Join(id)
		}
		if !th.AtomicCAS64(ctr, 100, 200) {
			t.Error("CAS should succeed")
		}
		if th.AtomicCAS64(ctr, 100, 300) {
			t.Error("CAS should fail")
		}
		th.Observe(th.Load64(ctr))
	})
	if rep.Observations[0][0] != 200 {
		t.Fatalf("counter = %d", rep.Observations[0][0])
	}
}

func TestPanicPropagates(t *testing.T) {
	_, err := New().Run(func(th api.Thread) {
		panic("boom")
	})
	if err == nil {
		t.Fatal("expected error from panicking thread")
	}
}

func TestName(t *testing.T) {
	if New().Name() != "pthreads" {
		t.Fatal("wrong name")
	}
}
