// Package pthreads implements the conventional nondeterministic
// multithreading baseline the paper normalizes against (§5.2, "pthreads").
//
// All threads share one address space and synchronize through real Go
// primitives mapped one-to-one onto the pthreads operations. The runtime is
// intentionally nondeterministic: lock-acquisition order, condition wakeups
// and data races resolve however the host scheduler resolves them, exactly
// like pthreads on a stock kernel. Memory accesses are serialized by a lock
// around the shared space (so racy workloads do not trip Go's race
// detector); scheduling nondeterminism between accesses is preserved.
package pthreads

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	//detvet:wallclock pthreads is the nondeterministic baseline; rand jitter emulates preemption noise.
	"math/rand"
	"runtime"
	"sync"
	"time"

	"rfdet/internal/alloc"
	"rfdet/internal/api"
	"rfdet/internal/stats"
	"rfdet/internal/vtime"
)

// Runtime is the pthreads baseline. It satisfies api.Runtime.
type Runtime struct{}

// New returns a pthreads runtime.
func New() *Runtime { return &Runtime{} }

// Name returns "pthreads".
func (r *Runtime) Name() string { return "pthreads" }

// errAborted is the panic sentinel that unwinds a thread goroutine after the
// execution has failed; the abort path mirrors internal/core's recoverable
// abort so runtime errors (allocator failures, replay divergence injected by
// wrappers) surface as an error from Run instead of crashing the host
// process or hanging its peers.
var errAborted = errors.New("pthreads: execution aborted")

// exec is one program execution.
type exec struct {
	alloc *alloc.Allocator
	space *sharedSpace

	// abort is closed (once) when the execution fails, so channel-parked
	// threads (cond waits) can unwind without a wakeup from the failed peer.
	abort chan struct{}

	mu       sync.Mutex
	threads  []*thread
	syncvars map[api.Addr]*syncVar
	err      error
	aborted  bool
	wg       sync.WaitGroup
}

// fail aborts the execution with err (first error wins): it closes the abort
// channel and broadcasts every barrier condition, so blocked threads observe
// the abort and unwind via errAborted instead of waiting for wakeups their
// failed peers will never deliver.
func (e *exec) fail(err error) {
	e.mu.Lock()
	if e.aborted {
		e.mu.Unlock()
		return
	}
	e.aborted = true
	if e.err == nil {
		e.err = err
	}
	close(e.abort)
	svs := make([]*syncVar, 0, len(e.syncvars))
	for _, sv := range e.syncvars {
		svs = append(svs, sv)
	}
	e.mu.Unlock()
	for _, sv := range svs {
		sv.barMu.Lock()
		sv.barCond.Broadcast()
		sv.barMu.Unlock()
	}
}

// isAborted reports whether the execution has failed.
func (e *exec) isAborted() bool {
	select {
	case <-e.abort:
		return true
	default:
		return false
	}
}

// sharedSpace is the single flat shared memory, guarded by a mutex so racy
// byte-level accesses are data races only at the simulated level, not Go
// data races.
type sharedSpace struct {
	mu    sync.Mutex
	pages map[uint64]*[4096]byte
	// resident tracks the footprint (Table 1, "pthreads (MB)").
	resident uint64
}

func newSharedSpace() *sharedSpace {
	return &sharedSpace{pages: make(map[uint64]*[4096]byte)}
}

func (s *sharedSpace) page(id uint64, create bool) *[4096]byte {
	p, ok := s.pages[id]
	if !ok {
		if !create {
			return nil
		}
		p = new([4096]byte)
		s.pages[id] = p
		s.resident += 4096
	}
	return p
}

func (s *sharedSpace) load(a uint64, buf []byte) {
	s.mu.Lock()
	for len(buf) > 0 {
		p := s.page(a>>12, false)
		off := a & 4095
		n := len(buf)
		if room := 4096 - int(off); n > room {
			n = room
		}
		if p == nil {
			for i := 0; i < n; i++ {
				buf[i] = 0
			}
		} else {
			copy(buf[:n], p[off:])
		}
		buf = buf[n:]
		a += uint64(n)
	}
	s.mu.Unlock()
}

func (s *sharedSpace) store(a uint64, data []byte) {
	s.mu.Lock()
	for len(data) > 0 {
		p := s.page(a>>12, true)
		off := a & 4095
		n := copy(p[off:], data)
		data = data[n:]
		a += uint64(n)
	}
	s.mu.Unlock()
}

// hash digests the shared memory in ascending page order.
func (s *sharedSpace) hash() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]uint64, 0, len(s.pages))
	for id := range s.pages {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, id := range ids {
		for i := 0; i < 8; i++ {
			buf[i] = byte(id >> (8 * i))
		}
		h.Write(buf[:])
		h.Write(s.pages[id][:])
	}
	return h.Sum64()
}

// syncVar backs one application synchronization address. The same address
// may be used as a mutex (mu), a condition variable (waiters), a barrier or
// an atomic word, matching how pthreads objects occupy application memory.
type syncVar struct {
	mu     sync.Mutex // the application mutex
	lastVT vtime.Time // virtual time of last unlock (guarded by mu)
	// Condition-variable state.
	qmu     sync.Mutex
	waiters []chan struct{}
	sigVT   vtime.Time
	// Barrier state.
	barMu    sync.Mutex
	barCond  *sync.Cond
	barCount int
	barGen   uint64
	barVT    vtime.Time
	// Atomic-word release time (guarded by qmu).
	atomVT vtime.Time
}

func (e *exec) syncvar(a api.Addr) *syncVar {
	e.mu.Lock()
	defer e.mu.Unlock()
	sv, ok := e.syncvars[a]
	if !ok {
		sv = &syncVar{}
		sv.barCond = sync.NewCond(&sv.barMu)
		e.syncvars[a] = sv
	}
	return sv
}

// thread is one pthreads thread.
type thread struct {
	exec *exec
	id   api.ThreadID
	fn   api.ThreadFunc
	done chan struct{}
	vt   vtime.Time
	st   api.Stats
	obs  []uint64
	// jitter emulates preemption timing noise: a conventional scheduler
	// interleaves threads at unpredictable points, which is exactly the
	// nondeterminism this baseline is supposed to exhibit. On a lightly
	// loaded host Go goroutines are rarely preempted, so racy programs
	// would look spuriously stable without it.
	jitter   *rand.Rand //detvet:wallclock baseline jitter source; nondeterminism is this runtime's point.
	opsSince int
}

// preemptMaybe yields the processor at randomized points, standing in for
// timer-interrupt preemption.
func (t *thread) preemptMaybe() {
	t.opsSince++
	if t.opsSince < 64 {
		return
	}
	t.opsSince = 0
	if t.jitter.Intn(4) == 0 {
		runtime.Gosched()
	}
}

// Run executes main as thread 0.
func (r *Runtime) Run(main api.ThreadFunc) (*api.Report, error) {
	e := &exec{
		alloc:    alloc.New(),
		space:    newSharedSpace(),
		syncvars: make(map[api.Addr]*syncVar),
		abort:    make(chan struct{}),
	}
	e.alloc.Register(0)
	t0 := &thread{exec: e, id: 0, fn: main, done: make(chan struct{}),
		//detvet:wallclock baseline jitter seed: nondeterminism is this runtime's point.
		jitter: rand.New(rand.NewSource(time.Now().UnixNano()))}
	e.threads = append(e.threads, t0)
	start := stats.Now()
	e.wg.Add(1)
	go e.runThread(t0)
	e.wg.Wait()
	elapsed := stats.Since(start)

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return nil, e.err
	}
	rep := &api.Report{
		Observations: make(map[api.ThreadID][]uint64, len(e.threads)),
		Elapsed:      elapsed,
		Threads:      len(e.threads),
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, t := range e.threads {
		rep.Stats.Add(&t.st)
		rep.Observations[t.id] = t.obs
		put(uint64(t.id))
		put(uint64(len(t.obs)))
		for _, v := range t.obs {
			put(v)
		}
		if uint64(t.vt) > rep.VirtualTime {
			rep.VirtualTime = uint64(t.vt)
		}
	}
	put(e.space.hash())
	rep.OutputHash = h.Sum64()
	rep.Stats.SharedMemBytes = e.alloc.HighWater()
	rep.Stats.RuntimeMemBytes = e.alloc.HighWater()
	return rep, nil
}

func (e *exec) runThread(t *thread) {
	defer e.wg.Done()
	defer close(t.done)
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if r == errAborted { //nolint:errorlint // sentinel identity
			return // the failure is already recorded
		}
		// Any other panic is a failure of this thread; abort the execution so
		// peers blocked on this thread's wakeups unwind too.
		e.fail(fmt.Errorf("pthreads: thread %d panicked: %v", t.id, r))
	}()
	t.fn(t)
}

// ID returns the thread's ID (creation order; nondeterministic under races).
func (t *thread) ID() api.ThreadID { return t.id }

func (t *thread) Tick(n uint64) { t.vt += vtime.Time(n) * vtime.MemOp }

func (t *thread) Observe(vals ...uint64) { t.obs = append(t.obs, vals...) }

func (t *thread) Load8(a api.Addr) uint8 {
	t.st.Loads++
	t.vt += vtime.MemOp
	t.preemptMaybe()
	var b [1]byte
	t.exec.space.load(uint64(a), b[:])
	return b[0]
}

func (t *thread) Store8(a api.Addr, v uint8) {
	t.st.Stores++
	t.vt += vtime.MemOp
	t.preemptMaybe()
	t.exec.space.store(uint64(a), []byte{v})
}

func (t *thread) Load32(a api.Addr) uint32 {
	t.st.Loads++
	t.vt += vtime.MemOp
	var b [4]byte
	t.exec.space.load(uint64(a), b[:])
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func (t *thread) Store32(a api.Addr, v uint32) {
	t.st.Stores++
	t.vt += vtime.MemOp
	t.exec.space.store(uint64(a), []byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

func (t *thread) Load64(a api.Addr) uint64 {
	t.st.Loads++
	t.vt += vtime.MemOp
	t.preemptMaybe()
	var b [8]byte
	t.exec.space.load(uint64(a), b[:])
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func (t *thread) Store64(a api.Addr, v uint64) {
	t.st.Stores++
	t.vt += vtime.MemOp
	t.preemptMaybe()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	t.exec.space.store(uint64(a), b[:])
}

func (t *thread) LoadF64(a api.Addr) float64 { return math.Float64frombits(t.Load64(a)) }

func (t *thread) StoreF64(a api.Addr, v float64) { t.Store64(a, math.Float64bits(v)) }

func (t *thread) ReadBytes(a api.Addr, buf []byte) {
	if len(buf) == 0 {
		return
	}
	t.st.Loads++
	t.vt += vtime.Time(len(buf)) * vtime.MemOp
	t.exec.space.load(uint64(a), buf)
}

func (t *thread) WriteBytes(a api.Addr, data []byte) {
	if len(data) == 0 {
		return
	}
	t.st.Stores++
	t.vt += vtime.Time(len(data)) * vtime.MemOp
	t.exec.space.store(uint64(a), data)
}

func (t *thread) Malloc(size uint64) api.Addr {
	t.Tick(8)
	return api.Addr(t.exec.alloc.Malloc(int(t.id), size))
}

func (t *thread) Free(a api.Addr) {
	t.Tick(8)
	if err := t.exec.alloc.Free(uint64(a)); err != nil {
		t.exec.fail(fmt.Errorf("pthreads: thread %d: %v", t.id, err))
		panic(errAborted)
	}
}

func (t *thread) Lock(m api.Addr) {
	t.st.Locks++
	t.vt += vtime.SyncBase
	sv := t.exec.syncvar(m)
	sv.mu.Lock()
	t.vt = vtime.Max(t.vt, sv.lastVT)
}

func (t *thread) Unlock(m api.Addr) {
	t.st.Unlocks++
	t.vt += vtime.SyncBase
	sv := t.exec.syncvar(m)
	sv.lastVT = t.vt
	sv.mu.Unlock()
}

func (t *thread) Wait(c, m api.Addr) {
	t.st.Waits++
	t.vt += vtime.SyncBase
	svc := t.exec.syncvar(c)
	svm := t.exec.syncvar(m)
	// pthread_cond_wait: register on c, atomically release m, sleep until
	// signaled, reacquire m. Registering before releasing m closes the
	// lost-wakeup window for signalers that hold m.
	ch := make(chan struct{})
	svc.qmu.Lock()
	svc.waiters = append(svc.waiters, ch)
	svc.qmu.Unlock()
	svm.lastVT = t.vt
	svm.mu.Unlock()
	select {
	case <-ch:
	case <-t.exec.abort:
		panic(errAborted)
	}
	svm.mu.Lock()
	svc.qmu.Lock()
	t.vt = vtime.Max(t.vt, svc.sigVT)
	svc.qmu.Unlock()
	t.vt = vtime.Max(t.vt, svm.lastVT) + vtime.LockHandoff
}

func (t *thread) Signal(c api.Addr) {
	t.st.Signals++
	t.vt += vtime.SyncBase
	sv := t.exec.syncvar(c)
	sv.qmu.Lock()
	sv.sigVT = vtime.Max(sv.sigVT, t.vt)
	if len(sv.waiters) > 0 {
		close(sv.waiters[0])
		sv.waiters = sv.waiters[1:]
	}
	sv.qmu.Unlock()
}

func (t *thread) Broadcast(c api.Addr) {
	t.st.Signals++
	t.vt += vtime.SyncBase
	sv := t.exec.syncvar(c)
	sv.qmu.Lock()
	sv.sigVT = vtime.Max(sv.sigVT, t.vt)
	for _, ch := range sv.waiters {
		close(ch)
	}
	sv.waiters = nil
	sv.qmu.Unlock()
}

func (t *thread) Barrier(b api.Addr, n int) {
	t.st.Barriers++
	t.vt += vtime.SyncBase
	sv := t.exec.syncvar(b)
	sv.barMu.Lock()
	sv.barVT = vtime.Max(sv.barVT, t.vt)
	sv.barCount++
	if sv.barCount >= n {
		sv.barCount = 0
		sv.barGen++
		sv.barVT += vtime.FencePhase
		t.vt = sv.barVT
		sv.barCond.Broadcast()
		sv.barMu.Unlock()
		return
	}
	gen := sv.barGen
	for gen == sv.barGen {
		// fail broadcasts under barMu, which we hold between this check and
		// Wait's atomic release, so the abort wakeup cannot be missed.
		if t.exec.isAborted() {
			sv.barMu.Unlock()
			panic(errAborted)
		}
		sv.barCond.Wait()
	}
	t.vt = sv.barVT
	sv.barMu.Unlock()
}

func (t *thread) Spawn(fn api.ThreadFunc) api.ThreadID {
	t.st.Forks++
	t.vt += vtime.SyncBase
	e := t.exec
	e.mu.Lock()
	id := api.ThreadID(len(e.threads))
	child := &thread{exec: e, id: id, fn: fn, done: make(chan struct{}), vt: t.vt + vtime.ThreadSpawn,
		//detvet:wallclock baseline jitter seed: nondeterminism is this runtime's point.
		jitter: rand.New(rand.NewSource(time.Now().UnixNano() + int64(id)))}
	e.threads = append(e.threads, child)
	e.alloc.Register(int(id))
	e.wg.Add(1)
	e.mu.Unlock()
	go e.runThread(child)
	return id
}

func (t *thread) Join(id api.ThreadID) {
	t.st.Joins++
	t.vt += vtime.SyncBase
	e := t.exec
	e.mu.Lock()
	if id < 0 || int(id) >= len(e.threads) {
		e.mu.Unlock()
		panic(fmt.Sprintf("pthreads: join of unknown thread %d", id))
	}
	target := e.threads[id]
	e.mu.Unlock()
	<-target.done
	t.vt = vtime.Max(t.vt, target.vt)
}

func (t *thread) AtomicAdd64(a api.Addr, delta uint64) uint64 {
	t.st.AtomicsOps++
	sv := t.exec.syncvar(a)
	sv.qmu.Lock()
	t.vt = vtime.Max(t.vt+vtime.SyncBase, sv.atomVT)
	v := t.Load64(a) + delta
	t.Store64(a, v)
	sv.atomVT = t.vt
	sv.qmu.Unlock()
	return v
}

func (t *thread) AtomicCAS64(a api.Addr, old, new uint64) bool {
	t.st.AtomicsOps++
	sv := t.exec.syncvar(a)
	sv.qmu.Lock()
	defer sv.qmu.Unlock()
	t.vt = vtime.Max(t.vt+vtime.SyncBase, sv.atomVT)
	if t.Load64(a) != old {
		return false
	}
	t.Store64(a, new)
	sv.atomVT = t.vt
	return true
}
