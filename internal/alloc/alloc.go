// Package alloc implements the deterministic memory allocator of paper §4.4.
//
// Because RFDet threads have isolated address spaces, the system allocator
// cannot be used: two threads calling malloc concurrently could receive the
// same virtual address, and those addresses would then collide during memory
// modification propagation. The paper solves this with a modified Hoard
// allocator whose metadata lives in the shared metadata space.
//
// This implementation achieves the same two guarantees with a Hoard-like
// design:
//
//  1. Non-overlap: every thread allocates from its own region of the virtual
//     address range (region = HeapBase + tid*RegionSize), so concurrent
//     allocations in different threads can never return conflicting
//     addresses.
//  2. Determinism: the addresses returned to a thread are a pure function of
//     that thread's own allocation/free sequence (per-thread size-class free
//     lists and a per-thread bump pointer). Cross-thread frees are routed to
//     the owning heap by the runtime under its deterministic order.
//
// Virtual address ranges are huge but sparse; only touched pages become
// resident in any Space.
package alloc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rfdet/internal/mem"
)

const (
	// StaticLimit: addresses below this are reserved for program-defined
	// static objects (sync variables, global scalars) and are never
	// returned by the allocator. Address 0 stays unused as a nil-like
	// sentinel.
	StaticLimit = 1 << 20
	// HeapBase is the first heap address.
	HeapBase = 1 << 32
	// RegionSize is the virtual span owned by each thread's heap.
	RegionSize = 1 << 30
	// MaxThreads bounds the number of per-thread heaps.
	MaxThreads = 1 << 10

	// maxClassSize is the largest size served from size-class free lists;
	// larger requests get page-granular spans.
	maxClassSize = 2048
	numClasses   = 8 // 16,32,64,128,256,512,1024,2048
	minClassSize = 16
)

// classFor maps a request size to a size-class index, or -1 for large.
func classFor(size uint64) int {
	if size > maxClassSize {
		return -1
	}
	c := 0
	s := uint64(minClassSize)
	for s < size {
		s <<= 1
		c++
	}
	return c
}

// classSize returns the block size of class c.
func classSize(c int) uint64 { return minClassSize << uint(c) }

// heap is one thread's allocation arena.
type heap struct {
	//detvet:lockorder 52
	mu sync.Mutex // taken for cross-thread frees; uncontended otherwise
	//detvet:notguarded fixed when the heap is registered, immutable thereafter
	base  uint64
	limit uint64               //detvet:notguarded fixed when the heap is registered, immutable thereafter
	bump  uint64               //detvet:guardedby mu
	free  [numClasses][]uint64 //detvet:guardedby mu // LIFO free lists per size class
	large map[uint64][]uint64  //detvet:guardedby mu // size → freed large spans
	sizes map[uint64]uint64    //detvet:guardedby mu // live allocation sizes
}

// Allocator hands out non-conflicting shared-memory addresses to all threads
// of one program execution.
type Allocator struct {
	//detvet:lockorder 50
	mu sync.Mutex
	//detvet:guardedby mu
	heaps     []*heap
	liveBytes atomic.Int64
	highWater atomic.Int64
}

// New returns an empty allocator.
func New() *Allocator {
	return &Allocator{}
}

// Register creates the heap for thread tid. The runtime calls it at thread
// creation, which every deterministic runtime orders deterministically.
func (a *Allocator) Register(tid int) {
	if tid < 0 || tid >= MaxThreads {
		panic(fmt.Sprintf("alloc: thread id %d out of range", tid))
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for len(a.heaps) <= tid {
		a.heaps = append(a.heaps, nil)
	}
	if a.heaps[tid] == nil {
		base := uint64(HeapBase) + uint64(tid)*RegionSize
		a.heaps[tid] = &heap{
			base:  base,
			limit: base + RegionSize,
			bump:  base,
			large: make(map[uint64][]uint64),
			sizes: make(map[uint64]uint64),
		}
	}
}

func (a *Allocator) heapOf(tid int) *heap {
	a.mu.Lock()
	h := a.heaps[tid]
	a.mu.Unlock()
	if h == nil {
		panic(fmt.Sprintf("alloc: thread %d not registered", tid))
	}
	return h
}

// ownerOf returns the thread whose region contains addr, or -1.
func ownerOf(addr uint64) int {
	if addr < HeapBase {
		return -1
	}
	return int((addr - HeapBase) / RegionSize)
}

// Malloc allocates size bytes on behalf of thread tid and returns the
// address. Addresses are 16-byte aligned; size-zero requests allocate the
// smallest class so that distinct allocations have distinct addresses.
func (a *Allocator) Malloc(tid int, size uint64) uint64 {
	h := a.heapOf(tid)
	h.mu.Lock()
	defer h.mu.Unlock()
	if size == 0 {
		size = 1
	}
	var addr uint64
	var got uint64
	if c := classFor(size); c >= 0 {
		got = classSize(c)
		if n := len(h.free[c]); n > 0 {
			addr = h.free[c][n-1]
			h.free[c] = h.free[c][:n-1]
		} else {
			addr = h.bumpAlloc(got, 16)
		}
	} else {
		got = (size + mem.PageSize - 1) &^ uint64(mem.PageSize-1)
		if spans := h.large[got]; len(spans) > 0 {
			addr = spans[len(spans)-1]
			h.large[got] = spans[:len(spans)-1]
		} else {
			addr = h.bumpAlloc(got, mem.PageSize)
		}
	}
	h.sizes[addr] = got
	live := a.liveBytes.Add(int64(got))
	for {
		hw := a.highWater.Load()
		if live <= hw || a.highWater.CompareAndSwap(hw, live) {
			break
		}
	}
	return addr
}

//detvet:holds mu
func (h *heap) bumpAlloc(size, align uint64) uint64 {
	addr := (h.bump + align - 1) &^ (align - 1)
	if addr+size > h.limit {
		panic(fmt.Sprintf("alloc: heap region exhausted (base %#x)", h.base))
	}
	h.bump = addr + size
	return addr
}

// heapAt returns the registered heap owning addr, or nil. The lookup takes
// a.mu: Register may still be growing the heaps slice (a spawn reallocates
// its backing array) while frees and size queries arrive from
// already-running threads.
func (a *Allocator) heapAt(addr uint64) *heap {
	owner := ownerOf(addr)
	if owner < 0 {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if owner >= len(a.heaps) {
		return nil
	}
	return a.heaps[owner]
}

// Free releases the allocation at addr. Any thread may free any allocation;
// the block returns to the owning thread's heap, as in Hoard. The runtime is
// responsible for ordering cross-thread frees deterministically.
func (a *Allocator) Free(addr uint64) error {
	h := a.heapAt(addr)
	if h == nil {
		return fmt.Errorf("alloc: free of non-heap address %#x", addr)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	size, ok := h.sizes[addr]
	if !ok {
		return fmt.Errorf("alloc: free of unallocated address %#x", addr)
	}
	delete(h.sizes, addr)
	if c := classFor(size); c >= 0 && classSize(c) == size {
		h.free[c] = append(h.free[c], addr)
	} else {
		h.large[size] = append(h.large[size], addr)
	}
	a.liveBytes.Add(-int64(size))
	return nil
}

// SizeOf returns the rounded size of the live allocation at addr, or 0.
func (a *Allocator) SizeOf(addr uint64) uint64 {
	h := a.heapAt(addr)
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sizes[addr]
}

// LiveBytes returns the currently allocated bytes.
func (a *Allocator) LiveBytes() uint64 { return uint64(a.liveBytes.Load()) }

// HighWater returns the high-water mark of allocated bytes: the
// "SharedMemory" term in the footprint equations of §5.4.
func (a *Allocator) HighWater() uint64 { return uint64(a.highWater.Load()) }
