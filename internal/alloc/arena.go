// Arena-backed bump allocation for runtime-internal byte payloads.
//
// The deterministic Allocator above hands out *simulated* shared-memory
// addresses; the types in this file manage real host memory. They exist for
// the epoch-based slicestore: committed slices intern their run payloads into
// a per-segment Arena, and when garbage collection drops a whole segment the
// segment's chunks go back to a ChunkPool instead of to the Go garbage
// collector. Steady-state propagation then recycles a fixed set of chunks
// rather than allocating fresh payload buffers on every commit.
//
// Host-memory recycling is invisible to the deterministic observables: the
// bytes a reader sees are fixed at intern time, and reclamation is gated on
// the vclock frontier plus the store's pin protocol (see slicestore), so no
// live reader can observe a recycled chunk.
package alloc

import (
	"sync"
	"sync/atomic"
)

// ChunkSize is the byte size of pooled arena chunks. 64 KiB amortizes pool
// traffic across many runs while keeping per-segment overhead small.
const ChunkSize = 64 << 10

// PoisonByte fills recycled chunks when poisoning is enabled — a test hook
// that turns any read-after-reclaim of interned payload bytes into a loud,
// deterministic corruption instead of a silent stale read.
const PoisonByte = 0xDB

// ChunkPool recycles fixed-size byte chunks through a LIFO free list, in the
// style of the size-class free lists of the deterministic Allocator.
type ChunkPool struct {
	//detvet:lockorder 60
	mu sync.Mutex
	//detvet:guardedby mu
	free [][]byte

	allocated atomic.Uint64 // chunks ever created
	reused    atomic.Uint64 // gets served from the free list
	poison    atomic.Bool
}

// NewChunkPool returns an empty pool.
func NewChunkPool() *ChunkPool { return &ChunkPool{} }

// Get returns a ChunkSize-byte chunk, reusing a freed one when available.
// Reused chunks are returned as-is (possibly poisoned); the Arena only ever
// reads back bytes it has written.
func (p *ChunkPool) Get() []byte {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		c := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.mu.Unlock()
		p.reused.Add(1)
		return c
	}
	p.mu.Unlock()
	p.allocated.Add(1)
	return make([]byte, ChunkSize)
}

// Put returns a chunk to the pool. Chunks of the wrong size (never produced
// by Get) are dropped. With poisoning enabled the chunk is overwritten with
// PoisonByte first, so any alias still pointing into it reads garbage.
func (p *ChunkPool) Put(c []byte) {
	if cap(c) != ChunkSize {
		return
	}
	c = c[:ChunkSize]
	if p.poison.Load() {
		for i := range c {
			c[i] = PoisonByte
		}
	}
	p.mu.Lock()
	p.free = append(p.free, c)
	p.mu.Unlock()
}

// SetPoison toggles poison-on-free. Test hook; off by default.
func (p *ChunkPool) SetPoison(on bool) { p.poison.Store(on) }

// Allocated returns the number of chunks ever created by Get.
func (p *ChunkPool) Allocated() uint64 { return p.allocated.Load() }

// Reused returns the number of Gets served from the free list.
func (p *ChunkPool) Reused() uint64 { return p.reused.Load() }

// Arena is a chunked bump allocator over a ChunkPool. Alloc carves byte
// slices out of the current chunk, pulling a fresh chunk from the pool when
// the current one is exhausted; there is no per-allocation free. Release
// hands every pooled chunk back at once. Allocations larger than a chunk get
// a dedicated, unpooled block that simply falls to the Go collector on
// release — oversize payloads are rare and not worth a size-class ladder.
//
// An Arena is not safe for concurrent use; the slicestore guards each
// segment's arena with its stripe mutex.
type Arena struct {
	pool   *ChunkPool
	chunks [][]byte // filled + current chunks, in allocation order
	off    int      // bump offset into chunks[len(chunks)-1]
	bytes  uint64   // total bytes handed out
}

// NewArena returns an empty arena drawing from pool.
func NewArena(pool *ChunkPool) *Arena { return &Arena{pool: pool} }

// Alloc returns a length-n slice of arena memory. The slice is valid until
// Release; its contents are whatever the caller writes (reused chunks are
// not cleared). Zero-length requests share an empty view of the current
// chunk rather than allocating.
func (a *Arena) Alloc(n int) []byte {
	a.bytes += uint64(n)
	if n > ChunkSize {
		b := make([]byte, n)
		// Dedicated block: keep it out of the bump chunk sequence by
		// inserting before the current chunk, so the bump offset still
		// refers to the last element.
		if len(a.chunks) == 0 {
			a.chunks = append(a.chunks, b)
			a.off = ChunkSize // force a fresh chunk for the next small alloc
			return b
		}
		last := len(a.chunks) - 1
		a.chunks = append(a.chunks[:last], b, a.chunks[last])
		return b
	}
	if len(a.chunks) == 0 || a.off+n > ChunkSize || cap(a.chunks[len(a.chunks)-1]) != ChunkSize {
		a.chunks = append(a.chunks, a.pool.Get())
		a.off = 0
	}
	cur := a.chunks[len(a.chunks)-1]
	b := cur[a.off : a.off+n : a.off+n]
	a.off += n
	return b
}

// Bytes returns the total payload bytes handed out by Alloc.
func (a *Arena) Bytes() uint64 { return a.bytes }

// Release returns all pooled chunks to the pool and resets the arena.
// Oversize blocks are dropped (collected by the Go runtime). The caller must
// guarantee no allocation from this arena is still reachable by a reader —
// in the slicestore that guarantee is the epoch pin protocol.
func (a *Arena) Release() {
	for i, c := range a.chunks {
		if cap(c) == ChunkSize {
			a.pool.Put(c)
		}
		a.chunks[i] = nil
	}
	a.chunks = a.chunks[:0]
	a.off = 0
	a.bytes = 0
}
