package alloc

import (
	"bytes"
	"testing"
)

func TestArenaBumpDoesNotAlias(t *testing.T) {
	a := NewArena(NewChunkPool())
	var got [][]byte
	for i := 0; i < 100; i++ {
		b := a.Alloc(100)
		if len(b) != 100 {
			t.Fatalf("Alloc(100) returned len %d", len(b))
		}
		for j := range b {
			b[j] = byte(i)
		}
		got = append(got, b)
	}
	for i, b := range got {
		for j, x := range b {
			if x != byte(i) {
				t.Fatalf("allocation %d byte %d = %#x: allocations alias", i, j, x)
			}
		}
	}
	if a.Bytes() != 100*100 {
		t.Fatalf("Bytes = %d, want %d", a.Bytes(), 100*100)
	}
}

func TestArenaAllocCannotGrowIntoNeighbor(t *testing.T) {
	a := NewArena(NewChunkPool())
	b1 := a.Alloc(8)
	b2 := a.Alloc(8)
	copy(b2, "neighbor")
	// Appending to a full-capacity slice must reallocate, not overwrite the
	// adjacent allocation in the shared chunk.
	b1 = append(b1, 0xFF)
	_ = b1
	if string(b2) != "neighbor" {
		t.Fatalf("append through b1 overwrote b2: %q", b2)
	}
}

func TestArenaChunkReuse(t *testing.T) {
	pool := NewChunkPool()
	a := NewArena(pool)
	for i := 0; i < 4*ChunkSize/256; i++ {
		a.Alloc(256)
	}
	if pool.Allocated() < 4 {
		t.Fatalf("expected at least 4 chunks allocated, got %d", pool.Allocated())
	}
	a.Release()

	// A second arena of the same shape must run entirely on recycled chunks.
	before := pool.Allocated()
	b := NewArena(pool)
	for i := 0; i < 4*ChunkSize/256; i++ {
		b.Alloc(256)
	}
	if pool.Allocated() != before {
		t.Fatalf("second arena allocated %d fresh chunks; want all reused", pool.Allocated()-before)
	}
	if pool.Reused() < 4 {
		t.Fatalf("Reused = %d, want >= 4", pool.Reused())
	}
}

func TestArenaOversizeAllocation(t *testing.T) {
	pool := NewChunkPool()
	a := NewArena(pool)
	small := a.Alloc(16)
	copy(small, "0123456789abcdef")
	big := a.Alloc(ChunkSize + 1)
	for i := range big {
		big[i] = 0x5A
	}
	// The oversize block must not disturb the open chunk: a subsequent small
	// allocation still bumps within it, right after the first one.
	next := a.Alloc(16)
	copy(next, "fedcba9876543210")
	if string(small) != "0123456789abcdef" {
		t.Fatalf("oversize alloc corrupted earlier allocation: %q", small)
	}
	for i, x := range big {
		if x != 0x5A {
			t.Fatalf("oversize byte %d = %#x", i, x)
		}
	}
	a.Release()
	// Oversize blocks are dropped, not pooled: nothing in the free list may
	// have their capacity.
	c := pool.Get()
	if cap(c) != ChunkSize {
		t.Fatalf("pool returned chunk with cap %d", cap(c))
	}
}

func TestChunkPoolPoison(t *testing.T) {
	pool := NewChunkPool()
	pool.SetPoison(true)
	a := NewArena(pool)
	b := a.Alloc(64)
	for i := range b {
		b[i] = 1
	}
	a.Release()
	// The released chunk was poisoned; a stale alias must read 0xDB, not the
	// old payload.
	if !bytes.Equal(b, bytes.Repeat([]byte{PoisonByte}, 64)) {
		t.Fatalf("released arena memory not poisoned: %v", b[:8])
	}
}

func TestChunkPoolDropsForeignBuffers(t *testing.T) {
	pool := NewChunkPool()
	pool.Put(make([]byte, 123))
	c := pool.Get()
	if cap(c) != ChunkSize {
		t.Fatalf("pool handed back a foreign buffer, cap %d", cap(c))
	}
}
