package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rfdet/internal/mem"
)

func TestBasicAllocation(t *testing.T) {
	a := New()
	a.Register(0)
	p1 := a.Malloc(0, 100)
	p2 := a.Malloc(0, 100)
	if p1 == p2 {
		t.Fatal("distinct allocations must have distinct addresses")
	}
	if p1 < HeapBase {
		t.Fatalf("allocation below HeapBase: %#x", p1)
	}
	if p1%16 != 0 || p2%16 != 0 {
		t.Fatal("allocations must be 16-byte aligned")
	}
	if got := a.SizeOf(p1); got != 128 {
		t.Fatalf("SizeOf = %d, want 128 (rounded class)", got)
	}
}

func TestZeroSizeAllocationsDistinct(t *testing.T) {
	a := New()
	a.Register(0)
	if a.Malloc(0, 0) == a.Malloc(0, 0) {
		t.Fatal("zero-size allocations must still be distinct")
	}
}

// TestNoOverlapProperty is the §4.4 guarantee: allocations from any mix of
// threads never overlap.
func TestNoOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := New()
		nt := 1 + r.Intn(4)
		for tid := 0; tid < nt; tid++ {
			a.Register(tid)
		}
		type span struct{ lo, hi uint64 }
		var live []span
		for i := 0; i < 200; i++ {
			tid := r.Intn(nt)
			size := uint64(1 + r.Intn(10000))
			p := a.Malloc(tid, size)
			for _, s := range live {
				if p < s.hi && p+size > s.lo {
					return false
				}
			}
			live = append(live, span{p, p + size})
			// Occasionally free a random live span.
			if r.Intn(3) == 0 && len(live) > 0 {
				k := r.Intn(len(live))
				if err := a.Free(live[k].lo); err != nil {
					return false
				}
				live = append(live[:k], live[k+1:]...)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestDeterministicSequences: the same per-thread allocation sequence yields
// the same addresses, regardless of the other threads' activity.
func TestDeterministicSequences(t *testing.T) {
	runSeq := func(noise bool) []uint64 {
		a := New()
		a.Register(0)
		a.Register(1)
		var got []uint64
		for i := 0; i < 50; i++ {
			got = append(got, a.Malloc(0, uint64(16+i*7)))
			if noise {
				// Interleaved activity in another thread's heap.
				p := a.Malloc(1, uint64(1+i*13))
				if i%2 == 0 {
					if err := a.Free(p); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		return got
	}
	quiet := runSeq(false)
	noisy := runSeq(true)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("allocation %d differs with concurrent activity: %#x vs %#x", i, quiet[i], noisy[i])
		}
	}
}

func TestFreeAndReuse(t *testing.T) {
	a := New()
	a.Register(0)
	p := a.Malloc(0, 64)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	// LIFO reuse within the same size class.
	if q := a.Malloc(0, 64); q != p {
		t.Fatalf("expected reuse of %#x, got %#x", p, q)
	}
	// Large allocations reuse page-granular spans.
	big := a.Malloc(0, 3*mem.PageSize)
	if err := a.Free(big); err != nil {
		t.Fatal(err)
	}
	if q := a.Malloc(0, 3*mem.PageSize); q != big {
		t.Fatalf("expected large-span reuse of %#x, got %#x", big, q)
	}
}

func TestCrossThreadFree(t *testing.T) {
	a := New()
	a.Register(0)
	a.Register(1)
	p := a.Malloc(0, 64)
	// Thread 1 frees thread 0's block; it returns to heap 0.
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if q := a.Malloc(0, 64); q != p {
		t.Fatalf("cross-thread free did not return block to owner heap")
	}
}

func TestFreeErrors(t *testing.T) {
	a := New()
	a.Register(0)
	if err := a.Free(12345); err == nil {
		t.Fatal("free of non-heap address must fail")
	}
	p := a.Malloc(0, 64)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Fatal("double free must fail")
	}
}

func TestAccounting(t *testing.T) {
	a := New()
	a.Register(0)
	p := a.Malloc(0, 1000) // rounds to 1024
	if a.LiveBytes() != 1024 {
		t.Fatalf("LiveBytes = %d", a.LiveBytes())
	}
	q := a.Malloc(0, 5000) // rounds to 8192 (two pages)
	if a.LiveBytes() != 1024+8192 {
		t.Fatalf("LiveBytes = %d", a.LiveBytes())
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if a.LiveBytes() != 8192 {
		t.Fatalf("LiveBytes after free = %d", a.LiveBytes())
	}
	if a.HighWater() != 1024+8192 {
		t.Fatalf("HighWater = %d", a.HighWater())
	}
	_ = q
}

func TestRegionSeparation(t *testing.T) {
	a := New()
	a.Register(0)
	a.Register(3)
	p0 := a.Malloc(0, 16)
	p3 := a.Malloc(3, 16)
	if (p0-HeapBase)/RegionSize != 0 {
		t.Fatalf("thread 0 allocation outside its region: %#x", p0)
	}
	if (p3-HeapBase)/RegionSize != 3 {
		t.Fatalf("thread 3 allocation outside its region: %#x", p3)
	}
}

// TestConcurrentRegisterAndFree pins the heap-table locking fixed alongside
// the detvet lockcheck sweep: Free and SizeOf used to index a.heaps without
// a.mu, racing against the slice reallocation a concurrent Register performs
// when it grows the table. Run under -race this test fails on the unlocked
// lookup.
func TestConcurrentRegisterAndFree(t *testing.T) {
	a := New()
	a.Register(0)
	addrs := make([]uint64, 0, 256)
	for i := 0; i < 256; i++ {
		addrs = append(addrs, a.Malloc(0, 64))
	}
	done := make(chan struct{}, 2)
	go func() {
		defer func() { done <- struct{}{} }()
		for tid := 1; tid < 300; tid++ {
			a.Register(tid)
		}
	}()
	go func() {
		defer func() { done <- struct{}{} }()
		for _, ad := range addrs {
			if a.SizeOf(ad) == 0 {
				t.Error("live allocation reported size 0")
				return
			}
			if err := a.Free(ad); err != nil {
				t.Errorf("Free(%#x): %v", ad, err)
				return
			}
		}
	}()
	<-done
	<-done
	if got := a.LiveBytes(); got != 0 {
		t.Fatalf("LiveBytes = %d after freeing everything, want 0", got)
	}
}
