// Package litmus pins down the DLRC memory model (paper §3) with classic
// memory-model litmus tests. Each test is a tiny multithreaded program with
// a set of outcomes; the framework runs it on a runtime and reports the
// observed outcome.
//
// The interesting contrast (§3, Figure 2): DLRC is *more relaxed* than
// sequential consistency — without synchronization, threads see no remote
// writes at all — yet, unlike every hardware memory model, it is completely
// deterministic: a litmus test has exactly one observable outcome per
// runtime, reproduced on every execution. The test suite asserts both
// properties: the outcome is among the model's allowed set, and it never
// varies.
package litmus

import (
	"fmt"
	"sort"
	"strings"

	"rfdet/internal/api"
)

// Outcome is a tuple of observed register values, rendered "r0=.. r1=..".
type Outcome string

// outcome builds an Outcome from register values.
func outcome(vals ...uint64) Outcome {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("r%d=%d", i, v)
	}
	return Outcome(strings.Join(parts, " "))
}

// Test is one litmus shape.
type Test struct {
	// Name is the conventional litmus name (MP, SB, LB, IRIW, CoWW...).
	Name string
	// Doc explains what the shape probes.
	Doc string
	// Prog runs the litmus and returns the observed registers.
	Prog func(t api.Thread) []uint64
	// AllowedSC is the outcome set under sequential consistency (what the
	// pthreads baseline may produce).
	AllowedSC []Outcome
	// DLRC is the single outcome RFDet must produce, every time. It is
	// always either an SC outcome or a relaxed outcome that DLRC's
	// isolation rule specifically allows (§3: a write is invisible until
	// it happens-before the read).
	DLRC Outcome
	// DLRCRelaxed marks outcomes outside AllowedSC — evidence that DLRC is
	// weaker than SC for racy code, as §3 argues it may be.
	DLRCRelaxed bool
	// Racy marks kernels containing a data race under the happens-before
	// definition: two concurrent conflicting plain accesses. The
	// internal/racecheck detector must report at least one race on these
	// and exactly zero on the others.
	Racy bool
	// RaceInvisible marks racy kernels whose races the byte-granularity
	// detector provably cannot see: §4.6's redundant-write exclusion drops
	// identical or unchanged bytes from modification lists, so racing
	// stores whose changed bytes are disjoint (byte-merge) or identical
	// leave no overlapping footprint. These kernels must report zero races
	// — the documented false negative of DESIGN.md §12.
	RaceInvisible bool
}

// run executes the litmus program and renders the outcome: the registers
// observed by every thread, concatenated in thread-ID order.
func run(rt api.Runtime, tst Test) (Outcome, error) {
	rep, err := rt.Run(func(t api.Thread) {
		vals := tst.Prog(t)
		t.Observe(vals...)
	})
	if err != nil {
		return "", err
	}
	var regs []uint64
	for tid := api.ThreadID(0); int(tid) < rep.Threads; tid++ {
		regs = append(regs, rep.Observations[tid]...)
	}
	return outcome(regs...), nil
}

// RunReport executes the litmus once and returns the full execution report —
// the entry point for inspecting observational artifacts (race reports,
// stats) that Observe's outcome rendering discards.
func RunReport(rt api.Runtime, tst Test) (*api.Report, error) {
	return rt.Run(func(t api.Thread) {
		vals := tst.Prog(t)
		t.Observe(vals...)
	})
}

// Observe runs the litmus n times and returns the distinct outcomes seen.
func Observe(rt api.Runtime, tst Test, n int) ([]Outcome, error) {
	seen := map[Outcome]bool{}
	for i := 0; i < n; i++ {
		o, err := run(rt, tst)
		if err != nil {
			return nil, err
		}
		seen[o] = true
	}
	out := make([]Outcome, 0, len(seen))
	for o := range seen {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Tests returns the litmus suite. Thread bodies pad their Kendo clocks so
// RFDet's deterministic schedule is the stated one; the *memory model*
// decides what each read returns.
func Tests() []Test {
	return []Test{
		{
			Name: "MP-plain",
			Doc: "message passing with plain stores: T1 writes data then flag; " +
				"T2 reads flag then data. Under DLRC neither write is visible " +
				"without synchronization — the stale-flag outcome is mandatory.",
			Prog: func(t api.Thread) []uint64 {
				x := t.Malloc(8)
				flag := t.Malloc(8)
				w := t.Spawn(func(c api.Thread) {
					c.Store64(x, 1)
					c.Store64(flag, 1)
				})
				r := t.Spawn(func(c api.Thread) {
					c.Tick(10000) // after the writer, in the deterministic order
					r0 := c.Load64(flag)
					r1 := c.Load64(x)
					c.Observe(r0, r1)
				})
				t.Join(w)
				t.Join(r)
				return nil // observed by the reader below
			},
			// SC forbids r0=1 ∧ r1=0; any of the rest may appear.
			AllowedSC:   []Outcome{outcome(0, 0), outcome(0, 1), outcome(1, 1)},
			DLRC:        outcome(0, 0),
			DLRCRelaxed: false,
			Racy:        true, // unsynchronized flag and data accesses
		},
		{
			Name: "MP-locked",
			Doc: "message passing with lock-protected publication: the flag's " +
				"critical section carries the data with it (DLRC propagation), " +
				"so the reader that sees the flag must see the data.",
			Prog: func(t api.Thread) []uint64 {
				x := t.Malloc(8)
				flag := t.Malloc(8)
				mu := api.Addr(64)
				w := t.Spawn(func(c api.Thread) {
					c.Store64(x, 1)
					c.Lock(mu)
					c.Store64(flag, 1)
					c.Unlock(mu)
				})
				r := t.Spawn(func(c api.Thread) {
					c.Tick(10000)
					c.Lock(mu)
					r0 := c.Load64(flag)
					c.Unlock(mu)
					r1 := c.Load64(x)
					c.Observe(r0, r1)
				})
				t.Join(w)
				t.Join(r)
				return nil
			},
			AllowedSC: []Outcome{outcome(0, 0), outcome(0, 1), outcome(1, 1)},
			DLRC:      outcome(1, 1),
		},
		{
			Name: "SB",
			Doc: "store buffering: each thread writes one location and reads the " +
				"other. SC forbids r0=0 ∧ r1=0; TSO allows it; DLRC mandates it " +
				"for unsynchronized threads (complete isolation).",
			Prog: func(t api.Thread) []uint64 {
				x := t.Malloc(8)
				y := t.Malloc(8)
				t1 := t.Spawn(func(c api.Thread) {
					c.Store64(x, 1)
					c.Observe(c.Load64(y))
				})
				t2 := t.Spawn(func(c api.Thread) {
					c.Store64(y, 1)
					c.Observe(c.Load64(x))
				})
				t.Join(t1)
				t.Join(t2)
				return nil
			},
			AllowedSC:   []Outcome{outcome(0, 1), outcome(1, 0), outcome(1, 1)},
			DLRC:        outcome(0, 0),
			DLRCRelaxed: true,
			Racy:        true, // each location: one plain writer, one plain reader
		},
		{
			Name: "LB",
			Doc: "load buffering: each thread reads one location then writes the " +
				"other. r0=1 ∧ r1=1 requires out-of-thin-air speculation, which " +
				"no reasonable model allows; DLRC gives 0,0 deterministically.",
			Prog: func(t api.Thread) []uint64 {
				x := t.Malloc(8)
				y := t.Malloc(8)
				t1 := t.Spawn(func(c api.Thread) {
					c.Observe(c.Load64(x))
					c.Store64(y, 1)
				})
				t2 := t.Spawn(func(c api.Thread) {
					c.Observe(c.Load64(y))
					c.Store64(x, 1)
				})
				t.Join(t1)
				t.Join(t2)
				return nil
			},
			AllowedSC:   []Outcome{outcome(0, 0), outcome(0, 1), outcome(1, 0)},
			DLRC:        outcome(0, 0),
			DLRCRelaxed: false,
			Racy:        true, // each location: one plain writer, one plain reader
		},
		{
			Name: "IRIW-joined",
			Doc: "independent reads of independent writes, with the readers " +
				"joining both writers first: after a join the writes are " +
				"happened-before, so both readers must agree on both values.",
			Prog: func(t api.Thread) []uint64 {
				x := t.Malloc(8)
				y := t.Malloc(8)
				w1 := t.Spawn(func(c api.Thread) { c.Store64(x, 1) })
				w2 := t.Spawn(func(c api.Thread) { c.Store64(y, 1) })
				t.Join(w1)
				t.Join(w2)
				r1 := t.Spawn(func(c api.Thread) { c.Observe(c.Load64(x), c.Load64(y)) })
				r2 := t.Spawn(func(c api.Thread) { c.Observe(c.Load64(y), c.Load64(x)) })
				t.Join(r1)
				t.Join(r2)
				return nil
			},
			AllowedSC: []Outcome{outcome(1, 1, 1, 1)},
			DLRC:      outcome(1, 1, 1, 1),
		},
		{
			Name: "CoWW",
			Doc: "coherence of write-write races: two unsynchronized writers to " +
				"one location; the main thread joins both. DLRC resolves the " +
				"conflict deterministically (the later join's modification wins " +
				"if not redundant, §4.3).",
			Prog: func(t api.Thread) []uint64 {
				x := t.Malloc(8)
				t1 := t.Spawn(func(c api.Thread) { c.Store64(x, 1) })
				t2 := t.Spawn(func(c api.Thread) { c.Store64(x, 2) })
				t.Join(t1)
				t.Join(t2)
				return []uint64{t.Load64(x)}
			},
			AllowedSC: []Outcome{outcome(1), outcome(2)},
			DLRC:      outcome(2), // join order: t1's slice, then t2's overwrites
			Racy:      true,       // write/write conflict on the shared word
		},
		{
			Name: "atomic-MP",
			Doc: "message passing through the §4.6 atomics extension: the atomic " +
				"release publishes the plain data store.",
			Prog: func(t api.Thread) []uint64 {
				x := t.Malloc(8)
				flag := t.Malloc(8)
				w := t.Spawn(func(c api.Thread) {
					c.Store64(x, 7)
					c.AtomicAdd64(flag, 1)
				})
				r := t.Spawn(func(c api.Thread) {
					c.Tick(10000)
					r0 := c.AtomicAdd64(flag, 0)
					r1 := c.Load64(x)
					c.Observe(r0, r1)
				})
				t.Join(w)
				t.Join(r)
				return nil
			},
			AllowedSC: []Outcome{outcome(0, 0), outcome(0, 7), outcome(1, 7)},
			DLRC:      outcome(1, 7),
		},
		{
			Name: "byte-merge",
			Doc: "the §4.6 example: concurrent 255 and 256 stores to a 32-bit " +
				"word merge at byte granularity into 511 — deterministic and " +
				"semantically valid for a racy program, impossible under SC.",
			Prog: func(t api.Thread) []uint64 {
				y := t.Malloc(4)
				t1 := t.Spawn(func(c api.Thread) { c.Store32(y, 256) })
				t2 := t.Spawn(func(c api.Thread) { c.Store32(y, 255) })
				t.Join(t1)
				t.Join(t2)
				return []uint64{uint64(t.Load32(y))}
			},
			AllowedSC:   []Outcome{outcome(255), outcome(256)},
			DLRC:        outcome(511),
			DLRCRelaxed: true,
			Racy:        true,
			// The racing stores change disjoint bytes of the word, so their
			// modification lists never overlap: invisible at byte granularity.
			RaceInvisible: true,
		},
	}
}
