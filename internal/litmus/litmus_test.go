package litmus

import (
	"testing"

	"rfdet/internal/api"
	"rfdet/internal/core"
	"rfdet/internal/pthreads"
)

func rfdetConfigs() []core.Options {
	return []core.Options{
		core.DefaultOptions(),
		{Monitor: core.MonitorPF, SliceMerging: true, Prelock: true, LazyWrites: true},
		{}, // all optimizations off
	}
}

// TestDLRCOutcomes runs each litmus on RFDet: the observed outcome must be
// exactly the model's predicted one, identical across repetitions and
// across monitor/optimization configurations.
func TestDLRCOutcomes(t *testing.T) {
	for _, tst := range Tests() {
		tst := tst
		t.Run(tst.Name, func(t *testing.T) {
			for _, opts := range rfdetConfigs() {
				outcomes, err := Observe(core.New(opts), tst, 5)
				if err != nil {
					t.Fatalf("%s: %v", tst.Name, err)
				}
				if len(outcomes) != 1 {
					t.Fatalf("%s: nondeterministic outcomes %v", tst.Name, outcomes)
				}
				if outcomes[0] != tst.DLRC {
					t.Fatalf("%s (opts %+v): observed %q, DLRC predicts %q",
						tst.Name, opts, outcomes[0], tst.DLRC)
				}
			}
		})
	}
}

// TestRelaxationIsDocumented checks the suite's own bookkeeping: an outcome
// flagged DLRCRelaxed is outside the SC set, and an unflagged one is inside.
func TestRelaxationIsDocumented(t *testing.T) {
	for _, tst := range Tests() {
		inSC := false
		for _, o := range tst.AllowedSC {
			if o == tst.DLRC {
				inSC = true
			}
		}
		if inSC == tst.DLRCRelaxed {
			t.Errorf("%s: DLRC outcome %q inSC=%v but flagged relaxed=%v",
				tst.Name, tst.DLRC, inSC, tst.DLRCRelaxed)
		}
	}
}

// TestPthreadsStaysWithinSC runs each litmus on the pthreads baseline many
// times: every observed outcome must be SC-allowed (our pthreads serializes
// simulated memory accesses, so it is sequentially consistent — just
// nondeterministic).
func TestPthreadsStaysWithinSC(t *testing.T) {
	for _, tst := range Tests() {
		tst := tst
		t.Run(tst.Name, func(t *testing.T) {
			outcomes, err := Observe(pthreads.New(), tst, 10)
			if err != nil {
				t.Fatalf("%s: %v", tst.Name, err)
			}
			allowed := map[Outcome]bool{}
			for _, o := range tst.AllowedSC {
				allowed[o] = true
			}
			for _, o := range outcomes {
				if !allowed[o] {
					t.Fatalf("%s: pthreads produced non-SC outcome %q (allowed %v)",
						tst.Name, o, tst.AllowedSC)
				}
			}
		})
	}
}

// TestOutcomeRendering pins the Outcome format the tables rely on.
func TestOutcomeRendering(t *testing.T) {
	if outcome(1, 0) != "r0=1 r1=0" {
		t.Fatalf("outcome rendering changed: %q", outcome(1, 0))
	}
	var rt api.Runtime = core.New(core.DefaultOptions())
	if rt.Name() != "rfdet-ci" {
		t.Fatal("unexpected runtime")
	}
}
