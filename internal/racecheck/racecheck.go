// Package racecheck implements a dynamic happens-before data-race detector
// over DLRC executions. DLRC already computes everything such a detector
// needs: every slice carries a vector-clock timestamp (internal/vclock) and a
// byte-granularity modification list (internal/mem), and the runtime adds
// per-slice read sets when Options.RaceDetect is on. Two accesses race when
// their slices' clocks are Concurrent (neither happens-before the other) and
// their byte ranges overlap with at least one side writing — the classic
// happens-before definition, evaluated post-hoc over recorded slices rather
// than online per access.
//
// The detector is strictly observational: it charges no virtual time, emits
// no trace events, and never changes what the program computes. Because the
// slices themselves (clocks, modification lists, arrival order at the
// monitor) are deterministic under DLRC, the race report is a deterministic
// function of the program — the same program yields a byte-identical report
// on every run and every GOMAXPROCS, which is what makes the report usable
// as a CI artifact.
//
// One documented blind spot: modification lists exclude bytes overwritten
// with their snapshot value (§4.6 redundant-write exclusion), so a write/
// write race where the racing stores happen to produce identical bytes — or
// disjoint changed bytes within one word, as in the byte-merge litmus — is
// invisible at byte granularity. That is inherent to DLRC's byte-level
// semantics, not a detector bug; see DESIGN.md §12.
package racecheck

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"rfdet/internal/mem"
	"rfdet/internal/vclock"
)

// Range is a half-open byte range [Addr, Addr+Len) in the shared address
// space.
type Range struct {
	Addr uint64
	Len  uint64
}

// End returns the first address past the range.
func (r Range) End() uint64 { return r.Addr + r.Len }

// Access records one slice's memory footprint: the bytes it wrote (from the
// slice's modification list) and the bytes it read (from the read tracker),
// stamped with the slice's end-time vector clock. VT is the owning thread's
// deterministic logical end time, used only to order and label reports.
type Access struct {
	Tid    int32
	VT     uint64
	Clock  vclock.VC
	Writes []Range
	Reads  []Range
	// Atomic marks a §4.6 low-level-atomic micro-operation. Two atomic
	// accesses never race with each other even when their clocks are
	// concurrent: the Kendo turn plus the word's internal synchronization
	// variable totally order them, exactly as C++ atomics are exempt from
	// the data-race definition. Atomic-vs-plain conflicts still use the
	// clocks — mixing atomic and plain accesses to one location without
	// happens-before ordering is a race.
	Atomic bool
}

// Kind classifies a race by the access types on its two sides.
type Kind uint8

const (
	// WriteWrite is a write/write conflict.
	WriteWrite Kind = iota
	// ReadWrite is a read/write conflict (either side may be the reader).
	ReadWrite
)

func (k Kind) String() string {
	if k == WriteWrite {
		return "write/write"
	}
	return "read/write"
}

// Race is one detected conflict: a byte range touched by two concurrent
// slices with at least one side writing. Side 1 is the side with the smaller
// (VT, Tid) — a canonical order, since clocks of concurrent slices give no
// order. All fields are comparable so races deduplicate via a map key.
type Race struct {
	Kind   Kind
	Addr   uint64
	Len    uint64
	Tid1   int32
	VT1    uint64
	Clock1 string
	Tid2   int32
	VT2    uint64
	Clock2 string
}

func (r Race) String() string {
	return fmt.Sprintf("%s race at [0x%x,0x%x): thread %d@vt=%d %s <-> thread %d@vt=%d %s",
		r.Kind, r.Addr, r.Addr+r.Len, r.Tid1, r.VT1, r.Clock1, r.Tid2, r.VT2, r.Clock2)
}

// Report is the deduplicated, deterministically ordered race list of one
// execution.
type Report struct {
	// Races is sorted by (VT1, Tid1, VT2, Tid2, Addr, Len, Kind).
	Races []Race
	// AccessesRecorded counts the slice access records analyzed.
	AccessesRecorded uint64
}

// String renders the report in its canonical text form — the byte-identical
// artifact CI diffs across GOMAXPROCS values.
func (rep *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "races: %d (accesses analyzed: %d)\n", len(rep.Races), rep.AccessesRecorded)
	for _, r := range rep.Races {
		b.WriteString("  ")
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Hash returns a 64-bit FNV-1a digest of the canonical text form.
func (rep *Report) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(rep.String()))
	return h.Sum64()
}

// Detector accumulates slice access records and analyzes them at the end of
// the run. Recording used to rely on the deterministic turn for
// serialization; under Options.RaceRelaxed profiled operations commit off
// the turn, so the detector carries its own mutex. The mutex guards only
// the appends — the report's order comes from Analyze's deterministic sort,
// never from arrival order, so the report stays byte-identical.
type Detector struct {
	mu       sync.Mutex
	accesses []Access
	syncUses map[uint64]*syncUse
}

// syncUse tracks which threads performed synchronization operations on one
// sync-var address: the relaxation profile's raw material.
type syncUse struct {
	firstTid int32
	multi    bool
	ops      uint64
}

// New returns an empty detector.
func New() *Detector { return &Detector{syncUses: make(map[uint64]*syncUse)} }

// Record adds one slice's access footprint. Records with no reads and no
// writes are dropped — they cannot participate in any conflict. The caller
// must pass a Clock the detector may retain (clone before mutating).
func (d *Detector) Record(a Access) {
	if len(a.Writes) == 0 && len(a.Reads) == 0 {
		return
	}
	d.mu.Lock()
	d.accesses = append(d.accesses, a)
	d.mu.Unlock()
}

// RecordSync notes that thread tid performed a synchronization operation on
// the sync var at addr. The runtime calls this for every Lock/Unlock/atomic
// (and, conservatively, for the mutex manipulated on a waiter's behalf by
// Signal and for every barrier arrival): an address touched by more than
// one thread is excluded from the relaxation profile.
func (d *Detector) RecordSync(addr uint64, tid int32) {
	d.mu.Lock()
	u, ok := d.syncUses[addr]
	if !ok {
		u = &syncUse{firstTid: tid}
		d.syncUses[addr] = u
	}
	if u.firstTid != tid {
		u.multi = true
	}
	u.ops++
	d.mu.Unlock()
}

// Analyze computes the race report over all recorded accesses. A nil
// detector (race detection off) yields nil.
func (d *Detector) Analyze() *Report {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	acc := make([]Access, len(d.accesses))
	copy(acc, d.accesses)
	d.mu.Unlock()
	// Records arrive in deterministic turn order already, but sorting by
	// (VT, Tid) makes the report independent even of *how* the runtime
	// interleaved commits, and fixes the canonical side-1/side-2 labeling.
	sort.SliceStable(acc, func(i, j int) bool {
		if acc[i].VT != acc[j].VT {
			return acc[i].VT < acc[j].VT
		}
		return acc[i].Tid < acc[j].Tid
	})
	seen := make(map[Race]struct{})
	var races []Race
	add := func(k Kind, overlap []Range, lo, hi *Access) {
		for _, o := range overlap {
			r := Race{
				Kind: k, Addr: o.Addr, Len: o.Len,
				Tid1: lo.Tid, VT1: lo.VT, Clock1: lo.Clock.String(),
				Tid2: hi.Tid, VT2: hi.VT, Clock2: hi.Clock.String(),
			}
			if _, dup := seen[r]; !dup {
				seen[r] = struct{}{}
				races = append(races, r)
			}
		}
	}
	for i := range acc {
		for j := i + 1; j < len(acc); j++ {
			a, b := &acc[i], &acc[j]
			if a.Tid == b.Tid {
				continue // same thread: program order, never concurrent
			}
			if a.Atomic && b.Atomic {
				continue // atomics are totally ordered by the arbiter
			}
			if a.Clock.Compare(b.Clock) != vclock.Unordered {
				continue // ordered by happens-before
			}
			add(WriteWrite, Intersect(a.Writes, b.Writes), a, b)
			add(ReadWrite, Intersect(a.Reads, b.Writes), a, b)
			add(ReadWrite, Intersect(a.Writes, b.Reads), a, b)
		}
	}
	sort.Slice(races, func(i, j int) bool {
		a, b := races[i], races[j]
		if a.VT1 != b.VT1 {
			return a.VT1 < b.VT1
		}
		if a.Tid1 != b.Tid1 {
			return a.Tid1 < b.Tid1
		}
		if a.VT2 != b.VT2 {
			return a.VT2 < b.VT2
		}
		if a.Tid2 != b.Tid2 {
			return a.Tid2 < b.Tid2
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		if a.Len != b.Len {
			return a.Len < b.Len
		}
		return a.Kind < b.Kind
	})
	return &Report{Races: races, AccessesRecorded: uint64(len(acc))}
}

// Intersect returns the overlapping ranges of two sorted, coalesced,
// non-overlapping range lists via a merge scan. The result is itself sorted
// and non-overlapping.
func Intersect(xs, ys []Range) []Range {
	var out []Range
	i, j := 0, 0
	for i < len(xs) && j < len(ys) {
		lo := xs[i].Addr
		if ys[j].Addr > lo {
			lo = ys[j].Addr
		}
		hi := xs[i].End()
		if e := ys[j].End(); e < hi {
			hi = e
		}
		if lo < hi {
			out = append(out, Range{Addr: lo, Len: hi - lo})
		}
		if xs[i].End() <= ys[j].End() {
			i++
		} else {
			j++
		}
	}
	return out
}

// RangesOverlap reports whether two sorted, coalesced range lists share any
// byte, via the same merge scan as Intersect but with an early exit and no
// allocation. The propagation-elision veto calls it once per (slice, peer)
// pair, so the cheap form matters.
func RangesOverlap(xs, ys []Range) bool {
	i, j := 0, 0
	for i < len(xs) && j < len(ys) {
		if xs[i].End() <= ys[j].Addr {
			i++
			continue
		}
		if ys[j].End() <= xs[i].Addr {
			j++
			continue
		}
		return true
	}
	return false
}

// Normalize sorts rs by address and merges overlapping or touching ranges in
// place, returning the coalesced list (nil input stays nil).
func Normalize(rs []Range) []Range {
	if len(rs) <= 1 {
		return rs
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Addr < rs[j].Addr })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Addr <= last.End() {
			if r.End() > last.End() {
				last.Len = r.End() - last.Addr
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// RangesFromRuns converts a slice's modification list into address ranges.
// Runs are already sorted, coalesced and non-overlapping.
func RangesFromRuns(runs []mem.Run) []Range {
	if len(runs) == 0 {
		return nil
	}
	out := make([]Range, 0, len(runs))
	for _, r := range runs {
		if len(r.Data) == 0 {
			continue
		}
		out = append(out, Range{Addr: r.Addr, Len: uint64(len(r.Data))})
	}
	return out
}

// RangesFromExtents converts one page's extent list (page-local offsets) into
// absolute address ranges appended to dst.
func RangesFromExtents(dst []Range, id mem.PageID, exts []mem.Extent) []Range {
	base := mem.PageAddr(id)
	for _, e := range exts {
		dst = append(dst, Range{Addr: base + uint64(e.Off), Len: uint64(e.Len)})
	}
	return dst
}
