package racecheck

import (
	"math/rand"
	"reflect"
	"testing"

	"rfdet/internal/mem"
	"rfdet/internal/vclock"
)

func rng(addr, n uint64) Range { return Range{Addr: addr, Len: n} }

func TestIntersect(t *testing.T) {
	cases := []struct {
		xs, ys, want []Range
	}{
		{nil, nil, nil},
		{[]Range{rng(0, 10)}, nil, nil},
		{[]Range{rng(0, 10)}, []Range{rng(10, 5)}, nil},                // touching, no overlap
		{[]Range{rng(0, 10)}, []Range{rng(5, 10)}, []Range{rng(5, 5)}}, // partial
		{[]Range{rng(0, 100)}, []Range{rng(10, 5), rng(40, 2)}, []Range{rng(10, 5), rng(40, 2)}}, // containment
		{[]Range{rng(0, 4), rng(8, 4), rng(16, 4)}, []Range{rng(2, 8), rng(18, 10)},
			[]Range{rng(2, 2), rng(8, 2), rng(18, 2)}}, // interleaved
		{[]Range{rng(5, 3)}, []Range{rng(5, 3)}, []Range{rng(5, 3)}}, // identical
	}
	for i, c := range cases {
		if got := Intersect(c.xs, c.ys); !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: Intersect=%v, want %v", i, got, c.want)
		}
		// Intersection commutes.
		if got := Intersect(c.ys, c.xs); !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: reversed Intersect=%v, want %v", i, got, c.want)
		}
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want []Range }{
		{nil, nil},
		{[]Range{rng(3, 2)}, []Range{rng(3, 2)}},
		{[]Range{rng(10, 5), rng(0, 5)}, []Range{rng(0, 5), rng(10, 5)}},             // sort
		{[]Range{rng(0, 5), rng(5, 5)}, []Range{rng(0, 10)}},                         // touching merge
		{[]Range{rng(0, 8), rng(4, 2)}, []Range{rng(0, 8)}},                          // contained
		{[]Range{rng(4, 8), rng(0, 6), rng(20, 1)}, []Range{rng(0, 12), rng(20, 1)}}, // overlap merge
	}
	for i, c := range cases {
		if got := Normalize(append([]Range(nil), c.in...)); !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: Normalize=%v, want %v", i, got, c.want)
		}
	}
}

// TestNormalizeAgainstBitmap property-checks Normalize against a byte bitmap.
func TestNormalizeAgainstBitmap(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var in []Range
		var bits [256]bool
		for i := 0; i < r.Intn(12); i++ {
			a, n := uint64(r.Intn(200)), uint64(1+r.Intn(40))
			in = append(in, rng(a, n))
			for b := a; b < a+n && b < 256; b++ {
				bits[b] = true
			}
		}
		out := Normalize(in)
		// Coverage must match the bitmap exactly, and the list must be
		// sorted with gaps between entries.
		var covered [256]bool
		prevEnd := uint64(0)
		for i, e := range out {
			if i > 0 && e.Addr <= prevEnd {
				t.Fatalf("trial %d: not gap-separated: %v", trial, out)
			}
			prevEnd = e.End()
			for b := e.Addr; b < e.End() && b < 256; b++ {
				covered[b] = true
			}
		}
		if covered != bits {
			t.Fatalf("trial %d: coverage mismatch for %v -> %v", trial, in, out)
		}
	}
}

func vc(vals ...uint64) vclock.VC { return vclock.VC(vals) }

func TestAnalyzeFindsRaces(t *testing.T) {
	d := New()
	// Threads 1 and 2 with concurrent clocks; thread 3 ordered after both.
	d.Record(Access{Tid: 1, VT: 100, Clock: vc(0, 5, 0, 0),
		Writes: []Range{rng(64, 8)}, Reads: []Range{rng(128, 4)}})
	d.Record(Access{Tid: 2, VT: 90, Clock: vc(0, 0, 5, 0),
		Writes: []Range{rng(64, 8), rng(128, 2)}})
	d.Record(Access{Tid: 3, VT: 200, Clock: vc(0, 6, 6, 3),
		Writes: []Range{rng(64, 8)}}) // happens-after both: no race
	rep := d.Analyze()
	if rep.AccessesRecorded != 3 {
		t.Fatalf("accesses %d", rep.AccessesRecorded)
	}
	if len(rep.Races) != 2 {
		t.Fatalf("expected 2 races, got %d:\n%s", len(rep.Races), rep)
	}
	// Canonical order: side 1 is smaller (VT, Tid) — thread 2 at VT 90.
	ww, rw := rep.Races[0], rep.Races[1]
	if ww.Kind != WriteWrite || ww.Addr != 64 || ww.Len != 8 || ww.Tid1 != 2 || ww.Tid2 != 1 {
		t.Fatalf("write/write race wrong: %+v", ww)
	}
	if rw.Kind != ReadWrite || rw.Addr != 128 || rw.Len != 2 || rw.Tid1 != 2 || rw.Tid2 != 1 {
		t.Fatalf("read/write race wrong: %+v", rw)
	}
}

func TestAnalyzeExemptions(t *testing.T) {
	base := []Access{
		{Tid: 1, VT: 10, Clock: vc(5, 0), Writes: []Range{rng(0, 8)}},
		{Tid: 2, VT: 20, Clock: vc(0, 5), Writes: []Range{rng(0, 8)}},
	}
	// Same thread never races with itself.
	d := New()
	a := base[0]
	b := base[0]
	b.VT = 11
	d.Record(a)
	d.Record(b)
	if rep := d.Analyze(); len(rep.Races) != 0 {
		t.Fatalf("same-thread accesses raced:\n%s", rep)
	}
	// Ordered clocks never race.
	d = New()
	d.Record(Access{Tid: 1, VT: 10, Clock: vc(5, 0), Writes: []Range{rng(0, 8)}})
	d.Record(Access{Tid: 2, VT: 20, Clock: vc(5, 5), Writes: []Range{rng(0, 8)}})
	if rep := d.Analyze(); len(rep.Races) != 0 {
		t.Fatalf("ordered accesses raced:\n%s", rep)
	}
	// Atomic/atomic is exempt; atomic/plain is not.
	d = New()
	a, b = base[0], base[1]
	a.Atomic, b.Atomic = true, true
	d.Record(a)
	d.Record(b)
	if rep := d.Analyze(); len(rep.Races) != 0 {
		t.Fatalf("atomic/atomic raced:\n%s", rep)
	}
	d = New()
	a.Atomic, b.Atomic = true, false
	d.Record(a)
	d.Record(b)
	if rep := d.Analyze(); len(rep.Races) != 1 {
		t.Fatalf("atomic/plain should race:\n%s", rep.String())
	}
	// Disjoint ranges never race.
	d = New()
	d.Record(Access{Tid: 1, VT: 10, Clock: vc(5, 0), Writes: []Range{rng(0, 8)}})
	d.Record(Access{Tid: 2, VT: 20, Clock: vc(0, 5), Writes: []Range{rng(8, 8)}})
	if rep := d.Analyze(); len(rep.Races) != 0 {
		t.Fatalf("disjoint accesses raced:\n%s", rep)
	}
}

// TestAnalyzeDeterministicOrder shuffles record order: the report must be
// byte-identical regardless — the property the CI artifact depends on.
func TestAnalyzeDeterministicOrder(t *testing.T) {
	mk := func() []Access {
		var accs []Access
		for tid := int32(1); tid <= 4; tid++ {
			clk := vc(0, 0, 0, 0, 0)
			clk[tid] = 7
			accs = append(accs, Access{
				Tid: tid, VT: uint64(10 * tid), Clock: clk,
				Writes: []Range{rng(uint64(tid)*4, 8)},
				Reads:  []Range{rng(100, 4)},
			})
		}
		return accs
	}
	var want string
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		accs := mk()
		r.Shuffle(len(accs), func(i, j int) { accs[i], accs[j] = accs[j], accs[i] })
		d := New()
		for _, a := range accs {
			d.Record(a)
		}
		rep := d.Analyze()
		if trial == 0 {
			want = rep.String()
			if len(rep.Races) == 0 {
				t.Fatal("fixture found no races")
			}
			continue
		}
		if got := rep.String(); got != want {
			t.Fatalf("trial %d: report depends on record order:\n%s\nvs\n%s", trial, got, want)
		}
		if rep.Hash() != (&Report{Races: rep.Races, AccessesRecorded: rep.AccessesRecorded}).Hash() {
			t.Fatal("hash not a pure function of contents")
		}
	}
}

func TestDetectorEdgeCases(t *testing.T) {
	// Nil detector (race detection off) analyzes to nil.
	var d *Detector
	if d.Analyze() != nil {
		t.Fatal("nil detector returned a report")
	}
	// Empty records are dropped.
	d = New()
	d.Record(Access{Tid: 1, VT: 1, Clock: vc(1)})
	rep := d.Analyze()
	if rep.AccessesRecorded != 0 || len(rep.Races) != 0 {
		t.Fatalf("empty access recorded: %s", rep)
	}
	if rep.String() != "races: 0 (accesses analyzed: 0)\n" {
		t.Fatalf("canonical empty form: %q", rep.String())
	}
}

func TestRangeConversions(t *testing.T) {
	runs := []mem.Run{
		{Addr: 10, Data: []byte{1, 2, 3}},
		{Addr: 100, Data: nil}, // empty runs dropped
		{Addr: 200, Data: []byte{9}},
	}
	got := RangesFromRuns(runs)
	want := []Range{rng(10, 3), rng(200, 1)}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("RangesFromRuns=%v, want %v", got, want)
	}
	exts := []mem.Extent{{Off: 4, Len: 2}, {Off: 100, Len: 8}}
	abs := RangesFromExtents(nil, 3, exts)
	base := mem.PageAddr(3)
	want = []Range{rng(base+4, 2), rng(base+100, 8)}
	if !reflect.DeepEqual(abs, want) {
		t.Fatalf("RangesFromExtents=%v, want %v", abs, want)
	}
	if RangesFromRuns(nil) != nil {
		t.Fatal("nil runs should convert to nil")
	}
}
