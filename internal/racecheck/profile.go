package racecheck

// The relaxation profile: the detect-then-relax half of Options.RaceRelaxed
// (Guo et al.'s architecture — detect races completely once, then relax the
// enforcement mechanism wherever the detection proved it redundant).
//
// A profile run executes the program under race detection and emits the set
// of sync-var addresses that were only ever touched by a single thread,
// stamped with a stability digest (the race report's hash). A replay run
// loads the profile and elides Kendo turn-waits on exactly those addresses;
// the first synchronization that contradicts the profile — a second thread
// touching a profiled address — permanently poisons that address and falls
// back to the seed's full ordering (Stats.RelaxUnsafeFallbacks).
//
// "Stable across runs" is checked by recording at least twice and merging
// with MergeStable: addresses survive only if every recording run agreed
// they were thread-local, and the merge fails loudly if the race reports
// themselves differ (a program whose race report is not reproducible has no
// business being relaxed).

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// profileMagic is the first line of the encoded form; bump the version when
// the format changes.
const profileMagic = "rfdet-relax-profile v1"

// Profile is a relaxation profile: the sync-var addresses a recording run
// observed as thread-local, plus the digest that ties the profile to the
// race behavior it was recorded under.
type Profile struct {
	// Workload names the program the profile was recorded from. Purely
	// descriptive; the runtime does not verify it.
	Workload string
	// ReportHash is the recording run's race-report hash — the stability
	// digest. MergeStable requires it to be identical across recording runs.
	ReportHash uint64
	// Runs counts the recording runs merged into this profile.
	Runs int
	// Local is the sorted list of sync-var addresses observed thread-local:
	// every synchronization operation on the address came from one thread.
	Local []uint64
}

// Profile derives a relaxation profile from this detector's recorded
// synchronization uses and race report. Call after the run completes.
func (d *Detector) Profile(workload string) *Profile {
	if d == nil {
		return nil
	}
	p := &Profile{Workload: workload, ReportHash: d.Analyze().Hash(), Runs: 1}
	d.mu.Lock()
	for addr, u := range d.syncUses {
		if !u.multi {
			p.Local = append(p.Local, addr)
		}
	}
	d.mu.Unlock()
	sort.Slice(p.Local, func(i, j int) bool { return p.Local[i] < p.Local[j] })
	return p
}

// Lookup reports whether addr is in the profile's thread-local set.
func (p *Profile) Lookup(addr uint64) bool {
	if p == nil {
		return false
	}
	i := sort.Search(len(p.Local), func(i int) bool { return p.Local[i] >= addr })
	return i < len(p.Local) && p.Local[i] == addr
}

// MergeStable merges two recording runs' profiles into one, keeping only
// addresses both runs observed thread-local. It fails if the stability
// digests disagree — the program's race behavior was not reproducible, so
// no relaxation is safe to derive from it.
func MergeStable(a, b *Profile) (*Profile, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("racecheck: cannot merge nil profile")
	}
	if a.ReportHash != b.ReportHash {
		return nil, fmt.Errorf("racecheck: unstable race report across recording runs (%#x vs %#x)",
			a.ReportHash, b.ReportHash)
	}
	out := &Profile{Workload: a.Workload, ReportHash: a.ReportHash, Runs: a.Runs + b.Runs}
	i, j := 0, 0
	for i < len(a.Local) && j < len(b.Local) {
		switch {
		case a.Local[i] < b.Local[j]:
			i++
		case a.Local[i] > b.Local[j]:
			j++
		default:
			out.Local = append(out.Local, a.Local[i])
			i++
			j++
		}
	}
	return out, nil
}

// Encode renders the profile in its canonical text form: deterministic,
// diffable, and stable enough to live in CI artifacts.
func (p *Profile) Encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", profileMagic)
	fmt.Fprintf(&b, "workload %s\n", p.Workload)
	fmt.Fprintf(&b, "reporthash %#016x\n", p.ReportHash)
	fmt.Fprintf(&b, "runs %d\n", p.Runs)
	for _, a := range p.Local {
		fmt.Fprintf(&b, "local %#x\n", a)
	}
	return []byte(b.String())
}

// DecodeProfile parses the canonical text form.
func DecodeProfile(r io.Reader) (*Profile, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() || sc.Text() != profileMagic {
		return nil, fmt.Errorf("racecheck: not a relaxation profile (want %q)", profileMagic)
	}
	p := &Profile{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			return nil, fmt.Errorf("racecheck: malformed profile line %q", line)
		}
		switch key {
		case "workload":
			p.Workload = val
		case "reporthash":
			h, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("racecheck: bad reporthash %q: %v", val, err)
			}
			p.ReportHash = h
		case "runs":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("racecheck: bad runs %q: %v", val, err)
			}
			p.Runs = n
		case "local":
			a, err := strconv.ParseUint(val, 0, 64)
			if err != nil {
				return nil, fmt.Errorf("racecheck: bad local addr %q: %v", val, err)
			}
			p.Local = append(p.Local, a)
		default:
			return nil, fmt.Errorf("racecheck: unknown profile key %q", key)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Slice(p.Local, func(i, j int) bool { return p.Local[i] < p.Local[j] })
	return p, nil
}
