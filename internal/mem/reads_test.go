package mem

import (
	"fmt"
	"testing"
)

// extstr renders an extent list compactly for comparison.
func extstr(exts []Extent) string {
	out := ""
	for _, e := range exts {
		out += fmt.Sprintf("[%d+%d)", e.Off, e.Len)
	}
	return out
}

// TestReadTrackingLifecycle covers enable → record → harvest → reset →
// disable: tracking off records nothing and allocates nothing.
func TestReadTrackingLifecycle(t *testing.T) {
	s := NewSpace()
	s.WriteBytes(0, make([]byte, 4*PageSize))

	// Off by default: loads leave no trace and no map.
	s.Load64(8)
	if s.ReadTracking() || s.reads != nil || len(s.ReadPages()) != 0 {
		t.Fatal("tracking state leaked while disabled")
	}

	s.SetReadTracking(true)
	if !s.ReadTracking() {
		t.Fatal("tracking not enabled")
	}
	s.Load64(8)
	s.Load32(PageSize + 100)
	s.Load8(20)
	if got := len(s.ReadPages()); got != 2 {
		t.Fatalf("expected 2 read pages, got %d (%v)", got, s.ReadPages())
	}
	// First-read order, not page order.
	if s.ReadPages()[0] != 0 || s.ReadPages()[1] != 1 {
		t.Fatalf("read order %v", s.ReadPages())
	}
	if got := extstr(s.ReadExtentsOf(0)); got != "[8+8)[20+1)" {
		t.Fatalf("page 0 extents %s", got)
	}
	if got := extstr(s.ReadExtentsOf(1)); got != "[100+4)" {
		t.Fatalf("page 1 extents %s", got)
	}

	s.ResetReads()
	if len(s.ReadPages()) != 0 || s.ReadExtentsOf(0) != nil {
		t.Fatal("reset did not clear read state")
	}
	// Tracking still on after reset.
	s.Load8(5)
	if got := extstr(s.ReadExtentsOf(0)); got != "[5+1)" {
		t.Fatalf("post-reset extents %s", got)
	}

	s.SetReadTracking(false)
	if s.reads != nil || len(s.ReadPages()) != 0 {
		t.Fatal("disable did not discard state")
	}
	s.Load64(8) // must not panic or record
	if s.ReadPages() != nil && len(s.ReadPages()) != 0 {
		t.Fatal("recorded a read while disabled")
	}
}

// TestReadTrackingPrecision checks reads coalesce when adjacent but never
// widen beyond the loaded bytes — the tracker must not degrade to chunk
// granularity the way the dirty tracker may.
func TestReadTrackingPrecision(t *testing.T) {
	s := NewSpace()
	s.WriteBytes(0, make([]byte, 2*PageSize))
	s.SetReadTracking(true)

	// Many scattered one-byte loads: each remains an exact 1-byte extent.
	for i := uint64(0); i < 200; i++ {
		s.Load8(i * 7) // stride 7: never adjacent
	}
	exts := s.ReadExtentsOf(0)
	total := uint32(0)
	for _, e := range exts {
		if e.Len != 1 {
			t.Fatalf("scattered 1-byte load widened to %d bytes at %d", e.Len, e.Off)
		}
		total += e.Len
	}
	if total != 200 {
		t.Fatalf("read byte total %d != 200", total)
	}

	// Sequential loads coalesce into a single extent.
	s.ResetReads()
	for i := uint64(0); i < 64; i++ {
		s.Load64(i * 8)
	}
	if got := extstr(s.ReadExtentsOf(0)); got != "[0+512)" {
		t.Fatalf("sequential loads did not coalesce: %s", got)
	}
}

// TestReadTrackingBulkAndStraddle checks ReadBytes marks exactly the copied
// range on every touched page, including loads straddling a page boundary
// (which delegate to ReadBytes and must not double-mark).
func TestReadTrackingBulkAndStraddle(t *testing.T) {
	s := NewSpace()
	s.WriteBytes(0, make([]byte, 3*PageSize))
	s.SetReadTracking(true)

	buf := make([]byte, PageSize+10)
	s.ReadBytes(PageSize-5, buf)
	if got := extstr(s.ReadExtentsOf(0)); got != fmt.Sprintf("[%d+5)", PageSize-5) {
		t.Fatalf("page 0: %s", got)
	}
	if got := extstr(s.ReadExtentsOf(1)); got != fmt.Sprintf("[0+%d)", PageSize) {
		t.Fatalf("page 1: %s", got)
	}
	if got := extstr(s.ReadExtentsOf(2)); got != "[0+5)" {
		t.Fatalf("page 2: %s", got)
	}

	s.ResetReads()
	s.Load64(PageSize - 3) // straddling load
	if got := extstr(s.ReadExtentsOf(0)); got != fmt.Sprintf("[%d+3)", PageSize-3) {
		t.Fatalf("straddle page 0: %s", got)
	}
	if got := extstr(s.ReadExtentsOf(1)); got != "[0+5)" {
		t.Fatalf("straddle page 1: %s", got)
	}
}

// TestReadTrackingIgnoresPropagation checks slice application and direct
// patch/run application never mark reads: only the owning thread's loads do.
func TestReadTrackingIgnoresPropagation(t *testing.T) {
	s := NewSpace()
	s.WriteBytes(0, make([]byte, PageSize))
	s.SetReadTracking(true)
	s.ApplyRuns([]Run{{Addr: 64, Data: []byte{1, 2, 3}}})
	p := NewPagePatch(0)
	p.AddRun(Run{Addr: 128, Data: []byte{9}})
	s.ApplyPatch(p)
	if len(s.ReadPages()) != 0 {
		t.Fatalf("propagation writes marked reads: %v", s.ReadPages())
	}
}

// TestCloneOrderFree backs Clone's (and Release's) //detvet:orderfree
// annotations: cloning ranges over the page map in randomized order, but the
// clone must always be an exact image of the source, and releasing it must
// leave the source intact.
func TestCloneOrderFree(t *testing.T) {
	src := NewSpace()
	for p := uint64(0); p < 10; p++ {
		data := make([]byte, 32)
		for i := range data {
			data[i] = byte(p*31 + uint64(i))
		}
		src.WriteBytes(p*PageSize+uint64(p), data)
	}
	render := func(s *Space) string {
		out := ""
		buf := make([]byte, PageSize)
		s.Pages(func(id PageID, _ *Page) {
			s.ReadBytes(PageAddr(id), buf)
			out += fmt.Sprintf("%d:%x;", id, buf)
		})
		return out
	}
	want := render(src)
	for rep := 0; rep < 30; rep++ {
		c := src.Clone()
		if got := render(c); got != want {
			t.Fatalf("rep %d: clone image diverged", rep)
		}
		if c.PageCount() != src.PageCount() {
			t.Fatalf("rep %d: page count %d != %d", rep, c.PageCount(), src.PageCount())
		}
		c.Release()
		if got := render(src); got != want {
			t.Fatalf("rep %d: releasing the clone corrupted the source", rep)
		}
	}
}
