package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomMods builds an ordered modification-list sequence with heavy overlap:
// random addresses within a few pages, random lengths, runs that straddle
// page boundaries, and deliberately duplicated addresses so last-writer-wins
// actually matters.
func randomMods(r *rand.Rand, lists, maxRuns int) [][]Run {
	mods := make([][]Run, lists)
	val := byte(1)
	for i := range mods {
		n := r.Intn(maxRuns + 1)
		runs := make([]Run, 0, n)
		for j := 0; j < n; j++ {
			addr := uint64(r.Intn(4 * PageSize))
			length := 1 + r.Intn(300) // up to ~7% of a page, often straddling
			data := make([]byte, length)
			for k := range data {
				data[k] = val
				val++
				if val == 0 {
					val = 1
				}
			}
			runs = append(runs, Run{Addr: addr, Data: data})
		}
		mods[i] = runs
	}
	return mods
}

// TestPlanEquivalentToSequentialApply is the core soundness property: for any
// ordered modification-list sequence, building a plan and applying it once
// leaves memory byte-identical to applying every list in order with
// ApplyRuns. This is what licenses substituting the plan on the acquire path.
func TestPlanEquivalentToSequentialApply(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mods := randomMods(r, 1+r.Intn(8), 12)

		seq := NewSpace()
		for _, runs := range mods {
			seq.ApplyRuns(runs)
		}

		planned := NewSpace()
		plan := BuildPlan(mods)
		planned.ApplyPlan(plan)
		plan.Release()

		ok := seq.Hash() == planned.Hash()
		seq.Release()
		planned.Release()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPlanSharedAcrossSpaces checks immutability under application: the same
// plan applied to several spaces (plan sharing across blocked waiters) gives
// every space the identical final image, and a re-application is idempotent.
func TestPlanSharedAcrossSpaces(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	mods := randomMods(r, 6, 10)
	plan := BuildPlan(mods)
	defer plan.Release()

	var hashes []uint64
	for i := 0; i < 4; i++ {
		s := NewSpace()
		s.ApplyPlan(plan)
		if i == 0 {
			s.ApplyPlan(plan) // idempotent
		}
		hashes = append(hashes, s.Hash())
		s.Release()
	}
	for _, h := range hashes[1:] {
		if h != hashes[0] {
			t.Fatalf("shared plan produced diverging images: %#x vs %#x", hashes[0], h)
		}
	}
}

// TestPlanInvariants checks the structural guarantees the apply paths rely
// on: pages ascend, each page's runs are address-sorted, gap-separated and
// within the page, and the byte accounting is consistent.
func TestPlanInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mods := randomMods(r, 1+r.Intn(6), 10)
		plan := BuildPlan(mods)

		var wantInRuns, wantInBytes uint64
		for _, runs := range mods {
			for _, run := range runs {
				wantInRuns++
				wantInBytes += uint64(len(run.Data))
			}
		}
		if plan.InputRuns != wantInRuns || plan.InputBytes != wantInBytes {
			t.Errorf("seed %d: input accounting %d/%d, want %d/%d",
				seed, plan.InputRuns, plan.InputBytes, wantInRuns, wantInBytes)
			return false
		}
		var unique uint64
		for i, pp := range plan.Patches {
			if i > 0 && plan.Patches[i-1].Page() >= pp.Page() {
				t.Errorf("seed %d: pages not ascending at %d", seed, i)
				return false
			}
			base := PageAddr(pp.Page())
			// Runs() and ForEachRun must agree; both must be address-sorted,
			// in-page and gap-separated (coalescing guarantees a strict gap,
			// not mere disjointness).
			runs := pp.Runs()
			var viaIter []Run
			pp.ForEachRun(func(r Run) { viaIter = append(viaIter, r) })
			if len(viaIter) != len(runs) {
				t.Errorf("seed %d: ForEachRun yields %d runs, Runs %d", seed, len(viaIter), len(runs))
				return false
			}
			for j, run := range runs {
				if len(run.Data) == 0 {
					t.Errorf("seed %d: empty run", seed)
					return false
				}
				if run.Addr < base || run.End() > base+PageSize {
					t.Errorf("seed %d: run escapes page", seed)
					return false
				}
				if j > 0 && runs[j-1].End() >= run.Addr {
					t.Errorf("seed %d: runs not gap-separated", seed)
					return false
				}
				it := viaIter[j]
				if it.Addr != run.Addr || string(it.Data) != string(run.Data) {
					t.Errorf("seed %d: ForEachRun run %d disagrees with Runs", seed, j)
					return false
				}
				unique += uint64(len(run.Data))
			}
		}
		plan.Release()
		if plan.UniqueBytes != unique {
			t.Errorf("seed %d: UniqueBytes %d, runs carry %d", seed, plan.UniqueBytes, unique)
			return false
		}
		if plan.UniqueBytes > plan.InputBytes {
			t.Errorf("seed %d: unique %d > input %d", seed, plan.UniqueBytes, plan.InputBytes)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPagePatchLastWriterWins checks byte-level LWW and that — unlike the
// dirty tracker — a patch stays precise past maxExtentsPerPage fragments.
func TestPagePatchLastWriterWins(t *testing.T) {
	p := NewPagePatch(3)
	defer p.Release()
	base := PageAddr(3)

	// 2*maxExtentsPerPage disjoint single-byte writes at even offsets: a
	// dirtyPage would have degraded to 64-byte chunks long ago.
	for i := 0; i < 2*maxExtentsPerPage; i++ {
		p.AddRun(Run{Addr: base + uint64(4*i), Data: []byte{byte(i + 1)}})
	}
	// Overwrite the first byte: later writers win.
	p.AddRun(Run{Addr: base, Data: []byte{0xAA}})

	if got := p.UniqueBytes(); got != uint64(2*maxExtentsPerPage) {
		t.Fatalf("UniqueBytes = %d, want %d (degraded to superset?)", got, 2*maxExtentsPerPage)
	}
	if p.RawRuns() != uint64(2*maxExtentsPerPage)+1 || p.RawBytes() != uint64(2*maxExtentsPerPage)+1 {
		t.Fatalf("raw accounting = %d runs / %d bytes", p.RawRuns(), p.RawBytes())
	}
	runs := p.Runs()
	if len(runs) != 2*maxExtentsPerPage {
		t.Fatalf("materialized %d runs, want %d precise single-byte runs", len(runs), 2*maxExtentsPerPage)
	}
	if runs[0].Addr != base || runs[0].Data[0] != 0xAA {
		t.Fatalf("first byte = %#x at %#x, want last writer 0xAA at base", runs[0].Data[0], runs[0].Addr)
	}

	s := NewSpace()
	defer s.Release()
	s.ApplyPatch(p)
	if got := s.Load8(base); got != 0xAA {
		t.Fatalf("ApplyPatch: byte 0 = %#x, want 0xAA", got)
	}
	if got := s.Load8(base + 4); got != 2 {
		t.Fatalf("ApplyPatch: byte 4 = %#x, want 2", got)
	}
	if got := s.Load8(base + 1); got != 0 {
		t.Fatalf("ApplyPatch: untouched byte 1 = %#x, want 0", got)
	}
}

// TestSnapshotPooling asserts the snapshot buffers actually recycle: a
// snapshot/release round trip through the pool must not allocate a fresh
// page buffer each time.
func TestSnapshotPooling(t *testing.T) {
	s := NewSpace()
	defer s.Release()
	s.Store8(123, 7) // materialize page 0
	// Warm the pool.
	PutPageBuf(s.Snapshot(0))
	allocs := testing.AllocsPerRun(100, func() {
		PutPageBuf(s.Snapshot(0))
	})
	if allocs >= 1 {
		t.Fatalf("snapshot round trip allocates %.1f objects/op; pooling broken", allocs)
	}
}

// BenchmarkSnapshotPool measures the pooled snapshot round trip; run with
// -benchmem to see the zero-allocation steady state.
func BenchmarkSnapshotPool(b *testing.B) {
	s := NewSpace()
	defer s.Release()
	s.Store8(0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PutPageBuf(s.Snapshot(0))
	}
}

// BenchmarkBuildPlan measures plan construction over an overlapping run list
// (8 writers × full coverage of 2 pages in 256-byte strips).
func BenchmarkBuildPlan(b *testing.B) {
	var mods [][]Run
	for w := 0; w < 8; w++ {
		var runs []Run
		for off := uint64(0); off < 2*PageSize; off += 256 {
			data := make([]byte, 256)
			for k := range data {
				data[k] = byte(w + k)
			}
			runs = append(runs, Run{Addr: off, Data: data})
		}
		mods = append(mods, runs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildPlan(mods).Release()
	}
}
