package mem

// Sub-page dirty-extent tracking.
//
// The paper's implementation detects writes with mprotect/SIGSEGV page
// faults (§4.2–4.3), so the finest granularity it can learn *cheaply* is a
// page: the diff at slice end must byte-scan every snapshotted page to
// recover the modified bytes. Our simulated Space intercepts every monitored
// store, so it can record *exactly* which bytes were written and hand the
// slice-end diff a precise scan list — the Louvre-style observation
// (PAPERS.md) that ordering metadata can live at sub-page granularity.
//
// Each tracked page keeps a coalescing interval list of written ranges and
// degrades to a per-64-byte-chunk bitmap (one uint64 per page) once the list
// fragments past maxExtentsPerPage. Both representations are strict
// *supersets* of the bytes modified since the slice's page snapshot: extents
// record where writes happened, not whether they changed anything, so
// same-value overwrites are included and the §4.6 redundant-write exclusion
// still happens byte-by-byte in the diff itself (DiffPageExtents). The
// superset property is what makes extent-guided diffing exactly equivalent
// to a full-page scan: every byte outside all extents was never written and
// therefore equals the snapshot.
//
// The tracker is reset at every slice end; propagation writes (ApplyRuns)
// are intentionally NOT tracked — they land only between slices, before any
// snapshot of the affected page exists, so the snapshot baseline already
// contains them (§4.3's "must not be monitored as local modifications").

import "sort"

// Extent is a dirty byte range [Off, Off+Len) within one page.
type Extent struct {
	Off uint32
	Len uint32
}

// End returns the first offset past the extent.
func (e Extent) End() uint32 { return e.Off + e.Len }

const (
	// ChunkShift is log2 of the bitmap chunk size.
	ChunkShift = 6
	// ChunkSize is the dirty-bitmap granularity in bytes. PageSize/ChunkSize
	// is exactly 64, so the fallback bitmap is a single uint64 per page.
	ChunkSize = 1 << ChunkShift
	// maxExtentsPerPage is the fragmentation threshold: when coalescing would
	// leave more than this many intervals on one page, the page degrades to
	// the chunk bitmap (O(1) marking, ≤64-byte scan granularity) instead of
	// paying O(extents) insertion on every store.
	maxExtentsPerPage = 16
)

// dirtyPage is one page's dirty state: either a sorted, coalesced interval
// list (precise) or a per-chunk bitmap (compact, after fragmentation).
type dirtyPage struct {
	extents   []Extent
	bitmap    uint64
	bitmapped bool
}

// chunkMask returns the bitmap bits covering [off, off+n).
func chunkMask(off, n uint32) uint64 {
	lo := off >> ChunkShift
	hi := (off + n - 1) >> ChunkShift
	width := hi - lo + 1
	if width >= 64 {
		return ^uint64(0)
	}
	return ((uint64(1) << width) - 1) << lo
}

// mark records the write [off, off+n) on the page.
func (d *dirtyPage) mark(off, n uint32) {
	if n == 0 {
		return
	}
	if d.bitmapped {
		d.bitmap |= chunkMask(off, n)
		return
	}
	d.extents = insertExtent(d.extents, off, n)
	if len(d.extents) > maxExtentsPerPage {
		d.toBitmap()
	}
}

// insertExtent merges [off, off+n) into a sorted, coalesced extent list and
// returns the updated list. Touching intervals merge too, keeping the list
// gap-separated — which is what lets DiffPageExtents treat extent boundaries
// as run boundaries, and what makes a write plan's extents exactly the
// maximal runs of written bytes (plan.go). n must be non-zero.
func insertExtent(exts []Extent, off, n uint32) []Extent {
	end := off + n
	// Fast path: strictly past the last extent. Diff runs and sequential
	// writes arrive in ascending address order, so fragmented pages (which
	// would otherwise pay a per-insert scan of the whole list) append here
	// in O(1).
	if len(exts) == 0 || off > exts[len(exts)-1].End() {
		return append(exts, Extent{Off: off, Len: n})
	}
	// Binary-search the first extent that overlaps or touches [off, end).
	i := sort.Search(len(exts), func(k int) bool { return exts[k].End() >= off })
	j := i
	for j < len(exts) && exts[j].Off <= end {
		j++
	}
	if i == j {
		// No overlap: plain insertion at i.
		exts = append(exts, Extent{})
		copy(exts[i+1:], exts[i:])
		exts[i] = Extent{Off: off, Len: n}
		return exts
	}
	// Merge [i, j) with the new range.
	if exts[i].Off < off {
		off = exts[i].Off
	}
	if e := exts[j-1].End(); e > end {
		end = e
	}
	exts[i] = Extent{Off: off, Len: end - off}
	return append(exts[:i+1], exts[j:]...)
}

// toBitmap converts the interval list into the chunk bitmap.
func (d *dirtyPage) toBitmap() {
	var bm uint64
	for _, e := range d.extents {
		bm |= chunkMask(e.Off, e.Len)
	}
	d.bitmap = bm
	d.bitmapped = true
	d.extents = nil
}

// snapshotExtents renders the page's dirty set as a sorted, coalesced,
// gap-separated extent list. In bitmap mode, runs of consecutive set chunks
// coalesce into single extents.
func (d *dirtyPage) snapshotExtents() []Extent {
	if !d.bitmapped {
		return d.extents
	}
	var out []Extent
	bm := d.bitmap
	for c := uint32(0); c < PageSize/ChunkSize; c++ {
		if bm&(1<<c) == 0 {
			continue
		}
		start := c
		for c+1 < PageSize/ChunkSize && bm&(1<<(c+1)) != 0 {
			c++
		}
		out = append(out, Extent{Off: start * ChunkSize, Len: (c - start + 1) * ChunkSize})
	}
	return out
}

// ExtentBytes returns the total byte length of exts.
func ExtentBytes(exts []Extent) uint64 {
	var n uint64
	for _, e := range exts {
		n += uint64(e.Len)
	}
	return n
}

//
// Space-level tracking.
//

// SetDirtyTracking enables or disables sub-page dirty tracking on this
// space. Disabling also discards any recorded state. The RFDet monitors
// enable tracking when a thread starts monitoring modifications; baselines
// that diff full pages (DThreads) leave it off and pay the full-page scan.
func (s *Space) SetDirtyTracking(on bool) {
	s.trackDirty = on
	if !on {
		s.ResetDirty()
	} else if s.dirty == nil {
		s.dirty = make(map[PageID]*dirtyPage)
	}
}

// DirtyTracking reports whether sub-page dirty tracking is enabled.
func (s *Space) DirtyTracking() bool { return s.trackDirty }

// ResetDirty discards all recorded dirty extents (slice end).
func (s *Space) ResetDirty() {
	for id := range s.dirty {
		delete(s.dirty, id)
	}
	s.dirtyOrder = s.dirtyOrder[:0]
	s.lastDirtyID, s.lastDirty = 0, nil
}

// DirtyPageCount returns the number of pages with recorded dirty extents.
func (s *Space) DirtyPageCount() int { return len(s.dirty) }

// DirtyPages returns the dirty pages in first-write order — the same order
// in which the monitor snapshotted them, since the snapshot is taken on the
// first write of a page in a slice and the mark lands with that write. The
// returned slice aliases internal state; do not retain it across ResetDirty.
func (s *Space) DirtyPages() []PageID { return s.dirtyOrder }

// DirtyExtentsOf returns page id's dirty extents as a sorted, coalesced,
// gap-separated list, or nil if the page has no recorded writes (or
// tracking is off). The returned extents are a superset of the bytes
// modified since the page's snapshot; see DiffPageExtents.
func (s *Space) DirtyExtentsOf(id PageID) []Extent {
	d, ok := s.dirty[id]
	if !ok {
		return nil
	}
	return d.snapshotExtents()
}

// markDirty records a write of n bytes at page-local offset off. The
// single-entry cache makes tight loops over one page skip the map lookup.
func (s *Space) markDirty(id PageID, off, n uint32) {
	d := s.lastDirty
	if d == nil || s.lastDirtyID != id {
		var ok bool
		d, ok = s.dirty[id]
		if !ok {
			d = &dirtyPage{}
			s.dirty[id] = d
			s.dirtyOrder = append(s.dirtyOrder, id)
		}
		s.lastDirtyID, s.lastDirty = id, d
	}
	d.mark(off, n)
}
