package mem

// Per-slice read-set tracking for the happens-before race detector
// (internal/racecheck).
//
// Mirrors the dirty-write tracker (dirty.go) with one deliberate difference:
// read pages never degrade to the chunk bitmap. Dirty extents may safely be a
// superset of the written bytes because the slice-end diff rechecks every
// byte, but read extents feed conflict detection directly — coarsening a read
// to a 64-byte chunk would manufacture overlaps with writes the program never
// observed, i.e. false races on race-free programs. Reads therefore keep the
// precise coalescing interval list no matter how fragmented it gets; the
// insertExtent fast path keeps sequential scans O(1) per read.
//
// Like dirty tracking, propagation writes and slice application are invisible
// here: only loads issued by the owning thread through the checked access
// path mark read extents. The tracker is harvested and reset at every slice
// end.

// readSet is one page's read set: a sorted, coalesced interval list.
type readSet struct {
	extents []Extent
}

// SetReadTracking enables or disables per-slice read-set tracking. Disabling
// also discards any recorded state. Only the race detector turns this on;
// the default path never allocates the map.
func (s *Space) SetReadTracking(on bool) {
	s.trackReads = on
	if !on {
		s.ResetReads()
		s.reads = nil
	} else if s.reads == nil {
		s.reads = make(map[PageID]*readSet)
	}
}

// ReadTracking reports whether read-set tracking is enabled.
func (s *Space) ReadTracking() bool { return s.trackReads }

// ResetReads discards all recorded read extents (slice end).
func (s *Space) ResetReads() {
	for id := range s.reads {
		delete(s.reads, id)
	}
	s.readOrder = s.readOrder[:0]
	s.lastReadID, s.lastRead = 0, nil
}

// ReadPages returns pages with recorded reads in first-read order. The
// returned slice aliases internal state; do not retain it across ResetReads.
func (s *Space) ReadPages() []PageID { return s.readOrder }

// ReadExtentsOf returns page id's read extents as a sorted, coalesced,
// gap-separated list, or nil if the page has no recorded reads. Unlike dirty
// extents these are exact: every byte in the list was loaded by the owning
// thread during the current slice, and no byte outside it was.
func (s *Space) ReadExtentsOf(id PageID) []Extent {
	r, ok := s.reads[id]
	if !ok {
		return nil
	}
	return r.extents
}

// markRead records a load of n bytes at page-local offset off. The
// single-entry cache makes tight loops over one page skip the map lookup.
func (s *Space) markRead(id PageID, off, n uint32) {
	if n == 0 {
		return
	}
	r := s.lastRead
	if r == nil || s.lastReadID != id {
		var ok bool
		r, ok = s.reads[id]
		if !ok {
			r = &readSet{}
			s.reads[id] = r
			s.readOrder = append(s.readOrder, id)
		}
		s.lastReadID, s.lastRead = id, r
	}
	r.extents = insertExtent(r.extents, off, n)
}
