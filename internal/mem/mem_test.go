package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	s := NewSpace()
	s.Store8(100, 0xab)
	if got := s.Load8(100); got != 0xab {
		t.Fatalf("Load8 = %#x", got)
	}
	s.Store32(200, 0xdeadbeef)
	if got := s.Load32(200); got != 0xdeadbeef {
		t.Fatalf("Load32 = %#x", got)
	}
	s.Store64(300, 0x0123456789abcdef)
	if got := s.Load64(300); got != 0x0123456789abcdef {
		t.Fatalf("Load64 = %#x", got)
	}
}

func TestUnmappedReadsAsZero(t *testing.T) {
	s := NewSpace()
	if s.Load64(1<<40) != 0 || s.Load8(0) != 0 {
		t.Fatal("unmapped memory must read as zero")
	}
	if s.PageCount() != 0 {
		t.Fatal("reads must not materialize pages")
	}
}

func TestCrossPageAccesses(t *testing.T) {
	s := NewSpace()
	a := uint64(PageSize - 3) // straddles the first page boundary
	s.Store64(a, 0x1122334455667788)
	if got := s.Load64(a); got != 0x1122334455667788 {
		t.Fatalf("cross-page Load64 = %#x", got)
	}
	s.Store32(uint64(2*PageSize-2), 0xcafebabe)
	if got := s.Load32(uint64(2*PageSize - 2)); got != 0xcafebabe {
		t.Fatalf("cross-page Load32 = %#x", got)
	}
	data := make([]byte, 3*PageSize)
	for i := range data {
		data[i] = byte(i * 7)
	}
	s.WriteBytes(uint64(PageSize/2), data)
	buf := make([]byte, len(data))
	s.ReadBytes(uint64(PageSize/2), buf)
	if !bytes.Equal(buf, data) {
		t.Fatal("multi-page ReadBytes/WriteBytes mismatch")
	}
}

func TestCloneCopyOnWrite(t *testing.T) {
	parent := NewSpace()
	parent.Store64(64, 42)
	child := parent.Clone()
	if child.Load64(64) != 42 {
		t.Fatal("child must inherit parent memory")
	}
	// Child writes stay private.
	child.Store64(64, 99)
	if parent.Load64(64) != 42 {
		t.Fatal("child write leaked into parent")
	}
	// Parent writes after the clone stay private too.
	parent.Store64(72, 7)
	if child.Load64(72) != 0 {
		t.Fatal("parent write leaked into child")
	}
	if child.Load64(64) != 99 {
		t.Fatal("child lost its own write")
	}
}

func TestCloneSharingIsAccounted(t *testing.T) {
	parent := NewSpace()
	for i := 0; i < 10; i++ {
		parent.Store8(uint64(i*PageSize), 1)
	}
	child := parent.Clone()
	if child.PrivateBytes() != 0 {
		t.Fatalf("fresh clone should share everything; private = %d", child.PrivateBytes())
	}
	child.Store8(0, 2)
	if child.PrivateBytes() != PageSize {
		t.Fatalf("after one COW, private = %d, want %d", child.PrivateBytes(), PageSize)
	}
	child.Release()
	if parent.PrivateBytes() != uint64(parent.PageCount())*PageSize {
		t.Fatal("after child release, parent should own all pages exclusively")
	}
}

func TestDiffPageProperties(t *testing.T) {
	// Property: applying DiffPage(snapshot, current) runs onto the snapshot
	// reproduces current, and redundant (identical) bytes never appear.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		snap := make([]byte, PageSize)
		cur := make([]byte, PageSize)
		r.Read(snap)
		copy(cur, snap)
		// Mutate a few random ranges; some with identical values
		// (redundant writes).
		for k := 0; k < r.Intn(8); k++ {
			off := r.Intn(PageSize)
			n := r.Intn(64)
			for i := off; i < off+n && i < PageSize; i++ {
				if r.Intn(3) == 0 {
					cur[i] = snap[i] // redundant
				} else {
					cur[i] = byte(r.Int())
				}
			}
		}
		runs := DiffPage(7, snap, cur)
		rebuilt := make([]byte, PageSize)
		copy(rebuilt, snap)
		base := PageAddr(7)
		for _, run := range runs {
			if run.Addr < base || run.End() > base+PageSize {
				return false
			}
			copy(rebuilt[run.Addr-base:], run.Data)
			// No redundant bytes inside any run.
			for i, b := range run.Data {
				if snap[run.Addr-base+uint64(i)] == b {
					return false
				}
			}
		}
		return bytes.Equal(rebuilt, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDiffPageTruncatedSnapshot pins the contract documented on DiffPage:
// only the common prefix of snapshot and current is compared, so a snapshot
// shorter than the page silently contributes no runs for the tail — even
// when the tail's current bytes are nonzero.
func TestDiffPageTruncatedSnapshot(t *testing.T) {
	cur := make([]byte, PageSize)
	for i := range cur {
		cur[i] = byte(i) | 1 // nonzero everywhere
	}
	snap := []byte{0, 0, 0, 0}
	runs := DiffPage(3, snap, cur)
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want exactly 1 (the prefix)", len(runs))
	}
	base := PageAddr(3)
	if runs[0].Addr != base || len(runs[0].Data) != len(snap) {
		t.Fatalf("run %+v: want addr %#x, len %d — tail beyond the snapshot must be ignored",
			runs[0], base, len(snap))
	}
	// Zero-length snapshot: nothing to compare, no runs at all.
	if runs := DiffPage(3, nil, cur); len(runs) != 0 {
		t.Fatalf("nil snapshot produced %d runs", len(runs))
	}
	// The symmetric case — current shorter than snapshot — likewise clamps.
	if runs := DiffPage(3, cur, []byte{1}); len(runs) != 0 {
		t.Fatalf("short current: got %v, want no runs (cur[0]==snap[0])", runs)
	}
}

func TestDiffPageEmptyOnIdentical(t *testing.T) {
	snap := make([]byte, PageSize)
	cur := make([]byte, PageSize)
	for i := range snap {
		snap[i] = byte(i)
		cur[i] = byte(i)
	}
	if runs := DiffPage(0, snap, cur); len(runs) != 0 {
		t.Fatalf("identical pages diffed to %d runs", len(runs))
	}
}

func TestApplyRunsOrderMatters(t *testing.T) {
	s := NewSpace()
	runs := []Run{
		{Addr: 10, Data: []byte{1, 1, 1}},
		{Addr: 11, Data: []byte{2}}, // later run overwrites ("remote wins")
	}
	s.ApplyRuns(runs)
	if s.Load8(10) != 1 || s.Load8(11) != 2 || s.Load8(12) != 1 {
		t.Fatalf("ApplyRuns order broken: %d %d %d", s.Load8(10), s.Load8(11), s.Load8(12))
	}
}

func TestSplitRunsByPage(t *testing.T) {
	r := Run{Addr: PageSize - 2, Data: []byte{1, 2, 3, 4}}
	byPage := SplitRunsByPage([]Run{r})
	if len(byPage) != 2 {
		t.Fatalf("expected 2 pages, got %d", len(byPage))
	}
	p0 := byPage[0]
	p1 := byPage[1]
	if len(p0) != 1 || len(p0[0].Data) != 2 || p0[0].Addr != PageSize-2 {
		t.Fatalf("page 0 split wrong: %+v", p0)
	}
	if len(p1) != 1 || len(p1[0].Data) != 2 || p1[0].Addr != PageSize {
		t.Fatalf("page 1 split wrong: %+v", p1)
	}
}

func TestProtectionFaults(t *testing.T) {
	s := NewSpace()
	s.Store8(0, 1)          // page 0 resident
	s.Store8(5*PageSize, 1) // page 5 resident
	var faults []struct {
		pid   PageID
		write bool
	}
	s.SetFaultHandler(func(pid PageID, write bool) {
		faults = append(faults, struct {
			pid   PageID
			write bool
		}{pid, write})
		s.Protect(pid, ProtRW)
	})
	n := s.ProtectAll(ProtRead)
	if n != 2 {
		t.Fatalf("ProtectAll returned %d resident pages, want 2", n)
	}
	// Reads do not fault under write protection.
	_ = s.Load8(0)
	if len(faults) != 0 {
		t.Fatal("read faulted under ProtRead")
	}
	// First write faults once, then the page is open.
	s.Store8(1, 2)
	s.Store8(2, 3)
	if len(faults) != 1 || faults[0].pid != 0 || !faults[0].write {
		t.Fatalf("unexpected faults: %+v", faults)
	}
	// A store to a page that is not resident yet must fault too: the
	// whole-mapping protection covers pages to be materialized.
	s.Store8(9*PageSize, 1)
	if len(faults) != 2 || faults[1].pid != 9 {
		t.Fatalf("fresh-page store did not fault: %+v", faults)
	}
	// ProtNone faults on reads as well.
	s.Protect(0, ProtNone)
	_ = s.Load8(0)
	if len(faults) != 3 || faults[2].write {
		t.Fatalf("ProtNone read did not fault: %+v", faults)
	}
}

func TestClearProtections(t *testing.T) {
	s := NewSpace()
	s.Store8(0, 1)
	faults := 0
	s.SetFaultHandler(func(pid PageID, write bool) {
		faults++
		s.Protect(pid, ProtRW)
	})
	s.ProtectAll(ProtRead)
	s.ClearProtections()
	s.Store8(1, 2)
	if faults != 0 {
		t.Fatal("store faulted after ClearProtections")
	}
	if s.ProtectionOf(0) != ProtRW {
		t.Fatal("ProtectionOf should be ProtRW after clear")
	}
}

func TestHashDeterministicAndSensitive(t *testing.T) {
	build := func(vals map[uint64]byte) *Space {
		s := NewSpace()
		for a, v := range vals {
			s.Store8(a, v)
		}
		return s
	}
	a := build(map[uint64]byte{0: 1, 5000: 2})
	b := build(map[uint64]byte{0: 1, 5000: 2})
	if a.Hash() != b.Hash() {
		t.Fatal("equal contents must hash equal")
	}
	c := build(map[uint64]byte{0: 1, 5000: 3})
	if a.Hash() == c.Hash() {
		t.Fatal("different contents should hash differently")
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	s := NewSpace()
	s.Store8(10, 1)
	snap := s.Snapshot(0)
	s.Store8(10, 2)
	if snap[10] != 1 {
		t.Fatal("snapshot must not alias the live page")
	}
}

func TestRunBytes(t *testing.T) {
	runs := []Run{{Addr: 0, Data: make([]byte, 3)}, {Addr: 10, Data: make([]byte, 5)}}
	if RunBytes(runs) != 8 {
		t.Fatalf("RunBytes = %d", RunBytes(runs))
	}
}
