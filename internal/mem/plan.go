package mem

// Coalesced write plans (propagation fast path).
//
// Memory modification propagation applies an ordered list of slices to a
// target space "remote wins"-style: every slice's runs are written in list
// order, so a byte covered by k slices is written k times even though only
// the last write survives (§4.3's deterministic conflict policy). The
// acquire path therefore costs O(slices × bytes). A WritePlan collapses the
// list into its observable effect — for every destination byte, the value of
// the *last* run in list order that covers it — so applying the plan writes
// each unique byte exactly once: O(unique bytes).
//
// The collapse is a pure function of the run list, so a plan built once can
// be applied to any number of spaces (plan sharing across blocked waiters)
// and is exactly equivalent to sequential list-order application: both leave
// every covered byte at its last writer's value and touch no other byte, and
// no one can observe the intermediate states (the applying thread is between
// slices, or provably blocked under the monitor).
//
// Plans are built with the same interval-coalescing machinery as the
// sub-page dirty tracker (insertExtent, dirty.go) — but, unlike dirtyPage,
// a PagePatch never degrades to the chunk bitmap: a plan's extents must be
// *exactly* the written bytes, never a superset, because the staging buffer
// holds garbage outside them.

import (
	"sort"
	"sync"
	"sync/atomic"
)

// pageBufPool recycles page-sized staging buffers: plan construction, lazy
// pending patches and page snapshots each need a scratch 4 KiB buffer per
// touched page, and allocating one per first-touch per slice is measurable
// on snapshot-heavy workloads. It is the page-granular sibling of the
// slicestore's arena chunk pool: both recycle fixed-size payload buffers
// with a poison-on-free test hook, but staging buffers have per-buffer
// lifetimes (Release at patch teardown) rather than per-segment ones, so a
// per-P sync.Pool fits them where a bump arena would not.
var (
	pageBufPool   = sync.Pool{New: func() any { pageBufNews.Add(1); return new([PageSize]byte) }}
	pageBufGets   atomic.Uint64
	pageBufNews   atomic.Uint64
	pageBufPoison atomic.Bool
)

// GetPageBuf returns a page-sized buffer from the pool. Its contents are
// unspecified; callers must not read bytes they have not written.
func GetPageBuf() []byte {
	pageBufGets.Add(1)
	return pageBufPool.Get().(*[PageSize]byte)[:]
}

// PutPageBuf returns a buffer obtained from GetPageBuf (or Space.Snapshot)
// to the pool. The caller must not retain the buffer afterwards. Buffers of
// any other length are dropped on the floor. With poisoning enabled
// (SetPageBufPoison, tests only) the buffer is overwritten first, so a
// retained alias reads garbage loudly instead of a stale snapshot.
func PutPageBuf(b []byte) {
	if len(b) != PageSize {
		return
	}
	if pageBufPoison.Load() {
		for i := range b {
			b[i] = 0xDB
		}
	}
	pageBufPool.Put((*[PageSize]byte)(b))
}

// SetPageBufPoison toggles poison-on-free for the staging-buffer pool (test
// hook; off by default).
func SetPageBufPoison(on bool) { pageBufPoison.Store(on) }

// PageBufStats returns (total gets, fresh allocations) of the staging-buffer
// pool; gets minus news is the number of reuses. Counters are global and
// monotone — benchmark deltas, not per-run gauges.
func PageBufStats() (gets, news uint64) { return pageBufGets.Load(), pageBufNews.Load() }

// PagePatch accumulates last-writer-wins writes to a single page: later
// AddRun calls overwrite earlier ones byte-for-byte, and the extent list
// records exactly which bytes have been written. It backs both plan
// construction and the lazy-writes pending state (a hot page absorbs any
// number of propagated updates and flushes in one pass).
type PagePatch struct {
	page PageID
	buf  []byte // pooled staging buffer; valid only inside exts
	// exts is sorted, coalesced, gap-separated and — unlike the dirty
	// tracker — always precise: exactly the written bytes.
	exts []Extent
	// rawRuns/rawBytes count the absorbed input, before deduplication.
	rawRuns  uint64
	rawBytes uint64
}

// NewPagePatch returns an empty patch for page id, holding a pooled buffer;
// call Release when done with it.
func NewPagePatch(id PageID) *PagePatch {
	return &PagePatch{page: id, buf: GetPageBuf()}
}

// Page returns the page the patch targets.
func (p *PagePatch) Page() PageID { return p.page }

// AddRun absorbs a run, which must lie entirely within the patch's page.
// Later runs overwrite earlier ones on overlapping bytes.
func (p *PagePatch) AddRun(r Run) {
	if len(r.Data) == 0 {
		return
	}
	off := uint32(r.Addr & PageMask)
	copy(p.buf[off:], r.Data)
	p.exts = insertExtent(p.exts, off, uint32(len(r.Data)))
	p.rawRuns++
	p.rawBytes += uint64(len(r.Data))
}

// UniqueBytes returns the number of distinct bytes written so far.
func (p *PagePatch) UniqueBytes() uint64 { return ExtentBytes(p.exts) }

// RawRuns returns the number of runs absorbed.
func (p *PagePatch) RawRuns() uint64 { return p.rawRuns }

// RawBytes returns the total input bytes absorbed, counting overwrites.
func (p *PagePatch) RawBytes() uint64 { return p.rawBytes }

// Runs materializes the patch as freshly allocated, address-sorted,
// gap-separated, mutually disjoint runs. The result does not alias the
// pooled buffer and stays valid after Release.
func (p *PagePatch) Runs() []Run {
	if len(p.exts) == 0 {
		return nil
	}
	base := PageAddr(p.page)
	// One backing array for all runs: fragmented pages (thousands of tiny
	// extents) would otherwise cost one allocation per extent.
	backing := make([]byte, ExtentBytes(p.exts))
	runs := make([]Run, 0, len(p.exts))
	for _, e := range p.exts {
		data := backing[:e.Len:e.Len]
		backing = backing[e.Len:]
		copy(data, p.buf[e.Off:e.End()])
		runs = append(runs, Run{Addr: base + uint64(e.Off), Data: data})
	}
	return runs
}

// Release returns the staging buffer to the pool. The patch must not be
// used afterwards.
func (p *PagePatch) Release() {
	PutPageBuf(p.buf)
	p.buf = nil
	p.exts = nil
}

// ForEachRun calls fn with each of the patch's runs in address order. The
// run data aliases the staging buffer and stays valid only until Release;
// fn must copy anything it keeps.
func (p *PagePatch) ForEachRun(fn func(Run)) {
	base := PageAddr(p.page)
	for _, e := range p.exts {
		fn(Run{Addr: base + uint64(e.Off), Data: p.buf[e.Off:e.End():e.End()]})
	}
}

// ApplyPatch writes the patch's unique bytes into the space in a single
// pass, bypassing protection faults exactly like ApplyRuns (the writes are
// propagated remote modifications, §4.3).
func (s *Space) ApplyPatch(p *PagePatch) {
	ApplyPatchData(s.writablePage(p.page).Data[:], p)
}

// RunBounds returns the bounding address range [lo, hi) of a modification
// list — the cheap precheck race-aware propagation elision runs before the
// per-peer range merge scan. ok is false when the list has no bytes.
func RunBounds(runs []Run) (lo, hi uint64, ok bool) {
	for _, r := range runs {
		if len(r.Data) == 0 {
			continue
		}
		if !ok || r.Addr < lo {
			lo = r.Addr
		}
		if end := r.Addr + uint64(len(r.Data)); !ok || end > hi {
			hi = end
		}
		ok = true
	}
	return lo, hi, ok
}

// WritePlan is the collapsed form of an ordered modification-list sequence.
// It holds the per-page last-writer-wins images directly in the patches'
// pooled staging buffers — applying a plan copies each unique byte straight
// from the staging buffer into the target page, with no intermediate
// materialization. Once built a plan is read-only and safe to apply to any
// number of spaces from any goroutine (applications to distinct spaces never
// share state); call Release when no application can still be in flight.
type WritePlan struct {
	// Patches holds the per-page images in ascending PageID order. Their
	// extents are mutually disjoint, so application order is irrelevant.
	Patches []*PagePatch
	// InputRuns/InputBytes describe the uncoalesced input.
	InputRuns  uint64
	InputBytes uint64
	// UniqueBytes is the number of distinct destination bytes the plan
	// writes; InputBytes - UniqueBytes were coalesced away.
	UniqueBytes uint64
}

// BuildPlan collapses ordered modification lists (the Mods of an ordered
// slice list, §4.3) into a per-page last-writer-wins plan. Runs straddling
// page boundaries are split, exactly as SplitRunsByPage splits them.
func BuildPlan(mods [][]Run) *WritePlan {
	plan := &WritePlan{}
	patches := make(map[PageID]*PagePatch)
	// Consecutive runs overwhelmingly hit the same page (slice-end diffing
	// emits them in address order), so a one-entry cache in front of the map
	// removes a lookup per run.
	var lastID PageID
	var last *PagePatch
	for _, runs := range mods {
		for _, r := range runs {
			plan.InputRuns++
			plan.InputBytes += uint64(len(r.Data))
			a, data := r.Addr, r.Data
			for len(data) > 0 {
				id := PageOf(a)
				room := PageSize - int(a&PageMask)
				n := len(data)
				if n > room {
					n = room
				}
				p := last
				if p == nil || id != lastID {
					p = patches[id]
					if p == nil {
						p = NewPagePatch(id)
						patches[id] = p
					}
					lastID, last = id, p
				}
				p.AddRun(Run{Addr: a, Data: data[:n:n]})
				a += uint64(n)
				data = data[n:]
			}
		}
	}
	plan.Patches = make([]*PagePatch, 0, len(patches))
	//detvet:orderfree Patches are sorted by page right below; UniqueBytes is a commutative sum.
	for _, p := range patches {
		plan.Patches = append(plan.Patches, p)
		plan.UniqueBytes += p.UniqueBytes()
	}
	sort.Slice(plan.Patches, func(i, j int) bool {
		return plan.Patches[i].page < plan.Patches[j].page
	})
	return plan
}

// Release returns every patch's staging buffer to the pool. The plan must
// not be applied afterwards. Callers that share a plan across waiters call
// this once, after the last application.
func (p *WritePlan) Release() {
	for _, pp := range p.Patches {
		pp.Release()
	}
	p.Patches = nil
}

// ApplyPlan writes the plan into the space, each destination byte exactly
// once, straight from the staging buffers. Like ApplyRuns it bypasses
// protection faults: plans carry propagated remote modifications, which must
// not be monitored as local ones (§4.3).
func (s *Space) ApplyPlan(p *WritePlan) {
	for _, pp := range p.Patches {
		s.ApplyPatch(pp)
	}
}

// ApplyPatchData copies a patch's unique bytes into page data that the
// caller has already resolved for writing. Split out from Space.ApplyPatch
// so callers can resolve the writable pages first (the page table is
// single-threaded) and fan the disjoint copies out to a worker pool.
func ApplyPatchData(data []byte, p *PagePatch) {
	for _, e := range p.exts {
		copy(data[e.Off:e.End()], p.buf[e.Off:e.End()])
	}
}

// WritablePageData resolves page id for in-place writing — performing the
// copy-on-write if needed — and returns the live page data. Intended for
// plan application only: writes through it bypass both protection faults and
// dirty tracking, exactly like ApplyRuns.
func (s *Space) WritablePageData(id PageID) []byte {
	return s.writablePage(id).Data[:]
}
