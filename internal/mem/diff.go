package mem

// Run is a maximal run of modified bytes: the value Data was written starting
// at address Addr. Runs are the byte-granularity <addr, data> modification
// pairs of §4.2, batched into contiguous spans for efficiency. Byte
// granularity is required for correctness under the C++ memory model (§4.6);
// the batching does not change semantics because a run is exactly a sequence
// of adjacent single-byte modifications.
type Run struct {
	Addr uint64
	Data []byte
}

// End returns the first address past the run.
func (r Run) End() uint64 { return r.Addr + uint64(len(r.Data)) }

// DiffPage compares a page snapshot against the page's current contents and
// returns the modification runs (the page-diffing step at slice end, §4.2).
// Bytes whose final value equals the snapshot value are excluded — including
// bytes that were overwritten with the same value — which is what implements
// the deterministic "prefer local writes when the remote write is redundant"
// conflict policy discussed in §4.6.
//
// Only the common prefix of snapshot and current is compared: when the
// snapshot is shorter than the page, the tail beyond len(snapshot) has no
// baseline to diff against and is deliberately ignored (it contributes no
// runs). Snapshots taken by Space.Snapshot are always full pages, so the
// truncated case arises only for callers that snapshot partial pages.
func DiffPage(pageID PageID, snapshot, current []byte) []Run {
	base := PageAddr(pageID)
	var runs []Run
	i := 0
	n := len(current)
	if len(snapshot) < n {
		n = len(snapshot)
	}
	for i < n {
		if snapshot[i] == current[i] {
			i++
			continue
		}
		j := i + 1
		for j < n && snapshot[j] != current[j] {
			j++
		}
		data := make([]byte, j-i)
		copy(data, current[i:j])
		runs = append(runs, Run{Addr: base + uint64(i), Data: data})
		i = j
	}
	return runs
}

// DiffPageExtents is DiffPage restricted to the page's dirty extents: only
// the bytes inside exts are compared against the snapshot, making the diff
// O(written bytes) instead of O(page size). It produces *byte-for-byte
// identical* runs to DiffPage provided exts is a sorted, coalesced,
// gap-separated superset of the bytes modified since the snapshot (the
// invariant Space's dirty tracking maintains):
//
//   - every byte outside all extents was never written, so it equals the
//     snapshot and would not start or extend a run in DiffPage either;
//   - coalescing leaves at least one clean byte between extents, so no
//     maximal run of differing bytes can cross an extent boundary;
//   - the byte-by-byte comparison inside each extent excludes same-value
//     overwrites exactly as DiffPage does, preserving the §4.6 "prefer
//     local when the remote write is redundant" policy.
//
// Like DiffPage, only the common prefix of snapshot and current is
// compared: extents are clamped to min(len(snapshot), len(current)).
func DiffPageExtents(pageID PageID, snapshot, current []byte, exts []Extent) []Run {
	base := PageAddr(pageID)
	n := len(current)
	if len(snapshot) < n {
		n = len(snapshot)
	}
	var runs []Run
	for _, e := range exts {
		i := int(e.Off)
		end := int(e.End())
		if end > n {
			end = n
		}
		for i < end {
			if snapshot[i] == current[i] {
				i++
				continue
			}
			j := i + 1
			for j < end && snapshot[j] != current[j] {
				j++
			}
			data := make([]byte, j-i)
			copy(data, current[i:j])
			runs = append(runs, Run{Addr: base + uint64(i), Data: data})
			i = j
		}
	}
	return runs
}

// RunBytes returns the total number of modified bytes across runs.
func RunBytes(runs []Run) uint64 {
	var n uint64
	for _, r := range runs {
		n += uint64(len(r.Data))
	}
	return n
}

// ApplyRuns writes the modification runs into the space, bypassing
// protection faults: propagation applies remote modifications between
// slices, so the writes must not be monitored as local modifications
// (§4.3). In-order application makes later runs overwrite earlier ones,
// implementing the deterministic "remote modifications overwrite local
// modifications" conflict policy.
func (s *Space) ApplyRuns(runs []Run) {
	for _, r := range runs {
		s.applyRun(r)
	}
}

func (s *Space) applyRun(r Run) {
	a := r.Addr
	data := r.Data
	for len(data) > 0 {
		id := PageOf(a)
		off := a & PageMask
		n := copy(s.writablePage(id).Data[off:], data)
		data = data[n:]
		a += uint64(n)
	}
}

// SplitRunsByPage groups runs by the page they touch, splitting runs that
// straddle page boundaries. Used by the lazy-writes optimization, which pends
// modifications per page (§4.5).
func SplitRunsByPage(runs []Run) map[PageID][]Run {
	out := make(map[PageID][]Run)
	for _, r := range runs {
		a := r.Addr
		data := r.Data
		for len(data) > 0 {
			id := PageOf(a)
			room := PageSize - int(a&PageMask)
			n := len(data)
			if n > room {
				n = room
			}
			out[id] = append(out[id], Run{Addr: a, Data: data[:n:n]})
			a += uint64(n)
			data = data[n:]
		}
	}
	return out
}
