package mem

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// extentsWellFormed checks the invariant DirtyExtentsOf promises: sorted,
// coalesced, gap-separated (adjacent extents are separated by at least one
// byte), within the page, non-empty.
func extentsWellFormed(exts []Extent) error {
	prevEnd := int64(-2)
	for i, e := range exts {
		if e.Len == 0 {
			return fmt.Errorf("extent %d is empty", i)
		}
		if uint64(e.End()) > PageSize {
			return fmt.Errorf("extent %d = %+v exceeds the page", i, e)
		}
		if int64(e.Off) <= prevEnd {
			return fmt.Errorf("extent %d = %+v overlaps or touches its predecessor", i, e)
		}
		prevEnd = int64(e.End())
	}
	return nil
}

func TestExtentMarkCoalesce(t *testing.T) {
	var d dirtyPage
	d.mark(100, 10) // [100,110)
	d.mark(200, 10) // disjoint after
	d.mark(50, 10)  // disjoint before
	if want := []Extent{{50, 10}, {100, 10}, {200, 10}}; !extentsEqual(d.extents, want) {
		t.Fatalf("disjoint marks = %+v, want %+v", d.extents, want)
	}
	d.mark(110, 5) // touches [100,110) → merges
	if want := []Extent{{50, 10}, {100, 15}, {200, 10}}; !extentsEqual(d.extents, want) {
		t.Fatalf("touching mark = %+v, want %+v", d.extents, want)
	}
	d.mark(55, 50) // spans the gap between the first two → one extent
	if want := []Extent{{50, 65}, {200, 10}}; !extentsEqual(d.extents, want) {
		t.Fatalf("spanning mark = %+v, want %+v", d.extents, want)
	}
	d.mark(60, 3) // fully contained: no change
	if want := []Extent{{50, 65}, {200, 10}}; !extentsEqual(d.extents, want) {
		t.Fatalf("contained mark = %+v, want %+v", d.extents, want)
	}
	d.mark(0, PageSize) // whole page swallows everything
	if want := []Extent{{0, PageSize}}; !extentsEqual(d.extents, want) {
		t.Fatalf("whole-page mark = %+v, want %+v", d.extents, want)
	}
}

func extentsEqual(a, b []Extent) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestExtentBitmapConversion(t *testing.T) {
	var d dirtyPage
	// More than maxExtentsPerPage disjoint single-byte writes, two per
	// 128-byte stride, force the bitmap.
	for i := 0; i <= maxExtentsPerPage; i++ {
		d.mark(uint32(i*128), 1)
	}
	if !d.bitmapped {
		t.Fatalf("%d disjoint extents did not trigger bitmap mode", maxExtentsPerPage+1)
	}
	exts := d.snapshotExtents()
	if err := extentsWellFormed(exts); err != nil {
		t.Fatalf("bitmap extents malformed: %v", err)
	}
	// Bitmap granularity is ChunkSize: every original byte must be covered,
	// and every extent must be chunk-aligned.
	for i := 0; i <= maxExtentsPerPage; i++ {
		off := uint32(i * 128)
		if !extentsCover(exts, off, 1) {
			t.Fatalf("bitmap extents %+v do not cover byte %d", exts, off)
		}
	}
	for _, e := range exts {
		if e.Off%ChunkSize != 0 || e.Len%ChunkSize != 0 {
			t.Fatalf("bitmap extent %+v is not chunk-aligned", e)
		}
	}
	// Consecutive chunks coalesce: marking everything yields one extent.
	var full dirtyPage
	full.bitmapped = true
	full.bitmap = ^uint64(0)
	if exts := full.snapshotExtents(); !extentsEqual(exts, []Extent{{0, PageSize}}) {
		t.Fatalf("full bitmap = %+v, want one whole-page extent", exts)
	}
	// Marks after conversion land in the bitmap.
	d.mark(4095, 1)
	if !extentsCover(d.snapshotExtents(), 4095, 1) {
		t.Fatal("mark after bitmap conversion lost")
	}
}

func extentsCover(exts []Extent, off, n uint32) bool {
	for _, e := range exts {
		if e.Off <= off && off+n <= e.End() {
			return true
		}
	}
	return false
}

func TestChunkMask(t *testing.T) {
	if m := chunkMask(0, 1); m != 1 {
		t.Fatalf("chunkMask(0,1) = %#x", m)
	}
	if m := chunkMask(63, 2); m != 3 { // straddles chunks 0 and 1
		t.Fatalf("chunkMask(63,2) = %#x", m)
	}
	if m := chunkMask(0, PageSize); m != ^uint64(0) {
		t.Fatalf("chunkMask(0,PageSize) = %#x", m)
	}
	if m := chunkMask(4095, 1); m != 1<<63 {
		t.Fatalf("chunkMask(4095,1) = %#x", m)
	}
}

func TestSpaceDirtyTrackingLifecycle(t *testing.T) {
	s := NewSpace()
	s.Store8(100, 1) // before tracking: not recorded
	s.SetDirtyTracking(true)
	if !s.DirtyTracking() {
		t.Fatal("tracking not enabled")
	}
	if n := s.DirtyPageCount(); n != 0 {
		t.Fatalf("pre-tracking store recorded: %d pages", n)
	}
	s.Store64(8, 42)
	s.Store32(PageSize+4, 7)
	s.Store8(16, 1)
	if got, want := s.DirtyPageCount(), 2; got != want {
		t.Fatalf("DirtyPageCount = %d, want %d", got, want)
	}
	// First-write order, not address order.
	s2 := NewSpace()
	s2.SetDirtyTracking(true)
	s2.Store8(3*PageSize, 1)
	s2.Store8(0, 1)
	s2.Store8(PageSize, 1)
	if want := []PageID{3, 0, 1}; !pageIDsEqual(s2.DirtyPages(), want) {
		t.Fatalf("DirtyPages = %v, want first-write order %v", s2.DirtyPages(), want)
	}
	// ResetDirty clears everything but keeps tracking on.
	s.ResetDirty()
	if s.DirtyPageCount() != 0 || len(s.DirtyPages()) != 0 {
		t.Fatal("ResetDirty left state behind")
	}
	if !s.DirtyTracking() {
		t.Fatal("ResetDirty disabled tracking")
	}
	s.Store8(5, 1)
	if s.DirtyPageCount() != 1 {
		t.Fatal("tracking dead after ResetDirty")
	}
	// Disabling discards state and stops recording.
	s.SetDirtyTracking(false)
	if s.DirtyTracking() || s.DirtyPageCount() != 0 {
		t.Fatal("SetDirtyTracking(false) did not clear")
	}
	s.Store8(5, 1)
	if s.DirtyPageCount() != 0 {
		t.Fatal("store recorded while tracking off")
	}
	if s.DirtyExtentsOf(0) != nil {
		t.Fatal("DirtyExtentsOf should be nil with no recorded writes")
	}
}

func pageIDsEqual(a, b []PageID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCloneDoesNotInheritDirtyTracking(t *testing.T) {
	s := NewSpace()
	s.SetDirtyTracking(true)
	s.Store8(10, 1)
	c := s.Clone()
	if c.DirtyTracking() || c.DirtyPageCount() != 0 {
		t.Fatal("Clone inherited dirty-tracking state")
	}
	// The parent's state is unaffected by the clone.
	if s.DirtyPageCount() != 1 {
		t.Fatal("Clone disturbed parent dirty state")
	}
}

// writeScript drives a random monitored write sequence against a tracked
// space, snapshotting each page on its first write exactly as the CI/PF
// monitors do, and returns the snapshots in first-write order. The sequence
// mixes Store8/Store32/Store64/WriteBytes, page-straddling writes and
// same-value overwrites (which must be *excluded* from the diff but may be
// *included* in the extents).
func writeScript(r *rand.Rand, s *Space, pages int) (map[PageID][]byte, []PageID) {
	snaps := make(map[PageID][]byte)
	var order []PageID
	limit := uint64(pages * PageSize)
	snapshot := func(a, n uint64) {
		for pid := PageOf(a); ; pid++ {
			if _, ok := snaps[pid]; !ok {
				snaps[pid] = s.Snapshot(pid)
				order = append(order, pid)
			}
			if pid == PageOf(a+n-1) {
				break
			}
		}
	}
	nops := 20 + r.Intn(200)
	for i := 0; i < nops; i++ {
		switch r.Intn(5) {
		case 0:
			a := uint64(r.Intn(int(limit)))
			snapshot(a, 1)
			if r.Intn(4) == 0 {
				s.Store8(a, s.Load8(a)) // same-value overwrite
			} else {
				s.Store8(a, byte(r.Int()))
			}
		case 1:
			a := uint64(r.Intn(int(limit) - 4))
			snapshot(a, 4)
			s.Store32(a, uint32(r.Int63()))
		case 2:
			a := uint64(r.Intn(int(limit) - 8))
			snapshot(a, 8)
			if r.Intn(4) == 0 {
				s.Store64(a, s.Load64(a)) // same-value overwrite
			} else {
				s.Store64(a, uint64(r.Int63()))
			}
		case 3: // page-straddling bulk write
			n := uint64(1 + r.Intn(3*PageSize/2))
			a := uint64(r.Intn(int(limit - n)))
			buf := make([]byte, n)
			r.Read(buf)
			snapshot(a, n)
			s.WriteBytes(a, buf)
		case 4: // dense single-page scribble: pushes the page to bitmap mode
			pid := PageID(r.Intn(pages))
			base := PageAddr(pid)
			snapshot(base, 1)
			for k := 0; k < maxExtentsPerPage+4; k++ {
				off := uint64(r.Intn(PageSize))
				s.Store8(base+off, byte(r.Int()))
			}
		}
	}
	return snaps, order
}

// TestDiffExtentsEquivalence is the tentpole's property test: for random
// monitored write sequences, the extent-guided diff must produce runs
// byte-for-byte identical to the full-page diff on every written page — and
// the recorded extents must be a well-formed superset of the bytes that
// actually differ from the snapshot.
func TestDiffExtentsEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSpace()
		s.SetDirtyTracking(true)
		snaps, order := writeScript(r, s, 4)
		for _, pid := range order {
			snap, cur := snaps[pid], s.PageData(pid)
			full := DiffPage(pid, snap, cur)
			exts := s.DirtyExtentsOf(pid)
			if err := extentsWellFormed(exts); err != nil {
				t.Logf("seed %d page %d: %v", seed, pid, err)
				return false
			}
			// Superset: every differing byte lies inside some extent.
			for i := 0; i < PageSize; i++ {
				if snap[i] != cur[i] && !extentsCover(exts, uint32(i), 1) {
					t.Logf("seed %d page %d: modified byte %d outside extents", seed, pid, i)
					return false
				}
			}
			guided := DiffPageExtents(pid, snap, cur, exts)
			if !runsEqual(full, guided) {
				t.Logf("seed %d page %d: extent-guided diff diverges:\nfull   %v\nguided %v",
					seed, pid, full, guided)
				return false
			}
		}
		// A page that was snapshotted but never written must diff empty
		// under both paths (nil extents → nothing to scan).
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func runsEqual(a, b []Run) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Addr != b[i].Addr || !bytes.Equal(a[i].Data, b[i].Data) {
			return false
		}
	}
	return true
}

// TestDiffExtentsEquivalenceBitmap pins the bitmap degradation path: a page
// fragmented past maxExtentsPerPage must still diff identically, with
// chunk-granular extents.
func TestDiffExtentsEquivalenceBitmap(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	s := NewSpace()
	s.SetDirtyTracking(true)
	snap := s.Snapshot(0)
	// 32 disjoint 1-byte writes at 128-byte strides: far past the threshold.
	for i := 0; i < 32; i++ {
		s.Store8(uint64(i*128), byte(r.Int())|1)
	}
	exts := s.DirtyExtentsOf(0)
	if len(exts) == 0 {
		t.Fatal("no extents recorded")
	}
	full := DiffPage(0, snap, s.PageData(0))
	guided := DiffPageExtents(0, snap, s.PageData(0), exts)
	if !runsEqual(full, guided) {
		t.Fatalf("bitmap-mode diff diverges:\nfull   %v\nguided %v", full, guided)
	}
	if got := ExtentBytes(exts); got >= PageSize {
		t.Fatalf("bitmap extents scan the whole page (%d bytes): no sparsity win", got)
	}
}

// TestDiffPageExtentsTruncatedSnapshot mirrors DiffPage's truncated-snapshot
// contract (see TestDiffPageTruncatedSnapshot): extents reaching past the
// snapshot are clamped to the common prefix.
func TestDiffPageExtentsTruncatedSnapshot(t *testing.T) {
	snap := []byte{1, 2, 3, 4}
	cur := make([]byte, PageSize)
	for i := range cur {
		cur[i] = 9
	}
	runs := DiffPageExtents(0, snap, cur, []Extent{{0, PageSize}})
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	if runs[0].Addr != 0 || len(runs[0].Data) != len(snap) {
		t.Fatalf("run %+v not clamped to len(snapshot)=%d", runs[0], len(snap))
	}
	// An extent entirely past the snapshot contributes nothing.
	if runs := DiffPageExtents(0, snap, cur, []Extent{{8, 16}}); len(runs) != 0 {
		t.Fatalf("extent past snapshot produced runs: %v", runs)
	}
}

func TestExtentBytes(t *testing.T) {
	if n := ExtentBytes(nil); n != 0 {
		t.Fatalf("ExtentBytes(nil) = %d", n)
	}
	if n := ExtentBytes([]Extent{{0, 10}, {100, 5}}); n != 15 {
		t.Fatalf("ExtentBytes = %d, want 15", n)
	}
}
