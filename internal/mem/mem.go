// Package mem implements the simulated paged address space that substitutes
// for the paper's clone()-separated process memories (paper §4, Figure 3).
//
// Each logical thread owns a Space: a sparse page table over a shared virtual
// address range. Cloning a Space (thread creation, §4.1) shares pages
// copy-on-write, so the child inherits the parent's memory exactly as a
// cloned process would. Per-page protection bits model mprotect for the
// RFDet-pf monitor, the DThreads baseline, and the lazy-writes optimization
// (§4.5): a protected page cannot be accessed through the checked fast path
// and takes a simulated fault instead.
//
// All methods of a Space must be called only by its owning thread, mirroring
// the paper's design where a process touches only its own address space;
// pages themselves are immutable while shared (copy-on-write), so concurrent
// readers of a shared page never race with a writer.
package mem

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
)

const (
	// PageShift is log2 of the page size.
	PageShift = 12
	// PageSize is the simulated page size in bytes (4 KiB, as on the
	// paper's x86-64 testbed).
	PageSize = 1 << PageShift
	// PageMask extracts the offset within a page.
	PageMask = PageSize - 1
)

// PageID identifies a page: address >> PageShift.
type PageID uint64

// PageOf returns the page containing address a.
func PageOf(a uint64) PageID { return PageID(a >> PageShift) }

// PageAddr returns the first address of page p.
func PageAddr(p PageID) uint64 { return uint64(p) << PageShift }

// Prot is a per-page protection mode, modelling mprotect.
type Prot uint8

const (
	// ProtRW allows reads and writes through the fast path.
	ProtRW Prot = iota
	// ProtRead write-protects the page: stores fault (RFDet-pf first-touch
	// detection, DThreads twin creation).
	ProtRead
	// ProtNone makes any access fault (lazy-writes pages with pending
	// remote modifications, §4.5).
	ProtNone
)

// Page is a 4 KiB page with a copy-on-write reference count. A page with
// refs > 1 is immutable; writers must copy it first.
type Page struct {
	refs int32
	Data [PageSize]byte
}

// NewPage returns a fresh zeroed page with one reference.
func NewPage() *Page { return &Page{refs: 1} }

// Ref increments the reference count (the page becomes shared).
func (p *Page) Ref() { atomic.AddInt32(&p.refs, 1) }

// Unref decrements the reference count.
func (p *Page) Unref() { atomic.AddInt32(&p.refs, -1) }

// Shared reports whether the page is referenced by more than one space.
func (p *Page) Shared() bool { return atomic.LoadInt32(&p.refs) > 1 }

// FaultHandler is invoked when an access hits a protected page, before the
// access proceeds. It stands in for the SIGSEGV handler of the paper's
// implementation. The handler typically snapshots the page and lowers its
// protection via the Space it closed over; the access then retries the
// protection check not at all — it simply proceeds, as a faulting
// instruction restarts after mprotect in the real system.
type FaultHandler func(p PageID, write bool)

// Space is one thread's private view of the shared address range.
type Space struct {
	pages map[PageID]*Page
	// prot holds explicit per-page protections; pages without an entry use
	// defaultProt. ProtectAll works by swapping defaultProt (one "mprotect
	// of the whole mapping"), which also covers pages that are not resident
	// yet: a store that materializes a fresh page must still fault.
	prot        map[PageID]Prot
	defaultProt Prot
	// onFault handles simulated protection faults; nil means protections
	// are ignored (pthreads mode).
	onFault FaultHandler
	// zero is returned for reads of unmapped pages.
	zero Page

	// Sub-page dirty tracking (dirty.go): per-page written-byte extents,
	// recorded on every store while trackDirty is set and reset at slice
	// end. lastDirtyID/lastDirty cache the most recently marked page so
	// loops over one page skip the map lookup.
	trackDirty  bool
	dirty       map[PageID]*dirtyPage
	dirtyOrder  []PageID
	lastDirtyID PageID
	lastDirty   *dirtyPage

	// Per-slice read-set tracking (reads.go): per-page loaded-byte extents,
	// recorded on every load while trackReads is set (race detection only)
	// and reset at slice end. Same single-entry cache trick as dirty
	// tracking.
	trackReads bool
	reads      map[PageID]*readSet
	readOrder  []PageID
	lastReadID PageID
	lastRead   *readSet
}

// NewSpace returns an empty address space.
func NewSpace() *Space {
	return &Space{
		pages: make(map[PageID]*Page),
		prot:  make(map[PageID]Prot),
	}
}

// SetFaultHandler installs the simulated SIGSEGV handler.
func (s *Space) SetFaultHandler(h FaultHandler) { s.onFault = h }

// Clone returns a copy-on-write duplicate of s, as a child process would
// inherit its parent's memory through clone() (§4.1). Protections and
// dirty-tracking state are not inherited; the child starts with all pages
// ProtRW and tracking off (the runtime re-enables it when the owning
// thread starts monitoring).
func (s *Space) Clone() *Space {
	c := NewSpace()
	//detvet:orderfree per-page Ref+insert into a fresh map commutes; see TestCloneOrderFree.
	for id, p := range s.pages {
		p.Ref()
		c.pages[id] = p
	}
	c.onFault = nil
	return c
}

// Release drops all page references held by s. The space must not be used
// afterwards.
func (s *Space) Release() {
	//detvet:orderfree per-page Unref+delete commutes; the map is discarded afterwards.
	for id, p := range s.pages {
		p.Unref()
		delete(s.pages, id)
	}
}

// PageCount returns the number of resident pages.
func (s *Space) PageCount() int { return len(s.pages) }

// ResidentBytes returns the resident size of this space in bytes.
func (s *Space) ResidentBytes() uint64 { return uint64(len(s.pages)) * PageSize }

// PrivateBytes returns the bytes of pages exclusively owned by this space
// (copied rather than shared), the per-thread extra footprint of §5.4.
func (s *Space) PrivateBytes() uint64 {
	var n uint64
	//detvet:orderfree commutative sum over pages.
	for _, p := range s.pages {
		if !p.Shared() {
			n += PageSize
		}
	}
	return n
}

// Pages calls fn for each resident page in ascending PageID order.
func (s *Space) Pages(fn func(PageID, *Page)) {
	ids := make([]PageID, 0, len(s.pages))
	for id := range s.pages {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fn(id, s.pages[id])
	}
}

// readPage returns the page for reading; unmapped pages read as zeros.
func (s *Space) readPage(id PageID) *Page {
	if p, ok := s.pages[id]; ok {
		return p
	}
	return &s.zero
}

// writablePage returns a page that may be written in place, performing the
// copy-on-write if the page is shared or absent.
func (s *Space) writablePage(id PageID) *Page {
	p, ok := s.pages[id]
	if !ok {
		p = NewPage()
		s.pages[id] = p
		return p
	}
	if p.Shared() {
		np := NewPage()
		np.Data = p.Data
		p.Unref()
		s.pages[id] = np
		return np
	}
	return p
}

// checkFault fires the fault handler if page id is protected against the
// given access. The handler is expected to lower the protection; the access
// then proceeds.
func (s *Space) checkFault(id PageID, write bool) {
	if s.onFault == nil || (s.defaultProt == ProtRW && len(s.prot) == 0) {
		return
	}
	pr, ok := s.prot[id]
	if !ok {
		pr = s.defaultProt
	}
	switch pr {
	case ProtNone:
		s.onFault(id, write)
	case ProtRead:
		if write {
			s.onFault(id, write)
		}
	}
}

// Protect sets the protection of page id, overriding any whole-mapping
// protection installed by ProtectAll.
func (s *Space) Protect(id PageID, pr Prot) {
	if pr == ProtRW && s.defaultProt == ProtRW {
		delete(s.prot, id)
		return
	}
	s.prot[id] = pr
}

// ProtectionOf returns the effective protection of page id.
func (s *Space) ProtectionOf(id PageID) Prot {
	if pr, ok := s.prot[id]; ok {
		return pr
	}
	return s.defaultProt
}

// ProtectAll protects the entire mapping — resident pages and pages yet to
// be materialized — clearing per-page overrides, and returns the number of
// resident pages for cost accounting. It models the per-slice "mprotect the
// whole shared mapping" pass of the page-protection monitor (§4.2), whose
// per-page kernel cost is the reason RFDet-pf is slower than RFDet-ci on
// sync-heavy programs.
func (s *Space) ProtectAll(pr Prot) int {
	s.defaultProt = pr
	for id := range s.prot {
		delete(s.prot, id)
	}
	return len(s.pages)
}

// ClearProtections removes all page protections.
func (s *Space) ClearProtections() {
	s.defaultProt = ProtRW
	for id := range s.prot {
		delete(s.prot, id)
	}
}

// Load8 reads one byte.
func (s *Space) Load8(a uint64) uint8 {
	id := PageOf(a)
	s.checkFault(id, false)
	if s.trackReads {
		s.markRead(id, uint32(a&PageMask), 1)
	}
	return s.readPage(id).Data[a&PageMask]
}

// Store8 writes one byte.
func (s *Space) Store8(a uint64, v uint8) {
	id := PageOf(a)
	s.checkFault(id, true)
	s.writablePage(id).Data[a&PageMask] = v
	if s.trackDirty {
		s.markDirty(id, uint32(a&PageMask), 1)
	}
}

// Load32 reads a little-endian uint32 (may straddle a page boundary).
func (s *Space) Load32(a uint64) uint32 {
	if a&PageMask <= PageSize-4 {
		id := PageOf(a)
		s.checkFault(id, false)
		if s.trackReads {
			s.markRead(id, uint32(a&PageMask), 4)
		}
		return binary.LittleEndian.Uint32(s.readPage(id).Data[a&PageMask:])
	}
	var buf [4]byte
	s.ReadBytes(a, buf[:])
	return binary.LittleEndian.Uint32(buf[:])
}

// Store32 writes a little-endian uint32 (may straddle a page boundary).
func (s *Space) Store32(a uint64, v uint32) {
	if a&PageMask <= PageSize-4 {
		id := PageOf(a)
		s.checkFault(id, true)
		binary.LittleEndian.PutUint32(s.writablePage(id).Data[a&PageMask:], v)
		if s.trackDirty {
			s.markDirty(id, uint32(a&PageMask), 4)
		}
		return
	}
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	s.WriteBytes(a, buf[:])
}

// Load64 reads a little-endian uint64 (may straddle a page boundary).
func (s *Space) Load64(a uint64) uint64 {
	if a&PageMask <= PageSize-8 {
		id := PageOf(a)
		s.checkFault(id, false)
		if s.trackReads {
			s.markRead(id, uint32(a&PageMask), 8)
		}
		return binary.LittleEndian.Uint64(s.readPage(id).Data[a&PageMask:])
	}
	var buf [8]byte
	s.ReadBytes(a, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

// Store64 writes a little-endian uint64 (may straddle a page boundary).
func (s *Space) Store64(a uint64, v uint64) {
	if a&PageMask <= PageSize-8 {
		id := PageOf(a)
		s.checkFault(id, true)
		binary.LittleEndian.PutUint64(s.writablePage(id).Data[a&PageMask:], v)
		if s.trackDirty {
			s.markDirty(id, uint32(a&PageMask), 8)
		}
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	s.WriteBytes(a, buf[:])
}

// ReadBytes fills buf from memory starting at a.
func (s *Space) ReadBytes(a uint64, buf []byte) {
	for len(buf) > 0 {
		id := PageOf(a)
		s.checkFault(id, false)
		off := a & PageMask
		n := copy(buf, s.readPage(id).Data[off:])
		if s.trackReads {
			s.markRead(id, uint32(off), uint32(n))
		}
		buf = buf[n:]
		a += uint64(n)
	}
}

// WriteBytes copies data into memory starting at a.
func (s *Space) WriteBytes(a uint64, data []byte) {
	for len(data) > 0 {
		id := PageOf(a)
		s.checkFault(id, true)
		off := a & PageMask
		n := copy(s.writablePage(id).Data[off:], data)
		if s.trackDirty {
			s.markDirty(id, uint32(off), uint32(n))
		}
		data = data[n:]
		a += uint64(n)
	}
}

// Snapshot returns a copy of page id's current contents, the page snapshot
// taken on first write in a slice (Figure 4 of the paper). The buffer comes
// from the page-buffer pool; callers that control the snapshot's lifetime
// should hand it back with PutPageBuf once the slice-end diff has consumed
// it (a never-returned buffer is merely garbage-collected).
func (s *Space) Snapshot(id PageID) []byte {
	snap := GetPageBuf()
	copy(snap, s.readPage(id).Data[:])
	return snap
}

// PageData returns the current contents of page id for read-only use (the
// returned slice aliases the live page; do not retain it across writes).
func (s *Space) PageData(id PageID) []byte {
	return s.readPage(id).Data[:]
}

// Hash folds every resident page into a 64-bit FNV digest, in ascending page
// order. Zero pages that were never mapped do not contribute; a mapped page
// that holds zeros does, so the digest is a deterministic function of the
// store history.
func (s *Space) Hash() uint64 {
	h := fnv.New64a()
	var idbuf [8]byte
	s.Pages(func(id PageID, p *Page) {
		binary.LittleEndian.PutUint64(idbuf[:], uint64(id))
		h.Write(idbuf[:])
		h.Write(p.Data[:])
	})
	return h.Sum64()
}

// String summarizes the space for debugging.
func (s *Space) String() string {
	return fmt.Sprintf("Space{pages: %d, resident: %d B}", len(s.pages), s.ResidentBytes())
}
