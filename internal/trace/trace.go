// Package trace is the phase-level observability layer for the DMT
// runtimes: each logical thread records wall-clock spans for its execution
// phases — deterministic-turn wait, global-monitor wait, slice diffing,
// write-plan building, propagation apply, prelock pre-merge, lazy flushes
// and blocked time — into a private append-only buffer, and the
// deterministic synchronization tracer's events are cross-linked into the
// same timeline as instant marks.
//
// Everything here is observational: wall-clock timestamps are host noise
// and must never feed output hashes, virtual times or the deterministic
// trace. The runtime only *reads* the clock on paths that already read it
// for the Stats nanos counters, and a disabled collector (nil *Collector /
// nil *ThreadBuf) reduces every recording call to a nil check, so tracing
// off costs nothing measurable.
//
// Concurrency: a ThreadBuf is appended to by the goroutine running its
// thread, or — for work another thread performs on its behalf while it is
// provably blocked (prelock pre-merge, barrier merge) — by that other
// goroutine under the runtime's monitor. The wake channel's happens-before
// edge serializes those appends against the owner's, exactly the argument
// the runtimes already make for the per-thread Stats. No locks are taken on
// any hot path; the collector's mutex guards only thread registration.
package trace

import (
	"sort"
	"sync"
	"time"
)

// Phase identifies one execution-phase category of a DMT thread. Time not
// covered by any span is user compute by definition.
type Phase uint8

// Execution phases.
const (
	// PhaseTurnWait is time spent waiting for the deterministic Kendo turn
	// before a synchronization operation (only recorded when the turn was
	// actually contended, so span count == Stats.TurnWaits).
	PhaseTurnWait Phase = iota
	// PhaseMonitorWait is time spent acquiring the runtime's global monitor
	// (span count == Stats.MonitorAcquires).
	PhaseMonitorWait
	// PhaseDiff is slice-end page diffing (span total == Stats.DiffNanos).
	PhaseDiff
	// PhasePlanBuild is coalesced write-plan construction. Plan builds run
	// inside an apply or alongside a premerge; their time is part of the
	// enclosing region's accounting, broken out for visibility.
	PhasePlanBuild
	// PhaseApply is propagation apply at an acquire or barrier merge
	// (PhaseApply + PhasePremerge span totals == Stats.ApplyNanos).
	PhaseApply
	// PhasePremerge is prelock pre-merge application — propagation work that
	// overlaps a lock holder's critical section (§4.5). Premerge spans for a
	// blocked waiter nest inside its PhaseBlock span.
	PhasePremerge
	// PhaseLazyFlush is lazily pended modification flushing on first access.
	PhaseLazyFlush
	// PhaseBlock is time blocked on a synchronization variable (lock grant,
	// cond wait, barrier, join).
	PhaseBlock
	// NumPhases bounds the phase enum; not a phase.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"turn-wait", "monitor-wait", "diff", "plan-build",
	"apply", "premerge", "lazy-flush", "block",
}

func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return "unknown"
}

// Span is one recorded phase interval. Start is nanoseconds since the
// collector epoch; Dur is the wall-clock duration in nanoseconds.
type Span struct {
	Phase  Phase
	Start  int64
	Dur    int64
	Detail string
}

// Mark is one cross-linked synchronization event: the deterministic sync
// tracer's (op, addr) pair stamped with the wall-clock instant at which the
// operation was recorded.
type Mark struct {
	Op   string
	Addr uint64
	At   int64
}

// ThreadBuf is one thread's append-only phase buffer. A nil ThreadBuf is a
// valid, permanently disabled buffer: every method no-ops.
type ThreadBuf struct {
	col   *Collector
	id    int
	start int64
	end   int64
	spans []Span
	marks []Mark
}

// Collector owns the per-thread buffers of one execution.
type Collector struct {
	epoch time.Time

	mu   sync.Mutex
	bufs []*ThreadBuf
}

// NewCollector returns an enabled collector with its epoch at now.
func NewCollector() *Collector {
	return &Collector{epoch: time.Now()}
}

// NewThread registers a thread and returns its buffer. On a nil collector it
// returns nil — the disabled buffer.
func (c *Collector) NewThread(id int) *ThreadBuf {
	if c == nil {
		return nil
	}
	b := &ThreadBuf{col: c, id: id, start: -1, end: -1}
	c.mu.Lock()
	c.bufs = append(c.bufs, b)
	c.mu.Unlock()
	return b
}

// Now returns nanoseconds since the collector epoch, or 0 when disabled.
// Hot paths call Now once before a potentially blocking step and Span after
// it; with tracing off both are single nil checks.
func (b *ThreadBuf) Now() int64 {
	if b == nil {
		return 0
	}
	return int64(time.Since(b.col.epoch))
}

// Begin marks the thread's lifetime start.
func (b *ThreadBuf) Begin() {
	if b == nil {
		return
	}
	b.start = b.Now()
}

// Finish marks the thread's lifetime end.
func (b *ThreadBuf) Finish() {
	if b == nil {
		return
	}
	b.end = b.Now()
}

// Span records a phase interval that started at the epoch-relative
// nanosecond start and ends now.
func (b *ThreadBuf) Span(p Phase, start int64) {
	if b == nil {
		return
	}
	b.spans = append(b.spans, Span{Phase: p, Start: start, Dur: b.Now() - start})
}

// SpanDetail is Span with a free-form annotation (e.g. the block site).
func (b *ThreadBuf) SpanDetail(p Phase, start int64, detail string) {
	if b == nil {
		return
	}
	b.spans = append(b.spans, Span{Phase: p, Start: start, Dur: b.Now() - start, Detail: detail})
}

// SpanDur records a phase interval with an externally measured duration.
// The runtime uses this on paths that already time themselves for the Stats
// nanos counters (DiffNanos, ApplyNanos), so the recorded span totals
// reconcile with those counters exactly, not approximately.
func (b *ThreadBuf) SpanDur(p Phase, start time.Time, dur time.Duration) {
	if b == nil {
		return
	}
	b.spans = append(b.spans, Span{Phase: p, Start: int64(start.Sub(b.col.epoch)), Dur: int64(dur)})
}

// Mark records a cross-linked synchronization event at the current instant.
func (b *ThreadBuf) Mark(op string, addr uint64) {
	if b == nil {
		return
	}
	b.marks = append(b.marks, Mark{Op: op, Addr: addr, At: b.Now()})
}

// Timeline is one thread's rendered phase history.
type Timeline struct {
	ID         int
	Start, End int64
	Spans      []Span
	Marks      []Mark
}

// Report is the rendered phase-level observability data of one execution.
// It lives on api.Report.Phases and is strictly observational: nothing in
// it participates in output hashing or virtual time.
type Report struct {
	Threads []Timeline
}

// Render snapshots the collector into a Report. Call only after the
// execution has quiesced (all thread goroutines joined).
func (c *Collector) Render() *Report {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	r := &Report{Threads: make([]Timeline, 0, len(c.bufs))}
	for _, b := range c.bufs {
		tl := Timeline{ID: b.id, Start: b.start, End: b.end,
			Spans: append([]Span(nil), b.spans...),
			Marks: append([]Mark(nil), b.marks...)}
		sort.SliceStable(tl.Spans, func(i, j int) bool {
			a, bb := tl.Spans[i], tl.Spans[j]
			if a.Start != bb.Start {
				return a.Start < bb.Start
			}
			return a.Dur > bb.Dur // outer (longer) span first at equal starts
		})
		r.Threads = append(r.Threads, tl)
	}
	sort.Slice(r.Threads, func(i, j int) bool { return r.Threads[i].ID < r.Threads[j].ID })
	return r
}

// PhaseTotals sums span durations by phase across all threads.
func (r *Report) PhaseTotals() [NumPhases]time.Duration {
	var tot [NumPhases]time.Duration
	if r == nil {
		return tot
	}
	for _, tl := range r.Threads {
		for _, s := range tl.Spans {
			if s.Phase < NumPhases {
				tot[s.Phase] += time.Duration(s.Dur)
			}
		}
	}
	return tot
}

// PhaseCounts counts spans by phase across all threads.
func (r *Report) PhaseCounts() [NumPhases]uint64 {
	var n [NumPhases]uint64
	if r == nil {
		return n
	}
	for _, tl := range r.Threads {
		for _, s := range tl.Spans {
			if s.Phase < NumPhases {
				n[s.Phase]++
			}
		}
	}
	return n
}

// PerOp divides each phase's total across n operations, yielding the average
// wall-clock cost one operation (e.g. one served request) pays in that phase.
// This is the per-request breakdown the replica harness reports: with every
// span attributed to a phase, the sum over phases of PerOp values is the
// non-user runtime cost per operation. n = 0 returns zeros.
func (r *Report) PerOp(n uint64) [NumPhases]time.Duration {
	var per [NumPhases]time.Duration
	if r == nil || n == 0 {
		return per
	}
	tot := r.PhaseTotals()
	for p := range tot {
		per[p] = tot[p] / time.Duration(n)
	}
	return per
}

// Percentiles are nearest-rank latency percentiles over one phase's span
// durations — the per-op distribution view that complements PerOp's means.
type Percentiles struct {
	P50, P95, P99 time.Duration
}

// PhasePercentiles computes nearest-rank p50/p95/p99 span-duration
// percentiles per phase across all threads. Phases with no spans yield
// zeros. Like everything in this package the result is wall-clock host
// noise: render it, never hash it.
func (r *Report) PhasePercentiles() [NumPhases]Percentiles {
	var out [NumPhases]Percentiles
	if r == nil {
		return out
	}
	var durs [NumPhases][]int64
	for _, tl := range r.Threads {
		for _, s := range tl.Spans {
			if s.Phase < NumPhases {
				durs[s.Phase] = append(durs[s.Phase], s.Dur)
			}
		}
	}
	for p := range durs {
		d := durs[p]
		if len(d) == 0 {
			continue
		}
		sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
		out[p] = Percentiles{
			P50: time.Duration(d[nearestRank(len(d), 50)]),
			P95: time.Duration(d[nearestRank(len(d), 95)]),
			P99: time.Duration(d[nearestRank(len(d), 99)]),
		}
	}
	return out
}

// nearestRank returns the index of the pct-th nearest-rank percentile in a
// sorted list of n > 0 elements: ceil(n*pct/100), clamped to [1, n], as a
// zero-based index.
func nearestRank(n, pct int) int {
	i := (n*pct + 99) / 100
	if i < 1 {
		i = 1
	}
	if i > n {
		i = n
	}
	return i - 1
}

// MarkCount counts cross-linked marks with the given op across all threads.
// The relaxation reconciliation test matches mark counts against the Stats
// counters (turn-elide ↔ ElidedTurnWaits, slice-elide ↔ SkippedSliceApplies,
// relax-fallback ↔ RelaxUnsafeFallbacks).
func (r *Report) MarkCount(op string) uint64 {
	var n uint64
	if r == nil {
		return n
	}
	for _, tl := range r.Threads {
		for _, m := range tl.Marks {
			if m.Op == op {
				n++
			}
		}
	}
	return n
}

// MarkSum sums the Addr payloads of marks with the given op. slice-elide
// marks carry the elided byte count in Addr, so MarkSum("slice-elide")
// reconciles against Stats.BytesElided.
func (r *Report) MarkSum(op string) uint64 {
	var n uint64
	if r == nil {
		return n
	}
	for _, tl := range r.Threads {
		for _, m := range tl.Marks {
			if m.Op == op {
				n += m.Addr
			}
		}
	}
	return n
}

// UserTime estimates user compute: the sum over threads of lifetime not
// covered by any recorded span. Because premerge, plan-build and
// barrier-merge spans nest inside other spans (a waiter's block, an apply),
// the subtraction uses the union of intervals, not the sum of durations.
func (r *Report) UserTime() time.Duration {
	if r == nil {
		return 0
	}
	var user time.Duration
	for _, tl := range r.Threads {
		if tl.Start < 0 || tl.End < tl.Start {
			continue
		}
		user += time.Duration(tl.End-tl.Start) - unionWithin(tl.Spans, tl.Start, tl.End)
	}
	return user
}

// unionWithin returns the total length of the union of the spans' intervals
// clipped to [lo, hi]. Spans is sorted by Start (Render guarantees it).
func unionWithin(spans []Span, lo, hi int64) time.Duration {
	var total int64
	curLo, curHi := int64(0), int64(-1) // empty current interval
	flush := func() {
		if curHi > curLo {
			total += curHi - curLo
		}
	}
	for _, s := range spans {
		a, b := s.Start, s.Start+s.Dur
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if b <= a {
			continue
		}
		if curHi < curLo || a > curHi { // disjoint from current
			flush()
			curLo, curHi = a, b
			continue
		}
		if b > curHi {
			curHi = b
		}
	}
	flush()
	return time.Duration(total)
}
