package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilCollectorAndBufAreNoOps(t *testing.T) {
	var c *Collector
	b := c.NewThread(3)
	if b != nil {
		t.Fatal("nil collector must hand out nil buffers")
	}
	// Every recording method must be callable on the nil buffer.
	if b.Now() != 0 {
		t.Fatal("nil buffer Now() != 0")
	}
	b.Begin()
	b.Span(PhaseDiff, 0)
	b.SpanDetail(PhaseBlock, 0, "x")
	b.SpanDur(PhaseApply, time.Now(), time.Millisecond)
	b.Mark("lock", 64)
	b.Finish()
	var r *Report
	if r.PhaseTotals() != ([NumPhases]time.Duration{}) {
		t.Fatal("nil report totals not zero")
	}
	if r.PhaseCounts() != ([NumPhases]uint64{}) {
		t.Fatal("nil report counts not zero")
	}
	if r.UserTime() != 0 {
		t.Fatal("nil report user time not zero")
	}
	if err := Export(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("exporting a nil report must error")
	}
	if err := r.WriteSummary(&bytes.Buffer{}); err == nil {
		t.Fatal("summarizing a nil report must error")
	}
	if c.Render() != nil {
		t.Fatal("nil collector must render nil")
	}
}

func TestPhaseStrings(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < NumPhases; p++ {
		s := p.String()
		if s == "" || s == "unknown" || seen[s] {
			t.Fatalf("bad or duplicate phase name %q", s)
		}
		seen[s] = true
	}
	if NumPhases.String() != "unknown" {
		t.Fatal("out-of-range phase must stringify as unknown")
	}
}

// synthetic builds a report by hand: one thread alive [0, 1000] with spans
// block [100, 500] containing premerge [200, 300], and diff [600, 700].
func synthetic() *Report {
	c := NewCollector()
	b := c.NewThread(1)
	b.start = 0
	b.end = 1000
	b.spans = append(b.spans,
		Span{Phase: PhaseDiff, Start: 600, Dur: 100},
		Span{Phase: PhaseBlock, Start: 100, Dur: 400, Detail: "lock 0x40"},
		Span{Phase: PhasePremerge, Start: 200, Dur: 100},
	)
	b.marks = append(b.marks, Mark{Op: "lock", Addr: 64, At: 500})
	return c.Render()
}

func TestRenderSortsAndUserTime(t *testing.T) {
	r := synthetic()
	if len(r.Threads) != 1 {
		t.Fatalf("threads = %d", len(r.Threads))
	}
	tl := r.Threads[0]
	if tl.Spans[0].Phase != PhaseBlock || tl.Spans[1].Phase != PhasePremerge || tl.Spans[2].Phase != PhaseDiff {
		t.Fatalf("spans not sorted by start: %+v", tl.Spans)
	}
	tot := r.PhaseTotals()
	if tot[PhaseBlock] != 400 || tot[PhasePremerge] != 100 || tot[PhaseDiff] != 100 {
		t.Fatalf("totals wrong: %v", tot)
	}
	n := r.PhaseCounts()
	if n[PhaseBlock] != 1 || n[PhasePremerge] != 1 || n[PhaseDiff] != 1 {
		t.Fatalf("counts wrong: %v", n)
	}
	// The premerge nests inside the block, so the covered union is
	// [100,500] ∪ [600,700] = 500ns, and user time is 1000 − 500.
	if u := r.UserTime(); u != 500 {
		t.Fatalf("user time = %d, want 500", u)
	}
}

func TestUnionWithinClipsAndMerges(t *testing.T) {
	spans := []Span{
		{Start: -50, Dur: 100},  // clipped to [0, 50]
		{Start: 40, Dur: 20},    // overlaps previous → extends to 60
		{Start: 100, Dur: 50},   // disjoint
		{Start: 120, Dur: 10},   // nested inside previous
		{Start: 900, Dur: 1000}, // clipped to [900, 1000]
	}
	if got := unionWithin(spans, 0, 1000); got != 60+50+100 {
		t.Fatalf("union = %d, want 210", got)
	}
	if got := unionWithin(nil, 0, 1000); got != 0 {
		t.Fatalf("empty union = %d", got)
	}
}

func TestExportAndValidate(t *testing.T) {
	r := synthetic()
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"traceEvents"`, `"block"`, `"premerge"`, `"diff"`,
		`"thread_name"`, `"lock"`, `"detail":"lock 0x40"`, `"cat":"sync"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %s:\n%s", want, out)
		}
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateChromeRejections(t *testing.T) {
	mk := func(events string) []byte {
		return []byte(`{"traceEvents":[` + events + `],"displayTimeUnit":"ns"}`)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"bad json", []byte(`{`)},
		{"no duration events", mk(`{"name":"lock","ph":"i","ts":1,"pid":0,"tid":0,"s":"t"}`)},
		{"negative ts", mk(`{"name":"diff","ph":"X","ts":-1,"dur":5,"pid":0,"tid":0}`)},
		{"negative instant", mk(
			`{"name":"diff","ph":"X","ts":1,"dur":5,"pid":0,"tid":0},` +
				`{"name":"lock","ph":"i","ts":-1,"pid":0,"tid":0,"s":"t"}`)},
		{"unknown phase", mk(`{"name":"x","ph":"Q","ts":1,"pid":0,"tid":0}`)},
		{"overlap", mk(
			`{"name":"block","ph":"X","ts":0,"dur":10,"pid":0,"tid":1},` +
				`{"name":"premerge","ph":"X","ts":5,"dur":10,"pid":0,"tid":1}`)},
	}
	for _, tc := range cases {
		if err := ValidateChrome(tc.data); err == nil {
			t.Fatalf("%s: expected validation error", tc.name)
		}
	}
	// Properly nested and sequential spans validate.
	ok := mk(
		`{"name":"block","ph":"X","ts":0,"dur":10,"pid":0,"tid":1},` +
			`{"name":"premerge","ph":"X","ts":2,"dur":4,"pid":0,"tid":1},` +
			`{"name":"diff","ph":"X","ts":20,"dur":5,"pid":0,"tid":1}`)
	if err := ValidateChrome(ok); err != nil {
		t.Fatal(err)
	}
}

func TestExportIsValidJSON(t *testing.T) {
	c := NewCollector()
	b := c.NewThread(0)
	b.Begin()
	ts := b.Now()
	b.Span(PhaseMonitorWait, ts)
	b.Mark("unlock", 64)
	b.Finish()
	var buf bytes.Buffer
	if err := Export(&buf, c.Render()); err != nil {
		t.Fatal(err)
	}
	var v map[string]any
	if err := json.Unmarshal(buf.Bytes(), &v); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSummaryTable(t *testing.T) {
	r := synthetic()
	var buf bytes.Buffer
	if err := r.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header, thread 1, total
		t.Fatalf("summary has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "thread") || !strings.Contains(lines[0], "block-us") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[2], "total") {
		t.Fatalf("missing total row: %s", lines[2])
	}
}

func TestPerOpAveragesPhaseTotals(t *testing.T) {
	r := &Report{Threads: []Timeline{{
		ID: 0, Start: 0, End: 1000,
		Spans: []Span{
			{Phase: PhaseDiff, Start: 0, Dur: 100},
			{Phase: PhaseDiff, Start: 200, Dur: 100},
			{Phase: PhaseApply, Start: 400, Dur: 50},
		},
	}}}
	per := r.PerOp(10)
	if per[PhaseDiff] != 20 {
		t.Fatalf("diff per-op = %d, want 20", per[PhaseDiff])
	}
	if per[PhaseApply] != 5 {
		t.Fatalf("apply per-op = %d, want 5", per[PhaseApply])
	}
	if z := r.PerOp(0); z != ([NumPhases]time.Duration{}) {
		t.Fatalf("PerOp(0) = %v, want zeros", z)
	}
	var nilReport *Report
	if z := nilReport.PerOp(5); z != ([NumPhases]time.Duration{}) {
		t.Fatalf("nil PerOp = %v, want zeros", z)
	}
}
