package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome-trace / Perfetto JSON export. The format is the Trace Event
// Format's JSON object form: {"traceEvents": [...]}. Phase spans become
// complete ("X") events, cross-linked sync operations become thread-scoped
// instant ("i") events, and thread rows are named with metadata ("M")
// events. Timestamps are microseconds since the collector epoch, as the
// format requires. Load the file in ui.perfetto.dev or chrome://tracing.

// chromeEvent is one Trace Event Format entry. Fields cover the subset the
// exporter emits; Dur and Scope are omitted when empty.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// Export writes the report as Chrome-trace JSON.
func Export(w io.Writer, r *Report) error {
	if r == nil {
		return fmt.Errorf("trace: no phase report to export (tracing disabled?)")
	}
	f := chromeFile{DisplayTimeUnit: "ns"}
	for _, tl := range r.Threads {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tl.ID,
			Args: map[string]any{"name": fmt.Sprintf("thread %d", tl.ID)},
		})
		for _, s := range tl.Spans {
			ev := chromeEvent{
				Name: s.Phase.String(), Cat: "phase", Ph: "X",
				Ts: usec(s.Start), Dur: usec(s.Dur), Pid: 0, Tid: tl.ID,
			}
			if s.Detail != "" {
				ev.Args = map[string]any{"detail": s.Detail}
			}
			f.TraceEvents = append(f.TraceEvents, ev)
		}
		for _, m := range tl.Marks {
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: m.Op, Cat: "sync", Ph: "i", Ts: usec(m.At),
				Pid: 0, Tid: tl.ID, Scope: "t",
				Args: map[string]any{"addr": fmt.Sprintf("%#x", m.Addr)},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// WriteChrome is Export as a method.
func (r *Report) WriteChrome(w io.Writer) error { return Export(w, r) }

// ValidateChrome checks an exported Chrome-trace JSON document: it must
// parse, contain at least one duration event, have non-negative timestamps
// and durations, and the duration events of each thread must be well
// nested — sorted by start, each event either begins after the previous one
// ends or lies entirely within it. This is the structural invariant the
// phase recorder guarantees (work done on a blocked thread's behalf nests
// inside its block span), and what keeps the Perfetto rendering sane.
func ValidateChrome(data []byte) error {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("trace: invalid JSON: %w", err)
	}
	byTid := map[int][]chromeEvent{}
	nx := 0
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "X":
			if ev.Ts < 0 || ev.Dur < 0 {
				return fmt.Errorf("trace: event %q on tid %d has negative ts/dur (%v, %v)",
					ev.Name, ev.Tid, ev.Ts, ev.Dur)
			}
			byTid[ev.Tid] = append(byTid[ev.Tid], ev)
			nx++
		case "i":
			if ev.Ts < 0 {
				return fmt.Errorf("trace: instant %q on tid %d has negative ts", ev.Name, ev.Tid)
			}
		case "M":
			// metadata, nothing to check
		default:
			return fmt.Errorf("trace: unexpected event phase %q", ev.Ph)
		}
	}
	if nx == 0 {
		return fmt.Errorf("trace: no duration events")
	}
	for tid, evs := range byTid {
		sort.SliceStable(evs, func(i, j int) bool {
			if evs[i].Ts != evs[j].Ts {
				return evs[i].Ts < evs[j].Ts
			}
			return evs[i].Dur > evs[j].Dur
		})
		// open holds the end timestamps of enclosing spans.
		var open []float64
		for i, ev := range evs {
			end := ev.Ts + ev.Dur
			for len(open) > 0 && ev.Ts >= open[len(open)-1] {
				open = open[:len(open)-1]
			}
			if len(open) > 0 && end > open[len(open)-1]+0.002 {
				// 2ns slack for microsecond rounding in the export.
				return fmt.Errorf("trace: tid %d event %d (%q @%v+%v) overlaps its enclosing span ending at %v",
					tid, i, ev.Name, ev.Ts, ev.Dur, open[len(open)-1])
			}
			open = append(open, end)
		}
	}
	return nil
}

// WriteSummary renders the per-phase accounting table: for each thread, the
// time spent in every phase, plus derived user compute (lifetime minus the
// union of recorded spans) — the Table-1-style breakdown of where a DMT
// thread's wall time goes.
func (r *Report) WriteSummary(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("trace: no phase report (tracing disabled?)")
	}
	fmt.Fprintf(w, "%-8s %10s %10s %10s %10s %10s %10s %10s %10s %10s %10s\n",
		"thread", "turn-us", "mon-us", "diff-us", "plan-us", "apply-us",
		"premrg-us", "lazy-us", "block-us", "user-us", "wall-us")
	var agg [NumPhases]time.Duration
	var aggUser, aggWall time.Duration
	for _, tl := range r.Threads {
		var tot [NumPhases]time.Duration
		for _, s := range tl.Spans {
			if s.Phase < NumPhases {
				tot[s.Phase] += time.Duration(s.Dur)
			}
		}
		wall := time.Duration(0)
		if tl.End >= tl.Start && tl.Start >= 0 {
			wall = time.Duration(tl.End - tl.Start)
		}
		user := wall - unionWithin(tl.Spans, tl.Start, tl.End)
		fmt.Fprintf(w, "%-8d %10d %10d %10d %10d %10d %10d %10d %10d %10d %10d\n",
			tl.ID,
			tot[PhaseTurnWait].Microseconds(), tot[PhaseMonitorWait].Microseconds(),
			tot[PhaseDiff].Microseconds(), tot[PhasePlanBuild].Microseconds(),
			tot[PhaseApply].Microseconds(), tot[PhasePremerge].Microseconds(),
			tot[PhaseLazyFlush].Microseconds(), tot[PhaseBlock].Microseconds(),
			user.Microseconds(), wall.Microseconds())
		for p := Phase(0); p < NumPhases; p++ {
			agg[p] += tot[p]
		}
		aggUser += user
		aggWall += wall
	}
	fmt.Fprintf(w, "%-8s %10d %10d %10d %10d %10d %10d %10d %10d %10d %10d\n",
		"total",
		agg[PhaseTurnWait].Microseconds(), agg[PhaseMonitorWait].Microseconds(),
		agg[PhaseDiff].Microseconds(), agg[PhasePlanBuild].Microseconds(),
		agg[PhaseApply].Microseconds(), agg[PhasePremerge].Microseconds(),
		agg[PhaseLazyFlush].Microseconds(), agg[PhaseBlock].Microseconds(),
		aggUser.Microseconds(), aggWall.Microseconds())
	return nil
}
