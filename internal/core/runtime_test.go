package core

import (
	"strings"
	"testing"

	"rfdet/internal/api"
	"rfdet/internal/mem"
)

// TestGarbageCollectionTriggers constrains the metadata space so slice
// commits cross the 90% threshold and verifies that GC runs and that the
// program still computes correctly afterwards (§4.5, §5.4).
func TestGarbageCollectionTriggers(t *testing.T) {
	opts := DefaultOptions()
	opts.MetadataCapacity = 64 * 1024 // tiny: force GC
	opts.GCThresholdPct = 50
	rep := run(t, opts, func(th api.Thread) {
		buf := th.Malloc(64 * 1024)
		mu := api.Addr(64)
		id := th.Spawn(func(c api.Thread) {
			for round := 0; round < 50; round++ {
				c.Lock(mu)
				for i := 0; i < 512; i++ {
					c.Store64(buf+api.Addr(8*i), uint64(round*1000+i))
				}
				c.Unlock(mu)
			}
		})
		// The main thread keeps acquiring, so slices keep being merged into
		// both memories and become collectable.
		for round := 0; round < 50; round++ {
			th.Lock(mu)
			th.Tick(10)
			th.Unlock(mu)
		}
		th.Join(id)
		th.Observe(th.Load64(buf + 8*511))
	})
	if rep.Stats.GCCount == 0 {
		t.Fatal("expected at least one GC pass with a 64 KiB metadata space")
	}
	if got := rep.Observations[0][0]; got != 49*1000+511 {
		t.Fatalf("final value %d, want %d", got, 49*1000+511)
	}
	if rep.Stats.MetadataBytes == 0 || rep.Stats.MetadataCapacity != 64*1024 {
		t.Fatalf("metadata accounting missing: %+v", rep.Stats)
	}
}

// TestMemoryFootprintEquations checks the §5.4 equations: RFDet's footprint
// is N*SharedMemory + MetadataSpaceMemory.
func TestMemoryFootprintEquations(t *testing.T) {
	rep := run(t, DefaultOptions(), func(th api.Thread) {
		_ = th.Malloc(100 * 1024) // shared allocation
		var ids []api.ThreadID
		for i := 0; i < 3; i++ {
			ids = append(ids, th.Spawn(func(c api.Thread) { c.Tick(10) }))
		}
		for _, id := range ids {
			th.Join(id)
		}
	})
	s := rep.Stats
	if s.SharedMemBytes < 100*1024 {
		t.Fatalf("SharedMemBytes = %d, want ≥ 100 KiB", s.SharedMemBytes)
	}
	want := 4*s.SharedMemBytes + s.MetadataBytes // N = 4 concurrent threads
	if s.RuntimeMemBytes != want {
		t.Fatalf("RuntimeMemBytes = %d, want N*shared+metadata = %d", s.RuntimeMemBytes, want)
	}
}

// TestSliceMergingCounter verifies §4.5 slice merging: repeated
// acquire/release of the same variable by one thread merges slices instead
// of cutting them.
func TestSliceMergingCounter(t *testing.T) {
	prog := func(th api.Thread) {
		a := th.Malloc(8)
		scratch := th.Malloc(8)
		mu := api.Addr(64)
		id := th.Spawn(func(c api.Thread) {
			for i := 0; i < 20; i++ {
				c.Lock(mu)
				c.Store64(a, uint64(i))
				c.Unlock(mu)
				// Work between the release and the re-acquire: without
				// merging this becomes its own slice; with merging it is
				// folded into the next critical section's slice.
				c.Store64(scratch, uint64(i)*3)
			}
		})
		th.Join(id)
		th.Observe(th.Load64(a), th.Load64(scratch))
	}
	with := run(t, Options{SliceMerging: true}, prog)
	without := run(t, Options{}, prog)
	if with.Stats.SlicesMerged == 0 {
		t.Fatal("slice merging never fired on a re-acquire-heavy program")
	}
	if without.Stats.SlicesMerged != 0 {
		t.Fatal("slice merging fired while disabled")
	}
	if with.Stats.SlicesCreated >= without.Stats.SlicesCreated {
		t.Fatalf("merging should reduce slices: %d vs %d",
			with.Stats.SlicesCreated, without.Stats.SlicesCreated)
	}
	if with.Observations[0][0] != 19 || without.Observations[0][0] != 19 ||
		with.Observations[0][1] != 57 || without.Observations[0][1] != 57 {
		t.Fatal("merging changed results")
	}
}

// TestPrelockMovesPropagationOffCriticalPath verifies §4.5 prelock: with a
// heavily contended lock, a large share of propagated bytes is pre-merged
// while blocked (the paper reports ~80%).
func TestPrelockMovesPropagationOffCriticalPath(t *testing.T) {
	prog := func(th api.Thread) {
		buf := th.Malloc(32 * 1024)
		mu := api.Addr(64)
		var ids []api.ThreadID
		for w := 0; w < 3; w++ {
			ids = append(ids, th.Spawn(func(c api.Thread) {
				for round := 0; round < 10; round++ {
					c.Lock(mu)
					for i := 0; i < 1024; i++ {
						c.Store64(buf+api.Addr(8*i), c.Load64(buf+api.Addr(8*i))+1)
					}
					c.Unlock(mu)
				}
			}))
		}
		for _, id := range ids {
			th.Join(id)
		}
		th.Observe(th.Load64(buf))
	}
	opts := Options{Prelock: true}
	rep := run(t, opts, prog)
	if rep.Observations[0][0] != 30 {
		t.Fatalf("counter = %d, want 30", rep.Observations[0][0])
	}
	if rep.Stats.PrelockBytes == 0 {
		t.Fatal("prelock never pre-merged anything on a contended lock")
	}
	frac := float64(rep.Stats.PrelockBytes) / float64(rep.Stats.BytesPropagated)
	if frac < 0.3 {
		t.Fatalf("prelock pre-merged only %.0f%% of propagated bytes", 100*frac)
	}
	// The same program without prelock must compute the same result.
	base := run(t, Options{}, prog)
	if base.Observations[0][0] != 30 {
		t.Fatal("baseline result wrong")
	}
	if base.Stats.PrelockBytes != 0 {
		t.Fatal("prelock stats nonzero while disabled")
	}
}

// TestPrelockPlanSharing verifies the coalesced-propagation release path:
// on a heavily contended lock whose releases each commit several slices
// (the atomic op splits every critical section into multiple slices), the
// queued waiters collect identical slice lists, so the release builds one
// write plan and the remaining waiters reuse it instead of re-applying
// run by run. Six workers keep the grant queue deep enough that at least
// two waiters are in lockstep at each release: a waiter that queued
// mid-critical-section has pre-merged the holder's in-progress slices and
// legitimately collects a shorter list, so reuse needs two waiters whose
// last sync was the same earlier release.
func TestPrelockPlanSharing(t *testing.T) {
	prog := func(th api.Thread) {
		buf := th.Malloc(32 * 1024)
		atom := th.Malloc(8)
		mu := api.Addr(64)
		var ids []api.ThreadID
		for w := 0; w < 6; w++ {
			ids = append(ids, th.Spawn(func(c api.Thread) {
				for round := 0; round < 8; round++ {
					c.Lock(mu)
					// The atomic commits the current slice and publishes a
					// micro-slice, so the eventual unlock releases >= 2
					// fresh slices — enough to build a plan for.
					c.AtomicAdd64(atom, 1)
					for i := 0; i < 512; i++ {
						c.Store64(buf+api.Addr(8*i), c.Load64(buf+api.Addr(8*i))+1)
					}
					c.Unlock(mu)
				}
			}))
		}
		for _, id := range ids {
			th.Join(id)
		}
		th.Observe(th.Load64(buf), th.Load64(atom))
	}
	rep := run(t, Options{Prelock: true}, prog)
	if rep.Observations[0][0] != 48 || rep.Observations[0][1] != 48 {
		t.Fatalf("observations = %v, want [48 48]", rep.Observations[0])
	}
	if rep.Stats.PlanReuse == 0 {
		t.Fatal("no waiter ever reused a release's write plan on a contended chain")
	}
	if rep.Stats.BytesCoalescedAway == 0 {
		t.Fatal("overlapping propagated writes were never coalesced")
	}
	if rep.Stats.CollectScanned == 0 || rep.Stats.SliceListLen == 0 {
		t.Fatal("collection counters never moved")
	}

	// Same program with coalescing off: identical result, no plan activity.
	base := run(t, Options{Prelock: true, NoCoalesce: true}, prog)
	if base.Observations[0][0] != 48 || base.Observations[0][1] != 48 {
		t.Fatalf("NoCoalesce observations = %v, want [48 48]", base.Observations[0])
	}
	if base.Stats.PlanReuse != 0 || base.Stats.BytesCoalescedAway != 0 {
		t.Fatalf("NoCoalesce still planned: reuse=%d away=%d",
			base.Stats.PlanReuse, base.Stats.BytesCoalescedAway)
	}
}

// TestLazyWritesDeferApplication verifies §4.5 lazy writes: propagated
// modifications to never-accessed pages are pended, and pended runs
// coalesce.
func TestLazyWritesDeferApplication(t *testing.T) {
	prog := func(th api.Thread) {
		// Two regions: the child updates both; the parent only ever reads
		// region A, so region B's propagated updates should stay pended
		// until the final flush.
		regionA := th.Malloc(mem.PageSize)
		regionB := th.Malloc(mem.PageSize)
		mu := api.Addr(64)
		id := th.Spawn(func(c api.Thread) {
			for round := 0; round < 20; round++ {
				c.Lock(mu)
				c.Store64(regionA, uint64(round))
				for i := 0; i < 64; i++ {
					c.Store64(regionB+api.Addr(8*i), uint64(round*100+i))
				}
				c.Unlock(mu)
			}
		})
		for round := 0; round < 20; round++ {
			th.Lock(mu)
			_ = th.Load64(regionA) // touches region A only
			th.Unlock(mu)
		}
		th.Join(id)
		th.Observe(th.Load64(regionA), th.Load64(regionB+8*63))
	}
	rep := run(t, Options{LazyWrites: true}, prog)
	if rep.Stats.LazyPendingApplied == 0 {
		t.Fatal("lazy writes never pended/applied anything")
	}
	if rep.Stats.LazyRunsElided == 0 {
		t.Fatal("expected overlapping pended updates to coalesce")
	}
	if obs := rep.Observations[0]; obs[0] != 19 || obs[1] != 19*100+63 {
		t.Fatalf("lazy writes broke results: %v", obs)
	}
}

// TestPFMonitorCounters verifies that the page-protection monitor actually
// pays protect-alls and faults, and the CI monitor does not.
func TestPFMonitorCounters(t *testing.T) {
	prog := func(th api.Thread) {
		buf := th.Malloc(8 * mem.PageSize)
		mu := api.Addr(64)
		id := th.Spawn(func(c api.Thread) {
			for round := 0; round < 5; round++ {
				c.Lock(mu)
				for p := 0; p < 8; p++ {
					c.Store64(buf+api.Addr(p*mem.PageSize), uint64(round))
				}
				c.Unlock(mu)
			}
		})
		th.Join(id)
		th.Observe(th.Load64(buf))
	}
	pf := run(t, Options{Monitor: MonitorPF}, prog)
	ci := run(t, Options{Monitor: MonitorCI}, prog)
	if pf.Stats.PageFaults == 0 || pf.Stats.PageProtects == 0 {
		t.Fatalf("pf monitor counters empty: %+v", pf.Stats)
	}
	if ci.Stats.PageFaults != 0 || ci.Stats.PageProtects != 0 {
		t.Fatalf("ci monitor paid protection costs: %+v", ci.Stats)
	}
	if pf.Stats.StoresWithCopy == 0 || ci.Stats.StoresWithCopy == 0 {
		t.Fatal("both monitors must snapshot written pages")
	}
	if pf.OutputHash == 0 || pf.Observations[0][0] != ci.Observations[0][0] {
		t.Fatal("monitors disagree on results")
	}
}

// TestMainPreForkUnmonitored verifies §4.1: the main thread's modifications
// before the first pthread_create are not monitored (no snapshots), yet the
// children still see them through memory inheritance.
func TestMainPreForkUnmonitored(t *testing.T) {
	rep := run(t, DefaultOptions(), func(th api.Thread) {
		big := th.Malloc(64 * mem.PageSize)
		for p := 0; p < 64; p++ {
			th.Store64(big+api.Addr(p*mem.PageSize), uint64(p)+1)
		}
		preForkCopies := uint64(0) // snapshot count must still be 0 here
		id := th.Spawn(func(c api.Thread) {
			var sum uint64
			for p := 0; p < 64; p++ {
				sum += c.Load64(big + api.Addr(p*mem.PageSize))
			}
			c.Observe(sum)
		})
		th.Join(id)
		_ = preForkCopies
	})
	if got := rep.Observations[1][0]; got != 64*65/2 {
		t.Fatalf("child sum = %d, want %d", got, 64*65/2)
	}
	// The 64 pre-fork page writes must not have produced snapshots.
	if rep.Stats.StoresWithCopy != 0 {
		t.Fatalf("pre-fork stores were monitored: %d copies", rep.Stats.StoresWithCopy)
	}
}

// TestMisuseDiagnostics covers the deterministic failure paths.
func TestMisuseDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		prog api.ThreadFunc
		want string
	}{
		{"recursive lock", func(th api.Thread) {
			th.Lock(64)
			th.Lock(64)
		}, "recursive lock"},
		{"unlock unheld", func(th api.Thread) {
			th.Unlock(64)
		}, "unlock"},
		{"wait without mutex", func(th api.Thread) {
			th.Wait(128, 64)
		}, "cond wait"},
		{"join self", func(th api.Thread) {
			th.Join(0)
		}, "join of itself"},
		{"join unknown", func(th api.Thread) {
			th.Join(42)
		}, "unknown thread"},
		{"bad free", func(th api.Thread) {
			th.Free(123)
		}, "free"},
		{"barrier zero", func(th api.Thread) {
			th.Barrier(64, 0)
		}, "barrier"},
		{"panic in thread", func(th api.Thread) {
			panic("user bug")
		}, "panicked"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(DefaultOptions()).Run(tc.prog)
			if err == nil {
				t.Fatalf("%s: expected error", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
			}
		})
	}
}

// TestReportFields sanity-checks the report plumbing.
func TestReportFields(t *testing.T) {
	rep := run(t, DefaultOptions(), func(th api.Thread) {
		a := th.Malloc(8)
		th.Store64(a, 1)
		id := th.Spawn(func(c api.Thread) { c.Observe(7) })
		th.Join(id)
		th.Observe(9)
	})
	if rep.Threads != 2 {
		t.Fatalf("Threads = %d", rep.Threads)
	}
	if rep.VirtualTime == 0 {
		t.Fatal("VirtualTime not set")
	}
	if rep.Elapsed <= 0 {
		t.Fatal("Elapsed not set")
	}
	if len(rep.Observations) != 2 || rep.Observations[1][0] != 7 || rep.Observations[0][0] != 9 {
		t.Fatalf("observations: %v", rep.Observations)
	}
	if rep.Stats.Forks != 1 || rep.Stats.Joins != 1 {
		t.Fatalf("fork/join stats: %+v", rep.Stats)
	}
}

// TestAtomicCASSemantics exercises the §4.6 extension's compare-and-swap,
// including contention resolved deterministically.
func TestAtomicCASSemantics(t *testing.T) {
	rep := run(t, DefaultOptions(), func(th api.Thread) {
		word := th.Malloc(8)
		winner := th.Malloc(8)
		var ids []api.ThreadID
		for w := 0; w < 4; w++ {
			me := uint64(w + 1)
			ids = append(ids, th.Spawn(func(c api.Thread) {
				if c.AtomicCAS64(word, 0, me) {
					// Exactly one thread wins the race — deterministically.
					c.Store64(winner, me) // safe: only the winner writes
				}
			}))
		}
		for _, id := range ids {
			th.Join(id)
		}
		th.Observe(th.Load64(word), th.Load64(winner))
	})
	obs := rep.Observations[0]
	if obs[0] == 0 || obs[0] != obs[1] {
		t.Fatalf("CAS race resolved inconsistently: %v", obs)
	}
	// Re-run: the same thread must win every time.
	again := run(t, DefaultOptions(), func(th api.Thread) { th.Observe(1) })
	_ = again
	var first uint64
	for i := 0; i < 3; i++ {
		r := run(t, DefaultOptions(), func(th api.Thread) {
			word := th.Malloc(8)
			var ids []api.ThreadID
			for w := 0; w < 4; w++ {
				me := uint64(w + 1)
				ids = append(ids, th.Spawn(func(c api.Thread) {
					c.AtomicCAS64(word, 0, me)
				}))
			}
			for _, id := range ids {
				th.Join(id)
			}
			th.Observe(th.Load64(word))
		})
		if i == 0 {
			first = r.Observations[0][0]
		} else if r.Observations[0][0] != first {
			t.Fatal("CAS winner nondeterministic")
		}
	}
}

// TestSlicePropagationStats verifies the lowerlimit filter actually fires
// (redundant propagation is avoided, §4.3).
func TestSlicePropagationStats(t *testing.T) {
	rep := run(t, Options{}, func(th api.Thread) {
		a := th.Malloc(8)
		mu := api.Addr(64)
		id := th.Spawn(func(c api.Thread) {
			for i := 0; i < 10; i++ {
				c.Lock(mu)
				c.Store64(a, uint64(i))
				c.Unlock(mu)
			}
		})
		for i := 0; i < 10; i++ {
			th.Lock(mu)
			_ = th.Load64(a)
			th.Unlock(mu)
		}
		th.Join(id)
	})
	if rep.Stats.SlicesPropagated == 0 {
		t.Fatal("no propagation on a lock-sharing program")
	}
	if rep.Stats.SlicesFilteredLow == 0 {
		t.Fatal("the lowerlimit (redundant propagation) filter never fired")
	}
}
