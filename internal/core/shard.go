package core

import (
	"sync"

	"rfdet/internal/api"
	"rfdet/internal/trace"
	"rfdet/internal/vclock"
)

// The sharded commit monitor.
//
// The seed serialized every synchronization operation on one global mutex
// (the §4.1 monitor). PRs 1-3 moved diffing, plan building and application
// off that lock; what remained under it — syncVar mutation, clock joins,
// slice-pointer collection — still funneled all threads through a single
// cache line and a single futex. This file splits that state into per-
// address-range domains: each monShard owns the syncVar table for the
// sync-var addresses mapping to it, its own mutex, and a Louvre-style
// versioned release frontier (vclock.Frontier). Hot operations — Lock,
// Unlock, Wait, Signal/Broadcast, atomics — lock only the domain(s) owning
// their variables; thread lifecycle (spawn/join/exit), barriers, and GC
// take the slow-path global rendezvous (every domain plus exec.mu).
//
// Why sharding cannot change any deterministic observable: every mutation
// of monitor-guarded state is performed while holding the deterministic
// Kendo turn, and turn handoff goes through sync/atomic operations, so the
// turn itself already both totally orders and happens-before-orders all
// such mutations. The domain mutexes exist for the residual windows the
// turn does not cover — the abort path (exec.fail takes only exec.mu) and
// the tail of an operation between its clock tick and its mutex release —
// not for the determinism argument. The vector-clock math is untouched, so
// outputs, virtual times and traces are bit-identical for every ShardCount
// (asserted by TestFuzzShardCountAgrees and the seed-regression goldens).
//
// Lock order (deadlock freedom): domain mutexes in ascending shard id,
// then exec.mu last. A holder of exec.mu never waits on anything, and a
// holder of domain i only ever takes domains > i or exec.mu, so the
// wait-for graph is acyclic. Hot paths may take exec.mu while holding
// their domain (GC requests, abort); the rendezvous takes everything in
// the same ascending order.
type monShard struct {
	//detvet:notguarded assigned once at startup, immutable thereafter
	id int
	//detvet:lockorder 10
	mu sync.Mutex //detvet:nativesync one commit-monitor domain (§4.1 sharded); taken only in ascending shard order, before exec.mu.
	// syncvars is the domain's slice of the internal synchronization
	// variable table: every api.Addr with shardFor(a) == this shard.
	//detvet:guardedby mu
	syncvars map[api.Addr]*syncVar
	// frontier is the domain's Louvre-style versioned release frontier:
	// advanced on every release performed in the domain, its version
	// stamped into the release record (syncVar.lastVer). Cross-domain
	// acquires join release timestamps that the stamping domain's frontier
	// covers at the stamped version — the invariant validateLocked checks.
	//detvet:guardedby mu
	frontier vclock.Frontier
	// releases counts releases stamped by this domain; crossAcquires
	// counts acquires whose happens-before edge came from a release the
	// acquirer's previous domain did not stamp. Mutated under mu,
	// aggregated into Report.Stats.
	//detvet:guardedby mu
	releases      uint64
	crossAcquires uint64 //detvet:guardedby mu
}

// maxShards bounds Options.ShardCount; beyond the core count there is
// nothing left to separate.
const maxShards = 64

// shardRangeShift is the address-range granularity of the shard map:
// consecutive 64-byte ranges map to consecutive domains, so sync vars
// packed into one structure spread across domains while a var and its
// neighbors on the same cache line stay together.
const shardRangeShift = 6

// shardFor maps a sync-var address to its owning domain.
func (e *exec) shardFor(a api.Addr) *monShard {
	return e.shards[(uint64(a)>>shardRangeShift)%uint64(len(e.shards))]
}

// syncvar returns (creating if needed) the internal synchronization
// variable at address a within this domain. Caller holds the domain mutex.
//
//detvet:holds mu
func (sh *monShard) syncvar(a api.Addr) *syncVar {
	sv, ok := sh.syncvars[a]
	if !ok {
		sv = &syncVar{owner: -1, lastTid: -1}
		sh.syncvars[a] = sv
	}
	return sv
}

// lockShard enters one commit-monitor domain on behalf of thread t,
// counting the acquisition for the contention statistics and recording the
// wait as a monitor-wait phase span (one span per logical monitor entry,
// so the span count reconciles with Stats.MonitorAcquires exactly as it
// did for the global monitor).
//
//detvet:acquires sh.mu
func (e *exec) lockShard(t *thread, sh *monShard) {
	ts := t.tb.Now()
	sh.mu.Lock()
	t.st.MonitorAcquires++
	t.tb.Span(trace.PhaseMonitorWait, ts)
}

// relockShard retakes a domain after an off-monitor work window opened
// inside a turn-held operation (endSliceDropShard, deferred propagation in
// atomicOp). If the execution aborted while the domain was released, the
// thread must unwind instead of continuing to mutate synchronization
// state — in particular it must not block, because failLocked has already
// delivered its abort wakeups.
//
//detvet:acquires sh.mu
func (e *exec) relockShard(t *thread, sh *monShard) {
	e.lockShard(t, sh)
	if e.aborted.Load() {
		sh.mu.Unlock()
		panic(errAborted)
	}
}

// lockShardSet enters a deduplicated ascending set of domains (built by
// shardSet) as one logical monitor entry.
//
//detvet:acquires *
func (e *exec) lockShardSet(t *thread, set []*monShard) {
	ts := t.tb.Now()
	for _, sh := range set {
		sh.mu.Lock()
	}
	t.st.MonitorAcquires++
	t.tb.Span(trace.PhaseMonitorWait, ts)
}

// unlockShardSet releases a set taken by lockShardSet, in reverse order.
//
//detvet:releases *
func unlockShardSet(set []*monShard) {
	for i := len(set) - 1; i >= 0; i-- {
		set[i].mu.Unlock()
	}
}

// shardSet builds the deduplicated, ascending-id domain set for a group of
// sync-var addresses into t's scratch buffer (valid until the thread's
// next shardSet call).
func (t *thread) shardSet(addrs ...api.Addr) []*monShard {
	set := t.shardScratch[:0]
	for _, a := range addrs {
		set = insertShard(set, t.exec.shardFor(a))
	}
	t.shardScratch = set
	return set
}

// insertShard inserts sh into an ascending-id set, keeping it sorted and
// deduplicated. Sets are tiny (≤ 1 + waiters woken by one signal), so
// insertion sort is the right tool.
func insertShard(set []*monShard, sh *monShard) []*monShard {
	i := 0
	for ; i < len(set); i++ {
		if set[i].id == sh.id {
			return set
		}
		if set[i].id > sh.id {
			break
		}
	}
	set = append(set, nil)
	copy(set[i+1:], set[i:])
	set[i] = sh
	return set
}

// rendezvous is the slow-path global monitor entry: every domain in
// ascending order, then exec.mu. Thread lifecycle (Spawn, Join,
// threadExit) and barriers use it because they mutate cross-domain state —
// the thread table, live/blocked accounting read by the deadlock check,
// blocked threads' spaces during the barrier merge. While a rendezvous is
// held, no hot path can be inside any domain, so the global operations see
// (and the seed-equivalence argument relies on) exactly the quiescent
// state the single global monitor provided.
//
//detvet:acquires *
func (e *exec) rendezvous(t *thread) {
	ts := t.tb.Now()
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	e.mu.Lock()
	t.holdsGlobal = true
	t.st.MonitorAcquires++
	t.st.RendezvousOps++
	t.tb.Span(trace.PhaseMonitorWait, ts)
}

// releaseRendezvous exits a rendezvous: exec.mu first, then the domains in
// descending order.
//
//detvet:releases *
func (e *exec) releaseRendezvous(t *thread) {
	t.holdsGlobal = false
	e.mu.Unlock()
	for i := len(e.shards) - 1; i >= 0; i-- {
		e.shards[i].mu.Unlock()
	}
}

// maybeGC runs a slice garbage-collection pass when a commit crossed the
// metadata threshold. The pass itself stays a global operation — it reads
// every live thread's clock and trims every slice-pointer list — so it
// synchronizes on exec.mu: the caller holds the deterministic turn (every
// clock and list is quiescent) and exec.mu orders the pass against the
// abort path and concurrent rendezvous holders. Hot paths call this while
// still holding their domain's mutex, which the lock order (domains before
// exec.mu) permits.
func (e *exec) maybeGC(t *thread, need bool) {
	if t.relaxElided {
		// A turn-elided commit (relax.go) lacks the turn-quiescence gcLocked
		// relies on; defer the request to this thread's next turn-held
		// operation. Any other thread's commit can still trigger the pass —
		// the threshold is global — so deferral only delays, never loses, a
		// collection.
		if need {
			t.gcDeferred = true
		}
		return
	}
	if t.gcDeferred {
		t.gcDeferred = false
		need = true
	}
	if !need {
		return
	}
	if t.holdsGlobal {
		e.gcLocked()
		return
	}
	e.mu.Lock()
	e.gcLocked()
	e.mu.Unlock()
}

// stampRelease advances the domain frontier for a release with timestamp
// tend and returns the release's stamped version.
//
//detvet:holds mu
func (sh *monShard) stampRelease(tend vclock.VC) uint64 {
	sh.releases++
	return sh.frontier.Advance(tend)
}
