package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"rfdet/internal/api"
	"rfdet/internal/kendo"
	"rfdet/internal/mem"
	"rfdet/internal/racecheck"
	"rfdet/internal/slicestore"
	"rfdet/internal/stats"
	"rfdet/internal/trace"
	"rfdet/internal/vclock"
	"rfdet/internal/vtime"
)

// thread is one logical DMT thread: a private address space, a DLRC vector
// clock, the slice-pointer list of §4.3, and the current slice's monitoring
// state. A thread struct is mutated by its own goroutine, or — for the
// monitor-guarded fields — by other threads holding the relevant
// commit-monitor domain (or the rendezvous) while this thread is provably
// blocked (lock grant, barrier merge).
type thread struct {
	exec *exec
	id   api.ThreadID
	fn   api.ThreadFunc
	proc *kendo.Proc

	// lastShard is the id of the commit-monitor domain of this thread's
	// most recent release or variable acquire, -1 before the first
	// (cross-domain acquire accounting; shard.go). holdsGlobal marks that
	// the thread currently holds the global rendezvous, which routes GC
	// requests straight to gcLocked. shardScratch is the reusable buffer
	// behind shardSet.
	lastShard    int32
	holdsGlobal  bool
	shardScratch []*monShard

	// space is the thread's private view of shared memory.
	space *mem.Space
	// vtime is the DLRC vector clock (§4.2).
	vtime vclock.VC
	// vt is the thread's virtual time under the internal/vtime cost model.
	vt vtime.Time
	// monitoring is false only in the main thread before its first
	// pthread_create (§4.1).
	monitoring bool
	// noComm marks a thread the programmer hinted as never-communicating
	// (Options.NoCommHint): its clock is excluded from the GC frontier.
	noComm bool

	// slicePtrs is the happens-before-ordered list of all slices visible to
	// this thread (§4.3). Guarded by exec.mu: other threads walk it during
	// their propagation.
	slicePtrs []*slicestore.Slice

	// Current-slice monitoring state: page snapshots in first-touch order.
	snapshots map[mem.PageID][]byte
	snapOrder []mem.PageID

	// Lazy-writes state (§4.5): pending modifications per page, applied on
	// first access. Non-nil iff the optimization is enabled. Each entry is a
	// coalescing PagePatch — so a hot page absorbs any number of propagated
	// updates and flushes in one pass — or, under Options.NoCoalesce, the
	// seed's raw run list.
	pending map[mem.PageID]*pendEntry

	// relaxPend parks elided propagation bytes per page (Options.RaceRelaxed,
	// relax.go) as coalescing last-writer-wins patches, recovered by the
	// fault handler on first local access at zero virtual-time cost (the
	// seed-model apply cost was charged at elision). Mutually exclusive with
	// pending by construction: elision requires eager application
	// (pending == nil), so a page is never in both layers.
	//detvet:notguarded thread-local: only this thread's fault handler and elision path touch it, never another thread
	relaxPend map[mem.PageID]*mem.PagePatch
	// readEvd is the thread's published cumulative read evidence for the
	// propagation-elision veto (relax.go); peers read it lock-free.
	readEvd atomic.Pointer[readEvidence]
	// histMu guards the cross-thread-readable deterministic history — vtime
	// and slicePtrs — against this thread's own off-turn mutation during a
	// relaxed (turn-elided) operation. Leaf mutex: a holder takes no other
	// lock. Memory-safety only; every propagation decision still derives
	// from the vector-clock values, never from mutex arrival order.
	//detvet:lockorder 80
	histMu sync.Mutex //detvet:nativesync leaf guard for off-turn history mutation under RaceRelaxed; no ordering role.
	// relaxElided marks that the current synchronization operation runs with
	// its turn-wait elided; gcDeferred queues a GC request that arrived
	// during such an operation for the next turn-held one (gcLocked requires
	// the turn-quiescence its caller normally guarantees).
	//detvet:notguarded thread-local flag, set and cleared by this thread around its own operation
	relaxElided bool
	gcDeferred  bool //detvet:notguarded thread-local flag, consulted only by this thread's next turn-held operation

	// preMerged records slices applied by a prelock pre-merge (§4.5) so the
	// eventual acquire skips them. Nil when no pre-merge is outstanding.
	preMerged map[*slicestore.Slice]bool

	// sliceReads accumulates the current slice's harvested read ranges
	// (Options.RaceDetect only): finishSlice drains the space's read tracker
	// here, commitSliceLocked hands them to the detector.
	sliceReads []racecheck.Range

	// pendingSignal carries the cond-signal release record from the
	// signaler to this waiter (set under exec.mu while the waiter sleeps).
	pendingSignal *signalRecord

	wake chan wakeEvent
	// traceSeq orders this thread's own trace events (trace.go sorts the
	// global trace by deterministic keys, not by arrival).
	traceSeq uint64
	// tb is the thread's phase-trace buffer (nil unless Options.PhaseTrace).
	// Appended to by this thread's goroutine, or — while this thread is
	// provably blocked — by another thread under exec.mu, the same ownership
	// discipline as st.
	tb *trace.ThreadBuf
	// blockStart is the epoch-relative instant this thread began blocking,
	// captured under the monitor in blockLocked so that spans recorded on the
	// thread's behalf by other goroutines (premerge, barrier merge) provably
	// nest inside the block span.
	blockStart int64
	// blockedOn describes the current block site for deadlock diagnostics.
	blockedOn string
	joiners   []*thread
	exitV     vclock.VC
	exitVT    vtime.Time

	st  api.Stats
	obs []uint64
}

// ID returns the deterministic thread ID.
func (t *thread) ID() api.ThreadID { return t.id }

// Tick advances the Kendo logical clock and virtual time by n instructions.
func (t *thread) Tick(n uint64) {
	t.proc.Tick(n)
	t.vt += vtime.Time(n) * vtime.MemOp
}

// Observe appends values to the deterministic output log.
func (t *thread) Observe(vals ...uint64) {
	t.obs = append(t.obs, vals...)
}

//
// Memory accesses. Every load/store ticks the Kendo clock by one, mirroring
// the paper's per-basic-block memory-instruction counting (§4.1).
//

func (t *thread) loadTick() {
	t.proc.Tick(1)
	t.st.Loads++
	t.vt += vtime.MemOp
}

func (t *thread) storeTick() {
	t.proc.Tick(1)
	t.st.Stores++
	t.vt += vtime.MemOp
}

// recordStore is the CI monitor's store instrumentation (Figure 4): on the
// first store to a shared page within the current slice, snapshot the page.
// The PF monitor performs the same snapshot in the protection-fault handler
// instead.
func (t *thread) recordStore(a, n uint64) {
	if !t.monitoring || t.exec.opts.Monitor != MonitorCI {
		return
	}
	t.vt += vtime.StoreCheck
	first, last := mem.PageOf(a), mem.PageOf(a+n-1)
	for pid := first; ; pid++ {
		if _, ok := t.snapshots[pid]; !ok {
			// Pending lazy modifications must land before the snapshot so
			// the diff baseline reflects everything that happens-before
			// this slice.
			if t.pending != nil {
				if _, has := t.pending[pid]; has {
					t.flushPage(pid)
				}
			}
			// Likewise elided propagation bytes (relax.go): the snapshot
			// baseline must include them or the diff would claim them as
			// this slice's own writes.
			if _, has := t.relaxPend[pid]; has {
				t.relaxFlushPage(pid)
			}
			t.takeSnapshot(pid)
		}
		if pid == last {
			break
		}
	}
}

// pendEntry is one page's lazily pended remote modifications: a coalescing
// last-writer-wins patch by default, or the seed's raw run list under
// Options.NoCoalesce. Exactly one of the two fields is in use per exec.
type pendEntry struct {
	patch *mem.PagePatch
	raw   []mem.Run
}

// pendEntryFor returns (creating if needed) the pending entry for page pid,
// in the representation the execution's options select.
func (t *thread) pendEntryFor(pid mem.PageID) *pendEntry {
	pe := t.pending[pid]
	if pe == nil {
		pe = &pendEntry{}
		if !t.exec.opts.NoCoalesce {
			pe.patch = mem.NewPagePatch(pid)
		}
		t.pending[pid] = pe
	}
	return pe
}

// takeSnapshot copies the page into the metadata space (Figure 4, lines
// 5-7).
func (t *thread) takeSnapshot(pid mem.PageID) {
	t.exec.store.AllocSnapshot(int(t.id))
	if t.snapshots == nil {
		t.snapshots = make(map[mem.PageID][]byte)
	}
	t.snapshots[pid] = t.space.Snapshot(pid)
	t.snapOrder = append(t.snapOrder, pid)
	t.st.StoresWithCopy++
	t.vt += vtime.SnapshotPage
}

// onFault is the simulated SIGSEGV handler: it serves lazy-write flushes
// (ProtNone pages with pended modifications) and, under the PF monitor,
// first-touch page snapshots (ProtRead write faults).
func (t *thread) onFault(pid mem.PageID, write bool) {
	if t.pending != nil {
		if _, has := t.pending[pid]; has {
			t.flushPage(pid)
		}
	}
	if _, has := t.relaxPend[pid]; has {
		t.relaxFlushPage(pid)
	}
	if t.monitoring && t.exec.opts.Monitor == MonitorPF {
		if _, ok := t.snapshots[pid]; !ok {
			if write {
				t.st.PageFaults++
				t.vt += vtime.Fault
				t.takeSnapshot(pid)
				t.space.Protect(pid, mem.ProtRW)
			} else {
				// A read fault can only come from a lazy flush; restore
				// write protection so the first store still snapshots.
				t.space.Protect(pid, mem.ProtRead)
			}
			return
		}
	}
	t.space.Protect(pid, mem.ProtRW)
}

func (t *thread) Load8(a api.Addr) uint8 {
	t.loadTick()
	return t.space.Load8(uint64(a))
}

func (t *thread) Store8(a api.Addr, v uint8) {
	t.storeTick()
	t.recordStore(uint64(a), 1)
	t.space.Store8(uint64(a), v)
}

func (t *thread) Load32(a api.Addr) uint32 {
	t.loadTick()
	return t.space.Load32(uint64(a))
}

func (t *thread) Store32(a api.Addr, v uint32) {
	t.storeTick()
	t.recordStore(uint64(a), 4)
	t.space.Store32(uint64(a), v)
}

func (t *thread) Load64(a api.Addr) uint64 {
	t.loadTick()
	return t.space.Load64(uint64(a))
}

func (t *thread) Store64(a api.Addr, v uint64) {
	t.storeTick()
	t.recordStore(uint64(a), 8)
	t.space.Store64(uint64(a), v)
}

func (t *thread) LoadF64(a api.Addr) float64 { return math.Float64frombits(t.Load64(a)) }

func (t *thread) StoreF64(a api.Addr, v float64) { t.Store64(a, math.Float64bits(v)) }

func (t *thread) ReadBytes(a api.Addr, buf []byte) {
	if len(buf) == 0 {
		return
	}
	t.proc.Tick(uint64(len(buf)))
	t.st.Loads++
	t.vt += vtime.Time(len(buf)) * vtime.MemOp
	t.space.ReadBytes(uint64(a), buf)
}

func (t *thread) WriteBytes(a api.Addr, data []byte) {
	if len(data) == 0 {
		return
	}
	t.proc.Tick(uint64(len(data)))
	t.st.Stores++
	t.vt += vtime.Time(len(data)) * vtime.MemOp
	t.recordStore(uint64(a), uint64(len(data)))
	t.space.WriteBytes(uint64(a), data)
}

// Malloc allocates shared memory from the thread's deterministic heap
// (§4.4).
func (t *thread) Malloc(size uint64) api.Addr {
	t.Tick(8)
	return api.Addr(t.exec.alloc.Malloc(int(t.id), size))
}

// Free releases an allocation. Cross-thread frees are ordered by the exec
// monitor (the allocator routes the block to the owning heap, §4.4).
func (t *thread) Free(a api.Addr) {
	t.Tick(8)
	if err := t.exec.alloc.Free(uint64(a)); err != nil {
		t.exec.fail(fmt.Errorf("rfdet: thread %d: %v", t.id, err))
		panic(errAborted)
	}
}

//
// Slice lifecycle (§4.2).
//

// beginSlice starts monitoring a new slice. Under the PF monitor this is
// where the whole shared mapping is write-protected — the per-slice cost
// that makes RFDet-pf slower than RFDet-ci on sync-heavy programs (§5.2).
// It touches only the thread's private space and may run off the monitor.
func (t *thread) beginSlice() {
	if !t.monitoring || t.exec.opts.Monitor != MonitorPF {
		return
	}
	n := t.space.ProtectAll(mem.ProtRead)
	t.st.PageProtects += uint64(n)
	t.vt += vtime.Time(n) * vtime.ProtectPage
	// Pages with pended lazy modifications must fault on reads too, as must
	// pages with parked elided propagation bytes (relax.go).
	//detvet:orderfree Protect is per-page idempotent state; iteration order is invisible.
	for pid := range t.pending {
		t.space.Protect(pid, mem.ProtNone)
	}
	//detvet:orderfree Protect is per-page idempotent state; iteration order is invisible.
	for pid := range t.relaxPend {
		t.space.Protect(pid, mem.ProtNone)
	}
}

// enableDirtyTracking turns on sub-page dirty tracking for the thread's
// space. Called wherever a thread starts (or resumes, after a barrier
// re-clone) monitoring modifications; a no-op under Options.FullPageDiff,
// which forces the seed's full-page scanning. With the race detector on it
// also (re-)enables per-slice read-set tracking, which rides the same
// lifecycle: a fresh or re-cloned space starts with tracking off.
func (t *thread) enableDirtyTracking() {
	if !t.exec.opts.FullPageDiff {
		t.space.SetDirtyTracking(true)
	}
	if t.exec.races != nil || t.exec.opts.RaceRelaxed {
		// RaceRelaxed needs the same read sets as the detector: they are the
		// published evidence the propagation-elision veto checks.
		t.space.SetReadTracking(true)
	}
}

// harvestReads drains the space's per-slice read tracker into t.sliceReads
// as absolute address ranges (Options.RaceDetect only; no-op otherwise).
// Called at every slice end, including slices that wrote nothing.
func (t *thread) harvestReads() {
	if !t.space.ReadTracking() {
		return
	}
	for _, pid := range t.space.ReadPages() {
		t.sliceReads = racecheck.RangesFromExtents(t.sliceReads, pid, t.space.ReadExtentsOf(pid))
	}
	t.space.ResetReads()
}

// minBytesForParallelDiff is the total scan size below which fanning diff
// tasks out to the worker pool is not worth the goroutine handoff. Equals
// the seed's threshold of 4 whole pages.
const minBytesForParallelDiff = 4 * mem.PageSize

// diffTaskBytes is the target scan size of one worker task. Extent groups —
// not whole pages — are the unit of fan-out, so a slice of sparsely written
// pages produces small tasks while one densely written page can still be
// diffed as a unit.
const diffTaskBytes = mem.PageSize

// diffTask is one worker-pool unit: a group of dirty extents on one page.
type diffTask struct {
	pid  mem.PageID
	exts []mem.Extent
}

// fullPageExtent is the scan list for a page without dirty-extent
// information: the whole page, exactly the seed's behavior.
var fullPageExtent = []mem.Extent{{Off: 0, Len: mem.PageSize}}

// finishSlice ends the current slice: each snapshotted page is byte-diffed
// against its current contents to produce the modification list (§4.2). It
// returns nil when the slice made no modifications. The snapshot memory is
// released immediately after diffing, as in §5.4.
//
// When the space carries sub-page dirty extents, only those extents are
// scanned (DiffPageExtents): the diff is O(written bytes), not O(snapshotted
// pages × page size). Pages without extent information — tracking off, or
// Options.FullPageDiff — fall back to a full-page scan. Either way the
// resulting modification list is byte-for-byte identical (see
// mem.DiffPageExtents for the argument), and the virtual-time model still
// charges vtime.DiffPage per snapshotted page: the paper's system cannot see
// sub-page extents, so the win is host wall time (DiffNanos), deliberately
// invisible to the deterministic virtual clock and the trace.
//
// finishSlice touches only thread-private state (the snapshots, the space)
// and runs OFF the exec monitor, between winning the deterministic turn and
// taking e.mu — the monitor decomposition that keeps the most expensive
// per-sync work from serializing unrelated threads. Large scans fan out as
// per-extent-group tasks to the bounded exec.diffSem worker pool; the runs
// are reassembled in (snapOrder, extent) order, so the modification list is
// identical to the sequential one.
func (t *thread) finishSlice() *slicestore.Slice {
	t.harvestReads()
	if len(t.snapOrder) == 0 {
		t.space.ResetDirty()
		return nil
	}
	start := stats.Now()
	useExtents := t.space.DirtyTracking() && !t.exec.opts.FullPageDiff
	tasks := make([]diffTask, 0, len(t.snapOrder))
	var scanBytes uint64
	for _, pid := range t.snapOrder {
		exts := fullPageExtent
		if useExtents {
			if de := t.space.DirtyExtentsOf(pid); de != nil {
				exts = de
			}
		}
		bytes := mem.ExtentBytes(exts)
		t.st.DirtyExtents += uint64(len(exts))
		t.st.DiffBytesScanned += bytes
		if bytes < mem.PageSize {
			t.st.DiffBytesSkipped += mem.PageSize - bytes
		}
		scanBytes += bytes
		if bytes <= diffTaskBytes || len(exts) == 1 {
			tasks = append(tasks, diffTask{pid: pid, exts: exts})
			continue
		}
		// A heavily written page splits into several tasks so the pool can
		// balance it; group boundaries fall on extent boundaries, which are
		// also run boundaries, so reassembly stays exact.
		var group []mem.Extent
		var groupBytes uint64
		for _, e := range exts {
			group = append(group, e)
			groupBytes += uint64(e.Len)
			if groupBytes >= diffTaskBytes {
				tasks = append(tasks, diffTask{pid: pid, exts: group})
				group, groupBytes = nil, 0
			}
		}
		if len(group) > 0 {
			tasks = append(tasks, diffTask{pid: pid, exts: group})
		}
	}
	perTask := make([][]mem.Run, len(tasks))
	diffOne := func(i int) {
		tk := tasks[i]
		perTask[i] = mem.DiffPageExtents(tk.pid, t.snapshots[tk.pid], t.space.PageData(tk.pid), tk.exts)
	}
	if len(tasks) > 1 && scanBytes >= minBytesForParallelDiff && cap(t.exec.diffSem) > 1 {
		var wg sync.WaitGroup //detvet:nativesync joins the bounded diff workers below.
		for i := range tasks {
			//detvet:nativesync non-blocking token acquire; on saturation the diff runs inline.
			select {
			case t.exec.diffSem <- struct{}{}:
				wg.Add(1)
				//detvet:nativesync bounded diffSem worker: results reassemble in (snapOrder, extent) order.
				go func(i int) {
					defer wg.Done()
					diffOne(i)
					<-t.exec.diffSem
				}(i)
			default:
				// Pool saturated: diff inline rather than queueing.
				diffOne(i)
			}
		}
		wg.Wait()
	} else {
		for i := range tasks {
			diffOne(i)
		}
	}
	var mods []mem.Run
	for i := range tasks {
		mods = append(mods, perTask[i]...)
	}
	for _, pid := range t.snapOrder {
		t.exec.store.FreeSnapshot(int(t.id))
		t.vt += vtime.DiffPage
		// The diff has consumed the snapshot; recycle its pooled buffer.
		mem.PutPageBuf(t.snapshots[pid])
		delete(t.snapshots, pid)
	}
	t.snapOrder = t.snapOrder[:0]
	t.space.ResetDirty()
	el := stats.Since(start)
	t.st.DiffNanos += uint64(el)
	t.tb.SpanDur(trace.PhaseDiff, start, el)
	if len(mods) == 0 {
		return nil
	}
	return &slicestore.Slice{
		Tid:   int32(t.id),
		Time:  t.vtime.Clone(),
		Mods:  mods,
		Bytes: mem.RunBytes(mods),
	}
}

// commitSliceLocked publishes a slice finished off-monitor: it appends the
// slice (if any) to the metadata space and this thread's slice-pointer list,
// then advances the thread's vector clock so every later slice is strictly
// newer (§4.2). It returns the pre-bump clock — the timestamp a release
// operation must publish as lastTime: using the post-bump clock would let a
// slice committed later (with the bumped component) appear already-seen to a
// thread that joined this release's time, silently losing its modifications.
func (t *thread) commitSliceLocked(s *slicestore.Slice) vclock.VC {
	tend := t.vtime.Clone()
	if s != nil {
		t.st.SlicesCreated++
		// histMu: under RaceRelaxed this commit may run off the turn (a
		// turn-elided op on a thread-local variable), concurrent with a
		// turn-held peer walking this list (collectLocked) or cloning this
		// clock (prelockLocked). The list's *contents* cannot confuse such a
		// reader — this slice's own clock component strictly exceeds any
		// upper bound a reader could hold — so the guard is traversal
		// memory-safety only.
		t.histMu.Lock()
		t.slicePtrs = append(t.slicePtrs, s)
		t.histMu.Unlock()
		t.exec.maybeGC(t, t.exec.store.Commit(s))
	}
	if t.exec.races != nil || t.exec.opts.RaceRelaxed {
		t.recordAccessLocked(s, tend)
	}
	t.histMu.Lock()
	t.vtime = t.vtime.Bump(int(t.id))
	t.histMu.Unlock()
	return tend
}

// recordAccessLocked hands the just-committed slice's access footprint —
// writes from its modification list, reads harvested by finishSlice — to the
// race detector, stamped with the slice's pre-bump clock, and (under
// RaceRelaxed) extends the thread's published read evidence for the
// propagation-elision veto. Commits from turn-elided operations reach this
// off the turn; the detector's own mutex serializes the appends and
// Analyze's deterministic sort orders the report, so the report stays
// byte-identical. Charges no virtual time.
func (t *thread) recordAccessLocked(s *slicestore.Slice, tend vclock.VC) {
	reads := racecheck.Normalize(t.sliceReads)
	t.sliceReads = nil
	if t.exec.opts.RaceRelaxed {
		t.publishReadEvidence(reads, tend)
	}
	if t.exec.races == nil {
		return
	}
	var writes []racecheck.Range
	if s != nil {
		// Mods list pages in first-write order; normalize into one sorted
		// coalesced range list.
		writes = racecheck.Normalize(racecheck.RangesFromRuns(s.Mods))
	}
	if len(writes) == 0 && len(reads) == 0 {
		return
	}
	for _, r := range reads {
		t.st.RaceReadBytes += r.Len
	}
	t.st.RaceRecords++
	t.exec.races.Record(racecheck.Access{
		Tid:    int32(t.id),
		VT:     uint64(t.vt),
		Clock:  tend.Clone(),
		Writes: writes,
		Reads:  reads,
	})
}

// endSliceLocked ends the current slice entirely under the monitor: diff and
// commit in one step. Only paths that cannot pre-diff off-monitor use it —
// thread exit (the final slice is cut while the monitor already decides the
// exit) and Lock, which learns whether the slice even ends (slice merging)
// only from monitor-guarded state.
func (t *thread) endSliceLocked() vclock.VC {
	return t.commitSliceLocked(t.finishSlice())
}

// endSliceDropShard ends the current slice from within a domain section by
// dropping the domain mutex around the page diffing, then retaking it to
// commit. Safe because the caller holds the deterministic turn: every
// mutation of monitor-guarded synchronization state happens under the turn,
// so the state the caller was looking at cannot change while the domain is
// released.
//
//detvet:holds sh.mu
func (t *thread) endSliceDropShard(sh *monShard) vclock.VC {
	if len(t.snapOrder) == 0 {
		return t.endSliceLocked()
	}
	e := t.exec
	sh.mu.Unlock()
	s := t.finishSlice()
	e.relockShard(t, sh)
	return t.commitSliceLocked(s)
}

//
// Lazy writes (§4.5).
//

// pendSlice records a propagated slice's modifications as per-page pending
// state instead of applying them eagerly, and revokes access to the affected
// pages so the first access applies them. By default the runs land in the
// page's coalescing patch (later pends overwrite earlier ones immediately,
// so the eventual flush is one pass over unique bytes); under
// Options.NoCoalesce they are appended raw, as the seed did.
func (t *thread) pendSlice(s *slicestore.Slice) {
	byPage := mem.SplitRunsByPage(s.Mods)
	//detvet:orderfree pages are disjoint and each page's runs stay in list order; see TestPendSliceOrderFree.
	for pid, runs := range byPage {
		pe := t.pendEntryFor(pid)
		if pe.patch != nil {
			for _, r := range runs {
				pe.patch.AddRun(r)
			}
		} else if t.exec.opts.EpochStore {
			// The raw pend path retains run payloads until the page is
			// accessed — indefinitely, if it never is. Under the epoch store
			// those payloads live in segment arena memory that is recycled
			// once the slice is collected, so the pend must own copies.
			// (The patch path above copies in AddRun.)
			for _, r := range runs {
				pe.raw = append(pe.raw, mem.Run{Addr: r.Addr, Data: append([]byte(nil), r.Data...)})
			}
		} else {
			pe.raw = append(pe.raw, runs...)
		}
		t.space.Protect(pid, mem.ProtNone)
	}
	// Bookkeeping cost only: the writes themselves are deferred.
	t.vt += vtime.Time(len(s.Mods)) * 4
}

// pendPlan pends a coalesced write plan: each page patch's runs are absorbed
// into the page's pending patch (the runs of one plan are disjoint, and
// plans of successive propagations arrive in acquire order, so patch state
// stays the last-writer-wins image of everything pended). AddRun copies, so
// the plan's staging buffers may be released as soon as pendPlan returns.
// The per-slice bookkeeping virtual time is charged by the caller
// (applySlicesPlanned), exactly as pendSlice would charge it.
func (t *thread) pendPlan(plan *mem.WritePlan) {
	for _, pp := range plan.Patches {
		pe := t.pendEntryFor(pp.Page())
		pp.ForEachRun(func(r mem.Run) { pe.patch.AddRun(r) })
		t.space.Protect(pp.Page(), mem.ProtNone)
	}
}

// flushPage applies the pended modifications for one page, in propagation
// order, and restores access. The virtual-time cost counts each byte once
// even if multiple propagations pended overlapping updates — the
// "just one update" saving of §4.5. With the coalescing patch the host-time
// cost matches the model: the distinct-byte set is already materialized and
// the apply is a single pass; the raw (NoCoalesce) path recounts it the
// seed's way.
func (t *thread) flushPage(pid mem.PageID) {
	ts := t.tb.Now()
	defer t.tb.Span(trace.PhaseLazyFlush, ts)
	pe := t.pending[pid]
	delete(t.pending, pid)
	t.space.Protect(pid, mem.ProtRW)
	if pe.patch != nil {
		distinct := pe.patch.UniqueBytes()
		t.space.ApplyPatch(pe.patch)
		t.st.LazyPendingApplied += pe.patch.RawRuns()
		t.st.LazyRunsElided += pe.patch.RawBytes() - distinct
		t.vt += vtime.ApplyCost(1, distinct)
		pe.patch.Release()
		return
	}
	runs := pe.raw
	var touched [mem.PageSize]bool
	distinct := uint64(0)
	for _, r := range runs {
		off := r.Addr & mem.PageMask
		for i := range r.Data {
			if !touched[off+uint64(i)] {
				touched[off+uint64(i)] = true
				distinct++
			}
		}
	}
	t.space.ApplyRuns(runs)
	t.st.LazyPendingApplied += uint64(len(runs))
	t.st.LazyRunsElided += mem.RunBytes(runs) - distinct
	t.vt += vtime.ApplyCost(1, distinct)
}

// flushAllPending applies every pended page in deterministic order (thread
// exit, barrier merge, final memory hashing).
func (t *thread) flushAllPending() {
	if len(t.pending) == 0 {
		return
	}
	pids := make([]mem.PageID, 0, len(t.pending))
	for pid := range t.pending {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		t.flushPage(pid)
	}
}
