package core

// Race-aware ordering relaxation (Options.RaceRelaxed): use race evidence to
// skip the two costs the deterministic machinery pays even when no
// communication is happening — the Kendo turn-wait spin before every
// synchronization operation, and the propagation apply that copies every
// peer's modifications into the acquirer's private space.
//
// Prong 1 — propagation elision. When a propagated slice's write extents are
// disjoint from every read extent an unordered peer has published, applying
// it eagerly is (heuristically) wasted work: nobody is looking at those
// bytes. The elided slice's bytes are parked in a per-thread patch layer
// (relaxPend) with the affected pages protection-stripped, exactly like the
// lazy-writes pend; if the prediction turns out wrong and the thread *does*
// touch an elided page, the fault handler flushes the patch first, so every
// deterministic read still observes exactly the value the seed model would
// have produced. The full seed-model virtual-time cost of the apply is
// charged at elision time and the recovery flush charges nothing, which
// makes the elision decision free to depend on host-timed evidence: outputs,
// vtimes and traces are bit-identical whether or not a slice was elided.
//
// Prong 2 — profile-guided turn-wait elision. A recording run (RaceDetect)
// emits the set of sync-var addresses only ever touched by one thread
// (racecheck.Profile, stability-merged across runs). A replay run loads the
// profile; a thread that owns a profiled address may skip the turn-wait spin
// for Lock/Unlock/atomic on it, because an operation on a thread-local
// variable commutes with every other thread's synchronization: it collects
// only its own slices, mutates only its own syncvar, and its Kendo clock
// only grows — so every other thread's deterministic decisions are exactly
// what they would have been had the operation spun for its turn. Ownership
// is re-verified under the variable's commit-monitor domain before any
// shared state is touched; the first contradiction (a second thread on a
// profiled address) permanently poisons the address and falls back to the
// seed's full ordering (Stats.RelaxUnsafeFallbacks).
//
// The prong-2 guarantee is certification, not unconditional equivalence: a
// run that finishes with RelaxUnsafeFallbacks == 0 had every elision on a
// genuinely thread-local variable and is bit-identical to the strict run in
// every deterministic observable — and a correct profile always yields zero
// fallbacks. A *wrong* profile is detected at the first contradicting
// synchronization and can never corrupt synchronization semantics (mutual
// exclusion, queueing, happens-before propagation completeness all hold;
// the owner's off-turn ops kept the full seed cost model), but the owner
// may already have run ahead of the strict admission order on the
// contradicted variable, so timing observables of a flagged run may differ
// from the strict run's. Fallback count > 0 therefore means: discard the
// profile as stale and re-record — which is exactly what the harness does.
//
// See DESIGN.md §15 for the full soundness argument.

import (
	"sort"
	"sync/atomic"

	"rfdet/internal/api"
	"rfdet/internal/mem"
	"rfdet/internal/racecheck"
	"rfdet/internal/slicestore"
	"rfdet/internal/trace"
	"rfdet/internal/vclock"
	"rfdet/internal/vtime"
)

// Phase-trace mark ops for the relaxation events; the reconciliation test
// matches their counts against the Stats counters.
const (
	markTurnElide     = "turn-elide"
	markSliceElide    = "slice-elide" // Addr carries the elided byte count
	markRelaxFallback = "relax-fallback"
)

// relaxPoisoned marks a profiled sync var contradicted by execution
// evidence: it never elides again for the rest of the run.
const relaxPoisoned = -1

// relaxEntry is the runtime claim state of one profiled sync-var address:
// 0 = unclaimed, tid+1 = owned by that thread, relaxPoisoned = contradicted.
type relaxEntry struct {
	owner atomic.Int64
}

// relaxState is the loaded relaxation profile: one entry per profiled
// address. The map itself is read-only after construction; all mutable state
// lives in the entries' atomics.
type relaxState struct {
	entries map[uint64]*relaxEntry
}

// newRelaxState builds the runtime claim table from a recorded profile. A
// nil or empty profile yields nil — prong 2 disabled, prong 1 unaffected.
func newRelaxState(p *racecheck.Profile) *relaxState {
	if p == nil || len(p.Local) == 0 {
		return nil
	}
	rs := &relaxState{entries: make(map[uint64]*relaxEntry, len(p.Local))}
	for _, a := range p.Local {
		rs.entries[a] = &relaxEntry{}
	}
	return rs
}

// entry returns the claim entry for addr, or nil when the address is not in
// the profile (or there is no profile at all).
func (rs *relaxState) entry(a api.Addr) *relaxEntry {
	if rs == nil {
		return nil
	}
	return rs.entries[uint64(a)]
}

// turnRelaxed is turn() with profile-guided elision: if the calling thread
// already owns addr's profile entry, a single non-spinning TryTurn probe
// replaces the WaitForTurn spin. The probe's outcome only selects between
// two host-equivalent executions — with the turn or without it — because a
// confirmed-thread-local operation commutes with every peer's
// synchronization; all deterministic state transitions (SyncBase charge,
// clock ticks, slice commits) are identical on both paths. Ownership is
// optimistic here and re-verified under the domain mutex by
// relaxAdmitLocked before any shared state is read.
func (t *thread) turnRelaxed(addr api.Addr) (en *relaxEntry, elided bool) {
	en = t.exec.relax.entry(addr)
	if en != nil && en.owner.Load() == int64(t.id)+1 {
		ok, mine := t.exec.sched.TryTurn(t.proc)
		if !ok {
			panic(errAborted)
		}
		t.vt += vtime.SyncBase
		if mine {
			return en, false
		}
		t.st.ElidedTurnWaits++
		t.tb.Mark(markTurnElide, uint64(addr))
		return en, true
	}
	t.turn()
	return en, false
}

// relaxAdmitLocked claims or re-verifies profile ownership of addr under the
// operation's commit-monitor domain, before the operation reads or mutates
// any domain-guarded state. Because every synchronization on addr runs
// relaxAdmitLocked under the same shard mutex, the claim protocol is
// serialized per address:
//
//   - unclaimed + turn-held op → claim (the first toucher in deterministic
//     turn order; elided ops can never reach an unclaimed entry because
//     elision requires prior ownership);
//   - owned by caller → confirmed, the elision stands;
//   - owned by another thread or poisoned → the profile is wrong for this
//     execution: poison permanently and count the fallback.
//
// An op that elided its turn-wait but failed confirmation reverts to the
// seed's full ordering: drop the domain (the real turn holder may need it),
// spin for the turn, retake the domain. Nothing was read or written under
// the optimistic assumption, so the fallback is indistinguishable from
// having spun in the first place.
//
// Once a thread's ownership is confirmed, no queueing state on the variable
// can involve another thread (any queuer would have poisoned the entry under
// this same mutex first), so the elided op's off-turn mutations stay
// strictly thread-local: its own syncvar, its own slice list, its own clock.
// It returns whether the operation still runs elided (true only when the
// elision stood confirmed); callers mirror that into t.relaxElided for the
// duration of the operation so GC requests arriving off-turn get deferred.
//
//detvet:holds sh.mu
func (t *thread) relaxAdmitLocked(sh *monShard, en *relaxEntry, addr api.Addr, elided bool) bool {
	if en == nil {
		return false
	}
	me := int64(t.id) + 1
	confirmed := false
	switch cur := en.owner.Load(); cur {
	case me:
		confirmed = true
	case 0:
		if !elided {
			en.owner.Store(me)
			confirmed = true
		}
	default:
		if cur != relaxPoisoned {
			en.owner.Store(relaxPoisoned)
			t.st.RelaxUnsafeFallbacks++
			t.tb.Mark(markRelaxFallback, uint64(addr))
		}
	}
	if elided && !confirmed {
		t.st.RelaxUnsafeFallbacks++
		t.tb.Mark(markRelaxFallback, uint64(addr))
		sh.mu.Unlock()
		ts := t.tb.Now()
		ok, waited := t.exec.sched.WaitForTurn(t.proc)
		if waited {
			t.st.TurnWaits++
			t.tb.Span(trace.PhaseTurnWait, ts)
		}
		if !ok {
			panic(errAborted)
		}
		// SyncBase was already charged by turnRelaxed; only the ordering is
		// being repaired here.
		t.exec.relockShard(t, sh)
		return false
	}
	return elided
}

// recordSync feeds the relaxation-profile recorder. No-op without race
// detection.
func (e *exec) recordSync(a api.Addr, tid api.ThreadID) {
	if e.races != nil {
		e.races.RecordSync(uint64(a), int32(tid))
	}
}

//
// Prong 1 — propagation elision.
//

// readEvidence is one thread's published cumulative read footprint: the
// coalesced union of every committed slice's harvested read ranges, stamped
// with the thread's clock as of the commit that last extended it. The struct
// is immutable once published (copy-on-write behind an atomic pointer), so
// the elision veto can read it without any lock. Evidence is deliberately
// cumulative and may be stale: stale evidence only makes the veto fire more
// often (a peer's old clock compares Unordered against more slices), never
// less — and even a missed veto is repaired by the fault-path recovery
// flush, so the evidence is a performance heuristic, not a soundness
// obligation.
type readEvidence struct {
	clock  vclock.VC
	ranges []racecheck.Range
	lo, hi uint64
}

// publishReadEvidence extends the thread's published read evidence with the
// just-committed slice's harvested reads. reads must be normalized; tend is
// retained (callers already treat it as immutable).
func (t *thread) publishReadEvidence(reads []racecheck.Range, tend vclock.VC) {
	if len(reads) == 0 {
		return
	}
	old := t.readEvd.Load()
	var merged []racecheck.Range
	if old != nil {
		merged = make([]racecheck.Range, 0, len(old.ranges)+len(reads))
		merged = append(merged, old.ranges...)
		merged = append(merged, reads...)
		merged = racecheck.Normalize(merged)
	} else {
		merged = append(merged, reads...)
	}
	ev := &readEvidence{clock: tend, ranges: merged,
		lo: merged[0].Addr, hi: merged[len(merged)-1].End()}
	t.readEvd.Store(ev)
}

// relaxElide reports whether propagation elision is enabled for this
// execution. Elision needs eager application (the lazy-writes pend charges
// its flush cost at deterministic points, which an elided pend would skip)
// and byte-granularity diffing (under FullPageDiff a recovery flush after a
// page snapshot would surface peer bytes as local modifications); the
// per-call sites additionally require t.pending == nil and no shared
// pre-built plan.
func (e *exec) relaxElide() bool {
	return e.opts.RaceRelaxed && !e.opts.FullPageDiff
}

// partitionElidable splits a propagation batch into the slices to apply
// eagerly and the slices to elide, preserving relative order within each
// group. A slice is elidable only if (a) no *other* slice in the batch
// touches any of its pages — the deferred flush is per page, so a shared
// page could reorder an elided write against an eager one — and (b) the
// read-evidence veto passes: its writes overlap no byte of the target's own
// evidence and no byte of any unordered live peer's evidence.
func (t *thread) partitionElidable(slices []*slicestore.Slice) (apply, elide []*slicestore.Slice) {
	peersp := t.exec.peers.Load()
	if peersp == nil {
		return slices, nil
	}
	peers := *peersp
	var pageOwner map[mem.PageID]int
	if len(slices) > 1 {
		pageOwner = make(map[mem.PageID]int)
		for i, s := range slices {
			forEachRunPage(s.Mods, func(pid mem.PageID) {
				if o, ok := pageOwner[pid]; !ok {
					pageOwner[pid] = i
				} else if o != i {
					pageOwner[pid] = -1
				}
			})
		}
	}
	for i, s := range slices {
		if t.elidableSlice(s, i, pageOwner, peers) {
			elide = append(elide, s)
		} else {
			apply = append(apply, s)
		}
	}
	if len(elide) == 0 {
		return slices, nil
	}
	return apply, elide
}

// elidableSlice is the per-slice elision decision; see partitionElidable.
func (t *thread) elidableSlice(s *slicestore.Slice, idx int, pageOwner map[mem.PageID]int, peers []*thread) bool {
	lo, hi, ok := mem.RunBounds(s.Mods)
	if !ok {
		return false
	}
	if pageOwner != nil {
		conflict := false
		forEachRunPage(s.Mods, func(pid mem.PageID) {
			if pageOwner[pid] != idx {
				conflict = true
			}
		})
		if conflict {
			return false
		}
	}
	var writes []racecheck.Range
	for _, u := range peers {
		ev := u.readEvd.Load()
		if ev == nil || ev.hi <= lo || hi <= ev.lo {
			continue
		}
		if writes == nil {
			writes = racecheck.Normalize(racecheck.RangesFromRuns(s.Mods))
		}
		if !racecheck.RangesOverlap(writes, ev.ranges) {
			continue
		}
		if u == t {
			// The target itself has read these bytes before; assume it will
			// again and keep the apply eager.
			return false
		}
		if s.Time.Compare(ev.clock) == vclock.Unordered {
			return false
		}
	}
	return true
}

// forEachRunPage calls fn for every page a modification list touches
// (with repeats across runs; callers dedup via their map).
func forEachRunPage(runs []mem.Run, fn func(mem.PageID)) {
	for _, r := range runs {
		if len(r.Data) == 0 {
			continue
		}
		last := mem.PageOf(r.Addr + uint64(len(r.Data)) - 1)
		for pid := mem.PageOf(r.Addr); ; pid++ {
			fn(pid)
			if pid == last {
				break
			}
		}
	}
}

// relaxPendSlice parks an elided slice's bytes in the relaxPend patch layer
// and protection-strips the affected pages so any later local access faults
// into relaxFlushPage first. The patch copies the bytes, so the slice itself
// is not retained.
func (t *thread) relaxPendSlice(s *slicestore.Slice) {
	if t.relaxPend == nil {
		t.relaxPend = make(map[mem.PageID]*mem.PagePatch)
	}
	byPage := mem.SplitRunsByPage(s.Mods)
	//detvet:orderfree pages are disjoint and each page's runs stay in list order, the same argument as pendSlice.
	for pid, runs := range byPage {
		p := t.relaxPend[pid]
		if p == nil {
			p = mem.NewPagePatch(pid)
			t.relaxPend[pid] = p
		}
		for _, r := range runs {
			p.AddRun(r)
		}
		t.space.Protect(pid, mem.ProtNone)
	}
}

// relaxFlushPage makes one page's elided propagation bytes resident. It
// charges no virtual time and no counters: the full seed-model apply cost
// was already charged when the slices were elided, which is exactly what
// keeps vtimes identical whether or not the prediction held.
func (t *thread) relaxFlushPage(pid mem.PageID) {
	p := t.relaxPend[pid]
	delete(t.relaxPend, pid)
	t.space.Protect(pid, mem.ProtRW)
	t.space.ApplyPatch(p)
	p.Release()
}

// relaxFlushForRuns flushes any relaxPend pages an eager modification-list
// apply is about to write, preserving propagation order per byte: elided
// bytes from earlier acquires become resident before newer bytes land.
func (t *thread) relaxFlushForRuns(runs []mem.Run) {
	if len(t.relaxPend) == 0 {
		return
	}
	forEachRunPage(runs, func(pid mem.PageID) {
		if _, has := t.relaxPend[pid]; has {
			t.relaxFlushPage(pid)
		}
	})
}

// relaxFlushForPlan is relaxFlushForRuns for a coalesced write plan.
func (t *thread) relaxFlushForPlan(plan *mem.WritePlan) {
	if len(t.relaxPend) == 0 {
		return
	}
	for _, pp := range plan.Patches {
		if _, has := t.relaxPend[pp.Page()]; has {
			t.relaxFlushPage(pp.Page())
		}
	}
}

// flushAllRelax makes every parked elided byte resident, in sorted page
// order. Called wherever the whole space must be current: thread exit
// (the final memory hash), spawn (the child clones the parent space) and
// the barrier leader's merge.
func (t *thread) flushAllRelax() {
	if len(t.relaxPend) == 0 {
		return
	}
	pids := make([]mem.PageID, 0, len(t.relaxPend))
	for pid := range t.relaxPend {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		t.relaxFlushPage(pid)
	}
}

// dropRelaxPend discards parked bytes without applying them — used when the
// whole space is about to be replaced (barrier re-clone).
func (t *thread) dropRelaxPend() {
	//detvet:orderfree map drain; entries are independent pooled buffers.
	for pid, p := range t.relaxPend {
		p.Release()
		delete(t.relaxPend, pid)
	}
}
