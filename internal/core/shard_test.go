package core

import (
	"testing"

	"rfdet/internal/api"
)

// crossShardChainProg builds a lock-handoff chain whose happens-before edges
// cross commit-monitor domains: A publishes x under m0 (one domain), B
// acquires m0, derives y from x and publishes both under m1 (a different
// domain), and C acquires only m1 — so C's view of x depends on the
// transitive edge A --m0--> B --m1--> C carrying A's modifications across a
// domain boundary. The generous ticks pin the admission order so the chain
// is the only schedule.
func crossShardChainProg(m0, m1 api.Addr) api.ThreadFunc {
	return func(th api.Thread) {
		x := th.Malloc(8)
		y := th.Malloc(8)

		// Touch both mutexes once so each carries a release record before
		// the chain runs: a cross-domain acquire is only counted when it
		// joins an existing record, so without this B's first Lock(m1)
		// would find a fresh sync var and no edge to cross.
		th.Lock(m0)
		th.Unlock(m0)
		th.Lock(m1)
		th.Unlock(m1)

		a := th.Spawn(func(c api.Thread) {
			c.Tick(100)
			c.Lock(m0)
			c.Store64(x, 1)
			c.Unlock(m0)
		})
		b := th.Spawn(func(c api.Thread) {
			c.Tick(10000)
			c.Lock(m0)
			v := c.Load64(x)
			c.Unlock(m0)
			c.Lock(m1)
			c.Store64(y, v+1)
			c.Unlock(m1)
		})
		cc := th.Spawn(func(c api.Thread) {
			c.Tick(100000)
			c.Lock(m1) // never touches m0's domain
			c.Observe(c.Load64(x), c.Load64(y))
			c.Unlock(m1)
		})

		th.Join(a)
		th.Join(b)
		th.Join(cc)
		th.Observe(th.Load64(x), th.Load64(y))
	}
}

// TestCrossShardLockHandoffChain verifies the transitive happens-before
// chain across domains, and that the domain bookkeeping noticed it: with
// four shards, m0 = 64 and m1 = 192 live in different domains, so B's and
// C's acquires must be counted as cross-domain and every release must be
// stamped by a domain frontier.
func TestCrossShardLockHandoffChain(t *testing.T) {
	opts := DefaultOptions()
	opts.ShardCount = 4
	opts.Validate = true
	m0, m1 := api.Addr(64), api.Addr(192)
	rep := run(t, opts, crossShardChainProg(m0, m1))

	if got := rep.Observations[3]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("C observed %v, want [1 2]: A's write did not cross the domain boundary", got)
	}
	if got := rep.Observations[0]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("main observed %v, want [1 2]", got)
	}
	if rep.Stats.MonitorShards != 4 {
		t.Fatalf("MonitorShards = %d, want 4", rep.Stats.MonitorShards)
	}
	if rep.Stats.ShardReleases == 0 {
		t.Fatal("no release was stamped by a domain frontier")
	}
	if rep.Stats.CrossShardAcquires == 0 {
		t.Fatal("the chain crosses domains but CrossShardAcquires = 0")
	}
	if rep.Stats.RendezvousOps == 0 {
		t.Fatal("spawn/join/exit should have used the global rendezvous")
	}
}

// TestShardCountInvariance runs the chain at every interesting shard count —
// including 0 (defaulted), 1 (the seed's single global domain), a count that
// does not divide the address range pattern, and the maximum — and requires
// bit-identical deterministic observables throughout.
func TestShardCountInvariance(t *testing.T) {
	m0, m1 := api.Addr(64), api.Addr(192)
	var wantHash uint64
	var wantVT uint64
	for _, n := range []int{0, 1, 3, 4, 64, 1000} {
		opts := DefaultOptions()
		opts.ShardCount = n
		opts.Validate = true
		rep := run(t, opts, crossShardChainProg(m0, m1))
		if wantHash == 0 {
			wantHash, wantVT = rep.OutputHash, rep.VirtualTime
			continue
		}
		if rep.OutputHash != wantHash || rep.VirtualTime != wantVT {
			t.Fatalf("ShardCount=%d: output=%#x vtime=%d differ from ShardCount-0 baseline output=%#x vtime=%d",
				n, rep.OutputHash, rep.VirtualTime, wantHash, wantVT)
		}
	}
}

// TestSingleShardHasNoCrossAcquires: with one domain every acquire is local,
// so the cross-domain counter must stay zero and the configured count must
// be echoed back.
func TestSingleShardHasNoCrossAcquires(t *testing.T) {
	opts := DefaultOptions()
	opts.ShardCount = 1
	rep := run(t, opts, crossShardChainProg(api.Addr(64), api.Addr(192)))
	if rep.Stats.MonitorShards != 1 {
		t.Fatalf("MonitorShards = %d, want 1", rep.Stats.MonitorShards)
	}
	if rep.Stats.CrossShardAcquires != 0 {
		t.Fatalf("CrossShardAcquires = %d with a single domain", rep.Stats.CrossShardAcquires)
	}
}
