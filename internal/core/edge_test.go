package core

import (
	"testing"

	"rfdet/internal/api"
	"rfdet/internal/mem"
)

// TestBarrierReuseAcrossGenerations drives one barrier through many
// generations with writes between them: every generation must merge every
// arrival's updates (the copy-on-write redistribution of §4.1 must reset
// cleanly).
func TestBarrierReuseAcrossGenerations(t *testing.T) {
	for _, opts := range allConfigs() {
		rep := run(t, opts, func(th api.Thread) {
			const n, gens = 3, 8
			cells := th.Malloc(8 * n)
			bar := api.Addr(64)
			ids := make([]api.ThreadID, 0, n-1)
			body := func(c api.Thread, me int) {
				for g := 0; g < gens; g++ {
					// Each thread bumps its own cell, then after the barrier
					// verifies it sees everyone's bump for this generation.
					c.Store64(cells+api.Addr(8*me), c.Load64(cells+api.Addr(8*me))+1)
					c.Barrier(bar, n)
					for k := 0; k < n; k++ {
						if got := c.Load64(cells + api.Addr(8*k)); got != uint64(g+1) {
							c.Observe(0xdead, uint64(g), uint64(k), got)
							return
						}
					}
					c.Barrier(bar, n) // generation separator
				}
				c.Observe(1)
			}
			for w := 1; w < n; w++ {
				w := w
				ids = append(ids, th.Spawn(func(c api.Thread) { body(c, w) }))
			}
			body(th, 0)
			for _, id := range ids {
				th.Join(id)
			}
		})
		for tid, obs := range rep.Observations {
			if len(obs) != 1 || obs[0] != 1 {
				t.Fatalf("opts %+v: thread %d saw stale generation data: %v", opts, tid, obs)
			}
		}
	}
}

// TestBroadcastWakesAllInOrder checks that broadcast moves every waiter to
// the mutex queue in deterministic order and each sees the predicate.
func TestBroadcastWakesAllInOrder(t *testing.T) {
	for _, opts := range allConfigs() {
		rep := run(t, opts, func(th api.Thread) {
			mu, cond := api.Addr(64), api.Addr(128)
			gate := th.Malloc(8)
			order := th.Malloc(8 * 8)
			idx := th.Malloc(8)
			var ids []api.ThreadID
			for w := 0; w < 4; w++ {
				ids = append(ids, th.Spawn(func(c api.Thread) {
					c.Lock(mu)
					for c.Load64(gate) == 0 {
						c.Wait(cond, mu)
					}
					i := c.Load64(idx)
					c.Store64(order+api.Addr(8*i), uint64(c.ID()))
					c.Store64(idx, i+1)
					c.Unlock(mu)
				}))
			}
			th.Tick(100000) // let all four wait first (deterministic order)
			th.Lock(mu)
			th.Store64(gate, 1)
			th.Broadcast(cond)
			th.Unlock(mu)
			for _, id := range ids {
				th.Join(id)
			}
			var got []uint64
			n := th.Load64(idx)
			for i := uint64(0); i < n; i++ {
				got = append(got, th.Load64(order+api.Addr(8*i)))
			}
			th.Observe(got...)
		})
		obs := rep.Observations[0]
		if len(obs) != 4 {
			t.Fatalf("opts %+v: %d waiters woke, want 4 (%v)", opts, len(obs), obs)
		}
		// Wake order is the deterministic wait order: ascending thread IDs
		// here, because the waiters queued in Kendo order.
		for i, tid := range obs {
			if tid != uint64(i+1) {
				t.Fatalf("opts %+v: wake order %v, want [1 2 3 4]", opts, obs)
			}
		}
	}
}

// TestSignalWithoutWaiterIsLost pins the pthreads semantics: a signal with
// no waiter does nothing (predicates must be rechecked, never assumed).
func TestSignalWithoutWaiterIsLost(t *testing.T) {
	rep := run(t, DefaultOptions(), func(th api.Thread) {
		mu, cond := api.Addr(64), api.Addr(128)
		flag := th.Malloc(8)
		th.Lock(mu)
		th.Signal(cond) // nobody waits: lost
		th.Unlock(mu)
		id := th.Spawn(func(c api.Thread) {
			c.Lock(mu)
			// The earlier signal must not wake this later waiter; only the
			// main thread's second signal does.
			for c.Load64(flag) == 0 {
				c.Wait(cond, mu)
			}
			c.Observe(c.Load64(flag))
			c.Unlock(mu)
		})
		th.Tick(100000)
		th.Lock(mu)
		th.Store64(flag, 5)
		th.Signal(cond)
		th.Unlock(mu)
		th.Join(id)
	})
	if rep.Observations[1][0] != 5 {
		t.Fatalf("waiter observed %v", rep.Observations[1])
	}
}

// TestMallocFreeReuseUnderRuntime exercises allocator reuse through the
// Thread API, including a cross-thread free ordered by the runtime.
func TestMallocFreeReuseUnderRuntime(t *testing.T) {
	rep := run(t, DefaultOptions(), func(th api.Thread) {
		a := th.Malloc(64)
		th.Store64(a, 7)
		holder := th.Malloc(8)
		th.Store64(holder, uint64(a))
		id := th.Spawn(func(c api.Thread) {
			// Cross-thread free of the parent's allocation.
			c.Free(api.Addr(c.Load64(holder)))
		})
		th.Join(id)
		b := th.Malloc(64) // parent reuses its freed block
		reused := uint64(0)
		if b == a {
			reused = 1
		}
		th.Observe(reused)
	})
	if rep.Observations[0][0] != 1 {
		t.Fatal("freed block was not reused by the owning heap")
	}
}

// TestWriteBytesAcrossPagesMonitored verifies multi-page WriteBytes is
// fully monitored under both monitors: every touched page's modifications
// propagate.
func TestWriteBytesAcrossPagesMonitored(t *testing.T) {
	for _, monitor := range []Monitor{MonitorCI, MonitorPF} {
		opts := DefaultOptions()
		opts.Monitor = monitor
		rep := run(t, opts, func(th api.Thread) {
			span := th.Malloc(3 * mem.PageSize)
			id := th.Spawn(func(c api.Thread) {
				data := make([]byte, 2*mem.PageSize+100)
				for i := range data {
					data[i] = byte(i * 13)
				}
				c.WriteBytes(span+100, data)
			})
			th.Join(id)
			buf := make([]byte, 2*mem.PageSize+100)
			th.ReadBytes(span+100, buf)
			ok := uint64(1)
			for i := range buf {
				if buf[i] != byte(i*13) {
					ok = 0
					break
				}
			}
			th.Observe(ok)
		})
		if rep.Observations[0][0] != 1 {
			t.Fatalf("monitor %v: multi-page write not fully propagated", monitor)
		}
	}
}

// TestManyThreads pushes past the typical benchmark widths.
func TestManyThreads(t *testing.T) {
	rep := run(t, DefaultOptions(), func(th api.Thread) {
		const n = 24
		ctr := th.Malloc(8)
		mu := api.Addr(64)
		var ids []api.ThreadID
		for i := 0; i < n; i++ {
			ids = append(ids, th.Spawn(func(c api.Thread) {
				c.Lock(mu)
				c.Store64(ctr, c.Load64(ctr)+1)
				c.Unlock(mu)
			}))
		}
		for _, id := range ids {
			th.Join(id)
		}
		th.Observe(th.Load64(ctr))
	})
	if rep.Observations[0][0] != 24 {
		t.Fatalf("counter = %d", rep.Observations[0][0])
	}
	if rep.Threads != 25 {
		t.Fatalf("threads = %d", rep.Threads)
	}
}

// TestNestedSpawn verifies grandchildren inherit transitively.
func TestNestedSpawn(t *testing.T) {
	rep := run(t, DefaultOptions(), func(th api.Thread) {
		x := th.Malloc(8)
		th.Store64(x, 11)
		child := th.Spawn(func(c api.Thread) {
			c.Store64(x, c.Load64(x)+1) // sees 11 via inheritance
			grand := c.Spawn(func(g api.Thread) {
				g.Store64(x, g.Load64(x)*2) // sees 12
			})
			c.Join(grand)
		})
		th.Join(child)
		th.Observe(th.Load64(x))
	})
	if rep.Observations[0][0] != 24 {
		t.Fatalf("x = %d, want 24", rep.Observations[0][0])
	}
}
