package core

import (
	"testing"

	"rfdet/internal/api"
)

// hintProg stresses the §5.4 pathology: non-communicating compute threads
// never acquire, so their stale vector clocks pin every other thread's
// slices in the metadata space — unless the eager-collection hint excludes
// them from the GC frontier.
func hintProg(rounds int) api.ThreadFunc {
	return func(th api.Thread) {
		buf := th.Malloc(64 * 1024)
		out := th.Malloc(8 * 8)
		mu := api.Addr(64)
		// One chatty worker generating lots of slices...
		chatty := th.Spawn(func(c api.Thread) {
			for round := 0; round < rounds; round++ {
				c.Lock(mu)
				for i := 0; i < 512; i++ {
					c.Store64(buf+api.Addr(8*i), uint64(round*7+i))
				}
				c.Unlock(mu)
			}
		})
		// ...two silent compute workers that never synchronize until exit
		// (thread IDs 2 and 3)...
		var silent []api.ThreadID
		for wIdx := 0; wIdx < 2; wIdx++ {
			slot := api.Addr(8 * wIdx)
			silent = append(silent, th.Spawn(func(c api.Thread) {
				var acc uint64
				for i := 0; i < 1000; i++ {
					acc = acc*31 + uint64(i)
					c.Tick(20)
				}
				c.Store64(out+slot, acc)
			}))
		}
		// ...while the main thread keeps acquiring (so its clock advances:
		// the only thing pinning the GC frontier is the silent workers).
		// The tick weight matches the chatty worker's per-round work so
		// Kendo interleaves the two loops round for round.
		for round := 0; round < rounds; round++ {
			th.Lock(mu)
			th.Tick(1600)
			th.Unlock(mu)
		}
		th.Join(chatty)
		for _, id := range silent {
			th.Join(id)
		}
		th.Observe(th.Load64(buf), th.Load64(out), th.Load64(out+8))
	}
}

// TestNoCommHintEnablesEagerGC verifies the §5.4 extension: with the silent
// workers hinted, garbage collection can reclaim the chatty threads' slices;
// without the hint, the silent workers' stale clocks pin them.
func TestNoCommHintEnablesEagerGC(t *testing.T) {
	base := DefaultOptions()
	base.MetadataCapacity = 96 * 1024
	base.GCThresholdPct = 50

	hinted := base
	hinted.NoCommHint = func(tid int32) bool { return tid == 2 || tid == 3 } // the silent workers

	without, err := New(base).Run(hintProg(60))
	if err != nil {
		t.Fatal(err)
	}
	with, err := New(hinted).Run(hintProg(60))
	if err != nil {
		t.Fatal(err)
	}
	// Results must be identical: the hint is true here (the silent workers
	// really never acquire), so no propagation is lost.
	for i, v := range without.Observations[0] {
		if with.Observations[0][i] != v {
			t.Fatalf("hint changed results: %v vs %v", with.Observations[0], without.Observations[0])
		}
	}
	// The hinted run must keep the metadata high-water lower: the frontier
	// advances past the chatty threads' consumed slices.
	if with.Stats.MetadataBytes >= without.Stats.MetadataBytes {
		t.Fatalf("hint did not reduce metadata: %d (hinted) vs %d (unhinted)",
			with.Stats.MetadataBytes, without.Stats.MetadataBytes)
	}
}

// TestNoCommHintDeterministic: the hint must not break determinism.
func TestNoCommHintDeterministic(t *testing.T) {
	opts := DefaultOptions()
	opts.MetadataCapacity = 96 * 1024
	opts.GCThresholdPct = 50
	opts.NoCommHint = func(tid int32) bool { return tid >= 2 }
	var first uint64
	for i := 0; i < 3; i++ {
		rep, err := New(opts).Run(hintProg(40))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = rep.OutputHash
		} else if rep.OutputHash != first {
			t.Fatal("hinted execution nondeterministic")
		}
	}
}
