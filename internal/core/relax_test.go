package core

import (
	"bytes"
	"testing"

	"rfdet/internal/api"
	"rfdet/internal/racecheck"
	"rfdet/internal/trace"
)

// relaxRecordProfile runs prog twice with race detection and stability-merges
// the recorded relaxation profiles, exactly as a profile-guided deployment
// would (record → merge → replay).
func relaxRecordProfile(t *testing.T, opts Options, prog api.ThreadFunc) *racecheck.Profile {
	t.Helper()
	rec := opts
	rec.RaceDetect = true
	rec.RaceRelaxed = false
	rec.RelaxProfile = nil
	a := run(t, rec, prog)
	b := run(t, rec, prog)
	p, err := racecheck.MergeStable(a.RelaxProfile, b.RelaxProfile)
	if err != nil {
		t.Fatalf("stability merge failed: %v", err)
	}
	return p
}

// relaxLaggardProg is a workload whose turn-waits the profile provably
// removes: the main thread hammers a mutex only it ever touches while a
// spawned laggard sits at a tiny Kendo clock (it performs no synchronization
// until it exits). Strictly ordered, every main-thread operation must wait
// out the laggard; relaxed, the profile marks the mutex thread-local and the
// waits elide.
func relaxLaggardProg(th api.Thread) {
	buf := th.Malloc(4096)
	mine := api.Addr(64)
	id := th.Spawn(func(c api.Thread) {
		for i := 0; i < 64; i++ {
			c.Store64(buf+2048+api.Addr(8*(i%32)), uint64(i))
		}
	})
	for i := 0; i < 200; i++ {
		th.Lock(mine)
		th.Store64(buf, uint64(i))
		th.Unlock(mine)
	}
	th.Join(id)
	th.Observe(th.Load64(buf), th.Load64(buf+2048))
}

// TestRelaxedProfileElidesTurnWaits records a relaxation profile, replays
// with it, and checks that turn-waits elide while every deterministic
// observable stays bit-identical to the strict run.
func TestRelaxedProfileElidesTurnWaits(t *testing.T) {
	opts := DefaultOptions()
	profile := relaxRecordProfile(t, opts, relaxLaggardProg)
	if len(profile.Local) == 0 {
		t.Fatal("recording classified no sync var as thread-local")
	}

	strict := run(t, opts, relaxLaggardProg)
	relOpts := opts
	relOpts.RaceRelaxed = true
	relOpts.RelaxProfile = profile
	relaxed := run(t, relOpts, relaxLaggardProg)

	if relaxed.OutputHash != strict.OutputHash {
		t.Fatalf("relaxation changed the output hash: %#x vs %#x",
			relaxed.OutputHash, strict.OutputHash)
	}
	if relaxed.VirtualTime != strict.VirtualTime {
		t.Fatalf("relaxation changed the virtual time: %d vs %d",
			relaxed.VirtualTime, strict.VirtualTime)
	}
	if relaxed.Stats.ElidedTurnWaits == 0 {
		t.Fatal("no turn-waits elided on a profiled thread-local mutex with a live laggard")
	}
	if relaxed.Stats.RelaxUnsafeFallbacks != 0 {
		t.Fatalf("spurious fallbacks on a correct profile: %d", relaxed.Stats.RelaxUnsafeFallbacks)
	}
}

// TestRelaxedElisionLitmus pins the propagation-elision prong on the eager
// stack: a producer writes a region nobody reads during the run, so its
// slices are parked rather than applied at the consumer's acquires, and the
// final reads recover them through the fault path — with outputs and virtual
// times bit-identical to the strict run.
func TestRelaxedElisionLitmus(t *testing.T) {
	prog := func(th api.Thread) {
		region := th.Malloc(4 * 4096)
		scratch := th.Malloc(64)
		mu := api.Addr(64)
		prod := th.Spawn(func(c api.Thread) {
			for i := 0; i < 16; i++ {
				c.Lock(mu)
				for j := 0; j < 256; j++ {
					c.Store64(region+api.Addr(8*j), uint64(i*1000+j))
				}
				c.Unlock(mu)
			}
		})
		cons := th.Spawn(func(c api.Thread) {
			for i := 0; i < 16; i++ {
				c.Lock(mu)
				c.Store64(scratch, uint64(i))
				c.Unlock(mu)
			}
		})
		th.Join(prod)
		th.Join(cons)
		th.Observe(th.Load64(region), th.Load64(region+8*255), th.Load64(scratch))
	}

	opts := DefaultOptions()
	opts.LazyWrites = false // elision is an eager-path optimization
	strict := run(t, opts, prog)

	relOpts := opts
	relOpts.RaceRelaxed = true
	relaxed := run(t, relOpts, prog)

	if relaxed.OutputHash != strict.OutputHash {
		t.Fatalf("elision changed the output hash: %#x vs %#x",
			relaxed.OutputHash, strict.OutputHash)
	}
	if relaxed.VirtualTime != strict.VirtualTime {
		t.Fatalf("elision changed the virtual time: %d vs %d",
			relaxed.VirtualTime, strict.VirtualTime)
	}
	if relaxed.Stats.SkippedSliceApplies == 0 {
		t.Fatal("no slice applies elided for an unread region")
	}
	if relaxed.Stats.BytesElided == 0 {
		t.Fatal("SkippedSliceApplies counted but BytesElided is zero")
	}
	if got := relaxed.Observations[0]; got[0] != 15*1000 || got[1] != 15*1000+255 || got[2] != 15 {
		t.Fatalf("recovered values wrong: %v", got)
	}
}

// TestRelaxedStatsReconcileWithPhaseTrace checks that every relaxation
// counter reconciles exactly with its phase-trace marks: the two observation
// channels must tell the same story about what was elided.
func TestRelaxedStatsReconcileWithPhaseTrace(t *testing.T) {
	opts := DefaultOptions()
	opts.LazyWrites = false
	profile := relaxRecordProfile(t, opts, relaxLaggardProg)

	relOpts := opts
	relOpts.RaceRelaxed = true
	relOpts.RelaxProfile = profile
	relOpts.PhaseTrace = true
	rep := run(t, relOpts, relaxLaggardProg)
	if rep.Phases == nil {
		t.Fatal("phase trace missing")
	}
	s := rep.Stats
	if got := rep.Phases.MarkCount(markTurnElide); got != s.ElidedTurnWaits {
		t.Fatalf("turn-elide marks %d != ElidedTurnWaits %d", got, s.ElidedTurnWaits)
	}
	if got := rep.Phases.MarkCount(markSliceElide); got != s.SkippedSliceApplies {
		t.Fatalf("slice-elide marks %d != SkippedSliceApplies %d", got, s.SkippedSliceApplies)
	}
	if got := rep.Phases.MarkSum(markSliceElide); got != s.BytesElided {
		t.Fatalf("slice-elide mark bytes %d != BytesElided %d", got, s.BytesElided)
	}
	if got := rep.Phases.MarkCount(markRelaxFallback); got != s.RelaxUnsafeFallbacks {
		t.Fatalf("relax-fallback marks %d != RelaxUnsafeFallbacks %d", got, s.RelaxUnsafeFallbacks)
	}
	if got := rep.Phases.PhaseCounts()[trace.PhaseTurnWait]; got != s.TurnWaits {
		t.Fatalf("turn-wait spans %d != TurnWaits %d", got, s.TurnWaits)
	}
}

// TestRelaxedFallbackLitmus feeds the runtime a deliberately wrong profile —
// it claims a mutex two threads synchronize on is thread-local — and checks
// the certification contract: the contradiction is detected in every run
// (RelaxUnsafeFallbacks > 0), synchronization semantics survive it (all 20
// mutex-protected increments land, every run), and the flagged run is what
// signals that the profile must be discarded. Equality of timing observables
// with the strict run is deliberately NOT asserted — a flagged run forfeits
// that certification, which is the entire point of the flag.
func TestRelaxedFallbackLitmus(t *testing.T) {
	mu := api.Addr(64)
	prog := func(th api.Thread) {
		a := th.Malloc(8)
		id := th.Spawn(func(c api.Thread) {
			for i := 0; i < 10; i++ {
				c.Lock(mu)
				c.Store64(a, c.Load64(a)+1)
				c.Unlock(mu)
			}
		})
		for i := 0; i < 10; i++ {
			th.Lock(mu)
			th.Store64(a, th.Load64(a)+1)
			th.Unlock(mu)
		}
		th.Join(id)
		th.Observe(th.Load64(a))
	}

	opts := DefaultOptions()
	strict := run(t, opts, prog)

	relOpts := opts
	relOpts.RaceRelaxed = true
	relOpts.RelaxProfile = &racecheck.Profile{
		Workload: "wrong-on-purpose",
		Runs:     1,
		Local:    []uint64{uint64(mu)},
	}
	if strict.Observations[0][0] != 20 {
		t.Fatalf("strict run count %d, want 20", strict.Observations[0][0])
	}
	for i := 0; i < 3; i++ {
		rep := run(t, relOpts, prog)
		if rep.Observations[0][0] != 20 {
			t.Fatalf("run %d: mutual exclusion broken under a wrong profile: count %d, want 20",
				i, rep.Observations[0][0])
		}
		if rep.Stats.RelaxUnsafeFallbacks == 0 {
			t.Fatalf("run %d: contradicted profile produced no fallback", i)
		}
	}
}

// TestRelaxedProfileRoundTrip pins the profile text encoding: encode →
// decode → identical, and the recorded profile actually contains the
// laggard workload's private mutex.
func TestRelaxedProfileRoundTrip(t *testing.T) {
	p := relaxRecordProfile(t, DefaultOptions(), relaxLaggardProg)
	p.Workload = "laggard"
	back, err := racecheck.DecodeProfile(bytes.NewReader(p.Encode()))
	if err != nil {
		t.Fatalf("decode failed: %v", err)
	}
	if back.Workload != p.Workload || back.ReportHash != p.ReportHash ||
		back.Runs != p.Runs || len(back.Local) != len(p.Local) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, p)
	}
	if !back.Lookup(64) {
		t.Fatal("profiled mutex 0x40 missing from the round-tripped profile")
	}
}
