package core

import "testing"

func TestWaitqFIFO(t *testing.T) {
	var q waitq[int]
	for i := 0; i < 5; i++ {
		q.push(i)
	}
	if q.len() != 5 {
		t.Fatalf("len = %d, want 5", q.len())
	}
	if q.at(0) != 0 || q.at(4) != 4 {
		t.Fatalf("at = %d,%d", q.at(0), q.at(4))
	}
	for i := 0; i < 5; i++ {
		if got := q.pop(); got != i {
			t.Fatalf("pop #%d = %d", i, got)
		}
	}
	if q.len() != 0 {
		t.Fatalf("len after drain = %d", q.len())
	}
}

// TestWaitqPopReleasesEntries pins the satellite fix for the queue retention
// bug: the seed's q = q[1:] pops left every dequeued entry reachable from
// the backing array. waitq must zero the vacated slot so popped pointers
// become collectable.
func TestWaitqPopReleasesEntries(t *testing.T) {
	var q waitq[*int]
	a, b := new(int), new(int)
	q.push(a)
	q.push(b)
	if got := q.pop(); got != a {
		t.Fatal("wrong head")
	}
	// One entry remains, so the backing array has not rewound; the popped
	// slot must have been zeroed rather than still pinning a.
	if q.head != 1 {
		t.Fatalf("head = %d, want 1", q.head)
	}
	if q.buf[0] != nil {
		t.Fatal("popped slot still pins its entry")
	}
}

// TestWaitqSteadyStateRecyclesBacking verifies the drain rewind: alternating
// push/pop traffic on a hot sync var must not grow the backing array without
// bound the way the seed's slice-header queues did (each q[1:] burned the
// front capacity forever).
func TestWaitqSteadyStateRecyclesBacking(t *testing.T) {
	var q waitq[int]
	for i := 0; i < 10000; i++ {
		q.push(i)
		q.push(i + 1)
		q.pop()
		q.pop()
	}
	if c := cap(q.buf); c > 16 {
		t.Fatalf("backing capacity grew to %d under steady-state traffic", c)
	}
	if q.head != 0 || len(q.buf) != 0 {
		t.Fatalf("drained queue not rewound: head=%d len=%d", q.head, len(q.buf))
	}
}

func TestWaitqItemsView(t *testing.T) {
	var q waitq[int]
	q.push(1)
	q.push(2)
	q.push(3)
	q.pop()
	got := q.items()
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("items = %v", got)
	}
}
