package core

import (
	"testing"

	"rfdet/internal/api"
)

// run executes fn under the given options, failing the test on error.
func run(t *testing.T, opts Options, fn api.ThreadFunc) *api.Report {
	t.Helper()
	rep, err := New(opts).Run(fn)
	if err != nil {
		t.Fatalf("Run failed: %v", err)
	}
	return rep
}

// allConfigs exercises the monitor × optimization matrix.
func allConfigs() []Options {
	return []Options{
		{},
		{Monitor: MonitorPF},
		{SliceMerging: true},
		{Prelock: true},
		{LazyWrites: true},
		DefaultOptions(),
		{Monitor: MonitorPF, SliceMerging: true, Prelock: true, LazyWrites: true},
	}
}

func TestSingleThread(t *testing.T) {
	rep := run(t, DefaultOptions(), func(th api.Thread) {
		a := th.Malloc(64)
		th.Store64(a, 42)
		th.Store32(a+8, 7)
		th.Store8(a+12, 9)
		th.Observe(th.Load64(a), uint64(th.Load32(a+8)), uint64(th.Load8(a+12)))
	})
	obs := rep.Observations[0]
	if len(obs) != 3 || obs[0] != 42 || obs[1] != 7 || obs[2] != 9 {
		t.Fatalf("unexpected observations: %v", obs)
	}
}

func TestSpawnJoinPropagatesChildWrites(t *testing.T) {
	for _, opts := range allConfigs() {
		rep := run(t, opts, func(th api.Thread) {
			a := th.Malloc(8)
			id := th.Spawn(func(c api.Thread) {
				c.Store64(a, 1234)
			})
			th.Join(id)
			th.Observe(th.Load64(a))
		})
		if got := rep.Observations[0][0]; got != 1234 {
			t.Fatalf("opts %+v: parent read %d, want 1234", opts, got)
		}
	}
}

func TestLockPropagation(t *testing.T) {
	// A classic handoff: the child publishes under a lock; the parent
	// spins acquiring the lock until it sees the flag, then reads the data.
	for _, opts := range allConfigs() {
		rep := run(t, opts, func(th api.Thread) {
			data := th.Malloc(8)
			flag := th.Malloc(8)
			mu := api.Addr(128)
			id := th.Spawn(func(c api.Thread) {
				c.Lock(mu)
				c.Store64(data, 99)
				c.Store64(flag, 1)
				c.Unlock(mu)
			})
			for {
				th.Lock(mu)
				f := th.Load64(flag)
				th.Unlock(mu)
				if f == 1 {
					break
				}
				th.Tick(10)
			}
			th.Observe(th.Load64(data))
			th.Join(id)
		})
		if got := rep.Observations[0][0]; got != 99 {
			t.Fatalf("opts %+v: read %d, want 99", opts, got)
		}
	}
}

func TestDeterministicOutputAcrossRuns(t *testing.T) {
	prog := func(th api.Thread) {
		arr := th.Malloc(8 * 64)
		mu := api.Addr(256)
		var ids []api.ThreadID
		for w := 0; w < 4; w++ {
			ids = append(ids, th.Spawn(func(c api.Thread) {
				me := uint64(c.ID())
				for i := 0; i < 64; i++ {
					// Racy writes: every thread writes every slot.
					cur := c.Load64(arr + api.Addr(8*i))
					c.Store64(arr+api.Addr(8*i), cur*31+me+uint64(i))
					if i%16 == 0 {
						c.Lock(mu)
						c.Store64(arr, c.Load64(arr)+me)
						c.Unlock(mu)
					}
				}
			}))
		}
		for _, id := range ids {
			th.Join(id)
		}
		var sum uint64
		for i := 0; i < 64; i++ {
			sum += th.Load64(arr + api.Addr(8*i))
		}
		th.Observe(sum)
	}
	for _, opts := range allConfigs() {
		var first uint64
		for i := 0; i < 3; i++ {
			rep := run(t, opts, prog)
			if i == 0 {
				first = rep.OutputHash
			} else if rep.OutputHash != first {
				t.Fatalf("opts %+v: run %d hash %#x != first %#x", opts, i, rep.OutputHash, first)
			}
		}
	}
}

func TestCondVarPingPong(t *testing.T) {
	for _, opts := range allConfigs() {
		rep := run(t, opts, func(th api.Thread) {
			state := th.Malloc(8) // 0 = ping's turn, 1 = pong's turn
			count := th.Malloc(8)
			mu := api.Addr(512)
			cond := api.Addr(520)
			const rounds = 10
			id := th.Spawn(func(c api.Thread) {
				for i := 0; i < rounds; i++ {
					c.Lock(mu)
					for c.Load64(state) != 1 {
						c.Wait(cond, mu)
					}
					c.Store64(count, c.Load64(count)+1)
					c.Store64(state, 0)
					c.Signal(cond)
					c.Unlock(mu)
				}
			})
			for i := 0; i < rounds; i++ {
				th.Lock(mu)
				for th.Load64(state) != 0 {
					th.Wait(cond, mu)
				}
				th.Store64(count, th.Load64(count)+1)
				th.Store64(state, 1)
				th.Signal(cond)
				th.Unlock(mu)
			}
			th.Join(id)
			th.Observe(th.Load64(count))
		})
		if got := rep.Observations[0][0]; got != 20 {
			t.Fatalf("opts %+v: count %d, want 20", opts, got)
		}
	}
}

func TestBarrierMergesAllWrites(t *testing.T) {
	for _, opts := range allConfigs() {
		rep := run(t, opts, func(th api.Thread) {
			arr := th.Malloc(8 * 4)
			bar := api.Addr(1024)
			const n = 4
			var ids []api.ThreadID
			for w := 1; w < n; w++ {
				slot := api.Addr(8 * w)
				ids = append(ids, th.Spawn(func(c api.Thread) {
					c.Store64(arr+slot, uint64(c.ID())*100)
					c.Barrier(bar, n)
					// After the barrier every thread sees every write.
					var sum uint64
					for i := 0; i < n; i++ {
						sum += c.Load64(arr + api.Addr(8*i))
					}
					c.Observe(sum)
				}))
			}
			th.Store64(arr, 7)
			th.Barrier(bar, n)
			var sum uint64
			for i := 0; i < n; i++ {
				sum += th.Load64(arr + api.Addr(8*i))
			}
			th.Observe(sum)
			for _, id := range ids {
				th.Join(id)
			}
		})
		want := uint64(7 + 100 + 200 + 300)
		for tid, obs := range rep.Observations {
			if len(obs) != 1 || obs[0] != want {
				t.Fatalf("opts %+v: thread %d observed %v, want [%d]", opts, tid, obs, want)
			}
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	_, err := New(DefaultOptions()).Run(func(th api.Thread) {
		mu1, mu2 := api.Addr(64), api.Addr(128)
		id := th.Spawn(func(c api.Thread) {
			c.Lock(mu2)
			c.Tick(1000)
			c.Lock(mu1)
			c.Unlock(mu1)
			c.Unlock(mu2)
		})
		th.Lock(mu1)
		th.Tick(1000)
		th.Lock(mu2)
		th.Unlock(mu2)
		th.Unlock(mu1)
		th.Join(id)
	})
	if err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
}

func TestUnlockNotHeldFails(t *testing.T) {
	_, err := New(DefaultOptions()).Run(func(th api.Thread) {
		th.Unlock(api.Addr(64))
	})
	if err == nil {
		t.Fatal("expected misuse error, got nil")
	}
}

func TestAtomicsDeterministic(t *testing.T) {
	prog := func(th api.Thread) {
		ctr := th.Malloc(8)
		var ids []api.ThreadID
		for w := 0; w < 4; w++ {
			ids = append(ids, th.Spawn(func(c api.Thread) {
				for i := 0; i < 50; i++ {
					c.AtomicAdd64(ctr, 1)
				}
			}))
		}
		for _, id := range ids {
			th.Join(id)
		}
		th.Observe(th.Load64(ctr))
	}
	rep := run(t, DefaultOptions(), prog)
	if got := rep.Observations[0][0]; got != 200 {
		t.Fatalf("atomic counter = %d, want 200", got)
	}
}
