package core

import (
	"fmt"
	"sort"

	"rfdet/internal/api"
	"rfdet/internal/kendo"
	"rfdet/internal/mem"
	"rfdet/internal/slicestore"
	"rfdet/internal/vclock"
	"rfdet/internal/vtime"
)

// turn waits for the deterministic Kendo turn before a synchronization
// operation (§4.1). It panics with errAborted if the execution failed.
func (t *thread) turn() {
	ok, waited := t.exec.sched.WaitForTurn(t.proc)
	if waited {
		t.st.TurnWaits++
	}
	if !ok {
		panic(errAborted)
	}
	t.vt += vtime.SyncBase
}

// finishOpLocked advances the Kendo clock past the synchronization operation
// itself. This must happen only after the operation's monitor work is done:
// bumping earlier could make another thread eligible and let it contend for
// the monitor nondeterministically.
func (t *thread) finishOpLocked() {
	t.proc.Tick(2)
}

// Lock implements pthread_mutex_lock (§4.1).
func (t *thread) Lock(m api.Addr) {
	t.turn()
	e := t.exec
	e.mu.Lock()
	t.st.Locks++
	sv := e.syncvar(m)

	if sv.held {
		if sv.owner == t.id {
			e.failLocked(fmt.Errorf("rfdet: thread %d: recursive lock of mutex %#x", t.id, uint64(m)))
			e.mu.Unlock()
			panic(errAborted)
		}
		// Contended: end the slice, reserve our place in the deterministic
		// grant queue, pre-merge (prelock, §4.5), and sleep.
		t.endSliceLocked()
		sv.lockQ = append(sv.lockQ, t.id)
		t.prelockLocked(sv)
		t.blockLocked(fmt.Sprintf("lock %#x", uint64(m)))
		t.finishOpLocked()
		e.mu.Unlock()

		ev := t.sleep() // the releaser hands us ownership
		e.mu.Lock()
		t.vt = vtime.Max(t.vt, ev.vt) + vtime.LockHandoff
		t.acquireLocked(sv)
		t.beginSliceLocked()
		e.tracer.record(t, "lock", m)
		e.mu.Unlock()
		return
	}

	sv.held = true
	sv.owner = t.id
	if e.opts.SliceMerging && sv.lastTid == int32(t.id) {
		// Slice merging (§4.5): the last release of this variable was ours,
		// so no remote updates can be pending and the current slice may
		// simply continue across the acquire.
		t.st.SlicesMerged++
		e.tracer.record(t, "lock*", m)
		t.finishOpLocked()
		e.mu.Unlock()
		return
	}
	t.endSliceLocked()
	t.acquireLocked(sv)
	t.beginSliceLocked()
	e.tracer.record(t, "lock", m)
	t.finishOpLocked()
	e.mu.Unlock()
}

// Unlock implements pthread_mutex_unlock (§4.1): a release that records
// lastTid/lastTime before the variable is handed over.
func (t *thread) Unlock(m api.Addr) {
	t.turn()
	e := t.exec
	e.mu.Lock()
	t.st.Unlocks++
	sv := e.syncvar(m)
	if !sv.held || sv.owner != t.id {
		e.failLocked(fmt.Errorf("rfdet: thread %d: unlock of mutex %#x not held by it", t.id, uint64(m)))
		e.mu.Unlock()
		panic(errAborted)
	}
	tend := t.endSliceLocked()
	t.releaseLocked(sv, tend)
	if len(sv.lockQ) > 0 {
		next := sv.lockQ[0]
		sv.lockQ = sv.lockQ[1:]
		sv.owner = next
		// The remaining waiters pre-merge this release in parallel with the
		// new holder's critical section (prelock, §4.5).
		e.prelockReleaseLocked(sv, t)
		e.wakeLocked(e.threads[next], wakeEvent{vt: t.vt})
	} else {
		sv.held = false
		sv.owner = -1
	}
	t.beginSliceLocked()
	e.tracer.record(t, "unlock", m)
	t.finishOpLocked()
	e.mu.Unlock()
}

// releaseLocked records this thread as the variable's last releaser, with
// the just-ended slice's timestamp as the release time.
func (t *thread) releaseLocked(sv *syncVar, tend vclock.VC) {
	sv.lastTid = int32(t.id)
	sv.lastTime = tend
	sv.lastVT = t.vt
}

// Wait implements pthread_cond_wait: a release of the mutex and of the wait
// itself, then (after the signal) an acquire of both the signaler's release
// and the mutex (§4.1).
func (t *thread) Wait(c, m api.Addr) {
	t.turn()
	e := t.exec
	e.mu.Lock()
	t.st.Waits++
	svm := e.syncvar(m)
	if !svm.held || svm.owner != t.id {
		e.failLocked(fmt.Errorf("rfdet: thread %d: cond wait with mutex %#x not held", t.id, uint64(m)))
		e.mu.Unlock()
		panic(errAborted)
	}
	tend := t.endSliceLocked()
	// Release the mutex.
	t.releaseLocked(svm, tend)
	if len(svm.lockQ) > 0 {
		next := svm.lockQ[0]
		svm.lockQ = svm.lockQ[1:]
		svm.owner = next
		e.wakeLocked(e.threads[next], wakeEvent{vt: t.vt})
	} else {
		svm.held = false
		svm.owner = -1
	}
	// Queue on the condition variable, in deterministic order.
	svc := e.syncvar(c)
	svc.condQ = append(svc.condQ, condEntry{tid: t.id, mutex: m})
	e.tracer.record(t, "wait", c)
	t.blockLocked(fmt.Sprintf("cond wait %#x (mutex %#x)", uint64(c), uint64(m)))
	t.finishOpLocked()
	e.mu.Unlock()

	// We are woken only once we own the mutex again (the signaler either
	// granted it directly or queued us on it).
	ev := t.sleep()
	e.mu.Lock()
	t.vt = vtime.Max(t.vt, ev.vt) + vtime.LockHandoff
	if sig := t.pendingSignal; sig != nil {
		t.pendingSignal = nil
		t.acquireFromLocked(sig.tid, sig.v, sig.vt)
	}
	t.acquireLocked(svm)
	t.beginSliceLocked()
	e.tracer.record(t, "wake", c)
	e.mu.Unlock()
}

// Signal implements pthread_cond_signal (§4.1): a release whose timestamp
// is delivered to the one waiter it wakes.
func (t *thread) Signal(c api.Addr) {
	t.signal(c, false)
}

// Broadcast implements pthread_cond_broadcast: like Signal, for all waiters,
// woken in deterministic queue order.
func (t *thread) Broadcast(c api.Addr) {
	t.signal(c, true)
}

func (t *thread) signal(c api.Addr, all bool) {
	t.turn()
	e := t.exec
	e.mu.Lock()
	t.st.Signals++
	tend := t.endSliceLocked()
	svc := e.syncvar(c)
	n := 1
	if all {
		n = len(svc.condQ)
	}
	for i := 0; i < n && len(svc.condQ) > 0; i++ {
		entry := svc.condQ[0]
		svc.condQ = svc.condQ[1:]
		w := e.threads[entry.tid]
		w.pendingSignal = &signalRecord{tid: int32(t.id), v: tend, vt: t.vt}
		svm := e.syncvar(entry.mutex)
		if svm.held {
			svm.lockQ = append(svm.lockQ, entry.tid)
		} else {
			svm.held = true
			svm.owner = entry.tid
			e.wakeLocked(w, wakeEvent{vt: t.vt})
		}
	}
	t.beginSliceLocked()
	if all {
		e.tracer.record(t, "broadcast", c)
	} else {
		e.tracer.record(t, "signal", c)
	}
	t.finishOpLocked()
	e.mu.Unlock()
}

// Barrier implements a pthreads-style barrier (§4.1): both an acquire and a
// release. The arrivals' modifications are merged into the lowest-ID
// arrival's memory in ascending thread-ID order, and every arrival leaves
// with a copy-on-write copy of that merged memory — exactly the paper's
// barrier algorithm.
func (t *thread) Barrier(b api.Addr, n int) {
	if n <= 0 {
		t.exec.fail(fmt.Errorf("rfdet: thread %d: barrier with count %d", t.id, n))
		panic(errAborted)
	}
	t.turn()
	e := t.exec
	e.mu.Lock()
	t.st.Barriers++
	tend := t.endSliceLocked()
	t.flushAllPending()
	sv := e.syncvar(b)
	sv.barArrivals = append(sv.barArrivals, barArrival{tid: t.id, v: tend, vt: t.vt})
	if len(sv.barArrivals) < n {
		t.blockLocked(fmt.Sprintf("barrier %#x (%d/%d)", uint64(b), len(sv.barArrivals), n))
		t.finishOpLocked()
		e.mu.Unlock()
		ev := t.sleep()
		e.mu.Lock()
		t.vt = ev.vt
		t.beginSliceLocked()
		e.tracer.record(t, "barrier", b)
		e.mu.Unlock()
		return
	}

	// Last arrival: perform the merge on behalf of everyone. All other
	// arrivals are provably blocked, so their thread state may be mutated
	// under the monitor.
	arrivals := sv.barArrivals
	sv.barArrivals = nil
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].tid < arrivals[j].tid })

	leader := e.threads[arrivals[0].tid]
	leader.flushAllPending()
	releaseVT := arrivals[0].vt
	merged := arrivals[0].v.Clone()
	for _, a := range arrivals[1:] {
		releaseVT = vtime.Max(releaseVT, a.vt)
		merged = merged.Join(a.v)
	}
	// Merge in ascending thread-ID order: the thread with the smallest ID
	// merges first, so later (higher-ID) arrivals deterministically win
	// write-write races (§4.1).
	var mergeCost vtime.Time
	for _, a := range arrivals[1:] {
		from := e.threads[a.tid]
		slices := leader.collectLocked(from, a.v, leader.vtime)
		for _, sl := range slices {
			leader.space.ApplyRuns(sl.Mods)
			mergeCost += vtime.ApplyCost(uint64(len(sl.Mods)), sl.Bytes)
			leader.st.SlicesPropagated++
			leader.st.BytesPropagated += sl.Bytes
		}
		leader.slicePtrs = append(leader.slicePtrs, slices...)
		leader.vtime = leader.vtime.Join(a.v)
	}
	releaseVT += vtime.FencePhase + mergeCost
	leader.vt = vtime.Max(leader.vt, releaseVT)
	leader.vtime = leader.vtime.Join(merged)

	// Give every other arrival a copy-on-write copy of the merged memory,
	// the leader's slice list, and the merged clock.
	for _, a := range arrivals[1:] {
		w := e.threads[a.tid]
		w.space.Release()
		w.space = leader.space.Clone()
		w.space.SetFaultHandler(w.onFault)
		w.slicePtrs = append(w.slicePtrs[:0], leader.slicePtrs...)
		w.vtime = w.vtime.Join(merged)
		w.preMerged = nil
		for pid := range w.pending {
			delete(w.pending, pid)
		}
	}
	// Resume everyone.
	for _, a := range arrivals {
		if a.tid == t.id {
			continue
		}
		e.wakeLocked(e.threads[a.tid], wakeEvent{vt: releaseVT})
	}
	t.vt = vtime.Max(t.vt, releaseVT)
	t.beginSliceLocked()
	e.tracer.record(t, "barrier", b)
	t.finishOpLocked()
	e.mu.Unlock()
}

// Spawn implements pthread_create (§4.1): a release. The child inherits the
// parent's memory by copy-on-write cloning and the parent's slice-pointer
// list, and gets the next deterministic thread ID.
func (t *thread) Spawn(fn api.ThreadFunc) api.ThreadID {
	t.turn()
	e := t.exec
	e.mu.Lock()
	t.st.Forks++
	// Lazily pended updates must be resident before the memory is cloned.
	t.flushAllPending()
	tend := t.endSliceLocked()

	id := api.ThreadID(len(e.threads))
	child := &thread{
		exec:       e,
		id:         id,
		fn:         fn,
		monitoring: true,
		space:      t.space.Clone(),
		vtime:      tend.Clone().Set(int(id), 1),
		vt:         t.vt + vtime.ThreadSpawn,
		wake:       make(chan wakeEvent, 1),
	}
	child.space.SetFaultHandler(child.onFault)
	child.slicePtrs = append(child.slicePtrs, t.slicePtrs...)
	if e.opts.LazyWrites {
		child.pending = make(map[mem.PageID][]mem.Run)
	}
	if e.opts.NoCommHint != nil && e.opts.NoCommHint(int32(id)) {
		child.noComm = true
	}
	child.proc = e.sched.Register(int32(id), t.proc.Clock()+1)
	e.alloc.Register(int(id))
	e.threads = append(e.threads, child)
	e.liveCount++
	if e.liveCount > e.maxLive {
		e.maxLive = e.liveCount
	}
	// From the first fork on, the main thread must monitor its
	// modifications (§4.1).
	if !t.monitoring {
		t.monitoring = true
		if e.opts.LazyWrites && t.pending == nil {
			t.pending = make(map[mem.PageID][]mem.Run)
		}
	}
	e.wg.Add(1)
	go e.runThread(child)
	t.beginSliceLocked()
	e.tracer.record(t, "spawn", api.Addr(id))
	t.finishOpLocked()
	e.mu.Unlock()
	return id
}

// Join implements pthread_join (§4.1): an acquire of the joined thread's
// exit release; all of the child's modifications are propagated here.
func (t *thread) Join(id api.ThreadID) {
	t.turn()
	e := t.exec
	e.mu.Lock()
	t.st.Joins++
	if id < 0 || int(id) >= len(e.threads) {
		e.failLocked(fmt.Errorf("rfdet: thread %d: join of unknown thread %d", t.id, id))
		e.mu.Unlock()
		panic(errAborted)
	}
	if id == t.id {
		e.failLocked(fmt.Errorf("rfdet: thread %d: join of itself", t.id))
		e.mu.Unlock()
		panic(errAborted)
	}
	target := e.threads[id]
	t.endSliceLocked()
	if target.proc.Status() != kendo.Exited {
		target.joiners = append(target.joiners, t)
		t.blockLocked(fmt.Sprintf("join of thread %d", id))
		t.finishOpLocked()
		e.mu.Unlock()
		ev := t.sleep()
		e.mu.Lock()
		t.vt = vtime.Max(t.vt, ev.vt)
	}
	t.acquireFromLocked(int32(target.id), target.exitV, target.exitVT)
	t.beginSliceLocked()
	e.tracer.record(t, "join", api.Addr(id))
	t.finishOpLocked()
	e.mu.Unlock()
}

// AtomicAdd64 is the §4.6 low-level-atomics extension: a Kendo-ordered
// acquire+release on the word's own internal synchronization variable, with
// the store published as a one-word micro-slice.
func (t *thread) AtomicAdd64(a api.Addr, delta uint64) uint64 {
	var out uint64
	t.atomicOp(a, func(cur uint64) (uint64, bool) {
		out = cur + delta
		return out, true
	})
	return out
}

// AtomicCAS64 atomically compares-and-swaps the word at a, deterministically.
func (t *thread) AtomicCAS64(a api.Addr, old, new uint64) bool {
	var ok bool
	t.atomicOp(a, func(cur uint64) (uint64, bool) {
		ok = cur == old
		return new, ok
	})
	return ok
}

// atomicOp runs op as an acquire (propagate the latest release of the
// word's internal variable) followed, when op writes, by a release: the
// write is published as a one-word micro-slice and recorded as the
// variable's last release. The write itself bypasses slice monitoring — it
// is carried by the micro-slice, not by page diffing.
func (t *thread) atomicOp(a api.Addr, op func(cur uint64) (newVal uint64, wrote bool)) {
	t.turn()
	e := t.exec
	e.mu.Lock()
	t.st.AtomicsOps++
	sv := e.syncvar(a)
	t.endSliceLocked()
	t.acquireLocked(sv)
	cur := t.space.Load64(uint64(a)) // flushes lazily pended updates if any
	newVal, wrote := op(cur)
	t.vt += 2 * vtime.MemOp
	if wrote {
		data := make([]byte, 8)
		for i := 0; i < 8; i++ {
			data[i] = byte(newVal >> (8 * i))
		}
		run := mem.Run{Addr: uint64(a), Data: data}
		t.space.ApplyRuns([]mem.Run{run})
		micro := &slicestore.Slice{
			Tid:   int32(t.id),
			Time:  t.vtime.Clone(),
			Mods:  []mem.Run{run},
			Bytes: 8,
		}
		t.st.SlicesCreated++
		t.slicePtrs = append(t.slicePtrs, micro)
		if e.store.Commit(micro) {
			e.gcLocked()
		}
		tend := t.vtime.Clone()
		t.vtime = t.vtime.Bump(int(t.id))
		t.releaseLocked(sv, tend)
	}
	t.beginSliceLocked()
	e.tracer.record(t, "atomic", a)
	t.finishOpLocked()
	e.mu.Unlock()
}
