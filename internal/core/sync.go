package core

import (
	"fmt"
	"sort"

	"rfdet/internal/api"
	"rfdet/internal/kendo"
	"rfdet/internal/mem"
	"rfdet/internal/racecheck"
	"rfdet/internal/slicestore"
	"rfdet/internal/stats"
	"rfdet/internal/trace"
	"rfdet/internal/vclock"
	"rfdet/internal/vtime"
)

// Synchronization operations (§4.1).
//
// Every operation follows the same monitor-decomposed shape:
//
//	turn()                    — win the deterministic Kendo turn
//	finishSlice()             — OFF-monitor: byte-diff the snapshotted pages
//	lockShard()               — enter the variable's commit-monitor domain
//	  commitSliceLocked()     — publish the slice, bump the clock
//	  ...collect/queue/wake   — mutate domain-guarded state
//	unlock
//	applySlices()             — OFF-monitor: absorb propagated runs
//
// Hot operations lock only the domain(s) owning their variables (shard.go):
// Lock, Unlock and atomics one domain; Wait the mutex's and the condvar's
// (ascending); Signal/Broadcast the condvar's plus the woken waiters'
// mutexes'. Lifecycle operations — Spawn, Join, Barrier, thread exit — take
// the global rendezvous instead, because they mutate cross-domain state
// (the thread table, blocked arrivals' spaces).
//
// Holding the turn makes the off-monitor windows safe: every mutation of
// monitor-guarded synchronization state happens under the turn, so nothing a
// thread observed under the monitor can change while it diffs or applies
// outside it. The same argument is why sharding preserves every
// deterministic observable: the turn, not the mutex, is what orders the
// state mutations.
//
// Wakeups never re-enter the monitor at all: the waker — which holds the
// turn and the monitor while the sleeper is provably blocked — performs the
// sleeper's whole acquire on its behalf (prepareAcquireLocked) and hands the
// collected slices over in the wake event. The woken thread just installs
// its new virtual time, restarts slice monitoring and applies the slices to
// its private memory, all without shared state. This is what makes every
// propagation decision a pure function of the deterministic clocks even
// though threads wake with arbitrary host timing — and it removes the wake
// path from the monitor's critical section entirely.

// turn waits for the deterministic Kendo turn before a synchronization
// operation (§4.1). It panics with errAborted if the execution failed.
func (t *thread) turn() {
	ts := t.tb.Now()
	ok, waited := t.exec.sched.WaitForTurn(t.proc)
	if waited {
		t.st.TurnWaits++
		t.tb.Span(trace.PhaseTurnWait, ts)
	}
	if !ok {
		panic(errAborted)
	}
	t.vt += vtime.SyncBase
}

// finishOpLocked advances the Kendo clock past the synchronization operation
// itself. This must happen only after the operation's monitor work is done:
// bumping earlier could make another thread eligible and let it contend for
// the monitor nondeterministically.
func (t *thread) finishOpLocked() {
	t.proc.Tick(2)
}

// Lock implements pthread_mutex_lock (§4.1). Whether the current slice ends
// at all depends on monitor-guarded state (slice merging, §4.5), so Lock
// cannot pre-diff before entering the monitor; it drops the monitor around
// the diff instead (endSliceDropLock).
func (t *thread) Lock(m api.Addr) {
	e := t.exec
	en, elided := t.turnRelaxed(m)
	sh := e.shardFor(m)
	e.lockShard(t, sh)
	elided = t.relaxAdmitLocked(sh, en, m, elided)
	t.relaxElided = elided
	e.recordSync(m, t.id)
	t.st.Locks++
	sv := sh.syncvar(m)

	if sv.held {
		if sv.owner == t.id {
			e.fail(fmt.Errorf("rfdet: thread %d: recursive lock of mutex %#x", t.id, uint64(m)))
			sh.mu.Unlock()
			panic(errAborted)
		}
		// Contended: end the slice, reserve our place in the deterministic
		// grant queue, pre-merge (prelock, §4.5), and sleep.
		t.endSliceDropShard(sh)
		sv.lockQ.push(t.id)
		t.prelockLocked(sv)
		t.blockLocked(fmt.Sprintf("lock %#x", uint64(m)))
		t.finishOpLocked()
		sh.mu.Unlock()

		// The releaser hands us ownership with the acquire already done
		// (prepareAcquireLocked); nothing below touches shared state.
		ev := t.sleep()
		t.vt = ev.vt
		t.beginSlice()
		e.syncEvent(t, "lock", m)
		t.applySlices(ev.slices, false)
		ev.pin.Release()
		return
	}

	sv.held = true
	sv.owner = t.id
	if e.opts.SliceMerging && sv.lastTid == int32(t.id) {
		// Slice merging (§4.5): the last release of this variable was ours,
		// so no remote updates can be pending and the current slice may
		// simply continue across the acquire.
		t.st.SlicesMerged++
		e.syncEvent(t, "lock*", m)
		t.finishOpLocked()
		t.relaxElided = false
		sh.mu.Unlock()
		return
	}
	t.endSliceDropShard(sh)
	slices := t.acquireCollectLocked(sh, sv)
	// Pinned before finishOpLocked passes the turn: the apply below runs
	// off-monitor, where another thread's turn may run a GC pass over the
	// just-collected slices.
	pin := e.pinFor(slices)
	t.beginSlice()
	e.syncEvent(t, "lock", m)
	t.finishOpLocked()
	t.relaxElided = false
	sh.mu.Unlock()
	t.applySlices(slices, false)
	pin.Release()
}

// handoffLocked grants a released mutex to the head of its queue: the
// remaining waiters pre-merge the release in parallel with the new holder's
// critical section (prelock, §4.5), and the new holder is woken with its
// acquire pre-collected. Caller holds the mutex's domain.
//
//detvet:holds sh.mu
func (e *exec) handoffLocked(sh *monShard, sv *syncVar, releaser *thread) {
	next := sv.lockQ.pop()
	sv.owner = next
	e.prelockReleaseLocked(sv, releaser)
	w := e.threads[next]
	e.wakeLocked(w, e.prepareAcquireLocked(w, sh, sv, releaser.vt))
}

// Unlock implements pthread_mutex_unlock (§4.1): a release that records
// lastTid/lastTime before the variable is handed over.
func (t *thread) Unlock(m api.Addr) {
	e := t.exec
	en, elided := t.turnRelaxed(m)
	s := t.finishSlice()
	sh := e.shardFor(m)
	e.lockShard(t, sh)
	elided = t.relaxAdmitLocked(sh, en, m, elided)
	t.relaxElided = elided
	e.recordSync(m, t.id)
	t.st.Unlocks++
	sv := sh.syncvar(m)
	if !sv.held || sv.owner != t.id {
		e.fail(fmt.Errorf("rfdet: thread %d: unlock of mutex %#x not held by it", t.id, uint64(m)))
		sh.mu.Unlock()
		panic(errAborted)
	}
	tend := t.commitSliceLocked(s)
	t.releaseLocked(sh, sv, tend)
	if sv.lockQ.len() > 0 {
		e.handoffLocked(sh, sv, t)
	} else {
		sv.held = false
		sv.owner = -1
	}
	t.beginSlice()
	e.syncEvent(t, "unlock", m)
	t.finishOpLocked()
	t.relaxElided = false
	sh.mu.Unlock()
}

// releaseLocked records this thread as the variable's last releaser, with
// the just-ended slice's timestamp as the release time, stamped with the
// owning domain's next release version (the Louvre-style counter that
// orders cross-domain acquires; shard.go).
//
//detvet:holds sh.mu
func (t *thread) releaseLocked(sh *monShard, sv *syncVar, tend vclock.VC) {
	sv.lastTid = int32(t.id)
	sv.lastTime = tend
	sv.lastVT = t.vt
	sv.lastVer = sh.stampRelease(tend)
	t.lastShard = int32(sh.id)
}

// Wait implements pthread_cond_wait: a release of the mutex and of the wait
// itself, then (after the signal) an acquire of both the signaler's release
// and the mutex (§4.1).
func (t *thread) Wait(c, m api.Addr) {
	t.turn()
	s := t.finishSlice()
	e := t.exec
	// Wait touches two variables — the mutex and the condvar — whose
	// domains may differ; take both (ascending, deduplicated).
	set := t.shardSet(m, c)
	e.lockShardSet(t, set)
	shm := e.shardFor(m)
	t.st.Waits++
	e.recordSync(m, t.id)
	e.recordSync(c, t.id)
	svm := shm.syncvar(m)
	if !svm.held || svm.owner != t.id {
		e.fail(fmt.Errorf("rfdet: thread %d: cond wait with mutex %#x not held", t.id, uint64(m)))
		unlockShardSet(set)
		panic(errAborted)
	}
	tend := t.commitSliceLocked(s)
	// Release the mutex — exactly like Unlock, including the prelock
	// pre-merge for the waiters that stay queued: a release performed inside
	// pthread_cond_wait is a release like any other, and skipping the
	// pre-merge here silently lost the §4.5 overlap on condvar-heavy
	// workloads.
	t.releaseLocked(shm, svm, tend)
	if svm.lockQ.len() > 0 {
		e.handoffLocked(shm, svm, t)
	} else {
		svm.held = false
		svm.owner = -1
	}
	// Queue on the condition variable, in deterministic order.
	svc := e.shardFor(c).syncvar(c)
	svc.condQ.push(condEntry{tid: t.id, mutex: m})
	e.syncEvent(t, "wait", c)
	t.blockLocked(fmt.Sprintf("cond wait %#x (mutex %#x)", uint64(c), uint64(m)))
	t.finishOpLocked()
	unlockShardSet(set)

	// We are woken only once we own the mutex again (the signaler either
	// granted it directly or queued us on it); whoever handed the mutex
	// over performed both our acquires — the signaler's release and the
	// mutex release — on our behalf.
	ev := t.sleep()
	t.vt = ev.vt
	t.beginSlice()
	e.syncEvent(t, "wake", c)
	t.applySlices(ev.slices, false)
	ev.pin.Release()
}

// Signal implements pthread_cond_signal (§4.1): a release whose timestamp
// is delivered to the one waiter it wakes.
func (t *thread) Signal(c api.Addr) {
	t.signal(c, false)
}

// Broadcast implements pthread_cond_broadcast: like Signal, for all waiters,
// woken in deterministic queue order.
func (t *thread) Broadcast(c api.Addr) {
	t.signal(c, true)
}

func (t *thread) signal(c api.Addr, all bool) {
	t.turn()
	s := t.finishSlice()
	e := t.exec
	shc := e.shardFor(c)
	// The woken waiters' mutexes may live in other domains; assemble the
	// full ascending domain set before locking. Peeking the condvar's wait
	// queue without its mutex is safe because we hold the deterministic
	// turn: every mutation of domain state happens under the turn, so the
	// queue cannot change between the peek and the locked pops below.
	set := t.shardScratch[:0]
	set = insertShard(set, shc)
	//detvet:lockcheck turn-held peek: domain state only changes under the deterministic turn, which this thread holds (comment above).
	if svc, ok := shc.syncvars[c]; ok {
		n := svc.condQ.len()
		if !all && n > 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			set = insertShard(set, e.shardFor(svc.condQ.at(i).mutex))
		}
	}
	t.shardScratch = set
	e.lockShardSet(t, set)
	t.st.Signals++
	e.recordSync(c, t.id)
	tend := t.commitSliceLocked(s)
	svc := shc.syncvar(c)
	n := 1
	if all {
		n = svc.condQ.len()
	}
	for i := 0; i < n && svc.condQ.len() > 0; i++ {
		entry := svc.condQ.pop()
		// The signaler mutates the woken waiter's mutex state: record it as a
		// toucher of that mutex so the relaxation profile never classifies a
		// handed-off mutex as thread-local.
		e.recordSync(entry.mutex, t.id)
		w := e.threads[entry.tid]
		w.pendingSignal = &signalRecord{tid: int32(t.id), v: tend, vt: t.vt}
		shm := e.shardFor(entry.mutex)
		svm := shm.syncvar(entry.mutex)
		if svm.held {
			svm.lockQ.push(entry.tid)
		} else {
			svm.held = true
			svm.owner = entry.tid
			e.wakeLocked(w, e.prepareAcquireLocked(w, shm, svm, t.vt))
		}
	}
	// A signal is a release: stamp it on the condvar's domain so the
	// Louvre invariant (the stamping domain's frontier covers every
	// release timestamp an acquire can join) holds for cond wakeups too.
	shc.stampRelease(tend)
	t.lastShard = int32(shc.id)
	t.beginSlice()
	if all {
		e.syncEvent(t, "broadcast", c)
	} else {
		e.syncEvent(t, "signal", c)
	}
	t.finishOpLocked()
	unlockShardSet(set)
}

// Barrier implements a pthreads-style barrier (§4.1): both an acquire and a
// release. The arrivals' modifications are merged into the lowest-ID
// arrival's memory in ascending thread-ID order, and every arrival leaves
// with a copy-on-write copy of that merged memory — exactly the paper's
// barrier algorithm. The merge mutates the blocked arrivals' spaces, which
// is only sound while the monitor proves they stay blocked, so unlike the
// acquire paths it runs entirely under the lock.
func (t *thread) Barrier(b api.Addr, n int) {
	if n <= 0 {
		// Pre-turn failure: no turn is held and no monitor is entered, so
		// this abort reaches failLocked from outside the usual in-turn
		// paths. That is safe by construction — failLocked takes only
		// exec.mu, flips the Kendo abort flag (unwinding spinners), and
		// probes every Blocked thread's mailbox — and the unwind below
		// goes through threadExit's abnormal path, which performs the
		// rendezvous itself. TestZeroCountBarrierAborts exercises exactly
		// this: peers blocked on locks, condvars and joins when the
		// pre-turn abort lands.
		t.exec.fail(fmt.Errorf("rfdet: thread %d: barrier with count %d", t.id, n))
		panic(errAborted)
	}
	t.turn()
	s := t.finishSlice()
	e := t.exec
	// Barriers take the global rendezvous: the last arrival merges into —
	// and re-clones — the *blocked* arrivals' spaces, state no single
	// domain guards.
	e.rendezvous(t)
	t.st.Barriers++
	e.recordSync(b, t.id)
	tend := t.commitSliceLocked(s)
	t.flushAllPending()
	sv := e.shardFor(b).syncvar(b)
	sv.barArrivals = append(sv.barArrivals, barArrival{tid: t.id, v: tend, vt: t.vt})
	if len(sv.barArrivals) < n {
		t.blockLocked(fmt.Sprintf("barrier %#x (%d/%d)", uint64(b), len(sv.barArrivals), n))
		t.finishOpLocked()
		e.releaseRendezvous(t)
		// The last arrival merges on our behalf and hands us the merged
		// memory; nothing after the wake touches shared state.
		ev := t.sleep()
		t.vt = ev.vt
		t.beginSlice()
		e.syncEvent(t, "barrier", b)
		return
	}

	// Last arrival: perform the merge on behalf of everyone. All other
	// arrivals are provably blocked, so their thread state may be mutated
	// under the monitor.
	arrivals := sv.barArrivals
	sv.barArrivals = nil
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i].tid < arrivals[j].tid })

	leader := e.threads[arrivals[0].tid]
	leader.flushAllPending()
	// The leader's space is the merge target: every parked elided byte must be
	// resident before peer modifications land on top of it.
	leader.flushAllRelax()
	releaseVT := arrivals[0].vt
	merged := arrivals[0].v.Clone()
	for _, a := range arrivals[1:] {
		releaseVT = vtime.Max(releaseVT, a.vt)
		merged = merged.Join(a.v)
	}
	// Merge in ascending thread-ID order: the thread with the smallest ID
	// merges first, so later (higher-ID) arrivals deterministically win
	// write-write races (§4.1). Collection only reads clocks and slice
	// pointers — never memory contents — so the applies can be deferred
	// until every arrival has been collected and then performed as one
	// coalesced last-writer-wins pass over the concatenated list. The
	// virtual-time charge stays per-slice, exactly as if each slice had
	// been applied in turn.
	var mergeCost vtime.Time
	var propagated []*slicestore.Slice
	for _, a := range arrivals[1:] {
		from := e.threads[a.tid]
		slices := leader.collectLocked(from, a.v, leader.vtime)
		for _, sl := range slices {
			mergeCost += vtime.ApplyCost(uint64(len(sl.Mods)), sl.Bytes)
			leader.st.SlicesPropagated++
			leader.st.BytesPropagated += sl.Bytes
		}
		propagated = append(propagated, slices...)
		leader.slicePtrs = append(leader.slicePtrs, slices...)
		leader.vtime = leader.vtime.Join(a.v)
	}
	if len(propagated) > 0 {
		start := stats.Now()
		if e.opts.NoCoalesce || len(propagated) < planCoalesceMin {
			for _, sl := range propagated {
				leader.space.ApplyRuns(sl.Mods)
			}
		} else {
			plan := leader.buildPlan(propagated)
			leader.applyPlanToSpace(plan)
			plan.Release()
		}
		el := stats.Since(start)
		leader.st.ApplyNanos += uint64(el)
		leader.tb.SpanDur(trace.PhaseApply, start, el)
	}
	releaseVT += vtime.FencePhase + mergeCost
	leader.vt = vtime.Max(leader.vt, releaseVT)
	leader.vtime = leader.vtime.Join(merged)

	// Give every other arrival a copy-on-write copy of the merged memory,
	// the leader's slice list, and the merged clock.
	for _, a := range arrivals[1:] {
		w := e.threads[a.tid]
		w.space.Release()
		w.space = leader.space.Clone()
		w.space.SetFaultHandler(w.onFault)
		// Clone does not inherit dirty tracking; re-enable it for the
		// arrival's next slice.
		w.enableDirtyTracking()
		w.slicePtrs = append(w.slicePtrs[:0], leader.slicePtrs...)
		w.vtime = w.vtime.Join(merged)
		w.preMerged = nil
		//detvet:orderfree drain-and-release of independent per-page entries; see TestPendingResetOrderFree.
		for pid, pe := range w.pending {
			if pe.patch != nil {
				pe.patch.Release()
			}
			delete(w.pending, pid)
		}
		// The replacement space already contains everything the arrival's
		// parked elided bytes carried (the leader merged the same slices), so
		// the pend layer is simply dropped with the old space.
		w.dropRelaxPend()
	}
	// Resume everyone.
	for _, a := range arrivals {
		if a.tid == t.id {
			continue
		}
		e.wakeLocked(e.threads[a.tid], wakeEvent{vt: releaseVT})
	}
	t.vt = vtime.Max(t.vt, releaseVT)
	t.beginSlice()
	e.syncEvent(t, "barrier", b)
	t.finishOpLocked()
	e.releaseRendezvous(t)
}

// Spawn implements pthread_create (§4.1): a release. The child inherits the
// parent's memory by copy-on-write cloning and the parent's slice-pointer
// list, and gets the next deterministic thread ID.
func (t *thread) Spawn(fn api.ThreadFunc) api.ThreadID {
	t.turn()
	// Pages with lazily pended updates are never snapshotted (the flush
	// happens before the snapshot on first touch), so the off-monitor diff
	// commutes with the flush below.
	s := t.finishSlice()
	e := t.exec
	// Spawn mutates the thread table and live accounting: rendezvous.
	e.rendezvous(t)
	t.st.Forks++
	// Lazily pended updates — and parked elided propagation bytes — must be
	// resident before the memory is cloned.
	t.flushAllPending()
	t.flushAllRelax()
	tend := t.commitSliceLocked(s)

	id := api.ThreadID(len(e.threads))
	child := &thread{
		exec:       e,
		id:         id,
		fn:         fn,
		monitoring: true,
		lastShard:  -1,
		space:      t.space.Clone(),
		vtime:      tend.Clone().Set(int(id), 1),
		vt:         t.vt + vtime.ThreadSpawn,
		wake:       make(chan wakeEvent, 1), //detvet:nativesync 1-buffered wake mailbox; exactly one monitor-ordered waker per sleep.
	}
	child.space.SetFaultHandler(child.onFault)
	child.enableDirtyTracking()
	child.slicePtrs = append(child.slicePtrs, t.slicePtrs...)
	if e.opts.LazyWrites {
		child.pending = make(map[mem.PageID]*pendEntry)
	}
	if e.opts.NoCommHint != nil && e.opts.NoCommHint(int32(id)) {
		child.noComm = true
	}
	child.proc = e.sched.Register(int32(id), t.proc.Clock()+1)
	child.tb = e.phases.NewThread(int(id))
	e.alloc.Register(int(id))
	e.threads = append(e.threads, child)
	e.publishPeersLocked()
	if live := int(e.liveCount.Add(1)); live > e.maxLive {
		e.maxLive = live
	}
	// From the first fork on, the main thread must monitor its
	// modifications (§4.1).
	if !t.monitoring {
		t.monitoring = true
		t.enableDirtyTracking()
		if e.opts.LazyWrites && t.pending == nil {
			t.pending = make(map[mem.PageID]*pendEntry)
		}
	}
	e.wg.Add(1)
	//detvet:nativesync thread bodies run on goroutines; determinism comes from Kendo turns, not goroutine scheduling.
	go e.runThread(child)
	t.beginSlice()
	e.syncEvent(t, "spawn", api.Addr(id))
	t.finishOpLocked()
	e.releaseRendezvous(t)
	return id
}

// Join implements pthread_join (§4.1): an acquire of the joined thread's
// exit release; all of the child's modifications are propagated here.
func (t *thread) Join(id api.ThreadID) {
	t.turn()
	s := t.finishSlice()
	e := t.exec
	// Join synchronizes with threadExit's rendezvous: the joiner list and
	// exit records are lifecycle state, not domain state.
	e.rendezvous(t)
	t.st.Joins++
	if id < 0 || int(id) >= len(e.threads) {
		e.failLocked(fmt.Errorf("rfdet: thread %d: join of unknown thread %d", t.id, id))
		e.releaseRendezvous(t)
		panic(errAborted)
	}
	if id == t.id {
		e.failLocked(fmt.Errorf("rfdet: thread %d: join of itself", t.id))
		e.releaseRendezvous(t)
		panic(errAborted)
	}
	target := e.threads[id]
	t.commitSliceLocked(s)
	if target.proc.Status() != kendo.Exited {
		target.joiners = append(target.joiners, t)
		t.blockLocked(fmt.Sprintf("join of thread %d", id))
		t.finishOpLocked()
		e.releaseRendezvous(t)
		// The exiting thread performs our acquire of its exit release
		// (threadExit) and hands us the slices to apply.
		ev := t.sleep()
		t.vt = ev.vt
		t.finishOpLocked()
		t.beginSlice()
		e.syncEvent(t, "join", api.Addr(id))
		t.applySlices(ev.slices, false)
		ev.pin.Release()
		return
	}
	slices := t.acquireFromCollectLocked(int32(target.id), target.exitV, target.exitVT)
	// Pinned under the rendezvous: the apply below runs after the turn and
	// the rendezvous are released.
	pin := e.pinFor(slices)
	t.beginSlice()
	e.syncEvent(t, "join", api.Addr(id))
	t.finishOpLocked()
	e.releaseRendezvous(t)
	t.applySlices(slices, false)
	pin.Release()
}

// AtomicAdd64 is the §4.6 low-level-atomics extension: a Kendo-ordered
// acquire+release on the word's own internal synchronization variable, with
// the store published as a one-word micro-slice.
func (t *thread) AtomicAdd64(a api.Addr, delta uint64) uint64 {
	var out uint64
	t.atomicOp(a, func(cur uint64) (uint64, bool) {
		out = cur + delta
		return out, true
	})
	return out
}

// AtomicCAS64 atomically compares-and-swaps the word at a, deterministically.
func (t *thread) AtomicCAS64(a api.Addr, old, new uint64) bool {
	var ok bool
	t.atomicOp(a, func(cur uint64) (uint64, bool) {
		ok = cur == old
		return new, ok
	})
	return ok
}

// atomicOp runs op as an acquire (propagate the latest release of the
// word's internal variable) followed, when op writes, by a release: the
// write is published as a one-word micro-slice and recorded as the
// variable's last release. The write itself bypasses slice monitoring — it
// is carried by the micro-slice, not by page diffing.
func (t *thread) atomicOp(a api.Addr, op func(cur uint64) (newVal uint64, wrote bool)) {
	e := t.exec
	en, elided := t.turnRelaxed(a)
	s := t.finishSlice()
	sh := e.shardFor(a)
	e.lockShard(t, sh)
	elided = t.relaxAdmitLocked(sh, en, a, elided)
	t.relaxElided = elided
	e.recordSync(a, t.id)
	t.st.AtomicsOps++
	sv := sh.syncvar(a)
	t.commitSliceLocked(s)
	slices := t.acquireCollectLocked(sh, sv)
	if len(slices) > 0 {
		// The acquired updates must be resident before the word is read, but
		// applying them touches only this thread's private space: drop the
		// domain around the application like any other acquire path. The
		// turn is still held, so the monitor state cannot shift meanwhile —
		// which also means no GC pass can run; the pin simply keeps every
		// deferred-apply window under the same discipline.
		pin := e.pinFor(slices)
		sh.mu.Unlock()
		t.applySlices(slices, false)
		pin.Release()
		e.relockShard(t, sh)
	}
	cur := t.space.Load64(uint64(a)) // flushes lazily pended updates if any
	newVal, wrote := op(cur)
	t.vt += 2 * vtime.MemOp
	if t.space.ReadTracking() {
		// The atomic access is its own Kendo-ordered micro-operation: keep the
		// word's read out of the enclosing slice's read set — and out of the
		// relaxation read evidence — because the slice's end clock can be
		// concurrent with a later atomic write that this operation in fact
		// happens-before through the word's own synchronization variable. The
		// read tracker holds exactly this Load64 here — the previous slice
		// was harvested by finishSlice and propagation applies bypass the
		// tracker — so resetting it removes just the atomic read.
		t.space.ResetReads()
	}
	if e.races != nil {
		// Record the access as a dedicated Atomic access: atomics are totally
		// ordered by the arbiter and never race with each other.
		acc := racecheck.Access{
			Tid:    int32(t.id),
			VT:     uint64(t.vt),
			Clock:  t.vtime.Clone(),
			Reads:  []racecheck.Range{{Addr: uint64(a), Len: 8}},
			Atomic: true,
		}
		if wrote {
			acc.Writes = []racecheck.Range{{Addr: uint64(a), Len: 8}}
		}
		t.st.RaceRecords++
		t.st.RaceReadBytes += 8
		e.races.Record(acc)
	}
	if wrote {
		data := make([]byte, 8)
		for i := 0; i < 8; i++ {
			data[i] = byte(newVal >> (8 * i))
		}
		run := mem.Run{Addr: uint64(a), Data: data}
		t.space.ApplyRuns([]mem.Run{run})
		micro := &slicestore.Slice{
			Tid:   int32(t.id),
			Time:  t.vtime.Clone(),
			Mods:  []mem.Run{run},
			Bytes: 8,
		}
		t.st.SlicesCreated++
		// histMu orders the list append and the clock tick against the
		// cross-thread readers (collectLocked, prelockLocked, gcLocked); see
		// commitSliceLocked for the full argument.
		t.histMu.Lock()
		t.slicePtrs = append(t.slicePtrs, micro)
		t.histMu.Unlock()
		e.maybeGC(t, e.store.Commit(micro))
		tend := t.vtime.Clone()
		t.histMu.Lock()
		t.vtime = t.vtime.Bump(int(t.id))
		t.histMu.Unlock()
		t.releaseLocked(sh, sv, tend)
	}
	t.beginSlice()
	e.syncEvent(t, "atomic", a)
	t.finishOpLocked()
	t.relaxElided = false
	sh.mu.Unlock()
}
