package core

import (
	"sync"

	"rfdet/internal/mem"
	"rfdet/internal/slicestore"
	"rfdet/internal/stats"
	"rfdet/internal/trace"
	"rfdet/internal/vclock"
	"rfdet/internal/vtime"
)

// Memory modification propagation (§4.3, Figure 5).
//
// When thread t performs an acquire that synchronizes with a release by
// thread "from", t walks from's slice-pointer list and propagates every
// slice S with
//
//	S.Time ≤ upper   (the upperlimit filter: only happens-before slices)
//	¬(S.Time ≤ lower) (the lowerlimit filter: skip already-seen slices)
//
// where upper is the release's timestamp and lower is t's own clock (or the
// prelock pre-merge clock). Propagated slices are appended to t's own
// slice-pointer list, which is what makes propagation transitive, and their
// modifications are applied to t's memory in list order, which is what makes
// remote modifications deterministically overwrite local ones.
//
// The work splits into a monitor half and a private half. Collecting walks
// the releaser's monitor-guarded slice-pointer list, appends to the
// acquirer's list and joins the vector clocks: that runs inside the
// operation's commit-monitor domain section, under the deterministic turn
// (which is what actually orders the lists — see shard.go). Applying the
// collected modification runs touches only the acquirer's private address
// space: for the acquire paths — where the applying thread owns its space —
// it runs off the monitor, after the operation releases its domain. The
// prelock pre-merge and the barrier merge instead mutate *blocked* threads'
// spaces, which is only sound while the monitor proves they stay blocked,
// so those applications remain under the domain (or rendezvous) lock.

// collectLocked gathers the slices to propagate from from's list. Must run
// inside a monitor section (the list is monitor-guarded). Slices already applied by a prelock
// pre-merge (t.preMerged) are skipped: the lowerlimit clock cannot represent
// that set exactly, because the pre-merge may have applied slices that are
// concurrent with everything the thread had officially seen.
func (t *thread) collectLocked(from *thread, upper, lower vclock.VC) []*slicestore.Slice {
	// from.histMu: under RaceRelaxed, from may be appending to its own list
	// right now from a turn-elided commit. Such a slice's clock has from's
	// own component strictly above anything ≤ upper, so whether the walk
	// sees it changes nothing — the guard is traversal memory-safety only.
	from.histMu.Lock()
	defer from.histMu.Unlock()
	t.st.CollectScanned += uint64(len(from.slicePtrs))
	if l := uint64(len(from.slicePtrs)); l > t.st.SliceListLen {
		t.st.SliceListLen = l
	}
	var out []*slicestore.Slice
	for _, s := range from.slicePtrs {
		if s.Time.Leq(lower) {
			t.st.SlicesFilteredLow++
			continue
		}
		if t.preMerged != nil && t.preMerged[s] {
			t.st.SlicesFilteredPremerged++
			continue
		}
		if s.Time.Leq(upper) {
			out = append(out, s)
		}
	}
	return out
}

// planCoalesceMin is the minimum propagated-list length for which building
// a coalesced write plan can pay off: a single slice's runs are already
// mutually disjoint (slice-end diffing emits gap-separated runs per page,
// and a micro-slice carries one run), so there is nothing to coalesce.
const planCoalesceMin = 2

// minBytesForParallelApply is the plan size below which fanning per-page
// copies out to the worker pool is not worth the goroutine handoff; mirrors
// minBytesForParallelDiff.
const minBytesForParallelApply = 4 * mem.PageSize

// modLists extracts the ordered modification lists of an ordered slice
// list — the input form mem.BuildPlan consumes.
func modLists(slices []*slicestore.Slice) [][]mem.Run {
	mods := make([][]mem.Run, len(slices))
	for i, s := range slices {
		mods[i] = s.Mods
	}
	return mods
}

// buildPlan collapses an ordered slice list into a last-writer-wins write
// plan and accounts the coalesced-away bytes to t (the thread doing the
// build).
func (t *thread) buildPlan(slices []*slicestore.Slice) *mem.WritePlan {
	ts := t.tb.Now()
	plan := mem.BuildPlan(modLists(slices))
	t.st.BytesCoalescedAway += plan.InputBytes - plan.UniqueBytes
	t.tb.Span(trace.PhasePlanBuild, ts)
	return plan
}

// sameSlices reports whether two collected lists are element-wise identical
// (slices are compared by pointer — they are immutable and interned in the
// slice store). Used to share one write plan across blocked waiters whose
// lowerlimit filters selected the same propagation set.
func sameSlices(a, b []*slicestore.Slice) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applySlices applies propagated slices to t's memory. With lazy writes the
// modifications are pended per page instead of written eagerly (§4.5);
// prelock marks applications performed during the prelock pre-merge, whose
// cost overlaps the lock holder's critical section.
//
// The slices themselves are immutable and the target space is t's own, so
// the caller need not hold the monitor — unless t is a *blocked* thread
// being pre-merged into by somebody else, in which case the caller must hold
// exec.mu (which is what proves t stays blocked).
//
// Applied runs are deliberately invisible to the space's sub-page dirty
// tracking (every apply path bypasses the store hooks): they run between the
// target thread's slices — its snapshots are empty, or, with lazy writes,
// the pended runs flush before the page's next snapshot — so the snapshot
// baseline of the following slice already contains them. Were they marked
// dirty, the next slice-end diff would merely scan bytes that equal the
// snapshot; by staying unmarked they keep the extent set the exact write-set
// of the slice (§4.3's "must not be monitored as local modifications").
func (t *thread) applySlices(slices []*slicestore.Slice, prelock bool) {
	t.applySlicesPlanned(slices, nil, prelock)
}

// applySlicesPlanned is applySlices with an optional pre-built coalesced
// plan for exactly this slice list (plan sharing across blocked waiters).
// With plan == nil one is built here when coalescing applies.
//
// Two invariants keep the plan path bit-identical to the sequential seed
// path:
//
//   - memory: a last-writer-wins plan leaves every covered byte at the value
//     of its last covering run in list order — exactly the state sequential
//     list-order application converges to — and the intermediate states are
//     unobservable (t is between slices, or provably blocked);
//   - virtual time: the cost model still charges per-slice ApplyCost (or the
//     per-slice lazy bookkeeping cost) for every propagated slice, as the
//     paper's system would — the coalescing win is host wall time
//     (Stats.ApplyNanos), deliberately invisible to the deterministic clock.
func (t *thread) applySlicesPlanned(slices []*slicestore.Slice, plan *mem.WritePlan, prelock bool) {
	if len(slices) == 0 {
		return
	}
	start := stats.Now()
	// Race-aware propagation elision (relax.go): slices whose writes overlap
	// no unordered peer's read evidence are parked instead of applied,
	// dropping them from the plan before fan-out. Only on the eager path
	// with a plan built here — a shared plan covers every waiter's list, and
	// the lazy pend must charge its flush cost at deterministic points.
	var elided []*slicestore.Slice
	if plan == nil && t.pending == nil && t.exec.relaxElide() {
		slices, elided = t.partitionElidable(slices)
	}
	coalesce := plan != nil ||
		(!t.exec.opts.NoCoalesce && len(slices) >= planCoalesceMin)
	ownPlan := coalesce && plan == nil
	if ownPlan {
		plan = t.buildPlan(slices)
	}
	for _, s := range slices {
		switch {
		case t.pending == nil && coalesce:
			// The write itself happens once, through the plan, below.
			t.vt += vtime.ApplyCost(uint64(len(s.Mods)), s.Bytes)
		case t.pending == nil:
			t.relaxFlushForRuns(s.Mods)
			t.space.ApplyRuns(s.Mods)
			t.vt += vtime.ApplyCost(uint64(len(s.Mods)), s.Bytes)
		case coalesce:
			// The pend itself happens once, through the plan, below; charge
			// the same per-slice bookkeeping cost pendSlice charges.
			t.vt += vtime.Time(len(s.Mods)) * 4
		default:
			t.pendSlice(s)
		}
		t.st.SlicesPropagated++
		t.st.BytesPropagated += s.Bytes
		if prelock {
			t.st.PrelockBytes += s.Bytes
		}
	}
	for _, s := range elided {
		// The elided slice's bytes park in the relaxPend layer; the virtual
		// time and propagation counters are charged exactly as the eager
		// apply above would charge them, so the elision decision — which
		// depends on host-timed evidence — is invisible to every
		// deterministic observable.
		t.relaxPendSlice(s)
		t.vt += vtime.ApplyCost(uint64(len(s.Mods)), s.Bytes)
		t.st.SlicesPropagated++
		t.st.BytesPropagated += s.Bytes
		if prelock {
			t.st.PrelockBytes += s.Bytes
		}
		t.st.SkippedSliceApplies++
		t.st.BytesElided += s.Bytes
		t.tb.Mark(markSliceElide, s.Bytes)
	}
	if coalesce && len(slices) > 0 {
		if t.pending != nil {
			t.pendPlan(plan)
		} else {
			t.relaxFlushForPlan(plan)
			t.applyPlanToSpace(plan)
		}
		if ownPlan {
			plan.Release()
		}
	}
	el := stats.Since(start)
	t.st.ApplyNanos += uint64(el)
	phase := trace.PhaseApply
	if prelock {
		phase = trace.PhasePremerge
	}
	t.tb.SpanDur(phase, start, el)
}

// applyPlanToSpace writes a plan into t's space, fanning the disjoint
// per-page copies out to the bounded diff/apply worker pool when the plan is
// large enough. The copy-on-write page resolution runs first, sequentially —
// the page table belongs to the owning thread — after which each worker
// touches only its own page's bytes, so the result is deterministic
// regardless of scheduling ("reassembly" is the identity: plan runs are
// mutually disjoint).
func (t *thread) applyPlanToSpace(plan *mem.WritePlan) {
	e := t.exec
	if plan.UniqueBytes < minBytesForParallelApply || len(plan.Patches) < 2 || cap(e.diffSem) <= 1 {
		t.space.ApplyPlan(plan)
		return
	}
	targets := make([][]byte, len(plan.Patches))
	for i, pp := range plan.Patches {
		targets[i] = t.space.WritablePageData(pp.Page())
	}
	var wg sync.WaitGroup //detvet:nativesync joins the bounded patch workers below.
	for i := range plan.Patches {
		//detvet:nativesync non-blocking token acquire; on saturation the patch applies inline.
		select {
		case e.diffSem <- struct{}{}:
			wg.Add(1)
			//detvet:nativesync bounded diffSem worker: patches are disjoint, reassembly is the identity.
			go func(i int) {
				defer wg.Done()
				mem.ApplyPatchData(targets[i], plan.Patches[i])
				<-e.diffSem
			}(i)
		default:
			// Pool saturated: copy inline rather than queueing.
			mem.ApplyPatchData(targets[i], plan.Patches[i])
		}
	}
	wg.Wait()
}

// acquireCollectLocked performs the monitor half of an acquire against
// internal variable sv: collect the slices that happen-before sv's last
// release, publish them on t's slice-pointer list, and join the vector
// clocks (§4.1, §4.2). The thread's virtual time also joins the release's
// virtual time: Kendo ordered this acquire after that release, so in a
// parallel execution the acquirer could not have proceeded earlier.
//
// The returned slices still have to be applied to t's memory — the caller
// does that via applySlices once it has released the monitor. Deferring the
// application past the list append is sound: propagation exchanges slice
// pointers, never memory contents, so other threads collecting from t are
// unaffected by when t's private space absorbs the runs; and t applies them
// before returning to application code, so t itself never reads memory
// missing an acquired update.
//
//detvet:holds sh.mu
func (t *thread) acquireCollectLocked(sh *monShard, sv *syncVar) []*slicestore.Slice {
	if sv.lastTid < 0 {
		t.lastShard = int32(sh.id)
		return nil
	}
	if t.lastShard >= 0 && t.lastShard != int32(sh.id) {
		// Cross-domain acquire: the happens-before edge enters a domain the
		// thread did not last synchronize in. The joined lastTime is covered
		// by this domain's frontier at the release's stamped version
		// (sv.lastVer ≤ frontier version, checked by Options.Validate), so
		// the edge is exactly the one the global monitor provided.
		sh.crossAcquires++
	}
	t.lastShard = int32(sh.id)
	t.vt = vtime.Max(t.vt, sv.lastVT)
	var slices []*slicestore.Slice
	if sv.lastTid != int32(t.id) {
		from := t.exec.threads[sv.lastTid]
		slices = t.collectLocked(from, sv.lastTime, t.vtime)
	}
	// histMu: a turn-elided self-acquire (lastTid == t.id, relax.go) reaches
	// this off the turn and still joins its clock, which a turn-held peer
	// may be cloning or walking concurrently. The join is a no-op in that
	// case (the thread's clock already covers its own release time), so the
	// guard is memory-safety only.
	t.histMu.Lock()
	if len(slices) > 0 {
		t.slicePtrs = append(t.slicePtrs, slices...)
	}
	t.vtime = t.vtime.Join(sv.lastTime)
	t.histMu.Unlock()
	t.preMerged = nil
	return slices
}

// acquireFromCollectLocked is acquireCollectLocked against an explicit
// (thread, timestamp, virtual time) release record — used for cond-signal
// wakeups and joins, where the release is not carried by a mutex-style
// lastTid/lastTime pair.
func (t *thread) acquireFromCollectLocked(fromTid int32, upper vclock.VC, releaseVT vtime.Time) []*slicestore.Slice {
	t.vt = vtime.Max(t.vt, releaseVT)
	var slices []*slicestore.Slice
	if fromTid != int32(t.id) {
		from := t.exec.threads[fromTid]
		slices = t.collectLocked(from, upper, t.vtime)
	}
	t.histMu.Lock()
	if len(slices) > 0 {
		t.slicePtrs = append(t.slicePtrs, slices...)
	}
	t.vtime = t.vtime.Join(upper)
	t.histMu.Unlock()
	t.preMerged = nil
	return slices
}

// prepareAcquireLocked performs, on the waker's side, the complete acquire a
// blocked thread will need when it wakes owning synchronization variable sv:
// the handoff virtual-time catch-up, the pending cond-signal acquire (if the
// sleeper was moved from a condition queue onto the mutex queue), and the
// mutex acquire itself. The caller holds the deterministic turn and the
// monitor, and w is provably blocked, so every read is deterministic and
// every mutation of w is safe. The returned event carries w's new virtual
// time and the collected slices; applying them to w's private memory is the
// only work left for w itself, off the monitor (§4.3's propagation with the
// collect and apply halves on opposite sides of the wakeup).
//
//detvet:holds sh.mu
func (e *exec) prepareAcquireLocked(w *thread, sh *monShard, sv *syncVar, handoffVT vtime.Time) wakeEvent {
	w.vt = vtime.Max(w.vt, handoffVT) + vtime.LockHandoff
	var slices []*slicestore.Slice
	if sig := w.pendingSignal; sig != nil {
		w.pendingSignal = nil
		slices = w.acquireFromCollectLocked(sig.tid, sig.v, sig.vt)
	}
	slices = append(slices, w.acquireCollectLocked(sh, sv)...)
	return wakeEvent{vt: w.vt, slices: slices, pin: e.pinFor(slices)}
}

// premergeLocked applies slices to thread w as a prelock pre-merge,
// remembering them in w.preMerged so the eventual acquire skips them. w is
// either the calling thread (queueing on a held lock) or a provably blocked
// waiter mutated under the monitor.
func (w *thread) premergeLocked(slices []*slicestore.Slice) {
	w.premergePlannedLocked(slices, nil)
}

// premergePlannedLocked is premergeLocked with an optional pre-built write
// plan for exactly this slice list (the shared-plan release path below).
func (w *thread) premergePlannedLocked(slices []*slicestore.Slice, plan *mem.WritePlan) {
	if len(slices) == 0 {
		return
	}
	if w.preMerged == nil {
		w.preMerged = make(map[*slicestore.Slice]bool, len(slices))
	}
	for _, s := range slices {
		w.preMerged[s] = true
	}
	w.applySlicesPlanned(slices, plan, true)
	w.histMu.Lock()
	w.slicePtrs = append(w.slicePtrs, slices...)
	w.histMu.Unlock()
}

// prelockLocked performs the prelock pre-merge (§4.5): while blocked on a
// held lock, the thread already knows its eventual acquire must happen-after
// the holder's *current* vector time (read deterministically under the
// turn), so it can merge those updates now, overlapping the holder's
// critical section. The cost lands on this thread's virtual clock while it
// is blocked, and is absorbed by the max() with the release time at the
// eventual acquire — exactly the "propagation moved into parallel mode"
// effect the paper measures at ~80%.
func (t *thread) prelockLocked(sv *syncVar) {
	if !t.exec.opts.Prelock || sv.owner < 0 {
		return
	}
	holder := t.exec.threads[sv.owner]
	// histMu: the holder is running user code and may be mid-commit of a
	// turn-elided operation on one of its thread-local variables.
	holder.histMu.Lock()
	upper := holder.vtime.Clone()
	holder.histMu.Unlock()
	t.premergeLocked(t.collectLocked(holder, upper, t.vtime))
}

// prelockReleaseLocked continues the prelock pre-merge while a thread stays
// blocked: each time the contended variable is released to somebody else,
// the still-queued waiters merge the newly committed updates immediately —
// in parallel with the new holder's critical section. Only the updates of
// the waiter's *immediately preceding* release remain for the eventual
// acquire, which is how the paper moves ~80% of propagation work off the
// critical path (§4.5). The waiter is provably blocked, so its state may be
// mutated under the monitor (as in the barrier merge).
//
// The write plan is computed once per release and shared across every
// queued waiter whose lowerlimit filter collected the identical slice list —
// the common case: waiters that have been queued since the previous release
// have pre-merged everything except exactly the slices this release commits.
// Sharing is sound because a plan's effect depends only on the list it was
// built from, never on the target space: applying it to any waiter leaves
// every covered byte at its list-order last writer, exactly as that waiter's
// own sequential application of the same list would. Waiters that collected
// a *different* list (they queued mid-stream and have seen a different
// prefix) get their own plan — per-waiter application order is part of the
// deterministic race-resolution policy and must not be perturbed. This turns
// the release from O(waiters × slices × bytes) under the monitor into one
// O(slices × bytes) build plus O(unique bytes) per waiter.
func (e *exec) prelockReleaseLocked(sv *syncVar, releaser *thread) {
	if !e.opts.Prelock {
		return
	}
	var planList []*slicestore.Slice
	var plan *mem.WritePlan
	for _, wid := range sv.lockQ.items() {
		w := e.threads[wid]
		slices := w.collectLocked(releaser, sv.lastTime, w.vtime)
		if e.opts.NoCoalesce || len(slices) < planCoalesceMin {
			w.premergeLocked(slices)
			continue
		}
		if sameSlices(slices, planList) {
			w.st.PlanReuse++
		} else {
			if plan != nil {
				plan.Release()
			}
			planList = slices
			plan = w.buildPlan(slices)
		}
		w.premergePlannedLocked(slices, plan)
	}
	if plan != nil {
		plan.Release()
	}
}
