package core

import (
	"time"

	"rfdet/internal/slicestore"
	"rfdet/internal/vclock"
	"rfdet/internal/vtime"
)

// Memory modification propagation (§4.3, Figure 5).
//
// When thread t performs an acquire that synchronizes with a release by
// thread "from", t walks from's slice-pointer list and propagates every
// slice S with
//
//	S.Time ≤ upper   (the upperlimit filter: only happens-before slices)
//	¬(S.Time ≤ lower) (the lowerlimit filter: skip already-seen slices)
//
// where upper is the release's timestamp and lower is t's own clock (or the
// prelock pre-merge clock). Propagated slices are appended to t's own
// slice-pointer list, which is what makes propagation transitive, and their
// modifications are applied to t's memory in list order, which is what makes
// remote modifications deterministically overwrite local ones.
//
// The work splits into a monitor half and a private half. Collecting walks
// the releaser's monitor-guarded slice-pointer list, appends to the
// acquirer's list and joins the vector clocks: that must hold exec.mu.
// Applying the collected modification runs touches only the acquirer's
// private address space: for the acquire paths — where the applying thread
// owns its space — it runs off the monitor, after the operation releases
// e.mu. The prelock pre-merge and the barrier merge instead mutate *blocked*
// threads' spaces, which is only sound while the monitor proves they stay
// blocked, so those applications remain under the lock.

// collectLocked gathers the slices to propagate from from's list. Must hold
// exec.mu: the list is monitor-guarded. Slices already applied by a prelock
// pre-merge (t.preMerged) are skipped: the lowerlimit clock cannot represent
// that set exactly, because the pre-merge may have applied slices that are
// concurrent with everything the thread had officially seen.
func (t *thread) collectLocked(from *thread, upper, lower vclock.VC) []*slicestore.Slice {
	var out []*slicestore.Slice
	for _, s := range from.slicePtrs {
		if s.Time.Leq(lower) {
			t.st.SlicesFilteredLow++
			continue
		}
		if t.preMerged != nil && t.preMerged[s] {
			t.st.SlicesFilteredPremerged++
			continue
		}
		if s.Time.Leq(upper) {
			out = append(out, s)
		}
	}
	return out
}

// applySlices applies propagated slices to t's memory. With lazy writes the
// modifications are pended per page instead of written eagerly (§4.5);
// prelock marks applications performed during the prelock pre-merge, whose
// cost overlaps the lock holder's critical section.
//
// The slices themselves are immutable and the target space is t's own, so
// the caller need not hold the monitor — unless t is a *blocked* thread
// being pre-merged into by somebody else, in which case the caller must hold
// exec.mu (which is what proves t stays blocked).
//
// Applied runs are deliberately invisible to the space's sub-page dirty
// tracking (mem.ApplyRuns bypasses the store hooks): every apply path runs
// between the target thread's slices — its snapshots are empty, or, with
// lazy writes, the pended runs flush before the page's next snapshot — so
// the snapshot baseline of the following slice already contains them. Were
// they marked dirty, the next slice-end diff would merely scan bytes that
// equal the snapshot; by staying unmarked they keep the extent set the exact
// write-set of the slice (§4.3's "must not be monitored as local
// modifications").
func (t *thread) applySlices(slices []*slicestore.Slice, prelock bool) {
	if len(slices) == 0 {
		return
	}
	start := time.Now()
	for _, s := range slices {
		if t.pending != nil {
			t.pendSlice(s)
		} else {
			t.space.ApplyRuns(s.Mods)
			t.vt += vtime.ApplyCost(uint64(len(s.Mods)), s.Bytes)
		}
		t.st.SlicesPropagated++
		t.st.BytesPropagated += s.Bytes
		if prelock {
			t.st.PrelockBytes += s.Bytes
		}
	}
	t.st.ApplyNanos += uint64(time.Since(start))
}

// acquireCollectLocked performs the monitor half of an acquire against
// internal variable sv: collect the slices that happen-before sv's last
// release, publish them on t's slice-pointer list, and join the vector
// clocks (§4.1, §4.2). The thread's virtual time also joins the release's
// virtual time: Kendo ordered this acquire after that release, so in a
// parallel execution the acquirer could not have proceeded earlier.
//
// The returned slices still have to be applied to t's memory — the caller
// does that via applySlices once it has released the monitor. Deferring the
// application past the list append is sound: propagation exchanges slice
// pointers, never memory contents, so other threads collecting from t are
// unaffected by when t's private space absorbs the runs; and t applies them
// before returning to application code, so t itself never reads memory
// missing an acquired update.
func (t *thread) acquireCollectLocked(sv *syncVar) []*slicestore.Slice {
	if sv.lastTid < 0 {
		return nil
	}
	t.vt = vtime.Max(t.vt, sv.lastVT)
	var slices []*slicestore.Slice
	if sv.lastTid != int32(t.id) {
		from := t.exec.threads[sv.lastTid]
		slices = t.collectLocked(from, sv.lastTime, t.vtime)
		t.slicePtrs = append(t.slicePtrs, slices...)
	}
	t.vtime = t.vtime.Join(sv.lastTime)
	t.preMerged = nil
	return slices
}

// acquireFromCollectLocked is acquireCollectLocked against an explicit
// (thread, timestamp, virtual time) release record — used for cond-signal
// wakeups and joins, where the release is not carried by a mutex-style
// lastTid/lastTime pair.
func (t *thread) acquireFromCollectLocked(fromTid int32, upper vclock.VC, releaseVT vtime.Time) []*slicestore.Slice {
	t.vt = vtime.Max(t.vt, releaseVT)
	var slices []*slicestore.Slice
	if fromTid != int32(t.id) {
		from := t.exec.threads[fromTid]
		slices = t.collectLocked(from, upper, t.vtime)
		t.slicePtrs = append(t.slicePtrs, slices...)
	}
	t.vtime = t.vtime.Join(upper)
	t.preMerged = nil
	return slices
}

// prepareAcquireLocked performs, on the waker's side, the complete acquire a
// blocked thread will need when it wakes owning synchronization variable sv:
// the handoff virtual-time catch-up, the pending cond-signal acquire (if the
// sleeper was moved from a condition queue onto the mutex queue), and the
// mutex acquire itself. The caller holds the deterministic turn and the
// monitor, and w is provably blocked, so every read is deterministic and
// every mutation of w is safe. The returned event carries w's new virtual
// time and the collected slices; applying them to w's private memory is the
// only work left for w itself, off the monitor (§4.3's propagation with the
// collect and apply halves on opposite sides of the wakeup).
func (e *exec) prepareAcquireLocked(w *thread, sv *syncVar, handoffVT vtime.Time) wakeEvent {
	w.vt = vtime.Max(w.vt, handoffVT) + vtime.LockHandoff
	var slices []*slicestore.Slice
	if sig := w.pendingSignal; sig != nil {
		w.pendingSignal = nil
		slices = w.acquireFromCollectLocked(sig.tid, sig.v, sig.vt)
	}
	slices = append(slices, w.acquireCollectLocked(sv)...)
	return wakeEvent{vt: w.vt, slices: slices}
}

// premergeLocked applies slices to thread w as a prelock pre-merge,
// remembering them in w.preMerged so the eventual acquire skips them. w is
// either the calling thread (queueing on a held lock) or a provably blocked
// waiter mutated under the monitor.
func (w *thread) premergeLocked(slices []*slicestore.Slice) {
	if len(slices) == 0 {
		return
	}
	if w.preMerged == nil {
		w.preMerged = make(map[*slicestore.Slice]bool, len(slices))
	}
	for _, s := range slices {
		w.preMerged[s] = true
	}
	w.applySlices(slices, true)
	w.slicePtrs = append(w.slicePtrs, slices...)
}

// prelockLocked performs the prelock pre-merge (§4.5): while blocked on a
// held lock, the thread already knows its eventual acquire must happen-after
// the holder's *current* vector time (read deterministically under the
// turn), so it can merge those updates now, overlapping the holder's
// critical section. The cost lands on this thread's virtual clock while it
// is blocked, and is absorbed by the max() with the release time at the
// eventual acquire — exactly the "propagation moved into parallel mode"
// effect the paper measures at ~80%.
func (t *thread) prelockLocked(sv *syncVar) {
	if !t.exec.opts.Prelock || sv.owner < 0 {
		return
	}
	holder := t.exec.threads[sv.owner]
	upper := holder.vtime.Clone()
	t.premergeLocked(t.collectLocked(holder, upper, t.vtime))
}

// prelockReleaseLocked continues the prelock pre-merge while a thread stays
// blocked: each time the contended variable is released to somebody else,
// the still-queued waiters merge the newly committed updates immediately —
// in parallel with the new holder's critical section. Only the updates of
// the waiter's *immediately preceding* release remain for the eventual
// acquire, which is how the paper moves ~80% of propagation work off the
// critical path (§4.5). The waiter is provably blocked, so its state may be
// mutated under the monitor (as in the barrier merge).
func (e *exec) prelockReleaseLocked(sv *syncVar, releaser *thread) {
	if !e.opts.Prelock {
		return
	}
	for _, wid := range sv.lockQ {
		w := e.threads[wid]
		w.premergeLocked(w.collectLocked(releaser, sv.lastTime, w.vtime))
	}
}
