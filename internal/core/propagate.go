package core

import (
	"rfdet/internal/slicestore"
	"rfdet/internal/vclock"
	"rfdet/internal/vtime"
)

// Memory modification propagation (§4.3, Figure 5).
//
// When thread t performs an acquire that synchronizes with a release by
// thread "from", t walks from's slice-pointer list and propagates every
// slice S with
//
//	S.Time ≤ upper   (the upperlimit filter: only happens-before slices)
//	¬(S.Time ≤ lower) (the lowerlimit filter: skip already-seen slices)
//
// where upper is the release's timestamp and lower is t's own clock (or the
// prelock pre-merge clock). Propagated slices are appended to t's own
// slice-pointer list, which is what makes propagation transitive, and their
// modifications are applied to t's memory in list order, which is what makes
// remote modifications deterministically overwrite local ones.

// collectLocked gathers the slices to propagate from from's list. Must hold
// exec.mu: the list is monitor-guarded. Slices already applied by a prelock
// pre-merge (t.preMerged) are skipped: the lowerlimit clock cannot represent
// that set exactly, because the pre-merge may have applied slices that are
// concurrent with everything the thread had officially seen.
func (t *thread) collectLocked(from *thread, upper, lower vclock.VC) []*slicestore.Slice {
	var out []*slicestore.Slice
	for _, s := range from.slicePtrs {
		if s.Time.Leq(lower) {
			t.st.SlicesFilteredLow++
			continue
		}
		if t.preMerged != nil && t.preMerged[s] {
			t.st.SlicesFilteredLow++
			continue
		}
		if s.Time.Leq(upper) {
			out = append(out, s)
		}
	}
	return out
}

// applySlicesLocked applies propagated slices to the local memory and
// appends them to the local slice-pointer list. With lazy writes the
// modifications are pended per page instead of written eagerly (§4.5).
// prelock marks applications performed during the prelock pre-merge, whose
// cost overlaps the lock holder's critical section.
func (t *thread) applySlicesLocked(slices []*slicestore.Slice, prelock bool) {
	for _, s := range slices {
		if t.pending != nil {
			t.pendSlice(s)
		} else {
			t.space.ApplyRuns(s.Mods)
			t.vt += vtime.ApplyCost(uint64(len(s.Mods)), s.Bytes)
		}
		t.st.SlicesPropagated++
		t.st.BytesPropagated += s.Bytes
		if prelock {
			t.st.PrelockBytes += s.Bytes
		}
	}
	t.slicePtrs = append(t.slicePtrs, slices...)
}

// acquireLocked performs the acquire side of a synchronization with internal
// variable sv: propagate everything that happens-before sv's last release,
// then join the vector clocks (§4.1, §4.2). The thread's virtual time also
// joins the release's virtual time: Kendo ordered this acquire after that
// release, so in a parallel execution the acquirer could not have proceeded
// earlier.
func (t *thread) acquireLocked(sv *syncVar) {
	if sv.lastTid < 0 {
		return
	}
	t.vt = vtime.Max(t.vt, sv.lastVT)
	if sv.lastTid != int32(t.id) {
		from := t.exec.threads[sv.lastTid]
		slices := t.collectLocked(from, sv.lastTime, t.vtime)
		t.applySlicesLocked(slices, false)
	}
	t.vtime = t.vtime.Join(sv.lastTime)
	t.preMerged = nil
}

// acquireFromLocked is acquireLocked against an explicit (thread, timestamp,
// virtual time) release record — used for cond-signal wakeups, barrier
// merges and joins, where the release is not carried by a mutex-style
// lastTid/lastTime pair.
func (t *thread) acquireFromLocked(fromTid int32, upper vclock.VC, releaseVT vtime.Time) {
	t.vt = vtime.Max(t.vt, releaseVT)
	if fromTid != int32(t.id) {
		from := t.exec.threads[fromTid]
		slices := t.collectLocked(from, upper, t.vtime)
		t.applySlicesLocked(slices, false)
	}
	t.vtime = t.vtime.Join(upper)
	t.preMerged = nil
}

// prelockLocked performs the prelock pre-merge (§4.5): while blocked on a
// held lock, the thread already knows its eventual acquire must happen-after
// the holder's *current* vector time (read deterministically under the
// turn), so it can merge those updates now, overlapping the holder's
// critical section. The pre-merged slices are remembered in t.preMerged so
// the eventual acquire does not apply them again.
func (t *thread) prelockLocked(sv *syncVar) {
	if !t.exec.opts.Prelock || sv.owner < 0 {
		return
	}
	holder := t.exec.threads[sv.owner]
	upper := holder.vtime.Clone()
	slices := t.collectLocked(holder, upper, t.vtime)
	if len(slices) == 0 {
		return
	}
	// Apply now; the cost lands on this thread's virtual clock while it is
	// blocked, and is absorbed by the max() with the release time at the
	// eventual acquire — exactly the "propagation moved into parallel mode"
	// effect the paper measures at ~80%.
	if t.preMerged == nil {
		t.preMerged = make(map[*slicestore.Slice]bool, len(slices))
	}
	for _, s := range slices {
		if t.pending != nil {
			t.pendSlice(s)
		} else {
			t.space.ApplyRuns(s.Mods)
			t.vt += vtime.ApplyCost(uint64(len(s.Mods)), s.Bytes)
		}
		t.st.SlicesPropagated++
		t.st.BytesPropagated += s.Bytes
		t.st.PrelockBytes += s.Bytes
		t.preMerged[s] = true
	}
	t.slicePtrs = append(t.slicePtrs, slices...)
}

// prelockReleaseLocked continues the prelock pre-merge while a thread stays
// blocked: each time the contended variable is released to somebody else,
// the still-queued waiters merge the newly committed updates immediately —
// in parallel with the new holder's critical section. Only the updates of
// the waiter's *immediately preceding* release remain for the eventual
// acquire, which is how the paper moves ~80% of propagation work off the
// critical path (§4.5). The waiter is provably blocked, so its state may be
// mutated under the monitor (as in the barrier merge).
func (e *exec) prelockReleaseLocked(sv *syncVar, releaser *thread) {
	if !e.opts.Prelock {
		return
	}
	for _, wid := range sv.lockQ {
		w := e.threads[wid]
		slices := w.collectLocked(releaser, sv.lastTime, w.vtime)
		if len(slices) == 0 {
			continue
		}
		if w.preMerged == nil {
			w.preMerged = make(map[*slicestore.Slice]bool, len(slices))
		}
		for _, s := range slices {
			if w.pending != nil {
				w.pendSlice(s)
			} else {
				w.space.ApplyRuns(s.Mods)
				w.vt += vtime.ApplyCost(uint64(len(s.Mods)), s.Bytes)
			}
			w.st.SlicesPropagated++
			w.st.BytesPropagated += s.Bytes
			w.st.PrelockBytes += s.Bytes
			w.preMerged[s] = true
		}
		w.slicePtrs = append(w.slicePtrs, slices...)
	}
}
