package core

import (
	"fmt"
	"testing"

	"rfdet/internal/api"
	"rfdet/internal/mem"
	"rfdet/internal/slicestore"
)

// These tests back the //detvet:orderfree annotations: each exercises a loop
// that ranges over a Go map (randomized iteration order) many times and
// demands a canonical, order-independent outcome. Go rerandomizes map
// iteration per range statement, so dense repetition covers many orders.

// pendThread builds the minimal thread state pendSlice needs.
func pendThread(noCoalesce bool) *thread {
	return &thread{
		exec:    &exec{opts: Options{NoCoalesce: noCoalesce}},
		space:   mem.NewSpace(),
		pending: make(map[mem.PageID]*pendEntry),
	}
}

// materializePending flushes a thread's pending entries into a fresh space
// and renders the touched pages canonically (ascending page ID).
func materializePending(t *thread) string {
	dst := mem.NewSpace()
	ids := make([]mem.PageID, 0, len(t.pending))
	for pid, pe := range t.pending {
		ids = append(ids, pid)
		if pe.patch != nil {
			dst.ApplyPatch(pe.patch)
		} else {
			dst.ApplyRuns(pe.raw)
		}
	}
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	out := ""
	buf := make([]byte, mem.PageSize)
	for _, pid := range ids {
		dst.ReadBytes(mem.PageAddr(pid), buf)
		out += fmt.Sprintf("%d:%x;", pid, buf)
	}
	return out
}

// TestPendSliceOrderFree pends overlapping slices into fresh threads many
// times: the materialized pending image and the virtual-time charge must be
// identical regardless of the order pendSlice's per-page map range visits
// pages, in both the coalescing and the NoCoalesce (raw append) modes.
func TestPendSliceOrderFree(t *testing.T) {
	mkRun := func(a uint64, b ...byte) mem.Run { return mem.Run{Addr: a, Data: b} }
	s1 := &slicestore.Slice{Mods: []mem.Run{
		mkRun(mem.PageAddr(3)+8, 1, 2, 3, 4),
		mkRun(mem.PageAddr(7)+0, 9, 9),
		mkRun(mem.PageAddr(1)+100, 5),
		mkRun(mem.PageAddr(12)+50, 6, 7),
		mkRun(mem.PageAddr(5)+200, 8),
	}}
	s2 := &slicestore.Slice{Mods: []mem.Run{
		mkRun(mem.PageAddr(3)+10, 42, 43), // overlaps s1's page-3 run
		mkRun(mem.PageAddr(9)+16, 11),
		mkRun(mem.PageAddr(1)+100, 77), // overwrites s1's page-1 byte
	}}
	for _, noCoalesce := range []bool{false, true} {
		var want string
		var wantVT int64
		for rep := 0; rep < 40; rep++ {
			th := pendThread(noCoalesce)
			th.pendSlice(s1)
			th.pendSlice(s2)
			got := materializePending(th)
			if rep == 0 {
				want, wantVT = got, int64(th.vt)
				continue
			}
			if got != want {
				t.Fatalf("noCoalesce=%v rep %d: pending image diverged:\n got %s\nwant %s",
					noCoalesce, rep, got, want)
			}
			if int64(th.vt) != wantVT {
				t.Fatalf("noCoalesce=%v rep %d: vt %d != %d", noCoalesce, rep, th.vt, wantVT)
			}
		}
	}
}

// TestPendingResetOrderFree drives the barrier's pending drain-and-release
// loop through the real runtime: threads accumulate lazy pending state from
// propagation, then hit a barrier, which discards it (the re-clone makes it
// moot). Whatever order the drain loop visits pages in, post-barrier reads
// must see the merged image, and the whole run must stay deterministic.
func TestPendingResetOrderFree(t *testing.T) {
	opts := DefaultOptions() // LazyWrites on
	const threads = 4
	var want []uint64
	for rep := 0; rep < 20; rep++ {
		report := run(t, opts, func(th api.Thread) {
			bar := api.Addr(64)
			l := api.Addr(128)
			arr := th.Malloc(8 * 64)
			var ids []api.ThreadID
			for i := 1; i < threads; i++ {
				i := i
				ids = append(ids, th.Spawn(func(w api.Thread) {
					// Write a private stripe, publish via the lock (threads
					// that later acquire pend these writes lazily)…
					for k := 0; k < 16; k++ {
						w.Store64(arr+api.Addr(8*(16*i+k)), uint64(1000*i+k))
					}
					w.Lock(l)
					w.Unlock(l)
					// …then discard pending state at the barrier and read
					// everyone's stripes after it.
					w.Barrier(bar, threads)
					var sum uint64
					for k := 0; k < 16*threads; k++ {
						sum += w.Load64(arr + api.Addr(8*k))
					}
					w.Observe(sum)
				}))
			}
			for k := 0; k < 16; k++ {
				th.Store64(arr+api.Addr(8*k), uint64(k))
			}
			th.Lock(l)
			th.Unlock(l)
			th.Barrier(bar, threads)
			var sum uint64
			for k := 0; k < 16*threads; k++ {
				sum += th.Load64(arr + api.Addr(8*k))
			}
			th.Observe(sum)
			for _, id := range ids {
				th.Join(id)
			}
		})
		var got []uint64
		for tid := 0; tid < threads; tid++ {
			got = append(got, report.Observations[api.ThreadID(tid)]...)
		}
		if len(got) != threads {
			t.Fatalf("rep %d: expected %d observations, got %v", rep, threads, got)
		}
		for i := 1; i < threads; i++ {
			if got[i] != got[0] {
				t.Fatalf("rep %d: thread %d saw sum %d, thread 0 saw %d", rep, i, got[i], got[0])
			}
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("rep %d: observations diverged: %v vs %v", rep, got, want)
			}
		}
	}
}
