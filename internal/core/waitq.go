package core

// waitq is the index-based FIFO backing the monitor wait queues (mutex
// grant queues, condition-variable wait queues). The seed popped with
// q = q[1:], which advances the slice header without zeroing the popped
// head: a hot mutex or condvar pinned every waiter entry ever enqueued in
// the backing array for the sync var's lifetime, and the array's front
// capacity was burned forever so the backing kept growing. waitq instead
// keeps an explicit head index, zeroes each vacated slot on pop (mirroring
// the tail-zeroing slicestore.TrimList does), and rewinds to the start of
// the backing array whenever the queue drains — so steady-state
// push/pop traffic recycles one small allocation.
type waitq[T any] struct {
	buf  []T
	head int
}

// len returns the number of queued entries.
func (q *waitq[T]) len() int { return len(q.buf) - q.head }

// push appends v at the tail.
func (q *waitq[T]) push(v T) { q.buf = append(q.buf, v) }

// pop removes and returns the head entry, zeroing the vacated slot so the
// backing array does not retain it. Callers check len() first, as with the
// seed's slice-header queues.
func (q *waitq[T]) pop() T {
	v := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return v
}

// at returns the i-th queued entry (0 = head) without removing it.
func (q *waitq[T]) at(i int) T { return q.buf[q.head+i] }

// items returns the queued entries in order, as a read-only view into the
// backing array (valid until the next push or pop).
func (q *waitq[T]) items() []T { return q.buf[q.head:] }
