package core

import (
	"strings"
	"testing"

	"rfdet/internal/api"
)

func tracedProg(th api.Thread) {
	x := th.Malloc(8)
	flag := th.Malloc(8)
	mu := api.Addr(64)
	cond := api.Addr(128)
	bar := api.Addr(192)
	var ids []api.ThreadID
	for w := 0; w < 3; w++ {
		me := uint64(w + 1)
		ids = append(ids, th.Spawn(func(c api.Thread) {
			c.Lock(mu)
			c.Store64(x, c.Load64(x)+me)
			c.Unlock(mu)
			c.AtomicAdd64(x+8, me)
			c.Barrier(bar, 3)
			if me == 1 {
				// A real condvar handshake so the trace covers wait/signal.
				c.Lock(mu)
				for c.Load64(flag) == 0 {
					c.Wait(cond, mu)
				}
				c.Unlock(mu)
			}
		}))
	}
	// Delay the signal past worker 1's wait in the deterministic order so
	// the trace contains a real wait/wake pair.
	th.Tick(100000)
	th.Lock(mu)
	th.Store64(flag, 1)
	th.Signal(cond)
	th.Unlock(mu)
	for _, id := range ids {
		th.Join(id)
	}
	th.Observe(th.Load64(x))
}

// TestTraceIsDeterministic requires the full synchronization schedule — not
// just the output — to be byte-identical across runs.
func TestTraceIsDeterministic(t *testing.T) {
	opts := DefaultOptions()
	opts.Trace = true
	rt := New(opts)
	var first string
	for i := 0; i < 4; i++ {
		rep, tr, err := rt.RunTraced(tracedProg)
		if err != nil {
			t.Fatal(err)
		}
		if rep == nil || tr == nil {
			t.Fatal("missing report or trace")
		}
		s := tr.String()
		if i == 0 {
			first = s
			continue
		}
		if s != first {
			t.Fatalf("schedule diverged between runs:\n--- first ---\n%s\n--- now ---\n%s", first, s)
		}
	}
	// The trace must mention every operation class the program used.
	for _, op := range []string{"spawn", "lock", "unlock", "atomic", "barrier", "join", "signal", "wait"} {
		if !strings.Contains(first, op) {
			t.Fatalf("trace missing %q operations:\n%s", op, first)
		}
	}
}

// TestTraceDisabledByDefault verifies Run and RunTraced without the option.
func TestTraceDisabledByDefault(t *testing.T) {
	_, tr, err := New(DefaultOptions()).RunTraced(func(th api.Thread) {
		th.Lock(64)
		th.Unlock(64)
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr != nil {
		t.Fatal("trace produced without Options.Trace")
	}
}

// TestTraceWriteTo exercises the writer path.
func TestTraceWriteTo(t *testing.T) {
	opts := DefaultOptions()
	opts.Trace = true
	_, tr, err := New(opts).RunTraced(func(th api.Thread) {
		th.Lock(64)
		th.Unlock(64)
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "lock") || !strings.Contains(sb.String(), "vc=") {
		t.Fatalf("unexpected trace output: %q", sb.String())
	}
}
