package core

import (
	"runtime"
	"testing"

	"rfdet/internal/api"
)

// waitPrelockProg produces the one scenario where the release performed
// inside pthread_cond_wait is the *only* chance a queued waiter gets to
// pre-merge it: main releases the mutex inside Wait while A and B are both
// queued on it. The handoff pops A; B stays queued and must pre-merge main's
// release right there (§4.5) — by the time B itself is popped (by A's
// Unlock) the remaining queue is empty, so no later prelockRelease can make
// up for a missed one.
func waitPrelockProg(th api.Thread) {
	x := th.Malloc(4096)
	flag := th.Malloc(8)
	mu := api.Addr(64)
	cond := api.Addr(128)

	a := th.Spawn(func(c api.Thread) {
		c.Tick(1000)
		c.Lock(mu) // queued first; woken by main's Wait handoff
		c.Store64(flag, 1)
		c.Signal(cond) // main re-queues on mu behind B
		c.Unlock(mu)   // pops B
	})
	b := th.Spawn(func(c api.Thread) {
		c.Tick(2000)
		c.Lock(mu) // queued second; still queued at main's Wait
		c.Store64(x+8, c.Load64(x)+1)
		c.Unlock(mu) // pops main, whose Wait returns
	})

	th.Lock(mu)
	for i := 0; i < 64; i++ {
		// Byte-dense values: every byte of every word changes, so the diff
		// yields one 512-byte run and the stats below are predictable.
		th.Store64(x+api.Addr(8*i), (uint64(i)+1)*0x0101010101010101)
	}
	th.Tick(5000) // let A and B queue up on mu first
	for th.Load64(flag) == 0 {
		th.Wait(cond, mu)
	}
	th.Unlock(mu)
	th.Join(a)
	th.Join(b)
	th.Observe(th.Load64(x), th.Load64(x+8), th.Load64(flag))
}

// TestWaitHandoffPrelocks is the regression test for the lost §4.5 overlap:
// the mutex release inside Wait must pre-merge into the still-queued
// waiters exactly like Unlock's release does. Without the pre-merge the
// scenario performs zero prelock work (PrelockBytes == 0) and B's eventual
// acquire collects main's slice instead of filtering it as pre-merged.
func TestWaitHandoffPrelocks(t *testing.T) {
	rep, err := New(DefaultOptions()).Run(waitPrelockProg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.PrelockBytes < 512 {
		t.Fatalf("Wait's mutex handoff did not pre-merge into queued waiters: PrelockBytes = %d, want >= 512",
			rep.Stats.PrelockBytes)
	}
	if rep.Stats.SlicesFilteredPremerged == 0 {
		t.Fatal("no acquire ever filtered a pre-merged slice: the pre-merge either did not happen or was double-applied")
	}
	want := uint64(0x0101010101010101)
	if got := rep.Observations[0]; len(got) != 3 || got[0] != want || got[1] != want+1 || got[2] != 1 {
		t.Fatalf("unexpected observations: %v", got)
	}
}

// TestPremergedFilterStat verifies pre-merge skips are reported as
// SlicesFilteredPremerged, not mixed into SlicesFilteredLow: the two filters
// reject for different reasons (already seen per the lowerlimit clock vs.
// already applied by a §4.5 pre-merge) and the paper's propagation
// accounting is only interpretable if they are counted apart.
func TestPremergedFilterStat(t *testing.T) {
	prog := func(th api.Thread) {
		x := th.Malloc(4096)
		mu := api.Addr(64)
		th.Lock(mu)
		done := make([]api.ThreadID, 0, 2)
		for w := 0; w < 2; w++ {
			w := w
			done = append(done, th.Spawn(func(c api.Thread) {
				c.Tick(uint64(1000 * (w + 1)))
				c.Lock(mu) // both queue on mu while main holds it
				c.Store64(x+api.Addr(8*(w+1)), c.Load64(x))
				c.Unlock(mu)
			}))
		}
		for i := 0; i < 32; i++ {
			th.Store64(x+api.Addr(512+8*i), uint64(i)+7)
		}
		th.Tick(5000) // let both workers queue first
		th.Unlock(mu) // hands off to worker 0; worker 1 pre-merges the release
		for _, id := range done {
			th.Join(id)
		}
		th.Observe(th.Load64(x+8), th.Load64(x+16))
	}

	rep, err := New(DefaultOptions()).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.SlicesFilteredPremerged == 0 {
		t.Fatal("pre-merged slices were not filtered as such at the eventual acquire")
	}
	if rep.Stats.PrelockBytes == 0 {
		t.Fatal("no prelock pre-merge happened; scenario did not exercise §4.5")
	}
}

// TestGCAllHintedFallsBackToExitClocks is the regression test for the
// empty-frontier pathology: once every still-running thread carries the
// never-communicating hint, the GC frontier was the meet of an empty set —
// the beginning-of-time clock — and collection freed nothing, growing the
// metadata space without bound. The fallback takes the frontier from the
// exited threads' exit clocks instead, so the chatty (exited, joined)
// worker's slices get reclaimed while only the hinted thread keeps running.
func TestGCAllHintedFallsBackToExitClocks(t *testing.T) {
	opts := DefaultOptions()
	opts.MetadataCapacity = 256 * 1024
	opts.GCThresholdPct = 90
	opts.NoCommHint = func(tid int32) bool { return tid == 2 } // the late worker

	prog := func(th api.Thread) {
		buf := th.Malloc(8 * 1024)
		mu := api.Addr(64)
		mu2 := api.Addr(128)
		// Phase 1: a chatty worker fills the metadata space to just below
		// the GC threshold (~188 KB of slice payload)...
		chatty := th.Spawn(func(c api.Thread) {
			for round := 0; round < 45; round++ {
				c.Lock(mu)
				for i := 0; i < 512; i++ {
					// Byte-dense values: the whole page changes every round,
					// so each slice is one 4 KB run and the sizing math below
					// is not distorted by per-run metadata overhead.
					c.Store64(buf+api.Addr(8*i), (uint64(round)+1)*0x0101010101010101)
				}
				c.Unlock(mu)
			}
		})
		// ...and main joins it, so main's exit clock covers all its slices.
		th.Join(chatty)
		th.Observe(th.Load64(buf))
		// Phase 2: a hinted worker keeps committing after main exits; its
		// commits are what push usage over the threshold and trigger GC —
		// at a moment when every non-exited thread is hinted.
		th.Spawn(func(c api.Thread) {
			for round := 0; round < 200; round++ {
				c.Lock(mu2)
				for i := 0; i < 64; i++ {
					c.Store64(buf+4096+api.Addr(8*i), (uint64(round)+1)*0x0101010101010101+uint64(i))
				}
				c.Unlock(mu2)
			}
		})
	}

	rep, err := New(opts).Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.GCCount == 0 {
		t.Fatal("scenario never triggered GC; thresholds need retuning")
	}
	// Without the fallback the chatty worker's ~190 KB stays pinned under
	// the hinted worker's ~150 KB, pushing the high-water mark well past
	// 300 KB. With it, the first GC reclaims phase 1 and the high water
	// stays near the ~230 KB trigger point.
	if rep.Stats.MetadataBytes > 280*1024 {
		t.Fatalf("GC freed nothing with all live threads hinted: metadata high water = %d KB",
			rep.Stats.MetadataBytes/1024)
	}
}

// offMonitorProg drives every decomposed monitor path at once: contended
// locks releasing multi-page slices (off-monitor diff + deferred apply +
// prelock), condvar handshakes (Wait's release and two-source wake acquire),
// barriers (under-monitor merge), atomics (drop-relock apply), and joins.
func offMonitorProg(th api.Thread) {
	data := th.Malloc(16 * 4096)
	flag := th.Malloc(8)
	sum := th.Malloc(8)
	mu := api.Addr(64)
	cond := api.Addr(128)
	bar := api.Addr(192)

	const workers = 4
	var ids []api.ThreadID
	for w := 0; w < workers; w++ {
		me := uint64(w + 1)
		ids = append(ids, th.Spawn(func(c api.Thread) {
			for round := 0; round < 6; round++ {
				c.Lock(mu)
				// Touch several pages so the off-monitor diff has real work.
				for p := 0; p < 6; p++ {
					base := data + api.Addr(4096*p)
					for i := 0; i < 16; i++ {
						a := base + api.Addr(8*i)
						c.Store64(a, c.Load64(a)+me*uint64(round+1))
					}
				}
				c.Unlock(mu)
				c.AtomicAdd64(sum, me)
				c.Tick(50 * me)
			}
			c.Barrier(bar, workers)
			if me == 1 {
				c.Lock(mu)
				for c.Load64(flag) == 0 {
					c.Wait(cond, mu)
				}
				c.Store64(data, c.Load64(data)+100)
				c.Unlock(mu)
			}
		}))
	}
	th.Tick(500000) // deliver the signal after worker 1 waits
	th.Lock(mu)
	th.Store64(flag, 1)
	th.Signal(cond)
	th.Unlock(mu)
	for _, id := range ids {
		th.Join(id)
	}
	th.Observe(th.Load64(data), th.Load64(data+4096), th.Load64(sum))
}

// TestOffMonitorDeterminism re-runs offMonitorProg across a range of
// GOMAXPROCS values and requires the synchronization trace and the output
// hash to be byte-identical every time. With real parallelism the
// off-monitor windows (page diffing, deferred slice application) and the
// woken threads' monitor re-entry genuinely interleave — this is the test
// that catches any monitor section admitted outside the deterministic turn
// order.
func TestOffMonitorDeterminism(t *testing.T) {
	opts := DefaultOptions()
	opts.Trace = true
	rt := New(opts)

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var firstTrace string
	var firstHash uint64
	runs := 0
	for _, procs := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		for i := 0; i < 5; i++ {
			rep, tr, err := rt.RunTraced(offMonitorProg)
			if err != nil {
				t.Fatal(err)
			}
			runs++
			if runs == 1 {
				firstTrace = tr.String()
				firstHash = rep.OutputHash
				continue
			}
			if rep.OutputHash != firstHash {
				t.Fatalf("output hash diverged at GOMAXPROCS=%d run %d", procs, i)
			}
			if s := tr.String(); s != firstTrace {
				t.Fatalf("trace diverged at GOMAXPROCS=%d run %d:\n--- first ---\n%s\n--- now ---\n%s",
					procs, i, firstTrace, s)
			}
		}
	}
	if runs < 20 {
		t.Fatalf("expected >= 20 runs, got %d", runs)
	}
}
