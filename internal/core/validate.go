package core

import (
	"fmt"

	"rfdet/internal/slicestore"
)

// validateLocked checks the structural DLRC invariants after an execution
// finishes (enabled with Options.Validate; used by the test suite). The
// checks run over whatever state garbage collection has retained — the
// invariants are preserved by collection, which only removes
// globally-dominated slices.
func (e *exec) validateLocked() error {
	// Slice timestamps are globally unique: the propagation filters depend
	// on timestamps distinguishing slices.
	seen := make(map[string]*slicestore.Slice)
	for _, t := range e.threads {
		for _, s := range t.slicePtrs {
			key := s.Time.String() + "#" + fmt.Sprint(s.Tid)
			if prev, ok := seen[key]; ok && prev != s {
				return fmt.Errorf("rfdet: validate: two distinct slices by thread %d share timestamp %s",
					s.Tid, s.Time)
			}
			seen[key] = s
		}
	}
	for _, t := range e.threads {
		// 1. The slice-pointer list respects happens-before: a slice never
		//    appears after one that happens-after it, because propagation
		//    appends remote slices in the releaser's (already consistent)
		//    order and local slices as they are created (§4.3).
		for i := 0; i < len(t.slicePtrs); i++ {
			for j := i + 1; j < len(t.slicePtrs); j++ {
				si, sj := t.slicePtrs[i], t.slicePtrs[j]
				if sj.Time.Less(si.Time) {
					return fmt.Errorf("rfdet: validate: thread %d list order violates happens-before: %s (pos %d) after %s (pos %d)",
						t.id, sj.Time, j, si.Time, i)
				}
			}
		}
		// 2. Everything in the list happened-before the thread's final
		//    instruction: the thread has provably seen each slice.
		final := t.vtime
		if t.exitV != nil {
			final = t.exitV
		}
		for _, s := range t.slicePtrs {
			if !s.Time.Leq(final) {
				return fmt.Errorf("rfdet: validate: thread %d holds slice %s not happened-before its clock %s",
					t.id, s.Time, final)
			}
		}
		// 3. A thread's own slices appear in strictly increasing order of
		//    its own clock component.
		var last uint64
		for _, s := range t.slicePtrs {
			if s.Tid != int32(t.id) {
				continue
			}
			own := s.Time.Get(int(t.id))
			if own <= last {
				return fmt.Errorf("rfdet: validate: thread %d own slices out of order (component %d after %d)",
					t.id, own, last)
			}
			last = own
		}
	}
	// 4. The Louvre invariant of the sharded monitor (shard.go): every
	//    release record is stamped with a version its domain's counter has
	//    reached, and the domain frontier — the join of every release
	//    advanced in the domain — covers the record's timestamp. Together
	//    these are what make a cross-domain acquire's clock join equivalent
	//    to the one the global monitor performed.
	//detvet:lockcheck post-execution validation: every worker has exited, so the domains are quiescent and exec.mu alone orders these reads.
	for _, sh := range e.shards {
		//detvet:orderfree only the first violation is reported, and any violation fails validation regardless of which map order surfaces it.
		for a, sv := range sh.syncvars {
			if sv.lastTid < 0 {
				continue
			}
			if sv.lastVer == 0 || sv.lastVer > sh.frontier.Version() {
				return fmt.Errorf("rfdet: validate: shard %d var %#x release version %d outside domain counter %d",
					sh.id, uint64(a), sv.lastVer, sh.frontier.Version())
			}
			if !sh.frontier.Covers(sv.lastTime) {
				return fmt.Errorf("rfdet: validate: shard %d var %#x release time %s not covered by domain frontier %s",
					sh.id, uint64(a), sv.lastTime, sh.frontier.Clock())
			}
		}
	}
	return nil
}
