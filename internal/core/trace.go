package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"rfdet/internal/api"
	"rfdet/internal/vclock"
)

// Tracing records the deterministic synchronization history of an
// execution: one line per synchronization operation, in the Kendo admission
// order, with the thread, operation, Kendo clock and vector clock. Because
// the admission order, the clocks and the propagation decisions are all
// deterministic, the entire trace must be byte-identical across runs — a
// much stronger observable than the output hash, and the basis for
// debugging ("what was the schedule?") that the paper's introduction
// motivates.
//
// Enable with Options.Trace; fetch the trace through Runtime.LastTrace or
// write it to a writer with WriteTrace.

// traceEvent is one synchronization operation in the deterministic order.
type traceEvent struct {
	seq   uint64
	tid   api.ThreadID
	op    string
	addr  api.Addr
	clock uint64
	vtime vclock.VC
}

// tracer accumulates events under the exec monitor.
type tracer struct {
	mu     sync.Mutex
	events []traceEvent
}

func (tr *tracer) record(t *thread, op string, addr api.Addr) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.events = append(tr.events, traceEvent{
		seq:   uint64(len(tr.events)),
		tid:   t.id,
		op:    op,
		addr:  addr,
		clock: t.proc.Clock(),
		vtime: t.vtime.Clone(),
	})
	tr.mu.Unlock()
}

// Trace is the rendered deterministic schedule of one execution.
type Trace struct {
	Lines []string
}

// String joins the trace lines.
func (tr *Trace) String() string { return strings.Join(tr.Lines, "\n") }

// WriteTo writes the trace to w.
func (tr *Trace) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, l := range tr.Lines {
		m, err := fmt.Fprintln(w, l)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// render converts the raw events to stable text lines.
func (tr *tracer) render() *Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	sort.SliceStable(tr.events, func(i, j int) bool { return tr.events[i].seq < tr.events[j].seq })
	out := &Trace{Lines: make([]string, 0, len(tr.events))}
	for _, e := range tr.events {
		out.Lines = append(out.Lines, fmt.Sprintf("%06d t%-2d %-9s %#08x kendo=%-8d vc=%s",
			e.seq, e.tid, e.op, uint64(e.addr), e.clock, e.vtime))
	}
	return out
}
