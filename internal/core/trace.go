package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"rfdet/internal/api"
	"rfdet/internal/vclock"
	"rfdet/internal/vtime"
)

// Tracing records the deterministic synchronization history of an
// execution: one line per synchronization operation, with the thread,
// operation, Kendo clock and vector clock. Because the clocks and the
// propagation decisions are all deterministic, the entire trace must be
// byte-identical across runs — a much stronger observable than the output
// hash, and the basis for debugging ("what was the schedule?") that the
// paper's introduction motivates.
//
// Events are not ordered by arrival: wake-side records happen off the
// monitor, so their arrival order against other threads' records is host
// scheduling. Instead every event carries a deterministic key — the
// thread's virtual time, thread ID, and per-thread sequence number — and
// the trace is rendered in key order. Virtual time respects happens-before
// (an acquire's vt is max()ed past its release's), so the rendered order is
// a deterministic linearization consistent with each thread's program
// order and with synchronization causality.
//
// Enable with Options.Trace; fetch the trace through RunTraced.

// traceEvent is one synchronization operation.
type traceEvent struct {
	vt    vtime.Time // deterministic primary sort key
	tid   api.ThreadID
	seq   uint64 // per-thread sequence, breaks vt ties within a thread
	op    string
	addr  api.Addr
	clock uint64
	vtime vclock.VC
}

// tracer accumulates events; its mutex only guards the append, never the
// order.
type tracer struct {
	//detvet:lockorder 70
	mu     sync.Mutex   //detvet:nativesync guards only the append; event order is decided by the monitor.
	events []traceEvent //detvet:guardedby mu
}

func (tr *tracer) record(t *thread, op string, addr api.Addr) {
	if tr == nil {
		return
	}
	ev := traceEvent{
		vt:    t.vt,
		tid:   t.id,
		seq:   t.traceSeq,
		op:    op,
		addr:  addr,
		clock: t.proc.Clock(),
		vtime: t.vtime.Clone(),
	}
	t.traceSeq++
	tr.mu.Lock()
	tr.events = append(tr.events, ev)
	tr.mu.Unlock()
}

// Trace is the rendered deterministic schedule of one execution.
type Trace struct {
	Lines []string
}

// String joins the trace lines.
func (tr *Trace) String() string { return strings.Join(tr.Lines, "\n") }

// WriteTo writes the trace to w.
func (tr *Trace) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, l := range tr.Lines {
		m, err := fmt.Fprintln(w, l)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// render sorts the raw events by their deterministic keys and converts them
// to stable text lines.
func (tr *tracer) render() *Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	sort.Slice(tr.events, func(i, j int) bool {
		a, b := tr.events[i], tr.events[j]
		if a.vt != b.vt {
			return a.vt < b.vt
		}
		if a.tid != b.tid {
			return a.tid < b.tid
		}
		return a.seq < b.seq
	})
	out := &Trace{Lines: make([]string, 0, len(tr.events))}
	for i, e := range tr.events {
		out.Lines = append(out.Lines, fmt.Sprintf("%06d t%-2d %-9s %#08x kendo=%-8d vc=%s",
			i, e.tid, e.op, uint64(e.addr), e.clock, e.vtime))
	}
	return out
}
