// Package core implements RFDet, the paper's deterministic multithreading
// runtime based on deterministic lazy release consistency (DLRC).
//
// Each logical thread runs in a private simulated address space (substituting
// for the paper's clone()-separated processes, see internal/mem). The Kendo
// algorithm (internal/kendo) imposes a deterministic total order on
// synchronization operations; execution between synchronization operations is
// cut into slices whose byte-granularity modifications are exchanged
// according to the happens-before relation, tracked with vector clocks
// (§3, §4). No global barriers are ever used: a thread that does not
// synchronize never blocks.
package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rfdet/internal/alloc"
	"rfdet/internal/api"
	"rfdet/internal/kendo"
	"rfdet/internal/mem"
	"rfdet/internal/racecheck"
	"rfdet/internal/slicestore"
	"rfdet/internal/stats"
	"rfdet/internal/trace"
	"rfdet/internal/vclock"
	"rfdet/internal/vtime"
)

// Monitor selects how memory modifications are detected within a slice
// (§4.2): compile-time-instrumentation style (RFDet-ci) or page-protection
// style (RFDet-pf).
type Monitor int

const (
	// MonitorCI checks a per-slice page set on every store (the paper's
	// compile-time store instrumentation, Figure 4). This is the faster
	// monitor (RFDet-ci).
	MonitorCI Monitor = iota
	// MonitorPF write-protects the whole address space at each slice start
	// and snapshots pages in the protection-fault handler (RFDet-pf, the
	// approach DThreads takes). Slower for sync-heavy programs because of
	// the per-slice mprotect sweep and fault costs.
	MonitorPF
)

func (m Monitor) String() string {
	if m == MonitorPF {
		return "pf"
	}
	return "ci"
}

// Options configure an RFDet runtime.
type Options struct {
	// Monitor selects the modification monitor (default MonitorCI).
	Monitor Monitor
	// SliceMerging enables the slice-merging optimization (§4.5): an
	// acquire of a variable last released by the same thread does not end
	// the current slice.
	SliceMerging bool
	// Prelock enables the prelock optimization (§4.5): a thread blocked on
	// a held lock pre-propagates updates that must happen-before its
	// eventual acquire, in parallel with the holder's critical section.
	Prelock bool
	// LazyWrites enables the lazy-writes optimization (§4.5): propagated
	// modifications are pended per page and applied on first access.
	LazyWrites bool
	// ShardCount is the number of commit-monitor domains the synchronization
	// state is sharded into (see internal/core/shard.go). Sync vars map to
	// domains by address range; hot operations lock only their domain(s),
	// while lifecycle, barriers and GC take a global rendezvous. 0 selects
	// the default (4); 1 reproduces the seed's single global monitor. Every
	// deterministic observable — outputs, virtual times, traces, race
	// reports — is bit-identical across shard counts: the deterministic turn
	// already orders all monitor-state mutation, so sharding only changes
	// which mutex a domain's residual windows contend on.
	ShardCount int
	// MetadataCapacity is the metadata-space size in bytes
	// (default 256 MiB as in §5.4).
	MetadataCapacity uint64
	// GCThresholdPct triggers slice garbage collection at this metadata
	// usage percentage (default 90 as in §5.4).
	GCThresholdPct int
	// EpochStore selects the log-structured epoch implementation of the
	// metadata space (slicestore.EpochStore): commits append into per-stripe
	// arena-backed segments whose run payloads are interned and recycled,
	// and garbage collection drops whole segments against the vclock
	// frontier instead of sweeping a map under a mutex. Off reproduces the
	// seed's map store. Results are identical either way — the store only
	// changes how payload memory is owned and reclaimed, never which bytes
	// a reader sees — so outputs, virtual times, traces and race reports
	// are bit-identical across this option (pinned by the fuzz and
	// seed-regression walls, RFDET_EPOCHSTORE axis). DefaultOptions enables
	// it.
	EpochStore bool
	// NoCommHint implements the eager-collection extension sketched at the
	// end of §5.4: it names threads that the programmer asserts never
	// communicate through shared memory after their creation (pure fork/
	// join workers, e.g. linear_regression's mappers). Hinted threads skip
	// slice creation entirely except for their final exit slice (which the
	// join still needs), bounding the metadata growth that §5.4 identifies
	// as RFDet's pathological case. If the assertion is wrong — a hinted
	// thread's updates are acquired before its exit — the acquirer misses
	// them, exactly the caveat the paper attaches to the idea; the result
	// is still deterministic.
	NoCommHint func(tid int32) bool
	// FullPageDiff disables sub-page dirty tracking and the extent-guided
	// diff fast path: slice-end diffing byte-scans every snapshotted page in
	// full, exactly as the seed runtime did and as the paper's implementation
	// must (mprotect write detection only learns page granularity, §4.2).
	// Results are identical either way — the fast path only changes which
	// bytes are *scanned*, never which modifications are found — so this
	// option exists for the equivalence tests and the before/after
	// benchmarks (BenchmarkSparseWriteDiff).
	FullPageDiff bool
	// NoCoalesce disables coalesced write-plan propagation: every propagated
	// slice is applied (or lazily pended) run-by-run in list order, exactly
	// as the seed runtime did. The default plan path collapses the ordered
	// slice list into one last-writer-wins plan per page, writes each unique
	// destination byte once, and shares the plan across blocked waiters that
	// collected the identical list — while the virtual-time model still
	// charges per-slice ApplyCost, so outputs, virtual times and traces are
	// bit-identical either way (the final value of every byte is its last
	// writer in list order under both schemes). This option exists for the
	// equivalence tests and the before/after benchmarks
	// (BenchmarkBarrierPropagation, BenchmarkLockChainPropagation).
	NoCoalesce bool
	// Validate enables the post-execution DLRC invariant checker (tests).
	Validate bool
	// Trace records every synchronization operation in deterministic
	// admission order; fetch it with RunTraced.
	Trace bool
	// PhaseTrace records wall-clock phase spans (turn-wait, monitor-wait,
	// diff, plan-build, apply, premerge, lazy-flush, block) into per-thread
	// buffers and attaches them to Report.Phases, with the deterministic
	// sync tracer's events cross-linked as instant marks. Strictly
	// observational: wall-clock data never feeds outputs, virtual times or
	// the deterministic trace, so every deterministic observable is
	// bit-identical with phase tracing on or off.
	PhaseTrace bool
	// RaceDetect enables the happens-before data-race detector
	// (internal/racecheck): per-slice read sets are tracked alongside the
	// modification lists, every committed slice's access footprint is
	// recorded, and Report.Races carries the deduplicated, deterministically
	// ordered conflict report. Strictly observational: detection charges no
	// virtual time and never changes outputs, virtual times or traces, so
	// every deterministic observable is bit-identical with it on or off.
	RaceDetect bool
	// RaceRelaxed enables race-aware ordering relaxation (see relax.go):
	// propagation applies whose write extents are disjoint from every
	// unordered peer's published read evidence are parked instead of applied
	// (recovered on first local access), and — when RelaxProfile is set —
	// turn-wait spins on profiled thread-local sync vars are skipped, with a
	// permanent per-address fallback to full ordering on the first
	// contradicting synchronization. The virtual-time model is charged
	// exactly as if nothing were relaxed, so any run finishing with
	// Stats.RelaxUnsafeFallbacks == 0 — which a correct profile guarantees —
	// has outputs, virtual times, traces and race reports bit-identical to
	// the unrelaxed run; only wall-clock behavior (and the host-dependent
	// observability counters) change. A contradicted (stale) profile is
	// flagged by a nonzero fallback count: synchronization semantics still
	// hold and the run completes, but its timing observables are no longer
	// certified against the strict run — discard the profile and re-record.
	RaceRelaxed bool
	// RelaxProfile is the recorded relaxation profile (racecheck.Profile)
	// that drives turn-wait elision. Record one with RaceDetect
	// (Report.RelaxProfile), stability-merge at least two runs with
	// racecheck.MergeStable, and pass it back here with RaceRelaxed set. Nil
	// disables turn-wait elision; propagation elision works without it.
	RelaxProfile *racecheck.Profile
}

// DefaultOptions returns the configuration used for the paper's headline
// numbers: the CI monitor with every optimization enabled.
func DefaultOptions() Options {
	return Options{
		Monitor:      MonitorCI,
		SliceMerging: true,
		Prelock:      true,
		LazyWrites:   true,
		ShardCount:   4,
		EpochStore:   true,
	}
}

// Runtime is an RFDet deterministic multithreading runtime. It satisfies
// api.Runtime; each Run call is an independent deterministic execution.
type Runtime struct {
	opts Options
}

// New returns an RFDet runtime with the given options.
func New(opts Options) *Runtime { return &Runtime{opts: opts} }

// Name returns "rfdet-ci" or "rfdet-pf".
func (r *Runtime) Name() string { return "rfdet-" + r.opts.Monitor.String() }

// Options returns the runtime's configuration.
func (r *Runtime) Options() Options { return r.opts }

// errAborted unwinds thread goroutines when an execution fails.
var errAborted = errors.New("rfdet: execution aborted")

// exec is the state of one program execution: the paper's metadata space
// (synchronization variables, the slice store, the shared allocator) plus
// the thread table and the Kendo arbiter. The synchronization-variable
// state lives in the sharded commit-monitor domains (exec.shards, see
// shard.go); a thread mutates a domain only while holding its mutex, which
// it takes only after winning the deterministic turn, so every access
// sequence is deterministic.
type exec struct {
	opts   Options
	sched  *kendo.Sched
	alloc  *alloc.Allocator
	store  slicestore.Store
	tracer *tracer
	// phases is the phase-level observability collector (nil unless
	// Options.PhaseTrace): per-thread wall-clock span buffers, rendered
	// into Report.Phases. Observational only — never part of the
	// deterministic surface.
	phases *trace.Collector
	// races is the happens-before race detector (nil unless
	// Options.RaceDetect): slice access footprints recorded at commit time
	// under the monitor, analyzed into Report.Races after the run. Like
	// phases, purely observational.
	races *racecheck.Detector
	// relax is the turn-wait relaxation claim table (nil unless
	// Options.RaceRelaxed with a profile; relax.go).
	relax *relaxState
	// peers is a race-free snapshot of the thread table for the propagation
	// elision veto, which runs off-monitor and therefore cannot walk
	// e.threads (a concurrent Spawn rendezvous may be appending). Updated
	// under the rendezvous at every spawn; a thread missing from a stale
	// snapshot has published no read evidence yet, so the veto only errs
	// toward vetoing less — which the fault-path recovery makes safe.
	peers atomic.Pointer[[]*thread]

	// shards are the per-address-range commit-monitor domains. Hot sync
	// ops lock only the domain(s) owning their variables; the global
	// rendezvous (shard.go) locks them all plus mu.
	shards []*monShard

	// mu is the global half of the monitor: lifecycle and barrier
	// rendezvous, GC passes, the abort path, and the thread table. It is
	// the maximum element of the lock order — taken after any domain
	// mutexes, and a holder never waits on anything else.
	//detvet:lockorder 20
	mu sync.Mutex //detvet:nativesync the global monitor rendezvous (§4.1 sharded); ordered after the domain mutexes.
	//detvet:notguarded appended only under the full rendezvous; readers either hold the turn or run after the workers exited, both of which the rendezvous mutually excludes
	threads []*thread
	//detvet:notguarded written only under the spawn rendezvous, read only by the post-execution report build
	maxLive int

	// liveCount and blockedCount are atomics because the deadlock check on
	// a hot-path block holds only that path's domain, not mu.
	liveCount    atomic.Int64
	blockedCount atomic.Int64
	// aborted is atomic for the same reason: hot paths consult it at
	// relock time while holding only their domain.
	aborted  atomic.Bool
	abortErr error

	// diffSem bounds the worker pool that byte-diffs snapshotted pages
	// concurrently during off-monitor slice finishing. One token per worker;
	// a diff that cannot get a token runs inline on the owning thread.
	diffSem chan struct{}

	wg sync.WaitGroup //detvet:nativesync joins thread goroutines at run end; no ordering role.
}

// syncVar is an internal synchronization variable (§4.1): the runtime-side
// object backing the application mutex/condvar/barrier at one address. It
// lives in, and is guarded by, the commit-monitor domain owning its address
// (shardFor).
type syncVar struct {
	// Mutex state.
	held  bool
	owner api.ThreadID
	lockQ waitq[api.ThreadID]
	// Release record: who last released the variable and when (§4.1,
	// lastTid/lastTime), plus the release's virtual time and the owning
	// domain's version counter at the release (Louvre-style stamp; the
	// domain frontier covers lastTime at every version ≥ lastVer, checked
	// by Options.Validate).
	lastTid  int32
	lastTime vclock.VC
	lastVT   vtime.Time
	lastVer  uint64
	// Condition-variable wait queue, in deterministic wait order.
	condQ waitq[condEntry]
	// Barrier arrivals for the current generation.
	barArrivals []barArrival
}

type condEntry struct {
	tid   api.ThreadID
	mutex api.Addr
}

type barArrival struct {
	tid api.ThreadID
	v   vclock.VC
	vt  vtime.Time
}

// wakeEvent resumes a blocked thread. The waker — which holds both the
// deterministic turn and the monitor, while the sleeper is provably blocked —
// performs the sleeper's entire acquire (clock joins, slice-pointer
// collection) before waking it, so the woken thread re-enters user code
// without touching any monitor-guarded state: it only installs vt, applies
// the pre-collected slices to its private memory, and goes.
type wakeEvent struct {
	abort bool
	// vt is the woken thread's new virtual time, computed by the waker.
	vt vtime.Time
	// slices are the pre-collected propagated slices the woken thread must
	// apply to its private memory before returning to user code.
	slices []*slicestore.Slice
	// pin holds the store's reclamation epoch open while the woken thread
	// applies the slices: the waker takes it under the same turn that
	// collected them, so an intervening GC pass cannot recycle their
	// payload memory before the off-monitor apply reads it. The sleeper
	// releases it after applying (the zero pin is a no-op, covering wakes
	// that carry no slices; an abort wake leaks it harmlessly — the
	// execution is unwinding).
	pin slicestore.Pin
}

// pinFor takes a store pin covering a deferred application of the given
// collected slices. It must be called while the collector still holds the
// deterministic turn (Collect passes only run under a turn, so the pin is
// ordered before any pass that could reclaim the slices). No pin is needed
// for an empty collection.
func (e *exec) pinFor(slices []*slicestore.Slice) slicestore.Pin {
	if len(slices) == 0 {
		return slicestore.Pin{}
	}
	return e.store.Pin()
}

// signalRecord carries the release information of a cond signal to the
// waiter it woke (§4.1: propagation at the wakeup's acquire side).
type signalRecord struct {
	tid int32
	v   vclock.VC
	vt  vtime.Time
}

func newExec(opts Options) *exec {
	if opts.MetadataCapacity == 0 {
		opts.MetadataCapacity = slicestore.DefaultCapacity
	}
	if opts.ShardCount == 0 {
		opts.ShardCount = DefaultOptions().ShardCount
	}
	if opts.ShardCount < 1 {
		opts.ShardCount = 1
	}
	if opts.ShardCount > maxShards {
		opts.ShardCount = maxShards
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	e := &exec{
		opts:    opts,
		sched:   kendo.NewSched(),
		alloc:   alloc.New(),
		diffSem: make(chan struct{}, workers), //detvet:nativesync semaphore bounding the diff worker pool; tokens carry no data.
	}
	if opts.EpochStore {
		e.store = slicestore.NewEpochStore(opts.MetadataCapacity, opts.GCThresholdPct, opts.ShardCount)
	} else {
		e.store = slicestore.NewStriped(opts.MetadataCapacity, opts.GCThresholdPct, opts.ShardCount)
	}
	for i := 0; i < opts.ShardCount; i++ {
		e.shards = append(e.shards, &monShard{id: i, syncvars: make(map[api.Addr]*syncVar)})
	}
	if opts.PhaseTrace {
		e.phases = trace.NewCollector()
	}
	if opts.RaceDetect {
		e.races = racecheck.New()
	}
	if opts.RaceRelaxed {
		e.relax = newRelaxState(opts.RelaxProfile)
	}
	return e
}

// publishPeersLocked refreshes the elision veto's thread-table snapshot.
// Called wherever e.threads changes (under the rendezvous / exec.mu).
func (e *exec) publishPeersLocked() {
	snap := append([]*thread(nil), e.threads...)
	e.peers.Store(&snap)
}

// Run executes main as thread 0 and returns the deterministic report.
func (r *Runtime) Run(main api.ThreadFunc) (*api.Report, error) {
	rep, _, err := r.RunTraced(main)
	return rep, err
}

// RunTraced is Run plus the deterministic synchronization trace (nil unless
// Options.Trace is set). The trace must be byte-identical across runs of
// the same program — the event-level form of the determinism guarantee.
func (r *Runtime) RunTraced(main api.ThreadFunc) (*api.Report, *Trace, error) {
	e := newExec(r.opts)
	if r.opts.Trace {
		e.tracer = &tracer{}
	}
	t0 := &thread{
		exec:      e,
		id:        0,
		fn:        main,
		lastShard: -1,
		// The main thread does not monitor modifications until the first
		// child thread is created (§4.1): before that, no other memory
		// space exists to propagate to, and the first child inherits the
		// parent memory through the clone.
		monitoring: false,
		space:      mem.NewSpace(),
		vtime:      vclock.New(1).Set(0, 1),
		wake:       make(chan wakeEvent, 1), //detvet:nativesync 1-buffered wake mailbox; exactly one monitor-ordered waker per sleep.
	}
	t0.space.SetFaultHandler(t0.onFault)
	t0.tb = e.phases.NewThread(0)
	t0.proc = e.sched.Register(0, 0)
	e.alloc.Register(0)
	e.threads = append(e.threads, t0)
	e.publishPeersLocked()
	e.liveCount.Store(1)
	e.maxLive = 1

	start := stats.Now()
	e.wg.Add(1)
	//detvet:nativesync thread bodies run on goroutines; determinism comes from Kendo turns, not goroutine scheduling.
	go e.runThread(t0)
	e.wg.Wait()
	elapsed := stats.Since(start)

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.abortErr != nil {
		return nil, nil, e.abortErr
	}
	if r.opts.Validate {
		if err := e.validateLocked(); err != nil {
			return nil, nil, err
		}
	}
	var tr *Trace
	if e.tracer != nil {
		tr = e.tracer.render()
	}
	return e.buildReportLocked(elapsed), tr, nil
}

// runThread is the goroutine body hosting one logical thread.
func (e *exec) runThread(t *thread) {
	defer e.wg.Done()
	defer func() {
		r := recover()
		if r != nil && r != errAborted { //nolint:errorlint // sentinel identity
			e.fail(fmt.Errorf("rfdet: thread %d panicked: %v", t.id, r))
		}
		e.threadExit(t, r != nil)
	}()
	t.tb.Begin()
	t.beginSlice()
	t.fn(t)
}

// threadExit performs the thread's final release: it ends the last slice,
// records the exit timestamp and wakes joiners (§4.1, thread exit).
func (e *exec) threadExit(t *thread, abnormal bool) {
	if !abnormal && !e.sched.Aborted() {
		// Exit is a synchronization (release) operation: take the turn so
		// the exit point is deterministic.
		ts := t.tb.Now()
		if ok, waited := e.sched.WaitForTurn(t.proc); ok {
			if waited {
				t.st.TurnWaits++
				t.tb.Span(trace.PhaseTurnWait, ts)
			}
		}
	}
	e.rendezvous(t)
	defer e.releaseRendezvous(t)
	if !e.aborted.Load() {
		t.flushAllPending()
		// Parked elided propagation bytes must be resident before the final
		// memory hash and before joiners collect this thread's exit release.
		t.flushAllRelax()
		t.exitV = t.endSliceLocked()
	} else {
		t.dropRelaxPend()
		t.exitV = t.vtime.Clone()
	}
	t.exitVT = t.vt
	e.liveCount.Add(-1)
	for _, j := range t.joiners {
		if e.aborted.Load() {
			// failLocked has already delivered an abort wakeup to every
			// blocked thread, including these joiners, so their mailboxes
			// may be full and they may already be unwinding. A normal
			// wakeLocked here would block on the full mailbox (or worse,
			// hand an unwinding joiner a stale non-abort event and corrupt
			// the blocked accounting). Probe an abort event instead, for
			// any joiner whose mailbox the fail probe missed because it
			// blocked after the abort landed.
			//detvet:nativesync non-blocking abort probe; abort abandons determinism guarantees by design.
			select {
			case j.wake <- wakeEvent{abort: true}:
			default:
			}
			continue
		}
		// Perform the joiner's acquire of this exit release on its behalf
		// (it is provably blocked): join its clocks and collect the slices
		// it must apply once awake. The acquire advances j.vt, so the
		// event's virtual time is read after it.
		slices := j.acquireFromCollectLocked(int32(t.id), t.exitV, t.exitVT)
		e.wakeLocked(j, wakeEvent{vt: j.vt, slices: slices, pin: e.pinFor(slices)})
	}
	t.joiners = nil
	// The Exited flip must come AFTER the joiner wakeups: it is this
	// thread's turn release. Flipping first opens a window in which the
	// exiting thread is gone from the eligibility scan while its joiner is
	// still Blocked, letting an unrelated thread with a larger clock than
	// the about-to-wake joiner pass WaitForTurn and slip its operation in —
	// host timing deciding the admitted order. Exiting last mirrors the
	// other wake paths, where the waker stays Running with the minimum
	// clock until every transition has landed (scans meanwhile see at most
	// a superset of eligible threads, which can only delay an admission,
	// never reorder one).
	e.sched.Transition(func() { t.proc.SetStatus(kendo.Exited) })
	t.tb.Finish()
	if live := e.liveCount.Load(); !e.aborted.Load() && live > 0 && e.blockedCount.Load() == live {
		e.failLocked(fmt.Errorf("rfdet: deterministic deadlock: all %d live threads blocked", live))
	}
}

// syncEvent records a synchronization operation on both observability
// surfaces: the deterministic tracer (Options.Trace, byte-identical across
// runs) and, cross-linked into the phase timeline, a wall-clock instant
// mark (Options.PhaseTrace). Both sides no-op when their option is off.
func (e *exec) syncEvent(t *thread, op string, addr api.Addr) {
	e.tracer.record(t, op, addr)
	t.tb.Mark(op, uint64(addr))
}

// fail aborts the execution with err (first error wins). It takes only
// exec.mu — never the domain mutexes, because fail is reached from inside
// domain sections (misuse errors, the deadlock check), and the lock order
// puts mu after the domains.
func (e *exec) fail(err error) {
	e.mu.Lock()
	e.failLocked(err)
	e.mu.Unlock()
}

// failLocked aborts under exec.mu: it records the error, aborts the Kendo
// arbiter so spinners unwind, and probes every blocked thread's mailbox
// with an abort event.
func (e *exec) failLocked(err error) {
	if e.aborted.Load() {
		return
	}
	e.aborted.Store(true)
	e.abortErr = err
	e.sched.Abort()
	for _, t := range e.threads {
		if t.proc.Status() == kendo.Blocked {
			//detvet:nativesync non-blocking abort probe; abort abandons determinism guarantees by design.
			select {
			case t.wake <- wakeEvent{abort: true}:
			default:
			}
		}
	}
}

// wakeLocked resumes a blocked thread with the given event. The
// Blocked→Running flip is bracketed as a scheduling transition so no
// concurrent turn scan can observe the waker's clock tick without also
// observing the newly eligible thread.
func (e *exec) wakeLocked(t *thread, ev wakeEvent) {
	e.sched.Transition(func() { t.proc.SetStatus(kendo.Running) })
	e.blockedCount.Add(-1)
	// Non-blocking by necessity: the abort path holds only exec.mu, so
	// failLocked can deliver an abort probe into this mailbox while the
	// waker is inside a domain section. Each sleep has exactly one
	// monitor-ordered waker, so the only way the 1-buffered mailbox is
	// full is such an abort probe — in which case the sleeper unwinds on
	// it and this event is moot.
	//detvet:nativesync wake handoff; the Transition above fixed the admission order, and a full mailbox means an abort probe won.
	select {
	case t.wake <- ev:
	default:
	}
}

// blockLocked marks the calling thread blocked (recording the block site for
// deadlock diagnostics) and checks for deadlock. The caller holds its
// operation's domain(s) — or the rendezvous — which is what makes the
// thread "provably blocked" to wakers in the same domain.
func (t *thread) blockLocked(site string) {
	e := t.exec
	t.blockedOn = site
	// Captured before the status flips to Blocked: any span another thread
	// records on this thread's behalf (premerge, barrier merge) requires
	// Blocked status, so it provably starts after blockStart and nests inside
	// the block span sleep() closes.
	t.blockStart = t.tb.Now()
	e.sched.Transition(func() { t.proc.SetStatus(kendo.Blocked) })
	if b := e.blockedCount.Add(1); b == e.liveCount.Load() {
		err := fmt.Errorf("rfdet: deterministic deadlock: all %d live threads blocked: %s", b, e.blockSites())
		if t.holdsGlobal {
			e.failLocked(err)
		} else {
			e.fail(err)
		}
	}
}

// blockSites describes where each blocked thread is stuck. The caller
// holds at least one domain mutex (or the rendezvous), which excludes the
// Spawn rendezvous and so pins e.threads; the blockedOn strings it reads
// were published before each thread's status flipped to Blocked.
func (e *exec) blockSites() string {
	s := ""
	for _, t := range e.threads {
		if t.proc.Status() == kendo.Blocked {
			if s != "" {
				s += ", "
			}
			s += fmt.Sprintf("thread %d: %s", t.id, t.blockedOn)
		}
	}
	return s
}

// sleep parks the thread until a wake event arrives.
func (t *thread) sleep() wakeEvent {
	//detvet:nativesync the only blocking receive: parks until the monitor-ordered wake event.
	ev := <-t.wake
	t.tb.SpanDetail(trace.PhaseBlock, t.blockStart, t.blockedOn)
	if ev.abort {
		panic(errAborted)
	}
	return ev
}

// buildReportLocked assembles the execution report.
func (e *exec) buildReportLocked(elapsed time.Duration) *api.Report {
	rep := &api.Report{
		Observations: make(map[api.ThreadID][]uint64, len(e.threads)),
		Elapsed:      elapsed,
		Threads:      len(e.threads),
	}
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, t := range e.threads {
		rep.Stats.Add(&t.st)
		rep.Observations[t.id] = t.obs
		put(uint64(t.id))
		put(uint64(len(t.obs)))
		for _, v := range t.obs {
			put(v)
		}
		if t.exitVT > vtime.Time(rep.VirtualTime) {
			rep.VirtualTime = uint64(t.exitVT)
		}
	}
	put(e.threads[0].space.Hash())
	rep.OutputHash = h.Sum64()

	rep.Stats.MonitorShards = uint64(len(e.shards))
	//detvet:lockcheck report build runs after every worker has exited; the domains are quiescent and nothing mutates their counters.
	for _, sh := range e.shards {
		rep.Stats.ShardReleases += sh.releases
		rep.Stats.CrossShardAcquires += sh.crossAcquires
	}
	rep.Stats.SharedMemBytes = e.alloc.HighWater()
	rep.Stats.MetadataBytes = e.store.HighWater()
	rep.Stats.MetadataCapacity = e.store.Capacity()
	rep.Stats.GCCount = e.store.GCCount()
	rep.Stats.GCEmptyPasses = e.store.EmptyGCCount()
	m := e.store.Metrics()
	rep.Stats.StoreSegments = m.SegmentsLive
	rep.Stats.StoreSegmentsDropped = m.SegmentsDropped
	rep.Stats.ArenaChunksAllocated = m.ArenaChunksAllocated
	rep.Stats.ArenaChunksReused = m.ArenaChunksReused
	rep.Stats.ArenaBytesInterned = m.ArenaBytesInterned
	rep.Stats.RuntimeMemBytes = uint64(e.maxLive)*e.alloc.HighWater() + e.store.HighWater()
	// Attached after the hash: phase spans are wall-clock observability and
	// the race report, while itself deterministic, must never influence the
	// deterministic output.
	rep.Phases = e.phases.Render()
	rep.Races = e.races.Analyze()
	if e.races != nil {
		rep.RelaxProfile = e.races.Profile("")
	}
	return rep
}

// gcLocked garbage-collects slices that every live thread has merged
// (§4.5): the frontier is the meet of all live threads' vector clocks.
//
// Threads hinted as never-communicating (Options.NoCommHint, the §5.4
// eager-collection extension) are excluded from the frontier: since they
// never acquire, their stale clocks must not pin other threads' slices in
// the metadata space.
func (e *exec) gcLocked() {
	var clocks []vclock.VC
	for _, t := range e.threads {
		if t.proc.Status() != kendo.Exited && !t.noComm {
			// Cloned under histMu: a relaxed (elided) operation may be
			// bumping its own clock off the turn right now.
			t.histMu.Lock()
			clocks = append(clocks, t.vtime.Clone())
			t.histMu.Unlock()
		}
	}
	if len(clocks) == 0 {
		// Every live thread is hinted never-communicating: MeetAll over the
		// empty set would be the beginning-of-time clock, Collect would free
		// nothing, and metadata would grow without bound — the exact §5.4
		// pathology the hint exists to prevent. Fall back to the exit clocks
		// of the threads that have finished: everything that happened-before
		// every exit has been merged by every thread that will ever acquire
		// (hinted threads assert they never will; if that assertion is wrong
		// the acquirer misses the updates, the hint's documented caveat).
		for _, t := range e.threads {
			if t.proc.Status() == kendo.Exited && t.exitV != nil {
				clocks = append(clocks, t.exitV)
			}
		}
	}
	frontier := vclock.MeetAll(clocks)
	e.store.Collect(frontier)
	for _, t := range e.threads {
		t.histMu.Lock()
		t.slicePtrs = slicestore.TrimList(t.slicePtrs, frontier)
		t.histMu.Unlock()
	}
}
