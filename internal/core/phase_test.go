package core

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"rfdet/internal/api"
	"rfdet/internal/trace"
)

// phaseProg exercises every phase source: contended locks (turn waits,
// monitor waits, diffs, applies, premerges, blocks), a barrier (barrier-merge
// applies into the leader), cond wait/signal, atomics, and enough written
// pages that plan building kicks in.
func phaseProg(th api.Thread) {
	pages := th.Malloc(8 * 4096)
	ctr := th.Malloc(8)
	mu, bar := api.Addr(64), api.Addr(192)
	var ids []api.ThreadID
	for w := 0; w < 4; w++ {
		me := uint64(w)
		ids = append(ids, th.Spawn(func(c api.Thread) {
			for round := 0; round < 6; round++ {
				c.Lock(mu)
				for p := 0; p < 8; p++ {
					a := pages + api.Addr(uint64(p)*4096+8*me)
					c.Store64(a, c.Load64(a)+me+uint64(round)+1)
				}
				c.Unlock(mu)
				c.AtomicAdd64(ctr, 1)
				c.Barrier(bar, 4)
			}
		}))
	}
	for _, id := range ids {
		th.Join(id)
	}
	th.Observe(th.Load64(ctr), th.Load64(pages))
}

// TestPhaseTotalsReconcileWithStats pins the tentpole's accounting contract:
// phase spans are recorded with the *same* measured durations the Stats
// nanos counters accumulate, so the per-phase totals reconcile with the
// counters exactly — not approximately.
func TestPhaseTotalsReconcileWithStats(t *testing.T) {
	opts := DefaultOptions()
	opts.PhaseTrace = true
	rep, err := New(opts).Run(phaseProg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phases == nil {
		t.Fatal("PhaseTrace did not produce a phase report")
	}
	if len(rep.Phases.Threads) != rep.Threads {
		t.Fatalf("phase report has %d threads, execution had %d",
			len(rep.Phases.Threads), rep.Threads)
	}
	tot := rep.Phases.PhaseTotals()
	n := rep.Phases.PhaseCounts()
	if got := uint64(tot[trace.PhaseDiff]); got != rep.Stats.DiffNanos {
		t.Fatalf("diff span total %d != Stats.DiffNanos %d", got, rep.Stats.DiffNanos)
	}
	if got := uint64(tot[trace.PhaseApply] + tot[trace.PhasePremerge]); got != rep.Stats.ApplyNanos {
		t.Fatalf("apply+premerge span total %d != Stats.ApplyNanos %d", got, rep.Stats.ApplyNanos)
	}
	if n[trace.PhaseTurnWait] != rep.Stats.TurnWaits {
		t.Fatalf("turn-wait span count %d != Stats.TurnWaits %d",
			n[trace.PhaseTurnWait], rep.Stats.TurnWaits)
	}
	if n[trace.PhaseMonitorWait] != rep.Stats.MonitorAcquires {
		t.Fatalf("monitor-wait span count %d != Stats.MonitorAcquires %d",
			n[trace.PhaseMonitorWait], rep.Stats.MonitorAcquires)
	}
	// The program blocks (contended locks, barriers, joins) and diffs; the
	// corresponding spans must actually be present.
	for _, p := range []trace.Phase{trace.PhaseBlock, trace.PhaseDiff, trace.PhaseApply} {
		if n[p] == 0 {
			t.Fatalf("no %s spans recorded", p)
		}
	}
	// Spans recorded on a blocked thread's behalf must nest inside its block
	// span; the Chrome export's validator checks exactly that invariant.
	var buf bytes.Buffer
	if err := rep.Phases.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	var sum bytes.Buffer
	if err := rep.Phases.WriteSummary(&sum); err != nil {
		t.Fatal(err)
	}
}

// TestPhaseTraceIsObservational pins the hard constraint: enabling phase
// tracing changes nothing on the determinism surface — output hash, virtual
// time, observations, deterministic trace, and every deterministic Stats
// counter are identical with tracing on and off.
func TestPhaseTraceIsObservational(t *testing.T) {
	run := func(phase bool) (*api.Report, *Trace) {
		opts := DefaultOptions()
		opts.Trace = true
		opts.PhaseTrace = phase
		rep, tr, err := New(opts).RunTraced(phaseProg)
		if err != nil {
			t.Fatal(err)
		}
		return rep, tr
	}
	repOff, trOff := run(false)
	repOn, trOn := run(true)
	if repOff.Phases != nil {
		t.Fatal("phase report present with tracing off")
	}
	if repOn.Phases == nil {
		t.Fatal("phase report missing with tracing on")
	}
	if repOff.OutputHash != repOn.OutputHash {
		t.Fatalf("output hash changed: %#x != %#x", repOff.OutputHash, repOn.OutputHash)
	}
	if repOff.VirtualTime != repOn.VirtualTime {
		t.Fatalf("virtual time changed: %d != %d", repOff.VirtualTime, repOn.VirtualTime)
	}
	if trOff.String() != trOn.String() {
		t.Fatalf("deterministic trace changed:\n--- off ---\n%s\n--- on ---\n%s", trOff, trOn)
	}
	// Deterministic counters must be unaffected. The wall-clock nanos are
	// host noise either way, and TurnWaits counts sync ops that *actually*
	// waited for their turn — a host-scheduling fact that varies between any
	// two runs, traced or not — so those are excluded from the comparison.
	offSt, onSt := repOff.Stats, repOn.Stats
	offSt.DiffNanos, onSt.DiffNanos = 0, 0
	offSt.ApplyNanos, onSt.ApplyNanos = 0, 0
	offSt.TurnWaits, onSt.TurnWaits = 0, 0
	if offSt != onSt {
		t.Fatalf("stats changed with phase tracing:\noff: %+v\non:  %+v", offSt, onSt)
	}
}

// TestPhaseTraceMarksCrossLink checks the deterministic sync tracer's events
// appear in the phase timeline as instant marks: every traced operation of a
// thread has a corresponding (op, addr) mark on that thread's row.
func TestPhaseTraceMarksCrossLink(t *testing.T) {
	opts := DefaultOptions()
	opts.Trace = true
	opts.PhaseTrace = true
	rep, tr, err := New(opts).RunTraced(phaseProg)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		tid  int
		op   string
		addr uint64
	}
	marks := map[key]int{}
	nmarks := 0
	for _, tl := range rep.Phases.Threads {
		for _, m := range tl.Marks {
			marks[key{tl.ID, m.Op, m.Addr}]++
			nmarks++
		}
	}
	if nmarks != len(tr.Lines) {
		t.Fatalf("%d phase-timeline marks, %d deterministic trace events", nmarks, len(tr.Lines))
	}
	// Trace lines look like "000001 t2  lock      0x000040 kendo=...".
	for _, line := range tr.Lines {
		f := strings.Fields(line)
		tid, err := strconv.Atoi(strings.TrimPrefix(f[1], "t"))
		if err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		addr, err := strconv.ParseUint(f[3], 0, 64)
		if err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		k := key{tid, f[2], addr}
		if marks[k] == 0 {
			t.Fatalf("traced event %q has no phase-timeline mark", line)
		}
		marks[k]--
	}
}

// TestPhaseTraceDisabledHasNoReport checks the default-off path.
func TestPhaseTraceDisabledHasNoReport(t *testing.T) {
	rep, err := New(DefaultOptions()).Run(phaseProg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Phases != nil {
		t.Fatal("phase report present without PhaseTrace")
	}
}
