package core

import (
	"runtime"
	"testing"

	"rfdet/internal/api"
)

// TestFigure2Visibility reproduces Figure 2 of the paper: a modification by
// T1 is visible in T2 if and only if it happens-before T2's current
// instruction.
//
//	T1: x=1; lock l; unlock l; x=2
//	T2:                         print x   (no sync: must see 0)
//	T2: lock l; unlock l;       print x   (must see 1 — not 2)
//
// T2's logical clock is padded with ticks so that Kendo deterministically
// orders T1's operations first.
func TestFigure2Visibility(t *testing.T) {
	for _, opts := range allConfigs() {
		rep := run(t, opts, func(th api.Thread) {
			x := th.Malloc(8)
			l := api.Addr(64)
			t1 := th.Spawn(func(c api.Thread) {
				c.Store64(x, 1)
				c.Lock(l)
				c.Unlock(l)
				c.Store64(x, 2)
			})
			t2 := th.Spawn(func(c api.Thread) {
				c.Tick(100000) // order all of T1 before T2's synchronization
				c.Observe(c.Load64(x))
				c.Lock(l)
				c.Unlock(l)
				c.Observe(c.Load64(x))
			})
			th.Join(t1)
			th.Join(t2)
		})
		obs := rep.Observations[2]
		if len(obs) != 2 || obs[0] != 0 || obs[1] != 1 {
			t.Fatalf("opts %+v: T2 observed %v, want [0 1]", opts, obs)
		}
	}
}

// TestFigure6Propagation reproduces Figure 6: transitive propagation,
// redundant-propagation filtering, and deterministic conflict resolution
// where remote modifications overwrite local ones.
//
//	T1: x=1 ; release ; x=3 ............ acquire → sees y=1, keeps x=3
//	T2: acquire (x=1) ; y=1 ; release
//	T3: y=2 ; acquire (x=1, y=1/y=2) ; release
func TestFigure6Propagation(t *testing.T) {
	for _, opts := range allConfigs() {
		rep := run(t, opts, func(th api.Thread) {
			x := th.Malloc(8)
			y := th.Malloc(8)
			l := api.Addr(64)
			t1 := th.Spawn(func(c api.Thread) {
				c.Store64(x, 1)
				c.Lock(l)
				c.Unlock(l)
				c.Store64(x, 3)
				c.Tick(300000) // wait for T3's release
				c.Lock(l)
				c.Observe(c.Load64(x), c.Load64(y)) // expect x=3 (own), y=1 (from T2 via T3)
				c.Unlock(l)
			})
			t2 := th.Spawn(func(c api.Thread) {
				c.Tick(100000) // after T1's release
				c.Lock(l)
				c.Observe(c.Load64(x)) // expect x=1 (propagated from T1)
				c.Store64(y, 1)
				c.Unlock(l)
			})
			t3 := th.Spawn(func(c api.Thread) {
				c.Store64(y, 2)
				c.Tick(200000) // after T2's release
				c.Lock(l)
				// Transitive propagation delivers x=1; the conflicting remote
				// y=1 deterministically overwrites the local y=2.
				c.Observe(c.Load64(x), c.Load64(y))
				c.Unlock(l)
			})
			th.Join(t1)
			th.Join(t2)
			th.Join(t3)
		})
		if obs := rep.Observations[2]; len(obs) != 1 || obs[0] != 1 {
			t.Fatalf("opts %+v: T2 observed %v, want [1]", opts, obs)
		}
		if obs := rep.Observations[3]; len(obs) != 2 || obs[0] != 1 || obs[1] != 1 {
			t.Fatalf("opts %+v: T3 observed %v, want [1 1]", opts, obs)
		}
		if obs := rep.Observations[1]; len(obs) != 2 || obs[0] != 3 || obs[1] != 1 {
			t.Fatalf("opts %+v: T1 observed %v, want [3 1]", opts, obs)
		}
	}
}

// TestByteGranularityMerge reproduces the §4.6 example: with y==0 initially,
// T2 writes y=256 (only byte 1 differs) and T3 writes y=255 (only byte 0
// differs); page diffing at byte granularity merges the concurrent writes
// into y=511 — deterministic and semantically valid, since the program is
// racy.
func TestByteGranularityMerge(t *testing.T) {
	for _, opts := range allConfigs() {
		rep := run(t, opts, func(th api.Thread) {
			y := th.Malloc(4)
			l := api.Addr(64)
			t2 := th.Spawn(func(c api.Thread) {
				c.Store32(y, 256)
				c.Lock(l)
				c.Unlock(l)
			})
			t3 := th.Spawn(func(c api.Thread) {
				c.Store32(y, 255)
				c.Tick(100000) // acquire after T2's release
				c.Lock(l)
				c.Observe(uint64(c.Load32(y)))
				c.Unlock(l)
			})
			th.Join(t2)
			th.Join(t3)
			th.Observe(uint64(th.Load32(y)))
		})
		if obs := rep.Observations[2]; len(obs) != 1 || obs[0] != 511 {
			t.Fatalf("opts %+v: T3 observed %v, want [511]", opts, obs)
		}
		if obs := rep.Observations[0]; len(obs) != 1 || obs[0] != 511 {
			t.Fatalf("opts %+v: main observed %v, want [511]", opts, obs)
		}
	}
}

// TestRedundantWritePrefersLocal reproduces the §4.6 redundant-write policy:
// a remote write that re-stores a location's existing value produces no
// modification entry, so the local (non-redundant) write survives the merge.
func TestRedundantWritePrefersLocal(t *testing.T) {
	for _, opts := range allConfigs() {
		rep := run(t, opts, func(th api.Thread) {
			y := th.Malloc(8)
			l := api.Addr(64)
			th.Store64(y, 7) // initial value, inherited by both children
			t2 := th.Spawn(func(c api.Thread) {
				c.Store64(y, 7) // redundant: same as initial
				c.Lock(l)
				c.Unlock(l)
			})
			t3 := th.Spawn(func(c api.Thread) {
				c.Store64(y, 9) // non-redundant local write
				c.Tick(100000)
				c.Lock(l) // acquire from T2: its redundant write must not overwrite
				c.Observe(c.Load64(y))
				c.Unlock(l)
			})
			th.Join(t2)
			th.Join(t3)
		})
		if obs := rep.Observations[2]; len(obs) != 1 || obs[0] != 9 {
			t.Fatalf("opts %+v: T3 observed %v, want [9]", opts, obs)
		}
	}
}

// TestIsolationWithoutSync verifies the DLRC "must not be visible" rule:
// without synchronization, threads never see each other's writes, no matter
// how long they run.
func TestIsolationWithoutSync(t *testing.T) {
	for _, opts := range allConfigs() {
		rep := run(t, opts, func(th api.Thread) {
			x := th.Malloc(8)
			writer := th.Spawn(func(c api.Thread) {
				for i := 1; i <= 100; i++ {
					c.Store64(x, uint64(i))
				}
			})
			reader := th.Spawn(func(c api.Thread) {
				c.Tick(1000000) // plenty of logical time for the writer
				c.Observe(c.Load64(x))
			})
			th.Join(writer)
			th.Join(reader)
			th.Observe(th.Load64(x)) // joined both: must see 100
		})
		if obs := rep.Observations[2]; obs[0] != 0 {
			t.Fatalf("opts %+v: reader saw %d without synchronization", opts, obs[0])
		}
		if obs := rep.Observations[0]; obs[0] != 100 {
			t.Fatalf("opts %+v: main saw %d after joins, want 100", opts, obs[0])
		}
	}
}

// TestDeterminismUnderGOMAXPROCS runs a racy program under different
// GOMAXPROCS settings: physical parallelism must not change the output.
func TestDeterminismUnderGOMAXPROCS(t *testing.T) {
	prog := func(th api.Thread) {
		arr := th.Malloc(8 * 32)
		mu := api.Addr(64)
		var ids []api.ThreadID
		for w := 0; w < 4; w++ {
			ids = append(ids, th.Spawn(func(c api.Thread) {
				me := uint64(c.ID())
				for i := 0; i < 32; i++ {
					c.Store64(arr+api.Addr(8*i), me*1000+uint64(i))
					if i%8 == 0 {
						c.Lock(mu)
						c.Store64(arr, c.Load64(arr)+me)
						c.Unlock(mu)
					}
				}
			}))
		}
		for _, id := range ids {
			th.Join(id)
		}
		var sum uint64
		for i := 0; i < 32; i++ {
			sum += th.Load64(arr + api.Addr(8*i))
		}
		th.Observe(sum)
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	var first uint64
	for i, procs := range []int{1, 2, 4, 1, 8} {
		runtime.GOMAXPROCS(procs)
		rep := run(t, DefaultOptions(), prog)
		if i == 0 {
			first = rep.OutputHash
		} else if rep.OutputHash != first {
			t.Fatalf("GOMAXPROCS=%d: hash %#x != first %#x", procs, rep.OutputHash, first)
		}
	}
}
