package core

import (
	"strings"
	"testing"

	"rfdet/internal/api"
	"rfdet/internal/mem"
	"rfdet/internal/slicestore"
	"rfdet/internal/vclock"
)

// fakeThread builds a minimal thread for white-box validator tests.
func fakeThread(e *exec, id int, v vclock.VC) *thread {
	t := &thread{
		exec:  e,
		id:    api.ThreadID(id),
		space: mem.NewSpace(),
		vtime: v,
		wake:  make(chan wakeEvent, 1),
	}
	t.proc = e.sched.Register(int32(id), 0)
	return t
}

func newTestExec() *exec {
	return newExec(Options{})
}

func sliceWith(tid int32, time vclock.VC) *slicestore.Slice {
	return &slicestore.Slice{Tid: tid, Time: time, Mods: []mem.Run{{Addr: 0, Data: []byte{1}}}, Bytes: 1}
}

// TestValidatorCatchesOrderViolation proves the invariant checker is not
// vacuous: a slice list that violates happens-before order is rejected.
func TestValidatorCatchesOrderViolation(t *testing.T) {
	e := newTestExec()
	th := fakeThread(e, 0, vclock.VC{10, 10})
	newer := sliceWith(1, vclock.VC{0, 5})
	older := sliceWith(1, vclock.VC{0, 2}) // happens-before newer, listed after
	th.slicePtrs = []*slicestore.Slice{newer, older}
	e.threads = append(e.threads, th)
	err := e.validateLocked()
	if err == nil || !strings.Contains(err.Error(), "happens-before") {
		t.Fatalf("expected order violation, got %v", err)
	}
}

// TestValidatorCatchesUnseenSlice: a slice the thread provably has not seen
// (its timestamp is not ≤ the thread's clock) must be rejected.
func TestValidatorCatchesUnseenSlice(t *testing.T) {
	e := newTestExec()
	th := fakeThread(e, 0, vclock.VC{3})
	th.slicePtrs = []*slicestore.Slice{sliceWith(1, vclock.VC{0, 9})}
	e.threads = append(e.threads, th)
	err := e.validateLocked()
	if err == nil || !strings.Contains(err.Error(), "not happened-before") {
		t.Fatalf("expected unseen-slice violation, got %v", err)
	}
}

// TestValidatorCatchesOwnComponentRegression: a thread's own slices must
// carry strictly increasing own-clock components.
func TestValidatorCatchesOwnComponentRegression(t *testing.T) {
	e := newTestExec()
	th := fakeThread(e, 0, vclock.VC{10})
	a := sliceWith(0, vclock.VC{4})
	b := sliceWith(0, vclock.VC{4}) // duplicate own component
	th.slicePtrs = []*slicestore.Slice{a, b}
	e.threads = append(e.threads, th)
	err := e.validateLocked()
	if err == nil {
		t.Fatal("expected a validation error for duplicate own components")
	}
}

// TestValidatorAcceptsConsistentState: a well-formed list passes.
func TestValidatorAcceptsConsistentState(t *testing.T) {
	e := newTestExec()
	th := fakeThread(e, 0, vclock.VC{10, 10})
	th.slicePtrs = []*slicestore.Slice{
		sliceWith(1, vclock.VC{0, 2}),
		sliceWith(0, vclock.VC{3, 2}),
		sliceWith(1, vclock.VC{3, 7}),
		sliceWith(0, vclock.VC{9, 7}),
	}
	e.threads = append(e.threads, th)
	if err := e.validateLocked(); err != nil {
		t.Fatalf("consistent state rejected: %v", err)
	}
}
