package workloads

import (
	"testing"

	"rfdet/internal/core"
	"rfdet/internal/dthreads"
)

// TestCannealDeterministicViaAtomics exercises the §4.6 extension claim:
// canneal, which the paper excludes because its lock-free swaps are ad hoc
// synchronization, runs deterministically once those swaps use the
// low-level atomics interface.
func TestCannealDeterministicViaAtomics(t *testing.T) {
	w, err := ByName("canneal")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Threads: 4, Size: SizeSmall}
	for _, opts := range []core.Options{core.DefaultOptions(), {Monitor: core.MonitorPF}} {
		rt := core.New(opts)
		var first uint64
		for i := 0; i < 3; i++ {
			rep, err := rt.Run(w.Prog(cfg))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Stats.AtomicsOps == 0 {
				t.Fatal("canneal did not use the atomics extension")
			}
			if rep.Observations[0][1] == 0 {
				t.Fatal("no moves accepted: the annealing loop is dead")
			}
			if i == 0 {
				first = rep.OutputHash
			} else if rep.OutputHash != first {
				t.Fatalf("canneal nondeterministic under %s", rt.Name())
			}
		}
	}
	// The fence baselines handle it deterministically too (their atomics
	// run in serial phases).
	var first uint64
	for i := 0; i < 2; i++ {
		rep, err := dthreads.New().Run(w.Prog(cfg))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = rep.OutputHash
		} else if rep.OutputHash != first {
			t.Fatal("canneal nondeterministic under dthreads")
		}
	}
}
