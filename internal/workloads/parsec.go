package workloads

import (
	"rfdet/internal/api"
)

// BlackScholes is Parsec blackscholes: embarrassingly parallel option
// pricing over disjoint bands with a single lock-based barrier before the
// reduction (Table 1: 24 locks, 1 signal). Prices use fixed-point integer
// arithmetic so every runtime produces identical results.
func BlackScholes(cfg Config) api.ThreadFunc {
	nopts := cfg.Size.pick(128, 4096, 16384)
	return func(t api.Thread) {
		w := cfg.Threads
		opts := t.Malloc(uint64(8 * 4 * nopts)) // S, K, r, v (fixed-point *1000)
		prices := t.Malloc(uint64(8 * nopts))
		bar := newBarrier(t, w)
		r := newRNG(21)
		for i := 0; i < nopts; i++ {
			base := opts + api.Addr(8*4*i)
			t.Store64(base, 500+r.next()%1000)   // spot
			t.Store64(base+8, 500+r.next()%1000) // strike
			t.Store64(base+16, 10+r.next()%90)   // rate
			t.Store64(base+24, 100+r.next()%400) // volatility
		}
		ids := spawnWorkers(t, w, func(c api.Thread, me int) {
			lo, hi := band(nopts, me, w)
			for i := lo; i < hi; i++ {
				base := opts + api.Addr(8*4*i)
				s := c.Load64(base)
				k := c.Load64(base + 8)
				rr := c.Load64(base + 16)
				v := c.Load64(base + 24)
				// A fixed-point surrogate for the Black-Scholes formula:
				// moneyness and volatility terms combined through integer
				// polynomials — the memory/compute profile matters here,
				// not financial accuracy.
				m := s * 1000 / k
				d1 := (m + rr*10 + v*v/500) % 100000
				d2 := d1 - v
				price := (s*d1 - k*d2) / 1000
				c.Store64(prices+api.Addr(8*i), price)
				c.Tick(20)
			}
			bar.wait(c)
		})
		joinAll(t, ids)
		t.Observe(checksumRange(t, prices, nopts))
	}
}

// Swaptions is Parsec swaptions: Monte-Carlo simulation per swaption over
// disjoint bands, fork/join with a trivial barrier (Table 1: 24 locks).
func Swaptions(cfg Config) api.ThreadFunc {
	nswap := cfg.Size.pick(4, 16, 32)
	trials := cfg.Size.pick(16, 200, 800)
	return func(t api.Thread) {
		w := cfg.Threads
		results := t.Malloc(uint64(8 * nswap))
		bar := newBarrier(t, w)
		ids := spawnWorkers(t, w, func(c api.Thread, me int) {
			lo, hi := band(nswap, me, w)
			for s := lo; s < hi; s++ {
				r := newRNG(uint64(s)*2654435761 + 1)
				var acc uint64
				for tr := 0; tr < trials; tr++ {
					// Simulated short-rate path, fixed-point.
					rate := uint64(500)
					for step := 0; step < 8; step++ {
						rate = (rate*99+r.next()%20)/100 + 1
						c.Tick(3)
					}
					payoff := rate * rate % 100000
					acc += payoff
				}
				c.Store64(results+api.Addr(8*s), acc/uint64(trials))
			}
			bar.wait(c)
		})
		joinAll(t, ids)
		t.Observe(checksumRange(t, results, nswap))
	}
}

// queue is a bounded multi-producer/multi-consumer queue in shared memory,
// built from a mutex and two condition variables — the pipeline plumbing of
// dedup and ferret, and the source of their heavy lock/wait/signal traffic
// in Table 1.
type queue struct {
	mu, notEmpty, notFull api.Addr
	head, tail, count     api.Addr
	closed                api.Addr
	buf                   api.Addr
	cap                   int
}

func newQueue(t api.Thread, capacity int) *queue {
	base := t.Malloc(uint64(64 + 8*capacity))
	return &queue{
		mu:       base,
		notEmpty: base + 8,
		notFull:  base + 16,
		head:     base + 24,
		tail:     base + 32,
		count:    base + 40,
		closed:   base + 48,
		buf:      base + 64,
		cap:      capacity,
	}
}

// push enqueues v, blocking while the queue is full.
func (q *queue) push(t api.Thread, v uint64) {
	t.Lock(q.mu)
	for t.Load64(q.count) == uint64(q.cap) {
		t.Wait(q.notFull, q.mu)
	}
	tail := t.Load64(q.tail)
	t.Store64(q.buf+api.Addr(8*tail), v)
	t.Store64(q.tail, (tail+1)%uint64(q.cap))
	t.Store64(q.count, t.Load64(q.count)+1)
	t.Signal(q.notEmpty)
	t.Unlock(q.mu)
}

// pop dequeues a value; ok is false once the queue is closed and drained.
func (q *queue) pop(t api.Thread) (v uint64, ok bool) {
	t.Lock(q.mu)
	for t.Load64(q.count) == 0 && t.Load64(q.closed) == 0 {
		t.Wait(q.notEmpty, q.mu)
	}
	if t.Load64(q.count) == 0 {
		t.Unlock(q.mu)
		return 0, false
	}
	head := t.Load64(q.head)
	v = t.Load64(q.buf + api.Addr(8*head))
	t.Store64(q.head, (head+1)%uint64(q.cap))
	t.Store64(q.count, t.Load64(q.count)-1)
	t.Signal(q.notFull)
	t.Unlock(q.mu)
	return v, true
}

// close marks the queue closed and wakes all consumers.
func (q *queue) close(t api.Thread) {
	t.Lock(q.mu)
	t.Store64(q.closed, 1)
	t.Broadcast(q.notEmpty)
	t.Unlock(q.mu)
}

// Dedup is Parsec dedup: a three-stage pipeline (chunk → deduplicate →
// "compress"/write) over bounded queues, the second-heaviest
// synchronization profile in Table 1 (9304 locks, 152 waits, 3599 signals).
// Deduplication state is partitioned by chunk hash so any number of
// dedupers race-freely share the fingerprint table.
func Dedup(cfg Config) api.ThreadFunc {
	nchunks := cfg.Size.pick(32, 600, 2400)
	// The fingerprint table must comfortably hold every unique chunk
	// (three quarters of the stream is unique by construction).
	tableSlots := cfg.Size.pick(256, 2048, 8192)
	return func(t api.Thread) {
		w := cfg.Threads
		if w < 2 {
			w = 2
		}
		q1 := newQueue(t, 16)
		q2 := newQueue(t, 16)
		table := t.Malloc(uint64(16 * tableSlots)) // fingerprint, seen-count
		tableLock := t.Malloc(8)
		outSum := t.Malloc(8)
		outDup := t.Malloc(8)

		ndedup := w - 1 // one writer, the rest deduplicate; main produces
		dedupDone := t.Malloc(8)
		doneLock := t.Malloc(8)

		var ids []api.ThreadID
		for d := 0; d < ndedup; d++ {
			ids = append(ids, t.Spawn(func(c api.Thread) {
				for {
					v, ok := q1.pop(c)
					if !ok {
						break
					}
					// Fingerprint the chunk.
					fp := v
					fp ^= fp >> 33
					fp *= 0xff51afd7ed558ccd
					fp ^= fp >> 33
					if fp == 0 {
						fp = 1
					}
					slot := int(fp % uint64(tableSlots))
					c.Lock(tableLock)
					dup := uint64(0)
					for probe := 0; probe < tableSlots; probe++ {
						sa := table + api.Addr(16*slot)
						cur := c.Load64(sa)
						if cur == fp {
							c.Store64(sa+8, c.Load64(sa+8)+1)
							dup = 1
							break
						}
						if cur == 0 {
							c.Store64(sa, fp)
							c.Store64(sa+8, 1)
							break
						}
						slot = (slot + 1) % tableSlots
					}
					c.Unlock(tableLock)
					q2.push(c, fp*2+dup)
					c.Tick(30)
				}
				// Last deduper out closes the downstream queue.
				c.Lock(doneLock)
				d := c.Load64(dedupDone) + 1
				c.Store64(dedupDone, d)
				if int(d) == ndedup {
					q2.close(c)
				}
				c.Unlock(doneLock)
			}))
		}
		writer := t.Spawn(func(c api.Thread) {
			for {
				v, ok := q2.pop(c)
				if !ok {
					break
				}
				c.Store64(outSum, c.Load64(outSum)+v/2)
				c.Store64(outDup, c.Load64(outDup)+v%2)
				c.Tick(10)
			}
		})
		// Main thread is the chunker/producer.
		r := newRNG(3)
		for i := 0; i < nchunks; i++ {
			// Make real duplicates so the dedup path is exercised.
			var chunk uint64
			if r.next()%4 == 0 {
				chunk = uint64(r.next() % 8)
			} else {
				chunk = r.next()
			}
			q1.push(t, chunk)
		}
		q1.close(t)
		joinAll(t, ids)
		t.Join(writer)
		t.Observe(t.Load64(outSum), t.Load64(outDup))
	}
}

// Ferret is Parsec ferret: a four-stage similarity-search pipeline
// (segment → extract → index → rank) over bounded queues, the heaviest
// synchronization profile in Table 1 (43025 locks for 4 threads) with very
// little computation per item.
func Ferret(cfg Config) api.ThreadFunc {
	nitems := cfg.Size.pick(32, 800, 4000)
	return func(t api.Thread) {
		q1 := newQueue(t, 8)
		q2 := newQueue(t, 8)
		q3 := newQueue(t, 8)
		rank := t.Malloc(8 * 8) // top-8 ranking, lock-free (single ranker)

		stage := func(in, out *queue, f func(c api.Thread, v uint64) uint64) api.ThreadFunc {
			return func(c api.Thread) {
				for {
					v, ok := in.pop(c)
					if !ok {
						break
					}
					out.push(c, f(c, v))
					c.Tick(5)
				}
				out.close(c)
			}
		}
		extract := t.Spawn(stage(q1, q2, func(c api.Thread, v uint64) uint64 {
			// "Feature extraction": a little mixing.
			v ^= v << 13
			v ^= v >> 7
			return v
		}))
		index := t.Spawn(stage(q2, q3, func(c api.Thread, v uint64) uint64 {
			// "Index probe": fold to a similarity score.
			return (v % 100003) * 17
		}))
		ranker := t.Spawn(func(c api.Thread) {
			for {
				v, ok := q3.pop(c)
				if !ok {
					break
				}
				// Keep the max-8 scores, insertion style.
				for s := 0; s < 8; s++ {
					slot := rank + api.Addr(8*s)
					cur := c.Load64(slot)
					if v > cur {
						c.Store64(slot, v)
						v = cur
					}
				}
				c.Tick(12)
			}
		})
		// Main is the segmenter/producer.
		r := newRNG(17)
		for i := 0; i < nitems; i++ {
			q1.push(t, r.next())
		}
		q1.close(t)
		t.Join(extract)
		t.Join(index)
		t.Join(ranker)
		t.Observe(checksumRange(t, rank, 8))
	}
}

// Racey is the determinism stress test of §5.1 (Hill & Xu): threads mix a
// shared signature array through intentional data races — reads and writes
// with no synchronization at all. Any scheduling or visibility
// nondeterminism changes the final signature; a DMT runtime must produce
// the same signature on every run.
func Racey(cfg Config) api.ThreadFunc {
	iters := cfg.Size.pick(64, 2048, 16384)
	const sigWords = 64
	return func(t api.Thread) {
		w := cfg.Threads
		sig := t.Malloc(8 * sigWords)
		for i := 0; i < sigWords; i++ {
			t.Store64(sig+api.Addr(8*i), uint64(i)*0x9e3779b97f4a7c15+1)
		}
		ids := spawnWorkers(t, w, func(c api.Thread, me int) {
			r := newRNG(uint64(me) + 1)
			for i := 0; i < iters; i++ {
				// The racey kernel: read two racy cells, mix, write a third.
				a := c.Load64(sig + api.Addr(8*(r.next()%sigWords)))
				b := c.Load64(sig + api.Addr(8*(r.next()%sigWords)))
				mix := a*31 + b + uint64(me)
				c.Store64(sig+api.Addr(8*((a+b)%sigWords)), mix)
				c.Tick(5)
			}
		})
		joinAll(t, ids)
		t.Observe(checksumRange(t, sig, sigWords))
	}
}
