package workloads

import (
	"testing"

	"rfdet/internal/api"
	"rfdet/internal/core"
)

// profile runs a kernel under RFDet-ci and returns its stats — the Table 1
// row for this reproduction.
func profile(t *testing.T, name string, cfg Config) api.Stats {
	t.Helper()
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.New(core.DefaultOptions()).Run(w.Prog(cfg))
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return rep.Stats
}

// TestTable1Signatures pins each kernel's synchronization signature to its
// paper counterpart's shape (Table 1): which operations dominate, which are
// absent, and the orderings between kernels that the paper's analysis
// (§5.3) depends on.
func TestTable1Signatures(t *testing.T) {
	cfg := Config{Threads: 4, Size: SizeSmall}
	stats := map[string]api.Stats{}
	for _, name := range Names() {
		stats[name] = profile(t, name, cfg)
	}

	// Phoenix fork/join kernels use no locks at all (Table 1 rows
	// linear_regression, matrix_multiply, wordcount, string_match).
	for _, name := range []string{"linear_regression", "matrix_multiply", "wordcount", "string_match"} {
		if s := stats[name]; s.Locks != 0 || s.Waits != 0 {
			t.Errorf("%s: expected a pure fork/join profile, got %d locks %d waits", name, s.Locks, s.Waits)
		}
		if s := stats[name]; s.Forks < 4 {
			t.Errorf("%s: expected ≥4 forks, got %d", name, s.Forks)
		}
	}

	// water-nsquared is the most lock-intensive SPLASH-2 kernel; the
	// spatial variant uses far fewer locks (6314 vs 1103 in the paper).
	if stats["water-ns"].Locks < 10*stats["water-sp"].Locks {
		t.Errorf("water-ns (%d locks) should dwarf water-sp (%d locks)",
			stats["water-ns"].Locks, stats["water-sp"].Locks)
	}

	// The pipeline kernels dominate the signal counts (dedup: 3599
	// signals; ferret: heaviest lock traffic in the paper).
	if stats["dedup"].Signals < 100 || stats["ferret"].Signals < 100 {
		t.Errorf("pipeline kernels barely signaled: dedup %d, ferret %d",
			stats["dedup"].Signals, stats["ferret"].Signals)
	}
	if stats["ferret"].Locks <= stats["blackscholes"].Locks {
		t.Error("ferret should out-lock blackscholes by orders of magnitude")
	}

	// fft and lu have the largest memory-op counts of the SPLASH-2 set
	// (Table 1: 163M and 287M; scaled here, the ordering survives).
	fft, wsp := stats["fft"], stats["water-sp"]
	if fft.MemOps() < wsp.MemOps() {
		t.Error("fft should perform more memory ops than water-sp")
	}
	lu, oc := stats["lu-con"], stats["ocean"]
	if lu.MemOps() < oc.MemOps() {
		t.Error("lu should perform more memory ops than ocean")
	}

	// Loads outnumber stores everywhere except pure initialization
	// patterns (§5.3: "the number of Store instructions is much smaller
	// than the number of Load instructions").
	for _, name := range []string{"ocean", "water-ns", "fft", "lu-con", "pca", "wordcount"} {
		if s := stats[name]; s.Loads <= s.Stores {
			t.Errorf("%s: loads (%d) should exceed stores (%d)", name, s.Loads, s.Stores)
		}
	}

	// Only a small portion of stores trigger a page copy on the compute
	// kernels (§5.3, column 9). Sync-dominated kernels (water-ns, dedup,
	// ferret) legitimately snapshot on most slices — their slices hold only
	// a handful of stores.
	for _, name := range []string{"fft", "radix", "lu-con", "lu-non", "linear_regression",
		"matrix_multiply", "blackscholes", "ocean"} {
		s := stats[name]
		if s.StoresWithCopy*10 > s.Stores {
			t.Errorf("%s: %d of %d stores copied a page — first-touch detection is broken",
				name, s.StoresWithCopy, s.Stores)
		}
	}

	// lu-non dirties more pages than lu-con for the same computation
	// (non-contiguous layout, Table 1's memory columns).
	if stats["lu-non"].StoresWithCopy <= stats["lu-con"].StoresWithCopy {
		t.Errorf("lu-non (%d page copies) should exceed lu-con (%d)",
			stats["lu-non"].StoresWithCopy, stats["lu-con"].StoresWithCopy)
	}

	// RFDet's footprint is a multiple of the shared memory (§5.4:
	// N*SharedMemory + metadata).
	for _, name := range []string{"fft", "radix", "lu-non"} {
		s := stats[name]
		if s.RuntimeMemBytes < 4*s.SharedMemBytes {
			t.Errorf("%s: runtime memory %d < 4×shared %d", name, s.RuntimeMemBytes, s.SharedMemBytes)
		}
	}
}

// TestForkJoinCounts pins the paper's convention that fork and join counts
// match (Table 1 shows one number for both).
func TestForkJoinCounts(t *testing.T) {
	cfg := Config{Threads: 4, Size: SizeTest}
	for _, name := range Names() {
		s := profile(t, name, cfg)
		if s.Forks != s.Joins {
			t.Errorf("%s: forks %d != joins %d", name, s.Forks, s.Joins)
		}
		if s.Locks != s.Unlocks {
			t.Errorf("%s: locks %d != unlocks %d", name, s.Locks, s.Unlocks)
		}
	}
}
