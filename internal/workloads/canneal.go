package workloads

import (
	"rfdet/internal/api"
)

// Canneal is the Parsec benchmark the paper's evaluation *excludes* (§5.1):
// its lock-free element swaps are ad hoc synchronization, which RFDet's
// pthreads-only interface cannot express ("they violate atomicity, e.g.,
// canneal"). This reproduction includes it as an extension workload built
// on the §4.6 low-level-atomics interface the paper sketches as future
// work: each simulated-annealing swap claims its two elements with
// AtomicCAS64 and publishes the move with atomic stores, so the whole
// benchmark runs deterministically.
//
// Canneal is not part of All() — Table 1 and the figures keep the paper's
// 16 benchmarks — but is available through ByName("canneal") and exercised
// by the test suite as evidence for the §4.6 claim that the atomics
// interface would admit the excluded programs.
func Canneal(cfg Config) api.ThreadFunc {
	nelems := cfg.Size.pick(32, 512, 2048)
	moves := cfg.Size.pick(64, 2048, 8192)
	return func(t api.Thread) {
		w := cfg.Threads
		// Each element: a location (position in a grid) and a busy flag.
		loc := t.Malloc(uint64(8 * nelems))
		busy := t.Malloc(uint64(8 * nelems))
		accepted := t.Malloc(8) // atomic counter of accepted moves
		r := newRNG(23)
		for i := 0; i < nelems; i++ {
			t.Store64(loc+api.Addr(8*i), r.next()%65536)
		}
		locAt := func(i int) api.Addr { return loc + api.Addr(8*i) }
		busyAt := func(i int) api.Addr { return busy + api.Addr(8*i) }

		ids := spawnWorkers(t, w, func(c api.Thread, me int) {
			rng := newRNG(uint64(me)*0x9e3779b9 + 7)
			myMoves := moves / w
			for m := 0; m < myMoves; m++ {
				a := int(rng.next() % uint64(nelems))
				b := int(rng.next() % uint64(nelems))
				if a == b {
					continue
				}
				if a > b {
					a, b = b, a
				}
				// Claim both elements lock-free, in index order (no
				// deadlock); back off if either is busy.
				if !c.AtomicCAS64(busyAt(a), 0, 1) {
					c.Tick(10)
					continue
				}
				if !c.AtomicCAS64(busyAt(b), 0, 1) {
					c.AtomicAdd64(busyAt(a), ^uint64(0)) // release a
					c.Tick(10)
					continue
				}
				// Annealing move: swap if it lowers the (toy) cost; the
				// claimed elements may be read/written with plain accesses
				// because the CAS acquire brought their latest values.
				la, lb := c.Load64(locAt(a)), c.Load64(locAt(b))
				costNow := la%4096 + lb%4096
				costSwapped := lb%4096 + la%4096 + (la^lb)%64 - 32
				if costSwapped < costNow || rng.next()%16 == 0 {
					c.Store64(locAt(a), lb)
					c.Store64(locAt(b), la)
					c.AtomicAdd64(accepted, 1)
				}
				// Release both (atomic releases publish the swap).
				c.AtomicAdd64(busyAt(b), ^uint64(0))
				c.AtomicAdd64(busyAt(a), ^uint64(0))
				c.Tick(30)
			}
		})
		joinAll(t, ids)
		t.Observe(checksumRange(t, loc, nelems), t.Load64(accepted))
	}
}
