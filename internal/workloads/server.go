package workloads

import (
	"fmt"

	"rfdet/internal/api"
)

// This file is the server-shaped workload: a deterministic in-memory KV
// server. Unlike the batch kernels, it has the synchronization signature of a
// request/response service — simulated client threads generate a request log
// and feed a condvar-based work queue, N worker threads drain it and serve
// GET/PUT/DELETE/SCAN/CAS against a sharded hash map guarded by per-shard
// locks, an atomic counter tracks served requests, and the workers rendezvous
// on a native barrier before the final state scan.
//
// The point of the workload is active replication (Aviram & Ford's
// fault-tolerance case for determinism): request *responses* depend on the
// order in which workers win the queue and the shard locks, so a
// nondeterministic runtime produces a different response log on every run —
// but a DMT runtime pins one schedule, making the full response log and the
// final store state a pure function of (seed, thread count). Running k
// replicas of the same log and byte-comparing their state/response hashes is
// then a complete end-to-end oracle; internal/harness/replica.go builds that
// check on top of this workload.
//
// The workload is free of data races — every shared access is ordered by the
// queue mutex, a shard lock, an atomic, the end barrier or a join — but its
// result is acquisition-order dependent, so (unlike the RaceFree batch
// kernels) its output is runtime-specific: each deterministic runtime pins
// its own single outcome, and pthreads varies.

// DefaultServerSeed is the request-log seed Server runs with; the replica
// harness and the seed-regression goldens use it too.
const DefaultServerSeed uint64 = 0x5eed0d15ea5e

// Server op codes, encoded in the request log.
const (
	serverOpGet = iota
	serverOpPut
	serverOpDelete
	serverOpScan
	serverOpCAS
	serverOpPoison // injected failing request (aborts the run)
)

// serverMiss is the response value for operations on absent keys.
const serverMiss = ^uint64(0)

// serverTomb marks a deleted hash-table slot (keys are generated ≥ 2, so the
// sentinel never collides with a live key; 0 is an empty slot).
const serverTomb = uint64(1)

// serverParams sizes one server run.
type serverParams struct {
	requests    int // total requests in the log
	clients     int // request-generating client threads
	storeShards int // KV map shards, each with its own lock
	slots       int // hash slots per shard
	keyspace    int // distinct keys (< total slots, so inserts always land)
}

func serverSizing(size Size) serverParams {
	return serverParams{
		requests:    size.pick(96, 2048, 16384),
		clients:     size.pick(2, 3, 4),
		storeShards: 8,
		slots:       size.pick(32, 256, 1024),
		keyspace:    size.pick(48, 768, 3072),
	}
}

// ServerRequests returns the request-log length the server workload runs at
// the given size — the denominator of every requests/sec figure.
func ServerRequests(size Size) int { return serverSizing(size).requests }

// Server is the deterministic KV server at the default request-log seed.
func Server(cfg Config) api.ThreadFunc { return ServerSeeded(cfg, DefaultServerSeed) }

// ServerSeeded is the deterministic KV server over the request log generated
// from the given seed. Replicas of the same (seed, cfg) pair on a
// deterministic runtime produce byte-identical state and response hashes.
func ServerSeeded(cfg Config, seed uint64) api.ThreadFunc {
	return serverProg(cfg, seed, -1)
}

// ServerPoisoned is ServerSeeded with request poisonAt replaced by a failing
// request: the worker that draws it executes a zero-count barrier, which
// aborts the whole run recoverably. The replica harness uses it to test
// divergent-by-abort reporting.
func ServerPoisoned(cfg Config, seed uint64, poisonAt int) api.ThreadFunc {
	return serverProg(cfg, seed, poisonAt)
}

func serverProg(cfg Config, seed uint64, poisonAt int) api.ThreadFunc {
	p := serverSizing(cfg.Size)
	return func(t api.Thread) {
		w := cfg.Threads
		if w < 1 {
			w = 1
		}

		// Shared layout. Every region is a separate allocation so the KV
		// shards land in distinct address ranges (and therefore, under the
		// sharded commit monitor, in distinct domains).
		reqLog := t.Malloc(uint64(32 * p.requests))   // op, key, arg, arg2 per request
		responses := t.Malloc(uint64(8 * p.requests)) // one response word per request
		shardBase := make([]api.Addr, p.storeShards)  // per shard: lock, 16B slots
		for s := 0; s < p.storeShards; s++ {
			shardBase[s] = t.Malloc(uint64(64 + 16*p.slots))
		}
		sync := t.Malloc(64) // served counter (+0), end barrier (+32)
		served := sync
		endBar := sync + 32
		q := newQueue(t, 16)

		shardOf := func(key uint64) api.Addr {
			return shardBase[int(key)%p.storeShards]
		}

		// Workers: drain the queue, serve requests against the sharded map.
		workers := spawnWorkers(t, w, func(c api.Thread, me int) {
			for {
				idx, ok := q.pop(c)
				if !ok {
					break
				}
				req := reqLog + api.Addr(32*idx)
				op := c.Load64(req)
				key := c.Load64(req + 8)
				arg := c.Load64(req + 16)
				arg2 := c.Load64(req + 24)

				var resp uint64
				switch op {
				case serverOpPoison:
					c.Barrier(endBar+8, 0) // zero-count barrier: aborts the run
				case serverOpScan:
					// Fold the whole shard under its lock.
					base := shardOf(key)
					c.Lock(base)
					fold := uint64(0xcbf29ce484222325)
					for s := 0; s < p.slots; s++ {
						slot := base + 64 + api.Addr(16*s)
						k := c.Load64(slot)
						if k != 0 && k != serverTomb {
							fold = checksum64(checksum64(fold, k), c.Load64(slot+8))
						}
					}
					c.Unlock(base)
					resp = fold
				default:
					base := shardOf(key)
					c.Lock(base)
					resp = serverApply(c, base+64, p.slots, op, key, arg, arg2)
					c.Unlock(base)
				}
				c.Store64(responses+api.Addr(8*idx), checksum64(checksum64(0xcbf29ce484222325, idx), resp))
				c.AtomicAdd64(served, 1)
				c.Tick(8)
			}
			c.Barrier(endBar, w) // all workers rendezvous before the state scan
		})

		// Clients: generate disjoint bands of the request log and feed the
		// queue. Each request is written before its index is pushed, so the
		// queue mutex orders the log write before any worker's read.
		clients := spawnWorkers(t, p.clients, func(c api.Thread, me int) {
			lo, hi := band(p.requests, me, p.clients)
			r := newRNG(seed*2654435761 + uint64(me) + 1)
			for i := lo; i < hi; i++ {
				op, key, arg, arg2 := serverGenRequest(&r, p.keyspace)
				if i == poisonAt {
					op = serverOpPoison
				}
				req := reqLog + api.Addr(32*i)
				c.Store64(req, op)
				c.Store64(req+8, key)
				c.Store64(req+16, arg)
				c.Store64(req+24, arg2)
				q.push(c, uint64(i))
				c.Tick(3)
			}
		})

		joinAll(t, clients)
		q.close(t)
		joinAll(t, workers)

		// State hash: the store contents in shard/slot order — the replica
		// divergence oracle for final memory.
		state := uint64(0xcbf29ce484222325)
		live := uint64(0)
		for s := 0; s < p.storeShards; s++ {
			for i := 0; i < p.slots; i++ {
				slot := shardBase[s] + 64 + api.Addr(16*i)
				k := t.Load64(slot)
				if k != 0 && k != serverTomb {
					state = checksum64(checksum64(state, k), t.Load64(slot+8))
					live++
				}
			}
		}
		// Response hash: every request's response word in log order — the
		// replica divergence oracle for served responses.
		respHash := uint64(0xcbf29ce484222325)
		for i := 0; i < p.requests; i++ {
			respHash = checksum64(respHash, t.Load64(responses+api.Addr(8*i)))
		}
		// Log digest: op mix and keys, a pure function of the seed — equal
		// across ALL runtimes and configurations (a generator sanity check).
		logHash := uint64(0xcbf29ce484222325)
		for i := 0; i < p.requests; i++ {
			logHash = checksum64(logHash, t.Load64(reqLog+api.Addr(32*i)))
			logHash = checksum64(logHash, t.Load64(reqLog+api.Addr(32*i)+8))
		}
		t.Observe(state, respHash, t.Load64(served), live, logHash)
	}
}

// serverApply performs a point operation on one shard's open-addressing
// table (linear probing, tombstone reuse). Caller holds the shard lock.
func serverApply(c api.Thread, table api.Addr, slots int, op, key, arg, arg2 uint64) uint64 {
	h := key
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	probe := int(h % uint64(slots))
	insertAt := -1 // first tombstone seen, reusable by PUT/CAS-insert
	found := -1
	for n := 0; n < slots; n++ {
		slot := table + api.Addr(16*probe)
		k := c.Load64(slot)
		if k == key {
			found = probe
			break
		}
		if k == serverTomb {
			if insertAt < 0 {
				insertAt = probe
			}
		} else if k == 0 {
			if insertAt < 0 {
				insertAt = probe
			}
			break
		}
		probe = (probe + 1) % slots
	}

	switch op {
	case serverOpGet:
		if found < 0 {
			return serverMiss
		}
		return c.Load64(table + api.Addr(16*found) + 8)
	case serverOpPut:
		if found >= 0 {
			slot := table + api.Addr(16*found)
			old := c.Load64(slot + 8)
			c.Store64(slot+8, arg)
			return old
		}
		if insertAt >= 0 {
			slot := table + api.Addr(16*insertAt)
			c.Store64(slot, key)
			c.Store64(slot+8, arg)
		}
		return serverMiss
	case serverOpDelete:
		if found < 0 {
			return serverMiss
		}
		slot := table + api.Addr(16*found)
		old := c.Load64(slot + 8)
		c.Store64(slot, serverTomb)
		c.Store64(slot+8, 0)
		return old
	default: // serverOpCAS: swap iff current == expected (arg2)
		if found < 0 {
			return 0
		}
		slot := table + api.Addr(16*found)
		old := c.Load64(slot + 8)
		if old != arg2 {
			return old * 2
		}
		c.Store64(slot+8, arg)
		return old*2 + 1
	}
}

// serverGenRequest draws one request from the client's PRNG: 40% GET,
// 30% PUT, 10% DELETE, 5% SCAN, 15% CAS over a bounded keyspace (keys ≥ 2 so
// they never collide with the empty/tombstone sentinels).
func serverGenRequest(r *rng, keyspace int) (op, key, arg, arg2 uint64) {
	key = 2 + r.next()%uint64(keyspace)
	arg = r.next()
	arg2 = r.next() % 16 // CAS expectations drawn small so some succeed
	switch d := r.next() % 100; {
	case d < 40:
		op = serverOpGet
	case d < 70:
		op = serverOpPut
		arg = arg % 16 // PUT small values so CAS expectations can match
	case d < 80:
		op = serverOpDelete
	case d < 85:
		op = serverOpScan
	default:
		op = serverOpCAS
		arg = arg % 16
	}
	return op, key, arg, arg2
}

// ServerSummary is the decoded observation record of one server execution:
// the divergence-checking fingerprint a replica exposes.
type ServerSummary struct {
	StateHash    uint64 // final store contents, shard/slot order
	ResponseHash uint64 // every request's response word, log order
	Served       uint64 // requests served (always the full log length)
	Live         uint64 // live keys in the final store
	LogHash      uint64 // request-log digest (pure function of the seed)
}

// SummarizeServer decodes the server workload's observations from a report.
func SummarizeServer(rep *api.Report) (ServerSummary, error) {
	obs := rep.Observations[0]
	if len(obs) != 5 {
		return ServerSummary{}, fmt.Errorf("workloads: server observed %d values, want 5", len(obs))
	}
	return ServerSummary{
		StateHash:    obs[0],
		ResponseHash: obs[1],
		Served:       obs[2],
		Live:         obs[3],
		LogHash:      obs[4],
	}, nil
}
