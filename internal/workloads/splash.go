package workloads

import (
	"rfdet/internal/api"
)

// Ocean reproduces SPLASH-2 ocean's profile: an iterative red-black
// Gauss-Seidel sweep over a shared grid with two lock-based barriers per
// iteration and a lock-guarded convergence reduction — the most
// barrier-intensive kernel (Table 1: 1100 locks, 671 waits for 4 threads).
func Ocean(cfg Config) api.ThreadFunc {
	n := cfg.Size.pick(8, 24, 40)
	iters := cfg.Size.pick(2, 8, 16)
	return func(t api.Thread) {
		w := cfg.Threads
		grid := t.Malloc(uint64(8 * n * n))
		residual := t.Malloc(8)
		resLock := t.Malloc(8)
		bar := newBarrier(t, w)
		at := func(i, j int) api.Addr { return grid + api.Addr(8*(i*n+j)) }
		// Deterministic initial heights.
		r := newRNG(42)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				t.Store64(at(i, j), r.next()%1000)
			}
		}
		ids := spawnWorkers(t, w, func(c api.Thread, me int) {
			lo, hi := band(n-2, me, w)
			lo, hi = lo+1, hi+1
			for it := 0; it < iters; it++ {
				for phase := 0; phase < 2; phase++ {
					var localRes uint64
					for i := lo; i < hi; i++ {
						for j := 1; j < n-1; j++ {
							if (i+j)%2 != phase {
								continue
							}
							up := c.Load64(at(i-1, j))
							down := c.Load64(at(i+1, j))
							left := c.Load64(at(i, j-1))
							right := c.Load64(at(i, j+1))
							old := c.Load64(at(i, j))
							val := (up + down + left + right) / 4
							c.Store64(at(i, j), val)
							if val > old {
								localRes += val - old
							} else {
								localRes += old - val
							}
							c.Tick(4)
						}
					}
					c.Lock(resLock)
					c.Store64(residual, c.Load64(residual)+localRes)
					c.Unlock(resLock)
					bar.wait(c)
				}
			}
		})
		joinAll(t, ids)
		h := checksumRange(t, grid, n*n)
		t.Observe(h, t.Load64(residual))
	}
}

// waterCommon implements the shared shape of water-nsquared and
// water-spatial: per-timestep force accumulation into shared per-molecule
// arrays guarded by fine-grained locks, then a private position update,
// with lock-based barriers between phases. Forces are fixed-point integers
// so the lock-order-independent sums are exact and identical on every
// runtime.
func waterCommon(cfg Config, spatial bool) api.ThreadFunc {
	var nmol, steps int
	if spatial {
		nmol = cfg.Size.pick(12, 48, 96)
		steps = cfg.Size.pick(1, 3, 4)
	} else {
		nmol = cfg.Size.pick(10, 40, 64)
		steps = cfg.Size.pick(1, 3, 4)
	}
	return func(t api.Thread) {
		w := cfg.Threads
		pos := t.Malloc(uint64(8 * nmol))   // fixed-point positions
		force := t.Malloc(uint64(8 * nmol)) // accumulated forces
		locks := t.Malloc(uint64(8 * nmol)) // one lock per molecule (or cell)
		bar := newBarrier(t, w)
		r := newRNG(7)
		for i := 0; i < nmol; i++ {
			t.Store64(pos+api.Addr(8*i), r.next()%(1<<20))
		}
		lockAt := func(i int) api.Addr { return locks + api.Addr(8*i) }
		posAt := func(i int) api.Addr { return pos + api.Addr(8*i) }
		forceAt := func(i int) api.Addr { return force + api.Addr(8*i) }

		// Cells for the spatial variant: molecule i is in cell i/cellSize,
		// and only molecules in the same cell interact — far fewer pairs and
		// locks than the n-squared variant, matching water-sp's lighter lock
		// profile in Table 1 (1103 vs 6314 locks).
		cellSize := 8
		ncells := (nmol + cellSize - 1) / cellSize

		ids := spawnWorkers(t, w, func(c api.Thread, me int) {
			for s := 0; s < steps; s++ {
				if spatial {
					clo, chi := band(ncells, me, w)
					for cell := clo; cell < chi; cell++ {
						mlo := cell * cellSize
						mhi := mlo + cellSize
						if mhi > nmol {
							mhi = nmol
						}
						// One lock per cell guards its force updates.
						c.Lock(lockAt(mlo))
						for i := mlo; i < mhi; i++ {
							for j := i + 1; j < mhi; j++ {
								pi, pj := c.Load64(posAt(i)), c.Load64(posAt(j))
								f := (pi ^ pj) % 1024
								c.Store64(forceAt(i), c.Load64(forceAt(i))+f)
								c.Store64(forceAt(j), c.Load64(forceAt(j))+f)
								c.Tick(8)
							}
						}
						c.Unlock(lockAt(mlo))
					}
				} else {
					// n-squared: every pair, with per-molecule locks.
					npairs := nmol * (nmol - 1) / 2
					plo, phi := band(npairs, me, w)
					pair := 0
					for i := 0; i < nmol && pair < phi; i++ {
						for j := i + 1; j < nmol && pair < phi; j++ {
							if pair >= plo {
								pi, pj := c.Load64(posAt(i)), c.Load64(posAt(j))
								f := (pi ^ pj) % 1024
								lo, hi := i, j
								c.Lock(lockAt(lo))
								c.Store64(forceAt(lo), c.Load64(forceAt(lo))+f)
								c.Unlock(lockAt(lo))
								c.Lock(lockAt(hi))
								c.Store64(forceAt(hi), c.Load64(forceAt(hi))+f)
								c.Unlock(lockAt(hi))
								c.Tick(8)
							}
							pair++
						}
					}
				}
				bar.wait(c)
				// Private position update over this worker's own molecules.
				mlo, mhi := band(nmol, me, w)
				for i := mlo; i < mhi; i++ {
					f := c.Load64(forceAt(i))
					c.Store64(posAt(i), (c.Load64(posAt(i))+f)%(1<<20))
					c.Store64(forceAt(i), 0)
					c.Tick(2)
				}
				bar.wait(c)
			}
		})
		joinAll(t, ids)
		t.Observe(checksumRange(t, pos, nmol))
	}
}

// WaterNS is SPLASH-2 water-nsquared: O(n²) pairwise interactions with
// per-molecule locks — the most lock-intensive SPLASH-2 kernel in Table 1.
func WaterNS(cfg Config) api.ThreadFunc { return waterCommon(cfg, false) }

// WaterSP is SPLASH-2 water-spatial: cell-based interactions with one lock
// per cell — far fewer synchronizations than water-nsquared.
func WaterSP(cfg Config) api.ThreadFunc { return waterCommon(cfg, true) }

// FFT is SPLASH-2 fft: a parallel iterative radix-2 FFT over a large shared
// complex array, with a lock-based barrier per stage. Very few
// synchronizations but the largest memory footprint (Table 1: 54 locks,
// 384 MB) — under RFDet its overhead comes from big page snapshots, not
// synchronization.
func FFT(cfg Config) api.ThreadFunc {
	logN := cfg.Size.pick(6, 10, 12)
	return func(t api.Thread) {
		w := cfg.Threads
		n := 1 << logN
		// Complex values as (re, im) float64 pairs, plus a shared twiddle
		// table indexed by k/n — as in SPLASH-2, the table is read far more
		// than the data is written, giving fft its load-heavy profile.
		re := t.Malloc(uint64(8 * n))
		im := t.Malloc(uint64(8 * n))
		twr := t.Malloc(uint64(8 * n / 2))
		twi := t.Malloc(uint64(8 * n / 2))
		bar := newBarrier(t, w)
		r := newRNG(99)
		for i := 0; i < n; i++ {
			t.StoreF64(re+api.Addr(8*i), float64(r.next()%1000)/1000)
			t.StoreF64(im+api.Addr(8*i), 0)
		}
		for k := 0; k < n/2; k++ {
			ang := -2 * 3.141592653589793 * float64(k) / float64(n)
			t.StoreF64(twr+api.Addr(8*k), cosApprox(ang))
			t.StoreF64(twi+api.Addr(8*k), sinApprox(ang))
		}
		reAt := func(i int) api.Addr { return re + api.Addr(8*i) }
		imAt := func(i int) api.Addr { return im + api.Addr(8*i) }

		ids := spawnWorkers(t, w, func(c api.Thread, me int) {
			// Bit-reversal permutation: each worker swaps pairs (i, rev(i))
			// with i < rev(i) in its band.
			lo, hi := band(n, me, w)
			for i := lo; i < hi; i++ {
				j := 0
				for b := 0; b < logN; b++ {
					j |= ((i >> b) & 1) << (logN - 1 - b)
				}
				if i < j {
					ri, rj := c.LoadF64(reAt(i)), c.LoadF64(reAt(j))
					c.StoreF64(reAt(i), rj)
					c.StoreF64(reAt(j), ri)
					ii, ij := c.LoadF64(imAt(i)), c.LoadF64(imAt(j))
					c.StoreF64(imAt(i), ij)
					c.StoreF64(imAt(j), ii)
				}
				c.Tick(6)
			}
			bar.wait(c)
			for s := 1; s <= logN; s++ {
				m := 1 << s
				half := m / 2
				nblocks := n / m
				blo, bhi := band(nblocks, me, w)
				for b := blo; b < bhi; b++ {
					base := b * m
					for k := 0; k < half; k++ {
						// Twiddle factors from the shared table: the stride
						// n/m maps stage-local k to the table index.
						wr := c.LoadF64(twr + api.Addr(8*(k*(n/m))))
						wi := c.LoadF64(twi + api.Addr(8*(k*(n/m))))
						i0, i1 := base+k, base+k+half
						ar, ai := c.LoadF64(reAt(i0)), c.LoadF64(imAt(i0))
						br, bi := c.LoadF64(reAt(i1)), c.LoadF64(imAt(i1))
						tr := wr*br - wi*bi
						ti := wr*bi + wi*br
						c.StoreF64(reAt(i0), ar+tr)
						c.StoreF64(imAt(i0), ai+ti)
						c.StoreF64(reAt(i1), ar-tr)
						c.StoreF64(imAt(i1), ai-ti)
						c.Tick(12)
					}
				}
				bar.wait(c)
			}
		})
		joinAll(t, ids)
		h := uint64(0xcbf29ce484222325)
		for i := 0; i < n; i += 7 {
			h = checksum64(h, t.Load64(reAt(i)))
			h = checksum64(h, t.Load64(imAt(i)))
		}
		t.Observe(h)
	}
}

// cosApprox/sinApprox are deterministic polynomial approximations — the
// kernel needs reproducible values, not spectral accuracy.
func cosApprox(x float64) float64 { return 1 - x*x/2 + x*x*x*x/24 - x*x*x*x*x*x/720 }
func sinApprox(x float64) float64 { return x - x*x*x/6 + x*x*x*x*x/120 - x*x*x*x*x*x*x/5040 }

// Radix is SPLASH-2 radix: a parallel radix sort with per-pass histogram,
// prefix-sum and scatter phases separated by lock-based barriers (Table 1:
// 96 locks, 39 waits).
func Radix(cfg Config) api.ThreadFunc {
	nkeys := cfg.Size.pick(256, 4096, 16384)
	return func(t api.Thread) {
		w := cfg.Threads
		const radixBits = 8
		const buckets = 1 << radixBits
		src := t.Malloc(uint64(8 * nkeys))
		dst := t.Malloc(uint64(8 * nkeys))
		hist := t.Malloc(uint64(8 * buckets * w)) // per-worker histograms
		offs := t.Malloc(uint64(8 * buckets * w)) // per-worker scatter offsets
		bar := newBarrier(t, w)
		r := newRNG(1234)
		for i := 0; i < nkeys; i++ {
			t.Store64(src+api.Addr(8*i), r.next()&0xffffffff)
		}
		histAt := func(wk, b int) api.Addr { return hist + api.Addr(8*(wk*buckets+b)) }
		offAt := func(wk, b int) api.Addr { return offs + api.Addr(8*(wk*buckets+b)) }

		ids := spawnWorkers(t, w, func(c api.Thread, me int) {
			from, to := src, dst
			for pass := 0; pass < 32/radixBits; pass++ {
				shift := uint(pass * radixBits)
				lo, hi := band(nkeys, me, w)
				for b := 0; b < buckets; b++ {
					c.Store64(histAt(me, b), 0)
				}
				for i := lo; i < hi; i++ {
					k := c.Load64(from + api.Addr(8*i))
					b := int((k >> shift) & (buckets - 1))
					c.Store64(histAt(me, b), c.Load64(histAt(me, b))+1)
					c.Tick(3)
				}
				bar.wait(c)
				if me == 0 {
					// Global prefix sum over (bucket, worker) pairs.
					var run uint64
					for b := 0; b < buckets; b++ {
						for wk := 0; wk < w; wk++ {
							c.Store64(offAt(wk, b), run)
							run += c.Load64(histAt(wk, b))
						}
					}
				}
				bar.wait(c)
				for i := lo; i < hi; i++ {
					k := c.Load64(from + api.Addr(8*i))
					b := int((k >> shift) & (buckets - 1))
					off := c.Load64(offAt(me, b))
					c.Store64(to+api.Addr(8*off), k)
					c.Store64(offAt(me, b), off+1)
					c.Tick(4)
				}
				bar.wait(c)
				from, to = to, from
			}
		})
		joinAll(t, ids)
		t.Observe(checksumRange(t, src, nkeys))
	}
}

// luCommon is blocked LU factorization without pivoting. The two variants
// differ only in memory layout: contiguous stores each block densely (few
// dirty pages per slice), non-contiguous uses a row-major matrix so each
// block touches one page per row (larger diffs and footprint — exactly why
// lu-non behaves worse than lu-con under page-based DMT, §5.2/Table 1).
func luCommon(cfg Config, contiguous bool) api.ThreadFunc {
	n := cfg.Size.pick(16, 64, 96)
	const bs = 8 // block size
	return func(t api.Thread) {
		w := cfg.Threads
		nb := n / bs
		// Non-contiguous layout: row-major with page-strided rows, as in a
		// full-size SPLASH-2 matrix whose rows exceed a page — every block
		// update dirties bs pages instead of one, which is what penalizes
		// page-based DMT on lu-non (Figure 7, Table 1).
		const rowStride = 4096 / 8
		size := uint64(8 * n * n)
		if !contiguous {
			size = uint64(8 * n * rowStride)
		}
		matrix := t.Malloc(size)
		bar := newBarrier(t, w)
		// at returns the address of element (i,j) under the selected layout.
		at := func(i, j int) api.Addr {
			if contiguous {
				bi, bj := i/bs, j/bs
				oi, oj := i%bs, j%bs
				return matrix + api.Addr(8*(((bi*nb+bj)*bs*bs)+oi*bs+oj))
			}
			return matrix + api.Addr(8*(i*rowStride+j))
		}
		// Diagonally dominant deterministic matrix (fixed-point int64 values
		// stored as float64 for exact, order-independent arithmetic).
		r := newRNG(5)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := float64(r.next()%100) + 1
				if i == j {
					v += float64(100 * n)
				}
				t.StoreF64(at(i, j), v)
			}
		}
		owner := func(bi, bj int) int { return (bi*nb + bj) % w }

		ids := spawnWorkers(t, w, func(c api.Thread, me int) {
			for k := 0; k < nb; k++ {
				// Factor the diagonal block (single owner).
				if owner(k, k) == me {
					for kk := k * bs; kk < (k+1)*bs; kk++ {
						piv := c.LoadF64(at(kk, kk))
						for i := kk + 1; i < (k+1)*bs; i++ {
							l := c.LoadF64(at(i, kk)) / piv
							c.StoreF64(at(i, kk), l)
							for j := kk + 1; j < (k+1)*bs; j++ {
								c.StoreF64(at(i, j), c.LoadF64(at(i, j))-l*c.LoadF64(at(kk, j)))
								c.Tick(3)
							}
						}
					}
				}
				bar.wait(c)
				// Update the k-th block row and column.
				for b := k + 1; b < nb; b++ {
					if owner(k, b) == me { // row block (k, b)
						for kk := k * bs; kk < (k+1)*bs; kk++ {
							for i := kk + 1; i < (k+1)*bs; i++ {
								l := c.LoadF64(at(i, kk))
								for j := b * bs; j < (b+1)*bs; j++ {
									c.StoreF64(at(i, j), c.LoadF64(at(i, j))-l*c.LoadF64(at(kk, j)))
									c.Tick(3)
								}
							}
						}
					}
					if owner(b, k) == me { // column block (b, k)
						for kk := k * bs; kk < (k+1)*bs; kk++ {
							piv := c.LoadF64(at(kk, kk))
							for i := b * bs; i < (b+1)*bs; i++ {
								l := c.LoadF64(at(i, kk)) / piv
								c.StoreF64(at(i, kk), l)
								for j := kk + 1; j < (k+1)*bs; j++ {
									c.StoreF64(at(i, j), c.LoadF64(at(i, j))-l*c.LoadF64(at(kk, j)))
									c.Tick(3)
								}
							}
						}
					}
				}
				bar.wait(c)
				// Update the interior blocks.
				for bi := k + 1; bi < nb; bi++ {
					for bj := k + 1; bj < nb; bj++ {
						if owner(bi, bj) != me {
							continue
						}
						for i := bi * bs; i < (bi+1)*bs; i++ {
							for kk := k * bs; kk < (k+1)*bs; kk++ {
								l := c.LoadF64(at(i, kk))
								for j := bj * bs; j < (bj+1)*bs; j++ {
									c.StoreF64(at(i, j), c.LoadF64(at(i, j))-l*c.LoadF64(at(kk, j)))
									c.Tick(3)
								}
							}
						}
					}
				}
				bar.wait(c)
			}
		})
		joinAll(t, ids)
		h := uint64(0xcbf29ce484222325)
		for i := 0; i < n; i++ {
			h = checksum64(h, t.Load64(at(i, i)))
		}
		t.Observe(h)
	}
}

// LUContiguous is SPLASH-2 lu with contiguous block allocation.
func LUContiguous(cfg Config) api.ThreadFunc { return luCommon(cfg, true) }

// LUNonContiguous is SPLASH-2 lu with non-contiguous (row-major) blocks —
// the workload DThreads handles worst in Figure 7 (~10x).
func LUNonContiguous(cfg Config) api.ThreadFunc { return luCommon(cfg, false) }
