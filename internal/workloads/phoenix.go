package workloads

import (
	"rfdet/internal/api"
)

// LinearRegression is Phoenix linear_regression: a pure fork/join map-reduce
// over a point set with no locking at all (Table 1: 0 locks, 16 forks) —
// the kernel where RFDet's only cost is thread isolation.
func LinearRegression(cfg Config) api.ThreadFunc {
	npoints := cfg.Size.pick(512, 16384, 65536)
	return func(t api.Thread) {
		w := cfg.Threads
		points := t.Malloc(uint64(16 * npoints)) // (x, y) pairs
		partial := t.Malloc(uint64(8 * 4 * w))   // per-worker Σx, Σy, Σxy, Σxx
		r := newRNG(2024)
		for i := 0; i < npoints; i++ {
			x := r.next() % 1000
			t.Store64(points+api.Addr(16*i), x)
			t.Store64(points+api.Addr(16*i+8), 3*x+7+(r.next()%11))
		}
		ids := spawnWorkers(t, w, func(c api.Thread, me int) {
			lo, hi := band(npoints, me, w)
			var sx, sy, sxy, sxx uint64
			for i := lo; i < hi; i++ {
				x := c.Load64(points + api.Addr(16*i))
				y := c.Load64(points + api.Addr(16*i+8))
				sx += x
				sy += y
				sxy += x * y
				sxx += x * x
				c.Tick(6)
			}
			base := partial + api.Addr(8*4*me)
			c.Store64(base, sx)
			c.Store64(base+8, sy)
			c.Store64(base+16, sxy)
			c.Store64(base+24, sxx)
		})
		joinAll(t, ids)
		var sx, sy, sxy, sxx uint64
		for me := 0; me < w; me++ {
			base := partial + api.Addr(8*4*me)
			sx += t.Load64(base)
			sy += t.Load64(base + 8)
			sxy += t.Load64(base + 16)
			sxx += t.Load64(base + 24)
		}
		n := uint64(npoints)
		// Fixed-point slope: (n·Σxy − Σx·Σy) · 1000 / (n·Σxx − Σx²).
		num := n*sxy - sx*sy
		den := n*sxx - sx*sx
		t.Observe(num*1000/den, sx, sy)
	}
}

// MatrixMultiply is Phoenix matrix_multiply: C = A·B with workers owning
// disjoint row bands; fork/join only (Table 1: 0 locks).
func MatrixMultiply(cfg Config) api.ThreadFunc {
	n := cfg.Size.pick(8, 28, 48)
	return func(t api.Thread) {
		w := cfg.Threads
		a := t.Malloc(uint64(8 * n * n))
		b := t.Malloc(uint64(8 * n * n))
		cm := t.Malloc(uint64(8 * n * n))
		r := newRNG(11)
		for i := 0; i < n*n; i++ {
			t.Store64(a+api.Addr(8*i), r.next()%100)
			t.Store64(b+api.Addr(8*i), r.next()%100)
		}
		at := func(m api.Addr, i, j int) api.Addr { return m + api.Addr(8*(i*n+j)) }
		ids := spawnWorkers(t, w, func(c api.Thread, me int) {
			lo, hi := band(n, me, w)
			for i := lo; i < hi; i++ {
				for j := 0; j < n; j++ {
					var sum uint64
					for k := 0; k < n; k++ {
						sum += c.Load64(at(a, i, k)) * c.Load64(at(b, k, j))
						c.Tick(2)
					}
					c.Store64(at(cm, i, j), sum)
				}
			}
		})
		joinAll(t, ids)
		t.Observe(checksumRange(t, cm, n*n))
	}
}

// PCA is Phoenix pca: two fork/join phases (row means, then covariance)
// using a lock-guarded dynamic work queue for row assignment — the Phoenix
// kernel with meaningful lock traffic (Table 1: 816 locks, 32 forks). The
// dynamic schedule changes who computes each row but not any row's result,
// so the output is identical on every runtime.
func PCA(cfg Config) api.ThreadFunc {
	rows := cfg.Size.pick(8, 48, 96)
	cols := cfg.Size.pick(8, 32, 48)
	return func(t api.Thread) {
		w := cfg.Threads
		data := t.Malloc(uint64(8 * rows * cols))
		means := t.Malloc(uint64(8 * rows))
		cov := t.Malloc(uint64(8 * rows)) // diagonal of the covariance matrix
		next := t.Malloc(8)               // dynamic work counter
		nextLock := t.Malloc(8)
		r := newRNG(31)
		for i := 0; i < rows*cols; i++ {
			t.Store64(data+api.Addr(8*i), r.next()%1000)
		}
		at := func(i, j int) api.Addr { return data + api.Addr(8*(i*cols+j)) }

		// Phase 1: row means via the dynamic queue.
		ids := spawnWorkers(t, w, func(c api.Thread, me int) {
			for {
				c.Lock(nextLock)
				row := c.Load64(next)
				c.Store64(next, row+1)
				c.Unlock(nextLock)
				if int(row) >= rows {
					return
				}
				var sum uint64
				for j := 0; j < cols; j++ {
					sum += c.Load64(at(int(row), j))
					c.Tick(2)
				}
				c.Store64(means+api.Addr(8*row), sum/uint64(cols))
			}
		})
		joinAll(t, ids)

		// Phase 2: per-row variance via a second fork (Phoenix forks per
		// map-reduce phase, hence Table 1's fork count of 32).
		t.Store64(next, 0)
		ids = spawnWorkers(t, w, func(c api.Thread, me int) {
			for {
				c.Lock(nextLock)
				row := c.Load64(next)
				c.Store64(next, row+1)
				c.Unlock(nextLock)
				if int(row) >= rows {
					return
				}
				mean := c.Load64(means + api.Addr(8*row))
				var acc uint64
				for j := 0; j < cols; j++ {
					v := c.Load64(at(int(row), j))
					d := v - mean // wraps deterministically for v < mean
					acc += d * d
					c.Tick(3)
				}
				c.Store64(cov+api.Addr(8*row), acc)
			}
		})
		joinAll(t, ids)
		t.Observe(checksumRange(t, means, rows), checksumRange(t, cov, rows))
	}
}

// WordCount is Phoenix wordcount: workers hash the words of disjoint text
// shards into per-worker tables; the main thread merges (Table 1: 0 locks,
// 60 forks — Phoenix forks per phase; we fork one mapper wave plus reducer
// waves).
func WordCount(cfg Config) api.ThreadFunc {
	textLen := cfg.Size.pick(1024, 16384, 65536)
	// Per-worker open-addressing table of (hash, count) pairs, sized so the
	// mostly-unique random words keep the load factor low.
	tableSlots := cfg.Size.pick(512, 8192, 32768)
	return func(t api.Thread) {
		w := cfg.Threads
		text := t.Malloc(uint64(textLen))
		tables := t.Malloc(uint64(16 * tableSlots * w))
		// Deterministic "text": words of 1-7 lowercase letters.
		r := newRNG(77)
		buf := make([]byte, textLen)
		for i := range buf {
			if r.next()%6 == 0 {
				buf[i] = ' '
			} else {
				buf[i] = byte('a' + r.next()%26)
			}
		}
		t.WriteBytes(text, buf)
		slotAt := func(me, s int) api.Addr { return tables + api.Addr(16*(me*tableSlots+s)) }

		ids := spawnWorkers(t, w, func(c api.Thread, me int) {
			lo, hi := band(textLen, me, w)
			// Shard at word boundaries: skip a partial leading word.
			if lo > 0 {
				for lo < hi && c.Load8(text+api.Addr(lo-1)) != ' ' {
					lo++
				}
			}
			h := uint64(0xcbf29ce484222325)
			inWord := false
			emit := func(hash uint64) {
				s := int(hash % uint64(tableSlots))
				for probe := 0; probe < tableSlots; probe++ {
					slot := slotAt(me, s)
					cur := c.Load64(slot)
					if cur == hash {
						c.Store64(slot+8, c.Load64(slot+8)+1)
						return
					}
					if cur == 0 {
						c.Store64(slot, hash)
						c.Store64(slot+8, 1)
						return
					}
					s = (s + 1) % tableSlots
				}
				// Table full: count the word in the overflow slot 0 so no
				// occurrence is silently dropped.
				c.Store64(slotAt(me, 0)+8, c.Load64(slotAt(me, 0)+8)+1)
			}
			for i := lo; ; i++ {
				var b byte
				if i < textLen {
					b = c.Load8(text + api.Addr(i))
				}
				if b != ' ' && i < textLen {
					// A word starting at or beyond the shard end belongs to
					// the next worker.
					if !inWord && i >= hi {
						break
					}
					h = checksum64(h, uint64(b))
					inWord = true
				} else {
					if inWord {
						if h == 0 {
							h = 1
						}
						emit(h)
						h = 0xcbf29ce484222325
						inWord = false
					}
					// Stop after finishing the word that spans the shard end.
					if i >= hi {
						break
					}
				}
				c.Tick(3)
			}
		})
		joinAll(t, ids)
		// Merge: fold every table entry commutatively (hash·count), so the
		// result is independent of worker sharding details.
		var total, words uint64
		for me := 0; me < w; me++ {
			for s := 0; s < tableSlots; s++ {
				slot := slotAt(me, s)
				h := t.Load64(slot)
				if h != 0 {
					cnt := t.Load64(slot + 8)
					total += h * cnt
					words += cnt
				}
			}
		}
		t.Observe(total, words)
	}
}

// StringMatch is Phoenix string_match: workers scan disjoint shards of an
// "encrypted" candidate list against a fixed key set; fork/join only.
func StringMatch(cfg Config) api.ThreadFunc {
	ncand := cfg.Size.pick(256, 8192, 32768)
	const nkeys = 16
	return func(t api.Thread) {
		w := cfg.Threads
		keys := t.Malloc(uint64(8 * nkeys))
		cands := t.Malloc(uint64(8 * ncand))
		found := t.Malloc(uint64(8 * w))
		r := newRNG(13)
		for i := 0; i < nkeys; i++ {
			t.Store64(keys+api.Addr(8*i), r.next())
		}
		for i := 0; i < ncand; i++ {
			var v uint64
			if r.next()%64 == 0 {
				v = t.Load64(keys + api.Addr(8*int(r.next()%nkeys)))
			} else {
				v = r.next()
			}
			// "Encrypt": xor with a fixed pad.
			t.Store64(cands+api.Addr(8*i), v^0xdeadbeefcafef00d)
		}
		ids := spawnWorkers(t, w, func(c api.Thread, me int) {
			lo, hi := band(ncand, me, w)
			var hits uint64
			var key [nkeys]uint64
			for k := 0; k < nkeys; k++ {
				key[k] = c.Load64(keys + api.Addr(8*k))
			}
			for i := lo; i < hi; i++ {
				v := c.Load64(cands+api.Addr(8*i)) ^ 0xdeadbeefcafef00d
				for k := 0; k < nkeys; k++ {
					if v == key[k] {
						hits++
					}
				}
				c.Tick(nkeys)
			}
			c.Store64(found+api.Addr(8*me), hits)
		})
		joinAll(t, ids)
		var total uint64
		for me := 0; me < w; me++ {
			total += t.Load64(found + api.Addr(8*me))
		}
		t.Observe(total)
	}
}
