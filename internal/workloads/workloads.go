// Package workloads provides the 16 parallel kernels of the paper's
// evaluation (§5.1: SPLASH-2, Phoenix and Parsec programs) plus the racey
// determinism stress test, rebuilt as synthetic kernels against the
// runtime-agnostic api.Thread interface.
//
// Each kernel preserves its paper counterpart's synchronization signature —
// the mix of lock/unlock, cond wait/signal, fork/join of Table 1 — and an
// analogous memory-access pattern, because those are the independent
// variables of every experiment in §5. The SPLASH-2 kernels use lock-based
// barriers (a mutex, a condition variable and shared counters), matching the
// paper's c.m4.null.POSIX configuration which implements barriers with lock
// and unlock to stress synchronization.
//
// All kernels are deterministic by construction modulo the runtime: they use
// no host randomness, no map iteration, and only fixed-point (integer)
// cross-thread reductions, so the race-free kernels produce bit-identical
// checksums on every runtime, while the racy ones (racey) expose scheduler
// nondeterminism on pthreads and fixed outputs on the DMT runtimes.
package workloads

import (
	"fmt"

	"rfdet/internal/api"
)

// Size selects a kernel's problem scale.
type Size int

const (
	// SizeTest is minimal, for unit tests.
	SizeTest Size = iota
	// SizeSmall finishes quickly under every runtime; used by default in
	// table/figure regeneration.
	SizeSmall
	// SizeMedium approximates the paper's relative proportions.
	SizeMedium
)

func (s Size) String() string {
	switch s {
	case SizeTest:
		return "test"
	case SizeSmall:
		return "small"
	default:
		return "medium"
	}
}

// pick returns the value for the configured size.
func (s Size) pick(test, small, medium int) int {
	switch s {
	case SizeTest:
		return test
	case SizeSmall:
		return small
	default:
		return medium
	}
}

// Config parameterizes one kernel run.
type Config struct {
	// Threads is the number of worker threads (the paper evaluates 2, 4
	// and 8).
	Threads int
	// Size is the problem scale.
	Size Size
}

// Workload is one benchmark kernel.
type Workload struct {
	// Name matches the paper's benchmark name (Table 1).
	Name string
	// Suite is "splash2", "phoenix", "parsec" or "stress".
	Suite string
	// RaceFree reports whether the kernel is free of data races, in which
	// case its checksum is identical across all runtimes.
	RaceFree bool
	// Prog builds the kernel's main thread function.
	Prog func(cfg Config) api.ThreadFunc
}

// All returns the paper's 16 benchmarks in Table 1 order.
func All() []Workload {
	return []Workload{
		{Name: "ocean", Suite: "splash2", RaceFree: true, Prog: Ocean},
		{Name: "water-ns", Suite: "splash2", RaceFree: true, Prog: WaterNS},
		{Name: "water-sp", Suite: "splash2", RaceFree: true, Prog: WaterSP},
		{Name: "fft", Suite: "splash2", RaceFree: true, Prog: FFT},
		{Name: "radix", Suite: "splash2", RaceFree: true, Prog: Radix},
		{Name: "lu-con", Suite: "splash2", RaceFree: true, Prog: LUContiguous},
		{Name: "lu-non", Suite: "splash2", RaceFree: true, Prog: LUNonContiguous},
		{Name: "linear_regression", Suite: "phoenix", RaceFree: true, Prog: LinearRegression},
		{Name: "matrix_multiply", Suite: "phoenix", RaceFree: true, Prog: MatrixMultiply},
		{Name: "pca", Suite: "phoenix", RaceFree: true, Prog: PCA},
		{Name: "wordcount", Suite: "phoenix", RaceFree: true, Prog: WordCount},
		{Name: "string_match", Suite: "phoenix", RaceFree: true, Prog: StringMatch},
		{Name: "blackscholes", Suite: "parsec", RaceFree: true, Prog: BlackScholes},
		{Name: "swaptions", Suite: "parsec", RaceFree: true, Prog: Swaptions},
		{Name: "dedup", Suite: "parsec", RaceFree: true, Prog: Dedup},
		{Name: "ferret", Suite: "parsec", RaceFree: true, Prog: Ferret},
	}
}

// ByName returns the named workload, including the extras outside Table 1:
// "racey" (the §5.1 stress test), "canneal" (the §4.6 atomics-extension
// workload the paper excludes) and "server" (the deterministic KV server the
// replica-divergence harness replicates). The server is data-race-free but
// its responses are acquisition-order dependent, so its output is pinned per
// deterministic runtime rather than identical across all runtimes —
// RaceFree=false by the field's cross-runtime meaning.
func ByName(name string) (Workload, error) {
	if name == "racey" {
		return Workload{Name: "racey", Suite: "stress", RaceFree: false, Prog: Racey}, nil
	}
	if name == "canneal" {
		return Workload{Name: "canneal", Suite: "parsec-ext", RaceFree: false, Prog: Canneal}, nil
	}
	if name == "server" {
		return Workload{Name: "server", Suite: "server", RaceFree: false, Prog: Server}, nil
	}
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names returns the benchmark names in Table 1 order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

//
// Shared building blocks.
//

// rng is a deterministic xorshift64* generator, used for synthetic inputs.
type rng uint64

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return rng(seed)
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	*r = rng(x)
	return x * 0x2545f4914f6cdd1d
}

// barrier is a lock-based barrier (mutex + condition variable + shared
// counters), matching the SPLASH-2 c.m4.null.POSIX configuration the paper
// evaluates with (§5.1).
type barrier struct {
	mu, cond, count, gen api.Addr
	n                    int
}

// newBarrier allocates the barrier's shared state.
func newBarrier(t api.Thread, n int) *barrier {
	base := t.Malloc(32)
	return &barrier{mu: base, cond: base + 8, count: base + 16, gen: base + 24, n: n}
}

// wait blocks until n threads have arrived.
func (b *barrier) wait(t api.Thread) {
	t.Lock(b.mu)
	g := t.Load64(b.gen)
	c := t.Load64(b.count) + 1
	t.Store64(b.count, c)
	if int(c) == b.n {
		t.Store64(b.count, 0)
		t.Store64(b.gen, g+1)
		t.Broadcast(b.cond)
	} else {
		for t.Load64(b.gen) == g {
			t.Wait(b.cond, b.mu)
		}
	}
	t.Unlock(b.mu)
}

// spawnWorkers forks n workers running body(worker-index) and returns their
// IDs; joinAll joins them in order.
func spawnWorkers(t api.Thread, n int, body func(t api.Thread, w int)) []api.ThreadID {
	ids := make([]api.ThreadID, n)
	for w := 0; w < n; w++ {
		w := w
		ids[w] = t.Spawn(func(c api.Thread) { body(c, w) })
	}
	return ids
}

func joinAll(t api.Thread, ids []api.ThreadID) {
	for _, id := range ids {
		t.Join(id)
	}
}

// checksum64 folds a value into a running FNV-style checksum.
func checksum64(h, v uint64) uint64 {
	h ^= v
	h *= 0x100000001b3
	return h
}

// checksumRange folds len 64-bit words starting at addr.
func checksumRange(t api.Thread, addr api.Addr, words int) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < words; i++ {
		h = checksum64(h, t.Load64(addr+api.Addr(8*i)))
	}
	return h
}

// band returns the half-open [lo,hi) share of n items for worker w of nw.
func band(n, w, nw int) (lo, hi int) {
	lo = n * w / nw
	hi = n * (w + 1) / nw
	return lo, hi
}
