package workloads

import (
	"strings"
	"testing"

	"rfdet/internal/api"
	"rfdet/internal/core"
)

// TestServerRunsEverywhere executes the KV server on every runtime. The
// response and state hashes are acquisition-order dependent, so runtimes may
// legitimately disagree with each other — but on every runtime the full log
// must be served, and the request-log digest (a pure function of the seed)
// must be identical everywhere.
func TestServerRunsEverywhere(t *testing.T) {
	cfg := Config{Threads: 3, Size: SizeTest}
	want := ServerRequests(SizeTest)
	var logHash uint64
	for _, rt := range runtimes() {
		rep, err := rt.Run(Server(cfg))
		if err != nil {
			t.Fatalf("server on %s: %v", rt.Name(), err)
		}
		sum, err := SummarizeServer(rep)
		if err != nil {
			t.Fatalf("server on %s: %v", rt.Name(), err)
		}
		if sum.Served != uint64(want) {
			t.Fatalf("server on %s: served %d of %d requests", rt.Name(), sum.Served, want)
		}
		if logHash == 0 {
			logHash = sum.LogHash
		} else if sum.LogHash != logHash {
			t.Fatalf("server on %s: log digest %#x != %#x — request generation is schedule-dependent",
				rt.Name(), sum.LogHash, logHash)
		}
	}
}

// TestServerDeterministicOnDMT re-runs the server on each deterministic
// runtime and demands identical state and response hashes — the in-package
// half of the replica-divergence oracle.
func TestServerDeterministicOnDMT(t *testing.T) {
	cfg := Config{Threads: 4, Size: SizeTest}
	for _, rt := range runtimes()[1:] { // skip pthreads
		var first ServerSummary
		for i := 0; i < 3; i++ {
			rep, err := rt.Run(Server(cfg))
			if err != nil {
				t.Fatalf("server on %s: %v", rt.Name(), err)
			}
			sum, err := SummarizeServer(rep)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				first = sum
			} else if sum != first {
				t.Fatalf("server on %s: run %d summary %+v != %+v", rt.Name(), i, sum, first)
			}
		}
	}
}

// TestServerExercisesEverySyncKind asserts the workload actually stresses
// what it claims to: locks (queue + shards), condvars (queue waits and
// signals), a native barrier, atomics, and fork/join.
func TestServerExercisesEverySyncKind(t *testing.T) {
	rep, err := core.New(core.DefaultOptions()).Run(Server(Config{Threads: 4, Size: SizeTest}))
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Stats
	if s.Locks == 0 || s.Unlocks == 0 {
		t.Fatalf("no lock traffic: %+v", s)
	}
	if s.Signals == 0 {
		t.Fatalf("no condvar signals: %+v", s)
	}
	if s.Barriers == 0 {
		t.Fatalf("no barrier arrivals: %+v", s)
	}
	if s.AtomicsOps == 0 {
		t.Fatalf("no atomic ops: %+v", s)
	}
	if s.Forks == 0 || s.Joins == 0 {
		t.Fatalf("no fork/join: %+v", s)
	}
}

// TestServerSeedMatters: different request-log seeds must produce different
// logs (and, in practice, different state) — the generator is live.
func TestServerSeedMatters(t *testing.T) {
	rt := core.New(core.DefaultOptions())
	cfg := Config{Threads: 2, Size: SizeTest}
	rep1, err := rt.Run(ServerSeeded(cfg, 1))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := rt.Run(ServerSeeded(cfg, 2))
	if err != nil {
		t.Fatal(err)
	}
	s1, err := SummarizeServer(rep1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SummarizeServer(rep2)
	if err != nil {
		t.Fatal(err)
	}
	if s1.LogHash == s2.LogHash {
		t.Fatalf("seeds 1 and 2 generated the same request log (%#x)", s1.LogHash)
	}
}

// TestServerPoisonedAborts: a poisoned request log must fail the run
// recoverably — the zero-count barrier abort path — not hang or panic.
func TestServerPoisonedAborts(t *testing.T) {
	cfg := Config{Threads: 4, Size: SizeTest}
	poisonAt := ServerRequests(SizeTest) / 2
	_, err := core.New(core.DefaultOptions()).Run(ServerPoisoned(cfg, DefaultServerSeed, poisonAt))
	if err == nil {
		t.Fatal("poisoned server run must fail")
	}
	if !strings.Contains(err.Error(), "barrier with count") {
		t.Fatalf("error %q does not describe the injected barrier misuse", err)
	}
}

// TestServerSummaryShape rejects malformed observation logs.
func TestServerSummaryShape(t *testing.T) {
	if _, err := SummarizeServer(&api.Report{Observations: map[api.ThreadID][]uint64{0: {1, 2}}}); err == nil {
		t.Fatal("expected error for a truncated observation log")
	}
}
