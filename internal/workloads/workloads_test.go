package workloads

import (
	"testing"

	"rfdet/internal/api"
	"rfdet/internal/core"
	"rfdet/internal/dthreads"
	"rfdet/internal/pthreads"
)

func runtimes() []api.Runtime {
	pf := core.DefaultOptions()
	pf.Monitor = core.MonitorPF
	return []api.Runtime{
		pthreads.New(),
		dthreads.New(),
		core.New(core.DefaultOptions()),
		core.New(pf),
	}
}

// TestAllWorkloadsRunEverywhere executes every kernel at test size on every
// runtime and checks that the race-free kernels produce identical
// observations on all of them — the cross-runtime oracle for both the
// kernels and the runtimes.
func TestAllWorkloadsRunEverywhere(t *testing.T) {
	cfg := Config{Threads: 2, Size: SizeTest}
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			var ref []uint64
			for _, rt := range runtimes() {
				rep, err := rt.Run(w.Prog(cfg))
				if err != nil {
					t.Fatalf("%s on %s: %v", w.Name, rt.Name(), err)
				}
				obs := rep.Observations[0]
				if len(obs) == 0 {
					t.Fatalf("%s on %s: no observations", w.Name, rt.Name())
				}
				if ref == nil {
					ref = obs
					continue
				}
				if w.RaceFree {
					if len(obs) != len(ref) {
						t.Fatalf("%s on %s: %d observations, want %d", w.Name, rt.Name(), len(obs), len(ref))
					}
					for i := range obs {
						if obs[i] != ref[i] {
							t.Fatalf("%s on %s: observation %d = %d, pthreads got %d",
								w.Name, rt.Name(), i, obs[i], ref[i])
						}
					}
				}
			}
		})
	}
}

// TestWorkloadsDeterministicOnDMT re-runs every kernel (including racey)
// three times on each deterministic runtime and requires identical output
// hashes.
func TestWorkloadsDeterministicOnDMT(t *testing.T) {
	cfg := Config{Threads: 4, Size: SizeTest}
	all := All()
	racey, _ := ByName("racey")
	all = append(all, racey)
	for _, w := range all {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			for _, rt := range runtimes()[1:] { // skip pthreads
				var first uint64
				for i := 0; i < 3; i++ {
					rep, err := rt.Run(w.Prog(cfg))
					if err != nil {
						t.Fatalf("%s on %s: %v", w.Name, rt.Name(), err)
					}
					if i == 0 {
						first = rep.OutputHash
					} else if rep.OutputHash != first {
						t.Fatalf("%s on %s: run %d hash %#x != %#x", w.Name, rt.Name(), i, rep.OutputHash, first)
					}
				}
			}
		})
	}
}

// TestThreadCountScaling runs each kernel with 1..8 workers under RFDet-ci:
// the kernels must be correct at any width.
func TestThreadCountScaling(t *testing.T) {
	rt := core.New(core.DefaultOptions())
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			var ref []uint64
			for _, n := range []int{1, 2, 3, 8} {
				rep, err := rt.Run(w.Prog(Config{Threads: n, Size: SizeTest}))
				if err != nil {
					t.Fatalf("%s threads=%d: %v", w.Name, n, err)
				}
				obs := rep.Observations[0]
				if ref == nil {
					ref = obs
					continue
				}
				// Thread-count-invariant kernels: all reductions here are
				// exact integer folds, so widths must agree.
				for i := range obs {
					if obs[i] != ref[i] {
						t.Fatalf("%s: threads=%d observation %d = %d, 1-thread got %d",
							w.Name, n, i, obs[i], ref[i])
					}
				}
			}
		})
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("ocean"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("racey"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
	if len(Names()) != 16 {
		t.Fatalf("Names() = %d entries, want 16", len(Names()))
	}
}
