// Package vtime defines the deterministic virtual-time cost model used to
// reproduce the paper's performance figures on any host.
//
// The paper measures wall-clock time on a 12-core AMD Opteron. A wall clock
// only exhibits parallel speedups and barrier-imbalance stalls when the host
// actually runs threads in parallel; to make the reproduction host-
// independent (and deterministic), every runtime in this repository also
// advances a per-thread virtual clock, discrete-event-simulation style:
//
//   - computation advances a thread's clock by its instrumented ticks
//     (1 unit ≈ 1 ns ≈ one memory instruction on the paper's testbed);
//   - runtime work (page snapshots, page diffs, modification application,
//     mprotect sweeps, protection faults) advances it by modeled costs whose
//     ratios mirror the real mechanisms (a fault costs microseconds, a 4 KiB
//     memcpy hundreds of nanoseconds, a memory instruction about one);
//   - blocking joins clocks: a lock acquirer resumes at
//     max(own, releaser's release time), barrier leavers resume at the max
//     of all arrivals, DThreads-style fences resume everyone at the max
//     arrival time plus the serialized commit costs.
//
// A program's virtual execution time is the maximum final clock over all
// threads (the makespan). All of the paper's comparisons — RFDet-ci vs
// RFDet-pf vs DThreads vs pthreads (Figure 7), thread scalability (Figure
// 8), the prelock and lazy-write optimizations (Figure 9) — are ratios of
// makespans, which this model preserves.
package vtime

// Time is virtual nanoseconds.
type Time uint64

// Cost constants, in virtual nanoseconds. Ratios matter, absolute values do
// not; these mirror the rough magnitudes on the paper's hardware (2.2 GHz
// Opteron, Linux 2.6.31).
const (
	// MemOp is the cost of one instrumented memory instruction, including
	// the surrounding address arithmetic — memory-bound code on the
	// paper's 2.2 GHz Opteron retires roughly one memory instruction every
	// ~3 ns.
	MemOp Time = 3
	// StoreCheck is RFDet-ci's per-store instrumentation overhead: the few
	// branch instructions of Figure 4 that test whether the store hits a
	// new page (§5.3).
	StoreCheck Time = 1
	// SyncBase is the fixed cost of a synchronization operation (the
	// uncontended pthreads fast path plus Kendo bookkeeping).
	SyncBase Time = 150
	// SnapshotPage is a 4 KiB page copy (first write to a page in a slice).
	SnapshotPage Time = 500
	// DiffPage is a byte-by-byte 4 KiB compare at slice end.
	DiffPage Time = 700
	// ApplyBytesPerNS is the modification-application bandwidth in bytes
	// per virtual nanosecond (bulk memcpy-like copying; consistent with
	// MemOp moving an 8-byte word per unit).
	ApplyBytesPerNS Time = 4
	// ApplyRun is the per-run fixed cost of modification application
	// (appending/walking one <addr, data> pair).
	ApplyRun Time = 5
	// ProtectPage is the per-page cost of an mprotect sweep over the shared
	// mapping (the dominant per-slice cost of the page-protection monitor,
	// §4.2/§5.2).
	ProtectPage Time = 40
	// Fault is a write-protection fault: signal delivery, handler, return
	// (microseconds on real hardware).
	Fault Time = 2500
	// LockHandoff is the cost of waking a blocked thread.
	LockHandoff Time = 300
	// FencePhase is the fixed cost of one DThreads/CoreDet global fence
	// (token circulation, bookkeeping).
	FencePhase Time = 1000
	// ThreadSpawn is thread creation (clone syscall and runtime setup).
	ThreadSpawn Time = 20000
)

// Max returns the later of two times.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// ApplyCost returns the modeled cost of applying nRuns modification runs
// totalling nBytes. The model charges every propagated slice individually,
// as the paper's system would apply it — host-side shortcuts (coalesced
// write plans, extent-guided diffing) must keep charging this per-slice
// cost so virtual times stay independent of which fast path ran.
func ApplyCost(nRuns, nBytes uint64) Time {
	return Time(nRuns)*ApplyRun + Time(nBytes)/ApplyBytesPerNS
}
