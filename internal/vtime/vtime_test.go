package vtime

import (
	"testing"
	"testing/quick"
)

func TestMax(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 || Max(4, 4) != 4 {
		t.Fatal("Max broken")
	}
}

func TestApplyCostMonotone(t *testing.T) {
	f := func(runs, bytes uint16) bool {
		c := ApplyCost(uint64(runs), uint64(bytes))
		// More runs or more bytes never costs less.
		return ApplyCost(uint64(runs)+1, uint64(bytes)) >= c &&
			ApplyCost(uint64(runs), uint64(bytes)+8) >= c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCostOrdering pins the relative magnitudes the model depends on: the
// figures reproduce the paper only while a fault costs far more than a page
// copy, which costs far more than a memory op.
func TestCostOrdering(t *testing.T) {
	if !(Fault > SnapshotPage && SnapshotPage > ProtectPage && ProtectPage > MemOp) {
		t.Fatal("cost ordering violated: fault > page copy > mprotect/page > memop must hold")
	}
	if DiffPage < SnapshotPage {
		t.Fatal("a byte-by-byte diff should cost at least a page copy")
	}
	if ThreadSpawn < 100*SyncBase/10 {
		t.Fatal("thread creation should dwarf a single sync op")
	}
}

func TestApplyCostBandwidth(t *testing.T) {
	// One page of modifications in one run must cost on the order of a
	// page copy — not a page of single-byte operations (which would be
	// 4096·MemOp ≈ 12 µs-scale).
	pageCost := ApplyCost(1, 4096)
	if pageCost > 3*SnapshotPage || pageCost < SnapshotPage/4 {
		t.Fatalf("bulk apply cost %d out of line with page copy %d", pageCost, SnapshotPage)
	}
	if pageCost >= 4096*MemOp {
		t.Fatalf("bulk apply cost %d should be far below per-byte pricing %d", pageCost, 4096*MemOp)
	}
}
