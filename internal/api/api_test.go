package api

import (
	"testing"
	"testing/quick"
)

func TestStatsAddAccumulatesCounters(t *testing.T) {
	a := Stats{Locks: 1, Unlocks: 2, Waits: 3, Signals: 4, Forks: 5, Joins: 6,
		Barriers: 7, AtomicsOps: 8, Loads: 9, Stores: 10, StoresWithCopy: 11,
		SlicesCreated: 12, SlicesMerged: 13, SlicesPropagated: 14,
		SlicesFilteredLow: 15, BytesPropagated: 16, PrelockBytes: 17,
		LazyPendingApplied: 18, LazyRunsElided: 19, PageFaults: 20,
		PageProtects: 21, TurnWaits: 22, GCCount: 23}
	b := a
	var sum Stats
	sum.Add(&a)
	sum.Add(&b)
	if sum.Locks != 2 || sum.Unlocks != 4 || sum.Waits != 6 || sum.Signals != 8 ||
		sum.Forks != 10 || sum.Joins != 12 || sum.Barriers != 14 || sum.AtomicsOps != 16 ||
		sum.Loads != 18 || sum.Stores != 20 || sum.StoresWithCopy != 22 {
		t.Fatalf("sync/memory counters wrong: %+v", sum)
	}
	if sum.SlicesCreated != 24 || sum.SlicesMerged != 26 || sum.SlicesPropagated != 28 ||
		sum.SlicesFilteredLow != 30 || sum.BytesPropagated != 32 || sum.PrelockBytes != 34 ||
		sum.LazyPendingApplied != 36 || sum.LazyRunsElided != 38 ||
		sum.PageFaults != 40 || sum.PageProtects != 42 || sum.TurnWaits != 44 {
		t.Fatalf("DLRC counters wrong: %+v", sum)
	}
	if sum.GCCount != 46 {
		t.Fatalf("GCCount = %d", sum.GCCount)
	}
}

func TestStatsAddTakesMaxOfHighWaters(t *testing.T) {
	var sum Stats
	sum.Add(&Stats{SharedMemBytes: 100, RuntimeMemBytes: 50, MetadataBytes: 10})
	sum.Add(&Stats{SharedMemBytes: 60, RuntimeMemBytes: 200, MetadataBytes: 5})
	if sum.SharedMemBytes != 100 || sum.RuntimeMemBytes != 200 || sum.MetadataBytes != 10 {
		t.Fatalf("high-water merge wrong: %+v", sum)
	}
}

func TestMemOps(t *testing.T) {
	f := func(loads, stores uint32) bool {
		s := Stats{Loads: uint64(loads), Stores: uint64(stores)}
		return s.MemOps() == uint64(loads)+uint64(stores)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestObservationsDigest(t *testing.T) {
	rep := func(obs map[ThreadID][]uint64) *Report { return &Report{Observations: obs} }
	base := rep(map[ThreadID][]uint64{0: {1, 2}, 1: {3}})
	same := rep(map[ThreadID][]uint64{1: {3}, 0: {1, 2}})
	if base.ObservationsDigest() != same.ObservationsDigest() {
		t.Fatal("digest depends on map insertion order")
	}
	// Any change — a value, an owner, or a boundary shift — must change it.
	diffs := []*Report{
		rep(map[ThreadID][]uint64{0: {1, 2}, 1: {4}}),        // value changed
		rep(map[ThreadID][]uint64{0: {1, 2}, 2: {3}}),        // owner changed
		rep(map[ThreadID][]uint64{0: {1, 2, 3}, 1: {}}),      // boundary moved
		rep(map[ThreadID][]uint64{0: {1}, 1: {2, 3}}),        // boundary moved
		rep(map[ThreadID][]uint64{0: {1, 2}, 1: {3}, 2: {}}), // empty log added
	}
	for i, d := range diffs {
		if d.ObservationsDigest() == base.ObservationsDigest() {
			t.Fatalf("variant %d collides with the base digest", i)
		}
	}
}
