// Package api defines the runtime-agnostic programming model shared by all
// runtimes in this repository: the conventional nondeterministic runtime
// (pthreads), the DThreads-style and CoreDet-style baselines, and RFDet
// itself. Workloads are written once against api.Thread and run unchanged on
// every runtime, exactly as the paper's C benchmarks run unchanged on
// pthreads, DThreads and RFDet.
//
// Addresses name locations in a simulated shared address space. As in
// pthreads, synchronization variables are identified by the address of the
// application object (a mutex, condition variable or barrier lives at an
// Addr); each runtime maps that address to an internal synchronization
// variable (paper §4.1, "internal synchronization variables").
package api

import (
	"sort"
	"time"

	"rfdet/internal/racecheck"
	"rfdet/internal/trace"
)

// Addr is a virtual address in the simulated shared address space.
type Addr uint64

// ThreadID identifies a logical DMT thread. IDs are assigned in creation
// order, which every deterministic runtime makes deterministic; ID 0 is the
// main thread.
type ThreadID int32

// ThreadFunc is the body of a logical thread.
type ThreadFunc func(t Thread)

// Thread is the per-thread handle through which all interaction with shared
// state happens. Loads and stores advance the thread's logical clock by one,
// mirroring the paper's compile-time instrumentation that counts memory
// instructions per basic block (§4.1); compute-only phases must call Tick,
// mirroring instrTick(k).
//
// A Thread handle must only be used from the goroutine running its
// ThreadFunc.
type Thread interface {
	// ID returns this thread's deterministic thread ID.
	ID() ThreadID

	// Load8 reads one byte of shared memory.
	Load8(a Addr) uint8
	// Store8 writes one byte of shared memory.
	Store8(a Addr, v uint8)
	// Load32 reads a little-endian uint32.
	Load32(a Addr) uint32
	// Store32 writes a little-endian uint32.
	Store32(a Addr, v uint32)
	// Load64 reads a little-endian uint64.
	Load64(a Addr) uint64
	// Store64 writes a little-endian uint64.
	Store64(a Addr, v uint64)
	// LoadF64 reads a float64 stored by StoreF64.
	LoadF64(a Addr) float64
	// StoreF64 writes a float64 as its IEEE-754 bit pattern.
	StoreF64(a Addr, v float64)
	// ReadBytes fills buf from shared memory starting at a.
	ReadBytes(a Addr, buf []byte)
	// WriteBytes copies data into shared memory starting at a.
	WriteBytes(a Addr, data []byte)

	// Malloc allocates size bytes of shared memory and returns its address.
	// Allocations made by different threads never overlap (§4.4).
	Malloc(size uint64) Addr
	// Free releases an allocation returned by Malloc.
	Free(a Addr)

	// Lock acquires the mutex at address m (pthread_mutex_lock).
	Lock(m Addr)
	// Unlock releases the mutex at address m (pthread_mutex_unlock).
	Unlock(m Addr)
	// Wait atomically releases m and blocks on the condition variable at c,
	// reacquiring m before returning (pthread_cond_wait).
	Wait(c, m Addr)
	// Signal wakes one waiter of the condition variable at c.
	Signal(c Addr)
	// Broadcast wakes all waiters of the condition variable at c.
	Broadcast(c Addr)
	// Barrier blocks until n threads have arrived at the barrier at b.
	Barrier(b Addr, n int)

	// Spawn starts a new logical thread (pthread_create) and returns its
	// deterministic thread ID.
	Spawn(fn ThreadFunc) ThreadID
	// Join blocks until the thread with the given ID has exited
	// (pthread_join) and, in DMT runtimes, propagates its memory updates.
	Join(id ThreadID)

	// AtomicAdd64 atomically adds delta to the word at a and returns the new
	// value. In RFDet this is the §4.6 low-level-atomics extension: a
	// Kendo-ordered acquire+release micro-operation.
	AtomicAdd64(a Addr, delta uint64) uint64
	// AtomicCAS64 atomically compares-and-swaps the word at a.
	AtomicCAS64(a Addr, old, new uint64) bool

	// Tick advances the thread's logical clock by n, standing in for n
	// uninstrumented instructions (instrTick in §4.1).
	Tick(n uint64)

	// Observe appends values to the thread's deterministic output log. The
	// logs of all threads, concatenated in thread-ID order, form the
	// program's output and are folded into Report.OutputHash.
	Observe(vals ...uint64)
}

// Runtime executes a program (a main ThreadFunc) to completion.
type Runtime interface {
	// Name identifies the runtime in reports ("pthreads", "dthreads",
	// "rfdet-ci", "rfdet-pf", "coredet").
	Name() string
	// Run executes main as thread 0, waits for the whole program to finish,
	// and returns the execution report. Run may be called repeatedly; each
	// call is an independent program execution.
	Run(main ThreadFunc) (*Report, error)
}

// Stats aggregates the profiling counters reported in Table 1 of the paper,
// plus runtime-internal counters used by the optimization studies.
type Stats struct {
	// Synchronization operation counts (Table 1, "sync ops").
	Locks      uint64 // pthread_mutex_lock
	Unlocks    uint64 // pthread_mutex_unlock
	Waits      uint64 // pthread_cond_wait
	Signals    uint64 // pthread_cond_signal + broadcast
	Forks      uint64 // pthread_create
	Joins      uint64 // pthread_join
	Barriers   uint64 // barrier arrivals
	AtomicsOps uint64 // extension: low-level atomic operations

	// Memory operation counts (Table 1, "memory ops").
	Loads          uint64 // instrumented load instructions
	Stores         uint64 // instrumented store instructions
	StoresWithCopy uint64 // stores that triggered a page snapshot ("store w/ copy")

	// Memory footprint in bytes (Table 1, "memory footprint").
	SharedMemBytes   uint64 // high-water shared (non-stack) application memory
	RuntimeMemBytes  uint64 // total runtime footprint (N*shared + metadata for RFDet)
	MetadataBytes    uint64 // high-water metadata-space usage
	MetadataCapacity uint64 // configured metadata-space size

	// Garbage collection (Table 1, "GC"). GCCount counts only passes that
	// reclaimed at least one slice; passes triggered (typically by snapshot
	// churn crossing the threshold) that found nothing below the frontier
	// are reported separately as GCEmptyPasses, so they cannot inflate the
	// Table 1 column.
	GCCount       uint64 // reclaiming slice garbage-collection passes
	GCEmptyPasses uint64 // GC passes that reclaimed nothing

	// Epoch-store observability (Options.EpochStore; internal/slicestore
	// epoch.go). Segment counts and arena-recycling counters from the
	// log-structured metadata space; all zero under the map store. Chunk
	// reuse is host-dependent observability (it depends on when GC passes
	// land relative to commits), never part of the deterministic output.
	StoreSegments        uint64 // live epoch segments at run end
	StoreSegmentsDropped uint64 // whole segments reclaimed by GC
	ArenaChunksAllocated uint64 // arena chunks ever created
	ArenaChunksReused    uint64 // arena chunk requests served by recycling
	ArenaBytesInterned   uint64 // payload bytes copied into segment arenas

	// DLRC internals (optimization studies, §4.5).
	SlicesCreated           uint64 // slices ended with a non-empty or empty mod list
	SlicesMerged            uint64 // slices continued by the slice-merging optimization
	SlicesPropagated        uint64 // slice propagations into a local thread
	SlicesFilteredLow       uint64 // propagations skipped by the lowerlimit filter
	SlicesFilteredPremerged uint64 // propagations skipped because a prelock pre-merge already applied them
	BytesPropagated         uint64 // modification bytes applied to local memories
	PrelockBytes            uint64 // modification bytes applied during prelock pre-merge
	LazyPendingApplied      uint64 // lazily pended modification runs applied on access
	LazyRunsElided          uint64 // pended runs coalesced away before any access
	PageFaults              uint64 // simulated write-protection faults (pf monitor)
	PageProtects            uint64 // simulated per-page mprotect operations

	// Sub-page dirty tracking (extent-guided slice diffing).
	DirtyExtents     uint64 // dirty extents consumed by slice-end diffs
	DiffBytesScanned uint64 // snapshot bytes actually compared by slice-end diffs
	DiffBytesSkipped uint64 // snapshot bytes skipped thanks to dirty extents

	// Happens-before race detection (Options.RaceDetect). RaceRecords counts
	// slice access footprints handed to the detector; RaceReadBytes the
	// coalesced read-set bytes they carried. Both are deterministic.
	RaceRecords   uint64 // slice access records given to the race detector
	RaceReadBytes uint64 // harvested read-set bytes across those records

	// Kendo internals.
	TurnWaits uint64 // sync ops that had to wait for the deterministic turn

	// Race-aware ordering relaxation (Options.RaceRelaxed). ElidedTurnWaits
	// counts turn-waits skipped under a relaxation profile;
	// SkippedSliceApplies and BytesElided count propagated slices (and their
	// modification bytes) whose physical application was deferred because
	// their write extents were disjoint from every unordered peer's observed
	// reads; RelaxUnsafeFallbacks counts the times race evidence contradicted
	// the profile and the runtime fell back to the seed's full ordering.
	// Like the wall-clock nanos these are host-dependent observability —
	// which slices get elided depends on when peer read evidence lands —
	// and are never part of the deterministic output.
	ElidedTurnWaits      uint64 //detvet:mark turn-elide (turn-waits skipped under the relaxation profile)
	SkippedSliceApplies  uint64 //detvet:mark slice-elide (propagated slices whose application was elided)
	BytesElided          uint64 //detvet:mark slice-elide (modification bytes in elided slice applies)
	RelaxUnsafeFallbacks uint64 //detvet:mark relax-fallback (relaxations reverted on contradicting evidence)

	// Monitor-contention observability. MonitorAcquires counts acquisitions
	// of the runtime's global monitor; DiffNanos and ApplyNanos are the
	// wall-clock time spent byte-diffing snapshotted pages and applying
	// propagated modification runs. After the monitor decomposition, diffing
	// and eager application run off the monitor, so these nanos measure work
	// that no longer serializes unrelated threads. Wall-clock times are
	// host-dependent: they are observability counters, never part of the
	// deterministic output.
	MonitorAcquires uint64 // global-monitor lock acquisitions
	DiffNanos       uint64 // wall nanos spent in page diffing
	ApplyNanos      uint64 // wall nanos spent applying propagated runs

	// Coalesced write-plan propagation observability. CollectScanned counts
	// slice pointers examined by acquire-side collections — the O(list)
	// scan cost the write plan does not remove. SliceListLen is the
	// high-water length of any single collected list. BytesCoalescedAway is
	// the modification bytes the last-writer-wins plan avoided writing
	// (input bytes minus unique destination bytes). PlanReuse counts
	// blocked waiters that reused a release's already-built plan instead of
	// rebuilding it.
	CollectScanned     uint64 // slice pointers scanned during collection
	SliceListLen       uint64 // high-water collected slice-list length
	BytesCoalescedAway uint64 // duplicate bytes elided by write plans
	PlanReuse          uint64 // waiters that shared a cached write plan

	// Sharded-monitor observability (Options.ShardCount; internal/core
	// shard.go). MonitorShards echoes the configured domain count.
	// ShardReleases counts releases stamped with a domain version;
	// CrossShardAcquires counts acquires whose happens-before edge entered
	// a different domain than the acquirer's previous synchronization;
	// RendezvousOps counts slow-path global rendezvous entries (spawn,
	// join, exit, barrier). All observability only, never part of the
	// deterministic output.
	MonitorShards      uint64 // configured commit-monitor domain count
	ShardReleases      uint64 // releases stamped with a domain version
	CrossShardAcquires uint64 // acquires crossing domain boundaries
	RendezvousOps      uint64 // global-rendezvous monitor entries
}

// Add accumulates other into s.
func (s *Stats) Add(other *Stats) {
	s.Locks += other.Locks
	s.Unlocks += other.Unlocks
	s.Waits += other.Waits
	s.Signals += other.Signals
	s.Forks += other.Forks
	s.Joins += other.Joins
	s.Barriers += other.Barriers
	s.AtomicsOps += other.AtomicsOps
	s.Loads += other.Loads
	s.Stores += other.Stores
	s.StoresWithCopy += other.StoresWithCopy
	s.SlicesCreated += other.SlicesCreated
	s.SlicesMerged += other.SlicesMerged
	s.SlicesPropagated += other.SlicesPropagated
	s.SlicesFilteredLow += other.SlicesFilteredLow
	s.SlicesFilteredPremerged += other.SlicesFilteredPremerged
	s.BytesPropagated += other.BytesPropagated
	s.PrelockBytes += other.PrelockBytes
	s.LazyPendingApplied += other.LazyPendingApplied
	s.LazyRunsElided += other.LazyRunsElided
	s.PageFaults += other.PageFaults
	s.PageProtects += other.PageProtects
	s.DirtyExtents += other.DirtyExtents
	s.DiffBytesScanned += other.DiffBytesScanned
	s.DiffBytesSkipped += other.DiffBytesSkipped
	s.RaceRecords += other.RaceRecords
	s.RaceReadBytes += other.RaceReadBytes
	s.TurnWaits += other.TurnWaits
	s.ElidedTurnWaits += other.ElidedTurnWaits
	s.SkippedSliceApplies += other.SkippedSliceApplies
	s.BytesElided += other.BytesElided
	s.RelaxUnsafeFallbacks += other.RelaxUnsafeFallbacks
	s.MonitorAcquires += other.MonitorAcquires
	s.DiffNanos += other.DiffNanos
	s.ApplyNanos += other.ApplyNanos
	s.CollectScanned += other.CollectScanned
	if other.SliceListLen > s.SliceListLen {
		s.SliceListLen = other.SliceListLen
	}
	s.BytesCoalescedAway += other.BytesCoalescedAway
	s.PlanReuse += other.PlanReuse
	if other.MonitorShards > s.MonitorShards {
		s.MonitorShards = other.MonitorShards
	}
	s.ShardReleases += other.ShardReleases
	s.CrossShardAcquires += other.CrossShardAcquires
	s.RendezvousOps += other.RendezvousOps
	// High-water and pass counters take the max / sum as appropriate.
	if other.SharedMemBytes > s.SharedMemBytes {
		s.SharedMemBytes = other.SharedMemBytes
	}
	if other.RuntimeMemBytes > s.RuntimeMemBytes {
		s.RuntimeMemBytes = other.RuntimeMemBytes
	}
	if other.MetadataBytes > s.MetadataBytes {
		s.MetadataBytes = other.MetadataBytes
	}
	s.GCCount += other.GCCount
	s.GCEmptyPasses += other.GCEmptyPasses
	if other.StoreSegments > s.StoreSegments {
		s.StoreSegments = other.StoreSegments
	}
	s.StoreSegmentsDropped += other.StoreSegmentsDropped
	s.ArenaChunksAllocated += other.ArenaChunksAllocated
	s.ArenaChunksReused += other.ArenaChunksReused
	s.ArenaBytesInterned += other.ArenaBytesInterned
}

// MemOps returns the total number of instrumented memory operations.
func (s *Stats) MemOps() uint64 { return s.Loads + s.Stores }

// Report is the result of one program execution.
type Report struct {
	// OutputHash is a 64-bit digest of the program's deterministic output:
	// the per-thread observation logs in thread-ID order followed by a
	// digest of the final shared memory image as seen by thread 0. Two runs
	// of a deterministic runtime on the same program and input must produce
	// equal OutputHash values.
	OutputHash uint64
	// Observations holds the raw observation log: for each thread, in
	// thread-ID order, the values it passed to Observe.
	Observations map[ThreadID][]uint64
	// Stats holds the merged profiling counters of all threads.
	Stats Stats
	// Elapsed is the wall-clock duration of Run.
	Elapsed time.Duration
	// VirtualTime is the modeled parallel execution time (makespan) in
	// virtual nanoseconds under the internal/vtime cost model. All
	// performance figures are ratios of virtual times, making the
	// reproduction host-independent and deterministic.
	VirtualTime uint64
	// Threads is the total number of threads created (including main).
	Threads int
	// Phases is the phase-level wall-clock timeline (nil unless the runtime
	// ran with phase tracing enabled). Strictly observational: wall-clock
	// spans never contribute to OutputHash, VirtualTime, or the deterministic
	// trace.
	Phases *trace.Report
	// Races is the happens-before data-race report (nil unless the runtime
	// ran with race detection enabled). Observational like Phases, but —
	// unlike wall-clock spans — itself deterministic: the same program
	// yields a byte-identical report on every run and every GOMAXPROCS.
	Races *racecheck.Report
	// RelaxProfile is the relaxation profile derived from this run's race
	// detection (nil unless race detection was enabled): the sync-var
	// addresses observed thread-local, stamped with the race report's
	// stability digest. Deterministic like Races; feed it back through
	// Options.RelaxProfile (after a stability merge across runs) to enable
	// profile-guided turn-wait elision.
	RelaxProfile *racecheck.Profile
}

// ObservationsDigest folds the complete observation log — every thread's
// values in thread-ID order, length-delimited — into one FNV-1a digest.
// Replica divergence checking compares this alongside the workload-level
// hashes: two replicas agree on it iff their full per-thread response logs
// agree value for value, not merely on a folded summary. Unlike OutputHash
// it excludes the final-memory digest, so it isolates *observed* divergence
// from state divergence.
func (r *Report) ObservationsDigest() uint64 {
	ids := make([]ThreadID, 0, len(r.Observations))
	for id := range r.Observations {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	h := uint64(0xcbf29ce484222325)
	fold := func(v uint64) {
		for shift := 0; shift < 64; shift += 8 {
			h ^= (v >> shift) & 0xff
			h *= 0x100000001b3
		}
	}
	for _, id := range ids {
		obs := r.Observations[id]
		fold(uint64(id))
		fold(uint64(len(obs)))
		for _, v := range obs {
			fold(v)
		}
	}
	return h
}
