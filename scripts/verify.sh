#!/bin/sh
# verify.sh — the repo's full verification gate, run by `make verify` and CI.
#
# Steps, in order of how fast they fail:
#   1. gofmt      — no unformatted files
#   2. go vet     — static checks
#   3. go build   — everything compiles
#   4. go test    — full suite
#   5. race tests — the packages with real concurrency, under -race with
#                   GOMAXPROCS oversubscribed (the off-monitor diff/apply
#                   windows only interleave when the host preempts)
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> race tests (GOMAXPROCS=4)"
GOMAXPROCS=4 go test -race ./internal/core/ ./internal/slicestore/ ./internal/kendo/

echo "verify: OK"
