#!/bin/sh
# verify.sh — the repo's full verification gate, run by `make verify` and CI.
#
# Steps, in order of how fast they fail:
#   1. gofmt      — no unformatted files
#   2. go vet     — static checks
#   3. detvet     — the determinism analyzer suite (tools/detvet), both as a
#                   go vet tool (maporder, wallclock, nativesync, lockcheck,
#                   pincheck per package) and in standalone whole-program
#                   mode, which adds the cross-package statwire pass
#   4. go build   — everything compiles
#   5. go test    — full suite
#   6. race tests — the packages with real concurrency, under -race with
#                   GOMAXPROCS oversubscribed (the off-monitor diff/apply
#                   windows only interleave when the host preempts)
#   7. store sweep— the seed-regression goldens once per commit-monitor
#                   domain count (RFDET_SHARDS) crossed with both metadata
#                   stores (RFDET_EPOCHSTORE): neither the sharded monitor
#                   nor the epoch store may be visible to any deterministic
#                   observable. Plus one iteration of the slice-store churn
#                   benchmark so the map-vs-epoch comparison stays runnable
#   8. replicas   — the KV-server divergence check: k=3 replicas of one
#                   request log across optimization stacks must agree
#                   byte-for-byte (rfdet-serve exits 1 on divergence)
#   9. relaxed    — race-aware ordering relaxation (DESIGN.md §15): the
#                   per-benchmark record→replay→byte-compare table, plus a
#                   race-relaxed replica joining the divergence fleet
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> detvet (determinism analyzers, go vet mode)"
go build -o bin/detvet ./tools/detvet
go vet -vettool="$(pwd)/bin/detvet" ./...

echo "==> detvet (standalone whole-program mode: + statwire)"
go run ./tools/detvet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> race tests (GOMAXPROCS=4)"
GOMAXPROCS=4 go test -race ./internal/core/ ./internal/slicestore/ ./internal/alloc/ ./internal/kendo/

echo "==> seed goldens per shard count x metadata store"
for shards in 1 4; do
	for epochstore in 0 1; do
		echo "    RFDET_SHARDS=$shards RFDET_EPOCHSTORE=$epochstore"
		RFDET_SHARDS="$shards" RFDET_EPOCHSTORE="$epochstore" go test -count=1 -run 'TestSeedRegressionTraces|TestSeedRegressionShardCounts|TestSeedRegressionServer|TestSeedRegressionEpochStoreMatches' .
	done
done

echo "==> slice-store churn benchmark (1 iteration)"
go test -run=NONE -bench SliceStoreChurn -benchtime=1x ./internal/slicestore/

echo "==> replica divergence check (k=3)"
go run ./cmd/rfdet-serve -size test -threads 4 -replicas 3

echo "==> race-aware relaxation (record, replay, byte-compare)"
go run ./cmd/rfdet-bench -size test -threads 4 relaxation
go run ./cmd/rfdet-serve -size test -threads 4 -replicas 3 -relaxed

echo "verify: OK"
