package rfdet_test

import (
	"io"
	"runtime"
	"testing"

	"rfdet"
	"rfdet/internal/harness"
	"rfdet/internal/racecheck"
	"rfdet/internal/workloads"
)

// raceyRaceReport runs racey under the race detector and returns the report.
func raceyRaceReport(t *testing.T) *racecheck.Report {
	t.Helper()
	racey, err := workloads.ByName("racey")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rfdet.NewCIRace().Run(racey.Prog(seedConfig))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Races == nil {
		t.Fatal("RaceDetect runtime produced no race report")
	}
	// Detection must be strictly observational: the deterministic artifacts
	// match the goldens captured without it.
	if rep.OutputHash != goldenRaceyOutput || rep.VirtualTime != goldenRaceyVTime {
		t.Fatalf("racecheck perturbed execution: output=%#x vtime=%d, seed output=%#x vtime=%d",
			rep.OutputHash, rep.VirtualTime, goldenRaceyOutput, goldenRaceyVTime)
	}
	return rep.Races
}

// TestRaceDetectRaceyFindsBoth requires the detector to find racey's seeded
// races of both kinds — write/write and read/write — and the report to be
// byte-identical at every GOMAXPROCS from 1 to 8.
func TestRaceDetectRaceyFindsBoth(t *testing.T) {
	var want string
	for _, p := range []int{1, 2, 4, 8} {
		old := runtime.GOMAXPROCS(p)
		races := raceyRaceReport(t)
		runtime.GOMAXPROCS(old)
		var ww, rw int
		for _, r := range races.Races {
			switch r.Kind {
			case racecheck.WriteWrite:
				ww++
			case racecheck.ReadWrite:
				rw++
			}
		}
		if ww == 0 || rw == 0 {
			t.Fatalf("P=%d: expected both race kinds, got %d write/write and %d read/write", p, ww, rw)
		}
		if got := races.String(); want == "" {
			want = got
		} else if got != want {
			t.Fatalf("P=%d: race report differs from P=1's:\n%s\nvs\n%s", p, got, want)
		}
	}
}

// TestRaceDetectReportStability reruns detection 20 times on one runtime
// instance: every report hash must be identical (the cmd/racey -detect
// contract).
func TestRaceDetectReportStability(t *testing.T) {
	runs := 20
	if testing.Short() {
		runs = 5
	}
	var want uint64
	for i := 0; i < runs; i++ {
		h := raceyRaceReport(t).Hash()
		if i == 0 {
			want = h
			continue
		}
		if h != want {
			t.Fatalf("run %d: report hash %#x != %#x", i, h, want)
		}
	}
}

// TestRaceDetectLitmusClassification drives the harness race table, which
// checks every litmus kernel against its static classification: racy kernels
// report races, race-free kernels report exactly zero, the byte-merge blind
// spot reports zero, and every report is run twice and byte-compared.
func TestRaceDetectLitmusClassification(t *testing.T) {
	if err := harness.RaceTable(io.Discard, workloads.SizeTest, 4); err != nil {
		t.Fatal(err)
	}
}

// TestRaceDetectOffByDefault: without Options.RaceDetect the report is absent
// and no access records are kept.
func TestRaceDetectOffByDefault(t *testing.T) {
	racey, err := workloads.ByName("racey")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rfdet.NewCI().Run(racey.Prog(seedConfig))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Races != nil {
		t.Fatal("race report present with RaceDetect off")
	}
	if rep.Stats.RaceRecords != 0 || rep.Stats.RaceReadBytes != 0 {
		t.Fatalf("race counters nonzero with RaceDetect off: %d records, %d bytes",
			rep.Stats.RaceRecords, rep.Stats.RaceReadBytes)
	}
}

// TestRaceDetectShardCountInvariant: the deterministic race report is an
// observable like any other — it must be byte-identical whether the commit
// monitor runs as the seed's single global domain or as four sharded
// domains, at every GOMAXPROCS. Access recording happens turn-held at
// commit time, so the report order cannot depend on which host mutex
// covered the commit.
func TestRaceDetectShardCountInvariant(t *testing.T) {
	racey, err := workloads.ByName("racey")
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, shards := range []int{1, 4} {
		opts := rfdet.DefaultOptions()
		opts.ShardCount = shards
		opts.RaceDetect = true
		for _, p := range []int{1, 4, 8} {
			old := runtime.GOMAXPROCS(p)
			rep, err := rfdet.New(opts).Run(racey.Prog(seedConfig))
			runtime.GOMAXPROCS(old)
			if err != nil {
				t.Fatalf("shards=%d P=%d: %v", shards, p, err)
			}
			if rep.Races == nil {
				t.Fatalf("shards=%d P=%d: no race report", shards, p)
			}
			got := rep.Races.String()
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("shards=%d P=%d: race report differs from the shards=1 P=1 report:\n%s\nvs\n%s",
					shards, p, got, want)
			}
		}
	}
}
