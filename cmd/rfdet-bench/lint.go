package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
)

// runLint executes the repo's determinism analyzer suite (tools/detvet) in
// its standalone JSON mode and asserts a clean tree. It is a smoke test for
// the -json contract as much as for the tree: the output it asserts empty is
// parsed, not pattern-matched, so a malformed encoding fails the lint too.
// Must run from the repository root (as make detvet and CI do).
func runLint(out io.Writer) error {
	cmd := exec.Command("go", "run", "./tools/detvet", "-json", "./...")
	cmd.Stderr = os.Stderr
	raw, runErr := cmd.Output()

	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &diags); err != nil {
			return fmt.Errorf("lint: detvet -json output did not parse: %v", err)
		}
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintf(out, "%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
		return fmt.Errorf("lint: %d determinism diagnostics", len(diags))
	}
	if runErr != nil {
		return fmt.Errorf("lint: detvet failed: %v", runErr)
	}
	fmt.Fprintln(out, "lint: clean (maporder, wallclock, nativesync, lockcheck, pincheck, statwire)")
	return nil
}
