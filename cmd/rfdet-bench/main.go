// Command rfdet-bench regenerates the paper's evaluation artifacts:
//
//	rfdet-bench figure7   execution time normalized to pthreads (Figure 7)
//	rfdet-bench table1    per-benchmark profiling data (Table 1)
//	rfdet-bench propagation  write-plan propagation profile
//	rfdet-bench slicestore  metadata-store profile: map vs epoch store (DESIGN.md §16)
//	rfdet-bench phases    phase-level wall-clock breakdown (observability)
//	rfdet-bench figure8   scalability, 2→4→8 threads (Figure 8)
//	rfdet-bench figure9   prelock / lazy-writes optimization study (Figure 9)
//	rfdet-bench racey     the §5.1 determinism stress test
//	rfdet-bench litmus    the DLRC memory-model litmus table (§3)
//	rfdet-bench racetable happens-before race detection vs litmus classification (DESIGN.md §12)
//	rfdet-bench replicas  KV-server k-replica divergence check + requests/sec (DESIGN.md §14)
//	rfdet-bench relaxation  race-aware turn-wait elision: profile, replay, byte-compare (DESIGN.md §15)
//	rfdet-bench all       everything, in paper order
//	rfdet-bench lint      determinism-lint smoke: run tools/detvet -json, assert a clean tree
//	rfdet-bench validate-trace <file>  check an exported trace file
//
// Flags select the problem size (-size test|small|medium), the thread count
// (-threads), measurement repeats (-repeats), racey run count (-runs) and the
// replica count for the divergence check (-replicas).
//
// -trace out.json runs one workload (-traceworkload, default wordcount) under
// RFDet-ci with phase tracing enabled and writes the phase timeline as
// Chrome-trace JSON, loadable in chrome://tracing or Perfetto. It can be used
// standalone (no command argument) or before any command.
package main

import (
	"flag"
	"fmt"
	"os"

	"rfdet/internal/harness"
	"rfdet/internal/trace"
	"rfdet/internal/workloads"
)

// writeTrace runs one workload under RFDet-ci with phase tracing and writes
// the Chrome-trace JSON to path, echoing the per-phase summary to stdout.
func writeTrace(path, workload string, sz workloads.Size, threads int) error {
	w, err := workloads.ByName(workload)
	if err != nil {
		return err
	}
	cfg := workloads.Config{Threads: threads, Size: sz}
	res, err := harness.Run(harness.NewRFDetCITraced(), w, cfg, 1)
	if err != nil {
		return err
	}
	ph := res.Report.Phases
	if ph == nil {
		return fmt.Errorf("trace: %s ran without a phase report", workload)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ph.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("phase trace of %s (%d threads, size %s) written to %s\n\n",
		workload, threads, sz, path)
	if err := ph.WriteSummary(os.Stdout); err != nil {
		return err
	}
	tot := ph.PhaseTotals()
	fmt.Printf("\nreconciliation: diff spans %dus = Stats.DiffNanos %dus; "+
		"apply+premerge spans %dus = Stats.ApplyNanos %dus\n",
		tot[trace.PhaseDiff].Microseconds(),
		res.Report.Stats.DiffNanos/1000,
		(tot[trace.PhaseApply] + tot[trace.PhasePremerge]).Microseconds(),
		res.Report.Stats.ApplyNanos/1000)
	fmt.Printf("open in chrome://tracing or https://ui.perfetto.dev\n")
	return nil
}

// validateTrace checks that an exported file parses as Chrome-trace JSON and
// satisfies the exporter's invariants (non-negative timestamps, per-thread
// well-nested duration events).
func validateTrace(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := trace.ValidateChrome(data); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	fmt.Printf("%s: valid Chrome-trace JSON\n", path)
	return nil
}

func main() {
	size := flag.String("size", "small", "problem size: test, small or medium")
	threads := flag.Int("threads", 4, "worker thread count for figure7/table1/figure9")
	repeats := flag.Int("repeats", 1, "measurement repeats (median of virtual times)")
	runs := flag.Int("runs", 20, "racey executions per configuration")
	replicas := flag.Int("replicas", 3, "KV-server replica count for the replicas command")
	tracePath := flag.String("trace", "", "write a Chrome-trace phase timeline of one workload to this file")
	traceWorkload := flag.String("traceworkload", "wordcount", "workload to trace with -trace")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rfdet-bench [flags] figure7|table1|propagation|slicestore|phases|figure8|figure9|racey|litmus|racetable|replicas|relaxation|lint|all\n")
		fmt.Fprintf(os.Stderr, "       rfdet-bench [flags] validate-trace <file>\n")
		fmt.Fprintf(os.Stderr, "       rfdet-bench [flags] -trace out.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var sz workloads.Size
	switch *size {
	case "test":
		sz = workloads.SizeTest
	case "small":
		sz = workloads.SizeSmall
	case "medium":
		sz = workloads.SizeMedium
	default:
		fmt.Fprintf(os.Stderr, "rfdet-bench: unknown size %q\n", *size)
		os.Exit(2)
	}

	if *tracePath != "" {
		if err := writeTrace(*tracePath, *traceWorkload, sz, *threads); err != nil {
			fmt.Fprintf(os.Stderr, "rfdet-bench: %v\n", err)
			os.Exit(1)
		}
		if flag.NArg() == 0 {
			return
		}
	}
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	var err error
	switch cmd := flag.Arg(0); cmd {
	case "figure7":
		err = harness.Figure7(os.Stdout, sz, *threads, *repeats)
	case "table1":
		err = harness.Table1(os.Stdout, sz, *threads)
	case "propagation":
		err = harness.PropagationTable(os.Stdout, sz, *threads)
	case "slicestore":
		err = harness.SliceStoreTable(os.Stdout, sz, *threads)
	case "phases":
		err = harness.PhaseTable(os.Stdout, sz, *threads)
	case "figure8":
		err = harness.Figure8(os.Stdout, sz, *repeats)
	case "figure9":
		err = harness.Figure9(os.Stdout, sz, *threads, *repeats)
	case "racey":
		err = harness.RaceyCheck(os.Stdout, sz, *runs)
	case "litmus":
		err = harness.LitmusTable(os.Stdout, *runs)
	case "racetable":
		err = harness.RaceTable(os.Stdout, sz, *threads)
	case "replicas":
		err = harness.ReplicaTable(os.Stdout, sz, *threads, *replicas)
	case "relaxation":
		err = harness.RelaxationTable(os.Stdout, sz, *threads)
	case "all":
		err = harness.AllExperiments(os.Stdout, sz, *threads, *repeats, *runs)
	case "lint":
		err = runLint(os.Stdout)
	case "validate-trace":
		if flag.NArg() != 2 {
			fmt.Fprintf(os.Stderr, "usage: rfdet-bench validate-trace <file>\n")
			os.Exit(2)
		}
		err = validateTrace(flag.Arg(1))
	default:
		fmt.Fprintf(os.Stderr, "rfdet-bench: unknown command %q\n", cmd)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfdet-bench: %v\n", err)
		os.Exit(1)
	}
}
