// Command rfdet-bench regenerates the paper's evaluation artifacts:
//
//	rfdet-bench figure7   execution time normalized to pthreads (Figure 7)
//	rfdet-bench table1    per-benchmark profiling data (Table 1)
//	rfdet-bench propagation  write-plan propagation profile
//	rfdet-bench figure8   scalability, 2→4→8 threads (Figure 8)
//	rfdet-bench figure9   prelock / lazy-writes optimization study (Figure 9)
//	rfdet-bench racey     the §5.1 determinism stress test
//	rfdet-bench litmus    the DLRC memory-model litmus table (§3)
//	rfdet-bench all       everything, in paper order
//
// Flags select the problem size (-size test|small|medium), the thread count
// (-threads), measurement repeats (-repeats) and racey run count (-runs).
package main

import (
	"flag"
	"fmt"
	"os"

	"rfdet/internal/harness"
	"rfdet/internal/workloads"
)

func main() {
	size := flag.String("size", "small", "problem size: test, small or medium")
	threads := flag.Int("threads", 4, "worker thread count for figure7/table1/figure9")
	repeats := flag.Int("repeats", 1, "measurement repeats (median of virtual times)")
	runs := flag.Int("runs", 20, "racey executions per configuration")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rfdet-bench [flags] figure7|table1|propagation|figure8|figure9|racey|litmus|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var sz workloads.Size
	switch *size {
	case "test":
		sz = workloads.SizeTest
	case "small":
		sz = workloads.SizeSmall
	case "medium":
		sz = workloads.SizeMedium
	default:
		fmt.Fprintf(os.Stderr, "rfdet-bench: unknown size %q\n", *size)
		os.Exit(2)
	}

	var err error
	switch flag.Arg(0) {
	case "figure7":
		err = harness.Figure7(os.Stdout, sz, *threads, *repeats)
	case "table1":
		err = harness.Table1(os.Stdout, sz, *threads)
	case "propagation":
		err = harness.PropagationTable(os.Stdout, sz, *threads)
	case "figure8":
		err = harness.Figure8(os.Stdout, sz, *repeats)
	case "figure9":
		err = harness.Figure9(os.Stdout, sz, *threads, *repeats)
	case "racey":
		err = harness.RaceyCheck(os.Stdout, sz, *runs)
	case "litmus":
		err = harness.LitmusTable(os.Stdout, *runs)
	case "all":
		err = harness.AllExperiments(os.Stdout, sz, *threads, *repeats, *runs)
	default:
		fmt.Fprintf(os.Stderr, "rfdet-bench: unknown command %q\n", flag.Arg(0))
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfdet-bench: %v\n", err)
		os.Exit(1)
	}
}
