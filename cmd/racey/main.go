// Command racey is the determinism stress test of paper §5.1: a program
// built out of data races (after Hill & Xu's racey) whose final signature
// changes if any scheduling or memory-visibility decision changes.
//
// The paper runs racey 1000 times with 2, 4 and 8 threads and requires one
// output per configuration. This command does the same (default 100 runs;
// use -runs 1000 for the paper's count) on the selected runtime.
//
//	racey [-runtime rfdet-ci|rfdet-pf|dthreads|coredet|pthreads] [-runs N] [-threads N]
package main

import (
	"flag"
	"fmt"
	"os"

	"rfdet"
	"rfdet/internal/workloads"
)

func main() {
	rtName := flag.String("runtime", "rfdet-ci", "runtime: rfdet-ci, rfdet-pf, dthreads, coredet or pthreads")
	runs := flag.Int("runs", 100, "executions per thread count")
	threadsFlag := flag.Int("threads", 0, "run only this thread count (default: 2, 4 and 8)")
	size := flag.String("size", "small", "problem size: test, small or medium")
	flag.Parse()

	var rt rfdet.Runtime
	switch *rtName {
	case "rfdet-ci":
		rt = rfdet.NewCI()
	case "rfdet-pf":
		rt = rfdet.NewPF()
	case "dthreads":
		rt = rfdet.NewDThreads()
	case "coredet":
		rt = rfdet.NewCoreDet(50000)
	case "pthreads":
		rt = rfdet.NewPThreads()
	default:
		fmt.Fprintf(os.Stderr, "racey: unknown runtime %q\n", *rtName)
		os.Exit(2)
	}
	var sz workloads.Size
	switch *size {
	case "test":
		sz = workloads.SizeTest
	case "small":
		sz = workloads.SizeSmall
	case "medium":
		sz = workloads.SizeMedium
	default:
		fmt.Fprintf(os.Stderr, "racey: unknown size %q\n", *size)
		os.Exit(2)
	}

	racey, err := workloads.ByName("racey")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	threadCounts := []int{2, 4, 8}
	if *threadsFlag > 0 {
		threadCounts = []int{*threadsFlag}
	}
	fail := false
	for _, n := range threadCounts {
		seen := map[uint64]int{}
		var firstSig uint64
		for i := 0; i < *runs; i++ {
			rep, err := rt.Run(racey.Prog(workloads.Config{Threads: n, Size: sz}))
			if err != nil {
				fmt.Fprintf(os.Stderr, "racey: %v\n", err)
				os.Exit(1)
			}
			sig := rep.Observations[0][0]
			if len(seen) == 0 {
				firstSig = sig
			}
			seen[sig]++
		}
		fmt.Printf("%s, %d threads, %d runs: %d distinct signature(s); first signature %#016x\n",
			rt.Name(), n, *runs, len(seen), firstSig)
		if len(seen) > 1 && *rtName != "pthreads" {
			fail = true
		}
	}
	if fail {
		fmt.Println("NONDETERMINISM DETECTED — the runtime failed the racey stress test")
		os.Exit(1)
	}
	if *rtName == "pthreads" {
		fmt.Println("(pthreads is expected to be nondeterministic; distinct counts above 1 are normal)")
	} else {
		fmt.Println("deterministic: every run produced the same signature (§5.1)")
	}
}
