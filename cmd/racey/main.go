// Command racey is the determinism stress test of paper §5.1: a program
// built out of data races (after Hill & Xu's racey) whose final signature
// changes if any scheduling or memory-visibility decision changes.
//
// The paper runs racey 1000 times with 2, 4 and 8 threads and requires one
// output per configuration. This command does the same (default 100 runs;
// use -runs 1000 for the paper's count) on the selected runtime.
//
//	racey [-runtime rfdet-ci|rfdet-pf|dthreads|coredet|pthreads] [-runs N] [-threads N]
//
// With -detect the happens-before race detector runs instead: racey is
// executed 20 times per thread count and the deterministic race report must
// be non-empty and byte-identical on every run.
//
//	racey -detect [-threads N] [-size test|small|medium]
package main

import (
	"flag"
	"fmt"
	"os"

	"rfdet"
	"rfdet/internal/workloads"
)

func main() {
	rtName := flag.String("runtime", "rfdet-ci", "runtime: rfdet-ci, rfdet-pf, dthreads, coredet or pthreads")
	runs := flag.Int("runs", 100, "executions per thread count")
	threadsFlag := flag.Int("threads", 0, "run only this thread count (default: 2, 4 and 8)")
	size := flag.String("size", "small", "problem size: test, small or medium")
	detect := flag.Bool("detect", false, "run the happens-before race detector (rfdet-ci only) and require a stable report across 20 runs")
	flag.Parse()

	var rt rfdet.Runtime
	switch *rtName {
	case "rfdet-ci":
		rt = rfdet.NewCI()
	case "rfdet-pf":
		rt = rfdet.NewPF()
	case "dthreads":
		rt = rfdet.NewDThreads()
	case "coredet":
		rt = rfdet.NewCoreDet(50000)
	case "pthreads":
		rt = rfdet.NewPThreads()
	default:
		fmt.Fprintf(os.Stderr, "racey: unknown runtime %q\n", *rtName)
		os.Exit(2)
	}
	var sz workloads.Size
	switch *size {
	case "test":
		sz = workloads.SizeTest
	case "small":
		sz = workloads.SizeSmall
	case "medium":
		sz = workloads.SizeMedium
	default:
		fmt.Fprintf(os.Stderr, "racey: unknown size %q\n", *size)
		os.Exit(2)
	}

	racey, err := workloads.ByName("racey")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	threadCounts := []int{2, 4, 8}
	if *threadsFlag > 0 {
		threadCounts = []int{*threadsFlag}
	}
	if *detect {
		if *rtName != "rfdet-ci" {
			fmt.Fprintln(os.Stderr, "racey: -detect requires -runtime rfdet-ci")
			os.Exit(2)
		}
		detectRaces(racey, threadCounts, sz)
		return
	}
	fail := false
	for _, n := range threadCounts {
		seen := map[uint64]int{}
		var firstSig uint64
		for i := 0; i < *runs; i++ {
			rep, err := rt.Run(racey.Prog(workloads.Config{Threads: n, Size: sz}))
			if err != nil {
				fmt.Fprintf(os.Stderr, "racey: %v\n", err)
				os.Exit(1)
			}
			sig := rep.Observations[0][0]
			if len(seen) == 0 {
				firstSig = sig
			}
			seen[sig]++
		}
		fmt.Printf("%s, %d threads, %d runs: %d distinct signature(s); first signature %#016x\n",
			rt.Name(), n, *runs, len(seen), firstSig)
		if len(seen) > 1 && *rtName != "pthreads" {
			fail = true
		}
	}
	if fail {
		fmt.Println("NONDETERMINISM DETECTED — the runtime failed the racey stress test")
		os.Exit(1)
	}
	if *rtName == "pthreads" {
		fmt.Println("(pthreads is expected to be nondeterministic; distinct counts above 1 are normal)")
	} else {
		fmt.Println("deterministic: every run produced the same signature (§5.1)")
	}
}

// detectRaces runs racey under the happens-before race detector 20 times per
// thread count: the report must be non-empty (racey is races by design) and
// byte-identical across all runs — a deterministic artifact like the output.
func detectRaces(racey workloads.Workload, threadCounts []int, sz workloads.Size) {
	const detectRuns = 20
	rt := rfdet.NewCIRace()
	for _, n := range threadCounts {
		var first string
		var firstHash uint64
		var races int
		for i := 0; i < detectRuns; i++ {
			rep, err := rt.Run(racey.Prog(workloads.Config{Threads: n, Size: sz}))
			if err != nil {
				fmt.Fprintf(os.Stderr, "racey: %v\n", err)
				os.Exit(1)
			}
			if rep.Races == nil {
				fmt.Fprintln(os.Stderr, "racey: runtime produced no race report")
				os.Exit(1)
			}
			if i == 0 {
				first, firstHash, races = rep.Races.String(), rep.Races.Hash(), len(rep.Races.Races)
				continue
			}
			if rep.Races.String() != first {
				fmt.Fprintf(os.Stderr, "racey: race report diverged on run %d (%d threads)\n", i, n)
				os.Exit(1)
			}
		}
		fmt.Printf("%s, %d threads, %d runs: %d race(s), report hash %#016x — stable across all runs\n",
			rt.Name(), n, detectRuns, races, firstHash)
		if races == 0 {
			fmt.Fprintln(os.Stderr, "racey: detector found no races in a program made of races")
			os.Exit(1)
		}
	}
	fmt.Println("race report is a deterministic artifact: byte-identical on every run")
}
