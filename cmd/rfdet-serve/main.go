// Command rfdet-serve runs the deterministic KV server workload as k
// replicas of one request log and byte-compares every deterministic
// fingerprint — the active-replication use case for deterministic
// multithreading: replicas that cannot diverge.
//
//	rfdet-serve                          3 replicas across optimization stacks
//	rfdet-serve -replicas 6 -threads 8   wider fleet, 8 worker threads each
//	rfdet-serve -matrix                  the full 18-variant acceptance matrix
//	                                     (GOMAXPROCS {1,4,8} × shards {1,4} ×
//	                                      {default, fullpagediff, nocoalesce})
//	rfdet-serve -inject-abort            poison one replica's log: it must be
//	                                     reported divergent-by-abort, the rest
//	                                     must still agree
//	rfdet-serve -relaxed                 add one race-relaxed replica replaying
//	                                     a freshly recorded relaxation profile;
//	                                     it must stay byte-identical to the
//	                                     strict replicas (DESIGN.md §15)
//
// -seed picks the request log; -shards pins the commit-monitor domain count
// on every non-matrix replica (0 keeps the per-variant default), so external
// sweeps (CI) can drive the shard axis. The exit status is the verdict: 0
// when the replicas agree (or, under -inject-abort, when the only divergence
// is the injected abort), 1 on any real divergence.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rfdet/internal/harness"
	"rfdet/internal/trace"
	"rfdet/internal/workloads"
)

func main() {
	size := flag.String("size", "small", "problem size: test, small or medium")
	threads := flag.Int("threads", 4, "worker threads per replica")
	replicas := flag.Int("replicas", 3, "replica count (cycles the optimization stacks)")
	seed := flag.Uint64("seed", workloads.DefaultServerSeed, "request-log seed")
	shards := flag.Int("shards", 0, "commit-monitor domains per replica (0 = per-variant default)")
	matrix := flag.Bool("matrix", false, "run the full 18-variant acceptance matrix instead of -replicas")
	injectAbort := flag.Bool("inject-abort", false, "poison the last replica's log to demonstrate divergent-by-abort reporting")
	relaxed := flag.Bool("relaxed", false, "add a race-relaxed replica (records a relaxation profile first)")
	flag.Parse()

	var sz workloads.Size
	switch *size {
	case "test":
		sz = workloads.SizeTest
	case "small":
		sz = workloads.SizeSmall
	case "medium":
		sz = workloads.SizeMedium
	default:
		fmt.Fprintf(os.Stderr, "rfdet-serve: unknown size %q\n", *size)
		os.Exit(2)
	}

	var variants []harness.ReplicaVariant
	if *matrix {
		variants = harness.MatrixVariants()
	} else {
		variants = harness.DefaultVariants(*replicas)
		if *shards > 0 {
			for i := range variants {
				variants[i].Opts.ShardCount = *shards
			}
		}
	}
	if *injectAbort && len(variants) > 0 {
		variants[len(variants)-1].InjectAbort = true
	}

	cfg := workloads.Config{Threads: *threads, Size: sz}
	if *relaxed {
		v, err := harness.RelaxedServerVariant(cfg, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rfdet-serve: recording relaxation profile: %v\n", err)
			os.Exit(1)
		}
		variants = append(variants, v)
	}
	rep := harness.RunServerReplicas(cfg, *seed, variants)

	fmt.Printf("deterministic KV server: %d replicas × %d requests (seed %#x, %d worker threads, size %s)\n\n",
		len(rep.Runs), rep.Requests, rep.Seed, *threads, sz)
	fmt.Printf("%-22s %5s %18s %18s %12s %10s %10s | %8s %8s %8s %7s %6s\n",
		"replica", "procs", "state", "responses", "vtime", "req/s(v)", "req/s(w)",
		"tw-p50", "tw-p95", "tw-p99", "elided", "fallbk")
	for _, run := range rep.Runs {
		if run.Err != nil {
			fmt.Printf("%-22s %5d divergent-by-abort: %v\n", run.Variant, run.Procs, run.Err)
			continue
		}
		tw := "       -        -        -"
		if run.Phases != nil {
			pct := run.Phases.PhasePercentiles()[trace.PhaseTurnWait]
			tw = fmt.Sprintf("%7dns %7dns %7dns",
				pct.P50.Nanoseconds(), pct.P95.Nanoseconds(), pct.P99.Nanoseconds())
		}
		fmt.Printf("%-22s %5d %#018x %#018x %12d %10.0f %10.0f | %s %7d %6d\n",
			run.Variant, run.Procs,
			run.Summary.StateHash, run.Summary.ResponseHash,
			run.VirtualTime,
			run.ReqPerSecVirtual(rep.Requests), run.ReqPerSecHost(rep.Requests),
			tw, run.Stats.ElidedTurnWaits, run.Stats.RelaxUnsafeFallbacks)
	}

	if !rep.Divergent() {
		fmt.Println("\nverdict: REPLICAS AGREE — byte-identical state, responses and virtual time")
		if *injectAbort {
			fmt.Fprintln(os.Stderr, "rfdet-serve: -inject-abort expected a divergent-by-abort report")
			os.Exit(1)
		}
		return
	}
	fmt.Println()
	abortsOnly := true
	for _, d := range rep.Divergences {
		fmt.Printf("DIVERGED: %s\n", d)
		if !strings.Contains(d, "divergent-by-abort") {
			abortsOnly = false
		}
	}
	if *injectAbort && abortsOnly && len(rep.Divergences) == 1 {
		fmt.Println("\nverdict: injected abort reported as divergent-by-abort, clean replicas agree")
		return
	}
	fmt.Println("\nverdict: REPLICAS DIVERGED")
	os.Exit(1)
}
