// Command rfdet-run executes one benchmark workload on one runtime and
// prints the full execution report: observations, output hash, virtual and
// wall time, and the Table 1 profiling counters. With -trace (RFDet
// runtimes only) it also dumps the deterministic synchronization schedule —
// the event-level witness of determinism.
//
//	rfdet-run -workload ocean -runtime rfdet-ci -threads 4 -size small
//	rfdet-run -workload racey -runtime pthreads -repeat 5
//	rfdet-run -workload dedup -trace | head -50
//	rfdet-run -workload racey -racecheck
//	rfdet-run -workload ocean -relax-record ocean.profile
//	rfdet-run -workload ocean -relax-use ocean.profile
//
// -relax-record runs the workload twice under the happens-before race
// detector, stability-merges the recorded relaxation profiles and writes the
// result; -relax-use replays with race-aware ordering relaxation
// (Options.RaceRelaxed) driven by such a profile (DESIGN.md §15).
package main

import (
	"flag"
	"fmt"
	"os"

	"rfdet/internal/api"
	"rfdet/internal/core"
	"rfdet/internal/dthreads"
	"rfdet/internal/harness"
	"rfdet/internal/pthreads"
	racecheckpkg "rfdet/internal/racecheck"
	"rfdet/internal/workloads"
)

// recordRelaxProfile runs the workload twice under the race detector,
// stability-merges the two relaxation profiles and writes the encoding.
func recordRelaxProfile(path, workload string, opts core.Options, prog api.ThreadFunc) {
	p, err := harness.RecordRelaxProfile(opts, prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rfdet-run: %v\n", err)
		os.Exit(1)
	}
	p.Workload = workload
	if err := os.WriteFile(path, p.Encode(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "rfdet-run: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("relaxation profile of %s: %d thread-local sync vars (report hash %#016x, %d runs) written to %s\n",
		workload, len(p.Local), p.ReportHash, p.Runs, path)
}

func main() {
	workload := flag.String("workload", "ocean", "benchmark name (see Table 1) or racey")
	rtName := flag.String("runtime", "rfdet-ci", "rfdet-ci, rfdet-pf, dthreads, coredet or pthreads")
	threads := flag.Int("threads", 4, "worker thread count")
	size := flag.String("size", "small", "problem size: test, small or medium")
	repeat := flag.Int("repeat", 1, "number of executions (reports determinism across them)")
	trace := flag.Bool("trace", false, "dump the deterministic synchronization schedule (rfdet only)")
	racecheck := flag.Bool("racecheck", false, "run the happens-before race detector and print its report (rfdet only)")
	shards := flag.Int("shards", 0, "commit-monitor domain count, 0 = default, 1 = single global domain (rfdet only)")
	quantum := flag.Uint64("quantum", 50000, "coredet quantum in logical instructions")
	relaxRecord := flag.String("relax-record", "", "record a stability-merged relaxation profile to this file and exit (rfdet only)")
	relaxUse := flag.String("relax-use", "", "replay race-relaxed with the profile recorded by -relax-record (rfdet only)")
	flag.Parse()

	w, err := workloads.ByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var sz workloads.Size
	switch *size {
	case "test":
		sz = workloads.SizeTest
	case "small":
		sz = workloads.SizeSmall
	case "medium":
		sz = workloads.SizeMedium
	default:
		fmt.Fprintf(os.Stderr, "rfdet-run: unknown size %q\n", *size)
		os.Exit(2)
	}
	cfg := workloads.Config{Threads: *threads, Size: sz}

	var rt api.Runtime
	var traced *core.Runtime
	switch *rtName {
	case "rfdet-ci", "rfdet-pf":
		opts := core.DefaultOptions()
		if *rtName == "rfdet-pf" {
			opts.Monitor = core.MonitorPF
		}
		opts.Trace = *trace
		opts.RaceDetect = *racecheck
		opts.ShardCount = *shards
		if *relaxRecord != "" {
			recordRelaxProfile(*relaxRecord, *workload, opts, w.Prog(cfg))
			return
		}
		if *relaxUse != "" {
			f, err := os.Open(*relaxUse)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rfdet-run: %v\n", err)
				os.Exit(1)
			}
			p, err := racecheckpkg.DecodeProfile(f)
			f.Close()
			if err != nil {
				fmt.Fprintf(os.Stderr, "rfdet-run: %s: %v\n", *relaxUse, err)
				os.Exit(1)
			}
			opts.RaceRelaxed = true
			opts.RelaxProfile = p
		}
		traced = core.New(opts)
		rt = traced
	case "dthreads":
		rt = dthreads.New()
	case "coredet":
		rt = dthreads.NewQuantum(*quantum)
	case "pthreads":
		rt = pthreads.New()
	default:
		fmt.Fprintf(os.Stderr, "rfdet-run: unknown runtime %q\n", *rtName)
		os.Exit(2)
	}
	if *trace && traced == nil {
		fmt.Fprintln(os.Stderr, "rfdet-run: -trace requires an rfdet runtime")
		os.Exit(2)
	}
	if *racecheck && traced == nil {
		fmt.Fprintln(os.Stderr, "rfdet-run: -racecheck requires an rfdet runtime")
		os.Exit(2)
	}
	if *shards != 0 && traced == nil {
		fmt.Fprintln(os.Stderr, "rfdet-run: -shards requires an rfdet runtime")
		os.Exit(2)
	}
	if (*relaxRecord != "" || *relaxUse != "") && traced == nil {
		fmt.Fprintln(os.Stderr, "rfdet-run: -relax-record/-relax-use require an rfdet runtime")
		os.Exit(2)
	}

	hashes := map[uint64]int{}
	for i := 0; i < *repeat; i++ {
		var rep *api.Report
		var tr *core.Trace
		var err error
		if traced != nil {
			rep, tr, err = traced.RunTraced(w.Prog(cfg))
		} else {
			rep, err = rt.Run(w.Prog(cfg))
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rfdet-run: %v\n", err)
			os.Exit(1)
		}
		hashes[rep.OutputHash]++
		if i == 0 {
			printReport(rt.Name(), w.Name, cfg, rep)
			if rep.Races != nil {
				fmt.Printf("\nhappens-before race report (deterministic; hash %#016x):\n", rep.Races.Hash())
				fmt.Print(rep.Races.String())
			}
			if tr != nil {
				fmt.Printf("\ndeterministic schedule (%d events):\n", len(tr.Lines))
				if _, err := tr.WriteTo(os.Stdout); err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
			}
		}
	}
	if *repeat > 1 {
		fmt.Printf("\n%d executions, %d distinct output hash(es)\n", *repeat, len(hashes))
	}
}

func printReport(runtime, workload string, cfg workloads.Config, rep *api.Report) {
	fmt.Printf("%s on %s (%d threads, size %s)\n", workload, runtime, cfg.Threads, cfg.Size)
	fmt.Printf("  output hash:   %#016x\n", rep.OutputHash)
	fmt.Printf("  observations:  %v\n", rep.Observations[0])
	fmt.Printf("  virtual time:  %d ns (modeled makespan)\n", rep.VirtualTime)
	fmt.Printf("  wall time:     %v\n", rep.Elapsed)
	fmt.Printf("  threads:       %d\n", rep.Threads)
	s := rep.Stats
	fmt.Printf("  sync ops:      lock/unlock %d/%d, wait/signal %d/%d, fork/join %d/%d, barrier %d, atomic %d\n",
		s.Locks, s.Unlocks, s.Waits, s.Signals, s.Forks, s.Joins, s.Barriers, s.AtomicsOps)
	fmt.Printf("  memory ops:    %d (%d loads, %d stores, %d with page copy)\n",
		s.MemOps(), s.Loads, s.Stores, s.StoresWithCopy)
	fmt.Printf("  memory:        shared %d KB, runtime %d KB, metadata %d KB of %d KB (GC passes: %d)\n",
		s.SharedMemBytes/1024, s.RuntimeMemBytes/1024, s.MetadataBytes/1024, s.MetadataCapacity/1024, s.GCCount)
	if s.SlicesCreated > 0 {
		fmt.Printf("  slices:        %d created, %d merged away, %d propagated (%d+%d filtered), %d KB moved\n",
			s.SlicesCreated, s.SlicesMerged, s.SlicesPropagated,
			s.SlicesFilteredLow, s.SlicesFilteredPremerged, s.BytesPropagated/1024)
	}
	if s.LazyPendingApplied > 0 || s.LazyRunsElided > 0 {
		fmt.Printf("  lazy writes:   %d pended runs applied on access, %d coalesced away untouched\n",
			s.LazyPendingApplied, s.LazyRunsElided)
	}
	if s.DirtyExtents > 0 {
		fmt.Printf("  dirty extents: %d consumed; diffs scanned %d KB, skipped %d KB\n",
			s.DirtyExtents, s.DiffBytesScanned/1024, s.DiffBytesSkipped/1024)
	}
	if s.ArenaBytesInterned > 0 {
		fmt.Printf("  arena intern:  %d KB of slice payload copied into epoch segments\n",
			s.ArenaBytesInterned/1024)
	}
	if s.RaceRecords > 0 {
		fmt.Printf("  race detect:   %d access records, %d KB of harvested read sets\n",
			s.RaceRecords, s.RaceReadBytes/1024)
	}
	if s.PageFaults > 0 || s.PageProtects > 0 {
		fmt.Printf("  protection:    %d faults, %d page protects\n", s.PageFaults, s.PageProtects)
	}
	fmt.Printf("  monitor:       %d acquires across %d domains; %d stamped releases, %d cross-domain acquires, %d rendezvous\n",
		s.MonitorAcquires, s.MonitorShards, s.ShardReleases, s.CrossShardAcquires, s.RendezvousOps)
	if s.ElidedTurnWaits > 0 || s.SkippedSliceApplies > 0 || s.RelaxUnsafeFallbacks > 0 {
		fmt.Printf("  relaxation:    %d turn-waits elided, %d slice applies skipped (%d B), %d unsafe fallbacks\n",
			s.ElidedTurnWaits, s.SkippedSliceApplies, s.BytesElided, s.RelaxUnsafeFallbacks)
	}
}
