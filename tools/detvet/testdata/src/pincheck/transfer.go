package pincheck

// Ownership transfer ends tracking: returning the resource, storing it into
// a field or composite literal, sending it on a channel, passing it to a
// callee, or capturing it in a closure all hand the release obligation on.

type wakeEvent struct {
	pin Pin
}

type holder struct {
	p Pin
}

func consume(p Pin) {}

func transferReturn(s *store) Pin {
	p := s.Pin()
	return p
}

func transferField(s *store, h *holder) {
	p := s.Pin()
	h.p = p
}

func transferComposite(s *store, ch chan wakeEvent) {
	p := s.Pin()
	ch <- wakeEvent{pin: p}
}

func transferCall(s *store) {
	p := s.Pin()
	consume(p)
}

func transferClosure(s *store) func() {
	p := s.Pin()
	return func() { p.Release() }
}

func fieldReadIsNotTransfer(s *store) uint64 {
	p := s.Pin() // want "may still be live"
	return p.id
}

func suppressedLeak(s *store) {
	//detvet:pincheck pin parked deliberately; the scheduler releases it
	p := s.Pin()
	_ = p.id
}
