package pincheck

// Local analogs of the runtime's three paired resources: epoch pins
// (slicestore.Pin), arena chunks (alloc.ChunkPool) and plan page buffers
// (mem's pageBufPool). pincheck matches them by name so the fixture can
// stand in for the real packages.

type Pin struct {
	id uint64
}

func (p Pin) Release() {}

type store struct{}

func (s *store) Pin() Pin { return Pin{id: 1} }

type ChunkPool struct{}

func (c *ChunkPool) Get() []byte  { return nil }
func (c *ChunkPool) Put(b []byte) {}

func getPageBuf() []byte  { return make([]byte, 4096) }
func putPageBuf(b []byte) {}

func work() {}

// --- balanced paths: no diagnostics ---

func balanced(s *store) {
	p := s.Pin()
	work()
	p.Release()
}

func balancedDefer(s *store) {
	p := s.Pin()
	defer p.Release()
	work()
}

func balancedBothBranches(s *store, cond bool) {
	p := s.Pin()
	if cond {
		p.Release()
		return
	}
	p.Release()
}

func loopBalanced(s *store, n int) {
	for i := 0; i < n; i++ {
		p := s.Pin()
		p.Release()
	}
}

func chunkBalanced(pool *ChunkPool) {
	c := pool.Get()
	defer pool.Put(c)
	work()
}

func pageBufBalanced() {
	b := getPageBuf()
	putPageBuf(b)
}

// --- leaks ---

func leakEarlyReturn(s *store, cond bool) {
	p := s.Pin() // want "may still be live at this return"
	if cond {
		return
	}
	p.Release()
}

func leakFallOff(s *store) {
	p := s.Pin() // want "may still be live at the end of leakFallOff"
	_ = p.id
}

func leakOneBranch(s *store, cond bool) {
	p := s.Pin() // want "may still be live"
	if cond {
		p.Release()
	}
}

func chunkLeak(pool *ChunkPool, n int) {
	c := pool.Get() // want "may still be live"
	if n > 0 {
		pool.Put(c)
	}
}

func pageBufLeak(cond bool) {
	b := getPageBuf() // want "may still be live"
	if cond {
		return
	}
	putPageBuf(b)
}

func discarded(s *store) {
	s.Pin() // want "result of this call is discarded"
}

func blanked(s *store) {
	_ = s.Pin() // want "never released"
}

func reassigned(s *store) {
	p := s.Pin()
	p = s.Pin() // want "reassignment of p while the previous epoch pin"
	p.Release()
}
