package pincheck

// Explicit panic statements are unwind exits: only a deferred release
// survives them. This models the deterministic abort path, which unwinds
// through panic(errAborted).

func panicLeak(s *store, bad bool) {
	p := s.Pin() // want "may still be live at this panic"
	if bad {
		panic("abort")
	}
	p.Release()
}

func panicSafe(s *store, bad bool) {
	p := s.Pin()
	defer p.Release()
	if bad {
		panic("abort")
	}
}
