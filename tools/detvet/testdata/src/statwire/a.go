package statwire

// The fixture package plays every role the real repo splits across
// packages: it declares the Stats struct (api), increments counters (core),
// surfaces them (harness/cmd), and emits phase-trace marks (core). The test
// runner points all of statwire's configured package paths here.

// Stats is the fixture's observability contract.
type Stats struct {
	Wired       int64
	NeverBumped int64 // want "never incremented"
	NeverShown  int64 // want "never surfaced"
	MarkedGood  int64 //detvet:mark phase-a
	MarkedBad   int64 //detvet:mark phase-z // want "no call in statwire emits that mark string"
	Parked      int64 //detvet:statwire kept for report-format compatibility
}

// Add aggregates another Stats into s. Writes and reads inside Stats
// methods prove nothing: Add touches every field by construction.
func (s *Stats) Add(o *Stats) {
	s.Wired += o.Wired
	s.NeverBumped += o.NeverBumped
	s.NeverShown += o.NeverShown
	s.MarkedGood += o.MarkedGood
	s.MarkedBad += o.MarkedBad
	s.Parked += o.Parked
}

// bump is the "runtime" incrementing its counters.
func bump(s *Stats) {
	s.Wired++
	s.NeverShown++
	s.MarkedGood += 2
	s.MarkedBad++
}

// show is the "harness" surfacing counters in a report table.
func show(s *Stats) int64 {
	return s.Wired + s.NeverBumped + s.MarkedGood + s.MarkedBad
}

// markPhaseA is the trace mark MarkedGood is linked to; emit passes it to a
// call, which is what "emitted" means to statwire. No call anywhere takes
// "phase-z", so MarkedBad's link is broken.
const markPhaseA = "phase-a"

func emit(name string) {}

func tracePhases() {
	emit(markPhaseA)
}
