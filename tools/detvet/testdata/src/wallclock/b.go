package a

import (
	//detvet:wallclock annotated import: baseline noise source.
	mrand "math/rand"
)

func jitter() int {
	return mrand.Intn(10) // want "use of mrand.Intn"
}
