// Fixture for the wallclock analyzer.
package a

import (
	"math/rand" // want "import of math/rand"
	"time"
)

func now() int64 {
	return time.Now().UnixNano() // want "wall-clock read time.Now"
}

func since(t0 time.Time) time.Duration {
	return time.Since(t0) // want "wall-clock read time.Since"
}

func sleepIsFine() {
	time.Sleep(time.Millisecond)
}

func seeded() *rand.Rand { // want "use of rand.Rand"
	//detvet:wallclock intentional jitter for the nondeterministic baseline.
	return rand.New(rand.NewSource(1))
}
