// Fixture for the maporder analyzer: positive findings carry // want
// comments; everything else must come out clean.
package a

import "sort"

type byID map[int]string

func plain(s byID) {
	for k, v := range s { // want "nondeterministic iteration over map s"
		_, _ = k, v
	}
}

func deleteOnly(s map[int]string) {
	for k := range s {
		delete(s, k)
	}
}

func deleteOther(s, t map[int]string) {
	for k := range s { // want "nondeterministic iteration over map s"
		delete(t, k)
	}
}

func collectSort(s map[int]string) []int {
	keys := make([]int, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func collectSortSlice(s map[int]string) []int {
	var keys []int
	for k := range s {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func collectNoSort(s map[int]string) []int {
	var keys []int
	for k := range s { // want "nondeterministic iteration over map s"
		keys = append(keys, k)
	}
	return keys
}

func annotatedAbove(s map[int]string) int {
	n := 0
	//detvet:orderfree summing lengths is commutative.
	for _, v := range s {
		n += len(v)
	}
	return n
}

func annotatedSameLine(s map[int]string) int {
	n := 0
	for range s { //detvet:orderfree counting is commutative.
		n++
	}
	return n
}

func bare(s map[int]bool) {
	//detvet:orderfree // want "annotation requires a justification"
	for k := range s { // want "nondeterministic iteration over map s"
		_ = k
	}
}

func sliceRangeIsFine(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}
