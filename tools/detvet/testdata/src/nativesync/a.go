// Fixture for the nativesync analyzer.
package a

import "sync"

type guarded struct {
	mu sync.Mutex // want "native synchronization sync.Mutex"
	n  int
}

func spawn(f func()) {
	go f() // want "go statement"
}

func fanout(f func()) {
	var wg sync.WaitGroup //detvet:nativesync joins the audited helper below.
	wg.Add(1)
	//detvet:nativesync helper goroutine; completion is ordered by wg.Wait.
	go func() {
		defer wg.Done()
		f()
	}()
	wg.Wait()
}

func channels() int {
	ch := make(chan int, 1) // want "channel creation"
	ch <- 1                 // want "channel send"
	n := <-ch               // want "channel receive"
	close(ch)               // want "channel close"
	return n
}

func drain(ch chan int) int {
	n := 0
	for v := range ch { // want "channel range"
		n += v
	}
	return n
}

func selectSend(ch chan int) bool {
	//detvet:nativesync non-blocking probe; the annotation covers the whole select.
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

//detvet:nativesync the audited wake-mailbox pattern: one buffered slot per thread.
func mailbox() chan struct{} {
	return make(chan struct{}, 1)
}
