package lockcheck

import "sync"

// table exercises RWMutex semantics: RLock satisfies reads of a guarded
// field but not writes.
type table struct {
	rw   sync.RWMutex   //detvet:lockorder 20
	rows map[string]int //detvet:guardedby rw
}

func readShared(t *table, k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.rows[k]
}

func writeExclusive(t *table, k string) {
	t.rw.Lock()
	t.rows[k] = 1
	t.rw.Unlock()
}

func writeUnderRLock(t *table, k string) {
	t.rw.RLock()
	t.rows[k] = 1 // want "write of t.rows without holding rw"
	t.rw.RUnlock()
}

func readUnlocked(t *table, k string) int {
	return t.rows[k] // want "read of t.rows without holding rw"
}
