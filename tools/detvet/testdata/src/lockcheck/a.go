package lockcheck

import "sync"

// counter exercises the core guardedby discipline: the paragraph rule, the
// must-hold lattice over straight-line code, branches and defers, and the
// //detvet:lockcheck suppression escape hatch.
type counter struct {
	mu sync.Mutex //detvet:lockorder 10
	n  int        //detvet:guardedby mu
	m  int        // want "shares a declaration paragraph with mutex mu"

	loose int // its own paragraph: no annotation required
}

func lockedWrite(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func lockedReadDefer(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func unlockedWrite(c *counter) {
	c.n++ // want "write of c.n without holding mu"
}

func unlockedRead(c *counter) int {
	return c.n // want "read of c.n without holding mu"
}

func earlyReturn(c *counter, skip bool) {
	c.mu.Lock()
	if skip {
		c.mu.Unlock()
		return
	}
	c.n = 1
	c.mu.Unlock()
}

func branchyUnlock(c *counter, p bool) {
	c.mu.Lock()
	if p {
		c.mu.Unlock()
	} else {
		c.mu.Unlock()
	}
	c.n = 2 // want "write of c.n without holding mu"
}

func loopBalanced(c *counter, n int) {
	for i := 0; i < n; i++ {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}

func leaky(c *counter) {
	c.mu.Lock() // want "may still be held when leaky returns"
	c.n = 3
}

func doubleLock(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.Lock() // want "second acquisition"
	c.n++
}

func unlockNotHeld(c *counter) {
	c.mu.Unlock() // want "not provably held"
}

func fresh() *counter {
	c := &counter{}
	c.n = 5 // freshly constructed: still thread-local, no lock needed
	return c
}

func suppressed(c *counter) int {
	//detvet:lockcheck single-threaded teardown, all workers joined
	return c.n
}

func deferredFuncLit(c *counter) {
	c.mu.Lock()
	defer func() {
		c.mu.Unlock()
	}()
	c.n++
}

// panicUnwind mirrors relockShard's abort path: the explicit panic
// terminates its branch, so only the locked fall-through reaches the
// exit-balance check and the acquires annotation is satisfied.
//
//detvet:acquires c.mu
func panicUnwind(c *counter, abort bool) {
	c.mu.Lock()
	if abort {
		c.mu.Unlock()
		panic("abort")
	}
}

func panicLeaves(c *counter) {
	c.mu.Lock()
	c.n++
	panic("crash") // locks held at an explicit panic are not reported
}
