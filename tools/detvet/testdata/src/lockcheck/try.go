package lockcheck

// TryLock is branch-sensitive: the lock is held only where the call
// returned true, through direct conditions, bound results and negations.

func tryDirect(c *counter) {
	if c.mu.TryLock() {
		c.n++
		c.mu.Unlock()
	}
}

func tryBound(c *counter) {
	ok := c.mu.TryLock()
	if ok {
		c.n++
		c.mu.Unlock()
	}
}

func tryNegated(c *counter) {
	if !c.mu.TryLock() {
		return
	}
	c.n++
	c.mu.Unlock()
}

func tryFailureBranch(c *counter) {
	if !c.mu.TryLock() {
		c.n++ // want "write of c.n without holding mu"
		return
	}
	c.mu.Unlock()
}

func tryWithoutBranch(c *counter) {
	c.mu.TryLock()
	c.n++ // want "write of c.n without holding mu"
}
