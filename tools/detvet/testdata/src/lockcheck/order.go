package lockcheck

import "sync"

// The //detvet:lockorder ranks form a global acquisition order; acquiring a
// lower rank while holding a higher one is an inversion.

type outer struct {
	mu sync.Mutex //detvet:lockorder 30
	x  int        //detvet:guardedby mu
}

type inner struct {
	mu sync.Mutex //detvet:lockorder 40
	y  int        //detvet:guardedby mu
}

func ordered(o *outer, i *inner) {
	o.mu.Lock()
	i.mu.Lock()
	i.y = o.x
	i.mu.Unlock()
	o.mu.Unlock()
}

func inverted(o *outer, i *inner) {
	i.mu.Lock()
	o.mu.Lock() // want "lock-order inversion: acquiring outer.mu .rank 30. while holding inner.mu .rank 40."
	o.x = i.y
	o.mu.Unlock()
	i.mu.Unlock()
}

func sameClassPair(a, b *inner) {
	// Same-rank re-acquisition across distinct instances is allowed (the
	// monitor takes its domains in ascending shard-id order at runtime).
	a.mu.Lock()
	b.mu.Lock()
	b.y = a.y
	b.mu.Unlock()
	a.mu.Unlock()
}
