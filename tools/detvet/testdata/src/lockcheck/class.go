package lockcheck

import "sync"

// Class-form guardedby (Type.field) covers state whose guard lives in
// another struct: any held instance of that mutex class satisfies the
// access, the way syncVar state is guarded by whichever monitor domain owns
// it.

type registry struct {
	mu      sync.Mutex //detvet:lockorder 60
	entries []*entry   //detvet:guardedby mu
}

type entry struct {
	// val is owned by the registry that holds this entry.
	val int //detvet:guardedby registry.mu
}

func readEntry(r *registry, i int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[i].val
}

func writeEntry(r *registry, e *entry) {
	r.mu.Lock()
	e.val = 7
	r.mu.Unlock()
}

func strayEntryRead(e *entry) int {
	return e.val // want "read of e.val without holding registry.mu"
}
