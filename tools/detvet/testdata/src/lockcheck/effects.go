package lockcheck

import "sync"

// Function-effect annotations cross call boundaries: holds is a call-site
// precondition, acquires/releases transfer the lock in and out of helper
// functions, and the * wildcard models dynamic lock sets (the global
// rendezvous).

type shard struct {
	mu    sync.Mutex //detvet:lockorder 50
	items []int      //detvet:guardedby mu
}

// fillLocked appends under the caller's lock.
//
//detvet:holds sh.mu
func fillLocked(sh *shard, v int) {
	sh.items = append(sh.items, v)
}

// lockShard hands the locked shard back to the caller.
//
//detvet:acquires sh.mu
func lockShard(sh *shard) {
	sh.mu.Lock()
}

// unlockShard releases a shard locked by lockShard.
//
//detvet:releases sh.mu
func unlockShard(sh *shard) {
	sh.mu.Unlock()
}

func callsHelperLocked(sh *shard) {
	sh.mu.Lock()
	fillLocked(sh, 1)
	sh.mu.Unlock()
}

func callsHelperUnlocked(sh *shard) {
	fillLocked(sh, 2) // want "requires shard.mu held"
}

func usesAcquireRelease(sh *shard) {
	lockShard(sh)
	sh.items = nil
	unlockShard(sh)
}

func forgetsRelease(sh *shard) {
	lockShard(sh) // want "may still be held when forgetsRelease returns"
	sh.items = nil
}

// lockAll models the global rendezvous: it acquires a dynamic set of locks
// the analyzer cannot name individually.
//
//detvet:acquires *
func lockAll(sh *shard) {
	sh.mu.Lock()
}

// unlockAll releases everything lockAll took.
//
//detvet:releases *
func unlockAll(sh *shard) {
	sh.mu.Unlock()
}

func rendezvous(sh *shard) int {
	lockAll(sh)
	n := len(sh.items)
	unlockAll(sh)
	return n
}

// aliasLock binds the lock through a local alias; the canonical key must
// match the direct spelling.
func aliasLock(sh *shard) {
	m := &sh.mu
	m.Lock()
	sh.items = append(sh.items, 3)
	m.Unlock()
}
