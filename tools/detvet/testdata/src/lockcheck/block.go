package lockcheck

import "sync"

// Blocking while holding an annotated mutex deadlocks the turn protocol:
// channel ops, selects without default, sync.Cond.Wait/WaitGroup.Wait, and
// calls annotated //detvet:blocks are all flagged.

func sendWhileHeld(c *counter, ch chan int) {
	c.mu.Lock()
	ch <- 1 // want "channel send while holding"
	c.mu.Unlock()
}

func sendClean(c *counter, ch chan int) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	ch <- c.loose
}

func recvWhileHeld(c *counter, ch chan int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return <-ch // want "channel receive while holding"
}

func selectWhileHeld(c *counter, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want "select without default while holding"
	case <-ch:
	}
}

func selectNonblocking(c *counter, ch chan int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-ch:
	default:
	}
}

func condWaitWhileHeld(c *counter, cond *sync.Cond) {
	c.mu.Lock()
	cond.Wait() // want "while holding"
	c.mu.Unlock()
}

// waitTurn models a blocking runtime entry point (kendo.WaitForTurn).
//
//detvet:blocks
func waitTurn() {}

func blockingCallWhileHeld(c *counter) {
	c.mu.Lock()
	waitTurn() // want "while holding"
	c.mu.Unlock()
}

func blockingCallClean(c *counter) {
	waitTurn()
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}
