package main

import (
	"go/ast"
	"go/types"
)

// maporder flags `for … range` over a map in the deterministic packages.
// Go rerandomizes map iteration order on every range statement, so any
// computation that observes the order is nondeterministic by construction.
//
// Three shapes are allowed without annotation because order provably does
// not escape:
//
//   - delete-only bodies: every statement is delete(m, k) on the ranged map
//     (the idiomatic compiler-optimized map clear);
//   - collect-then-sort: the body only appends keys/values to slices that
//     the same function later passes to a sort.*/slices.* call;
//   - loops annotated //detvet:orderfree <justification>, which is the
//     contract that the body commutes (backed by a commuting-order test).
var maporder = &Analyzer{
	Name:       "maporder",
	Doc:        "flag nondeterministic map iteration in the deterministic packages",
	Annotation: "orderfree",
	Restrict: []string{
		"rfdet/internal/core",
		"rfdet/internal/mem",
		"rfdet/internal/slicestore",
	},
	Run: runMaporder,
}

func runMaporder(pass *Pass) {
	for _, f := range pass.sourceFiles() {
		// Collect function bodies so collect-then-sort can look for the
		// sort call that follows the loop in the same function.
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if deleteOnlyBody(pass.Info, rs) {
				return true
			}
			if collectThenSort(pass, rs, enclosingFunc(stack)) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"nondeterministic iteration over map %s: sort the keys before use, or annotate //detvet:orderfree with a justification and a commuting-order test",
				types.ExprString(rs.X))
			return true
		})
	}
}

// enclosingFunc returns the innermost function body on the inspection stack.
func enclosingFunc(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// deleteOnlyBody reports whether every statement of the range body is
// delete(m, …) on the ranged map itself.
func deleteOnlyBody(info *types.Info, rs *ast.RangeStmt) bool {
	if len(rs.Body.List) == 0 {
		return false
	}
	ranged := types.ExprString(rs.X)
	for _, stmt := range rs.Body.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || !isBuiltin(info, call, "delete") || len(call.Args) != 2 {
			return false
		}
		if types.ExprString(call.Args[0]) != ranged {
			return false
		}
	}
	return true
}

// collectThenSort reports whether the range body only appends to local
// slices that are sorted later in the enclosing function: the map order is
// destroyed before any use.
func collectThenSort(pass *Pass, rs *ast.RangeStmt, fn *ast.BlockStmt) bool {
	if fn == nil || len(rs.Body.List) == 0 {
		return false
	}
	// Every body statement must be `x = append(x, …)`.
	targets := map[string]bool{}
	for _, stmt := range rs.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isBuiltin(pass.Info, call, "append") {
			return false
		}
		targets[lhs.Name] = true
	}
	// A sort.*/slices.* call after the loop must mention every target.
	sorted := map[string]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn := pkgName(pass.Info, pkgID)
		if pn == nil {
			return true
		}
		if path := pn.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && targets[id.Name] {
					sorted[id.Name] = true
				}
				return true
			})
		}
		return true
	})
	return len(sorted) == len(targets)
}
