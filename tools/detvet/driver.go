package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// modulePath is the import-path prefix of the packages detvet loads from
// source in standalone mode. Everything else (std, nothing else exists — the
// repo takes no external dependencies) is imported from the export data the
// go command produces for `go list -export`.
const modulePath = "rfdet"

// listPackage is the subset of `go list -json` output the driver consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
}

// jsonDiagnostic is one finding in -json output, sorted by position.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// runStandalone loads the packages matching patterns (default ./...) with
// one shared FileSet and type-check universe, runs the per-package analyzer
// suite on every module package, then — when the patterns cover the whole
// module — the whole-program statwire pass, and prints the findings. Exits 0 when clean, 2 on findings — the same contract
// as vet mode, so CI can gate on either.
//
// The load path is `go list -deps -export -json`, which hands back
// dependency-ordered packages plus compiled export data straight from the
// go build cache: repeat runs re-typecheck only the module's own sources,
// which keeps the full-repo sweep inside the CI lint budget.
func runStandalone(patterns []string, jsonOut bool) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(patterns)
	if err != nil {
		log.Fatal(err)
	}

	fset := token.NewFileSet()
	srcPkgs := map[string]*types.Package{}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	gcImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if pkg, ok := srcPkgs[path]; ok {
			return pkg, nil
		}
		return gcImporter.Import(path)
	})
	tc := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}

	// Type-check the module's packages from source, in the dependency order
	// go list already established, and build the analyzer passes.
	var diags []jsonDiagnostic
	var statPasses []*Pass
	for _, p := range pkgs {
		if p.Standard || !isModulePkg(p.ImportPath) {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				log.Fatal(err)
			}
			files = append(files, f)
		}
		info := newInfo()
		pkg, err := tc.Check(p.ImportPath, fset, files, info)
		if err != nil {
			log.Fatal(err)
		}
		srcPkgs[p.ImportPath] = pkg

		for _, d := range analyze(fset, files, pkg, info, p.ImportPath) {
			diags = append(diags, toJSON(fset, d, analyzerFor(d)))
		}
		// A parallel pass carries statwire's own suppression intervals.
		sp := &Pass{Analyzer: statwire, Fset: fset, Files: files, Pkg: pkg, Info: info, PkgPath: p.ImportPath}
		sp.prepareAnnotations()
		statPasses = append(statPasses, sp)
	}

	// statwire's claims — "incremented somewhere", "surfaced somewhere" —
	// only hold when "somewhere" spans the whole module. On a partial load
	// like ./internal/core the incrementing and surfacing packages are
	// simply absent, and every finding would be a false positive, so the
	// pass runs only when the patterns cover the full module tree.
	if coversModule(patterns) {
		runStatwire(statPasses, defaultStatwireConfig())
	}
	for _, sp := range statPasses {
		for _, d := range sp.diags {
			diags = append(diags, toJSON(fset, d, statwire.Name))
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})

	if jsonOut {
		if diags == nil {
			diags = []jsonDiagnostic{} // a clean tree encodes as [], not null
		}
		out, err := json.MarshalIndent(diags, "", "\t")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(append(out, '\n'))
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func isModulePkg(path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}

// coversModule reports whether the pattern set loads every module package,
// which is what makes the whole-program statwire pass meaningful.
func coversModule(patterns []string) bool {
	for _, p := range patterns {
		if p == "./..." || p == "all" || p == modulePath+"/..." {
			return true
		}
	}
	return false
}

// diagAnalyzer maps findings back to the analyzer that produced them:
// analyze() flattens per-analyzer findings into one slice (vet mode wants
// exactly that), so it records attribution on the side for -json output.
type diagKey struct {
	pos token.Pos
	msg string
}

var diagAnalyzer = map[diagKey]string{}

func recordAttribution(a *Analyzer, ds []Diagnostic) {
	for _, d := range ds {
		diagAnalyzer[diagKey{d.Pos, d.Message}] = a.Name
	}
}

func analyzerFor(d Diagnostic) string {
	if name, ok := diagAnalyzer[diagKey{d.Pos, d.Message}]; ok {
		return name
	}
	return "detvet"
}

func toJSON(fset *token.FileSet, d Diagnostic, analyzer string) jsonDiagnostic {
	pos := fset.Position(d.Pos)
	file := pos.Filename
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	return jsonDiagnostic{File: file, Line: pos.Line, Col: pos.Column, Analyzer: analyzer, Message: d.Message}
}

// goList runs `go list -deps -export -json` and decodes the package stream.
func goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,Standard,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list failed: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
