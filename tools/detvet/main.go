package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"runtime"
	"strings"
)

// analyzers is the per-package determinism suite, in report order. The
// whole-program statwire analyzer is not in this list: it needs every
// package at once and runs only in standalone mode (see driver.go).
var analyzers = []*Analyzer{maporder, wallclock, nativesync, lockcheck, pincheck}

// main runs in one of two modes.
//
// As a go vet tool it speaks go vet's -vettool protocol (the x/tools
// unitchecker protocol, reimplemented here because the repo takes no
// external dependencies):
//
//   - `detvet -flags` prints the supported flags as JSON, so the go command
//     knows which of its vet flags to forward (none).
//   - `detvet -V=full` prints a content-hashed version line the go command
//     uses as the tool's build cache key.
//   - `detvet <dir>/vet.cfg` analyzes one package described by the config
//     the go command wrote, prints findings to stderr and exits nonzero if
//     there were any.
//
// Given package patterns instead of a vet.cfg (`go run ./tools/detvet
// ./...`), it loads the whole repo itself via `go list -deps -export`,
// runs the per-package suite on every rfdet package, and additionally runs
// the whole-program statwire analyzer. -json switches the standalone
// diagnostics to machine-readable output for the `rfdet-bench lint` smoke.
func main() {
	log.SetFlags(0)
	log.SetPrefix("detvet: ")

	printflags := flag.Bool("flags", false, "print flags in JSON format and exit")
	jsonOut := flag.Bool("json", false, "standalone mode: print diagnostics as JSON on stdout")
	flag.Var(versionFlag{}, "V", "print version and exit (-V=full)")
	flag.Parse()

	if *printflags {
		printFlags()
		os.Exit(0)
	}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runConfig(args[0])
		return
	}
	runStandalone(args, *jsonOut)
}

// versionFlag implements -V=full: the go command hashes the output into the
// action ID that keys its vet result cache, so the version must change
// whenever the binary does — hash the binary itself.
type versionFlag struct{}

func (versionFlag) String() string   { return "" }
func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("detvet version devel buildID=%x\n", h.Sum(nil))
	os.Exit(0)
	return nil
}

// printFlags emits the flag inventory in the JSON shape the go command
// expects from a vet tool.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var flags []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// Config is the per-package analysis configuration the go command writes to
// <objdir>/vet.cfg (the fields detvet consumes; unknown fields are ignored).
type Config struct {
	ID                        string // package ID, e.g. "fmt [fmt.test]"
	Compiler                  string // "gc"
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string // import path -> canonical path
	PackageFile               map[string]string // canonical path -> export data file
	Standard                  map[string]bool
	VetxOnly                  bool   // facts requested for a dependency; no diagnostics
	VetxOutput                string // where to write the (empty) facts file
	SucceedOnTypecheckFailure bool   // exit 0 silently on type errors (go vet std behavior)
}

func runConfig(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			typecheckFailed(cfg, err)
		}
		files = append(files, f)
	}

	// Type-check against the export data the go command already built for
	// every dependency (PackageFile), resolving vendored/test import paths
	// through ImportMap first.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
	}
	info := newInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		typecheckFailed(cfg, err)
	}

	diags := analyze(fset, files, pkg, info, strippedPath(cfg.ImportPath))
	writeVetx(cfg)
	if cfg.VetxOnly || len(diags) == 0 {
		os.Exit(0)
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	os.Exit(2)
}

// analyze runs every applicable analyzer over one type-checked package and
// returns the findings in deterministic (analyzer, position) order.
func analyze(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, pkgPath string) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if !a.applies(pkgPath) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			PkgPath:  pkgPath,
		}
		pass.prepareAnnotations()
		a.Run(pass)
		recordAttribution(a, pass.diags)
		diags = append(diags, pass.diags...)
	}
	return diags
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// strippedPath removes the " [pkg.test]" suffix go vet appends to the
// import path of test-augmented package variants, so package allowlists
// match both the plain and the test build of a package.
func strippedPath(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// typecheckFailed handles parse/type errors: go vet sets
// SucceedOnTypecheckFailure when the compiler itself will report the error,
// in which case vet tools must stay silent and succeed.
func typecheckFailed(cfg *Config, err error) {
	if cfg.SucceedOnTypecheckFailure {
		writeVetx(cfg)
		os.Exit(0)
	}
	log.Fatal(err)
}

// writeVetx writes the facts file the go command expects every vet tool to
// produce. detvet exports no facts, but the file must exist for the result
// to be cached.
func writeVetx(cfg *Config) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, nil, 0666); err != nil {
		log.Fatal(err)
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
