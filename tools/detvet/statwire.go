package main

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// statwire is the whole-program stats-wiring analyzer (DESIGN.md §17). The
// api.Stats struct is the runtime's observability contract: every counter in
// it claims to describe something the runtime did. A counter nobody
// increments reports zero forever; a counter nobody prints is write-only
// noise. Both are silently dead code that a per-package analyzer cannot see,
// so statwire runs only in detvet's standalone whole-repo mode
// (`go run ./tools/detvet ./...`), where every package is loaded together.
//
// For each numeric field of the Stats struct it checks:
//
//  1. incremented: some package writes the field (assignment, op-assign or
//     ++/--) outside methods of Stats itself — Stats.Add touches every
//     field, so writes inside Stats methods prove nothing;
//  2. surfaced: some surface package (the harness or a cmd/ binary) reads
//     the field, so the counter reaches a report table;
//  3. mark-linked: a field annotated //detvet:mark <name> must correspond
//     to a phase-trace mark actually emitted in internal/core — some call
//     there must take the mark string (as a literal or named constant), so
//     the counter and its trace mark cannot drift apart.
//
// A deliberately unwired field (kept for report-format compatibility, or
// populated only by Add aggregation) is annotated //detvet:statwire <why>.
var statwire = &Analyzer{
	Name: "statwire",
	Doc:  "verify every api.Stats counter is incremented, surfaced, and mark-consistent",
}

// statwireConfig tells the global pass which packages play which roles. The
// fixture runner points every role at the fixture package.
type statwireConfig struct {
	statsPkg    string   // package declaring the Stats struct
	statsType   string   // the struct's type name
	markPkg     string   // package whose calls must emit annotated marks
	surfacePkgs []string // path prefixes whose reads count as "surfaced"
}

func defaultStatwireConfig() statwireConfig {
	return statwireConfig{
		statsPkg:    "rfdet/internal/api",
		statsType:   "Stats",
		markPkg:     "rfdet/internal/core",
		surfacePkgs: []string{"rfdet/internal/harness", "rfdet/cmd/"},
	}
}

// statField is the wiring state of one Stats counter.
type statField struct {
	obj         *types.Var
	name        string
	pos         token.Pos
	mark        string // //detvet:mark annotation, "" if none
	incremented bool
	surfaced    bool
}

// runStatwire runs the global pass over one Pass per loaded package. Every
// pass must share a single FileSet and type-check universe (the standalone
// driver guarantees this) so field objects resolve identically across
// packages. Diagnostics are reported through the stats package's own pass,
// which carries the //detvet:statwire suppression intervals.
func runStatwire(passes []*Pass, cfg statwireConfig) {
	var statsPass *Pass
	for _, p := range passes {
		if p.PkgPath == cfg.statsPkg {
			statsPass = p
			break
		}
	}
	if statsPass == nil {
		return // stats package not in the load set; nothing to check
	}

	fields := collectStatFields(statsPass, cfg)
	if len(fields) == 0 {
		return
	}
	byObj := make(map[*types.Var]*statField, len(fields))
	for _, f := range fields {
		byObj[f.obj] = f
	}

	var statsType types.Type
	if tn, ok := statsPass.Pkg.Scope().Lookup(cfg.statsType).(*types.TypeName); ok {
		statsType = tn.Type()
	}

	for _, p := range passes {
		surface := false
		for _, prefix := range cfg.surfacePkgs {
			if p.PkgPath == strings.TrimSuffix(prefix, "/") || strings.HasPrefix(p.PkgPath, prefix) {
				surface = true
				break
			}
		}
		scanStatUses(p, byObj, statsType, surface)
	}

	marksEmitted := map[string]bool{}
	for _, p := range passes {
		if p.PkgPath == cfg.markPkg {
			collectEmittedMarks(p, marksEmitted)
		}
	}

	// Report in declaration order so output is stable.
	sort.Slice(fields, func(i, j int) bool { return fields[i].pos < fields[j].pos })
	for _, f := range fields {
		if !f.incremented {
			statsPass.Reportf(f.pos,
				"counter %s.%s is never incremented outside %s methods: wire it up or annotate //detvet:statwire",
				cfg.statsType, f.name, cfg.statsType)
		}
		if !f.surfaced {
			statsPass.Reportf(f.pos,
				"counter %s.%s is never surfaced in a harness table or report printer: print it or annotate //detvet:statwire",
				cfg.statsType, f.name)
		}
		if f.mark != "" && !marksEmitted[f.mark] {
			statsPass.Reportf(f.pos,
				"counter %s.%s is annotated //detvet:mark %s, but no call in %s emits that mark string",
				cfg.statsType, f.name, f.mark, cfg.markPkg)
		}
	}
}

// collectStatFields finds the Stats struct declaration and returns its
// numeric fields with their //detvet:mark annotations.
func collectStatFields(p *Pass, cfg statwireConfig) []*statField {
	var fields []*statField
	for _, f := range p.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || ts.Name.Name != cfg.statsType {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj, _ := p.Info.Defs[name].(*types.Var)
					if obj == nil || !isNumericType(obj.Type()) {
						continue
					}
					sf := &statField{obj: obj, name: name.Name, pos: name.Pos()}
					if mark, ok := fieldAnnotation(field, "mark"); ok {
						markName, _, _ := strings.Cut(mark, " ")
						if markName == "" {
							p.Reportf(name.Pos(), "//detvet:mark annotation requires a mark name")
						}
						sf.mark = markName
					}
					fields = append(fields, sf)
				}
			}
			return false
		})
	}
	return fields
}

func isNumericType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsFloat) != 0
}

// scanStatUses walks one package for writes (counting toward incremented,
// except inside Stats methods) and reads (counting toward surfaced when the
// package is a surface package).
func scanStatUses(p *Pass, byObj map[*types.Var]*statField, statsType types.Type, surface bool) {
	resolve := func(e ast.Expr) *statField {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		s, ok := p.Info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return nil
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			return nil
		}
		return byObj[v]
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inStatsMethod := false
			if fd.Recv != nil && len(fd.Recv.List) == 1 && statsType != nil {
				if tv, ok := p.Info.Types[fd.Recv.List[0].Type]; ok {
					t := tv.Type
					if ptr, ok := t.(*types.Pointer); ok {
						t = ptr.Elem()
					}
					inStatsMethod = types.Identical(t, statsType)
				}
			}
			writeTargets := map[ast.Expr]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						writeTargets[ast.Unparen(lhs)] = true
					}
				case *ast.IncDecStmt:
					writeTargets[ast.Unparen(n.X)] = true
				}
				return true
			})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				sf := resolve(sel)
				if sf == nil {
					return true
				}
				if writeTargets[sel] {
					if !inStatsMethod {
						sf.incremented = true
					}
					// An op-assign (+=) reads too, but a counter bump is not
					// "surfacing"; only pure reads count below.
					return true
				}
				if surface && !inStatsMethod {
					sf.surfaced = true
				}
				return true
			})
		}
	}
}

// collectEmittedMarks records every constant string value passed as a call
// argument anywhere in the mark package: a mark is "emitted" if some call
// (tracer.Mark, phase annotations, etc.) takes its string, whether spelled
// as a literal or a named constant.
func collectEmittedMarks(p *Pass, out map[string]bool) {
	for _, f := range p.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				tv, ok := p.Info.Types[arg]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					continue
				}
				out[constant.StringVal(tv.Value)] = true
			}
			return true
		})
	}
}
