package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pincheck is the paired-resource analyzer (DESIGN.md §17). The runtime has
// three acquire/release pairs whose imbalance is invisible to the race
// detector but fatal to reclamation:
//
//   - slicestore.EpochStore pins: a value of type Pin returned by Pin() or a
//     pin-returning helper must reach Release() on every path, or retired
//     epochs accumulate on the limbo list forever;
//   - alloc.ChunkPool chunks: a chunk obtained from Get must be returned
//     with Put, or the arena's freelist drains and every subsequent arena
//     falls through to fresh allocation;
//   - mem page buffers: a buffer from getPageBuf must go back through
//     putPageBuf, or the plan encoder loses its sync.Pool amortization.
//
// The analyzer is lostcancel-shaped: it tracks locals bound to an acquire
// call through a structural may-leak dataflow (join = union: a resource
// leaks if any path fails to release it) and reports at the acquire site
// when some exit — an early return, the function's end, or an explicit
// panic unwind — is reached with the resource live and no deferred release
// registered. Ownership transfer ends tracking: returning the resource,
// storing it into a field, composite literal, map, channel, or another
// variable, or passing it to a callee all hand the release obligation to
// someone the analyzer cannot see, by design (DESIGN.md §17 documents this
// as the soundness boundary). Discarding an acquire result outright and
// overwriting a live resource are reported immediately.
//
// Only explicit `panic(...)` statements count as unwind exits: a panic from
// a callee is not modeled, so a function that can only leak through a
// callee's panic needs `defer` anyway if it must survive aborts — the
// deterministic abort path (panic(errAborted)) is an explicit panic in
// every function it unwinds through, so abort leaks are visible.
//
// False positives (e.g. a release delegated to a goroutine the analyzer
// treats as an escape... which is already a transfer; realistically a
// conditional protocol the lattice cannot see) are silenced with
// //detvet:pincheck <why>.
var pincheck = &Analyzer{
	Name: "pincheck",
	Doc:  "prove epoch pins, pool chunks and page buffers balanced on all paths",
	Restrict: []string{
		"rfdet/internal/core",
		"rfdet/internal/slicestore",
		"rfdet/internal/mem",
		"rfdet/internal/alloc",
	},
	Run: runPincheck,
}

// resKind classifies the three tracked pairs.
type resKind int

const (
	resPin resKind = iota
	resChunk
	resPageBuf
)

func (k resKind) String() string {
	switch k {
	case resPin:
		return "epoch pin"
	case resChunk:
		return "pool chunk"
	default:
		return "page buffer"
	}
}

// resource is one live tracked value.
type resource struct {
	kind     resKind
	pos      token.Pos // acquire site
	deferred bool      // a deferred release covers every exit
}

// resState is the may-live set at one program point.
type resState struct {
	live map[types.Object]resource
	dead bool
}

func newResState() resState { return resState{live: map[types.Object]resource{}} }

func (s resState) clone() resState {
	c := resState{live: make(map[types.Object]resource, len(s.live)), dead: s.dead}
	for k, v := range s.live {
		c.live[k] = v
	}
	return c
}

// meetRes joins two states with union: a resource that may be live on either
// path may leak downstream. A deferred release survives only if registered
// on every path where the resource is live.
func meetRes(a, b resState) resState {
	if a.dead {
		return b.clone()
	}
	if b.dead {
		return a.clone()
	}
	out := a.clone()
	for obj, rb := range b.live {
		if ra, ok := out.live[obj]; ok {
			ra.deferred = ra.deferred && rb.deferred
			out.live[obj] = ra
			continue
		}
		out.live[obj] = rb
	}
	return out
}

func equalResStates(a, b resState) bool {
	if a.dead != b.dead || len(a.live) != len(b.live) {
		return false
	}
	for obj, ra := range a.live {
		rb, ok := b.live[obj]
		if !ok || ra.deferred != rb.deferred {
			return false
		}
	}
	return true
}

func runPincheck(pass *Pass) {
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pf := &pinFlow{pass: pass, leaked: map[token.Pos]string{}, reported: map[token.Pos]bool{}}
			out := pf.stmt(fd.Body, newResState())
			if !out.dead {
				pf.exit(out, "the end of "+fd.Name.Name)
			}
			pf.flush()
		}
	}
}

// pinFlow analyzes one function body.
type pinFlow struct {
	pass     *Pass
	breaks   []*resBranchTargets
	leaked   map[token.Pos]string // acquire pos → leak description
	reported map[token.Pos]bool
}

type resBranchTargets struct {
	label     string
	isLoop    bool
	breakTo   []resState
	continues []resState
}

// exit records every still-live, non-deferred resource at one exit point as
// leaked.
func (pf *pinFlow) exit(st resState, where string) {
	for _, r := range st.live {
		if r.deferred {
			continue
		}
		if _, ok := pf.leaked[r.pos]; !ok {
			pf.leaked[r.pos] = where
		}
	}
}

// flush reports the collected leaks, one per acquire site.
func (pf *pinFlow) flush() {
	for pos, where := range pf.leaked {
		if pf.reported[pos] {
			continue
		}
		pf.reported[pos] = true
		pf.pass.Reportf(pos,
			"resource acquired here may still be live at %s: release it on every path, defer the release, or transfer ownership",
			where)
	}
}

// report emits an immediate (non-exit) diagnostic once per position.
func (pf *pinFlow) report(pos token.Pos, format string, args ...any) {
	if pf.reported[pos] {
		return
	}
	pf.reported[pos] = true
	pf.pass.Reportf(pos, format, args...)
}

// --- acquire/release/escape recognition ------------------------------------

// acquireKind reports whether call is a tracked acquire.
func (pf *pinFlow) acquireKind(call *ast.CallExpr) (resKind, bool) {
	// getPageBuf-style function pairs.
	if fn := calleeFunc(pf.pass.Info, call); fn != nil {
		if fn.Name() == "getPageBuf" {
			return resPageBuf, true
		}
		if fn.Name() == "Get" && recvTypeNamed(fn, "ChunkPool") {
			return resChunk, true
		}
	}
	// Anything returning a value of a type named Pin is a pin acquire.
	if tv, ok := pf.pass.Info.Types[call]; ok && typeNamed(tv.Type, "Pin") {
		return resPin, true
	}
	return 0, false
}

// releaseTarget reports whether call releases a tracked local, returning the
// released object.
func (pf *pinFlow) releaseTarget(call *ast.CallExpr) (types.Object, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		// pin.Release()
		if sel.Sel.Name == "Release" {
			if obj := pf.identObj(sel.X); obj != nil {
				return obj, true
			}
		}
		// pool.Put(c)
		if sel.Sel.Name == "Put" && len(call.Args) >= 1 {
			if fn := calleeFunc(pf.pass.Info, call); fn != nil && recvTypeNamed(fn, "ChunkPool") {
				if obj := pf.identObj(call.Args[0]); obj != nil {
					return obj, true
				}
			}
		}
	}
	// putPageBuf(b)
	if fn := calleeFunc(pf.pass.Info, call); fn != nil && fn.Name() == "putPageBuf" && len(call.Args) >= 1 {
		if obj := pf.identObj(call.Args[0]); obj != nil {
			return obj, true
		}
	}
	return nil, false
}

func (pf *pinFlow) identObj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pf.pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pf.pass.Info.Defs[id]
}

// typeNamed reports whether t (through pointers) is a named type with the
// given name. Matching is by name, not package, so the analyzer's fixtures
// can declare local analogs of the runtime's resource types.
func typeNamed(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

func recvTypeNamed(fn *types.Func, name string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return typeNamed(sig.Recv().Type(), name)
}

// escapeUses removes every tracked object that appears as a value inside e:
// its release obligation has been transferred. Field reads through the
// object (p.id) do not escape it.
func (pf *pinFlow) escapeUses(e ast.Expr, st *resState) {
	if e == nil {
		return
	}
	var visit func(e ast.Expr, valuePos bool)
	visit = func(e ast.Expr, valuePos bool) {
		switch e := e.(type) {
		case nil:
		case *ast.ParenExpr:
			visit(e.X, valuePos)
		case *ast.Ident:
			if !valuePos {
				return
			}
			obj := pf.pass.Info.Uses[e]
			if obj == nil {
				return
			}
			if _, ok := st.live[obj]; ok {
				delete(st.live, obj)
			}
		case *ast.SelectorExpr:
			// A field read does not transfer the resource itself.
			visit(e.X, false)
		case *ast.UnaryExpr:
			visit(e.X, true)
		case *ast.StarExpr:
			visit(e.X, true)
		case *ast.IndexExpr:
			visit(e.X, valuePos)
			visit(e.Index, true)
		case *ast.SliceExpr:
			visit(e.X, valuePos)
			visit(e.Low, true)
			visit(e.High, true)
			visit(e.Max, true)
		case *ast.BinaryExpr:
			visit(e.X, true)
			visit(e.Y, true)
		case *ast.KeyValueExpr:
			visit(e.Value, true)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				visit(el, true)
			}
		case *ast.CallExpr:
			// Handled by the caller for release recognition; reaching here
			// means a non-release call: every argument escapes.
			visit(e.Fun, false)
			for _, a := range e.Args {
				visit(a, true)
			}
		case *ast.TypeAssertExpr:
			visit(e.X, true)
		case *ast.FuncLit:
			// A closure capturing the resource takes over its lifetime.
			ast.Inspect(e.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					if obj := pf.pass.Info.Uses[id]; obj != nil {
						delete(st.live, obj)
					}
				}
				return true
			})
		}
	}
	visit(e, true)
}

// --- statement walking -----------------------------------------------------

func (pf *pinFlow) stmt(s ast.Stmt, in resState) resState {
	if s == nil || in.dead {
		return in
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		st := in
		for _, stmt := range s.List {
			st = pf.stmt(stmt, st)
		}
		return st
	case *ast.ExprStmt:
		return pf.exprStmt(s, in)
	case *ast.AssignStmt:
		return pf.assign(s, in)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return in
		}
		st := in
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) == 0 {
				continue
			}
			st = st.clone()
			for i, name := range vs.Names {
				if i < len(vs.Values) {
					st = pf.bind(name, vs.Values[i], st)
				}
			}
		}
		return st
	case *ast.IfStmt:
		st := in
		if s.Init != nil {
			st = pf.stmt(s.Init, st)
		}
		st = st.clone()
		pf.escapeCond(s.Cond, &st)
		thenOut := pf.stmt(s.Body, st.clone())
		elseOut := st
		if s.Else != nil {
			elseOut = pf.stmt(s.Else, st.clone())
		}
		return meetRes(thenOut, elseOut)
	case *ast.ForStmt:
		st := in
		if s.Init != nil {
			st = pf.stmt(s.Init, st)
		}
		return pf.loop(st, "", func(head resState) resState {
			h := head.clone()
			if s.Cond != nil {
				pf.escapeCond(s.Cond, &h)
			}
			body := pf.stmt(s.Body, h)
			if s.Post != nil {
				body = pf.stmt(s.Post, body)
			}
			return body
		}, s.Cond == nil)
	case *ast.RangeStmt:
		st := in.clone()
		pf.escapeCond(s.X, &st)
		return pf.loop(st, "", func(head resState) resState {
			return pf.stmt(s.Body, head.clone())
		}, false)
	case *ast.SwitchStmt:
		st := in
		if s.Init != nil {
			st = pf.stmt(s.Init, st)
		}
		if s.Tag != nil {
			st = st.clone()
			pf.escapeCond(s.Tag, &st)
		}
		return pf.cases(s.Body, st)
	case *ast.TypeSwitchStmt:
		st := in
		if s.Init != nil {
			st = pf.stmt(s.Init, st)
		}
		st = pf.stmt(s.Assign, st)
		return pf.cases(s.Body, st)
	case *ast.SelectStmt:
		out := resState{live: map[types.Object]resource{}, dead: true}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			st := in.clone()
			if cc.Comm != nil {
				st = pf.stmt(cc.Comm, st)
			}
			for _, stmt := range cc.Body {
				st = pf.stmt(stmt, st)
			}
			out = meetRes(out, st)
		}
		return out
	case *ast.ReturnStmt:
		st := in.clone()
		for _, r := range s.Results {
			pf.escapeUsesViaCalls(r, &st)
		}
		pf.exit(st, "this return")
		st.dead = true
		return st
	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			for i := len(pf.breaks) - 1; i >= 0; i-- {
				bt := pf.breaks[i]
				if label == "" || bt.label == label {
					bt.breakTo = append(bt.breakTo, in)
					break
				}
			}
		case token.CONTINUE:
			for i := len(pf.breaks) - 1; i >= 0; i-- {
				bt := pf.breaks[i]
				if bt.isLoop && (label == "" || bt.label == label) {
					bt.continues = append(bt.continues, in)
					break
				}
			}
		}
		st := in.clone()
		st.dead = true
		return st
	case *ast.DeferStmt:
		return pf.deferStmt(s, in)
	case *ast.GoStmt:
		st := in.clone()
		pf.escapeCond(s.Call.Fun, &st)
		for _, a := range s.Call.Args {
			pf.escapeUses(a, &st)
		}
		return st
	case *ast.SendStmt:
		st := in.clone()
		pf.escapeUses(s.Value, &st)
		return st
	case *ast.LabeledStmt:
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt:
			_ = inner
			return pf.labeledLoop(s, in)
		default:
			return pf.stmt(s.Stmt, in)
		}
	case *ast.IncDecStmt:
		return in
	}
	return in
}

func (pf *pinFlow) labeledLoop(s *ast.LabeledStmt, in resState) resState {
	label := s.Label.Name
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		st := in
		if inner.Init != nil {
			st = pf.stmt(inner.Init, st)
		}
		return pf.loop(st, label, func(head resState) resState {
			h := head.clone()
			if inner.Cond != nil {
				pf.escapeCond(inner.Cond, &h)
			}
			body := pf.stmt(inner.Body, h)
			if inner.Post != nil {
				body = pf.stmt(inner.Post, body)
			}
			return body
		}, inner.Cond == nil)
	case *ast.RangeStmt:
		st := in.clone()
		pf.escapeCond(inner.X, &st)
		return pf.loop(st, label, func(head resState) resState {
			return pf.stmt(inner.Body, head.clone())
		}, false)
	default:
		return pf.stmt(s.Stmt, in)
	}
}

func (pf *pinFlow) loop(entry resState, label string, body func(resState) resState, infinite bool) resState {
	bt := &resBranchTargets{label: label, isLoop: true}
	pf.breaks = append(pf.breaks, bt)
	defer func() { pf.breaks = pf.breaks[:len(pf.breaks)-1] }()

	head := entry
	var bodyOut resState
	for i := 0; i < 3; i++ {
		bt.breakTo = nil
		bt.continues = nil
		bodyOut = body(head)
		next := meetRes(entry, bodyOut)
		for _, c := range bt.continues {
			next = meetRes(next, c)
		}
		if equalResStates(next, head) {
			break
		}
		head = next
	}
	var out resState
	if infinite {
		out = resState{live: map[types.Object]resource{}, dead: true}
	} else {
		out = meetRes(head, bodyOut)
	}
	for _, b := range bt.breakTo {
		out = meetRes(out, b)
	}
	return out
}

func (pf *pinFlow) cases(body *ast.BlockStmt, in resState) resState {
	bt := &resBranchTargets{}
	pf.breaks = append(pf.breaks, bt)
	defer func() { pf.breaks = pf.breaks[:len(pf.breaks)-1] }()

	out := resState{live: map[types.Object]resource{}, dead: true}
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		st := in.clone()
		for _, stmt := range cc.Body {
			st = pf.stmt(stmt, st)
		}
		out = meetRes(out, st)
	}
	if !hasDefault {
		out = meetRes(out, in)
	}
	for _, b := range bt.breakTo {
		out = meetRes(out, b)
	}
	return out
}

// exprStmt handles a statement-level expression: an acquire whose result is
// discarded leaks immediately; an explicit panic is an unwind exit; a
// release retires its target; other calls escape their arguments.
func (pf *pinFlow) exprStmt(s *ast.ExprStmt, in resState) resState {
	call, ok := ast.Unparen(s.X).(*ast.CallExpr)
	if !ok {
		return in
	}
	if isBuiltin(pf.pass.Info, call, "panic") {
		st := in.clone()
		for _, a := range call.Args {
			pf.escapeUses(a, &st)
		}
		pf.exit(st, "this panic")
		st.dead = true
		return st
	}
	if kind, ok := pf.acquireKind(call); ok {
		pf.report(call.Pos(), "result of this call is discarded: the %s it returns is never released", kind)
		// Arguments still escape.
		st := in.clone()
		for _, a := range call.Args {
			pf.escapeUses(a, &st)
		}
		return st
	}
	if obj, ok := pf.releaseTarget(call); ok {
		st := in.clone()
		delete(st.live, obj)
		return st
	}
	st := in.clone()
	pf.escapeCond(s.X, &st)
	return st
}

// assign binds acquire results and treats other uses as escapes. Overwriting
// a live resource is reported immediately.
func (pf *pinFlow) assign(s *ast.AssignStmt, in resState) resState {
	st := in.clone()
	if len(s.Lhs) >= 1 && len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if kind, ok := pf.acquireKind(call); ok {
				for _, a := range call.Args {
					pf.escapeUses(a, &st)
				}
				id, isIdent := ast.Unparen(s.Lhs[0]).(*ast.Ident)
				if !isIdent || id.Name == "_" {
					pf.report(call.Pos(), "result of this call is bound to _ or a non-local: the %s it returns is never released", kind)
					return st
				}
				obj := pf.identObj(s.Lhs[0])
				if obj == nil {
					return st
				}
				if prev, live := st.live[obj]; live && !prev.deferred {
					pf.report(call.Pos(), "reassignment of %s while the previous %s from line %d is unreleased",
						id.Name, prev.kind, pf.pass.Fset.Position(prev.pos).Line)
				}
				st.live[obj] = resource{kind: kind, pos: call.Pos()}
				return st
			}
		}
	}
	for _, r := range s.Rhs {
		pf.escapeCond(r, &st)
	}
	// Storing a tracked value somewhere (field, map, other var) transfers it;
	// escapeUses above already handled RHS appearances. An LHS that is a
	// tracked local being overwritten by a non-acquire value drops tracking
	// only if the old value was moved — which escapeUses cannot know — so
	// keep it conservative: overwriting with a non-acquire forgets nothing.
	return st
}

// bind handles `var x = expr` declarations.
func (pf *pinFlow) bind(name *ast.Ident, value ast.Expr, st resState) resState {
	if call, ok := ast.Unparen(value).(*ast.CallExpr); ok {
		if kind, ok := pf.acquireKind(call); ok {
			for _, a := range call.Args {
				pf.escapeUses(a, &st)
			}
			if name.Name == "_" {
				pf.report(call.Pos(), "result of this call is bound to _: the %s it returns is never released", kind)
				return st
			}
			if obj := pf.pass.Info.Defs[name]; obj != nil {
				st.live[obj] = resource{kind: kind, pos: call.Pos()}
			}
			return st
		}
	}
	pf.escapeCond(value, &st)
	return st
}

// deferStmt registers deferred releases: `defer p.Release()`,
// `defer pool.Put(c)`, `defer putPageBuf(b)`, or a deferred closure whose
// body contains such calls.
func (pf *pinFlow) deferStmt(s *ast.DeferStmt, in resState) resState {
	st := in.clone()
	if obj, ok := pf.releaseTarget(s.Call); ok {
		if r, live := st.live[obj]; live {
			r.deferred = true
			st.live[obj] = r
		}
		return st
	}
	if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj, ok := pf.releaseTarget(call); ok {
				if r, live := st.live[obj]; live {
					r.deferred = true
					st.live[obj] = r
				}
			}
			return true
		})
		return st
	}
	// Any other deferred call escapes its arguments.
	for _, a := range s.Call.Args {
		pf.escapeUses(a, &st)
	}
	return st
}

// escapeCond walks an arbitrary expression for escapes, recognizing release
// calls nested as expressions (rare, but `ok := pool.Put(c)` style code
// should still retire c).
func (pf *pinFlow) escapeCond(e ast.Expr, st *resState) {
	if e == nil {
		return
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if obj, ok := pf.releaseTarget(call); ok {
			delete(st.live, obj)
			return
		}
	}
	pf.escapeUses(e, st)
}

// escapeUsesViaCalls is escapeCond for return statements: `return p` escapes
// p, `return p.Release()` would release first (not a real pattern, but keep
// the recognizer uniform).
func (pf *pinFlow) escapeUsesViaCalls(e ast.Expr, st *resState) {
	pf.escapeCond(e, st)
}
