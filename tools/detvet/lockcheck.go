package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// lockcheck is the flow-sensitive lock-discipline analyzer (DESIGN.md §17).
// It checks three properties over an intraprocedural held-lock lattice:
//
//  1. Guarded fields. A struct field annotated //detvet:guardedby <spec> may
//     only be accessed while the named mutex is provably held. The lattice is
//     a must-hold set computed structurally over each function body: Lock and
//     RLock add, Unlock and RUnlock remove, `defer mu.Unlock()` keeps the
//     lock held to every exit, TryLock adds only on its success branch, and
//     control-flow joins intersect. Function boundaries are crossed through
//     effect annotations (//detvet:holds, //detvet:acquires,
//     //detvet:releases) so the repo's Locked-suffix helpers check precisely.
//  2. Lock order. Mutex fields annotated //detvet:lockorder <rank> form a
//     global acquisition order (documented in DESIGN.md §17); acquiring a
//     lower-ranked lock while holding a higher-ranked one is an inversion.
//     Same-rank re-acquisition is allowed: the monitor domains are taken in
//     ascending shard-id order, which is a runtime invariant, not a static
//     one.
//  3. Held-across-blocking. A blocking operation — channel send/receive,
//     select without default, sync.Cond.Wait, sync.WaitGroup.Wait, or a call
//     to a function annotated //detvet:blocks — executed while any annotated
//     lock is held is a latent deadlock against the deterministic turn
//     protocol and is reported.
//
// Unannotated fields are not exempt: any field sharing a declaration
// paragraph (a run of fields with no blank line between them) with a
// sync.Mutex or sync.RWMutex must carry //detvet:guardedby or
// //detvet:notguarded <why>, so a new field slipped under a mutex without a
// documented discipline fails the build.
//
// A finding the lattice cannot discharge but a human can (turn-exclusivity,
// quiescence after wg.Wait) is silenced by //detvet:lockcheck <why>; the
// suppression certifies that the access is ordered by something stronger
// than the annotated mutex (DESIGN.md §17, escape hatches).
var lockcheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "flow-sensitive //detvet:guardedby, lock-order and held-across-blocking checks",
	Restrict: []string{
		"rfdet/internal/core",
		"rfdet/internal/slicestore",
		"rfdet/internal/mem",
		"rfdet/internal/alloc",
		"rfdet/internal/kendo",
	},
	Run: runLockcheck,
}

// wildcardKey is the held-set entry added by //detvet:acquires * (the global
// rendezvous): it satisfies every guard requirement and every holds
// precondition until removed by //detvet:releases *.
const wildcardKey = "*"

// A guardAlt is one alternative of a guardedby specification: either a
// sibling mutex field of the same struct (resolved against the accessed
// expression's base) or a class `Type.field` (any held instance of that
// mutex field satisfies it).
type guardAlt struct {
	sibling string
	class   string
}

// fieldGuard is the parsed annotation state of one struct field.
type fieldGuard struct {
	alts []guardAlt // non-nil: guardedby; nil: notguarded
	spec string     // original spec text, for diagnostics
}

// lockRef is one lock named by a function-level effect annotation, resolved
// lazily against the function's receiver and parameters.
type lockRef struct {
	wildcard bool
	base     string   // receiver/parameter name ("" for class form)
	path     []string // field path below the base
	class    string   // class form: "Type.field"
	spec     string   // original text, for diagnostics
}

// funcEffects are the lock-relevant annotations of one function.
type funcEffects struct {
	holds    []lockRef // held on entry and still held on exit
	acquires []lockRef // acquired by the function, held on exit
	releases []lockRef // released by the function
	blocks   bool      // the function may block (turn wait, wake sleep)
}

// heldLock is one element of the must-hold set.
type heldLock struct {
	class    string // "Type.field" when statically known, else ""
	read     bool   // held via RLock only
	deferred bool   // a registered defer releases it at every exit
	pos      token.Pos
}

// lockSet maps canonical lock keys to their held state.
type lockSet map[string]heldLock

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// flowState is the abstract state at one program point.
type flowState struct {
	locks lockSet
	dead  bool // unreachable (after return/panic/branch)
}

func newFlowState() flowState { return flowState{locks: lockSet{}} }

func (f flowState) clone() flowState { return flowState{locks: f.locks.clone(), dead: f.dead} }

// meet intersects two states: a lock is held after a join only if it is held
// on every incoming path. A lock read-held on either path is only read-held
// after the join; a deferred release survives only if registered on both.
func meet(a, b flowState) flowState {
	if a.dead {
		return b.clone()
	}
	if b.dead {
		return a.clone()
	}
	out := flowState{locks: lockSet{}}
	for k, va := range a.locks {
		vb, ok := b.locks[k]
		if !ok {
			continue
		}
		out.locks[k] = heldLock{
			class:    va.class,
			read:     va.read || vb.read,
			deferred: va.deferred && vb.deferred,
			pos:      va.pos,
		}
	}
	return out
}

// equalStates reports whether two states hold the same locks in the same
// modes (the fixpoint test for loop bodies).
func equalStates(a, b flowState) bool {
	if a.dead != b.dead || len(a.locks) != len(b.locks) {
		return false
	}
	for k, va := range a.locks {
		vb, ok := b.locks[k]
		if !ok || va.read != vb.read || va.deferred != vb.deferred {
			return false
		}
	}
	return true
}

// lockcheckState is the package-level context shared by every function
// analysis of one pass.
type lockcheckState struct {
	pass    *Pass
	guards  map[*types.Var]*fieldGuard // annotated fields
	ranks   map[string]int             // lock class → //detvet:lockorder rank
	effects map[*types.Func]*funcEffects
}

func runLockcheck(pass *Pass) {
	lc := &lockcheckState{
		pass:    pass,
		guards:  map[*types.Var]*fieldGuard{},
		ranks:   map[string]int{},
		effects: map[*types.Func]*funcEffects{},
	}
	for _, f := range pass.sourceFiles() {
		lc.collectStructAnnotations(f)
	}
	for _, f := range pass.sourceFiles() {
		lc.collectFuncAnnotations(f)
	}
	for _, f := range pass.sourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			lc.checkFunc(fd)
		}
	}
}

// --- annotation collection -------------------------------------------------

// fieldAnnotation extracts the `//detvet:<want> rest` line attached to a
// struct field (doc comment or end-of-line comment), or "", false.
func fieldAnnotation(field *ast.Field, want string) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+annotationPrefix)
			if !ok {
				continue
			}
			name, rest, _ := strings.Cut(text, " ")
			if name != want {
				continue
			}
			if i := strings.Index(rest, "//"); i >= 0 {
				rest = rest[:i]
			}
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// collectStructAnnotations parses guardedby/notguarded/lockorder field
// annotations and enforces the paragraph rule: every non-synchronization
// field sharing a declaration paragraph with a mutex must be annotated.
func (lc *lockcheckState) collectStructAnnotations(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		lc.collectStruct(ts.Name.Name, st)
		return true
	})
}

func (lc *lockcheckState) collectStruct(typeName string, st *ast.StructType) {
	type fieldInfo struct {
		field *ast.Field
		name  *ast.Ident // nil for embedded/blank paragraphs we skip
	}
	// Split the field list into paragraphs: a blank line (measured from the
	// previous field's end to the next field's doc comment or name) starts a
	// new one.
	var paragraphs [][]fieldInfo
	var cur []fieldInfo
	lastEnd := -1
	for _, field := range st.Fields.List {
		start := field.Pos()
		if field.Doc != nil {
			start = field.Doc.Pos()
		}
		line := lc.pass.Fset.Position(start).Line
		if lastEnd >= 0 && line > lastEnd+1 && len(cur) > 0 {
			paragraphs = append(paragraphs, cur)
			cur = nil
		}
		lastEnd = lc.pass.Fset.Position(field.End()).Line
		if len(field.Names) == 0 {
			cur = append(cur, fieldInfo{field: field})
			continue
		}
		for _, name := range field.Names {
			cur = append(cur, fieldInfo{field: field, name: name})
		}
	}
	if len(cur) > 0 {
		paragraphs = append(paragraphs, cur)
	}

	for _, para := range paragraphs {
		var mutexName string
		for _, fi := range para {
			if fi.name != nil && lc.isMutexField(fi.name) {
				mutexName = fi.name.Name
				break
			}
		}
		for _, fi := range para {
			if fi.name == nil || fi.name.Name == "_" {
				continue // embedded or padding field: nothing to guard
			}
			obj, _ := lc.pass.Info.Defs[fi.name].(*types.Var)
			if obj == nil {
				continue
			}
			isMutex := lc.isMutexField(fi.name)

			if spec, ok := fieldAnnotation(fi.field, "lockorder"); ok {
				rankStr, _, _ := strings.Cut(spec, " ")
				rank, err := strconv.Atoi(rankStr)
				if !isMutex || err != nil {
					lc.pass.Reportf(fi.name.Pos(),
						"//detvet:lockorder must carry an integer rank and annotate a sync.Mutex/RWMutex field")
				} else {
					lc.ranks[typeName+"."+fi.name.Name] = rank
				}
			}

			spec, hasGuard := fieldAnnotation(fi.field, "guardedby")
			why, hasNot := fieldAnnotation(fi.field, "notguarded")
			switch {
			case hasGuard && hasNot:
				lc.pass.Reportf(fi.name.Pos(), "field %s is annotated both //detvet:guardedby and //detvet:notguarded", fi.name.Name)
			case hasGuard:
				specTok, _, _ := strings.Cut(spec, " ")
				g := lc.parseGuard(typeName, st, fi.name, specTok)
				if g != nil {
					lc.guards[obj] = g
				}
			case hasNot:
				if why == "" {
					lc.pass.Reportf(fi.name.Pos(), "//detvet:notguarded annotation requires a justification")
				}
			case mutexName != "" && !isMutex && !isSyncExempt(obj.Type()):
				lc.pass.Reportf(fi.name.Pos(),
					"field %s shares a declaration paragraph with mutex %s but has no //detvet:guardedby or //detvet:notguarded annotation",
					fi.name.Name, mutexName)
			}
		}
	}
}

// parseGuard parses a guardedby spec: alternatives separated by `|`, each
// either a sibling field name of the same struct or a `Type.field` class.
func (lc *lockcheckState) parseGuard(typeName string, st *ast.StructType, at *ast.Ident, spec string) *fieldGuard {
	if spec == "" {
		lc.pass.Reportf(at.Pos(), "//detvet:guardedby annotation requires a mutex name")
		return nil
	}
	g := &fieldGuard{spec: spec}
	for _, alt := range strings.Split(spec, "|") {
		if typ, field, ok := strings.Cut(alt, "."); ok {
			if !lc.classExists(typ, field) {
				lc.pass.Reportf(at.Pos(), "//detvet:guardedby %s: no mutex field %s.%s in this package", spec, typ, field)
				return nil
			}
			g.alts = append(g.alts, guardAlt{class: alt})
			continue
		}
		if !structHasMutexField(st, alt) {
			lc.pass.Reportf(at.Pos(), "//detvet:guardedby %s: %s is not a sibling mutex field of %s", spec, alt, typeName)
			return nil
		}
		g.alts = append(g.alts, guardAlt{sibling: alt})
	}
	return g
}

// classExists reports whether Type.field names a mutex field of a struct
// type declared in this package.
func (lc *lockcheckState) classExists(typeName, field string) bool {
	obj := lc.pass.Pkg.Scope().Lookup(typeName)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return false
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == field && isMutexType(f.Type()) {
			return true
		}
	}
	return false
}

func structHasMutexField(st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				return true
			}
		}
	}
	return false
}

func (lc *lockcheckState) isMutexField(name *ast.Ident) bool {
	obj, _ := lc.pass.Info.Defs[name].(*types.Var)
	return obj != nil && isMutexType(obj.Type())
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly via
// a pointer).
func isMutexType(t types.Type) bool {
	return isNamedSyncType(t, "Mutex") || isNamedSyncType(t, "RWMutex")
}

func isNamedSyncType(t types.Type, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isSyncExempt reports types the paragraph rule never asks to annotate:
// other synchronization primitives and atomics, which carry their own
// discipline.
func isSyncExempt(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return false
}

// collectFuncAnnotations parses //detvet:holds, //detvet:acquires,
// //detvet:releases and //detvet:blocks annotations from function doc
// comments.
func (lc *lockcheckState) collectFuncAnnotations(f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		fn, _ := lc.pass.Info.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		var eff funcEffects
		any := false
		for _, c := range fd.Doc.List {
			text, ok := strings.CutPrefix(c.Text, "//"+annotationPrefix)
			if !ok {
				continue
			}
			name, rest, _ := strings.Cut(text, " ")
			if i := strings.Index(rest, "//"); i >= 0 {
				rest = rest[:i]
			}
			switch name {
			case "holds", "acquires", "releases":
				refs := lc.parseLockRefs(fd, c.Pos(), rest)
				if refs == nil {
					continue
				}
				any = true
				switch name {
				case "holds":
					eff.holds = append(eff.holds, refs...)
				case "acquires":
					eff.acquires = append(eff.acquires, refs...)
				case "releases":
					eff.releases = append(eff.releases, refs...)
				}
			case "blocks":
				eff.blocks = true
				any = true
			}
		}
		if any {
			lc.effects[fn] = &eff
		}
	}
}

// parseLockRefs parses the space-separated lock specs of one holds/acquires/
// releases annotation. A spec is `*`, a receiver field name, a `param.field`
// path, or a `Type.field` class.
func (lc *lockcheckState) parseLockRefs(fd *ast.FuncDecl, pos token.Pos, rest string) []lockRef {
	specs := strings.Fields(rest)
	if len(specs) == 0 {
		lc.pass.Reportf(pos, "//detvet:holds/acquires/releases annotation requires at least one lock spec")
		return nil
	}
	names := map[string]bool{}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		names[fd.Recv.List[0].Names[0].Name] = true
	}
	if fd.Type.Params != nil {
		for _, p := range fd.Type.Params.List {
			for _, n := range p.Names {
				names[n.Name] = true
			}
		}
	}
	var refs []lockRef
	for _, spec := range specs {
		if spec == "*" {
			refs = append(refs, lockRef{wildcard: true, spec: spec})
			continue
		}
		parts := strings.Split(spec, ".")
		switch {
		case len(parts) == 1:
			// Receiver field shorthand.
			if fd.Recv == nil || len(names) == 0 {
				lc.pass.Reportf(pos, "lock spec %q names a receiver field but %s has no named receiver", spec, fd.Name.Name)
				return nil
			}
			refs = append(refs, lockRef{base: fd.Recv.List[0].Names[0].Name, path: parts, spec: spec})
		case names[parts[0]]:
			refs = append(refs, lockRef{base: parts[0], path: parts[1:], spec: spec})
		case len(parts) == 2 && lc.classExists(parts[0], parts[1]):
			refs = append(refs, lockRef{class: spec, spec: spec})
		default:
			lc.pass.Reportf(pos, "lock spec %q matches neither a parameter of %s nor a Type.field mutex class", spec, fd.Name.Name)
			return nil
		}
	}
	return refs
}

// --- per-function analysis -------------------------------------------------

// funcFlow analyzes one function body.
type funcFlow struct {
	lc   *lockcheckState
	decl *ast.FuncDecl

	// alias maps single-assignment locals to the chain expression that
	// defined them, so `e := t.exec; e.mu.Lock()` and `t.exec.mu` name the
	// same lock.
	alias map[types.Object]ast.Expr
	// fresh marks locals bound to a composite literal or new() in this
	// function: objects still thread-local, exempt from guard checks.
	fresh map[types.Object]bool
	// tryBind maps a bool local to the lock key its TryLock call guards.
	tryBind map[types.Object]string

	exits    []flowState // states at every return and reachable fall-off
	breaks   []*branchTargets
	reported map[string]bool // dedup key → reported
}

// branchTargets accumulates the states flowing to a breakable construct.
type branchTargets struct {
	label     string
	isLoop    bool
	breakTo   []flowState
	continues []flowState
}

func (lc *lockcheckState) checkFunc(fd *ast.FuncDecl) {
	ff := &funcFlow{
		lc:       lc,
		decl:     fd,
		alias:    map[types.Object]ast.Expr{},
		fresh:    map[types.Object]bool{},
		tryBind:  map[types.Object]string{},
		reported: map[string]bool{},
	}
	ff.collectAliases(fd.Body)

	entry := newFlowState()
	eff := ff.funcEffectsOf(fd)
	if eff != nil {
		// holds is a held-at-entry precondition; releases implies the lock
		// is held at entry too (the function's job is to release it).
		for _, refs := range [][]lockRef{eff.holds, eff.releases} {
			for _, ref := range refs {
				key, class := ff.refKey(fd, ref)
				entry.locks[key] = heldLock{class: class, pos: fd.Pos()}
			}
		}
	}

	out := ff.walkStmt(fd.Body, entry)
	if !out.dead {
		ff.exits = append(ff.exits, out)
	}
	ff.checkExits(fd, eff, entry)
}

// funcEffectsOf returns the effect annotations of the declared function.
func (ff *funcFlow) funcEffectsOf(fd *ast.FuncDecl) *funcEffects {
	fn, _ := ff.lc.pass.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	return ff.lc.effects[fn]
}

// refKey resolves an annotation lockRef against the declared function's
// receiver/parameter objects, returning the canonical key and class.
func (ff *funcFlow) refKey(fd *ast.FuncDecl, ref lockRef) (string, string) {
	if ref.wildcard {
		return wildcardKey, wildcardKey
	}
	if ref.class != "" {
		return "class:" + ref.class, ref.class
	}
	var obj types.Object
	find := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, p := range fl.List {
			for _, n := range p.Names {
				if n.Name == ref.base {
					obj = ff.lc.pass.Info.Defs[n]
				}
			}
		}
	}
	find(fd.Recv)
	find(fd.Type.Params)
	if obj == nil {
		return "unresolved:" + ref.spec, ""
	}
	key := objKey(obj)
	class := classOfChain(obj.Type(), ref.path)
	for _, f := range ref.path {
		key += "." + f
	}
	return key, class
}

// collectAliases pre-scans the body for single-assignment chain locals and
// freshly constructed objects.
func (ff *funcFlow) collectAliases(body *ast.BlockStmt) {
	assigns := map[types.Object]int{}
	candidate := map[types.Object]ast.Expr{}
	freshCandidate := map[types.Object]bool{}
	note := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := ff.lc.pass.Info.Defs[id]
		if obj == nil {
			obj = ff.lc.pass.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		assigns[obj]++
		if rhs == nil {
			return
		}
		if isChainExpr(rhs) {
			candidate[obj] = rhs
		}
		if isFreshExpr(rhs) {
			freshCandidate[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				note(lhs, rhs)
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				var rhs ast.Expr
				if i < len(n.Values) {
					rhs = n.Values[i]
				}
				note(name, rhs)
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				note(n.Key, nil)
			}
			if n.Value != nil {
				note(n.Value, nil)
			}
		}
		return true
	})
	for obj, rhs := range candidate {
		if assigns[obj] == 1 {
			ff.alias[obj] = rhs
		}
	}
	for obj := range freshCandidate {
		if assigns[obj] == 1 {
			ff.fresh[obj] = true
		}
	}
}

// isChainExpr reports whether e is a pure ident/selector/index chain (safe
// to use as an alias target).
func isChainExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return isChainExpr(e.X)
	case *ast.IndexExpr:
		return isChainExpr(e.X)
	case *ast.ParenExpr:
		return isChainExpr(e.X)
	case *ast.StarExpr:
		return isChainExpr(e.X)
	case *ast.UnaryExpr:
		return e.Op == token.AND && isChainExpr(e.X)
	}
	return false
}

// isFreshExpr reports whether e constructs a new object: &T{...}, T{...} or
// new(T).
func isFreshExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := e.X.(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// objKey is the canonical root of a lock/access key: name plus definition
// position, unique within the package.
func objKey(obj types.Object) string {
	return fmt.Sprintf("%s@%d", obj.Name(), obj.Pos())
}

// keyOf canonicalizes an expression into a lock key, resolving local
// aliases so every spelling of the same chain produces the same key.
func (ff *funcFlow) keyOf(e ast.Expr) string {
	return ff.keyOfDepth(e, 0)
}

func (ff *funcFlow) keyOfDepth(e ast.Expr, depth int) string {
	if depth > 10 {
		return "expr:" + types.ExprString(e)
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ff.keyOfDepth(e.X, depth)
	case *ast.StarExpr:
		return ff.keyOfDepth(e.X, depth)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return ff.keyOfDepth(e.X, depth)
		}
	case *ast.Ident:
		obj := ff.lc.pass.Info.Uses[e]
		if obj == nil {
			obj = ff.lc.pass.Info.Defs[e]
		}
		if obj == nil {
			return "expr:" + e.Name
		}
		if target, ok := ff.alias[obj]; ok {
			return ff.keyOfDepth(target, depth+1)
		}
		return objKey(obj)
	case *ast.SelectorExpr:
		return ff.keyOfDepth(e.X, depth) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return ff.keyOfDepth(e.X, depth) + "[" + types.ExprString(e.Index) + "]"
	}
	return "expr:" + types.ExprString(e)
}

// rootObject returns the root identifier object of a chain (for the fresh-
// local exemption), or nil.
func (ff *funcFlow) rootObject(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.Ident:
			obj := ff.lc.pass.Info.Uses[x]
			if obj == nil {
				obj = ff.lc.pass.Info.Defs[x]
			}
			return obj
		default:
			return nil
		}
	}
}

// classOf computes the "Type.field" class of a mutex selector expression
// like sh.mu, or "" when the receiver type is not a named struct.
func (ff *funcFlow) classOf(sel *ast.SelectorExpr) string {
	tv, ok := ff.lc.pass.Info.Types[sel.X]
	if !ok {
		return ""
	}
	return classOfChain(tv.Type, []string{sel.Sel.Name})
}

// classOfChain resolves a field path from a base type to its owning
// "Type.field" class.
func classOfChain(t types.Type, path []string) string {
	if len(path) == 0 {
		return ""
	}
	for i, name := range path {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, _ := t.(*types.Named)
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return ""
		}
		var field *types.Var
		for j := 0; j < st.NumFields(); j++ {
			if st.Field(j).Name() == name {
				field = st.Field(j)
				break
			}
		}
		if field == nil {
			return ""
		}
		if i == len(path)-1 {
			if named == nil {
				return ""
			}
			return named.Obj().Name() + "." + name
		}
		t = field.Type()
	}
	return ""
}

// reportOnce deduplicates diagnostics per (position, message) so loop
// re-walks do not double-report.
func (ff *funcFlow) reportOnce(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	k := fmt.Sprintf("%d:%s", pos, msg)
	if ff.reported[k] {
		return
	}
	ff.reported[k] = true
	ff.lc.pass.Reportf(pos, "%s", msg)
}

// --- statement walking -----------------------------------------------------

func (ff *funcFlow) walkStmt(s ast.Stmt, in flowState) flowState {
	if s == nil {
		return in
	}
	if in.dead {
		// Still walk for nested reporting consistency? No: unreachable code
		// is not analyzed (matches the lattice's reachability).
		return in
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		st := in
		for _, stmt := range s.List {
			st = ff.walkStmt(stmt, st)
		}
		return st
	case *ast.ExprStmt:
		st := ff.walkExpr(s.X, in, false)
		// An explicit panic() statement terminates the path: locks it leaves
		// held are released by deferred unlocks (or leaked into a crash that
		// no longer cares), so the exit-balance check does not apply.
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isBuiltin(ff.lc.pass.Info, call, "panic") {
			st.dead = true
		}
		return st
	case *ast.AssignStmt:
		return ff.walkAssign(s, in)
	case *ast.IncDecStmt:
		return ff.walkExpr(s.X, in, true)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return in
		}
		st := in
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				st = ff.walkExpr(v, st, false)
			}
		}
		return st
	case *ast.IfStmt:
		return ff.walkIf(s, in)
	case *ast.ForStmt:
		return ff.walkFor(s, in, "")
	case *ast.RangeStmt:
		return ff.walkRange(s, in, "")
	case *ast.SwitchStmt:
		return ff.walkSwitch(s, in, "")
	case *ast.TypeSwitchStmt:
		return ff.walkTypeSwitch(s, in, "")
	case *ast.SelectStmt:
		return ff.walkSelect(s, in)
	case *ast.ReturnStmt:
		st := in
		for _, r := range s.Results {
			st = ff.walkExpr(r, st, false)
		}
		ff.exits = append(ff.exits, st)
		st = st.clone()
		st.dead = true
		return st
	case *ast.BranchStmt:
		return ff.walkBranch(s, in)
	case *ast.DeferStmt:
		return ff.walkDefer(s, in)
	case *ast.GoStmt:
		// The spawned goroutine runs later with its own locks; analyze its
		// body with an empty held set and leave the caller's state alone.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			ff.walkStmt(fl.Body, newFlowState())
		}
		st := in
		for _, a := range s.Call.Args {
			st = ff.walkExpr(a, st, false)
		}
		return st
	case *ast.SendStmt:
		st := ff.walkExpr(s.Chan, in, false)
		st = ff.walkExpr(s.Value, st, false)
		ff.checkBlocking(s.Pos(), "channel send", st)
		return st
	case *ast.LabeledStmt:
		return ff.walkLabeled(s, in)
	case *ast.EmptyStmt:
		return in
	}
	return in
}

func (ff *funcFlow) walkLabeled(s *ast.LabeledStmt, in flowState) flowState {
	label := s.Label.Name
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		return ff.walkFor(inner, in, label)
	case *ast.RangeStmt:
		return ff.walkRange(inner, in, label)
	case *ast.SwitchStmt:
		return ff.walkSwitch(inner, in, label)
	case *ast.TypeSwitchStmt:
		return ff.walkTypeSwitch(inner, in, label)
	default:
		return ff.walkStmt(s.Stmt, in)
	}
}

func (ff *funcFlow) walkAssign(s *ast.AssignStmt, in flowState) flowState {
	st := in
	for _, r := range s.Rhs {
		st = ff.walkExpr(r, st, false)
	}
	for _, l := range s.Lhs {
		if id, ok := l.(*ast.Ident); ok && s.Tok == token.DEFINE {
			// New binding: record TryLock results for branch refinement.
			if len(s.Lhs) == len(s.Rhs) {
				if key, ok := ff.tryLockKey(s.Rhs[indexOf(s.Lhs, l)]); ok {
					if obj := ff.lc.pass.Info.Defs[id]; obj != nil {
						ff.tryBind[obj] = key
					}
				}
			}
			continue
		}
		st = ff.walkExpr(l, st, true)
	}
	return st
}

func indexOf(list []ast.Expr, e ast.Expr) int {
	for i, x := range list {
		if x == e {
			return i
		}
	}
	return 0
}

// tryLockKey recognizes a `mu.TryLock()` (or TryRLock) call and returns the
// lock's key.
func (ff *funcFlow) tryLockKey(e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "TryLock" && sel.Sel.Name != "TryRLock") {
		return "", false
	}
	tv, ok := ff.lc.pass.Info.Types[sel.X]
	if !ok || !isMutexType(tv.Type) {
		return "", false
	}
	return ff.keyOf(sel.X), true
}

func (ff *funcFlow) walkIf(s *ast.IfStmt, in flowState) flowState {
	st := in
	if s.Init != nil {
		st = ff.walkStmt(s.Init, st)
	}
	st = ff.walkExpr(s.Cond, st, false)
	thenIn, elseIn := ff.refineCond(s.Cond, st)
	thenOut := ff.walkStmt(s.Body, thenIn)
	elseOut := elseIn
	if s.Else != nil {
		elseOut = ff.walkStmt(s.Else, elseIn)
	}
	return meet(thenOut, elseOut)
}

// refineCond splits the state on a TryLock condition: the lock is held on
// the branch where the call returned true — the then branch of
// `if mu.TryLock()`, the else branch of `if !mu.TryLock()`, and likewise for
// a bound result (`ok := mu.TryLock(); if ok`).
func (ff *funcFlow) refineCond(cond ast.Expr, st flowState) (thenIn, elseIn flowState) {
	thenIn, elseIn = st, st.clone()
	pos, key, read, trueBranch, ok := ff.condLock(cond, true)
	if !ok {
		return thenIn, elseIn
	}
	if trueBranch {
		thenIn = thenIn.clone()
		ff.acquire(&thenIn, key, ff.condClass(cond), read, pos)
	} else {
		ff.acquire(&elseIn, key, ff.condClass(cond), read, pos)
	}
	return thenIn, elseIn
}

// condLock matches cond against `x.TryLock()`, a bound TryLock result ident,
// or any chain of negations of either. trueBranch reports which branch of
// the enclosing if holds the lock; each negation flips it.
func (ff *funcFlow) condLock(cond ast.Expr, trueBranch bool) (pos token.Pos, key string, read, onTrue, ok bool) {
	switch c := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return ff.condLock(c.X, !trueBranch)
		}
	case *ast.CallExpr:
		if key, ok := ff.tryLockKey(c); ok {
			sel := c.Fun.(*ast.SelectorExpr)
			return c.Pos(), key, sel.Sel.Name == "TryRLock", trueBranch, true
		}
	case *ast.Ident:
		if obj := ff.lc.pass.Info.Uses[c]; obj != nil {
			if key, ok := ff.tryBind[obj]; ok {
				return c.Pos(), key, false, trueBranch, true
			}
		}
	}
	return token.NoPos, "", false, false, false
}

func (ff *funcFlow) condClass(cond ast.Expr) string {
	switch c := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		return ff.condClass(c.X)
	case *ast.CallExpr:
		if sel, ok := c.Fun.(*ast.SelectorExpr); ok {
			if selX, ok := sel.X.(*ast.SelectorExpr); ok {
				return ff.classOf(selX)
			}
		}
	}
	return ""
}

func (ff *funcFlow) walkFor(s *ast.ForStmt, in flowState, label string) flowState {
	st := in
	if s.Init != nil {
		st = ff.walkStmt(s.Init, st)
	}
	return ff.walkLoop(st, label, func(head flowState) flowState {
		h := head
		if s.Cond != nil {
			h = ff.walkExpr(s.Cond, h, false)
		}
		body := ff.walkStmt(s.Body, h)
		if s.Post != nil {
			body = ff.walkStmt(s.Post, body)
		}
		return body
	}, s.Cond == nil)
}

func (ff *funcFlow) walkRange(s *ast.RangeStmt, in flowState, label string) flowState {
	st := ff.walkExpr(s.X, in, false)
	if tv, ok := ff.lc.pass.Info.Types[s.X]; ok {
		if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
			ff.checkBlocking(s.Pos(), "channel range", st)
		}
	}
	return ff.walkLoop(st, label, func(head flowState) flowState {
		return ff.walkStmt(s.Body, head)
	}, false)
}

// walkLoop runs a loop body to a two-iteration fixpoint. The loop-out state
// is the meet of the zero-iteration state and the body's out state (plus any
// break states); an infinite loop (`for {}`) exits only via breaks.
func (ff *funcFlow) walkLoop(entry flowState, label string, body func(flowState) flowState, infinite bool) flowState {
	bt := &branchTargets{label: label, isLoop: true}
	ff.breaks = append(ff.breaks, bt)
	defer func() { ff.breaks = ff.breaks[:len(ff.breaks)-1] }()

	head := entry
	var bodyOut flowState
	for i := 0; i < 3; i++ {
		bt.breakTo = nil
		bt.continues = nil
		bodyOut = body(head.clone())
		next := meet(entry, bodyOut)
		for _, c := range bt.continues {
			next = meet(next, c)
		}
		if equalStates(next, head) {
			break
		}
		head = next
	}
	var out flowState
	if infinite {
		out = flowState{locks: lockSet{}, dead: true}
	} else {
		out = meet(head, bodyOut)
	}
	for _, b := range bt.breakTo {
		out = meet(out, b)
	}
	return out
}

func (ff *funcFlow) walkBranch(s *ast.BranchStmt, in flowState) flowState {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(ff.breaks) - 1; i >= 0; i-- {
			bt := ff.breaks[i]
			if label == "" || bt.label == label {
				bt.breakTo = append(bt.breakTo, in)
				break
			}
		}
	case token.CONTINUE:
		for i := len(ff.breaks) - 1; i >= 0; i-- {
			bt := ff.breaks[i]
			if bt.isLoop && (label == "" || bt.label == label) {
				bt.continues = append(bt.continues, in)
				break
			}
		}
	case token.GOTO:
		// No goto in the deterministic packages; treat as opaque exit.
		ff.exits = append(ff.exits, in)
	}
	st := in.clone()
	st.dead = true
	return st
}

func (ff *funcFlow) walkSwitch(s *ast.SwitchStmt, in flowState, label string) flowState {
	st := in
	if s.Init != nil {
		st = ff.walkStmt(s.Init, st)
	}
	if s.Tag != nil {
		st = ff.walkExpr(s.Tag, st, false)
	}
	return ff.walkCases(s.Body, st, label)
}

func (ff *funcFlow) walkTypeSwitch(s *ast.TypeSwitchStmt, in flowState, label string) flowState {
	st := in
	if s.Init != nil {
		st = ff.walkStmt(s.Init, st)
	}
	st = ff.walkStmt(s.Assign, st)
	return ff.walkCases(s.Body, st, label)
}

func (ff *funcFlow) walkCases(body *ast.BlockStmt, in flowState, label string) flowState {
	bt := &branchTargets{label: label}
	ff.breaks = append(ff.breaks, bt)
	defer func() { ff.breaks = ff.breaks[:len(ff.breaks)-1] }()

	out := flowState{locks: lockSet{}, dead: true}
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		st := in.clone()
		for _, e := range cc.List {
			st = ff.walkExpr(e, st, false)
		}
		for _, stmt := range cc.Body {
			st = ff.walkStmt(stmt, st)
		}
		out = meet(out, st)
	}
	if !hasDefault {
		out = meet(out, in)
	}
	for _, b := range bt.breakTo {
		out = meet(out, b)
	}
	return out
}

func (ff *funcFlow) walkSelect(s *ast.SelectStmt, in flowState) flowState {
	hasDefault := false
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		ff.checkBlocking(s.Pos(), "select without default", in)
	}
	out := flowState{locks: lockSet{}, dead: true}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		st := in.clone()
		if cc.Comm != nil {
			st = ff.walkCommStmt(cc.Comm, st)
		}
		for _, stmt := range cc.Body {
			st = ff.walkStmt(stmt, st)
		}
		out = meet(out, st)
	}
	return out
}

// walkCommStmt walks a select communication op without re-triggering the
// blocking check (selects are judged as a whole by their default clause).
func (ff *funcFlow) walkCommStmt(s ast.Stmt, in flowState) flowState {
	switch s := s.(type) {
	case *ast.SendStmt:
		st := ff.walkExpr(s.Chan, in, false)
		return ff.walkExpr(s.Value, st, false)
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return ff.walkExpr(u.X, in, false)
		}
	case *ast.AssignStmt:
		st := in
		for _, r := range s.Rhs {
			if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				st = ff.walkExpr(u.X, st, false)
				continue
			}
			st = ff.walkExpr(r, st, false)
		}
		return st
	}
	return ff.walkStmt(s, in)
}

func (ff *funcFlow) walkDefer(s *ast.DeferStmt, in flowState) flowState {
	st := in
	for _, a := range s.Call.Args {
		st = ff.walkExpr(a, st, false)
	}
	// defer mu.Unlock(): the lock stays held for the rest of the body and is
	// released on every exit, including panic unwinds.
	if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok {
		if isUnlockName(sel.Sel.Name) {
			if tv, ok := ff.lc.pass.Info.Types[sel.X]; ok && isMutexType(tv.Type) {
				key := ff.keyOf(sel.X)
				st = st.clone()
				if h, ok := st.locks[key]; ok {
					h.deferred = true
					st.locks[key] = h
				} else {
					ff.reportOnce(s.Pos(), "deferred unlock of %s, which is not provably held here", types.ExprString(sel.X))
				}
				return st
			}
		}
	}
	// defer func() { ...; mu.Unlock(); ... }(): scan the literal for unlock
	// calls and register each as a deferred release.
	if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
		st = st.clone()
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isUnlockName(sel.Sel.Name) {
				return true
			}
			if tv, ok := ff.lc.pass.Info.Types[sel.X]; ok && isMutexType(tv.Type) {
				key := ff.keyOf(sel.X)
				if h, ok := st.locks[key]; ok {
					h.deferred = true
					st.locks[key] = h
				}
			}
			return true
		})
		return st
	}
	return st
}

func isUnlockName(name string) bool { return name == "Unlock" || name == "RUnlock" }

// --- expression walking ----------------------------------------------------

// walkExpr threads the state through an expression, checking guarded field
// accesses (write reports when the expression is a store target) and
// applying lock operations and annotated call effects.
func (ff *funcFlow) walkExpr(e ast.Expr, in flowState, write bool) flowState {
	if e == nil {
		return in
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return ff.walkExpr(e.X, in, write)
	case *ast.Ident, *ast.BasicLit:
		return in
	case *ast.SelectorExpr:
		st := ff.walkExpr(e.X, in, false)
		ff.checkFieldAccess(e, st, write)
		return st
	case *ast.IndexExpr:
		st := ff.walkExpr(e.X, in, write)
		return ff.walkExpr(e.Index, st, false)
	case *ast.IndexListExpr:
		st := ff.walkExpr(e.X, in, write)
		for _, ix := range e.Indices {
			st = ff.walkExpr(ix, st, false)
		}
		return st
	case *ast.SliceExpr:
		st := ff.walkExpr(e.X, in, write)
		st = ff.walkExpr(e.Low, st, false)
		st = ff.walkExpr(e.High, st, false)
		return ff.walkExpr(e.Max, st, false)
	case *ast.StarExpr:
		return ff.walkExpr(e.X, in, write)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			st := ff.walkExpr(e.X, in, false)
			ff.checkBlocking(e.Pos(), "channel receive", st)
			return st
		}
		if e.Op == token.AND {
			// Taking a guarded field's address lets it escape the critical
			// section; require the lock as a write access.
			return ff.walkExpr(e.X, in, true)
		}
		return ff.walkExpr(e.X, in, false)
	case *ast.BinaryExpr:
		st := ff.walkExpr(e.X, in, false)
		return ff.walkExpr(e.Y, st, false)
	case *ast.KeyValueExpr:
		st := ff.walkExpr(e.Key, in, false)
		return ff.walkExpr(e.Value, st, false)
	case *ast.CompositeLit:
		st := in
		for _, el := range e.Elts {
			st = ff.walkExpr(el, st, false)
		}
		return st
	case *ast.TypeAssertExpr:
		return ff.walkExpr(e.X, in, false)
	case *ast.FuncLit:
		// A closure usually runs where it is created (worker bodies are the
		// exception and are reached via go statements, handled above):
		// analyze it against the current held set.
		ff.walkStmt(e.Body, in.clone())
		return in
	case *ast.CallExpr:
		return ff.walkCall(e, in)
	}
	return in
}

// walkCall applies a call's lock semantics: sync primitive operations,
// blocking calls, and annotated effects.
func (ff *funcFlow) walkCall(call *ast.CallExpr, in flowState) flowState {
	st := in
	// Walk the function expression: for selector calls the receiver chain is
	// itself a field access (a method call mutates through its pointer
	// receiver).
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, isMutexOp := ff.mutexOp(sel, st); isMutexOp {
			for _, a := range call.Args {
				s = ff.walkExpr(a, s, false)
			}
			return s
		}
		recvWrite := false
		if selInfo, ok := ff.lc.pass.Info.Selections[sel]; ok && selInfo.Kind() == types.MethodVal {
			if fn, ok := selInfo.Obj().(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					_, recvWrite = sig.Recv().Type().(*types.Pointer)
				}
			}
		}
		st = ff.walkExpr(sel.X, st, false)
		if x, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok && recvWrite {
			// Pointer-receiver method on a field: the call may mutate it.
			ff.checkFieldAccess(x, st, true)
		}
	} else {
		st = ff.walkExpr(call.Fun, st, false)
	}
	for _, a := range call.Args {
		st = ff.walkExpr(a, st, false)
	}

	fn := calleeFunc(ff.lc.pass.Info, call)
	if fn != nil {
		if isBlockingStdCall(fn) {
			ff.checkBlocking(call.Pos(), fn.FullName(), st)
		}
		if eff := ff.lc.effects[fn]; eff != nil {
			st = ff.applyEffects(call, fn, eff, st)
		}
	}
	return st
}

// mutexOp recognizes Lock/Unlock/RLock/RUnlock/TryLock calls on mutex-typed
// expressions and applies them to the state. Returns ok=false when sel is
// not a mutex operation.
func (ff *funcFlow) mutexOp(sel *ast.SelectorExpr, in flowState) (flowState, bool) {
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return in, false
	}
	tv, ok := ff.lc.pass.Info.Types[sel.X]
	if !ok || !isMutexType(tv.Type) {
		return in, false
	}
	st := ff.walkExpr(sel.X, in, false)
	key := ff.keyOf(sel.X)
	class := ""
	if x, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		class = ff.classOf(x)
	}
	st = st.clone()
	switch sel.Sel.Name {
	case "Lock", "RLock":
		ff.acquire(&st, key, class, sel.Sel.Name == "RLock", sel.Pos())
	case "Unlock", "RUnlock":
		if _, held := st.locks[key]; !held {
			// A held wildcard (//detvet:acquires *) covers unlocks of locks
			// the analyzer cannot name individually.
			if _, wild := st.locks[wildcardKey]; !wild {
				ff.reportOnce(sel.Pos(), "unlock of %s, which is not provably held here", types.ExprString(sel.X))
			}
		}
		delete(st.locks, key)
	case "TryLock", "TryRLock":
		// Branch refinement happens at the enclosing if; a TryLock whose
		// result is consumed elsewhere contributes nothing here.
	}
	return st, true
}

// acquire adds a lock to the state, reporting double acquisition and lock-
// order inversions against every currently held ranked lock. A double
// acquisition keeps the original held entry (and its deferred-release flag)
// so one bug reports once.
func (ff *funcFlow) acquire(st *flowState, key, class string, read bool, pos token.Pos) {
	if _, held := st.locks[key]; held && key != wildcardKey {
		ff.reportOnce(pos, "lock already held: second acquisition of %s on this path", describeLock(key, class))
		return
	}
	ff.checkOrder(st, class, pos)
	st.locks[key] = heldLock{class: class, read: read, pos: pos}
}

// checkOrder reports an inversion when a ranked lock is acquired while a
// strictly higher-ranked lock is held.
func (ff *funcFlow) checkOrder(st *flowState, class string, pos token.Pos) {
	if class == "" || class == wildcardKey {
		return
	}
	rank, ok := ff.lc.ranks[class]
	if !ok {
		return
	}
	for _, h := range st.locks {
		if h.class == "" || h.class == wildcardKey || h.class == class {
			continue
		}
		heldRank, ok := ff.lc.ranks[h.class]
		if !ok {
			continue
		}
		if heldRank > rank {
			ff.reportOnce(pos, "lock-order inversion: acquiring %s (rank %d) while holding %s (rank %d)",
				class, rank, h.class, heldRank)
		}
	}
}

// applyEffects applies a callee's holds/acquires/releases annotations at the
// call site, substituting receiver and parameter names with the caller's
// argument expressions.
func (ff *funcFlow) applyEffects(call *ast.CallExpr, fn *types.Func, eff *funcEffects, in flowState) flowState {
	st := in.clone()
	subst := func(ref lockRef) (string, string) {
		if ref.wildcard {
			return wildcardKey, wildcardKey
		}
		if ref.class != "" {
			return "class:" + ref.class, ref.class
		}
		arg := ff.argFor(call, fn, ref.base)
		if arg == nil {
			return "unresolved:" + ref.spec, ""
		}
		key := ff.keyOf(arg)
		var class string
		if tv, ok := ff.lc.pass.Info.Types[arg]; ok {
			class = classOfChain(tv.Type, ref.path)
		}
		for _, f := range ref.path {
			key += "." + f
		}
		return key, class
	}
	if eff.blocks {
		ff.checkBlocking(call.Pos(), fn.Name()+" (//detvet:blocks)", st)
	}
	for _, ref := range eff.holds {
		key, class := subst(ref)
		if !ff.satisfiedExact(st, key, class, false) {
			ff.reportOnce(call.Pos(), "call to %s requires %s held (//detvet:holds %s), but it is not provably held here",
				fn.Name(), describeLock(key, class), ref.spec)
		}
	}
	for _, ref := range eff.releases {
		key, _ := subst(ref)
		delete(st.locks, key)
	}
	for _, ref := range eff.acquires {
		key, class := subst(ref)
		ff.acquire(&st, key, class, false, call.Pos())
	}
	return st
}

// satisfiedExact reports whether a specific lock (by key, or any instance of
// its class for class-form refs) is held. needWrite demands a write hold.
func (ff *funcFlow) satisfiedExact(st flowState, key, class string, needWrite bool) bool {
	if _, ok := st.locks[wildcardKey]; ok {
		return true
	}
	if h, ok := st.locks[key]; ok && !(needWrite && h.read) {
		return true
	}
	if strings.HasPrefix(key, "class:") && class != "" {
		for _, h := range st.locks {
			if h.class == class && !(needWrite && h.read) {
				return true
			}
		}
	}
	return false
}

// argFor maps a receiver/parameter name of the callee to the corresponding
// argument expression at this call site.
func (ff *funcFlow) argFor(call *ast.CallExpr, fn *types.Func, name string) ast.Expr {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil && recv.Name() == name {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i).Name() == name {
			if i < len(call.Args) {
				return call.Args[i]
			}
			return nil
		}
	}
	return nil
}

// calleeFunc resolves the called function object, or nil for indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isBlockingStdCall reports the standard-library blocking entry points the
// held-across-blocking pass knows about: sync.Cond.Wait and
// sync.WaitGroup.Wait.
func isBlockingStdCall(fn *types.Func) bool {
	if fn.Name() != "Wait" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedSyncType(sig.Recv().Type(), "Cond") || isNamedSyncType(sig.Recv().Type(), "WaitGroup")
}

// checkBlocking reports a blocking operation performed while any annotated
// lock is held.
func (ff *funcFlow) checkBlocking(pos token.Pos, what string, st flowState) {
	for key, h := range st.locks {
		name := describeLock(key, h.class)
		ff.reportOnce(pos, "%s while holding %s: blocking with a monitor/stripe/pin mutex held can deadlock the turn protocol; release it first or annotate //detvet:lockcheck", what, name)
		return // one report per site; the held set is in the message's spirit, not its letter
	}
}

// describeLock renders a lock key for diagnostics, preferring the class.
func describeLock(key, class string) string {
	if class != "" && class != wildcardKey {
		return class
	}
	if i := strings.IndexByte(key, '@'); i >= 0 {
		if j := strings.IndexByte(key[i:], '.'); j >= 0 {
			return key[:i] + key[i+j:]
		}
		return key[:i]
	}
	return key
}

// checkFieldAccess verifies one selector against its guardedby annotation.
func (ff *funcFlow) checkFieldAccess(sel *ast.SelectorExpr, st flowState, write bool) {
	selInfo, ok := ff.lc.pass.Info.Selections[sel]
	if !ok || selInfo.Kind() != types.FieldVal {
		return
	}
	field, ok := selInfo.Obj().(*types.Var)
	if !ok {
		return
	}
	guard := ff.lc.guards[field]
	if guard == nil {
		return
	}
	if root := ff.rootObject(sel.X); root != nil && ff.fresh[root] {
		return // freshly constructed, still thread-local
	}
	if ff.guardSatisfied(sel, guard, st, write) {
		return
	}
	mode := "read"
	if write {
		mode = "write"
	}
	ff.reportOnce(sel.Sel.Pos(),
		"%s of %s.%s without holding %s (//detvet:guardedby): add the lock, or annotate //detvet:lockcheck with the stronger ordering that protects this access",
		mode, types.ExprString(sel.X), sel.Sel.Name, guard.spec)
}

// guardSatisfied checks a guardedby spec against the held set: sibling specs
// demand the same base's mutex; class specs accept any held instance. Write
// access demands a write hold (RLock does not suffice).
func (ff *funcFlow) guardSatisfied(sel *ast.SelectorExpr, guard *fieldGuard, st flowState, write bool) bool {
	if _, ok := st.locks[wildcardKey]; ok {
		return true
	}
	for _, alt := range guard.alts {
		if alt.sibling != "" {
			key := ff.keyOf(sel.X) + "." + alt.sibling
			if h, ok := st.locks[key]; ok && !(write && h.read) {
				return true
			}
			continue
		}
		for _, h := range st.locks {
			if h.class == alt.class && !(write && h.read) {
				return true
			}
		}
	}
	return false
}

// checkExits verifies lock balance at every function exit: locks still held
// must be covered by a holds or acquires annotation (or a registered defer),
// and every annotated acquires lock must actually be held.
func (ff *funcFlow) checkExits(fd *ast.FuncDecl, eff *funcEffects, entry flowState) {
	expected := map[string]bool{}
	wildcardOK := false
	if eff != nil {
		for _, refs := range [][]lockRef{eff.holds, eff.acquires} {
			for _, ref := range refs {
				key, _ := ff.refKey(fd, ref)
				if key == wildcardKey {
					wildcardOK = true
				}
				expected[key] = true
			}
		}
		for _, ref := range eff.releases {
			key, _ := ff.refKey(fd, ref)
			delete(expected, key)
			if key == wildcardKey {
				wildcardOK = false
			}
		}
	}
	for _, exit := range ff.exits {
		for key, h := range exit.locks {
			// A leftover wildcard is an annotation artifact (seeded by
			// //detvet:releases *), never a concrete lock.
			if key == wildcardKey || h.deferred || expected[key] || wildcardOK {
				continue
			}
			ff.reportOnce(h.pos,
				"%s may still be held when %s returns: unlock it, defer the unlock, or annotate //detvet:acquires",
				describeLock(key, h.class), fd.Name.Name)
		}
		for key := range expected {
			if key == wildcardKey {
				continue
			}
			if _, ok := exit.locks[key]; !ok {
				if _, wild := exit.locks[wildcardKey]; wild {
					continue
				}
				ff.reportOnce(fd.Name.Pos(),
					"%s is annotated to hold %s at return, but a path releases it",
					fd.Name.Name, describeLock(key, ""))
			}
		}
	}
}
