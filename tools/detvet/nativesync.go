package main

import (
	"go/ast"
	"go/token"
	"go/types"
)

// nativesync flags raw Go concurrency in internal/core: go statements, sync
// package primitives and channel operations. Everything the deterministic
// runtime schedules must go through the monitor + Kendo turn protocol; a
// stray goroutine, lock or channel is a host-scheduler dependency that the
// determinism proof does not cover. The audited implementation sites (the
// global monitor itself, the wake mailboxes, the bounded diff worker pool)
// carry //detvet:nativesync annotations explaining why they are safe.
var nativesync = &Analyzer{
	Name:     "nativesync",
	Doc:      "flag raw goroutines, sync primitives and channel ops in internal/core",
	Restrict: []string{"rfdet/internal/core", "rfdet/internal/slicestore"},
	Run:      runNativesync,
}

func runNativesync(pass *Pass) {
	for _, f := range pass.sourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement outside the monitor protocol: thread creation must be ordered by Kendo turns, or annotated //detvet:nativesync")
			case *ast.SendStmt:
				pass.Reportf(n.Pos(),
					"channel send outside the monitor protocol; annotate //detvet:nativesync with a justification")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(),
						"channel receive outside the monitor protocol; annotate //detvet:nativesync with a justification")
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(),
							"channel range outside the monitor protocol; annotate //detvet:nativesync with a justification")
					}
				}
			case *ast.CallExpr:
				if isBuiltin(pass.Info, n, "make") {
					if tv, ok := pass.Info.Types[n]; ok {
						if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
							pass.Reportf(n.Pos(),
								"channel creation outside the monitor protocol; annotate //detvet:nativesync with a justification")
						}
					}
				}
				if isBuiltin(pass.Info, n, "close") {
					pass.Reportf(n.Pos(),
						"channel close outside the monitor protocol; annotate //detvet:nativesync with a justification")
				}
			case *ast.SelectorExpr:
				pkgID, ok := n.X.(*ast.Ident)
				if !ok {
					return true
				}
				if pn := pkgName(pass.Info, pkgID); pn != nil && pn.Imported().Path() == "sync" {
					pass.Reportf(n.Pos(),
						"native synchronization sync.%s outside the monitor protocol; annotate //detvet:nativesync with a justification", n.Sel.Name)
				}
			}
			return true
		})
	}
}
