// Package main implements detvet, the determinism analyzer suite for this
// repository, run as a go vet tool:
//
//	go vet -vettool=$(make detvet-bin) ./...
//
// Three analyzers enforce the invariants the deterministic runtime depends
// on (DESIGN.md §12):
//
//   - maporder: no raw iteration over Go maps in the deterministic packages
//     (internal/core, internal/mem, internal/slicestore). Go randomizes map
//     iteration order per range statement, so any map-order-dependent
//     computation is a nondeterminism bug by construction.
//   - wallclock: no wall-clock reads (time.Now, time.Since) or math/rand
//     outside the packages whose whole job is wall-time measurement
//     (internal/stats, internal/trace, internal/harness).
//   - nativesync: no raw go statements, sync primitives or channel
//     operations in internal/core outside the audited monitor protocol.
//
// A finding is silenced by an annotation comment on the same line as the
// offending construct, or on the line directly above it:
//
//	//detvet:<analyzer> <justification>
//
// The justification is mandatory: a bare annotation is itself a finding.
// An annotation suppresses every finding of its analyzer inside the full
// syntax node it is attached to (so one annotation before a `go func` or a
// `select` covers the channel operations in its body).
package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer is one named determinism check.
type Analyzer struct {
	Name string // analyzer name for report/help output
	Doc  string // one-line description for -flags/help output

	// Annotation is the token after "//detvet:" that silences this
	// analyzer. Defaults to Name.
	Annotation string

	// Restrict limits the analyzer to these import paths (after stripping
	// go vet's " [pkg.test]" variant suffix). Empty means every package.
	Restrict []string
	// Exempt skips these import paths even when Restrict is empty.
	Exempt []string

	Run func(*Pass)
}

// applies reports whether the analyzer runs on the package with the given
// (stripped) import path.
func (a *Analyzer) applies(pkgPath string) bool {
	for _, p := range a.Exempt {
		if p == pkgPath {
			return false
		}
	}
	if len(a.Restrict) == 0 {
		return true
	}
	for _, p := range a.Restrict {
		if p == pkgPath {
			return true
		}
	}
	return false
}

// A Pass is one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	PkgPath  string

	diags       []Diagnostic
	suppression []posRange // intervals silenced by this analyzer's annotations
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

type posRange struct{ lo, hi token.Pos }

// Reportf records a finding unless an annotation suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	for _, r := range p.suppression {
		if pos >= r.lo && pos < r.hi {
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// sourceFiles returns the package files the analyzers inspect: generated
// vet variants aside, everything except _test.go files (tests legitimately
// spawn goroutines, read clocks and iterate maps).
func (p *Pass) sourceFiles() []*ast.File {
	files := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	return files
}

// annotationPrefix is the comment marker all analyzers share.
const annotationPrefix = "detvet:"

// prepareAnnotations scans the pass's files for //detvet:<name> comments
// belonging to this analyzer, records the suppressed source intervals, and
// reports bare annotations (missing justification) as findings. Must run
// before the analyzer body so suppression is in place.
func (p *Pass) prepareAnnotations() {
	tok := p.Analyzer.Annotation
	if tok == "" {
		tok = p.Analyzer.Name
	}
	for _, f := range p.sourceFiles() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+annotationPrefix)
				if !ok {
					continue
				}
				name, rest, _ := strings.Cut(text, " ")
				if name != tok {
					continue
				}
				// Anything after an embedded "//" is a trailing comment
				// (e.g. the fixture "// want" markers), not justification.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				if strings.TrimSpace(rest) == "" {
					p.diags = append(p.diags, Diagnostic{
						Pos:     c.Pos(),
						Message: fmt.Sprintf("//detvet:%s annotation requires a justification", tok),
					})
					continue
				}
				if n := p.annotatedNode(f, c); n != nil {
					p.suppression = append(p.suppression, posRange{n.Pos(), n.End()})
				}
			}
		}
	}
}

// annotatedNode resolves the syntax node an annotation comment governs: the
// outermost non-comment node that starts on the comment's line (end-of-line
// annotation) or on the following line (annotation on its own line).
func (p *Pass) annotatedNode(f *ast.File, c *ast.Comment) ast.Node {
	line := p.Fset.Position(c.Pos()).Line
	var found ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if found != nil || n == nil {
			return false
		}
		switch n.(type) {
		case *ast.File, *ast.Comment, *ast.CommentGroup:
			return true
		}
		start := p.Fset.Position(n.Pos()).Line
		if start == line || start == line+1 {
			// Skip the annotation comment's own group neighbours: a node
			// must contain code, which any non-comment node does.
			if n.Pos() != c.Pos() {
				found = n
				return false
			}
		}
		return true
	})
	return found
}

// pkgName resolves an identifier to the package it names, or nil.
func pkgName(info *types.Info, id *ast.Ident) *types.PkgName {
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn
	}
	return nil
}

// isBuiltin reports whether the call's function is the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}
