package main

import (
	"go/ast"
	"strconv"
)

// wallclock flags wall-clock reads — time.Now, time.Since and anything from
// math/rand — outside the packages whose job is wall-time measurement.
// Deterministic code must take time from the virtual clock (vtime) and
// durations from internal/stats' nanos plumbing; a wall-clock read anywhere
// else either leaks host timing into results or is dead measurement code.
var wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "flag wall-clock and math/rand use outside the measurement packages",
	Exempt: []string{
		"rfdet/internal/stats",
		"rfdet/internal/trace",
		"rfdet/internal/harness",
	},
	Run: runWallclock,
}

func runWallclock(pass *Pass) {
	for _, f := range pass.sourceFiles() {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"import of %s in a deterministic package: randomness must come from the workload seed, or be annotated //detvet:wallclock", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn := pkgName(pass.Info, pkgID)
			if pn == nil {
				return true
			}
			switch pn.Imported().Path() {
			case "time":
				if sel.Sel.Name == "Now" || sel.Sel.Name == "Since" {
					pass.Reportf(sel.Pos(),
						"wall-clock read time.%s in a deterministic package: use internal/stats (measurement) or vtime (modeled time), or annotate //detvet:wallclock", sel.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				pass.Reportf(sel.Pos(),
					"use of %s.%s in a deterministic package: randomness must come from the workload seed, or be annotated //detvet:wallclock", pkgID.Name, sel.Sel.Name)
			}
			return true
		})
	}
}
