package main

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"testing"
)

// The fixture tests mirror x/tools' analysistest: each analyzer runs over
// testdata/src/<name>/ and the diagnostics must line up 1:1 with the
// `// want "regex"` comments in the fixtures (same file, same line,
// message matching the regex). Fixtures are type-checked with the source
// importer so the test needs no pre-built export data.

func TestMaporderFixtures(t *testing.T)   { runFixture(t, maporder) }
func TestWallclockFixtures(t *testing.T)  { runFixture(t, wallclock) }
func TestNativesyncFixtures(t *testing.T) { runFixture(t, nativesync) }
func TestLockcheckFixtures(t *testing.T)  { runFixture(t, lockcheck) }
func TestPincheckFixtures(t *testing.T)   { runFixture(t, pincheck) }

// TestStatwireFixtures runs the whole-program statwire pass with every
// configured role (stats package, mark package, surface packages) pointed at
// the fixture package itself.
func TestStatwireFixtures(t *testing.T) {
	fset, files, pkg, info := loadFixture(t, statwire.Name)
	pass := &Pass{Analyzer: statwire, Fset: fset, Files: files, Pkg: pkg, Info: info, PkgPath: statwire.Name}
	pass.prepareAnnotations()
	runStatwire([]*Pass{pass}, statwireConfig{
		statsPkg:    statwire.Name,
		statsType:   "Stats",
		markPkg:     statwire.Name,
		surfacePkgs: []string{statwire.Name},
	})
	matchWants(t, fset, files, pass.diags)
}

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

func loadFixture(t *testing.T, name string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixtures in %s: %v", dir, err)
	}
	sort.Strings(names)

	fset := token.NewFileSet()
	var files []*ast.File
	for _, fname := range names {
		f, err := parser.ParseFile(fset, fname, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		t.Fatalf("fixture does not type-check: %v", err)
	}
	return fset, files, pkg, info
}

func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	fset, files, pkg, info := loadFixture(t, a.Name)

	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, Info: info, PkgPath: a.Name}
	pass.prepareAnnotations()
	a.Run(pass)
	matchWants(t, fset, files, pass.diags)
}

func matchWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []Diagnostic) {
	t.Helper()
	type expectation struct {
		file    string
		line    int
		re      *regexp.Regexp
		matched bool
	}
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), m[1], err)
				}
				wants = append(wants, &expectation{
					file: fset.Position(c.Pos()).Filename,
					line: fset.Position(c.Pos()).Line,
					re:   re,
				})
			}
		}
	}

	for _, d := range diags {
		posn := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == posn.Filename && w.line == posn.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", posn, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// TestApplies pins the package targeting: restriction lists, the exemption
// list and go vet's " [pkg.test]" import path variants.
func TestApplies(t *testing.T) {
	cases := []struct {
		a    *Analyzer
		path string
		want bool
	}{
		{maporder, "rfdet/internal/core", true},
		{maporder, "rfdet/internal/mem", true},
		{maporder, "rfdet/internal/slicestore", true},
		{maporder, "rfdet/internal/workloads", false},
		{maporder, "rfdet", false},
		{wallclock, "rfdet/internal/core", true},
		{wallclock, "rfdet/cmd/rfdet-run", true},
		{wallclock, "rfdet/internal/stats", false},
		{wallclock, "rfdet/internal/trace", false},
		{wallclock, "rfdet/internal/harness", false},
		{nativesync, "rfdet/internal/core", true},
		{nativesync, "rfdet/internal/slicestore", true},
		{nativesync, "rfdet/internal/mem", false},
		{lockcheck, "rfdet/internal/core", true},
		{lockcheck, "rfdet/internal/alloc", true},
		{lockcheck, "rfdet/internal/kendo", true},
		{lockcheck, "rfdet/internal/harness", false},
		{lockcheck, "rfdet/cmd/rfdet-run", false},
		{pincheck, "rfdet/internal/slicestore", true},
		{pincheck, "rfdet/internal/alloc", true},
		{pincheck, "rfdet/internal/kendo", false},
		{pincheck, "rfdet/internal/trace", false},
	}
	for _, c := range cases {
		if got := c.a.applies(c.path); got != c.want {
			t.Errorf("%s.applies(%q) = %v, want %v", c.a.Name, c.path, got, c.want)
		}
	}
	if got := strippedPath("rfdet/internal/mem [rfdet/internal/mem.test]"); got != "rfdet/internal/mem" {
		t.Errorf("strippedPath test variant = %q", got)
	}
	if got := strippedPath("rfdet/internal/mem.test"); got != "rfdet/internal/mem.test" {
		t.Errorf("strippedPath test main = %q", got)
	}
}
