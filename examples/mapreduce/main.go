// Mapreduce: a Phoenix-style wordcount on the public API.
//
// The map phase forks workers over disjoint shards of a text; each worker
// counts words into its own region of shared memory; the reduce phase runs
// after the joins, which — under DLRC — propagate exactly the workers'
// modifications to the main thread (paper §4.1, thread join). The program
// is race-free, so every runtime (deterministic or not) computes the same
// counts; the example verifies that by running it on all four runtimes.
//
//	go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"

	"rfdet"
)

const corpus = `the quick brown fox jumps over the lazy dog
the dog barks and the fox runs away over the hill
a lazy afternoon for the quick dog and the brown fox`

func wordcount(t rfdet.Thread) {
	text := []byte(corpus)
	n := len(text)
	workers := 3
	buf := t.Malloc(uint64(n))
	t.WriteBytes(buf, text)
	// Each worker owns a (hash, count) table of 128 slots.
	const slots = 128
	tables := t.Malloc(uint64(16 * slots * workers))

	var ids []rfdet.ThreadID
	for w := 0; w < workers; w++ {
		me := w
		ids = append(ids, t.Spawn(func(t rfdet.Thread) {
			lo := n * me / workers
			hi := n * (me + 1) / workers
			// Start at a word boundary.
			for lo > 0 && lo < hi && t.Load8(buf+rfdet.Addr(lo-1)) > ' ' {
				lo++
			}
			h, inWord := uint64(1469598103934665603), false
			emit := func() {
				s := int(h % slots)
				for {
					slot := tables + rfdet.Addr(16*(me*slots+s))
					cur := t.Load64(slot)
					if cur == h || cur == 0 {
						t.Store64(slot, h)
						t.Store64(slot+8, t.Load64(slot+8)+1)
						return
					}
					s = (s + 1) % slots
				}
			}
			for i := lo; ; i++ {
				var b byte
				if i < n {
					b = t.Load8(buf + rfdet.Addr(i))
				}
				if b > ' ' {
					if !inWord && i >= hi {
						break
					}
					h = (h ^ uint64(b)) * 1099511628211
					inWord = true
				} else {
					if inWord {
						emit()
						h, inWord = 1469598103934665603, false
					}
					if i >= hi {
						break
					}
				}
			}
		}))
	}
	for _, id := range ids {
		t.Join(id)
	}
	// Reduce: fold all tables commutatively.
	var words, distinctHash uint64
	for w := 0; w < workers; w++ {
		for s := 0; s < slots; s++ {
			slot := tables + rfdet.Addr(16*(w*slots+s))
			if h := t.Load64(slot); h != 0 {
				words += t.Load64(slot + 8)
				distinctHash ^= h
			}
		}
	}
	t.Observe(words, distinctHash)
}

func main() {
	runtimes := []rfdet.Runtime{
		rfdet.NewPThreads(), rfdet.NewDThreads(), rfdet.NewPF(), rfdet.NewCI(),
	}
	fmt.Println("wordcount on four runtimes (race-free ⇒ identical results):")
	var ref []uint64
	for _, rt := range runtimes {
		rep, err := rt.Run(wordcount)
		if err != nil {
			log.Fatal(err)
		}
		obs := rep.Observations[0]
		fmt.Printf("  %-9s words=%d table-fold=%#x  vtime=%d\n",
			rt.Name(), obs[0], obs[1], rep.VirtualTime)
		if ref == nil {
			ref = obs
		} else if obs[0] != ref[0] || obs[1] != ref[1] {
			log.Fatalf("%s disagrees with the reference result", rt.Name())
		}
	}
	fmt.Println("all runtimes agree")
}
