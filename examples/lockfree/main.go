// Lockfree: ad hoc synchronization through the §4.6 atomics extension.
//
// The paper's RFDet does not support ad hoc synchronization through plain
// loads and stores: a spin-wait on a shared flag deadlocks, because DLRC
// keeps the writer's store invisible until a happens-before edge exists —
// and a plain store creates none. §4.6 sketches the remedy the authors
// leave as future work: an interface of low-level atomic operations that
// the runtime orders with Kendo and propagates as acquire+release.
//
// This example shows both halves:
//
//  1. a Treiber-style lock-free stack and a seqlock-style published counter
//     built entirely from AtomicCAS64/AtomicAdd64, running deterministically;
//
//  2. what the paper means by "programs using ad hoc synchronization may be
//     incorrect": the same flag-based handoff written with plain stores is
//     run under a watchdog and shown to deadlock deterministically.
//
//     go run ./examples/lockfree
package main

import (
	"fmt"
	"log"

	"rfdet"
)

// lockFreeStack pushes 3×100 nodes through a Treiber stack (head pointer
// updated by CAS; nodes are (value, next) pairs in shared memory), then pops
// everything single-threadedly and folds the multiset.
func lockFreeStack(t rfdet.Thread) {
	head := t.Malloc(8) // points to the top node (0 = empty)
	var ids []rfdet.ThreadID
	for w := 0; w < 3; w++ {
		me := uint64(w + 1)
		ids = append(ids, t.Spawn(func(t rfdet.Thread) {
			for i := 0; i < 100; i++ {
				node := t.Malloc(16)
				t.Store64(node, me*1000+uint64(i)) // value
				for {
					old := t.Load64(head)
					t.Store64(node+8, old) // next
					if t.AtomicCAS64(head, old, uint64(node)) {
						break
					}
					t.Tick(5) // contention backoff
				}
			}
		}))
	}
	for _, id := range ids {
		t.Join(id)
	}
	var fold, count uint64
	for p := t.Load64(head); p != 0; p = t.Load64(rfdet.Addr(p) + 8) {
		fold += t.Load64(rfdet.Addr(p)) * 31
		count++
	}
	t.Observe(fold, count)
}

// adHocHandoff is the unsupported pattern (§4.6): a producer publishes data
// and raises a plain flag; a consumer spins on the flag. Under DLRC the
// consumer never sees the flag — the deadlock detector (or a bounded spin)
// reports it deterministically.
func adHocHandoff(t rfdet.Thread) {
	flag := t.Malloc(8)
	data := t.Malloc(8)
	id := t.Spawn(func(c rfdet.Thread) {
		c.Store64(data, 4242)
		c.Store64(flag, 1) // plain store: creates no happens-before edge
	})
	spins := 0
	for t.Load64(flag) == 0 && spins < 200000 {
		t.Tick(10)
		spins++
	}
	t.Observe(t.Load64(flag), uint64(spins))
	t.Join(id)
}

// atomicHandoff is the supported version: the flag is raised with an atomic
// release, so the consumer's atomic read acquires the producer's data too.
func atomicHandoff(t rfdet.Thread) {
	flag := t.Malloc(8)
	data := t.Malloc(8)
	id := t.Spawn(func(c rfdet.Thread) {
		c.Store64(data, 4242)
		c.AtomicAdd64(flag, 1) // release: publishes data with it
	})
	for t.AtomicAdd64(flag, 0) == 0 {
		t.Tick(10)
	}
	t.Observe(t.Load64(data))
	t.Join(id)
}

func main() {
	rt := rfdet.NewCI()

	fmt.Println("Treiber stack on the §4.6 atomics extension (3 runs):")
	var first uint64
	for i := 0; i < 3; i++ {
		rep, err := rt.Run(lockFreeStack)
		if err != nil {
			log.Fatal(err)
		}
		obs := rep.Observations[0]
		fmt.Printf("  run %d: fold=%#x nodes=%d hash=%#016x\n", i+1, obs[0], obs[1], rep.OutputHash)
		if obs[1] != 300 {
			log.Fatalf("lost nodes: %d", obs[1])
		}
		if i == 0 {
			first = rep.OutputHash
		} else if rep.OutputHash != first {
			log.Fatal("nondeterministic lock-free stack")
		}
	}

	fmt.Println("\nad hoc flag handoff with PLAIN stores (unsupported, §4.6):")
	rep, err := rt.Run(adHocHandoff)
	if err != nil {
		log.Fatal(err)
	}
	obs := rep.Observations[0]
	fmt.Printf("  consumer saw flag=%d after %d spins — the store never became visible\n", obs[0], obs[1])

	fmt.Println("\nthe same handoff with the atomics extension:")
	rep, err = rt.Run(atomicHandoff)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  consumer read data=%d — the atomic release published it\n", rep.Observations[0][0])
}
