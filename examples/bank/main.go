// Bank: reproducible debugging of a concurrency bug.
//
// A classic scenario from the paper's motivation (§1): a bank with
// lock-protected accounts plus one buggy, unsynchronized audit counter.
// Under pthreads the corruption of the audit counter depends on the
// scheduler — the bug may vanish when you try to reproduce it. Under RFDet
// the exact same corrupted value appears on every run, so the bug is
// debuggable, and the program behaves identically in testing and production.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"

	"rfdet"
)

const (
	accounts  = 16
	transfers = 200
	tellers   = 4
)

func bank(t rfdet.Thread) {
	balances := t.Malloc(8 * accounts)
	audit := t.Malloc(8) // BUG: updated without a lock
	lockBase := rfdet.Addr(1 << 12)
	lockFor := func(acct uint64) rfdet.Addr { return lockBase + rfdet.Addr(8*acct) }

	for i := 0; i < accounts; i++ {
		t.Store64(balances+rfdet.Addr(8*i), 1000)
	}

	var ids []rfdet.ThreadID
	for w := 0; w < tellers; w++ {
		seed := uint64(w + 1)
		ids = append(ids, t.Spawn(func(t rfdet.Thread) {
			r := seed
			next := func() uint64 {
				r ^= r << 13
				r ^= r >> 7
				r ^= r << 17
				return r
			}
			for k := 0; k < transfers; k++ {
				from := next() % accounts
				to := next() % accounts
				if from == to {
					continue
				}
				amount := next() % 50
				// Lock ordering by account index prevents deadlock.
				lo, hi := from, to
				if lo > hi {
					lo, hi = hi, lo
				}
				t.Lock(lockFor(lo))
				t.Lock(lockFor(hi))
				fb := t.Load64(balances + rfdet.Addr(8*from))
				if fb >= amount {
					t.Store64(balances+rfdet.Addr(8*from), fb-amount)
					tb := t.Load64(balances + rfdet.Addr(8*to))
					t.Store64(balances+rfdet.Addr(8*to), tb+amount)
				}
				t.Unlock(lockFor(hi))
				t.Unlock(lockFor(lo))
				// The bug: a racy read-modify-write of the audit counter.
				t.Store64(audit, t.Load64(audit)+1)
			}
		}))
	}
	for _, id := range ids {
		t.Join(id)
	}

	var total uint64
	for i := 0; i < accounts; i++ {
		total += t.Load64(balances + rfdet.Addr(8*i))
	}
	t.Observe(total, t.Load64(audit))
}

func main() {
	fmt.Println("bank with a racy audit counter — three runs per runtime:")
	for _, rt := range []rfdet.Runtime{rfdet.NewPThreads(), rfdet.NewCI()} {
		fmt.Printf("\n%s:\n", rt.Name())
		seen := map[uint64]bool{}
		for i := 0; i < 3; i++ {
			rep, err := rt.Run(bank)
			if err != nil {
				log.Fatal(err)
			}
			obs := rep.Observations[0]
			fmt.Printf("  run %d: total-balance=%d audit=%d (expected audit ≤ %d)\n",
				i+1, obs[0], obs[1], tellers*transfers)
			seen[rep.OutputHash] = true
		}
		if len(seen) == 1 {
			fmt.Println("  → identical every time: the lost-update bug is reproducible")
		} else {
			fmt.Printf("  → %d distinct outcomes: good luck debugging that\n", len(seen))
		}
	}
}
