// Quickstart: a racy shared counter that is nevertheless deterministic.
//
// Four threads increment a shared counter — half of the increments under a
// lock, half intentionally racy. Under RFDet the program's result is still a
// pure function of its input: running it repeatedly (here, five times)
// always prints the same final counter and the same output hash, because
// deterministic lazy release consistency resolves even the data races
// deterministically (paper §3.4).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rfdet"
)

func main() {
	rt := rfdet.NewCI()
	prog := func(t rfdet.Thread) {
		counter := t.Malloc(8)
		mu := rfdet.Addr(64) // any address can back a mutex, as in pthreads

		var workers []rfdet.ThreadID
		for i := 0; i < 4; i++ {
			workers = append(workers, t.Spawn(func(t rfdet.Thread) {
				for k := 0; k < 100; k++ {
					if k%2 == 0 {
						// Properly synchronized increment.
						t.Lock(mu)
						t.Store64(counter, t.Load64(counter)+1)
						t.Unlock(mu)
					} else {
						// Racy increment: lost updates are possible — but
						// which updates are lost is deterministic.
						t.Store64(counter, t.Load64(counter)+1)
					}
				}
			}))
		}
		for _, id := range workers {
			t.Join(id)
		}
		t.Observe(t.Load64(counter))
	}

	fmt.Println("running the same racy program five times under RFDet:")
	var first uint64
	for i := 0; i < 5; i++ {
		rep, err := rt.Run(prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  run %d: counter=%-4d output-hash=%#016x\n",
			i+1, rep.Observations[0][0], rep.OutputHash)
		if i == 0 {
			first = rep.OutputHash
		} else if rep.OutputHash != first {
			log.Fatal("nondeterminism detected — this must never happen")
		}
	}
	fmt.Println("all runs identical: the data races were resolved deterministically")
}
