// Pipeline: a dedup-style bounded-queue pipeline with condition variables.
//
// This is the synchronization pattern where RFDet's lack of global barriers
// pays off most (paper §3.1 and Figure 7's dedup/ferret columns): producer
// and consumers synchronize constantly through a lock + two condition
// variables, while under a DThreads-style system every queue operation
// would drag every thread through a global fence. The example runs the same
// pipeline under DThreads and RFDet and prints both virtual times.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"

	"rfdet"
)

const items = 400

// pipeline builds a producer → 2 transformers → collector chain over one
// bounded queue pair.
func pipeline(t rfdet.Thread) {
	// Queue 1 layout: [mu, notEmpty, notFull, head, tail, count, closed] + ring.
	type q struct {
		mu, ne, nf, head, tail, count, closed, buf rfdet.Addr
	}
	mkq := func() q {
		base := t.Malloc(64 + 8*8)
		return q{base, base + 8, base + 16, base + 24, base + 32, base + 40, base + 48, base + 64}
	}
	push := func(t rfdet.Thread, qu q, v uint64) {
		t.Lock(qu.mu)
		for t.Load64(qu.count) == 8 {
			t.Wait(qu.nf, qu.mu)
		}
		tail := t.Load64(qu.tail)
		t.Store64(qu.buf+rfdet.Addr(8*tail), v)
		t.Store64(qu.tail, (tail+1)%8)
		t.Store64(qu.count, t.Load64(qu.count)+1)
		t.Signal(qu.ne)
		t.Unlock(qu.mu)
	}
	pop := func(t rfdet.Thread, qu q) (uint64, bool) {
		t.Lock(qu.mu)
		for t.Load64(qu.count) == 0 && t.Load64(qu.closed) == 0 {
			t.Wait(qu.ne, qu.mu)
		}
		if t.Load64(qu.count) == 0 {
			t.Unlock(qu.mu)
			return 0, false
		}
		head := t.Load64(qu.head)
		v := t.Load64(qu.buf + rfdet.Addr(8*head))
		t.Store64(qu.head, (head+1)%8)
		t.Store64(qu.count, t.Load64(qu.count)-1)
		t.Signal(qu.nf)
		t.Unlock(qu.mu)
		return v, true
	}
	closeq := func(t rfdet.Thread, qu q) {
		t.Lock(qu.mu)
		t.Store64(qu.closed, 1)
		t.Broadcast(qu.ne)
		t.Unlock(qu.mu)
	}

	q1, q2 := mkq(), mkq()
	doneCount := t.Malloc(8)
	doneLock := t.Malloc(8)

	var transformers []rfdet.ThreadID
	for i := 0; i < 2; i++ {
		transformers = append(transformers, t.Spawn(func(t rfdet.Thread) {
			for {
				v, ok := pop(t, q1)
				if !ok {
					break
				}
				v ^= v << 7
				v *= 0x9e3779b97f4a7c15
				push(t, q2, v)
			}
			t.Lock(doneLock)
			d := t.Load64(doneCount) + 1
			t.Store64(doneCount, d)
			if d == 2 {
				closeq(t, q2)
			}
			t.Unlock(doneLock)
		}))
	}
	collector := t.Spawn(func(t rfdet.Thread) {
		var fold, n uint64
		for {
			v, ok := pop(t, q2)
			if !ok {
				break
			}
			fold ^= v
			n++
		}
		t.Observe(fold, n)
	})
	for i := uint64(1); i <= items; i++ {
		push(t, q1, i)
	}
	closeq(t, q1)
	for _, id := range transformers {
		t.Join(id)
	}
	t.Join(collector)
}

func main() {
	fmt.Printf("bounded-queue pipeline, %d items:\n", items)
	var dthreadsVT, rfdetVT uint64
	for _, rt := range []rfdet.Runtime{rfdet.NewDThreads(), rfdet.NewCI()} {
		var first uint64
		for i := 0; i < 2; i++ {
			rep, err := rt.Run(pipeline)
			if err != nil {
				log.Fatal(err)
			}
			if i == 0 {
				first = rep.OutputHash
				obs := rep.Observations[3]
				fmt.Printf("  %-9s fold=%#016x items=%d vtime=%d locks=%d\n",
					rt.Name(), obs[0], obs[1], rep.VirtualTime, rep.Stats.Locks)
				if rt.Name() == "dthreads" {
					dthreadsVT = rep.VirtualTime
				} else {
					rfdetVT = rep.VirtualTime
				}
			} else if rep.OutputHash != first {
				log.Fatalf("%s: nondeterministic pipeline", rt.Name())
			}
		}
	}
	fmt.Printf("\nRFDet is %.1fx faster than the global-fence design on this\n",
		float64(dthreadsVT)/float64(rfdetVT))
	fmt.Println("pipeline: queue operations synchronize only the two threads involved.")
}
