package rfdet_test

import (
	"hash/fnv"
	"testing"

	"rfdet"
	"rfdet/internal/core"
	"rfdet/internal/replay"
)

// Replay round-trip under the extent-guided diff runtime.
//
// Two halves, mirroring §2's DMT-vs-R+R comparison with the new diffing in
// the loop:
//
//  1. The pthreads recorder/replayer must round-trip a schedule-dependent
//     program: replays reproduce the recorded observations AND the recorded
//     virtual time (virtual time is a pure function of the sync order the
//     log pins down).
//  2. RFDet needs no log at all — but its traced executions must be
//     self-identical across runs and identical between extent-guided and
//     full-page diffing, trace hash, virtual time and output alike.

// roundTripProgram is race-free but schedule-dependent: the final value of x
// encodes the order in which workers won the lock.
func roundTripProgram(t rfdet.Thread) {
	x := t.Malloc(8)
	mu := rfdet.Addr(64)
	var ids []rfdet.ThreadID
	for w := 0; w < 4; w++ {
		me := uint64(w + 1)
		ids = append(ids, t.Spawn(func(c rfdet.Thread) {
			for k := 0; k < 8; k++ {
				c.Lock(mu)
				c.Store64(x, c.Load64(x)*7+me) // non-commutative
				c.Unlock(mu)
			}
		}))
	}
	for _, id := range ids {
		t.Join(id)
	}
	t.Observe(t.Load64(x))
}

func TestReplayRoundTripReproducesVirtualTime(t *testing.T) {
	recRep, log, err := replay.NewRecorder().Record(roundTripProgram)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		repRep, err := replay.NewReplayer(log).Run(roundTripProgram)
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if repRep.VirtualTime != recRep.VirtualTime {
			t.Fatalf("replay %d: virtual time %d, recorded %d — the log did not pin the schedule",
				i, repRep.VirtualTime, recRep.VirtualTime)
		}
		if got, want := repRep.Observations[0][0], recRep.Observations[0][0]; got != want {
			t.Fatalf("replay %d: observed %d, recorded %d", i, got, want)
		}
	}
}

func TestTracedRunsIdenticalWithExtentDiffing(t *testing.T) {
	traceHash := func(fullPage bool) (uint64, *rfdet.Report) {
		opts := core.DefaultOptions()
		opts.Trace = true
		opts.FullPageDiff = fullPage
		rep, tr, err := core.New(opts).RunTraced(roundTripProgram)
		if err != nil {
			t.Fatal(err)
		}
		h := fnv.New64a()
		h.Write([]byte(tr.String()))
		return h.Sum64(), rep
	}
	firstHash, firstRep := traceHash(false)
	for i := 1; i < 3; i++ {
		h, rep := traceHash(false)
		if h != firstHash || rep.VirtualTime != firstRep.VirtualTime || rep.OutputHash != firstRep.OutputHash {
			t.Fatalf("run %d: trace=%#x vt=%d out=%#x, first trace=%#x vt=%d out=%#x",
				i, h, rep.VirtualTime, rep.OutputHash, firstHash, firstRep.VirtualTime, firstRep.OutputHash)
		}
	}
	// Full-page diffing must be observably indistinguishable.
	h, rep := traceHash(true)
	if h != firstHash || rep.VirtualTime != firstRep.VirtualTime || rep.OutputHash != firstRep.OutputHash {
		t.Fatalf("FullPageDiff: trace=%#x vt=%d out=%#x, extent-guided trace=%#x vt=%d out=%#x",
			h, rep.VirtualTime, rep.OutputHash, firstHash, firstRep.VirtualTime, firstRep.OutputHash)
	}
	// Sanity: the default run actually exercised the fast path.
	if firstRep.Stats.DiffBytesSkipped == 0 {
		t.Fatal("extent-guided run skipped no bytes — dirty tracking was not live")
	}
}
