GO ?= go

.PHONY: verify build test race bench fmt vet lint detvet-bin

verify:
	sh scripts/verify.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	GOMAXPROCS=4 $(GO) test -race ./internal/core/ ./internal/slicestore/ ./internal/kendo/

bench:
	$(GO) test -run xxx -bench . -benchtime 10x .

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# detvet-bin builds the determinism analyzer suite and prints the binary
# path (its only stdout), so it composes as: go vet -vettool=$(make detvet-bin) ./...
detvet-bin:
	@$(GO) build -o bin/detvet ./tools/detvet
	@echo $(CURDIR)/bin/detvet

# lint runs the repo's determinism analyzers (maporder, wallclock,
# nativesync) over the whole tree via go vet.
lint:
	$(GO) build -o bin/detvet ./tools/detvet
	$(GO) vet -vettool=$(CURDIR)/bin/detvet ./...
