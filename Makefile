GO ?= go

.PHONY: verify build test race bench fmt vet

verify:
	sh scripts/verify.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	GOMAXPROCS=4 $(GO) test -race ./internal/core/ ./internal/slicestore/ ./internal/kendo/

bench:
	$(GO) test -run xxx -bench . -benchtime 10x .

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...
