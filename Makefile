GO ?= go

.PHONY: verify build test race bench fmt vet lint detvet detvet-bin

verify:
	sh scripts/verify.sh

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	GOMAXPROCS=4 $(GO) test -race ./internal/core/ ./internal/slicestore/ ./internal/kendo/

bench:
	$(GO) test -run xxx -bench . -benchtime 10x .

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

# detvet-bin builds the determinism analyzer suite and prints the binary
# path (its only stdout), so it composes as: go vet -vettool=$(make detvet-bin) ./...
detvet-bin:
	@$(GO) build -o bin/detvet ./tools/detvet
	@echo $(CURDIR)/bin/detvet

# lint runs the repo's determinism analyzers over the whole tree via go vet
# (the per-package unitchecker protocol: maporder, wallclock, nativesync,
# lockcheck, pincheck).
lint:
	$(GO) build -o bin/detvet ./tools/detvet
	$(GO) vet -vettool=$(CURDIR)/bin/detvet ./...

# detvet runs the analyzers in standalone whole-program mode, which adds the
# cross-package statwire pass (stats wiring) on top of the vettool set.
# Incremental: package export data comes from the go build cache.
detvet:
	$(GO) run ./tools/detvet ./...
