module rfdet

go 1.22
