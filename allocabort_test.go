package rfdet_test

import (
	"strings"
	"testing"

	"rfdet"
	"rfdet/internal/core"
	"rfdet/internal/harness"
	"rfdet/internal/workloads"
)

// Double-free litmus: an allocator failure must surface as an error from Run
// on every runtime — the recoverable-abort path — never as an unrecovered
// panic that kills the host process, and never as a hang of the failing
// thread's peers.
func TestDoubleFreeAbortsRecoverably(t *testing.T) {
	runtimes := []rfdet.Runtime{
		rfdet.NewCI(),
		rfdet.NewPF(),
		rfdet.NewDThreads(),
		rfdet.NewCoreDet(1000),
		rfdet.NewPThreads(),
	}
	for _, rt := range runtimes {
		rt := rt
		t.Run(rt.Name(), func(t *testing.T) {
			_, err := rt.Run(func(th rfdet.Thread) {
				a := th.Malloc(64)
				th.Free(a)
				th.Free(a) // double free
			})
			if err == nil {
				t.Fatal("double free must fail the run")
			}
			if !strings.Contains(err.Error(), "free") {
				t.Fatalf("error %q does not describe the allocator failure", err)
			}
		})
	}
}

// The same, with peer threads blocked on synchronization the failing thread
// will never provide: the abort must unwind them so Run returns, rather than
// leaving the execution deadlocked behind the dead thread.
func TestDoubleFreeUnblocksPeers(t *testing.T) {
	runtimes := []rfdet.Runtime{
		rfdet.NewCI(),
		rfdet.NewDThreads(),
		rfdet.NewPThreads(),
	}
	for _, rt := range runtimes {
		rt := rt
		t.Run(rt.Name(), func(t *testing.T) {
			_, err := rt.Run(func(th rfdet.Thread) {
				mu, cond := rfdet.Addr(64), rfdet.Addr(128)
				flag := th.Malloc(8)
				waiter := th.Spawn(func(c rfdet.Thread) {
					c.Lock(mu)
					for c.Load64(flag) == 0 {
						c.Wait(cond, mu) // never signaled: main dies first
					}
					c.Unlock(mu)
				})
				a := th.Malloc(64)
				th.Free(a)
				th.Free(a) // double free while the waiter blocks
				th.Join(waiter)
			})
			if err == nil {
				t.Fatal("double free must fail the run")
			}
		})
	}
}

// TestServerReplicaAbortUnwinds is the server-shaped abort litmus: a replica
// whose request log injects a failing request (a zero-count barrier fired
// mid-service, with peer workers blocked on the condvar queue and the
// end-of-run barrier) must unwind cleanly — Run returns the recoverable
// abort, nothing hangs — and the replica checker must report it as
// divergent-by-abort while the clean replicas still agree byte-for-byte.
// This extends the kernel-level abort tests above to a full workload where
// the abort lands inside a lock/queue/barrier web, under both the seed's
// single commit-monitor domain and the sharded default.
func TestServerReplicaAbortUnwinds(t *testing.T) {
	cfg := workloads.Config{Threads: 4, Size: workloads.SizeTest}
	for _, shards := range []int{1, 4} {
		opts := core.DefaultOptions()
		opts.ShardCount = shards
		variants := []harness.ReplicaVariant{
			{Name: "clean-a", Opts: opts},
			{Name: "poisoned", Opts: opts, InjectAbort: true},
			{Name: "clean-b", Opts: opts},
		}
		rep := harness.RunServerReplicas(cfg, workloads.DefaultServerSeed, variants)
		if len(rep.Divergences) != 1 {
			t.Fatalf("shards=%d: divergences %v — want exactly the injected abort, with clean replicas agreeing",
				shards, rep.Divergences)
		}
		if !strings.Contains(rep.Divergences[0], "divergent-by-abort") {
			t.Fatalf("shards=%d: divergence %q not classified as abort", shards, rep.Divergences[0])
		}
		poisoned := rep.Runs[1]
		if poisoned.Err == nil || !strings.Contains(poisoned.Err.Error(), "barrier with count") {
			t.Fatalf("shards=%d: poisoned replica error = %v, want the zero-count barrier abort",
				shards, poisoned.Err)
		}
		for _, i := range []int{0, 2} {
			run := rep.Runs[i]
			if run.Err != nil {
				t.Fatalf("shards=%d: clean replica %d errored: %v", shards, i, run.Err)
			}
			if run.Summary.StateHash != rep.Runs[0].Summary.StateHash ||
				run.Summary.ResponseHash != rep.Runs[0].Summary.ResponseHash {
				t.Fatalf("shards=%d: clean replicas disagree after the abort", shards)
			}
		}
	}
}

// TestZeroCountBarrierAborts pins the pre-turn abort path: Barrier with a
// non-positive count fails before taking the deterministic turn or entering
// any monitor domain, so the abort reaches the runtime from outside every
// in-turn code path. The run must fail recoverably — and must unwind peers
// blocked on locks, condvars and joins at the moment the abort lands — under
// both the seed's single commit-monitor domain and the sharded default.
func TestZeroCountBarrierAborts(t *testing.T) {
	for _, shards := range []int{1, 4} {
		opts := rfdet.DefaultOptions()
		opts.ShardCount = shards
		_, err := rfdet.New(opts).Run(func(th rfdet.Thread) {
			mu, cond, bar := rfdet.Addr(64), rfdet.Addr(128), rfdet.Addr(192)
			flag := th.Malloc(8)
			holder := th.Spawn(func(c rfdet.Thread) {
				c.Lock(mu)
				for c.Load64(flag) == 0 {
					c.Wait(cond, mu) // never signaled: main aborts first
				}
				c.Unlock(mu)
			})
			th.Spawn(func(c rfdet.Thread) {
				c.Tick(1000)
				c.Lock(mu) // queued behind holder forever
				c.Unlock(mu)
			})
			th.Spawn(func(c rfdet.Thread) {
				c.Join(holder) // blocked on a thread that never exits
			})
			th.Tick(100000) // let every peer reach its blocking point
			th.Barrier(bar, 0)
		})
		if err == nil {
			t.Fatalf("shards=%d: zero-count barrier must fail the run", shards)
		}
		if !strings.Contains(err.Error(), "barrier with count") {
			t.Fatalf("shards=%d: error %q does not describe the barrier misuse", shards, err)
		}
	}
}
