package rfdet_test

import (
	"strings"
	"testing"

	"rfdet"
)

// Double-free litmus: an allocator failure must surface as an error from Run
// on every runtime — the recoverable-abort path — never as an unrecovered
// panic that kills the host process, and never as a hang of the failing
// thread's peers.
func TestDoubleFreeAbortsRecoverably(t *testing.T) {
	runtimes := []rfdet.Runtime{
		rfdet.NewCI(),
		rfdet.NewPF(),
		rfdet.NewDThreads(),
		rfdet.NewCoreDet(1000),
		rfdet.NewPThreads(),
	}
	for _, rt := range runtimes {
		rt := rt
		t.Run(rt.Name(), func(t *testing.T) {
			_, err := rt.Run(func(th rfdet.Thread) {
				a := th.Malloc(64)
				th.Free(a)
				th.Free(a) // double free
			})
			if err == nil {
				t.Fatal("double free must fail the run")
			}
			if !strings.Contains(err.Error(), "free") {
				t.Fatalf("error %q does not describe the allocator failure", err)
			}
		})
	}
}

// The same, with peer threads blocked on synchronization the failing thread
// will never provide: the abort must unwind them so Run returns, rather than
// leaving the execution deadlocked behind the dead thread.
func TestDoubleFreeUnblocksPeers(t *testing.T) {
	runtimes := []rfdet.Runtime{
		rfdet.NewCI(),
		rfdet.NewDThreads(),
		rfdet.NewPThreads(),
	}
	for _, rt := range runtimes {
		rt := rt
		t.Run(rt.Name(), func(t *testing.T) {
			_, err := rt.Run(func(th rfdet.Thread) {
				mu, cond := rfdet.Addr(64), rfdet.Addr(128)
				flag := th.Malloc(8)
				waiter := th.Spawn(func(c rfdet.Thread) {
					c.Lock(mu)
					for c.Load64(flag) == 0 {
						c.Wait(cond, mu) // never signaled: main dies first
					}
					c.Unlock(mu)
				})
				a := th.Malloc(64)
				th.Free(a)
				th.Free(a) // double free while the waiter blocks
				th.Join(waiter)
			})
			if err == nil {
				t.Fatal("double free must fail the run")
			}
		})
	}
}

// TestZeroCountBarrierAborts pins the pre-turn abort path: Barrier with a
// non-positive count fails before taking the deterministic turn or entering
// any monitor domain, so the abort reaches the runtime from outside every
// in-turn code path. The run must fail recoverably — and must unwind peers
// blocked on locks, condvars and joins at the moment the abort lands — under
// both the seed's single commit-monitor domain and the sharded default.
func TestZeroCountBarrierAborts(t *testing.T) {
	for _, shards := range []int{1, 4} {
		opts := rfdet.DefaultOptions()
		opts.ShardCount = shards
		_, err := rfdet.New(opts).Run(func(th rfdet.Thread) {
			mu, cond, bar := rfdet.Addr(64), rfdet.Addr(128), rfdet.Addr(192)
			flag := th.Malloc(8)
			holder := th.Spawn(func(c rfdet.Thread) {
				c.Lock(mu)
				for c.Load64(flag) == 0 {
					c.Wait(cond, mu) // never signaled: main aborts first
				}
				c.Unlock(mu)
			})
			th.Spawn(func(c rfdet.Thread) {
				c.Tick(1000)
				c.Lock(mu) // queued behind holder forever
				c.Unlock(mu)
			})
			th.Spawn(func(c rfdet.Thread) {
				c.Join(holder) // blocked on a thread that never exits
			})
			th.Tick(100000) // let every peer reach its blocking point
			th.Barrier(bar, 0)
		})
		if err == nil {
			t.Fatalf("shards=%d: zero-count barrier must fail the run", shards)
		}
		if !strings.Contains(err.Error(), "barrier with count") {
			t.Fatalf("shards=%d: error %q does not describe the barrier misuse", shards, err)
		}
	}
}
