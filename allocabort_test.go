package rfdet_test

import (
	"strings"
	"testing"

	"rfdet"
)

// Double-free litmus: an allocator failure must surface as an error from Run
// on every runtime — the recoverable-abort path — never as an unrecovered
// panic that kills the host process, and never as a hang of the failing
// thread's peers.
func TestDoubleFreeAbortsRecoverably(t *testing.T) {
	runtimes := []rfdet.Runtime{
		rfdet.NewCI(),
		rfdet.NewPF(),
		rfdet.NewDThreads(),
		rfdet.NewCoreDet(1000),
		rfdet.NewPThreads(),
	}
	for _, rt := range runtimes {
		rt := rt
		t.Run(rt.Name(), func(t *testing.T) {
			_, err := rt.Run(func(th rfdet.Thread) {
				a := th.Malloc(64)
				th.Free(a)
				th.Free(a) // double free
			})
			if err == nil {
				t.Fatal("double free must fail the run")
			}
			if !strings.Contains(err.Error(), "free") {
				t.Fatalf("error %q does not describe the allocator failure", err)
			}
		})
	}
}

// The same, with peer threads blocked on synchronization the failing thread
// will never provide: the abort must unwind them so Run returns, rather than
// leaving the execution deadlocked behind the dead thread.
func TestDoubleFreeUnblocksPeers(t *testing.T) {
	runtimes := []rfdet.Runtime{
		rfdet.NewCI(),
		rfdet.NewDThreads(),
		rfdet.NewPThreads(),
	}
	for _, rt := range runtimes {
		rt := rt
		t.Run(rt.Name(), func(t *testing.T) {
			_, err := rt.Run(func(th rfdet.Thread) {
				mu, cond := rfdet.Addr(64), rfdet.Addr(128)
				flag := th.Malloc(8)
				waiter := th.Spawn(func(c rfdet.Thread) {
					c.Lock(mu)
					for c.Load64(flag) == 0 {
						c.Wait(cond, mu) // never signaled: main dies first
					}
					c.Unlock(mu)
				})
				a := th.Malloc(64)
				th.Free(a)
				th.Free(a) // double free while the waiter blocks
				th.Join(waiter)
			})
			if err == nil {
				t.Fatal("double free must fail the run")
			}
		})
	}
}
