// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark executes real workload runs and reports the
// deterministic virtual-time makespan as the "vtime-ns" metric — the number
// every figure in the paper is a ratio of — alongside the host wall time.
//
//	go test -bench=. -benchmem                      # everything, test size
//	go test -bench BenchmarkFigure7 -benchtime 1x   # one figure
//
// The rendered artifacts themselves (normalized tables matching the paper's
// layout) come from `go run ./cmd/rfdet-bench all`.
package rfdet_test

import (
	"fmt"
	"testing"

	"rfdet"
	"rfdet/internal/replay"
	"rfdet/internal/stats"
	"rfdet/internal/workloads"
)

// benchSize keeps `go test -bench=.` affordable; cmd/rfdet-bench defaults
// to the larger "small" size for the rendered tables.
const benchSize = workloads.SizeTest

// benchRuntimes is the Figure 7 runtime set.
func benchRuntimes() []rfdet.Runtime {
	return []rfdet.Runtime{
		rfdet.NewPThreads(),
		rfdet.NewDThreads(),
		rfdet.NewPF(),
		rfdet.NewCI(),
	}
}

func runWorkload(b *testing.B, rt rfdet.Runtime, name string, threads int, size workloads.Size) {
	b.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	var vt uint64
	for i := 0; i < b.N; i++ {
		rep, err := rt.Run(w.Prog(workloads.Config{Threads: threads, Size: size}))
		if err != nil {
			b.Fatalf("%s on %s: %v", name, rt.Name(), err)
		}
		vt = rep.VirtualTime
	}
	b.ReportMetric(float64(vt), "vtime-ns")
}

// BenchmarkFigure7 measures every benchmark × runtime cell of Figure 7
// (execution time normalized to pthreads, 4 threads). Normalize the
// "vtime-ns" metric of each runtime against the pthreads row.
func BenchmarkFigure7(b *testing.B) {
	for _, name := range workloads.Names() {
		for _, rt := range benchRuntimes() {
			b.Run(fmt.Sprintf("%s/%s", name, rt.Name()), func(b *testing.B) {
				runWorkload(b, rt, name, 4, benchSize)
			})
		}
	}
}

// BenchmarkTable1 exercises the profiled RFDet-ci executions behind Table 1
// and reports the headline counters as metrics.
func BenchmarkTable1(b *testing.B) {
	for _, name := range workloads.Names() {
		b.Run(name, func(b *testing.B) {
			w, _ := workloads.ByName(name)
			rt := rfdet.NewCI()
			var st rfdet.Stats
			for i := 0; i < b.N; i++ {
				rep, err := rt.Run(w.Prog(workloads.Config{Threads: 4, Size: benchSize}))
				if err != nil {
					b.Fatal(err)
				}
				st = rep.Stats
			}
			b.ReportMetric(float64(st.Locks), "locks")
			b.ReportMetric(float64(st.MemOps()), "memops")
			b.ReportMetric(float64(st.StoresWithCopy), "stores-w-copy")
			b.ReportMetric(float64(st.RuntimeMemBytes), "rfdet-mem-bytes")
			b.ReportMetric(float64(st.GCCount), "gc")
		})
	}
}

// BenchmarkFigure8 measures the scalability series (2, 4, 8 threads) of
// RFDet-ci and pthreads; speedups are vtime(2)/vtime(n). As in the paper,
// dedup and ferret are omitted and lu-con represents lu-non.
func BenchmarkFigure8(b *testing.B) {
	skip := map[string]bool{"dedup": true, "ferret": true, "lu-non": true}
	for _, name := range workloads.Names() {
		if skip[name] {
			continue
		}
		for _, rt := range []rfdet.Runtime{rfdet.NewPThreads(), rfdet.NewCI()} {
			for _, n := range []int{2, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/threads=%d", name, rt.Name(), n), func(b *testing.B) {
					runWorkload(b, rt, name, n, benchSize)
				})
			}
		}
	}
}

// BenchmarkFigure9 measures the prelock / lazy-writes optimization study on
// the SPLASH-2 subset: speedup = vtime(baseline)/vtime(variant).
func BenchmarkFigure9(b *testing.B) {
	splash := []string{"ocean", "water-ns", "water-sp", "fft", "radix", "lu-con", "lu-non"}
	variants := []struct {
		name string
		opts rfdet.Options
	}{
		{"baseline", rfdet.Options{SliceMerging: true}},
		{"prelock", rfdet.Options{SliceMerging: true, Prelock: true}},
		{"lazywrites", rfdet.Options{SliceMerging: true, LazyWrites: true}},
		{"both", rfdet.Options{SliceMerging: true, Prelock: true, LazyWrites: true}},
	}
	for _, name := range splash {
		for _, v := range variants {
			b.Run(fmt.Sprintf("%s/%s", name, v.name), func(b *testing.B) {
				runWorkload(b, rfdet.New(v.opts), name, 4, benchSize)
			})
		}
	}
}

// BenchmarkRacey measures the §5.1 stress test itself and verifies
// determinism across all b.N iterations while doing so.
func BenchmarkRacey(b *testing.B) {
	for _, threads := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			w, _ := workloads.ByName("racey")
			rt := rfdet.NewCI()
			var first uint64
			for i := 0; i < b.N; i++ {
				rep, err := rt.Run(w.Prog(workloads.Config{Threads: threads, Size: benchSize}))
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					first = rep.OutputHash
				} else if rep.OutputHash != first {
					b.Fatal("racey produced different outputs across iterations")
				}
			}
		})
	}
}

// BenchmarkBarrierAblation quantifies the cost of global quantum barriers
// (Figure 1's design) directly: an imbalanced program — one compute-heavy
// thread, three lock-synchronizing threads sharing one lock — under RFDet
// (no global barriers), RCDC (fast path for same-thread re-acquires only:
// §3.1's "two threads cannot acquire the same lock without a global
// barrier"), DThreads (fence per sync) and CoreDet (fence per quantum).
// This regenerates the motivation for the paper's §3.1 argument.
func BenchmarkBarrierAblation(b *testing.B) {
	prog := func(t rfdet.Thread) {
		ctr := t.Malloc(8)
		mu := rfdet.Addr(64)
		heavy := t.Spawn(func(t rfdet.Thread) {
			t.Tick(300000) // long oblivious computation: T2 in Figure 1
		})
		var lockers []rfdet.ThreadID
		for i := 0; i < 3; i++ {
			lockers = append(lockers, t.Spawn(func(t rfdet.Thread) {
				for k := 0; k < 50; k++ {
					t.Lock(mu)
					t.Store64(ctr, t.Load64(ctr)+1)
					t.Unlock(mu)
					t.Tick(100)
				}
			}))
		}
		t.Join(heavy)
		for _, id := range lockers {
			t.Join(id)
		}
		t.Observe(t.Load64(ctr))
	}
	for _, rt := range []rfdet.Runtime{rfdet.NewCI(), rfdet.NewRCDC(10000), rfdet.NewDThreads(), rfdet.NewCoreDet(10000)} {
		b.Run(rt.Name(), func(b *testing.B) {
			var vt uint64
			for i := 0; i < b.N; i++ {
				rep, err := rt.Run(prog)
				if err != nil {
					b.Fatal(err)
				}
				if rep.Observations[0][0] != 150 {
					b.Fatalf("counter = %d, want 150", rep.Observations[0][0])
				}
				vt = rep.VirtualTime
			}
			b.ReportMetric(float64(vt), "vtime-ns")
		})
	}
}

// BenchmarkQuantumSweep shows the CoreDet-style quantum-tuning dilemma the
// paper's §2 describes: small quanta mean frequent global barriers (fence
// overhead), large quanta mean long waits for synchronization (imbalance).
// RFDet has no such knob because it has no barriers.
func BenchmarkQuantumSweep(b *testing.B) {
	// linear_regression: long synchronization-free compute, so the quantum
	// alone decides how many global barriers the CoreDet-style runtime
	// inserts.
	w, err := workloads.ByName("linear_regression")
	if err != nil {
		b.Fatal(err)
	}
	cfg := workloads.Config{Threads: 4, Size: workloads.SizeSmall}
	for _, q := range []uint64{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("coredet-q%d", q), func(b *testing.B) {
			runWorkloadW(b, rfdet.NewCoreDet(q), w, cfg)
		})
	}
	b.Run("rfdet-ci", func(b *testing.B) {
		runWorkloadW(b, rfdet.NewCI(), w, cfg)
	})
}

func runWorkloadW(b *testing.B, rt rfdet.Runtime, w workloads.Workload, cfg workloads.Config) {
	b.Helper()
	var vt uint64
	for i := 0; i < b.N; i++ {
		rep, err := rt.Run(w.Prog(cfg))
		if err != nil {
			b.Fatal(err)
		}
		vt = rep.VirtualTime
	}
	b.ReportMetric(float64(vt), "vtime-ns")
}

// BenchmarkMetadataGrowth measures the §5.4 space/time tradeoff: the
// metadata-space high-water of a program with silent (never-acquiring)
// threads, with and without the eager-collection annotation extension.
func BenchmarkMetadataGrowth(b *testing.B) {
	prog := func(t rfdet.Thread) {
		buf := t.Malloc(64 * 1024)
		mu := rfdet.Addr(64)
		chatty := t.Spawn(func(t rfdet.Thread) {
			for round := 0; round < 40; round++ {
				t.Lock(mu)
				for i := 0; i < 512; i++ {
					t.Store64(buf+rfdet.Addr(8*i), uint64(round+i))
				}
				t.Unlock(mu)
			}
		})
		silent := t.Spawn(func(t rfdet.Thread) {
			t.Tick(200000)
		})
		for round := 0; round < 40; round++ {
			t.Lock(mu)
			t.Tick(1600)
			t.Unlock(mu)
		}
		t.Join(chatty)
		t.Join(silent)
	}
	for _, hinted := range []bool{false, true} {
		name := "no-hint"
		opts := rfdet.Options{SliceMerging: true, MetadataCapacity: 128 * 1024, GCThresholdPct: 50}
		if hinted {
			name = "nocomm-hint"
			opts.NoCommHint = func(tid int32) bool { return tid == 2 }
		}
		b.Run(name, func(b *testing.B) {
			var hw uint64
			for i := 0; i < b.N; i++ {
				rep, err := rfdet.New(opts).Run(prog)
				if err != nil {
					b.Fatal(err)
				}
				hw = rep.Stats.MetadataBytes
			}
			b.ReportMetric(float64(hw), "metadata-bytes")
		})
	}
}

// BenchmarkMonitorContention stresses the decomposed global monitor: four
// threads exchange multi-page slices through one contended lock plus a
// shared atomic counter, so page diffing and slice application dominate and
// any work left under the monitor serializes the run. Wall time (ns/op) is
// the headline; monitor-acquires and the off-monitor diff-ns/apply-ns
// breakdown are reported so regressions can be attributed.
func BenchmarkMonitorContention(b *testing.B) {
	runMonitorContention(b, rfdet.NewCI())
}

// BenchmarkMonitorContentionPhaseTrace is the identical program with phase
// tracing enabled — the overhead comparison the tentpole's ≤2% budget is
// measured against (see EXPERIMENTS.md).
func BenchmarkMonitorContentionPhaseTrace(b *testing.B) {
	opts := rfdet.DefaultOptions()
	opts.PhaseTrace = true
	runMonitorContention(b, rfdet.New(opts))
}

// BenchmarkMonitorContentionRaceDetect is the identical program with the
// happens-before race detector enabled — the detection-overhead comparison
// for EXPERIMENTS.md (read tracking + per-slice access recording + end-of-run
// analysis, all off the deterministic path).
func BenchmarkMonitorContentionRaceDetect(b *testing.B) {
	opts := rfdet.DefaultOptions()
	opts.RaceDetect = true
	runMonitorContention(b, rfdet.New(opts))
}

// benchRelaxProfile records a stability-merged relaxation profile for the
// program, exactly as a deployment would before replaying race-relaxed.
func benchRelaxProfile(b *testing.B, prog rfdet.ThreadFunc) *rfdet.Profile {
	b.Helper()
	ra, err := rfdet.NewCIRace().Run(prog)
	if err != nil {
		b.Fatal(err)
	}
	rb, err := rfdet.NewCIRace().Run(prog)
	if err != nil {
		b.Fatal(err)
	}
	p, err := rfdet.MergeProfiles(ra.RelaxProfile, rb.RelaxProfile)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkMonitorContentionRaceRelaxed is the identical program replayed
// race-relaxed under a freshly recorded relaxation profile (DESIGN.md §15) —
// the turn-wait-elision comparison for EXPERIMENTS.md. runMonitorContention
// still asserts cross-iteration determinism, so a relaxation that changed
// the output could never report a speedup.
func BenchmarkMonitorContentionRaceRelaxed(b *testing.B) {
	runMonitorContention(b, rfdet.NewCIRelaxed(benchRelaxProfile(b, monitorContentionProg)))
}

func monitorContentionProg(t rfdet.Thread) {
	const (
		workers = 4
		rounds  = 30
		pages   = 8
	)
	data := t.Malloc(pages * 4096)
	sum := t.Malloc(8)
	mu := rfdet.Addr(64)
	var ids []rfdet.ThreadID
	for w := 0; w < workers; w++ {
		me := uint64(w + 1)
		ids = append(ids, t.Spawn(func(t rfdet.Thread) {
			for round := 0; round < rounds; round++ {
				t.Lock(mu)
				for p := 0; p < pages; p++ {
					base := data + rfdet.Addr(4096*p)
					for i := 0; i < 64; i++ {
						a := base + rfdet.Addr(8*i)
						t.Store64(a, t.Load64(a)+me*0x0101010101010101)
					}
				}
				t.Unlock(mu)
				t.AtomicAdd64(sum, me)
				t.Tick(100 * me)
			}
		}))
	}
	for _, id := range ids {
		t.Join(id)
	}
	t.Observe(t.Load64(data), t.Load64(sum))
}

func runMonitorContention(b *testing.B, rt rfdet.Runtime) {
	var st rfdet.Stats
	var first uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := rt.Run(monitorContentionProg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			first = rep.OutputHash
		} else if rep.OutputHash != first {
			b.Fatal("contention benchmark nondeterministic across iterations")
		}
		st = rep.Stats
	}
	b.ReportMetric(float64(st.MonitorAcquires), "monitor-acquires")
	b.ReportMetric(float64(st.DiffNanos), "diff-ns")
	b.ReportMetric(float64(st.ApplyNanos), "apply-ns")
}

// BenchmarkSparseWriteDiff quantifies the sub-page dirty-tracking win: four
// threads each touch many pages per slice but write only 16 bytes per page,
// the sparse-write pattern (scattered updates to a large shared structure)
// where full-page diffing does ~256× more byte comparisons than the writes
// justify. The "extent" and "fullpage" variants run the identical program
// with extent-guided and seed-style full-page slice diffing; "diff-ns" is
// the wall time spent in slice-end diffing, "scanned-bytes"/"skipped-bytes"
// the new Stats counters. The final "speedup" entry reports the
// fullpage/extent diff-time ratio — the tentpole's headline number.
func BenchmarkSparseWriteDiff(b *testing.B) {
	const (
		workers = 4
		rounds  = 20
		pages   = 64
	)
	prog := func(t rfdet.Thread) {
		data := t.Malloc(pages * 4096)
		mu := rfdet.Addr(64)
		var ids []rfdet.ThreadID
		for w := 0; w < workers; w++ {
			me := uint64(w + 1)
			ids = append(ids, t.Spawn(func(t rfdet.Thread) {
				for round := 0; round < rounds; round++ {
					t.Lock(mu)
					for p := 0; p < pages; p++ {
						// 16 bytes per page, at a per-worker offset: each
						// slice snapshots every page but dirties a sliver.
						a := data + rfdet.Addr(4096*p+256*int(me))
						t.Store64(a, t.Load64(a)+me*0x9e3779b97f4a7c15)
						t.Store64(a+8, t.Load64(a+8)+me)
					}
					t.Unlock(mu)
					t.Tick(50 * me)
				}
			}))
		}
		for _, id := range ids {
			t.Join(id)
		}
		var fold uint64
		for p := 0; p < pages; p++ {
			fold = fold*31 + t.Load64(data+rfdet.Addr(4096*p+256))
		}
		t.Observe(fold)
	}
	var diffNS [2]float64 // extent, fullpage
	var hash [2]uint64
	for vi, variant := range []struct {
		name     string
		fullPage bool
	}{{"extent", false}, {"fullpage", true}} {
		vi, variant := vi, variant
		b.Run(variant.name, func(b *testing.B) {
			opts := rfdet.DefaultOptions()
			opts.FullPageDiff = variant.fullPage
			rt := rfdet.New(opts)
			var st rfdet.Stats
			var first uint64
			for i := 0; i < b.N; i++ {
				rep, err := rt.Run(prog)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					first = rep.OutputHash
				} else if rep.OutputHash != first {
					b.Fatal("sparse-write benchmark nondeterministic across iterations")
				}
				st = rep.Stats
			}
			hash[vi] = first
			diffNS[vi] = float64(st.DiffNanos)
			b.ReportMetric(float64(st.DiffNanos), "diff-ns")
			b.ReportMetric(float64(st.DiffBytesScanned), "scanned-bytes")
			b.ReportMetric(float64(st.DiffBytesSkipped), "skipped-bytes")
			b.ReportMetric(float64(st.DirtyExtents), "extents")
		})
	}
	b.Run("speedup", func(b *testing.B) {
		if hash[0] != hash[1] {
			b.Fatalf("extent and fullpage outputs differ: %#x != %#x", hash[0], hash[1])
		}
		for i := 0; i < b.N; i++ {
		}
		b.ReportMetric(stats.Ratio(diffNS[1], diffNS[0]), "diff-speedup-x")
	})
}

// BenchmarkBarrierPropagation is the coalesced write-plan headline: eight
// threads each overwrite the SAME 16-page region between barriers, so every
// barrier merge propagates 7 overlapping full-region write sets whose
// last-writer-wins image is exactly one region. The seed applied all of them
// run by run (O(threads × bytes) under the monitor); the write plan applies
// each destination byte once (O(unique bytes)). Both variants run the
// identical program and must produce the identical output hash; "apply-ns"
// is the wall time in slice application and the final "speedup" entry is
// the nocoalesce/coalesce apply-time ratio — the acceptance target is ≥2×.
func BenchmarkBarrierPropagation(b *testing.B) {
	const (
		workers = 8
		rounds  = 6
		pages   = 16
	)
	prog := func(t rfdet.Thread) {
		data := t.Malloc(pages * 4096)
		bar := rfdet.Addr(64)
		var ids []rfdet.ThreadID
		for w := 0; w < workers; w++ {
			me := uint64(w + 1)
			ids = append(ids, t.Spawn(func(t rfdet.Thread) {
				for round := 0; round < rounds; round++ {
					// Full overlap: every worker writes every word of the
					// region, so the merge's unique bytes are 1/7 of its
					// input bytes.
					for p := 0; p < pages; p++ {
						base := data + rfdet.Addr(4096*p)
						for i := 0; i < 512; i++ {
							t.Store64(base+rfdet.Addr(8*i), me*0x9e3779b97f4a7c15+uint64(round*512+i))
						}
					}
					t.Barrier(bar, workers)
				}
			}))
		}
		for _, id := range ids {
			t.Join(id)
		}
		var fold uint64
		for p := 0; p < pages; p++ {
			fold = fold*31 + t.Load64(data+rfdet.Addr(4096*p))
		}
		t.Observe(fold)
	}
	var applyNS [2]float64 // coalesce, nocoalesce
	var hash [2]uint64
	for vi, variant := range []struct {
		name       string
		noCoalesce bool
	}{{"coalesce", false}, {"nocoalesce", true}} {
		vi, variant := vi, variant
		b.Run(variant.name, func(b *testing.B) {
			opts := rfdet.DefaultOptions()
			opts.NoCoalesce = variant.noCoalesce
			rt := rfdet.New(opts)
			var st rfdet.Stats
			var first uint64
			for i := 0; i < b.N; i++ {
				rep, err := rt.Run(prog)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					first = rep.OutputHash
				} else if rep.OutputHash != first {
					b.Fatal("barrier benchmark nondeterministic across iterations")
				}
				st = rep.Stats
			}
			hash[vi] = first
			applyNS[vi] = float64(st.ApplyNanos)
			b.ReportMetric(float64(st.ApplyNanos), "apply-ns")
			b.ReportMetric(float64(st.BytesPropagated), "propagated-bytes")
			b.ReportMetric(float64(st.BytesCoalescedAway), "coalesced-away-bytes")
		})
	}
	b.Run("speedup", func(b *testing.B) {
		if hash[0] != hash[1] {
			b.Fatalf("coalesce and nocoalesce outputs differ: %#x != %#x", hash[0], hash[1])
		}
		for i := 0; i < b.N; i++ {
		}
		b.ReportMetric(stats.Ratio(applyNS[1], applyNS[0]), "apply-speedup-x")
	})
}

// BenchmarkLockChainPropagation measures plan construction and sharing on a
// deep lock-grant chain: six threads contend one mutex, each critical
// section split into several slices by an atomic, with Prelock pre-merging
// at every release. With coalescing, each release builds one plan and the
// lockstep waiters reuse it ("plan-reuse"); overlapping writes across the
// collected slices are deduplicated ("coalesced-away-bytes").
func BenchmarkLockChainPropagation(b *testing.B) {
	const (
		workers = 6
		rounds  = 10
		words   = 4096 // 4 pages
	)
	prog := func(t rfdet.Thread) {
		buf := t.Malloc(words * 8)
		atom := t.Malloc(8)
		mu := rfdet.Addr(64)
		var ids []rfdet.ThreadID
		for w := 0; w < workers; w++ {
			me := uint64(w + 1)
			ids = append(ids, t.Spawn(func(t rfdet.Thread) {
				for round := 0; round < rounds; round++ {
					t.Lock(mu)
					t.AtomicAdd64(atom, me)
					for i := 0; i < words; i++ {
						a := buf + rfdet.Addr(8*i)
						t.Store64(a, t.Load64(a)+me)
					}
					t.Unlock(mu)
				}
			}))
		}
		for _, id := range ids {
			t.Join(id)
		}
		t.Observe(t.Load64(buf), t.Load64(atom))
	}
	var applyNS [2]float64
	var hash [2]uint64
	for vi, variant := range []struct {
		name       string
		noCoalesce bool
	}{{"coalesce", false}, {"nocoalesce", true}} {
		vi, variant := vi, variant
		b.Run(variant.name, func(b *testing.B) {
			opts := rfdet.DefaultOptions()
			opts.NoCoalesce = variant.noCoalesce
			rt := rfdet.New(opts)
			var st rfdet.Stats
			var first uint64
			for i := 0; i < b.N; i++ {
				rep, err := rt.Run(prog)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					first = rep.OutputHash
				} else if rep.OutputHash != first {
					b.Fatal("lock-chain benchmark nondeterministic across iterations")
				}
				st = rep.Stats
			}
			hash[vi] = first
			applyNS[vi] = float64(st.ApplyNanos)
			b.ReportMetric(float64(st.ApplyNanos), "apply-ns")
			b.ReportMetric(float64(st.PlanReuse), "plan-reuse")
			b.ReportMetric(float64(st.BytesCoalescedAway), "coalesced-away-bytes")
			b.ReportMetric(float64(st.CollectScanned), "collect-scanned")
		})
	}
	b.Run("speedup", func(b *testing.B) {
		if hash[0] != hash[1] {
			b.Fatalf("coalesce and nocoalesce outputs differ: %#x != %#x", hash[0], hash[1])
		}
		for i := 0; i < b.N; i++ {
		}
		b.ReportMetric(stats.Ratio(applyNS[1], applyNS[0]), "apply-speedup-x")
	})
}

// BenchmarkLazyFlush measures the lazy-writes pending patch: a writer
// repeatedly overwrites the same two pages under a lock while the consumer
// keeps acquiring the lock without touching those pages, so every round
// pends another full overwrite. The coalescing patch absorbs them
// last-writer-wins and the single eventual flush writes each byte once; the
// seed's raw list replayed every pended run. "elided-bytes" counts the
// overwritten bytes the flush never wrote.
func BenchmarkLazyFlush(b *testing.B) {
	const (
		rounds = 60
		words  = 1024 // 2 pages, fully overwritten every round
	)
	prog := func(t rfdet.Thread) {
		hot := t.Malloc(words * 8)
		flag := t.Malloc(8)
		mu := rfdet.Addr(64)
		writer := t.Spawn(func(t rfdet.Thread) {
			for round := 0; round < rounds; round++ {
				t.Lock(mu)
				for i := 0; i < words; i++ {
					t.Store64(hot+rfdet.Addr(8*i), uint64(round)*0x0101010101010101+uint64(i))
				}
				t.Store64(flag, uint64(round))
				t.Unlock(mu)
			}
		})
		// The consumer acquires every release (so the hot pages' updates are
		// propagated to it round after round) but reads only the flag page:
		// the hot pages stay pended until the very last load below.
		for round := 0; round < rounds; round++ {
			t.Lock(mu)
			t.Tick(200)
			t.Unlock(mu)
		}
		t.Join(writer)
		t.Observe(t.Load64(hot), t.Load64(hot+rfdet.Addr(8*(words-1))), t.Load64(flag))
	}
	var hash [2]uint64
	for vi, variant := range []struct {
		name       string
		noCoalesce bool
	}{{"coalesce", false}, {"nocoalesce", true}} {
		vi, variant := vi, variant
		b.Run(variant.name, func(b *testing.B) {
			opts := rfdet.DefaultOptions()
			opts.NoCoalesce = variant.noCoalesce
			if !opts.LazyWrites {
				b.Fatal("default options lost lazy writes")
			}
			rt := rfdet.New(opts)
			var st rfdet.Stats
			var first uint64
			for i := 0; i < b.N; i++ {
				rep, err := rt.Run(prog)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					first = rep.OutputHash
				} else if rep.OutputHash != first {
					b.Fatal("lazy-flush benchmark nondeterministic across iterations")
				}
				st = rep.Stats
			}
			hash[vi] = first
			b.ReportMetric(float64(st.LazyPendingApplied), "pended-runs-applied")
			b.ReportMetric(float64(st.LazyRunsElided), "elided-bytes")
			b.ReportMetric(float64(st.ApplyNanos), "apply-ns")
		})
	}
	b.Run("agree", func(b *testing.B) {
		if hash[0] != hash[1] {
			b.Fatalf("coalesce and nocoalesce outputs differ: %#x != %#x", hash[0], hash[1])
		}
		for i := 0; i < b.N; i++ {
		}
	})
}

// BenchmarkRecordingOverhead quantifies the §2 comparison between DMT and
// record-and-replay: an R+R system must log every synchronization operation
// (reported as "log-bytes"), while a DMT system achieves replayability by
// recording program inputs only — zero log bytes per run.
func BenchmarkRecordingOverhead(b *testing.B) {
	for _, name := range []string{"ocean", "water-ns", "dedup", "ferret"} {
		w, err := workloads.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		cfg := workloads.Config{Threads: 4, Size: benchSize}
		b.Run(name+"/pthreads-record", func(b *testing.B) {
			rec := replay.NewRecorder()
			var bytes uint64
			for i := 0; i < b.N; i++ {
				_, log, err := rec.Record(w.Prog(cfg))
				if err != nil {
					b.Fatal(err)
				}
				bytes = log.Bytes()
			}
			b.ReportMetric(float64(bytes), "log-bytes")
		})
		b.Run(name+"/rfdet-ci", func(b *testing.B) {
			rt := rfdet.NewCI()
			for i := 0; i < b.N; i++ {
				if _, err := rt.Run(w.Prog(cfg)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(0, "log-bytes") // inputs only (§2)
		})
	}
}

// BenchmarkServerThroughput measures the deterministic KV server — the
// replica workload — under the default, full-page-diff and uncoalesced
// stacks, reporting requests per second against both clocks: "req-s-virtual"
// divides the request count by the deterministic virtual-time makespan (the
// figure replicas must agree on), "req-s-host" by host wall time. Every
// variant must produce the same state hash, response hash and virtual time
// as the first — the benchmark doubles as the replica-equivalence assert, so
// a speedup from a divergent variant can never be reported.
func BenchmarkServerThroughput(b *testing.B) {
	w, err := workloads.ByName("server")
	if err != nil {
		b.Fatal(err)
	}
	requests := workloads.ServerRequests(benchSize)
	cfg := workloads.Config{Threads: 4, Size: benchSize}
	variants := []struct {
		name string
		opts func() rfdet.Options
	}{
		{"default", rfdet.DefaultOptions},
		{"fullpagediff", func() rfdet.Options {
			o := rfdet.DefaultOptions()
			o.FullPageDiff = true
			return o
		}},
		{"nocoalesce", func() rfdet.Options {
			o := rfdet.DefaultOptions()
			o.NoCoalesce = true
			return o
		}},
	}
	// The race-relaxed replica replays a freshly recorded relaxation profile;
	// the shared golden-fingerprint assert below makes its speedup claim
	// honest — it must match the strict stacks byte for byte.
	relaxProfile := benchRelaxProfile(b, w.Prog(cfg))
	variants = append(variants, struct {
		name string
		opts func() rfdet.Options
	}{"relaxed", func() rfdet.Options {
		o := rfdet.DefaultOptions()
		o.RaceRelaxed = true
		o.RelaxProfile = relaxProfile
		return o
	}})
	type fingerprint struct {
		state, resp, vtime uint64
	}
	var golden fingerprint
	haveGolden := false
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			rt := rfdet.New(v.opts())
			var fp fingerprint
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := rt.Run(w.Prog(cfg))
				if err != nil {
					b.Fatal(err)
				}
				sum, err := workloads.SummarizeServer(rep)
				if err != nil {
					b.Fatal(err)
				}
				got := fingerprint{sum.StateHash, sum.ResponseHash, rep.VirtualTime}
				if i == 0 {
					fp = got
				} else if got != fp {
					b.Fatal("server nondeterministic across iterations")
				}
			}
			b.StopTimer()
			if !haveGolden {
				golden, haveGolden = fp, true
			} else if fp != golden {
				b.Fatalf("%s replica fingerprint %+v diverged from default %+v", v.name, fp, golden)
			}
			b.ReportMetric(float64(requests)*1e9/float64(fp.vtime), "req-s-virtual")
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(requests*b.N)/secs, "req-s-host")
			}
		})
	}
}

// domainParallelProg is the sharding headline workload: four workers, each
// with a private mutex, a private atomic counter and a private data region,
// every sync var in a different 64-byte address range so the four hot paths
// live in four different commit-monitor domains. With one domain the four
// independent critical sections still serialize on the single monitor
// mutex; with four they only meet at spawn/join. The deterministic result
// is identical either way — runBenchmarkMonitorSharding asserts it.
func domainParallelProg(t rfdet.Thread) {
	const (
		workers = 4
		rounds  = 60
		pages   = 2
	)
	data := t.Malloc(workers * pages * 4096)
	sums := t.Malloc(workers * 4096)
	var ids []rfdet.ThreadID
	for w := 0; w < workers; w++ {
		me := uint64(w + 1)
		mu := rfdet.Addr(64 * (w + 1))
		mine := data + rfdet.Addr(w*pages*4096)
		sum := sums + rfdet.Addr(w*4096)
		ids = append(ids, t.Spawn(func(t rfdet.Thread) {
			for round := 0; round < rounds; round++ {
				t.Lock(mu)
				for p := 0; p < pages; p++ {
					base := mine + rfdet.Addr(4096*p)
					for i := 0; i < 64; i++ {
						a := base + rfdet.Addr(8*i)
						t.Store64(a, t.Load64(a)+me*0x0101010101010101)
					}
				}
				t.Unlock(mu)
				t.AtomicAdd64(sum, me)
				t.Tick(50 * me)
			}
		}))
	}
	var total uint64
	for w, id := range ids {
		t.Join(id)
		total += t.Load64(sums + rfdet.Addr(w*4096))
	}
	t.Observe(t.Load64(data), total)
}

// BenchmarkMonitorSharding compares the seed's single commit-monitor domain
// against the sharded default on the domain-parallel workload. The
// cross-variant hash assert makes the benchmark double as an equivalence
// test: speedup with different results would be meaningless.
func BenchmarkMonitorSharding(b *testing.B) {
	var golden uint64
	for _, shards := range []int{1, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			opts := rfdet.DefaultOptions()
			opts.ShardCount = shards
			rt := rfdet.New(opts)
			var st rfdet.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := rt.Run(domainParallelProg)
				if err != nil {
					b.Fatal(err)
				}
				if golden == 0 {
					golden = rep.OutputHash
				} else if rep.OutputHash != golden {
					b.Fatalf("shards=%d: output %#x differs from first run %#x", shards, rep.OutputHash, golden)
				}
				st = rep.Stats
			}
			b.ReportMetric(float64(st.MonitorAcquires), "monitor-acquires")
			b.ReportMetric(float64(st.CrossShardAcquires), "cross-domain-acquires")
			b.ReportMetric(float64(st.RendezvousOps), "rendezvous-ops")
		})
	}
}
