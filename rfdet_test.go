package rfdet_test

import (
	"testing"

	"rfdet"
)

// TestPublicConstructors checks that every advertised runtime constructor
// produces a working runtime with the documented name.
func TestPublicConstructors(t *testing.T) {
	cases := []struct {
		rt   rfdet.Runtime
		name string
	}{
		{rfdet.NewCI(), "rfdet-ci"},
		{rfdet.NewPF(), "rfdet-pf"},
		{rfdet.NewDThreads(), "dthreads"},
		{rfdet.NewCoreDet(10000), "coredet"},
		{rfdet.NewPThreads(), "pthreads"},
		{rfdet.New(rfdet.Options{Monitor: rfdet.MonitorPF}), "rfdet-pf"},
	}
	for _, c := range cases {
		if c.rt.Name() != c.name {
			t.Fatalf("Name() = %q, want %q", c.rt.Name(), c.name)
		}
		rep, err := c.rt.Run(func(th rfdet.Thread) {
			a := th.Malloc(8)
			th.Store64(a, 41)
			th.Observe(th.Load64(a) + 1)
		})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if rep.Observations[0][0] != 42 {
			t.Fatalf("%s: observed %v", c.name, rep.Observations[0])
		}
	}
}

// TestREADMEQuickstart runs the README's quick-start program verbatim and
// checks its promised properties.
func TestREADMEQuickstart(t *testing.T) {
	rt := rfdet.NewCI()
	prog := func(th rfdet.Thread) {
		counter := th.Malloc(8)
		mu := rfdet.Addr(64)
		var ids []rfdet.ThreadID
		for i := 0; i < 4; i++ {
			ids = append(ids, th.Spawn(func(th rfdet.Thread) {
				th.Lock(mu)
				th.Store64(counter, th.Load64(counter)+1)
				th.Unlock(mu)
			}))
		}
		for _, id := range ids {
			th.Join(id)
		}
		th.Observe(th.Load64(counter))
	}
	var first uint64
	for i := 0; i < 5; i++ {
		rep, err := rt.Run(prog)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Observations[0][0] != 4 {
			t.Fatalf("counter = %d, want 4", rep.Observations[0][0])
		}
		if i == 0 {
			first = rep.OutputHash
		} else if rep.OutputHash != first {
			t.Fatal("OutputHash varied across runs")
		}
	}
}

// TestRuntimeReuse verifies that one Runtime value supports repeated,
// independent executions.
func TestRuntimeReuse(t *testing.T) {
	rt := rfdet.NewCI()
	for i := uint64(0); i < 3; i++ {
		i := i
		rep, err := rt.Run(func(th rfdet.Thread) {
			a := th.Malloc(8)
			th.Store64(a, i)
			th.Observe(th.Load64(a))
		})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Observations[0][0] != i {
			t.Fatalf("run %d observed %v", i, rep.Observations[0])
		}
	}
}

// TestStatsSurface spot-checks the re-exported Stats type.
func TestStatsSurface(t *testing.T) {
	rep, err := rfdet.NewCI().Run(func(th rfdet.Thread) {
		mu := rfdet.Addr(64)
		id := th.Spawn(func(c rfdet.Thread) {
			c.Lock(mu)
			c.Unlock(mu)
		})
		th.Join(id)
	})
	if err != nil {
		t.Fatal(err)
	}
	var s rfdet.Stats = rep.Stats
	if s.Locks != 1 || s.Unlocks != 1 || s.Forks != 1 || s.Joins != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.MemOps() != s.Loads+s.Stores {
		t.Fatal("MemOps helper broken")
	}
}
