package rfdet_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"rfdet"
	"rfdet/internal/core"
	"rfdet/internal/harness"
	"rfdet/internal/workloads"
)

// This file fuzzes the determinism guarantee: seeded random multithreaded
// programs — full of data races, contended locks, atomics and joins — must
// produce identical outputs on every execution of every deterministic
// runtime, at any GOMAXPROCS. This is the programmatic generalization of
// the §5.1 racey stress test.

// fuzzProgram builds a random program from a seed. The program's *structure*
// (which operations each thread performs) is a pure function of the seed;
// its *behavior* additionally depends on racy memory contents, which is
// exactly what the deterministic runtimes must pin down. With raceFree set,
// every shared access is lock-protected or atomic, so ALL runtimes and ALL
// configurations must agree on the result.
func fuzzProgram(seed int64, raceFree bool) rfdet.ThreadFunc {
	return func(t rfdet.Thread) {
		r := rand.New(rand.NewSource(seed))
		nworkers := 2 + r.Intn(4)
		words := 64
		arr := t.Malloc(uint64(8 * words))
		atomWord := t.Malloc(8)
		nlocks := 1 + r.Intn(3)
		lockBase := rfdet.Addr(1 << 10)

		// Pre-generate each worker's script deterministically.
		type op struct {
			kind int
			a, b int
		}
		scripts := make([][]op, nworkers)
		for w := range scripts {
			nops := 30 + r.Intn(60)
			script := make([]op, nops)
			for i := range script {
				script[i] = op{kind: r.Intn(6), a: r.Intn(words), b: r.Intn(nlocks)}
			}
			scripts[w] = script
		}

		var ids []rfdet.ThreadID
		for w := 0; w < nworkers; w++ {
			script := scripts[w]
			me := uint64(w + 1)
			ids = append(ids, t.Spawn(func(t rfdet.Thread) {
				held := -1
				for _, o := range script {
					if raceFree && (o.kind == 0 || o.kind == 1) && held < 0 {
						// Race-free mode: plain accesses only inside a
						// critical section.
						o.kind = 2
					}
					switch o.kind {
					case 0: // read-modify-write
						v := t.Load64(arr + rfdet.Addr(8*o.a))
						if raceFree {
							// Commutative under the lock: the result is
							// schedule-independent, so every runtime and
							// configuration must agree exactly.
							t.Store64(arr+rfdet.Addr(8*o.a), v+me*2654435761)
						} else {
							t.Store64(arr+rfdet.Addr(8*o.a), v*1099511628211+me)
						}
					case 1: // copy between slots (racy mode only)
						if raceFree {
							v := t.Load64(arr + rfdet.Addr(8*o.a))
							t.Store64(arr+rfdet.Addr(8*o.a), v+me)
						} else {
							dst := (o.a * 7) % words
							t.Store64(arr+rfdet.Addr(8*dst), t.Load64(arr+rfdet.Addr(8*o.a)))
						}
					case 2: // critical section on one of the locks
						if held < 0 {
							lk := o.b
							if raceFree {
								lk = 0 // a single lock guards the shared word
							}
							t.Lock(lockBase + rfdet.Addr(8*lk))
							held = lk
							v := t.Load64(arr)
							t.Store64(arr, v+me) // commutative: schedule-independent
						}
					case 3: // release, if holding
						if held >= 0 {
							t.Unlock(lockBase + rfdet.Addr(8*held))
							held = -1
						}
					case 4: // deterministic atomic
						t.AtomicAdd64(atomWord, me)
					default: // compute
						t.Tick(uint64(10 + o.a))
					}
				}
				if held >= 0 {
					t.Unlock(lockBase + rfdet.Addr(8*held))
				}
			}))
		}
		for _, id := range ids {
			t.Join(id)
		}
		var fold uint64
		for i := 0; i < words; i++ {
			fold = fold*31 + t.Load64(arr+rfdet.Addr(8*i))
		}
		t.Observe(fold, t.Load64(atomWord))
	}
}

// TestFuzzDeterminism runs each generated program repeatedly on each
// deterministic runtime and demands identical hashes.
func TestFuzzDeterminism(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	runtimes := []func() rfdet.Runtime{
		func() rfdet.Runtime { return rfdet.NewCI() },
		func() rfdet.Runtime { return rfdet.NewPF() },
		func() rfdet.Runtime { return rfdet.NewDThreads() },
		func() rfdet.Runtime { return rfdet.NewCoreDet(5000) },
		func() rfdet.Runtime { return rfdet.NewRCDC(5000) },
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		prog := fuzzProgram(seed, false)
		for _, mk := range runtimes {
			rt := mk()
			var first uint64
			for i := 0; i < 3; i++ {
				rep, err := rt.Run(prog)
				if err != nil {
					t.Fatalf("seed %d on %s: %v", seed, rt.Name(), err)
				}
				if i == 0 {
					first = rep.OutputHash
				} else if rep.OutputHash != first {
					t.Fatalf("seed %d on %s: run %d hash %#x != %#x",
						seed, rt.Name(), i, rep.OutputHash, first)
				}
			}
		}
	}
}

// TestFuzzOptionsAgreeRaceFree runs race-free generated programs across the
// full RFDet option matrix. For race-free programs the C++ memory model
// fixes the result completely (§3.3), so every monitor and optimization
// combination — and every runtime — must agree exactly.
func TestFuzzOptionsAgreeRaceFree(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	var opts []rfdet.Options
	for _, monitor := range []rfdet.Monitor{rfdet.MonitorCI, rfdet.MonitorPF} {
		for mask := 0; mask < 8; mask++ {
			opts = append(opts, rfdet.Options{
				Monitor:      monitor,
				SliceMerging: mask&1 != 0,
				Prelock:      mask&2 != 0,
				LazyWrites:   mask&4 != 0,
			})
		}
	}
	for seed := int64(100); seed < 100+int64(seeds); seed++ {
		prog := fuzzProgram(seed, true)
		var firstObs []uint64
		check := func(name string, rep *rfdet.Report) {
			obs := rep.Observations[0]
			if firstObs == nil {
				firstObs = obs
				return
			}
			for i := range obs {
				if obs[i] != firstObs[i] {
					t.Fatalf("seed %d: %s changed a race-free result (%v != %v)",
						seed, name, obs, firstObs)
				}
			}
		}
		for _, o := range opts {
			rep, err := rfdet.New(o).Run(prog)
			if err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, o, err)
			}
			check(fmt.Sprintf("options %+v", o), rep)
		}
		for _, rt := range []rfdet.Runtime{rfdet.NewDThreads(), rfdet.NewPThreads()} {
			rep, err := rt.Run(prog)
			if err != nil {
				t.Fatalf("seed %d on %s: %v", seed, rt.Name(), err)
			}
			check(rt.Name(), rep)
		}
	}
}

// TestFuzzOrderPreservingOptionsAgreeOnRaces: for racy programs, the
// monitor choice and the lazy-writes optimization never reorder
// modification application, so they must not change even racy results.
// (Prelock and slice merging may legitimately select a different —
// still deterministic — resolution of concurrent conflicting writes;
// the paper's guarantee for races is "arbitrary but deterministic",
// §3.4.)
func TestFuzzOrderPreservingOptionsAgreeOnRaces(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	opts := []rfdet.Options{
		{Monitor: rfdet.MonitorCI},
		{Monitor: rfdet.MonitorPF},
		{Monitor: rfdet.MonitorCI, LazyWrites: true},
		{Monitor: rfdet.MonitorPF, LazyWrites: true},
	}
	for seed := int64(300); seed < 300+int64(seeds); seed++ {
		prog := fuzzProgram(seed, false)
		var first uint64
		for i, o := range opts {
			rep, err := rfdet.New(o).Run(prog)
			if err != nil {
				t.Fatalf("seed %d opts %+v: %v", seed, o, err)
			}
			if i == 0 {
				first = rep.OutputHash
			} else if rep.OutputHash != first {
				t.Fatalf("seed %d: options %+v changed the result (%#x != %#x)",
					seed, o, rep.OutputHash, first)
			}
		}
	}
}

// TestFuzzFullPageDiffAgrees: extent-guided slice diffing must be invisible
// to program results. The dirty extents are a superset of each slice's
// written bytes and diffing inside them excludes same-value overwrites
// exactly like the full-page scan, so the modification lists — and therefore
// every propagated byte — are identical with Options.FullPageDiff on or off.
// That makes this a *strict* equivalence: even racy programs, under either
// monitor and with the order-preserving optimizations stacked on, must
// produce bit-identical output hashes.
func TestFuzzFullPageDiffAgrees(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	bases := []rfdet.Options{
		{Monitor: rfdet.MonitorCI},
		{Monitor: rfdet.MonitorPF},
		{Monitor: rfdet.MonitorCI, LazyWrites: true},
		{Monitor: rfdet.MonitorCI, SliceMerging: true, Prelock: true},
	}
	for seed := int64(700); seed < 700+int64(seeds); seed++ {
		prog := fuzzProgram(seed, false)
		for _, base := range bases {
			var hashes [2]uint64
			for i, full := range []bool{false, true} {
				o := base
				o.FullPageDiff = full
				rep, err := rfdet.New(o).Run(prog)
				if err != nil {
					t.Fatalf("seed %d opts %+v: %v", seed, o, err)
				}
				hashes[i] = rep.OutputHash
			}
			if hashes[0] != hashes[1] {
				t.Fatalf("seed %d opts %+v: extent-guided diff changed the result (%#x != %#x)",
					seed, base, hashes[0], hashes[1])
			}
		}
	}
}

// TestFuzzNoCoalesceAgrees: coalesced write-plan propagation must be
// invisible to program results. A plan writes, for every destination byte,
// the value of the last run in slice-list order that covers it — exactly the
// byte each propagated list leaves behind when applied run by run — and the
// virtual-time model still charges per-slice apply costs. So this is a
// *strict* equivalence like FullPageDiff: even racy programs, under either
// monitor, with prelock plan sharing and lazy-writes patch pending stacked
// on, at any GOMAXPROCS, must produce bit-identical output hashes with
// Options.NoCoalesce on or off.
func TestFuzzNoCoalesceAgrees(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	bases := []rfdet.Options{
		{Monitor: rfdet.MonitorCI},
		{Monitor: rfdet.MonitorPF},
		{Monitor: rfdet.MonitorCI, SliceMerging: true, Prelock: true},
		{Monitor: rfdet.MonitorCI, LazyWrites: true},
		{Monitor: rfdet.MonitorCI, SliceMerging: true, Prelock: true, LazyWrites: true},
		{Monitor: rfdet.MonitorPF, SliceMerging: true, Prelock: true, LazyWrites: true},
	}
	for seed := int64(900); seed < 900+int64(seeds); seed++ {
		prog := fuzzProgram(seed, false)
		for _, base := range bases {
			var first uint64
			haveFirst := false
			for _, noCoalesce := range []bool{false, true} {
				for _, procs := range []int{1, 2, 4, 8} {
					old := runtime.GOMAXPROCS(procs)
					o := base
					o.NoCoalesce = noCoalesce
					rep, err := rfdet.New(o).Run(prog)
					runtime.GOMAXPROCS(old)
					if err != nil {
						t.Fatalf("seed %d opts %+v P=%d: %v", seed, o, procs, err)
					}
					if !haveFirst {
						first, haveFirst = rep.OutputHash, true
					} else if rep.OutputHash != first {
						t.Fatalf("seed %d opts %+v P=%d: coalescing changed the result (%#x != %#x)",
							seed, base, procs, rep.OutputHash, first)
					}
				}
			}
		}
	}
}

// TestFuzzServerReplicasAgree is the end-to-end replica fuzz wall: for random
// request-log seeds and worker-thread counts, k replicas of the KV server
// across differing optimization stacks, shard counts and GOMAXPROCS must
// produce byte-identical state hashes, response hashes, observation digests
// and virtual times. This fuzzes the active-replication property itself —
// the whole server-shaped execution (condvar queue, shard locks, barrier,
// atomics), not just generated kernels.
func TestFuzzServerReplicasAgree(t *testing.T) {
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for i := 0; i < seeds; i++ {
		seed := uint64(0x1300) + uint64(i)*0x9e3779b97f4a7c15
		threads := 2 + int(seed%4) // 2..5 workers, derived from the seed
		cfg := workloads.Config{Threads: threads, Size: workloads.SizeTest}

		mk := func(name string, shards, procs int, full, noCo bool) harness.ReplicaVariant {
			opts := core.DefaultOptions()
			opts.ShardCount = shards
			opts.FullPageDiff = full
			opts.NoCoalesce = noCo
			return harness.ReplicaVariant{Name: name, Procs: procs, Opts: opts}
		}
		variants := []harness.ReplicaVariant{
			mk("default/p1", core.DefaultOptions().ShardCount, 1, false, false),
			mk("fullpagediff/p4", core.DefaultOptions().ShardCount, 4, true, false),
			mk("nocoalesce/p8", core.DefaultOptions().ShardCount, 8, false, true),
			mk("shards1/p4", 1, 4, false, false),
			mk("shards4-full-noco/p2", 4, 2, true, true),
		}
		rep := harness.RunServerReplicas(cfg, seed, variants)
		if rep.Divergent() {
			t.Fatalf("seed %#x threads %d: replicas diverged:\n%s",
				seed, threads, fmtDivergences(rep.Divergences))
		}
		for j, run := range rep.Runs {
			if run.Err != nil {
				t.Fatalf("seed %#x replica %d (%s): %v", seed, j, run.Variant, run.Err)
			}
			if run.Summary.Served != uint64(rep.Requests) {
				t.Fatalf("seed %#x replica %d (%s): served %d of %d requests",
					seed, j, run.Variant, run.Summary.Served, rep.Requests)
			}
		}
	}
}

// relaxFuzzProgram generates race-free programs shaped to exercise both
// relaxation prongs: every worker hammers a private mutex only it ever
// touches (profile-guided turn-wait elision) and writes a private region
// under the shared lock that no peer reads before the join (propagation
// elision), alongside ordinary shared-lock and atomic traffic.
func relaxFuzzProgram(seed int64) rfdet.ThreadFunc {
	return func(t rfdet.Thread) {
		r := rand.New(rand.NewSource(seed ^ 0x5eed))
		nworkers := 2 + r.Intn(3)
		words := 32
		arr := t.Malloc(uint64(8 * words * (nworkers + 1)))
		atomWord := t.Malloc(8)
		sharedLock := rfdet.Addr(1 << 10)
		privLockBase := rfdet.Addr(1 << 12)

		type op struct{ kind, a int }
		scripts := make([][]op, nworkers)
		for w := range scripts {
			nops := 20 + r.Intn(40)
			script := make([]op, nops)
			for i := range script {
				script[i] = op{kind: r.Intn(5), a: r.Intn(words)}
			}
			scripts[w] = script
		}

		var ids []rfdet.ThreadID
		for w := 0; w < nworkers; w++ {
			script := scripts[w]
			me := uint64(w + 1)
			priv := privLockBase + rfdet.Addr(64*w)
			region := arr + rfdet.Addr(8*words*(w+1))
			ids = append(ids, t.Spawn(func(t rfdet.Thread) {
				for _, o := range script {
					switch o.kind {
					case 0: // private critical section: profiled thread-local
						t.Lock(priv)
						t.Store64(region, t.Load64(region)+me)
						t.Unlock(priv)
					case 1: // shared critical section, commutative
						t.Lock(sharedLock)
						t.Store64(arr, t.Load64(arr)+me*2654435761)
						t.Unlock(sharedLock)
					case 2: // private region written under the shared lock:
						// propagates to peers that never read it
						t.Lock(sharedLock)
						t.Store64(region+rfdet.Addr(8*(o.a%words)), me*uint64(o.a+1))
						t.Unlock(sharedLock)
					case 3: // deterministic atomic
						t.AtomicAdd64(atomWord, me)
					default:
						t.Tick(uint64(5 + o.a))
					}
				}
			}))
		}
		for _, id := range ids {
			t.Join(id)
		}
		var fold uint64
		for i := 0; i < words*(nworkers+1); i++ {
			fold = fold*31 + t.Load64(arr+rfdet.Addr(8*i))
		}
		t.Observe(fold, t.Load64(atomWord))
	}
}

// TestFuzzRaceRelaxedAgrees: race-aware ordering relaxation must be invisible
// to every deterministic observable on race-free programs running under a
// correct profile. For each seed a relaxation profile is recorded exactly as
// deployments record one (two race-detecting runs, stability-merged); then
// RaceRelaxed on and off — across monitors, optimization stacks, shard
// counts and GOMAXPROCS — must produce bit-identical output hashes AND
// virtual times, with zero unsafe fallbacks (the certification that every
// elision was on a genuinely thread-local variable).
func TestFuzzRaceRelaxedAgrees(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	bases := []rfdet.Options{
		{Monitor: rfdet.MonitorCI, ShardCount: 1},
		{Monitor: rfdet.MonitorCI, SliceMerging: true, Prelock: true, ShardCount: 4},
		{Monitor: rfdet.MonitorCI, SliceMerging: true, Prelock: true, LazyWrites: true, ShardCount: 4},
		{Monitor: rfdet.MonitorPF, ShardCount: 4},
	}
	for seed := int64(1500); seed < 1500+int64(seeds); seed++ {
		prog := relaxFuzzProgram(seed)

		// Record the relaxation profile the way a deployment would.
		recOpts := core.DefaultOptions()
		recOpts.RaceDetect = true
		var profiles [2]*rfdet.Profile
		for i := range profiles {
			rep, err := rfdet.New(recOpts).Run(prog)
			if err != nil {
				t.Fatalf("seed %d recording run %d: %v", seed, i, err)
			}
			profiles[i] = rep.RelaxProfile
		}
		profile, err := rfdet.MergeProfiles(profiles[0], profiles[1])
		if err != nil {
			t.Fatalf("seed %d: stability merge: %v", seed, err)
		}
		if len(profile.Local) == 0 {
			t.Fatalf("seed %d: no thread-local sync vars profiled", seed)
		}

		for _, base := range bases {
			var firstOut, firstVT uint64
			haveFirst := false
			var elisions uint64
			for _, relaxed := range []bool{false, true} {
				for _, procs := range []int{1, 2, 4, 8} {
					old := runtime.GOMAXPROCS(procs)
					o := base
					o.RaceRelaxed = relaxed
					if relaxed {
						o.RelaxProfile = profile
					}
					rep, err := rfdet.New(o).Run(prog)
					runtime.GOMAXPROCS(old)
					if err != nil {
						t.Fatalf("seed %d opts %+v P=%d: %v", seed, o, procs, err)
					}
					if relaxed && rep.Stats.RelaxUnsafeFallbacks != 0 {
						t.Fatalf("seed %d opts %+v P=%d: %d unsafe fallbacks under a correct profile",
							seed, base, procs, rep.Stats.RelaxUnsafeFallbacks)
					}
					if relaxed {
						elisions += rep.Stats.ElidedTurnWaits + rep.Stats.SkippedSliceApplies
					}
					if !haveFirst {
						firstOut, firstVT, haveFirst = rep.OutputHash, rep.VirtualTime, true
					} else if rep.OutputHash != firstOut || rep.VirtualTime != firstVT {
						t.Fatalf("seed %d opts %+v P=%d relaxed=%v: relaxation changed the result (output %#x vtime %d != %#x %d)",
							seed, base, procs, relaxed, rep.OutputHash, rep.VirtualTime, firstOut, firstVT)
					}
				}
			}
			_ = elisions // host-timing dependent; asserted >0 by the core litmus tests
		}
	}
}

func fmtDivergences(ds []string) string {
	var out string
	for _, d := range ds {
		out += d + "\n"
	}
	return out
}

// TestFuzzValidated runs generated programs with the DLRC invariant checker
// enabled: the slice lists must satisfy the happens-before structure of
// §4.2/§4.3 on every execution.
func TestFuzzValidated(t *testing.T) {
	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	for seed := int64(500); seed < 500+int64(seeds); seed++ {
		o := rfdet.Options{SliceMerging: true, Prelock: true, Validate: true}
		if _, err := rfdet.New(o).Run(fuzzProgram(seed, false)); err != nil {
			t.Fatalf("seed %d failed validation: %v", seed, err)
		}
	}
}

// TestFuzzShardCountAgrees: the sharded commit monitor must be invisible to
// every deterministic observable. All monitor-state mutation happens while
// holding the deterministic turn, so splitting the monitor into per-address-
// range domains changes which host mutex covers the residual windows, never
// the order of any clock join — a strict equivalence like FullPageDiff and
// NoCoalesce. Even racy programs, under either monitor, with the full
// optimization stack, at any GOMAXPROCS, must produce bit-identical output
// hashes AND virtual times with one domain (the seed's global monitor) or
// four.
func TestFuzzShardCountAgrees(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	bases := []rfdet.Options{
		{Monitor: rfdet.MonitorCI},
		{Monitor: rfdet.MonitorPF},
		{Monitor: rfdet.MonitorCI, SliceMerging: true, Prelock: true, LazyWrites: true},
		{Monitor: rfdet.MonitorPF, SliceMerging: true, Prelock: true, LazyWrites: true},
	}
	for seed := int64(1100); seed < 1100+int64(seeds); seed++ {
		prog := fuzzProgram(seed, false)
		for _, base := range bases {
			var firstOut, firstVT uint64
			haveFirst := false
			for _, shards := range []int{1, 4} {
				for _, procs := range []int{1, 2, 4, 8} {
					old := runtime.GOMAXPROCS(procs)
					o := base
					o.ShardCount = shards
					rep, err := rfdet.New(o).Run(prog)
					runtime.GOMAXPROCS(old)
					if err != nil {
						t.Fatalf("seed %d opts %+v shards=%d P=%d: %v", seed, base, shards, procs, err)
					}
					if !haveFirst {
						firstOut, firstVT, haveFirst = rep.OutputHash, rep.VirtualTime, true
					} else if rep.OutputHash != firstOut || rep.VirtualTime != firstVT {
						t.Fatalf("seed %d opts %+v shards=%d P=%d: sharding changed the result (output %#x vtime %d != %#x %d)",
							seed, base, shards, procs, rep.OutputHash, rep.VirtualTime, firstOut, firstVT)
					}
				}
			}
		}
	}
}

// TestFuzzEpochStoreAgrees: the epoch-based metadata store must be invisible
// to every deterministic observable. Like the shard-count wall above, this
// is a strict equivalence: the store only changes *how* collected slices'
// bytes are reclaimed (whole arena-backed segments vs a map sweep) and how
// commit payloads are owned (interned vs caller-retained) — never which
// slices exist, which propagation filters pass, or when GC passes run. Even
// racy programs, under either store, with the full optimization stack, at
// any GOMAXPROCS and either monitor shard count, must produce bit-identical
// output hashes AND virtual times.
func TestFuzzEpochStoreAgrees(t *testing.T) {
	seeds := 10
	if testing.Short() {
		seeds = 3
	}
	bases := []rfdet.Options{
		{Monitor: rfdet.MonitorCI},
		{Monitor: rfdet.MonitorPF},
		{Monitor: rfdet.MonitorCI, SliceMerging: true, Prelock: true, LazyWrites: true},
		{Monitor: rfdet.MonitorPF, SliceMerging: true, Prelock: true, LazyWrites: true, RaceRelaxed: true},
	}
	for seed := int64(1700); seed < 1700+int64(seeds); seed++ {
		prog := fuzzProgram(seed, false)
		for _, base := range bases {
			var firstOut, firstVT uint64
			haveFirst := false
			for _, epoch := range []bool{false, true} {
				for _, shards := range []int{1, 4} {
					for _, procs := range []int{1, 2, 4, 8} {
						old := runtime.GOMAXPROCS(procs)
						o := base
						o.EpochStore = epoch
						o.ShardCount = shards
						rep, err := rfdet.New(o).Run(prog)
						runtime.GOMAXPROCS(old)
						if err != nil {
							t.Fatalf("seed %d opts %+v epoch=%v shards=%d P=%d: %v", seed, base, epoch, shards, procs, err)
						}
						if !haveFirst {
							firstOut, firstVT, haveFirst = rep.OutputHash, rep.VirtualTime, true
						} else if rep.OutputHash != firstOut || rep.VirtualTime != firstVT {
							t.Fatalf("seed %d opts %+v epoch=%v shards=%d P=%d: store changed the result (output %#x vtime %d != %#x %d)",
								seed, base, epoch, shards, procs, rep.OutputHash, rep.VirtualTime, firstOut, firstVT)
						}
					}
				}
			}
		}
	}
}
